// loggrep_cli: a grep-for-compressed-logs command line tool over real files.
//
//   loggrep_cli compress <input.log> <output.lgc>
//   loggrep_cli grep <block.lgc> "<query command>"
//   loggrep_cli stat <block.lgc>
//   loggrep_cli demo <output.lgc>          (writes a synthetic sample block)
//   loggrep_cli archive-ingest <dir> <input.log>   (append a block)
//   loggrep_cli archive-grep <dir> "<query>"       (query with block pruning)
//   loggrep_cli archive-stat <dir>
//   loggrep_cli ingest <dir> <input.log|-> [block_mb] [threads]
//       (streaming pipelined ingest; '-' reads stdin; prints IngestMetrics)
//   loggrep_cli explain <block.lgc|archive-dir> "<query>"
//       (per-block / per-variable / per-Capsule decision tree; exits
//        non-zero if the pruned+cached+decompressed==visited invariant
//        fails)
//   loggrep_cli metrics <block.lgc|archive-dir> "<query>"
//       (runs the query, then prints the metrics registry in Prometheus
//        exposition format — or JSON with --stats-json)
//
//   loggrep_cli repair <dir>
//       (re-verifies quarantined blocks; reinstates healthy ones,
//        tombstones the rest)
//   loggrep_cli set-ingest <root> <tenant> <input.log> [ts_ns]
//       (appends to the tenant's active shard of the ArchiveSet at root,
//        creating the set / rolling shards as needed)
//   loggrep_cli set-query <root> "<query>" [tenant|-] [from_ns] [to_ns]
//       (federated query across shards; tenant "-" = all tenants; the
//        time range prunes whole shards before the scatter)
//   loggrep_cli set-repair <root>
//       (fleet-level repair: re-verifies quarantined blocks in every shard)
//   loggrep_cli set-stat <root>
//       (per-shard table: tenant, window, lines, bytes, sealed/expired)
//   loggrep_cli serve <root-dir> [port] [threads] [max_inflight]
//       (runs loggrepd: serves every archive under root-dir over HTTP;
//        prints the bound port; SIGTERM/SIGINT drain gracefully)
//   loggrep_cli remote-query <host:port> <archive> "<query>"
//       (queries a running loggrepd; prints hits; exit code follows the
//        same 0/3/1 contract as local queries — see
//        src/server/archive_service.h for the HTTP mapping)
//
// Global flags (any subcommand):
//   --stats-json     emit registry counters+histograms as sorted-key JSON
//   --trace=<file>   enable span tracing, write Chrome trace_event JSON
//                    (open in chrome://tracing or Perfetto)
//   --no-degrade     strict complete-or-error queries: any failed or
//                    quarantined block is exit 1 (local) / HTTP 500 (remote)
//                    instead of a partial result
//
// Exit codes: 0 = success, 1 = error, 2 = usage, 3 = PARTIAL (the query
// succeeded but one or more quarantined blocks left holes in the result —
// scripts must be able to tell a complete answer from a degraded one).
//
// Query commands follow §3: search strings joined by AND / OR / NOT,
// wildcards ('*', '?') within a single token, e.g.
//   loggrep_cli grep app.lgc "error AND dst:11.8.* NOT state:503"
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include <filesystem>

#include "src/capsule/capsule_box.h"
#include "src/common/metrics.h"
#include "src/common/metrics_export.h"
#include "src/common/trace.h"
#include "src/core/engine.h"
#include "src/ingest/log_ingestor.h"
#include "src/query/explain.h"
#include "src/server/client.h"
#include "src/server/daemon.h"
#include "src/store/archive_set.h"
#include "src/store/log_archive.h"
#include "src/store/shard_router.h"
#include "src/store/verify.h"
#include "src/workload/datasets.h"
#include "src/workload/loggen.h"

namespace {

using namespace loggrep;

// Process-wide registry shared by every subcommand ("query.*", "ingest.*",
// "query.box_cache.*"); exported by `metrics` / --stats-json.
MetricsRegistry g_metrics;
bool g_stats_json = false;
// --no-degrade: strict complete-or-error queries. Locally this sets
// ArchiveOptions::degraded_queries = false; against a daemon it sends
// ?degrade=0 — the same contract either way (a block failure or standing
// quarantined hole is exit 1 / HTTP 500 instead of exit 3 / HTTP 206).
bool g_no_degrade = false;

// Exit code for a query that succeeded but is missing quarantined blocks.
constexpr int kExitPartial = 3;

// Prints the partial report (if any) to stderr and maps the result to the
// process exit code: complete -> 0, degraded -> kExitPartial.
int FinishQuery(const ArchiveQueryResult& result) {
  if (!result.partial.partial()) {
    return 0;
  }
  std::fprintf(stderr, "%s", result.partial.Render().c_str());
  return kExitPartial;
}

EngineOptions CliEngineOptions() {
  EngineOptions opts;
  opts.metrics = &g_metrics;
  return opts;
}

ArchiveOptions CliArchiveOptions() {
  ArchiveOptions opts;
  opts.metrics = &g_metrics;
  opts.engine.metrics = &g_metrics;
  opts.degraded_queries = !g_no_degrade;
  return opts;
}

void MaybePrintStatsJson() {
  if (g_stats_json) {
    std::printf("%s\n", ExportJson(g_metrics).c_str());
  }
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool WriteFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  return out.good();
}

int Compress(const std::string& in_path, const std::string& out_path) {
  std::string raw;
  if (!ReadFile(in_path, &raw)) {
    return 1;
  }
  LogGrepEngine engine;
  const std::string box = engine.CompressBlock(raw);
  if (!WriteFile(out_path, box)) {
    return 1;
  }
  std::printf("%zu -> %zu bytes (ratio %.2fx)\n", raw.size(), box.size(),
              box.empty() ? 0.0 : static_cast<double>(raw.size()) / box.size());
  return 0;
}

int Grep(const std::string& archive_path, const std::string& command) {
  std::string box;
  if (!ReadFile(archive_path, &box)) {
    return 1;
  }
  LogGrepEngine engine(CliEngineOptions());
  auto result = engine.Query(box, command);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  for (const auto& [line, text] : result->hits) {
    std::printf("%llu:%s\n", static_cast<unsigned long long>(line + 1),
                text.c_str());
  }
  std::fprintf(stderr, "%zu matching entries (%llu capsules decompressed, "
               "%llu filtered by stamps)\n",
               result->hits.size(),
               static_cast<unsigned long long>(
                   result->locator.capsules_decompressed),
               static_cast<unsigned long long>(
                   result->locator.capsules_stamp_filtered));
  std::fprintf(stderr,
               "stages (ms): open %.2f  scan %.2f  stamp %.2f  "
               "decompress %.2f  reconstruct %.2f\n",
               result->locator.open_nanos / 1e6,
               result->locator.scan_nanos / 1e6,
               result->locator.stamp_filter_nanos / 1e6,
               result->locator.decompress_nanos / 1e6,
               result->locator.reconstruct_nanos / 1e6);
  MaybePrintStatsJson();
  return 0;
}

int Stat(const std::string& archive_path) {
  std::string bytes;
  if (!ReadFile(archive_path, &bytes)) {
    return 1;
  }
  auto box = CapsuleBox::Open(bytes);
  if (!box.ok()) {
    std::fprintf(stderr, "not a capsule box: %s\n",
                 box.status().ToString().c_str());
    return 1;
  }
  const CapsuleBoxMeta& meta = box->meta();
  std::printf("lines:      %u\n", meta.total_lines);
  std::printf("templates:  %zu\n", meta.templates.size());
  std::printf("capsules:   %zu\n", box->CapsuleCount());
  std::printf("layout:     %s\n", meta.padded ? "fixed-length (padded)"
                                              : "variable-length");
  std::printf("outliers:   %zu lines\n", meta.outlier_line_numbers.size());
  for (size_t g = 0; g < meta.groups.size() && g < 12; ++g) {
    const GroupMeta& group = meta.groups[g];
    int real = 0;
    int nominal = 0;
    int whole = 0;
    for (const VarMeta& v : group.vars) {
      if (v.is_real()) {
        ++real;
      } else if (v.is_nominal()) {
        ++nominal;
      } else {
        ++whole;
      }
    }
    std::printf("  group %-2zu rows=%-8u vars(real/nominal/whole)=%d/%d/%d  %s\n",
                g, group.row_count, real, nominal, whole,
                meta.templates[group.template_id].ToString().c_str());
  }
  if (meta.groups.size() > 12) {
    std::printf("  ... and %zu more groups\n", meta.groups.size() - 12);
  }
  return 0;
}

int Demo(const std::string& out_path) {
  const DatasetSpec* spec = FindDataset("Log G");
  const std::string raw = LogGenerator(*spec).Generate(1 << 20);
  const std::string raw_path = out_path + ".raw.log";
  if (!WriteFile(raw_path, raw)) {
    return 1;
  }
  std::printf("wrote sample log %s\n", raw_path.c_str());
  const int rc = Compress(raw_path, out_path);
  if (rc == 0) {
    std::printf("try: loggrep_cli grep %s \"Operation:ReadChunk and "
                "SATADiskId:7\"\n",
                out_path.c_str());
  }
  return rc;
}

Result<LogArchive> OpenOrCreateArchive(const std::string& dir) {
  if (std::filesystem::exists(dir + "/archive.manifest")) {
    return LogArchive::Open(dir);
  }
  return LogArchive::Create(dir);
}

int ArchiveIngest(const std::string& dir, const std::string& in_path) {
  std::string raw;
  if (!ReadFile(in_path, &raw)) {
    return 1;
  }
  auto archive = OpenOrCreateArchive(dir);
  if (!archive.ok()) {
    std::fprintf(stderr, "%s\n", archive.status().ToString().c_str());
    return 1;
  }
  if (Status s = archive->AppendBlock(raw); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("block %zu ingested: %zu bytes raw, archive now %llu lines\n",
              archive->blocks().size() - 1, raw.size(),
              static_cast<unsigned long long>(archive->total_lines()));
  return 0;
}

// Streaming pipelined ingest: reads `in_path` (or stdin when "-") in fixed
// chunks and feeds them to a LogIngestor, then prints the metrics snapshot.
int Ingest(const std::string& dir, const std::string& in_path,
           size_t block_mb, size_t threads) {
  IngestOptions options;
  options.target_block_bytes = block_mb << 20;
  options.num_workers = threads;
  options.metrics = &g_metrics;
  auto ingestor = LogIngestor::Start(dir, options);
  if (!ingestor.ok()) {
    std::fprintf(stderr, "%s\n", ingestor.status().ToString().c_str());
    return 1;
  }

  std::ifstream file;
  std::istream* in = &std::cin;
  if (in_path != "-") {
    file.open(in_path, std::ios::binary);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", in_path.c_str());
      return 1;
    }
    in = &file;
  }

  std::string chunk(1 << 20, '\0');
  while (in->good()) {
    in->read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    const std::streamsize got = in->gcount();
    if (got <= 0) {
      break;
    }
    if (Status s = (*ingestor)->Append(
            std::string_view(chunk.data(), static_cast<size_t>(got)));
        !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (Status s = (*ingestor)->Finish(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  const IngestMetrics m = (*ingestor)->metrics();
  std::printf("blocks committed:   %llu (cut %llu)\n",
              static_cast<unsigned long long>(m.blocks_committed),
              static_cast<unsigned long long>(m.blocks_cut));
  std::printf("raw -> stored:      %.1f MB -> %.1f MB (ratio %.2fx)\n",
              m.raw_bytes / 1e6, m.stored_bytes / 1e6,
              m.stored_bytes > 0
                  ? static_cast<double>(m.raw_bytes) / m.stored_bytes
                  : 0.0);
  std::printf("lines:              %llu\n",
              static_cast<unsigned long long>(m.lines));
  std::printf("throughput:         %.1f MB/s over %.2f s wall\n",
              m.wall_seconds > 0 ? m.raw_bytes / 1e6 / m.wall_seconds : 0.0,
              m.wall_seconds);
  std::printf("queue depth hwm:    %llu (window)\n",
              static_cast<unsigned long long>(m.queue_depth_hwm));
  std::printf("producer stalled:   %.2f s\n", m.producer_stall_seconds);
  std::printf("stage seconds:      summary %.2f  compress %.2f  commit %.2f\n",
              m.summary_seconds, m.compress_seconds, m.commit_seconds);
  MaybePrintStatsJson();
  return 0;
}

int ArchiveGrep(const std::string& dir, const std::string& command) {
  auto archive = LogArchive::Open(dir, CliArchiveOptions());
  if (!archive.ok()) {
    std::fprintf(stderr, "%s\n", archive.status().ToString().c_str());
    return 1;
  }
  auto result = archive->Query(command);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  for (const auto& [line, text] : result->hits) {
    std::printf("%llu:%s\n", static_cast<unsigned long long>(line + 1),
                text.c_str());
  }
  std::fprintf(stderr, "%zu hits; %u blocks pruned, %u queried\n",
               result->hits.size(), result->blocks_pruned,
               result->blocks_queried);
  std::fprintf(stderr,
               "stages (ms): prune %.2f  open %.2f  scan %.2f  stamp %.2f  "
               "decompress %.2f  reconstruct %.2f\n",
               result->locator.prune_nanos / 1e6,
               result->locator.open_nanos / 1e6,
               result->locator.scan_nanos / 1e6,
               result->locator.stamp_filter_nanos / 1e6,
               result->locator.decompress_nanos / 1e6,
               result->locator.reconstruct_nanos / 1e6);
  std::fprintf(stderr,
               "cache: %llu hits, %llu misses, %.1f MB saved\n",
               static_cast<unsigned long long>(result->locator.cache_hits),
               static_cast<unsigned long long>(result->locator.cache_misses),
               result->locator.bytes_saved / 1e6);
  MaybePrintStatsJson();
  return FinishQuery(*result);
}

// Runs the query with the shared registry attached and prints the registry
// afterwards — Prometheus exposition text by default, sorted-key JSON with
// --stats-json. Works against a single .lgc block or an archive directory.
int Metrics(const std::string& target, const std::string& command) {
  if (std::filesystem::is_directory(target)) {
    auto archive = LogArchive::Open(target, CliArchiveOptions());
    if (!archive.ok()) {
      std::fprintf(stderr, "%s\n", archive.status().ToString().c_str());
      return 1;
    }
    auto result = archive->Query(command);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "%zu hits over %u blocks\n", result->hits.size(),
                 result->blocks_queried);
  } else {
    std::string box;
    if (!ReadFile(target, &box)) {
      return 1;
    }
    LogGrepEngine engine(CliEngineOptions());
    auto result = engine.Query(box, command);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "%zu hits\n", result->hits.size());
  }
  const std::string out =
      g_stats_json ? ExportJson(g_metrics) + "\n" : ExportPrometheus(g_metrics);
  std::fputs(out.c_str(), stdout);
  return 0;
}

// Renders the per-block / per-variable-vector / per-Capsule decision tree
// and enforces the accounting invariant (non-zero exit on imbalance).
int Explain(const std::string& target, const std::string& command) {
  QueryExplain qe;
  int query_rc = 0;
  if (std::filesystem::is_directory(target)) {
    auto archive = LogArchive::Open(target, CliArchiveOptions());
    if (!archive.ok()) {
      std::fprintf(stderr, "%s\n", archive.status().ToString().c_str());
      return 1;
    }
    auto result = archive->Explain(command, &qe);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    query_rc = FinishQuery(*result);
  } else {
    std::string box;
    if (!ReadFile(target, &box)) {
      return 1;
    }
    qe.command = command;
    qe.blocks.emplace_back();
    LogGrepEngine engine(CliEngineOptions());
    auto result = engine.ExplainQuery(box, command, &qe.blocks[0]);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
  }
  std::fputs(qe.Render().c_str(), stdout);
  std::string detail;
  if (!qe.CheckInvariant(&detail)) {
    std::fprintf(stderr, "explain accounting invariant VIOLATED: %s\n",
                 detail.c_str());
    return 1;
  }
  MaybePrintStatsJson();
  return query_rc;
}

// fsck: re-hash stored bytes, decompress every Capsule, reconstruct every
// line and checksum against the manifest's content hashes. Read-only.
int Verify(const std::string& dir) {
  const VerifyReport report = VerifyArchive(dir);
  std::printf("%s\n", report.Summary().c_str());
  if (!report.fatal.ok()) {
    return 1;
  }
  for (const BlockVerifyResult& block : report.blocks) {
    std::printf("  block %-3u %8llu lines  %8llu bytes  %s\n", block.seq,
                static_cast<unsigned long long>(block.line_count),
                static_cast<unsigned long long>(block.stored_bytes),
                block.ok() ? "OK" : "CORRUPT");
  }
  return report.ok() ? 0 : 1;
}

// Self-healing pass: re-verify every quarantined block; reinstate the
// healthy, tombstone the rest. Exit 0 when every examined block was
// reinstated (or none were quarantined), 3 when tombstoned holes remain.
int Repair(const std::string& dir) {
  const RepairReport report = RepairArchive(dir);
  std::printf("%s\n", report.Summary().c_str());
  if (!report.ok()) {
    return 1;
  }
  return report.tombstoned == 0 ? 0 : kExitPartial;
}

Result<std::unique_ptr<ArchiveSet>> OpenOrCreateSet(const std::string& root) {
  ArchiveSetOptions options;
  options.archive = CliArchiveOptions();
  if (std::filesystem::exists(ArchiveSet::SetManifestPath(root))) {
    return ArchiveSet::Open(root, options);
  }
  return ArchiveSet::Create(root, options);
}

int SetIngest(const std::string& root, const std::string& tenant,
              const std::string& in_path, uint64_t ts_ns) {
  std::string raw;
  if (!ReadFile(in_path, &raw)) {
    return 1;
  }
  auto set = OpenOrCreateSet(root);
  if (!set.ok()) {
    std::fprintf(stderr, "%s\n", set.status().ToString().c_str());
    return 1;
  }
  auto receipt = (*set)->Append(tenant, raw, ts_ns);
  if (!receipt.ok()) {
    std::fprintf(stderr, "%s\n", receipt.status().ToString().c_str());
    return 1;
  }
  std::printf("shard %llu (%s%s): %llu lines at global line %llu; "
              "set now %zu live shards, %llu lines\n",
              static_cast<unsigned long long>(receipt->shard_id),
              tenant.c_str(),
              receipt->rolled
                  ? (std::string(", rolled: ") +
                     RollReasonName(receipt->roll_reason)).c_str()
                  : "",
              static_cast<unsigned long long>(receipt->lines),
              static_cast<unsigned long long>(receipt->first_global_line),
              (*set)->live_shard_count(),
              static_cast<unsigned long long>((*set)->total_lines()));
  return 0;
}

int SetQuery(const std::string& root, const std::string& command,
             const std::string& tenant, uint64_t from_ns, uint64_t to_ns) {
  ArchiveSetOptions options;
  options.archive = CliArchiveOptions();
  auto set = ArchiveSet::Open(root, options);
  if (!set.ok()) {
    std::fprintf(stderr, "%s\n", set.status().ToString().c_str());
    return 1;
  }
  SetQueryPredicate pred;
  if (!tenant.empty() && tenant != "-") {
    pred.tenant = tenant;
  }
  pred.from_ns = from_ns;
  pred.to_ns = to_ns;
  auto result = (*set)->Query(command, pred);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  for (const auto& [line, text] : result->hits) {
    std::printf("%llu:%s\n", static_cast<unsigned long long>(line + 1),
                text.c_str());
  }
  std::fprintf(stderr,
               "%zu hits; shards: %llu pruned, %llu visited, %llu failed "
               "of %llu; blocks: %u pruned, %u queried\n",
               result->hits.size(),
               static_cast<unsigned long long>(result->shards_pruned),
               static_cast<unsigned long long>(result->shards_visited),
               static_cast<unsigned long long>(result->shards_failed),
               static_cast<unsigned long long>(result->shards_total),
               result->blocks_pruned, result->blocks_queried);
  MaybePrintStatsJson();
  if (!result->complete()) {
    std::fprintf(stderr, "%s", result->RenderPartial().c_str());
    return kExitPartial;
  }
  return 0;
}

int SetRepair(const std::string& root) {
  ArchiveSetOptions options;
  options.archive = CliArchiveOptions();
  auto set = ArchiveSet::Open(root, options);
  if (!set.ok()) {
    std::fprintf(stderr, "%s\n", set.status().ToString().c_str());
    return 1;
  }
  const SetRepairReport report = (*set)->RepairAll();
  std::printf("%s\n", report.Summary().c_str());
  if (!report.ok()) {
    return 1;
  }
  return report.tombstoned == 0 ? 0 : kExitPartial;
}

int SetCompact(const std::string& root) {
  ArchiveSetOptions options;
  options.archive = CliArchiveOptions();
  auto set = ArchiveSet::Open(root, options);
  if (!set.ok()) {
    std::fprintf(stderr, "%s\n", set.status().ToString().c_str());
    return 1;
  }
  const SetCompactionReport report = (*set)->Compact();
  std::printf("%s\n", report.Summary().c_str());
  return report.ok() ? 0 : 1;
}

int SetStat(const std::string& root) {
  ArchiveSetOptions options;
  options.archive = CliArchiveOptions();
  auto set = ArchiveSet::Open(root, options);
  if (!set.ok()) {
    std::fprintf(stderr, "%s\n", set.status().ToString().c_str());
    return 1;
  }
  if (Status s = (*set)->RefreshStats(); !s.ok()) {
    std::fprintf(stderr, "warning: stale stats: %s\n", s.ToString().c_str());
  }
  std::printf("shards: %zu live (%zu tenants)  lines: %llu  raw: %.1f MB  "
              "stored: %.1f MB\n",
              (*set)->live_shard_count(), (*set)->tenant_count(),
              static_cast<unsigned long long>((*set)->total_lines()),
              (*set)->total_raw_bytes() / 1e6,
              (*set)->total_stored_bytes() / 1e6);
  // Per-tenant compaction debt: sealed live shards are exactly what a
  // `set-compact` pass would merge, so their count and bytes measure how
  // much scatter width compaction can still buy back.
  struct Debt {
    size_t sealed_shards = 0;
    uint64_t raw_bytes = 0;
    uint64_t stored_bytes = 0;
  };
  std::map<std::string, Debt> debt;
  for (const ShardInfo& s : (*set)->shards()) {
    std::printf("  shard %-4llu %-20s window [%llu, %llu)  %8llu lines  "
                "%8.1f KB  %s%s%s\n",
                static_cast<unsigned long long>(s.id), s.tenant.c_str(),
                static_cast<unsigned long long>(s.window_start_ns),
                static_cast<unsigned long long>(s.window_end_ns),
                static_cast<unsigned long long>(s.lines),
                s.stored_bytes / 1e3, s.sealed ? "sealed" : "active",
                s.expired ? " EXPIRED" : "",
                s.superseded() ? " SUPERSEDED" : "");
    if (s.live() && s.sealed) {
      Debt& d = debt[s.tenant];
      ++d.sealed_shards;
      d.raw_bytes += s.raw_bytes;
      d.stored_bytes += s.stored_bytes;
    }
  }
  if (!debt.empty()) {
    std::printf("compaction debt (sealed live shards per tenant):\n");
    for (const auto& [tenant, d] : debt) {
      std::printf("  %-20s %zu shard(s)  raw %.1f MB  stored %.1f MB\n",
                  tenant.c_str(), d.sealed_shards, d.raw_bytes / 1e6,
                  d.stored_bytes / 1e6);
    }
  }
  return 0;
}

// serve-only flags: structured access-log destination and the slow-query
// capture threshold (0 keeps the daemon default).
std::string g_access_log_path;
uint64_t g_slow_ms = 0;

// Raised by the signal handler; the serve loop polls it. (A flag + poll is
// the only async-signal-safe way to reach the daemon's mutex-using drain.)
volatile std::sig_atomic_t g_shutdown_requested = 0;

void HandleShutdownSignal(int) { g_shutdown_requested = 1; }

// Runs loggrepd over `root` until SIGTERM/SIGINT, then drains.
int Serve(const std::string& root, uint16_t port, size_t threads,
          size_t max_inflight) {
  DaemonOptions options;
  options.port = port;
  options.num_threads = threads;
  options.max_inflight_queries = max_inflight;
  options.service.root = root;
  options.metrics = &g_metrics;
  if (!g_access_log_path.empty()) {
    options.access_log.path = g_access_log_path;
  }
  if (g_slow_ms > 0) {
    options.slow_query_threshold_ns = g_slow_ms * 1'000'000ull;
  }
  LoggrepDaemon daemon(options);
  auto bound = daemon.Start();
  if (!bound.ok()) {
    std::fprintf(stderr, "%s\n", bound.status().ToString().c_str());
    return 1;
  }
  std::printf("loggrepd listening on %s:%u (root %s, %zu threads, "
              "max %zu in-flight queries)\n",
              options.host.c_str(), static_cast<unsigned>(*bound),
              root.c_str(), threads, max_inflight);
  std::fflush(stdout);
  std::signal(SIGTERM, HandleShutdownSignal);
  std::signal(SIGINT, HandleShutdownSignal);
  while (g_shutdown_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::fprintf(stderr, "loggrepd: draining...\n");
  daemon.Shutdown();
  std::fprintf(stderr, "loggrepd: drained, bye\n");
  return 0;
}

// Queries a running daemon; renders hits + partial report exactly like
// archive-grep and exits by the shared contract (200 -> 0, 206 -> 3,
// anything else -> 1).
int RemoteQuery(const std::string& endpoint, const std::string& archive,
                const std::string& command) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "endpoint must be host:port\n");
    return 2;
  }
  const std::string host = endpoint.substr(0, colon);
  const int port = std::atoi(endpoint.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "bad port in %s\n", endpoint.c_str());
    return 2;
  }
  DaemonClient client(host, static_cast<uint16_t>(port));
  RemoteQueryOptions query_options;
  query_options.degrade = !g_no_degrade;
  auto result = client.Query(archive, command, query_options);
  if (!result.ok()) {
    std::fprintf(stderr, "remote query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  if (!result->ok()) {
    std::fprintf(stderr, "HTTP %d: %s\n", result->http_status,
                 result->error.c_str());
    return ExitCodeForHttpStatus(result->http_status);
  }
  for (const auto& [line, text] : result->hits) {
    std::printf("%llu:%s\n", static_cast<unsigned long long>(line + 1),
                text.c_str());
  }
  std::fprintf(stderr, "%zu hits (HTTP %d%s)\n", result->hits.size(),
               result->http_status,
               result->complete ? "" : ", PARTIAL");
  if (!result->complete) {
    std::fprintf(stderr, "lines missing: %llu\n",
                 static_cast<unsigned long long>(result->lines_missing));
  }
  return ExitCodeForHttpStatus(result->http_status);
}

int ArchiveStat(const std::string& dir) {
  auto archive = LogArchive::Open(dir);
  if (!archive.ok()) {
    std::fprintf(stderr, "%s\n", archive.status().ToString().c_str());
    return 1;
  }
  std::printf("blocks: %zu  lines: %llu  raw: %.1f MB  stored: %.1f MB "
              "(ratio %.2fx)\n",
              archive->blocks().size(),
              static_cast<unsigned long long>(archive->total_lines()),
              archive->total_raw_bytes() / 1e6,
              archive->total_stored_bytes() / 1e6,
              archive->total_stored_bytes() > 0
                  ? static_cast<double>(archive->total_raw_bytes()) /
                        static_cast<double>(archive->total_stored_bytes())
                  : 0.0);
  for (const BlockInfo& b : archive->blocks()) {
    std::printf("  block %-3u lines [%llu, %llu)  %8llu -> %8llu bytes  "
                "bloom fill %.2f\n",
                b.seq, static_cast<unsigned long long>(b.first_line),
                static_cast<unsigned long long>(b.first_line + b.line_count),
                static_cast<unsigned long long>(b.raw_bytes),
                static_cast<unsigned long long>(b.stored_bytes),
                b.shingles.FillRatio());
  }
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  loggrep_cli compress <input.log> <output.lgc>\n"
               "  loggrep_cli grep <block.lgc> \"<query>\"\n"
               "  loggrep_cli stat <block.lgc>\n"
               "  loggrep_cli demo <output.lgc>\n"
               "  loggrep_cli archive-ingest <dir> <input.log>\n"
               "  loggrep_cli archive-grep <dir> \"<query>\"\n"
               "  loggrep_cli archive-stat <dir>\n"
               "  loggrep_cli verify <dir>\n"
               "  loggrep_cli repair <dir>\n"
               "  loggrep_cli set-ingest <root> <tenant> <input.log> "
               "[ts_ns]\n"
               "  loggrep_cli set-query <root> \"<query>\" [tenant|-] "
               "[from_ns] [to_ns]\n"
               "  loggrep_cli set-repair <root>\n"
               "  loggrep_cli set-compact <root>\n"
               "  loggrep_cli set-stat <root>\n"
               "  loggrep_cli ingest <dir> <input.log|-> [block_mb] "
               "[threads]\n"
               "  loggrep_cli explain <block.lgc|archive-dir> \"<query>\"\n"
               "  loggrep_cli metrics <block.lgc|archive-dir> \"<query>\"\n"
               "  loggrep_cli serve <root-dir> [port] [threads] "
               "[max_inflight]\n"
               "  loggrep_cli remote-query <host:port> <archive> "
               "\"<query>\"\n"
               "flags: --stats-json   --trace=<file>   --no-degrade\n"
               "serve flags: --access-log=<path> (JSON-lines per-request "
               "log)   --slow-ms=<n> (slow-query capture threshold)\n"
               "exit codes: 0 ok, 1 error, 2 usage, 3 partial result "
               "(quarantined blocks; --no-degrade turns 3 into 1)\n");
  return 2;
}

}  // namespace

int main(int raw_argc, char** raw_argv) {
  // Strip global flags (anywhere on the command line).
  std::string trace_path;
  std::vector<char*> args;
  args.reserve(static_cast<size_t>(raw_argc));
  for (int i = 0; i < raw_argc; ++i) {
    const std::string_view arg = raw_argv[i];
    if (arg == "--stats-json") {
      g_stats_json = true;
    } else if (arg == "--no-degrade") {
      g_no_degrade = true;
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(8);
    } else if (arg.rfind("--access-log=", 0) == 0) {
      g_access_log_path = arg.substr(13);
    } else if (arg.rfind("--slow-ms=", 0) == 0) {
      g_slow_ms = std::strtoull(arg.substr(10).data(), nullptr, 10);
    } else {
      args.push_back(raw_argv[i]);
    }
  }
  const int argc = static_cast<int>(args.size());
  char** argv = args.data();
  if (!trace_path.empty()) {
    Tracer::Global().Enable(true);
  }
  const auto finish = [&trace_path](int rc) {
    if (!trace_path.empty() &&
        !Tracer::Global().WriteChromeJson(trace_path)) {
      std::fprintf(stderr, "cannot write trace to %s\n", trace_path.c_str());
      return rc == 0 ? 1 : rc;
    }
    return rc;
  };
  if (argc < 3) {
    return finish(Usage());
  }
  const std::string cmd = argv[1];
  if (cmd == "compress" && argc == 4) {
    return finish(Compress(argv[2], argv[3]));
  }
  if (cmd == "grep" && argc == 4) {
    return finish(Grep(argv[2], argv[3]));
  }
  if (cmd == "stat" && argc == 3) {
    return finish(Stat(argv[2]));
  }
  if (cmd == "demo" && argc == 3) {
    return finish(Demo(argv[2]));
  }
  if (cmd == "archive-ingest" && argc == 4) {
    return finish(ArchiveIngest(argv[2], argv[3]));
  }
  if (cmd == "archive-grep" && argc == 4) {
    return finish(ArchiveGrep(argv[2], argv[3]));
  }
  if (cmd == "archive-stat" && argc == 3) {
    return finish(ArchiveStat(argv[2]));
  }
  if (cmd == "verify" && argc == 3) {
    return finish(Verify(argv[2]));
  }
  if (cmd == "repair" && argc == 3) {
    return finish(Repair(argv[2]));
  }
  if (cmd == "set-ingest" && (argc == 5 || argc == 6)) {
    const uint64_t ts_ns =
        argc == 6 ? std::strtoull(argv[5], nullptr, 10) : 0;
    return finish(SetIngest(argv[2], argv[3], argv[4], ts_ns));
  }
  if (cmd == "set-query" && argc >= 4 && argc <= 7) {
    const std::string tenant = argc >= 5 ? argv[4] : "-";
    const uint64_t from_ns =
        argc >= 6 ? std::strtoull(argv[5], nullptr, 10) : 0;
    const uint64_t to_ns =
        argc >= 7 ? std::strtoull(argv[6], nullptr, 10) : UINT64_MAX;
    return finish(SetQuery(argv[2], argv[3], tenant, from_ns, to_ns));
  }
  if (cmd == "set-repair" && argc == 3) {
    return finish(SetRepair(argv[2]));
  }
  if (cmd == "set-compact" && argc == 3) {
    return finish(SetCompact(argv[2]));
  }
  if (cmd == "set-stat" && argc == 3) {
    return finish(SetStat(argv[2]));
  }
  if (cmd == "explain" && argc == 4) {
    return finish(Explain(argv[2], argv[3]));
  }
  if (cmd == "metrics" && argc == 4) {
    return finish(Metrics(argv[2], argv[3]));
  }
  if (cmd == "serve" && argc >= 3 && argc <= 6) {
    const int port = argc >= 4 ? std::atoi(argv[3]) : 0;
    const size_t threads =
        argc >= 5 ? static_cast<size_t>(std::strtoul(argv[4], nullptr, 10)) : 8;
    const size_t max_inflight =
        argc >= 6 ? static_cast<size_t>(std::strtoul(argv[5], nullptr, 10)) : 16;
    if (port < 0 || port > 65535 || threads == 0) {
      std::fprintf(stderr, "bad port/threads\n");
      return finish(2);
    }
    return finish(Serve(argv[2], static_cast<uint16_t>(port), threads,
                        max_inflight));
  }
  if (cmd == "remote-query" && argc == 5) {
    return finish(RemoteQuery(argv[2], argv[3], argv[4]));
  }
  if (cmd == "ingest" && argc >= 4 && argc <= 6) {
    const size_t block_mb =
        argc >= 5 ? static_cast<size_t>(std::strtoul(argv[4], nullptr, 10)) : 64;
    const size_t threads =
        argc >= 6 ? static_cast<size_t>(std::strtoul(argv[5], nullptr, 10)) : 0;
    if (block_mb == 0) {
      std::fprintf(stderr, "block_mb must be > 0\n");
      return finish(2);
    }
    return finish(Ingest(argv[2], argv[3], block_mb, threads));
  }
  return finish(Usage());
}
