// Near-line debugging session (the paper's motivating workflow, §1-§2):
// an engineer investigating a production incident narrows down a compressed
// log block with successively refined queries. LogGrep's refining mode keeps
// a Query Cache so revisiting earlier commands is free.
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/timer.h"
#include "src/core/engine.h"
#include "src/core/session.h"
#include "src/workload/datasets.h"
#include "src/workload/loggen.h"

int main() {
  using namespace loggrep;

  // The block under investigation: a request-serving service (Log A style)
  // with rare REQ_ST_CLOSED aborts hiding in ~10 MB of INFO noise.
  const DatasetSpec* spec = FindDataset("Log A");
  const std::string raw = LogGenerator(*spec).Generate(8 * 1024 * 1024);
  LogGrepEngine engine;
  std::printf("compressing the incident block (%zu bytes)...\n", raw.size());
  WallTimer compress_timer;
  const std::string box = engine.CompressBlock(raw);
  std::printf("done in %.2fs -> %zu bytes\n\n", compress_timer.ElapsedSeconds(),
              box.size());

  // The refining session: each step narrows the previous one.
  const std::vector<std::pair<std::string, std::string>> steps = {
      {"1. all errors", "ERROR"},
      {"2. only aborted requests", "ERROR and aborted"},
      {"3. closed-state aborts", "ERROR and aborted and state:REQ_ST_CLOSED"},
      {"4. a specific error code",
       "ERROR and aborted and state:REQ_ST_CLOSED and code:20012"},
      {"2. only aborted requests (revisited)", "ERROR and aborted"},
  };

  QuerySession session(&engine, box);
  for (const auto& [label, command] : steps) {
    WallTimer timer;
    auto result = session.Query(command);
    const double ms = timer.ElapsedSeconds() * 1000;
    if (!result.ok()) {
      std::printf("query failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    const char* how = result->from_cache ? "  [query cache]"
                      : result->refined_incrementally
                          ? "  [incremental refinement]"
                          : "";
    std::printf("%-45s %6zu hits in %7.2f ms%s\n", label.c_str(),
                result->hits.size(), ms, how);
    if (result->hits.size() <= 3) {
      for (const auto& [line, text] : result->hits) {
        std::printf("    line %llu: %s\n",
                    static_cast<unsigned long long>(line), text.c_str());
      }
    }
  }

  std::printf("\ncache: %llu hits / %llu misses over the session\n",
              static_cast<unsigned long long>(engine.cache().hits()),
              static_cast<unsigned long long>(engine.cache().misses()));
  return 0;
}
