// Cost explorer: applies the paper's Equation 1 to measured system
// characteristics and sweeps the query frequency to find where each system
// is the cheapest choice for near-line logs.
#include <cstdio>
#include <string>
#include <vector>

#include "src/baselines/clp_like.h"
#include "src/baselines/es_like.h"
#include "src/baselines/gzip_grep.h"
#include "src/baselines/loggrep_backend.h"
#include "src/common/timer.h"
#include "src/cost/cost_model.h"
#include "src/workload/datasets.h"
#include "src/workload/loggen.h"
#include "src/workload/queries.h"

namespace {

struct Measured {
  std::string name;
  loggrep::SystemMeasurement cost_input;
};

}  // namespace

int main() {
  using namespace loggrep;

  const DatasetSpec* spec = FindDataset("Log G");
  const std::string raw = LogGenerator(*spec).Generate(512 * 1024);
  const std::string query = QueryForDataset(spec->name);
  constexpr double kTargetGb = 1024.0;  // reason about 1 TB of this log

  const GzipGrepBackend ggrep;
  const ClpLikeBackend clp;
  const EsLikeBackend es;
  const LogGrepBackend lg;
  std::vector<Measured> systems;
  for (const LogStoreBackend* backend :
       std::vector<const LogStoreBackend*>{&ggrep, &clp, &es, &lg}) {
    WallTimer timer;
    const std::string stored = backend->Compress(raw);
    const double compress_s = timer.ElapsedSeconds();
    timer.Reset();
    auto hits = backend->Query(stored, query);
    const double query_s = timer.ElapsedSeconds();
    if (!hits.ok()) {
      std::printf("%s failed: %s\n", backend->name(),
                  hits.status().ToString().c_str());
      return 1;
    }
    Measured m;
    m.name = backend->name();
    m.cost_input.raw_gb = kTargetGb;
    m.cost_input.compression_ratio =
        static_cast<double>(raw.size()) / static_cast<double>(stored.size());
    m.cost_input.compress_speed_mb_s =
        raw.size() / 1e6 / (compress_s > 0 ? compress_s : 1e-9);
    // Scale the measured per-block latency to the 1 TB target.
    m.cost_input.query_latency_s =
        query_s * (kTargetGb * 1024.0 * 1024.0 * 1024.0 /
                   static_cast<double>(raw.size()));
    systems.push_back(m);
  }

  std::printf("measured on %s (%zu KB), extrapolated to 1 TB:\n\n",
              spec->name.c_str(), raw.size() / 1024);
  std::printf("%-11s %8s %12s %14s\n", "system", "ratio", "comp MB/s",
              "query s / TB");
  for (const Measured& m : systems) {
    std::printf("%-11s %8.2f %12.2f %14.0f\n", m.name.c_str(),
                m.cost_input.compression_ratio,
                m.cost_input.compress_speed_mb_s,
                m.cost_input.query_latency_s);
  }

  std::printf("\noverall cost ($ per TB, 6 months) as query frequency grows:\n");
  std::printf("%-11s", "queries:");
  const std::vector<double> freqs = {0, 10, 100, 1000, 10000, 100000};
  for (double f : freqs) {
    std::printf(" %10.0f", f);
  }
  std::printf("\n");
  for (const Measured& m : systems) {
    std::printf("%-11s", m.name.c_str());
    for (double f : freqs) {
      CostParams p;
      p.query_frequency = f;
      std::printf(" %10.2f", ComputeCost(m.cost_input, p).total());
    }
    std::printf("\n");
  }

  // Where does the ES-like engine overtake LogGrep?
  for (const Measured& m : systems) {
    if (m.name == std::string("es-like")) {
      const double f =
          CrossoverFrequency(m.cost_input, systems.back().cost_input);
      if (f < 0) {
        std::printf("\nes-like never beats loggrep on this log\n");
      } else {
        std::printf("\nes-like becomes cheaper than loggrep beyond %.0f "
                    "queries per 6 months\n",
                    f);
      }
    }
  }
  return 0;
}
