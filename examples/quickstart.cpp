// Quickstart: compress a log block with LogGrep and run grep-like queries on
// the compressed representation.
//
//   $ ./quickstart
//
// Walks through the full public API: CompressBlock -> Query, with the stats
// that show the Capsule filtering at work.
#include <cstdio>
#include <string>

#include "src/core/engine.h"
#include "src/workload/datasets.h"
#include "src/workload/loggen.h"

int main() {
  using namespace loggrep;

  // 1. Get some logs. In production these are 64 MB blocks written by the
  //    application; here we synthesize an HDFS-style block.
  const DatasetSpec* spec = FindDataset("Hdfs");
  const std::string raw = LogGenerator(*spec).Generate(256 * 1024);
  std::printf("raw block: %zu bytes\n", raw.size());

  // 2. Compress. The engine parses static patterns, extracts runtime
  //    patterns per variable vector, and packs stamped Capsules.
  LogGrepEngine engine;
  const std::string box = engine.CompressBlock(raw);
  std::printf("capsule box: %zu bytes (ratio %.2fx)\n\n", box.size(),
              static_cast<double>(raw.size()) / static_cast<double>(box.size()));

  // 3. Query without decompressing the block. Commands use grep-ish syntax:
  //    search strings joined by AND / OR / NOT, wildcards within a token.
  for (const std::string& command : {
           std::string("error and blk_884"),
           std::string("Received block and size"),
           std::string("exception NOT writeBlock"),
       }) {
    auto result = engine.Query(box, command);
    if (!result.ok()) {
      std::printf("query failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("query: %s\n  hits: %zu  capsules decompressed: %llu  "
                "filtered by stamps: %llu\n",
                command.c_str(), result->hits.size(),
                static_cast<unsigned long long>(
                    result->locator.capsules_decompressed),
                static_cast<unsigned long long>(
                    result->locator.capsules_stamp_filtered));
    // Hits carry the original line number and the byte-exact original text.
    for (size_t i = 0; i < result->hits.size() && i < 3; ++i) {
      std::printf("  line %6u: %s\n", result->hits[i].first,
                  result->hits[i].second.c_str());
    }
    std::printf("\n");
  }
  return 0;
}
