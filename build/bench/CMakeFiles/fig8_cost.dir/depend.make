# Empty dependencies file for fig8_cost.
# This may be replaced when dependencies are built.
