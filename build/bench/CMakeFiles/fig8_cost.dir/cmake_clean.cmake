file(REMOVE_RECURSE
  "CMakeFiles/fig8_cost.dir/bench_util.cc.o"
  "CMakeFiles/fig8_cost.dir/bench_util.cc.o.d"
  "CMakeFiles/fig8_cost.dir/fig8_cost.cc.o"
  "CMakeFiles/fig8_cost.dir/fig8_cost.cc.o.d"
  "fig8_cost"
  "fig8_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
