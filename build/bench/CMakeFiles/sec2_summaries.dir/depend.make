# Empty dependencies file for sec2_summaries.
# This may be replaced when dependencies are built.
