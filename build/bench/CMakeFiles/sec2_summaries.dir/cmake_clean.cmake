file(REMOVE_RECURSE
  "CMakeFiles/sec2_summaries.dir/bench_util.cc.o"
  "CMakeFiles/sec2_summaries.dir/bench_util.cc.o.d"
  "CMakeFiles/sec2_summaries.dir/sec2_summaries.cc.o"
  "CMakeFiles/sec2_summaries.dir/sec2_summaries.cc.o.d"
  "sec2_summaries"
  "sec2_summaries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec2_summaries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
