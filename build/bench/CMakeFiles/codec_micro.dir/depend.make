# Empty dependencies file for codec_micro.
# This may be replaced when dependencies are built.
