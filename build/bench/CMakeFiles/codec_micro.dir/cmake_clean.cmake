file(REMOVE_RECURSE
  "CMakeFiles/codec_micro.dir/codec_micro.cc.o"
  "CMakeFiles/codec_micro.dir/codec_micro.cc.o.d"
  "codec_micro"
  "codec_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codec_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
