# Empty dependencies file for extractor_compare.
# This may be replaced when dependencies are built.
