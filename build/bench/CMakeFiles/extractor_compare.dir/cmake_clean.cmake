file(REMOVE_RECURSE
  "CMakeFiles/extractor_compare.dir/bench_util.cc.o"
  "CMakeFiles/extractor_compare.dir/bench_util.cc.o.d"
  "CMakeFiles/extractor_compare.dir/extractor_compare.cc.o"
  "CMakeFiles/extractor_compare.dir/extractor_compare.cc.o.d"
  "extractor_compare"
  "extractor_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extractor_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
