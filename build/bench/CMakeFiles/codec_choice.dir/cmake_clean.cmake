file(REMOVE_RECURSE
  "CMakeFiles/codec_choice.dir/bench_util.cc.o"
  "CMakeFiles/codec_choice.dir/bench_util.cc.o.d"
  "CMakeFiles/codec_choice.dir/codec_choice.cc.o"
  "CMakeFiles/codec_choice.dir/codec_choice.cc.o.d"
  "codec_choice"
  "codec_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codec_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
