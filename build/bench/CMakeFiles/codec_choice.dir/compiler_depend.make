# Empty compiler generated dependencies file for codec_choice.
# This may be replaced when dependencies are built.
