file(REMOVE_RECURSE
  "CMakeFiles/fig7_query_latency.dir/bench_util.cc.o"
  "CMakeFiles/fig7_query_latency.dir/bench_util.cc.o.d"
  "CMakeFiles/fig7_query_latency.dir/fig7_query_latency.cc.o"
  "CMakeFiles/fig7_query_latency.dir/fig7_query_latency.cc.o.d"
  "fig7_query_latency"
  "fig7_query_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_query_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
