# Empty compiler generated dependencies file for fig7_compression.
# This may be replaced when dependencies are built.
