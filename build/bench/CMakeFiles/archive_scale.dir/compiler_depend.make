# Empty compiler generated dependencies file for archive_scale.
# This may be replaced when dependencies are built.
