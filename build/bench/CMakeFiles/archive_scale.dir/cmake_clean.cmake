file(REMOVE_RECURSE
  "CMakeFiles/archive_scale.dir/archive_scale.cc.o"
  "CMakeFiles/archive_scale.dir/archive_scale.cc.o.d"
  "CMakeFiles/archive_scale.dir/bench_util.cc.o"
  "CMakeFiles/archive_scale.dir/bench_util.cc.o.d"
  "archive_scale"
  "archive_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archive_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
