file(REMOVE_RECURSE
  "CMakeFiles/fig3_duplication.dir/bench_util.cc.o"
  "CMakeFiles/fig3_duplication.dir/bench_util.cc.o.d"
  "CMakeFiles/fig3_duplication.dir/fig3_duplication.cc.o"
  "CMakeFiles/fig3_duplication.dir/fig3_duplication.cc.o.d"
  "fig3_duplication"
  "fig3_duplication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_duplication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
