# Empty dependencies file for fig3_duplication.
# This may be replaced when dependencies are built.
