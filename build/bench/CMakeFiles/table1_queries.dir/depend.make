# Empty dependencies file for table1_queries.
# This may be replaced when dependencies are built.
