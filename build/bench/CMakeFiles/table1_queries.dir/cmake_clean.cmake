file(REMOVE_RECURSE
  "CMakeFiles/table1_queries.dir/bench_util.cc.o"
  "CMakeFiles/table1_queries.dir/bench_util.cc.o.d"
  "CMakeFiles/table1_queries.dir/table1_queries.cc.o"
  "CMakeFiles/table1_queries.dir/table1_queries.cc.o.d"
  "table1_queries"
  "table1_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
