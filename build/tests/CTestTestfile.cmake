# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(codec_test "/root/repo/build/tests/codec_test")
set_tests_properties(codec_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(parser_test "/root/repo/build/tests/parser_test")
set_tests_properties(parser_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(pattern_test "/root/repo/build/tests/pattern_test")
set_tests_properties(pattern_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(capsule_test "/root/repo/build/tests/capsule_test")
set_tests_properties(capsule_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(query_test "/root/repo/build/tests/query_test")
set_tests_properties(query_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(engine_test "/root/repo/build/tests/engine_test")
set_tests_properties(engine_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(baselines_test "/root/repo/build/tests/baselines_test")
set_tests_properties(baselines_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workload_test "/root/repo/build/tests/workload_test")
set_tests_properties(workload_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cost_test "/root/repo/build/tests/cost_test")
set_tests_properties(cost_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(session_test "/root/repo/build/tests/session_test")
set_tests_properties(session_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(store_test "/root/repo/build/tests/store_test")
set_tests_properties(store_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
