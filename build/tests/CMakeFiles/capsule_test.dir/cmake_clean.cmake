file(REMOVE_RECURSE
  "CMakeFiles/capsule_test.dir/capsule_test.cc.o"
  "CMakeFiles/capsule_test.dir/capsule_test.cc.o.d"
  "capsule_test"
  "capsule_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capsule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
