# Empty dependencies file for loggrep_cli.
# This may be replaced when dependencies are built.
