file(REMOVE_RECURSE
  "CMakeFiles/loggrep_cli.dir/loggrep_cli.cpp.o"
  "CMakeFiles/loggrep_cli.dir/loggrep_cli.cpp.o.d"
  "loggrep_cli"
  "loggrep_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loggrep_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
