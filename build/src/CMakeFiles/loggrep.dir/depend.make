# Empty dependencies file for loggrep.
# This may be replaced when dependencies are built.
