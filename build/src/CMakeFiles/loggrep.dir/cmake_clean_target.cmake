file(REMOVE_RECURSE
  "libloggrep.a"
)
