
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/clp_like.cc" "src/CMakeFiles/loggrep.dir/baselines/clp_like.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/baselines/clp_like.cc.o.d"
  "/root/repo/src/baselines/es_like.cc" "src/CMakeFiles/loggrep.dir/baselines/es_like.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/baselines/es_like.cc.o.d"
  "/root/repo/src/baselines/gzip_grep.cc" "src/CMakeFiles/loggrep.dir/baselines/gzip_grep.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/baselines/gzip_grep.cc.o.d"
  "/root/repo/src/capsule/assembler.cc" "src/CMakeFiles/loggrep.dir/capsule/assembler.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/capsule/assembler.cc.o.d"
  "/root/repo/src/capsule/capsule.cc" "src/CMakeFiles/loggrep.dir/capsule/capsule.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/capsule/capsule.cc.o.d"
  "/root/repo/src/capsule/capsule_box.cc" "src/CMakeFiles/loggrep.dir/capsule/capsule_box.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/capsule/capsule_box.cc.o.d"
  "/root/repo/src/capsule/stamp.cc" "src/CMakeFiles/loggrep.dir/capsule/stamp.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/capsule/stamp.cc.o.d"
  "/root/repo/src/codec/bitstream.cc" "src/CMakeFiles/loggrep.dir/codec/bitstream.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/codec/bitstream.cc.o.d"
  "/root/repo/src/codec/codec.cc" "src/CMakeFiles/loggrep.dir/codec/codec.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/codec/codec.cc.o.d"
  "/root/repo/src/codec/gzip_codec.cc" "src/CMakeFiles/loggrep.dir/codec/gzip_codec.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/codec/gzip_codec.cc.o.d"
  "/root/repo/src/codec/huffman.cc" "src/CMakeFiles/loggrep.dir/codec/huffman.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/codec/huffman.cc.o.d"
  "/root/repo/src/codec/lz_huff.cc" "src/CMakeFiles/loggrep.dir/codec/lz_huff.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/codec/lz_huff.cc.o.d"
  "/root/repo/src/codec/lz_matcher.cc" "src/CMakeFiles/loggrep.dir/codec/lz_matcher.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/codec/lz_matcher.cc.o.d"
  "/root/repo/src/codec/range_coder.cc" "src/CMakeFiles/loggrep.dir/codec/range_coder.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/codec/range_coder.cc.o.d"
  "/root/repo/src/codec/xz_codec.cc" "src/CMakeFiles/loggrep.dir/codec/xz_codec.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/codec/xz_codec.cc.o.d"
  "/root/repo/src/codec/zstd_codec.cc" "src/CMakeFiles/loggrep.dir/codec/zstd_codec.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/codec/zstd_codec.cc.o.d"
  "/root/repo/src/common/bloom.cc" "src/CMakeFiles/loggrep.dir/common/bloom.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/common/bloom.cc.o.d"
  "/root/repo/src/common/bytes.cc" "src/CMakeFiles/loggrep.dir/common/bytes.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/common/bytes.cc.o.d"
  "/root/repo/src/common/charclass.cc" "src/CMakeFiles/loggrep.dir/common/charclass.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/common/charclass.cc.o.d"
  "/root/repo/src/common/result.cc" "src/CMakeFiles/loggrep.dir/common/result.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/common/result.cc.o.d"
  "/root/repo/src/common/rowset.cc" "src/CMakeFiles/loggrep.dir/common/rowset.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/common/rowset.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/loggrep.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/common/string_util.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/loggrep.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/CMakeFiles/loggrep.dir/core/engine.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/core/engine.cc.o.d"
  "/root/repo/src/core/session.cc" "src/CMakeFiles/loggrep.dir/core/session.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/core/session.cc.o.d"
  "/root/repo/src/cost/cost_model.cc" "src/CMakeFiles/loggrep.dir/cost/cost_model.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/cost/cost_model.cc.o.d"
  "/root/repo/src/parser/block_parser.cc" "src/CMakeFiles/loggrep.dir/parser/block_parser.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/parser/block_parser.cc.o.d"
  "/root/repo/src/parser/static_pattern.cc" "src/CMakeFiles/loggrep.dir/parser/static_pattern.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/parser/static_pattern.cc.o.d"
  "/root/repo/src/parser/template_miner.cc" "src/CMakeFiles/loggrep.dir/parser/template_miner.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/parser/template_miner.cc.o.d"
  "/root/repo/src/parser/tokenizer.cc" "src/CMakeFiles/loggrep.dir/parser/tokenizer.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/parser/tokenizer.cc.o.d"
  "/root/repo/src/pattern/cluster_extractor.cc" "src/CMakeFiles/loggrep.dir/pattern/cluster_extractor.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/pattern/cluster_extractor.cc.o.d"
  "/root/repo/src/pattern/merge_extractor.cc" "src/CMakeFiles/loggrep.dir/pattern/merge_extractor.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/pattern/merge_extractor.cc.o.d"
  "/root/repo/src/pattern/runtime_pattern.cc" "src/CMakeFiles/loggrep.dir/pattern/runtime_pattern.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/pattern/runtime_pattern.cc.o.d"
  "/root/repo/src/pattern/tree_extractor.cc" "src/CMakeFiles/loggrep.dir/pattern/tree_extractor.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/pattern/tree_extractor.cc.o.d"
  "/root/repo/src/query/fixed_matcher.cc" "src/CMakeFiles/loggrep.dir/query/fixed_matcher.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/query/fixed_matcher.cc.o.d"
  "/root/repo/src/query/line_match.cc" "src/CMakeFiles/loggrep.dir/query/line_match.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/query/line_match.cc.o.d"
  "/root/repo/src/query/locator.cc" "src/CMakeFiles/loggrep.dir/query/locator.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/query/locator.cc.o.d"
  "/root/repo/src/query/pattern_match.cc" "src/CMakeFiles/loggrep.dir/query/pattern_match.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/query/pattern_match.cc.o.d"
  "/root/repo/src/query/query_cache.cc" "src/CMakeFiles/loggrep.dir/query/query_cache.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/query/query_cache.cc.o.d"
  "/root/repo/src/query/query_parser.cc" "src/CMakeFiles/loggrep.dir/query/query_parser.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/query/query_parser.cc.o.d"
  "/root/repo/src/query/reconstructor.cc" "src/CMakeFiles/loggrep.dir/query/reconstructor.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/query/reconstructor.cc.o.d"
  "/root/repo/src/query/wildcard.cc" "src/CMakeFiles/loggrep.dir/query/wildcard.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/query/wildcard.cc.o.d"
  "/root/repo/src/store/log_archive.cc" "src/CMakeFiles/loggrep.dir/store/log_archive.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/store/log_archive.cc.o.d"
  "/root/repo/src/workload/datasets.cc" "src/CMakeFiles/loggrep.dir/workload/datasets.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/workload/datasets.cc.o.d"
  "/root/repo/src/workload/loggen.cc" "src/CMakeFiles/loggrep.dir/workload/loggen.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/workload/loggen.cc.o.d"
  "/root/repo/src/workload/queries.cc" "src/CMakeFiles/loggrep.dir/workload/queries.cc.o" "gcc" "src/CMakeFiles/loggrep.dir/workload/queries.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
