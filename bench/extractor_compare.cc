// §4.1 motivation reproduction: general-purpose pattern extraction is too
// slow at log scale. Compares the paper's two extractors (tree expanding
// O(n), pattern merging O(n log n)) against a textbook hierarchical
// clustering extractor (O(n^2)) on representative variable vectors, and
// checks the produced patterns still capture the structure.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/timer.h"
#include "src/pattern/cluster_extractor.h"
#include "src/pattern/merge_extractor.h"
#include "src/pattern/tree_extractor.h"

namespace loggrep {
namespace {

std::vector<std::string> HexIds(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> values;
  for (size_t i = 0; i < n; ++i) {
    std::string v = "blk_5E9D";
    for (int k = 0; k < 8; ++k) {
      v += "0123456789ABCDEF"[rng.NextBelow(16)];
    }
    values.push_back(std::move(v));
  }
  return values;
}

std::vector<std::string> MixedStatus(size_t n, uint64_t seed) {
  Rng rng(seed);
  static const char* kPool[] = {"SUCC", "ERR#404", "ERR#501", "TIMEOUT",
                                "ERR#403", "RETRY/3", "RETRY/5"};
  std::vector<std::string> values;
  for (size_t i = 0; i < n; ++i) {
    values.emplace_back(kPool[rng.NextBelow(7)]);
  }
  return values;
}

double TimeMs(const std::function<void()>& fn) {
  WallTimer t;
  fn();
  return t.ElapsedSeconds() * 1000;
}

}  // namespace
}  // namespace loggrep

int main() {
  using namespace loggrep;
  std::printf("== Section 4.1 motivation: extraction time by method ==\n");
  std::printf("%-22s %8s %14s %14s %16s\n", "vector", "values", "tree (ms)",
              "merge (ms)", "clustering (ms)");
  for (const size_t n : {128u, 256u, 512u}) {
    for (const bool hex : {true, false}) {
      const std::vector<std::string> values =
          hex ? HexIds(n, 7) : MixedStatus(n, 7);
      const double tree_ms =
          TimeMs([&] { TreeExtractor().Extract(values); });
      const double merge_ms =
          TimeMs([&] { MergeExtractor().Extract(values); });
      ClusterExtractorOptions copts;
      copts.max_values = n;
      const double cluster_ms =
          TimeMs([&] { ClusterExtractor(copts).Extract(values); });
      std::printf("%-22s %8zu %14.3f %14.3f %16.2f\n",
                  hex ? "hex block ids" : "status enums", n, tree_ms, merge_ms,
                  cluster_ms);
    }
  }

  // Sanity: the fast extractors still find the structure the slow one does.
  const std::vector<std::string> ids = HexIds(256, 3);
  std::printf("\ntree pattern on hex ids:    %s\n",
              TreeExtractor().Extract(ids).ToString().c_str());
  const std::vector<std::string> status = MixedStatus(256, 3);
  const NominalExtraction merged = MergeExtractor().Extract(status);
  std::printf("merge patterns on statuses: ");
  for (const RuntimePattern& p : merged.patterns) {
    std::printf("%s  ", p.ToString().c_str());
  }
  std::printf("\npaper: general-purpose extraction is orders of magnitude "
              "slower, motivating the two specialized methods\n");
  return 0;
}
