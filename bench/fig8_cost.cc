// Figure 8 reproduction: overall cost per system (Equation 1), separately
// for the production-like family (Fig. 8a) and the public family (Fig. 8b),
// plus the ES crossover-frequency analysis of §6.1/§6.2.
//
// Measurements are taken at bench scale and extrapolated linearly to 1 TB of
// raw logs, matching the paper's $/TB axis.
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"

int main() {
  using namespace loggrep;
  using bench::Measurement;

  constexpr double kTargetGb = 1024.0;  // cost per TB
  const CostParams params;              // the paper's Alibaba constants

  std::vector<Measurement> all;
  for (const DatasetSpec& spec : AllDatasets()) {
    const std::vector<Measurement> row = bench::MeasureDataset(spec);
    all.insert(all.end(), row.begin(), row.end());
  }

  for (const bool production : {true, false}) {
    // Average the cost breakdown across the family's datasets.
    std::map<std::string, CostBreakdown> sums;
    std::map<std::string, int> counts;
    for (const Measurement& m : all) {
      const DatasetSpec* spec = FindDataset(m.dataset);
      if (spec == nullptr || spec->production != production) {
        continue;
      }
      const CostBreakdown c =
          ComputeCost(bench::ToCostInput(m, kTargetGb), params);
      sums[m.system].storage += c.storage;
      sums[m.system].compress += c.compress;
      sums[m.system].query += c.query;
      counts[m.system] += 1;
    }
    std::printf("== Figure 8(%c): overall cost, $ per TB over 6 months, "
                "query frequency %.0f (%s logs) ==\n",
                production ? 'a' : 'b', params.query_frequency,
                production ? "production" : "public");
    std::printf("%-12s %10s %12s %10s %10s\n", "system", "storage",
                "compression", "query", "TOTAL");
    double loggrep_total = 0;
    for (const bench::System& sys : bench::AllSystems()) {
      CostBreakdown c = sums[sys.name];
      const int n = counts[sys.name];
      if (n > 0) {
        c.storage /= n;
        c.compress /= n;
        c.query /= n;
      }
      std::printf("%-12s %10.2f %12.2f %10.2f %10.2f\n", sys.name.c_str(),
                  c.storage, c.compress, c.query, c.total());
      if (sys.name == "loggrep") {
        loggrep_total = c.total();
      }
    }
    for (const bench::System& sys : bench::AllSystems()) {
      if (sys.name == "loggrep" || counts[sys.name] == 0) {
        continue;
      }
      CostBreakdown c = sums[sys.name];
      const double total = c.total() / counts[sys.name];
      if (total > 0) {
        std::printf("  loggrep cost is %.0f%% of %s\n",
                    100.0 * loggrep_total / total, sys.name.c_str());
      }
    }

    // ES crossover: the query frequency beyond which the ES-like system
    // becomes cheaper than LogGrep, per dataset.
    std::printf("  ES-like crossover frequency per dataset (queries / 6 months):\n");
    for (const DatasetSpec& spec : AllDatasets()) {
      if (spec.production != production) {
        continue;
      }
      const Measurement* es = nullptr;
      const Measurement* lg = nullptr;
      for (const Measurement& m : all) {
        if (m.dataset != spec.name) {
          continue;
        }
        if (m.system == "es-like") {
          es = &m;
        } else if (m.system == "loggrep") {
          lg = &m;
        }
      }
      if (es == nullptr || lg == nullptr) {
        continue;
      }
      const double f = CrossoverFrequency(bench::ToCostInput(*es, kTargetGb),
                                          bench::ToCostInput(*lg, kTargetGb),
                                          params);
      if (f < 0) {
        std::printf("    %-12s never (LogGrep query latency already lower)\n",
                    spec.name.c_str());
      } else {
        std::printf("    %-12s %.0f\n", spec.name.c_str(), f);
      }
    }
    std::printf("\n");
  }
  std::printf("paper shapes: LogGrep total = 34%% of gzip+grep, 36%%/41%% of "
              "CLP, 5-7%% of ES, 73-74%% of LogGrep-SP;\n"
              "ES wins only beyond thousands of queries per period\n");
  return 0;
}
