// §2.2 / §2.3 reproduction: how much stricter summaries get as partitioning
// refines from whole log blocks to variable vectors to sub-variable vectors.
//
// The paper reports (production logs): character types per unit 5.8 -> 3.1 ->
// 1.5 and length variance 198.5 -> 66.1 -> 32.5. This bench recomputes both
// statistics at all three granularities over the synthetic corpus.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/charclass.h"
#include "src/common/string_util.h"
#include "src/parser/block_parser.h"
#include "src/pattern/tree_extractor.h"
#include "src/workload/loggen.h"

namespace loggrep {
namespace {

struct Stats {
  double type_sum = 0;
  double var_sum = 0;
  int units = 0;

  void Add(const std::vector<std::string>& values) {
    TypeMask mask = 0;
    for (const std::string& v : values) {
      mask |= TypeMaskOf(v);
    }
    type_sum += MaskTypeCount(mask);
    var_sum += LengthVariance(values);
    ++units;
  }

  void Print(const char* label) const {
    std::printf("%-22s %10.2f %16.1f %10d\n", label,
                units > 0 ? type_sum / units : 0.0,
                units > 0 ? var_sum / units : 0.0, units);
  }
};

}  // namespace
}  // namespace loggrep

int main() {
  using namespace loggrep;
  Stats block_stats;
  Stats vector_stats;
  Stats subvar_stats;

  for (const DatasetSpec& spec : AllDatasets()) {
    const std::string text =
        LogGenerator(spec).Generate(bench::DatasetBytes() / 4);
    // Block granularity: the lines themselves are the values.
    const std::vector<std::string_view> line_views = SplitLines(text);
    std::vector<std::string> lines(line_views.begin(), line_views.end());
    block_stats.Add(lines);

    const ParsedBlock block = BlockParser().Parse(text);
    const TreeExtractor extractor;
    for (const ParsedGroup& g : block.groups) {
      for (const auto& vv : g.var_vectors) {
        if (vv.size() < 32) {
          continue;
        }
        vector_stats.Add(vv);
        // Sub-variable granularity via runtime pattern decomposition.
        if (ClassifyVector(vv) != VectorClass::kReal) {
          continue;
        }
        const RuntimePattern p = extractor.Extract(vv);
        const uint32_t n = p.SubVarCount();
        if (n == 0 || p.elements().size() <= 1) {
          continue;
        }
        std::vector<std::vector<std::string>> cols(n);
        for (const std::string& v : vv) {
          auto m = p.MatchValue(v);
          if (!m.has_value()) {
            continue;
          }
          for (uint32_t s = 0; s < n; ++s) {
            cols[s].emplace_back((*m)[s]);
          }
        }
        for (const auto& col : cols) {
          if (!col.empty()) {
            subvar_stats.Add(col);
          }
        }
      }
    }
  }

  std::printf("== Sections 2.2/2.3: summary strictness by granularity ==\n");
  std::printf("%-22s %10s %16s %10s\n", "granularity", "char types",
              "length variance", "units");
  block_stats.Print("log block");
  vector_stats.Print("variable vector");
  subvar_stats.Print("sub-variable vector");
  std::printf("\npaper (production logs): block 5.8 / 198.5, variable vector "
              "3.1 / 66.1, sub-variable 1.5 / 32.5\n");
  return 0;
}
