#include "bench/bench_util.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "src/baselines/clp_like.h"
#include "src/baselines/es_like.h"
#include "src/baselines/gzip_grep.h"
#include "src/baselines/loggrep_backend.h"
#include "src/common/timer.h"
#include "src/workload/loggen.h"
#include "src/workload/queries.h"

namespace loggrep {
namespace bench {

size_t DatasetBytes() {
  const char* env = std::getenv("LOGGREP_BENCH_KB");
  const long kb = env != nullptr ? std::atol(env) : 768;
  return static_cast<size_t>(kb > 0 ? kb : 768) * 1024;
}

std::string BenchOutputPath(const std::string& filename) {
  const char* dir = std::getenv("LOGGREP_BENCH_OUT_DIR");
  if (dir == nullptr || *dir == '\0') {
    return filename;
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return (std::filesystem::path(dir) / filename).string();
}

const std::vector<System>& AllSystems() {
  static const std::vector<System>* kSystems = [] {
    auto* systems = new std::vector<System>();
    systems->push_back({"gzip+grep", new GzipGrepBackend()});
    systems->push_back({"clp-like", new ClpLikeBackend()});
    systems->push_back({"es-like", new EsLikeBackend()});
    systems->push_back(
        {"loggrep-sp", new LogGrepBackend(LogGrepBackend::StaticPatternsOnly())});
    systems->push_back({"loggrep", new LogGrepBackend()});
    return systems;
  }();
  return *kSystems;
}

double TimeSeconds(const std::function<void()>& fn) {
  WallTimer timer;
  fn();
  return timer.ElapsedSeconds();
}

std::vector<Measurement> MeasureDataset(const DatasetSpec& spec) {
  const std::string text = LogGenerator(spec).Generate(DatasetBytes());
  const std::vector<std::string> queries = QuerySuiteForDataset(spec.name);
  std::vector<Measurement> out;
  for (const System& sys : AllSystems()) {
    Measurement m;
    m.dataset = spec.name;
    m.system = sys.name;
    m.raw_mb = static_cast<double>(text.size()) / 1e6;
    std::string stored;
    m.compress_seconds =
        TimeSeconds([&] { stored = sys.backend->Compress(text); });
    m.compressed_mb = static_cast<double>(stored.size()) / 1e6;
    double total = 0;
    int runs = 0;
    for (const std::string& q : queries) {
      total += TimeSeconds([&] {
        auto hits = sys.backend->Query(stored, q);
        if (!hits.ok()) {
          std::fprintf(stderr, "%s: query '%s' failed: %s\n", sys.name.c_str(),
                       q.c_str(), hits.status().ToString().c_str());
        }
      });
      ++runs;
    }
    m.query_seconds = runs > 0 ? total / runs : 0;
    out.push_back(m);
  }
  return out;
}

SystemMeasurement ToCostInput(const Measurement& m, double target_gb) {
  SystemMeasurement c;
  c.raw_gb = target_gb;
  c.compression_ratio = m.ratio();
  c.compress_speed_mb_s = m.compress_mb_s();
  const double measured_gb = m.raw_mb / 1024.0 * (1e6 / (1 << 20));
  c.query_latency_s =
      measured_gb > 0 ? m.query_seconds * (target_gb / measured_gb) : 0;
  return c;
}

double GeoMean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0;
  }
  double log_sum = 0;
  for (double v : values) {
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace bench
}  // namespace loggrep
