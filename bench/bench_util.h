// Shared harness for the table/figure reproduction benches.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <functional>
#include <string>
#include <vector>

#include "src/baselines/backend.h"
#include "src/cost/cost_model.h"
#include "src/workload/datasets.h"

namespace loggrep {
namespace bench {

// Bytes of synthetic log generated per dataset. Controlled by the
// LOGGREP_BENCH_KB environment variable (default 768 KiB) so the benches can
// be scaled up on larger machines.
size_t DatasetBytes();

// Where a bench writes its BENCH_<name>.json result file: joined under
// $LOGGREP_BENCH_OUT_DIR when set (created if missing), else the working
// directory. Every bench emits through this so CI collects all artifacts
// from one place.
std::string BenchOutputPath(const std::string& filename);

// All five evaluated systems, in presentation order:
// gzip+grep, CLP-like, ES-like, LogGrep-SP, LogGrep.
struct System {
  std::string name;
  const LogStoreBackend* backend;
};
const std::vector<System>& AllSystems();

// Wall-clock seconds of one call.
double TimeSeconds(const std::function<void()>& fn);

// Per-(dataset, system) measurements feeding Figures 7 and 8.
struct Measurement {
  std::string dataset;
  std::string system;
  double raw_mb = 0;
  double compressed_mb = 0;
  double compress_seconds = 0;
  double query_seconds = 0;  // mean over the dataset's query suite

  double ratio() const { return compressed_mb > 0 ? raw_mb / compressed_mb : 0; }
  double compress_mb_s() const {
    return compress_seconds > 0 ? raw_mb / compress_seconds : 0;
  }
};

// Runs compression + the dataset's query suite for every system.
std::vector<Measurement> MeasureDataset(const DatasetSpec& spec);

// Converts a measurement to Equation 1 inputs, extrapolated to `target_gb`
// of raw logs (latency and size scale linearly with data volume for these
// scan-style systems).
SystemMeasurement ToCostInput(const Measurement& m, double target_gb);

// Geometric mean; empty input -> 0.
double GeoMean(const std::vector<double>& values);

}  // namespace bench
}  // namespace loggrep

#endif  // BENCH_BENCH_UTIL_H_
