// Micro-benchmarks (google-benchmark): the three codecs' compress/decompress
// throughput and the fixed-length matchers (Boyer-Moore vs KMP, §5.2).
#include <benchmark/benchmark.h>

#include "src/capsule/capsule.h"
#include "src/codec/codec.h"
#include "src/common/rng.h"
#include "src/query/fixed_matcher.h"
#include "src/workload/datasets.h"
#include "src/workload/loggen.h"

namespace loggrep {
namespace {

const std::string& CorpusText() {
  static const std::string* kText = new std::string(
      LogGenerator(*FindDataset("Log G")).Generate(1 << 20));
  return *kText;
}

const Codec& CodecByIndex(int i) {
  switch (i) {
    case 0:
      return GetGzipCodec();
    case 1:
      return GetZstdCodec();
    default:
      return GetXzCodec();
  }
}

void BM_Compress(benchmark::State& state) {
  const Codec& codec = CodecByIndex(static_cast<int>(state.range(0)));
  const std::string& input = CorpusText();
  size_t out_bytes = 0;
  for (auto _ : state) {
    const std::string blob = codec.Compress(input);
    out_bytes = blob.size();
    benchmark::DoNotOptimize(blob.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(input.size()));
  state.SetLabel(std::string(codec.name()) + " ratio=" +
                 std::to_string(static_cast<double>(input.size()) /
                                static_cast<double>(out_bytes)));
}
BENCHMARK(BM_Compress)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_Decompress(benchmark::State& state) {
  const Codec& codec = CodecByIndex(static_cast<int>(state.range(0)));
  const std::string& input = CorpusText();
  const std::string blob = codec.Compress(input);
  for (auto _ : state) {
    auto out = codec.Decompress(blob);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(input.size()));
  state.SetLabel(codec.name());
}
BENCHMARK(BM_Decompress)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

std::string PaddedColumn(uint32_t width, uint32_t rows) {
  Rng rng(11);
  std::vector<std::string> owned;
  for (uint32_t i = 0; i < rows; ++i) {
    std::string v;
    const uint32_t len = 1 + static_cast<uint32_t>(rng.NextBelow(width));
    for (uint32_t k = 0; k < len; ++k) {
      v += "0123456789ABCDEF"[rng.NextBelow(16)];
    }
    owned.push_back(std::move(v));
  }
  std::vector<std::string_view> views(owned.begin(), owned.end());
  return BuildPaddedBlob(views, width);
}

void BM_FixedLengthSearch(benchmark::State& state) {
  const bool use_bm = state.range(0) == 1;
  const std::string blob = PaddedColumn(16, 200000);
  for (auto _ : state) {
    auto rows = SearchPaddedColumn(blob, 16, FragmentMode::kSub, "5E9D", use_bm);
    benchmark::DoNotOptimize(rows);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(blob.size()));
  state.SetLabel(use_bm ? "boyer-moore" : "kmp");
}
BENCHMARK(BM_FixedLengthSearch)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace loggrep

BENCHMARK_MAIN();
