// Figure 3 reproduction: distribution of single-pattern vs multi-pattern
// variable vectors with respect to duplication rate.
//
// For every variable vector of every dataset we compute the duplication rate
// and label the vector single-pattern when one runtime pattern covers at
// least 90% of its values (the paper's definition, §4.1). The paper reports
// a bathtub-shaped distribution where low-duplication vectors are almost all
// single-pattern.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/parser/block_parser.h"
#include "src/pattern/merge_extractor.h"
#include "src/pattern/tree_extractor.h"
#include "src/workload/loggen.h"

namespace loggrep {
namespace {

// One pattern's coverage of the vector's values (rows, not uniques).
bool IsSinglePattern(const std::vector<std::string>& values) {
  // Candidate 1: the tree-expanding pattern. The trivial "<*>" pattern
  // matches anything and does not count as structure.
  const TreeExtractor tree;
  const RuntimePattern p = tree.Extract(values);
  if (p.elements().size() > 1) {
    size_t covered = 0;
    for (const std::string& v : values) {
      covered += p.MatchValue(v).has_value() ? 1 : 0;
    }
    if (covered >= values.size() * 9 / 10) {
      return true;
    }
  }
  // Candidate 2: the dominant merged pattern.
  const MergeExtractor merge;
  const NominalExtraction ex = merge.Extract(values);
  std::vector<size_t> per_pattern(ex.patterns.size(), 0);
  for (uint32_t idx : ex.index) {
    ++per_pattern[ex.pattern_of_dict[idx]];
  }
  size_t best = 0;
  for (size_t c : per_pattern) {
    best = std::max(best, c);
  }
  return best >= values.size() * 9 / 10;
}

}  // namespace
}  // namespace loggrep

int main() {
  using namespace loggrep;
  constexpr int kBins = 10;
  int single[kBins] = {};
  int multi[kBins] = {};
  int total_vectors = 0;

  for (const DatasetSpec& spec : AllDatasets()) {
    const std::string text =
        LogGenerator(spec).Generate(bench::DatasetBytes() / 4);
    const ParsedBlock block = BlockParser().Parse(text);
    for (const ParsedGroup& g : block.groups) {
      for (const auto& vv : g.var_vectors) {
        if (vv.size() < 32) {
          continue;  // too small to classify meaningfully
        }
        const double rate = DuplicationRate(vv);
        int bin = static_cast<int>(rate * kBins);
        if (bin >= kBins) {
          bin = kBins - 1;
        }
        if (IsSinglePattern(vv)) {
          ++single[bin];
        } else {
          ++multi[bin];
        }
        ++total_vectors;
      }
    }
  }

  std::printf("== Figure 3: single- vs multi-pattern variable vectors by "
              "duplication rate ==\n");
  std::printf("%-14s %14s %14s %10s\n", "dup-rate bin", "single-pattern",
              "multi-pattern", "%single");
  for (int b = 0; b < kBins; ++b) {
    const int n = single[b] + multi[b];
    std::printf("[%.1f, %.1f)%-3s %14d %14d %9.1f%%\n", b * 0.1, (b + 1) * 0.1,
                "", single[b], multi[b],
                n > 0 ? 100.0 * single[b] / n : 0.0);
  }
  std::printf("total vectors: %d\n", total_vectors);

  // Paper shape check: vectors in the low-duplication half are predominantly
  // single-pattern.
  int low_single = 0;
  int low_total = 0;
  for (int b = 0; b < kBins / 2; ++b) {
    low_single += single[b];
    low_total += single[b] + multi[b];
  }
  std::printf("low-duplication (<0.5) single-pattern share: %.1f%% %s\n",
              low_total > 0 ? 100.0 * low_single / low_total : 0.0,
              low_total > 0 && low_single * 10 >= low_total * 9
                  ? "(matches paper: >=90%)"
                  : "");
  return 0;
}
