// Figure 7(a) + §6.2 reproduction: query latency per dataset per system.
//
// Prints per-dataset latencies (ms) for the five systems, then the
// cross-dataset geometric-mean speedups of LogGrep over each comparator, for
// the production family (Fig. 7a) and the public family (§6.2) separately.
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"

int main() {
  using namespace loggrep;
  using bench::Measurement;

  std::vector<Measurement> all;
  std::printf("== Figure 7(a) / Section 6.2: query latency (ms per query, one CPU) ==\n");
  std::printf("%-12s", "dataset");
  for (const bench::System& sys : bench::AllSystems()) {
    std::printf(" %12s", sys.name.c_str());
  }
  std::printf("\n");
  for (const DatasetSpec& spec : AllDatasets()) {
    const std::vector<Measurement> row = bench::MeasureDataset(spec);
    std::printf("%-12s", spec.name.c_str());
    for (const Measurement& m : row) {
      std::printf(" %12.2f", m.query_seconds * 1000);
    }
    std::printf("\n");
    all.insert(all.end(), row.begin(), row.end());
  }

  for (const bool production : {true, false}) {
    std::map<std::string, std::vector<double>> speedups;
    for (const DatasetSpec& spec : AllDatasets()) {
      if (spec.production != production) {
        continue;
      }
      double loggrep_latency = 0;
      for (const Measurement& m : all) {
        if (m.dataset == spec.name && m.system == "loggrep") {
          loggrep_latency = m.query_seconds;
        }
      }
      if (loggrep_latency <= 0) {
        continue;
      }
      for (const Measurement& m : all) {
        if (m.dataset == spec.name && m.system != "loggrep" &&
            m.query_seconds > 0) {
          speedups[m.system].push_back(m.query_seconds / loggrep_latency);
        }
      }
    }
    std::printf("\n-- %s logs: LogGrep speedup (geometric mean of "
                "latency ratios; >1 = LogGrep faster) --\n",
                production ? "production (Fig. 7a)" : "public (Sec. 6.2)");
    for (const auto& [system, ratios] : speedups) {
      std::printf("  vs %-12s %8.2fx\n", system.c_str(),
                  bench::GeoMean(ratios));
    }
  }
  std::printf("\npaper shapes: ~30x vs gzip+grep, ~35x vs CLP, ~0.5-3x vs ES,"
              " ~10x vs LogGrep-SP (production)\n");
  return 0;
}
