// Archive-scale bench (beyond the paper's single-block evaluation, toward
// its §8 scale-out direction): many compressed blocks behind block-level
// summaries. Measures how Bloom/stamp block pruning cuts needle-query
// latency as the archive grows, versus force-querying every block.
#include <cstdio>
#include <filesystem>

#include "bench/bench_util.h"
#include "src/common/timer.h"
#include "src/store/log_archive.h"
#include "src/workload/loggen.h"
#include "src/workload/queries.h"

int main() {
  using namespace loggrep;
  const std::string dir =
      (std::filesystem::temp_directory_path() / "loggrep_archive_bench").string();
  std::filesystem::remove_all(dir);

  auto archive = LogArchive::Create(dir);
  if (!archive.ok()) {
    std::fprintf(stderr, "create failed: %s\n", archive.status().ToString().c_str());
    return 1;
  }

  // Ingest blocks from several log types; plant one needle in a late block.
  constexpr int kBlocks = 12;
  const char* sources[] = {"Log A", "Log G", "Hdfs", "Ssh"};
  WallTimer ingest_timer;
  for (int b = 0; b < kBlocks; ++b) {
    DatasetSpec spec = *FindDataset(sources[b % 4]);
    spec.seed += static_cast<uint64_t>(b) * 101;
    std::string text = LogGenerator(spec).Generate(bench::DatasetBytes() / 2);
    if (b == kBlocks - 2) {
      text += "planted incident marker XNEEDLE77 for the archive bench\n";
    }
    if (Status s = archive->AppendBlock(text); !s.ok()) {
      std::fprintf(stderr, "append failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  const double ingest_s = ingest_timer.ElapsedSeconds();
  std::printf("== Archive-scale: %d blocks, %.1f MB raw -> %.1f MB stored "
              "(%.2fx), ingested in %.2fs ==\n",
              kBlocks, archive->total_raw_bytes() / 1e6,
              archive->total_stored_bytes() / 1e6,
              static_cast<double>(archive->total_raw_bytes()) /
                  static_cast<double>(archive->total_stored_bytes()),
              ingest_s);

  const char* queries[] = {
      "XNEEDLE77",                                  // one block holds it
      "ERROR and state:REQ_ST_CLOSED and 20012",    // hits Log A blocks only
      "zzzNOSUCHTOKEN42",                           // nothing, pure pruning
      "Operation:ReadChunk and SATADiskId:7",       // hits Log G blocks
  };
  std::printf("%-45s %8s %8s %8s %8s\n", "query", "ms", "hits", "pruned",
              "queried");
  for (const char* q : queries) {
    WallTimer t;
    auto result = archive->Query(q);
    const double ms = t.ElapsedSeconds() * 1000;
    if (!result.ok()) {
      std::printf("%-45s FAILED %s\n", q, result.status().ToString().c_str());
      continue;
    }
    std::printf("%-45s %8.2f %8zu %8u %8u\n", q, ms, result->hits.size(),
                result->blocks_pruned, result->blocks_queried);
  }

  std::filesystem::remove_all(dir);
  return 0;
}
