// Federation scaling bench: query cost against an ArchiveSet as the shard
// count grows, and what time-range pruning buys back.
//
// For each shard count in {1, 4, 16} it builds a single-tenant set whose
// shards are consecutive time windows, then drives the dataset's query
// suite two ways over identical command sequences:
//
//   full scatter   no predicate — every live shard is visited
//   time-pruned    from= the last window's start — sealed earlier windows
//                  are pruned by the shard-granular time predicate
//
// A third leg measures what compaction buys back: a 16-window set is
// queried full-scatter, compacted (default policy: 15 sealed shards merge
// into two, the active shard stays), and queried again with the identical
// command sequence.
//
// Prints a QPS/p50/p99 row per (shard count, mode) and writes
// BENCH_federation.json (via LOGGREP_BENCH_OUT_DIR like every bench).
// Exits non-zero when a gate fails: for every shard count > 1 the pruned
// pass must visit strictly fewer shards AND take strictly less wall-clock
// than the full scatter, and both modes must agree hit-for-hit on the
// pruned window's lines; the compacted set must answer the full scatter
// with strictly fewer shard visits and hit-for-hit identical results.
//
// Scale knobs (env): LOGGREP_FED_LINES (lines per shard, default 400),
// LOGGREP_FED_ITERS (requests per mode, default 24), LOGGREP_FED_THREADS
// (scatter width per request, default 4).
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/store/archive_set.h"
#include "src/workload/datasets.h"
#include "src/workload/loggen.h"
#include "src/workload/queries.h"

namespace loggrep {
namespace bench {
namespace {

constexpr uint64_t kWindowSpanNs = 1'000'000'000ull;  // 1 s per shard window

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  const long long parsed = std::atoll(value);
  return parsed >= 0 ? static_cast<uint64_t>(parsed) : fallback;
}

struct ModeStats {
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double wall_seconds = 0;
  uint64_t shards_visited = 0;  // per request (identical across requests)
  uint64_t hits = 0;            // summed over the timed requests
};

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) {
    return 0;
  }
  std::sort(samples.begin(), samples.end());
  const size_t index = std::min(
      samples.size() - 1, static_cast<size_t>(p * (samples.size() - 1) + 0.5));
  return samples[index];
}

// Runs `iters` requests cycling through `commands`, one ParallelQuery per
// request. Returns false on any query error.
bool DriveMode(ArchiveSet* set, const std::vector<std::string>& commands,
               const SetQueryPredicate& pred, size_t iters, size_t threads,
               ModeStats* stats) {
  std::vector<double> latencies_ms;
  latencies_ms.reserve(iters);
  const double wall = TimeSeconds([&] {
    for (size_t i = 0; i < iters; ++i) {
      const std::string& command = commands[i % commands.size()];
      Result<SetQueryResult> result = Unavailable("not yet run");
      const double seconds = TimeSeconds(
          [&] { result = set->ParallelQuery(command, pred, threads); });
      if (!result.ok()) {
        std::fprintf(stderr, "query '%s' failed: %s\n", command.c_str(),
                     result.status().ToString().c_str());
        latencies_ms.clear();
        return;
      }
      latencies_ms.push_back(seconds * 1e3);
      stats->shards_visited = result->shards_visited;
      stats->hits += result->hits.size();
    }
  });
  if (latencies_ms.empty()) {
    return false;
  }
  stats->wall_seconds = wall;
  stats->qps = wall > 0 ? static_cast<double>(iters) / wall : 0;
  stats->p50_ms = Percentile(latencies_ms, 0.50);
  stats->p99_ms = Percentile(latencies_ms, 0.99);
  return true;
}

std::string ModeJson(const ModeStats& m) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"qps\":%.1f,\"p50_ms\":%.3f,\"p99_ms\":%.3f,"
                "\"wall_seconds\":%.4f,\"shards_visited\":%" PRIu64
                ",\"hits\":%" PRIu64 "}",
                m.qps, m.p50_ms, m.p99_ms, m.wall_seconds, m.shards_visited,
                m.hits);
  return buf;
}

int Run() {
  const size_t lines_per_shard =
      static_cast<size_t>(EnvU64("LOGGREP_FED_LINES", 400));
  const size_t iters = static_cast<size_t>(EnvU64("LOGGREP_FED_ITERS", 24));
  const size_t threads =
      static_cast<size_t>(EnvU64("LOGGREP_FED_THREADS", 4));

  DatasetSpec spec = AllDatasets().front();
  const std::vector<std::string> commands = QuerySuiteForDataset(spec.name);
  if (commands.empty()) {
    std::fprintf(stderr, "no query suite for dataset %s\n", spec.name.c_str());
    return 1;
  }

  const std::string root =
      (std::filesystem::temp_directory_path() /
       ("loggrep_fed_bench_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(root);

  std::printf("federation_bench: %zu lines/shard, %zu iters, %zu threads\n",
              lines_per_shard, iters, threads);
  std::printf("%-8s %-12s %10s %10s %10s %10s\n", "shards", "mode", "qps",
              "p50_ms", "p99_ms", "visited");

  std::string rows_json;
  bool gates_pass = true;
  std::string gate_detail;

  for (const size_t shard_count : {1u, 4u, 16u}) {
    const std::string dir = root + "/set" + std::to_string(shard_count);
    ArchiveSetOptions options;
    options.window_span_ns = kWindowSpanNs;
    options.max_shard_bytes = 0;  // windows alone decide the shard cut
    // No shared box cache: every request pays real decompression, so the
    // full-vs-pruned wall-clock comparison measures work, not cache luck.
    options.archive.box_cache_budget_bytes = 0;
    Result<std::unique_ptr<ArchiveSet>> set = ArchiveSet::Create(dir, options);
    if (!set.ok()) {
      std::fprintf(stderr, "create %s: %s\n", dir.c_str(),
                   set.status().ToString().c_str());
      return 1;
    }
    for (size_t w = 0; w < shard_count; ++w) {
      spec.seed = 1000003ull * (shard_count + 1) + w;
      LogGenerator gen(spec);
      Result<AppendReceipt> receipt = (*set)->Append(
          "tenant", gen.GenerateLines(lines_per_shard),
          w * kWindowSpanNs + 1);
      if (!receipt.ok()) {
        std::fprintf(stderr, "append window %zu: %s\n", w,
                     receipt.status().ToString().c_str());
        return 1;
      }
    }

    // The pruned pass asks only for the newest window; full scatter asks
    // for everything. Sealed earlier windows must fall to the predicate.
    SetQueryPredicate newest_only;
    newest_only.from_ns = (shard_count - 1) * kWindowSpanNs;

    ModeStats full, pruned;
    if (!DriveMode(set->get(), commands, {}, iters, threads, &full) ||
        !DriveMode(set->get(), commands, newest_only, iters, threads,
                   &pruned)) {
      std::filesystem::remove_all(root);
      return 1;
    }

    std::printf("%-8zu %-12s %10.1f %10.3f %10.3f %10" PRIu64 "\n",
                shard_count, "full", full.qps, full.p50_ms, full.p99_ms,
                full.shards_visited);
    std::printf("%-8zu %-12s %10.1f %10.3f %10.3f %10" PRIu64 "\n",
                shard_count, "time_pruned", pruned.qps, pruned.p50_ms,
                pruned.p99_ms, pruned.shards_visited);

    // Soundness sweep (untimed): for every command, the pruned answer must
    // be exactly the full answer restricted to the newest shard's global
    // line range.
    const uint64_t newest_base =
        (shard_count - 1) * ArchiveSet::kShardLineSpan;
    for (const std::string& command : commands) {
      Result<SetQueryResult> whole = (*set)->Query(command, {});
      Result<SetQueryResult> newest = (*set)->Query(command, newest_only);
      if (!whole.ok() || !newest.ok()) {
        gates_pass = false;
        gate_detail = "soundness sweep query failed at " +
                      std::to_string(shard_count) + " shards";
        break;
      }
      QueryHits expected;
      for (const auto& hit : whole->hits) {
        if (hit.first >= newest_base) {
          expected.push_back(hit);
        }
      }
      if (expected != newest->hits) {
        gates_pass = false;
        gate_detail = "pruned hits diverge from full scatter for '" +
                      command + "' at " + std::to_string(shard_count) +
                      " shards";
        break;
      }
    }
    if (shard_count > 1) {
      if (pruned.shards_visited >= full.shards_visited) {
        gates_pass = false;
        gate_detail = "pruning did not reduce shards visited at " +
                      std::to_string(shard_count) + " shards";
      }
      if (pruned.wall_seconds >= full.wall_seconds) {
        gates_pass = false;
        gate_detail = "pruning did not reduce wall-clock at " +
                      std::to_string(shard_count) + " shards";
      }
    }

    if (!rows_json.empty()) {
      rows_json += ",";
    }
    rows_json += "{\"shards\":" + std::to_string(shard_count) +
                 ",\"lines\":" + std::to_string(shard_count * lines_per_shard) +
                 ",\"full\":" + ModeJson(full) +
                 ",\"time_pruned\":" + ModeJson(pruned) + "}";
  }
  // --- Compaction leg: same shape as the 16-shard set, queried before and
  // after one Compact() pass over identical commands. ---
  {
    const size_t window_count = 16;
    const std::string dir = root + "/set_compaction";
    ArchiveSetOptions options;
    options.window_span_ns = kWindowSpanNs;
    options.max_shard_bytes = 0;
    options.archive.box_cache_budget_bytes = 0;
    Result<std::unique_ptr<ArchiveSet>> set = ArchiveSet::Create(dir, options);
    if (!set.ok()) {
      std::fprintf(stderr, "create %s: %s\n", dir.c_str(),
                   set.status().ToString().c_str());
      return 1;
    }
    for (size_t w = 0; w < window_count; ++w) {
      spec.seed = 2000003ull + w;
      LogGenerator gen(spec);
      Result<AppendReceipt> receipt = (*set)->Append(
          "tenant", gen.GenerateLines(lines_per_shard),
          w * kWindowSpanNs + 1);
      if (!receipt.ok()) {
        std::fprintf(stderr, "append window %zu: %s\n", w,
                     receipt.status().ToString().c_str());
        return 1;
      }
    }

    // Exact full-scatter answers before the merge, one per command.
    std::vector<QueryHits> before_hits;
    for (const std::string& command : commands) {
      Result<SetQueryResult> result = (*set)->Query(command, {});
      if (!result.ok()) {
        std::fprintf(stderr, "pre-compaction query failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      before_hits.push_back(result->hits);
    }

    ModeStats wide, compacted;
    if (!DriveMode(set->get(), commands, {}, iters, threads, &wide)) {
      std::filesystem::remove_all(root);
      return 1;
    }
    const SetCompactionReport report = (*set)->Compact();
    if (!report.ok() || report.merges_committed == 0) {
      gates_pass = false;
      gate_detail = "compaction pass failed: " + report.Summary();
    }
    if (!DriveMode(set->get(), commands, {}, iters, threads, &compacted)) {
      std::filesystem::remove_all(root);
      return 1;
    }

    std::printf("%-8zu %-12s %10.1f %10.3f %10.3f %10" PRIu64 "\n",
                window_count, "pre_compact", wide.qps, wide.p50_ms,
                wide.p99_ms, wide.shards_visited);
    std::printf("%-8zu %-12s %10.1f %10.3f %10.3f %10" PRIu64 "\n",
                window_count, "compacted", compacted.qps, compacted.p50_ms,
                compacted.p99_ms, compacted.shards_visited);

    if (gates_pass && compacted.shards_visited >= wide.shards_visited) {
      gates_pass = false;
      gate_detail = "compaction did not reduce shards visited (" +
                    std::to_string(compacted.shards_visited) + " vs " +
                    std::to_string(wide.shards_visited) + ")";
    }
    // Soundness: the merged set answers every command hit-for-hit
    // identically — same lines, same global line numbers.
    for (size_t i = 0; gates_pass && i < commands.size(); ++i) {
      Result<SetQueryResult> result = (*set)->Query(commands[i], {});
      if (!result.ok() || result->hits != before_hits[i]) {
        gates_pass = false;
        gate_detail =
            "compacted answers diverge for '" + commands[i] + "'";
      }
    }

    rows_json += ",{\"shards\":" + std::to_string(window_count) +
                 ",\"lines\":" +
                 std::to_string(window_count * lines_per_shard) +
                 ",\"merges\":" + std::to_string(report.merges_committed) +
                 ",\"shards_merged\":" + std::to_string(report.shards_merged) +
                 ",\"pre_compact\":" + ModeJson(wide) +
                 ",\"compacted\":" + ModeJson(compacted) + "}";
  }
  std::filesystem::remove_all(root);

  const std::string out_path = BenchOutputPath("BENCH_federation.json");
  {
    std::ofstream out(out_path);
    out << "{\"bench\":\"federation\",\"lines_per_shard\":" << lines_per_shard
        << ",\"iters\":" << iters << ",\"threads\":" << threads
        << ",\"rows\":[" << rows_json << "],\"gates_pass\":"
        << (gates_pass ? "true" : "false") << "}\n";
  }
  std::printf("wrote %s\n", out_path.c_str());

  if (!gates_pass) {
    std::fprintf(stderr, "FAIL: %s\n", gate_detail.c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace loggrep

int main() { return loggrep::bench::Run(); }
