// Figure 9 reproduction: effect of each individual technique, as mean query
// latency normalized to the full-featured LogGrep.
//
// Five reduced versions are built exactly as in §6.3: "w/o real" and
// "w/o nomi" disable runtime-pattern structurization per vector class,
// "w/o stamp" disables Capsule-stamp filtering, "w/o fixed" stores
// variable-length Capsules and matches with KMP, and "w/o cache" re-executes
// queries in a refining-mode session. Also reports the §6.3 padding effect
// on compression ratio.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/baselines/loggrep_backend.h"
#include "src/workload/loggen.h"
#include "src/workload/queries.h"

namespace loggrep {
namespace {

struct Version {
  const char* label;
  EngineOptions options;
};

std::vector<Version> Versions() {
  std::vector<Version> v;
  v.push_back({"full", {}});
  EngineOptions o;
  o.use_real = false;
  v.push_back({"w/o real", o});
  o = {};
  o.use_nominal = false;
  v.push_back({"w/o nomi", o});
  o = {};
  o.use_stamps = false;
  v.push_back({"w/o stamp", o});
  o = {};
  o.use_fixed = false;
  v.push_back({"w/o fixed", o});
  return v;
}

// Refining-mode session (§6.3 "w/o cache"): the engineer grows the command,
// re-running earlier stages as they iterate; the Query Cache absorbs the
// repeats.
double RefiningSessionSeconds(LogGrepEngine& engine, const std::string& box,
                              const std::vector<std::string>& stages) {
  return bench::TimeSeconds([&] {
    for (int round = 0; round < 3; ++round) {
      for (const std::string& stage : stages) {
        auto r = engine.Query(box, stage);
        if (!r.ok()) {
          std::fprintf(stderr, "refining query failed: %s\n",
                       r.status().ToString().c_str());
        }
      }
    }
  });
}

std::vector<std::string> RefiningStages(const std::string& full_query) {
  // Split the full command at its AND operators into cumulative stages.
  std::vector<std::string> stages;
  size_t pos = 0;
  while (true) {
    size_t next = full_query.find(" and ", pos);
    if (next == std::string::npos) {
      next = full_query.find(" AND ", pos);
    }
    if (next == std::string::npos) {
      stages.push_back(full_query);
      break;
    }
    stages.push_back(full_query.substr(0, next));
    pos = next + 5;
  }
  return stages;
}

}  // namespace
}  // namespace loggrep

int main() {
  using namespace loggrep;

  std::map<std::string, std::vector<double>> latency_ratio;  // vs full
  std::vector<double> cache_ratio;
  std::vector<double> padding_ratio;  // compression ratio padded / unpadded

  for (const DatasetSpec& spec : AllDatasets()) {
    const std::string text =
        LogGenerator(spec).Generate(bench::DatasetBytes());
    const std::vector<std::string> queries = QuerySuiteForDataset(spec.name);

    // Per-query latencies per version; ratios are taken per query so that a
    // slow reconstruction-heavy query cannot mask filtering effects on the
    // selective ones (each run repeats the query 3x for timer stability).
    std::vector<double> full_latency(queries.size(), 0);
    size_t full_size = 0;
    size_t unpadded_size = 0;
    for (const auto& [label, options] : Versions()) {
      LogGrepEngine engine(options);
      const std::string box = engine.CompressBlock(text);
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        engine.ClearCache();  // direct mode: no cache effects (§6.3)
        const double latency = bench::TimeSeconds([&] {
          for (int rep = 0; rep < 3; ++rep) {
            engine.ClearCache();
            auto r = engine.Query(box, queries[qi]);
            (void)r;
          }
        });
        if (std::string(label) == "full") {
          full_latency[qi] = latency;
        } else if (full_latency[qi] > 0) {
          latency_ratio[label].push_back(latency / full_latency[qi]);
        }
      }
      if (std::string(label) == "full") {
        full_size = box.size();
      }
      if (std::string(label) == "w/o fixed") {
        unpadded_size = box.size();
      }
    }
    if (full_size > 0 && unpadded_size > 0) {
      padding_ratio.push_back(static_cast<double>(unpadded_size) /
                              static_cast<double>(full_size));
    }

    // Query cache: refining mode, full version with vs without cache.
    const std::vector<std::string> stages =
        RefiningStages(QueryForDataset(spec.name));
    LogGrepEngine cached{EngineOptions{}};
    EngineOptions no_cache_opts;
    no_cache_opts.use_cache = false;
    LogGrepEngine uncached(no_cache_opts);
    const std::string box = cached.CompressBlock(text);
    const double with_cache = RefiningSessionSeconds(cached, box, stages);
    const double without_cache = RefiningSessionSeconds(uncached, box, stages);
    if (with_cache > 0) {
      cache_ratio.push_back(without_cache / with_cache);
    }
  }

  std::printf("== Figure 9: mean query latency of reduced versions, "
              "normalized to full LogGrep ==\n");
  std::printf("%-12s %18s\n", "version", "normalized latency");
  std::printf("%-12s %18.2f\n", "full", 1.0);
  for (const auto& [label, ratios] : latency_ratio) {
    std::printf("%-12s %18.2f\n", label.c_str(),
                loggrep::bench::GeoMean(ratios));
  }
  std::printf("%-12s %18.2f  (refining-mode session slowdown)\n", "w/o cache",
              loggrep::bench::GeoMean(cache_ratio));
  std::printf("\npaper: w/o real 1.51x, w/o nomi 4.03x, w/o stamp 3.59x, "
              "w/o fixed 1.89x, w/o cache 2.08x\n");

  std::printf("\n== Section 6.3: fixed-length padding effect on compression "
              "ratio ==\n");
  std::printf("unpadded/padded compressed-size ratio (geomean across "
              "datasets; >1 means the padded layout compresses better): %.3f\n",
              loggrep::bench::GeoMean(padding_ratio));
  std::printf("paper: padding changes compression ratio by 0.99x-1.10x "
              "(1.04x average)\n");
  return 0;
}
