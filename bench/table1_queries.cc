// Table 1 driver: runs every dataset's query command against LogGrep and
// reports hits, latency and filtering behavior (Capsules decompressed vs
// filtered by stamps) — the observable mechanics behind Figures 7-9.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/engine.h"
#include "src/workload/loggen.h"
#include "src/workload/queries.h"

int main() {
  using namespace loggrep;

  std::printf("== Table 1 query workload on LogGrep ==\n");
  std::printf("%-12s %7s %10s %10s %10s  %s\n", "dataset", "hits", "ms",
              "capsules", "filtered", "query");
  uint64_t total_hits = 0;
  double total_ms = 0;
  for (const DatasetSpec& spec : AllDatasets()) {
    const std::string text =
        LogGenerator(spec).Generate(bench::DatasetBytes());
    EngineOptions opts;
    opts.use_cache = false;
    LogGrepEngine engine(opts);
    const std::string box = engine.CompressBlock(text);
    const std::string query = QueryForDataset(spec.name);

    Result<QueryResult> result(Status(StatusCode::kInternal, "unset"));
    const double seconds =
        bench::TimeSeconds([&] { result = engine.Query(box, query); });
    if (!result.ok()) {
      std::printf("%-12s FAILED: %s\n", spec.name.c_str(),
                  result.status().ToString().c_str());
      continue;
    }
    std::printf("%-12s %7zu %10.2f %10llu %10llu  %s\n", spec.name.c_str(),
                result->hits.size(), seconds * 1000,
                static_cast<unsigned long long>(
                    result->locator.capsules_decompressed),
                static_cast<unsigned long long>(
                    result->locator.capsules_stamp_filtered),
                query.c_str());
    total_hits += result->hits.size();
    total_ms += seconds * 1000;
  }
  std::printf("total: %llu hits, %.1f ms across all 37 queries\n",
              static_cast<unsigned long long>(total_hits), total_ms);
  return 0;
}
