// Figure 7(b)(c) + §6.2 reproduction: compression ratio and compression
// speed per dataset per system.
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"

int main() {
  using namespace loggrep;
  using bench::Measurement;

  std::vector<Measurement> all;
  std::printf("== Figure 7(b): compression ratio ==\n");
  std::printf("%-12s", "dataset");
  for (const bench::System& sys : bench::AllSystems()) {
    std::printf(" %12s", sys.name.c_str());
  }
  std::printf("\n");
  for (const DatasetSpec& spec : AllDatasets()) {
    const std::vector<Measurement> row = bench::MeasureDataset(spec);
    std::printf("%-12s", spec.name.c_str());
    for (const Measurement& m : row) {
      std::printf(" %12.2f", m.ratio());
    }
    std::printf("\n");
    all.insert(all.end(), row.begin(), row.end());
  }

  std::printf("\n== Figure 7(c): compression speed (MB/s, one CPU) ==\n");
  std::printf("%-12s", "dataset");
  for (const bench::System& sys : bench::AllSystems()) {
    std::printf(" %12s", sys.name.c_str());
  }
  std::printf("\n");
  for (const DatasetSpec& spec : AllDatasets()) {
    std::printf("%-12s", spec.name.c_str());
    for (const Measurement& m : all) {
      if (m.dataset == spec.name) {
        std::printf(" %12.2f", m.compress_mb_s());
      }
    }
    std::printf("\n");
  }

  for (const bool production : {true, false}) {
    std::map<std::string, std::vector<double>> ratio_gain;
    std::map<std::string, std::vector<double>> speed_frac;
    for (const DatasetSpec& spec : AllDatasets()) {
      if (spec.production != production) {
        continue;
      }
      const Measurement* lg = nullptr;
      for (const Measurement& m : all) {
        if (m.dataset == spec.name && m.system == "loggrep") {
          lg = &m;
        }
      }
      if (lg == nullptr) {
        continue;
      }
      for (const Measurement& m : all) {
        if (m.dataset != spec.name || m.system == "loggrep") {
          continue;
        }
        if (m.ratio() > 0) {
          ratio_gain[m.system].push_back(lg->ratio() / m.ratio());
        }
        if (m.compress_mb_s() > 0) {
          speed_frac[m.system].push_back(lg->compress_mb_s() / m.compress_mb_s());
        }
      }
    }
    std::printf("\n-- %s logs: LogGrep relative to comparators (geomean) --\n",
                production ? "production" : "public");
    for (const auto& [system, gains] : ratio_gain) {
      std::printf("  ratio  %.2fx of %-12s   compress speed %.2fx of %s\n",
                  bench::GeoMean(gains), system.c_str(),
                  bench::GeoMean(speed_frac[system]), system.c_str());
    }
  }
  std::printf("\npaper shapes (production): ratio 2.6x gzip / 2.1x CLP / 23x ES,"
              " comparable to LogGrep-SP;\n"
              "compression speed ~0.1x gzip / 0.16x CLP / 8x ES / 0.86x SP\n");
  return 0;
}
