// Closed-loop client/server throughput for loggrepd (beyond the paper;
// DESIGN.md "Serving" — the §5 cost model assumes one shared daemon whose
// caches amortize across users, and this measures that amortization).
//
// Harness: build a seeded multi-block archive, start an in-process daemon,
// then
//   1. cold pass  — one client sweeps the full query suite against freshly
//      opened caches: every command pays decompression;
//   2. warm pass  — N clients (threads, one keep-alive connection each) run
//      the same suite closed-loop for R rounds: everything answers from the
//      process-wide command/box caches.
// Every response is checked hit-for-hit against a serial oracle computed
// before the daemon starts.
//
// Prints one row per phase (QPS, p50/p99 ms) and writes BENCH_daemon.json
// next to the binary's cwd. Exits non-zero unless (a) zero mismatches and
// (b) warm p50 strictly below cold p50 — the warm pool is the product claim,
// so a regression here must fail CI, not just print a slower number.
//
// Scale knobs: LOGGREP_BENCH_CLIENTS (default 8), LOGGREP_BENCH_ROUNDS
// (default 6), LOGGREP_BENCH_KB via bench_util for the corpus size.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/server/client.h"
#include "src/server/daemon.h"
#include "src/store/log_archive.h"
#include "src/workload/datasets.h"
#include "src/workload/loggen.h"
#include "src/workload/queries.h"

namespace loggrep {
namespace bench {
namespace {

constexpr size_t kBlocks = 4;
constexpr uint64_t kSeed = 271828;

size_t EnvSize(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  const long long parsed = std::atoll(value);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

double PercentileMs(std::vector<double>* latencies_ms, double p) {
  if (latencies_ms->empty()) {
    return 0;
  }
  std::sort(latencies_ms->begin(), latencies_ms->end());
  const size_t idx = std::min(
      latencies_ms->size() - 1,
      static_cast<size_t>(p * static_cast<double>(latencies_ms->size())));
  return (*latencies_ms)[idx];
}

struct PhaseResult {
  double seconds = 0;
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  size_t requests = 0;
  size_t mismatches = 0;
};

int Run() {
  const size_t clients = EnvSize("LOGGREP_BENCH_CLIENTS", 8);
  const size_t rounds = EnvSize("LOGGREP_BENCH_ROUNDS", 6);

  const std::string root =
      (std::filesystem::temp_directory_path() /
       ("loggrep_daemon_bench_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(root);

  // Corpus: kBlocks blocks of the first production dataset, sized so the
  // suite does real decompression work on the cold pass.
  DatasetSpec spec = AllDatasets().front();
  const size_t lines_per_block =
      std::max<size_t>(200, DatasetBytes() / kBlocks / 64);
  {
    Result<LogArchive> archive = LogArchive::Create(root + "/arch", {});
    if (!archive.ok()) {
      std::fprintf(stderr, "create: %s\n", archive.status().ToString().c_str());
      return 1;
    }
    for (size_t b = 0; b < kBlocks; ++b) {
      spec.seed = kSeed * 1000003 + b + 1;
      LogGenerator gen(spec);
      if (Status s = archive->AppendBlock(gen.GenerateLines(lines_per_block));
          !s.ok()) {
        std::fprintf(stderr, "append: %s\n", s.ToString().c_str());
        return 1;
      }
    }
  }
  const std::vector<std::string> commands = QuerySuiteForDataset(spec.name);

  // Serial oracle before the daemon exists.
  std::map<std::string, QueryHits> oracle;
  {
    Result<LogArchive> serial = LogArchive::Open(root + "/arch");
    if (!serial.ok()) {
      std::fprintf(stderr, "open: %s\n", serial.status().ToString().c_str());
      return 1;
    }
    for (const std::string& command : commands) {
      Result<ArchiveQueryResult> r = serial->Query(command);
      if (!r.ok()) {
        std::fprintf(stderr, "oracle %s: %s\n", command.c_str(),
                     r.status().ToString().c_str());
        return 1;
      }
      oracle[command] = std::move(r->hits);
    }
  }

  DaemonOptions options;
  options.service.root = root;
  options.num_threads = clients + 1;
  options.max_inflight_queries = clients + 1;
  LoggrepDaemon daemon(options);
  Result<uint16_t> port = daemon.Start();
  if (!port.ok()) {
    std::fprintf(stderr, "start: %s\n", port.status().ToString().c_str());
    return 1;
  }

  auto run_suite = [&](DaemonClient* client, std::vector<double>* lat_ms,
                       std::atomic<size_t>* mismatches) {
    for (const std::string& command : commands) {
      const auto t0 = std::chrono::steady_clock::now();
      Result<RemoteQueryResult> r = client->Query("arch", command);
      const auto t1 = std::chrono::steady_clock::now();
      lat_ms->push_back(
          std::chrono::duration<double, std::milli>(t1 - t0).count());
      if (!r.ok() || r->http_status != 200 || r->hits != oracle[command]) {
        mismatches->fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  // --- cold pass: one client, caches empty -------------------------------
  PhaseResult cold;
  {
    std::atomic<size_t> mismatches{0};
    std::vector<double> lat_ms;
    DaemonClient client("127.0.0.1", *port);
    const auto t0 = std::chrono::steady_clock::now();
    run_suite(&client, &lat_ms, &mismatches);
    cold.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    cold.requests = lat_ms.size();
    cold.mismatches = mismatches.load();
    cold.qps = cold.seconds > 0 ? cold.requests / cold.seconds : 0;
    cold.p50_ms = PercentileMs(&lat_ms, 0.50);
    cold.p99_ms = PercentileMs(&lat_ms, 0.99);
  }

  // --- warm pass: closed loop, N clients x R rounds ----------------------
  PhaseResult warm;
  {
    std::atomic<size_t> mismatches{0};
    std::vector<std::vector<double>> lat_ms(clients);
    std::vector<std::thread> threads;
    const auto t0 = std::chrono::steady_clock::now();
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        DaemonClient client("127.0.0.1", *port);
        for (size_t round = 0; round < rounds; ++round) {
          run_suite(&client, &lat_ms[c], &mismatches);
        }
      });
    }
    for (std::thread& t : threads) {
      t.join();
    }
    warm.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::vector<double> all;
    for (const std::vector<double>& per_client : lat_ms) {
      all.insert(all.end(), per_client.begin(), per_client.end());
    }
    warm.requests = all.size();
    warm.mismatches = mismatches.load();
    warm.qps = warm.seconds > 0 ? warm.requests / warm.seconds : 0;
    warm.p50_ms = PercentileMs(&all, 0.50);
    warm.p99_ms = PercentileMs(&all, 0.99);
  }
  daemon.Shutdown();
  std::filesystem::remove_all(root);

  std::printf("daemon_throughput: %zu commands, %zu blocks x %zu lines\n",
              commands.size(), kBlocks, lines_per_block);
  std::printf("%-6s %8s %10s %10s %10s %6s\n", "phase", "reqs", "qps",
              "p50_ms", "p99_ms", "bad");
  for (const auto& [name, phase] :
       {std::pair<const char*, const PhaseResult&>{"cold", cold},
        {"warm", warm}}) {
    std::printf("%-6s %8zu %10.1f %10.3f %10.3f %6zu\n", name, phase.requests,
                phase.qps, phase.p50_ms, phase.p99_ms, phase.mismatches);
  }

  {
    std::ofstream out(BenchOutputPath("BENCH_daemon.json"));
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\"clients\":%zu,\"rounds\":%zu,\"commands\":%zu,"
        "\"cold\":{\"requests\":%zu,\"qps\":%.1f,\"p50_ms\":%.3f,"
        "\"p99_ms\":%.3f},"
        "\"warm\":{\"requests\":%zu,\"qps\":%.1f,\"p50_ms\":%.3f,"
        "\"p99_ms\":%.3f},"
        "\"mismatches\":%zu,\"warm_faster\":%s}\n",
        clients, rounds, commands.size(), cold.requests, cold.qps, cold.p50_ms,
        cold.p99_ms, warm.requests, warm.qps, warm.p50_ms, warm.p99_ms,
        cold.mismatches + warm.mismatches,
        warm.p50_ms < cold.p50_ms ? "true" : "false");
    out << buf;
  }

  if (cold.mismatches + warm.mismatches > 0) {
    std::fprintf(stderr, "FAIL: %zu responses disagreed with the oracle\n",
                 cold.mismatches + warm.mismatches);
    return 1;
  }
  if (!(warm.p50_ms < cold.p50_ms)) {
    std::fprintf(stderr,
                 "FAIL: warm p50 %.3f ms not below cold p50 %.3f ms — the "
                 "process-wide cache pool is not paying off\n",
                 warm.p50_ms, cold.p50_ms);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace loggrep

int main() { return loggrep::bench::Run(); }
