// Ingest thread-scaling bench (beyond the paper; §6/§8 say compression
// "can easily be parallelized" — this measures by how much).
//
// Corpus: the 21 production-style datasets (Log A..Log U), concatenated.
// Baseline: serial LogArchive::AppendBlock with the same block size.
// Treatment: LogIngestor at 1 / 2 / 4 / 8 workers, bounded window.
//
// Prints one row per configuration: wall seconds, MB/s, speedup over serial,
// producer stall share, queue-depth high-water mark. Scale the corpus with
// LOGGREP_BENCH_KB (per dataset, default 768 KiB).
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/timer.h"
#include "src/ingest/log_ingestor.h"
#include "src/store/log_archive.h"
#include "src/workload/datasets.h"
#include "src/workload/loggen.h"

namespace loggrep {
namespace bench {
namespace {

std::string TempDir(const std::string& tag) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("loggrep_ingest_bench_" + tag + "_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

// Cuts `corpus` exactly the way LogIngestor does (entry-aligned blocks of
// ~target bytes) so the serial baseline does the same work per block.
std::vector<std::string_view> CutBlocks(std::string_view corpus,
                                        size_t target) {
  std::vector<std::string_view> blocks;
  while (corpus.size() >= target) {
    size_t cut = corpus.rfind('\n', target - 1);
    if (cut == std::string_view::npos) {
      cut = corpus.find('\n', target);
      if (cut == std::string_view::npos) {
        break;
      }
    }
    blocks.push_back(corpus.substr(0, cut + 1));
    corpus.remove_prefix(cut + 1);
  }
  if (!corpus.empty()) {
    blocks.push_back(corpus);
  }
  return blocks;
}

int Run() {
  std::string corpus;
  for (const DatasetSpec* spec : ProductionDatasets()) {
    corpus += LogGenerator(*spec).Generate(DatasetBytes());
  }
  const double raw_mb = corpus.size() / 1e6;
  // ~16 blocks regardless of corpus scale, so every worker count has work.
  const size_t target = std::max<size_t>(64 * 1024, corpus.size() / 16);

  std::printf("ingest throughput — corpus %.1f MB, block target %.1f MB\n\n",
              raw_mb, target / 1e6);
  std::printf("%-22s %10s %10s %9s %12s %6s\n", "configuration", "seconds",
              "MB/s", "speedup", "stall-share", "hwm");

  // Serial baseline: AppendBlock over the identical block cuts.
  double serial_seconds = 0;
  {
    const std::string dir = TempDir("serial");
    auto archive = LogArchive::Create(dir);
    if (!archive.ok()) {
      std::fprintf(stderr, "%s\n", archive.status().ToString().c_str());
      return 1;
    }
    WallTimer timer;
    for (std::string_view block : CutBlocks(corpus, target)) {
      if (Status s = archive->AppendBlock(block); !s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
    }
    serial_seconds = timer.ElapsedSeconds();
    std::printf("%-22s %10.2f %10.1f %9s %12s %6s\n", "serial AppendBlock",
                serial_seconds, raw_mb / serial_seconds, "1.00x", "-", "-");
    std::filesystem::remove_all(dir);
  }

  for (const size_t workers : {1u, 2u, 4u, 8u}) {
    const std::string dir = TempDir("w" + std::to_string(workers));
    IngestOptions options;
    options.target_block_bytes = target;
    options.num_workers = workers;
    options.max_in_flight_blocks = 2 * workers;
    auto ingestor = LogIngestor::Start(dir, options);
    if (!ingestor.ok()) {
      std::fprintf(stderr, "%s\n", ingestor.status().ToString().c_str());
      return 1;
    }
    WallTimer timer;
    // Feed in 1 MB chunks to exercise the streaming cut path.
    for (size_t off = 0; off < corpus.size(); off += 1 << 20) {
      const size_t len = std::min<size_t>(1 << 20, corpus.size() - off);
      if (Status s = (*ingestor)->Append({corpus.data() + off, len}); !s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
    }
    if (Status s = (*ingestor)->Finish(); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    const double seconds = timer.ElapsedSeconds();
    const IngestMetrics m = (*ingestor)->metrics();
    char label[64];
    std::snprintf(label, sizeof(label), "ingestor %zu worker%s", workers,
                  workers == 1 ? "" : "s");
    char speedup[16];
    std::snprintf(speedup, sizeof(speedup), "%.2fx", serial_seconds / seconds);
    char stall[16];
    std::snprintf(stall, sizeof(stall), "%.0f%%",
                  100.0 * m.producer_stall_seconds / seconds);
    std::printf("%-22s %10.2f %10.1f %9s %12s %6llu\n", label, seconds,
                raw_mb / seconds, speedup, stall,
                static_cast<unsigned long long>(m.queue_depth_hwm));
    std::filesystem::remove_all(dir);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace loggrep

int main() { return loggrep::bench::Run(); }
