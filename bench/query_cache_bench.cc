// Cold-vs-warm query economics of the shared BoxCache + command QueryCache.
//
// Three workloads, per dataset (Log A..U + public logs):
//   1. block: the dataset's query suite against one CapsuleBox, run cold
//      (all caches off), then twice on a cache-enabled engine — the second
//      pass must decompress strictly fewer fresh bytes than the first.
//   2. session: a refining-mode command chain through QuerySession
//      (incremental refinement + memo) vs re-running every command cold.
//   3. archive: a multi-block LogArchive queried cold then warm; warm
//      queries are served from the archive's shared BoxCache without
//      touching the block files.
//
// Prints per-dataset rows plus a cross-dataset summary; exits non-zero if
// any dataset fails the "warm decompresses fewer bytes than cold" invariant
// (the PR's acceptance criterion).
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/engine.h"
#include "src/core/session.h"
#include "src/store/log_archive.h"
#include "src/workload/datasets.h"
#include "src/workload/loggen.h"
#include "src/workload/queries.h"

namespace {

using namespace loggrep;

struct PassStats {
  double seconds = 0;
  uint64_t bytes_decompressed = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t bytes_saved = 0;
};

PassStats RunSuite(LogGrepEngine& engine, const std::string& box,
                   const std::vector<std::string>& suite) {
  PassStats stats;
  stats.seconds = bench::TimeSeconds([&] {
    for (const std::string& command : suite) {
      auto result = engine.Query(box, command);
      if (!result.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     result.status().ToString().c_str());
        std::exit(1);
      }
      stats.bytes_decompressed += result->locator.bytes_decompressed;
      stats.cache_hits += result->locator.cache_hits;
      stats.cache_misses += result->locator.cache_misses;
      stats.bytes_saved += result->locator.bytes_saved;
    }
  });
  return stats;
}

// The §3 refining chain for one dataset: the Table 1 query narrowed twice.
std::vector<std::string> RefinementChain(const std::string& dataset) {
  const std::string base = QueryForDataset(dataset);
  if (base.empty() || base.find(" or ") != std::string::npos ||
      base.find(" not ") != std::string::npos) {
    return {};
  }
  return {base, base + " and 1", base + " and 1 and 2"};
}

}  // namespace

int main() {
  std::printf("== query cache bench: cold vs warm (suite totals per dataset) ==\n");
  std::printf("%-10s %10s %10s %10s %12s %12s %8s %10s\n", "dataset",
              "cold ms", "pass1 ms", "warm ms", "cold MB dec", "warm MB dec",
              "hits", "saved MB");

  int failures = 0;
  double cold_ms_total = 0;
  double warm_ms_total = 0;
  uint64_t cold_bytes_total = 0;
  uint64_t warm_bytes_total = 0;

  for (const DatasetSpec& spec : AllDatasets()) {
    const std::string text = LogGenerator(spec).Generate(bench::DatasetBytes());
    const std::vector<std::string> suite = QuerySuiteForDataset(spec.name);
    if (suite.empty()) {
      continue;
    }

    EngineOptions cold_options;
    cold_options.use_cache = false;
    cold_options.use_box_cache = false;
    LogGrepEngine cold_engine(cold_options);
    const std::string box = cold_engine.CompressBlock(text);

    const PassStats cold = RunSuite(cold_engine, box, suite);

    EngineOptions warm_options;
    warm_options.use_cache = false;  // isolate the BoxCache effect
    LogGrepEngine warm_engine(warm_options);
    const PassStats pass1 = RunSuite(warm_engine, box, suite);
    const PassStats warm = RunSuite(warm_engine, box, suite);

    std::printf("%-10s %10.2f %10.2f %10.2f %12.3f %12.3f %8llu %10.3f\n",
                spec.name.c_str(), cold.seconds * 1000, pass1.seconds * 1000,
                warm.seconds * 1000, cold.bytes_decompressed / 1e6,
                warm.bytes_decompressed / 1e6,
                static_cast<unsigned long long>(warm.cache_hits),
                warm.bytes_saved / 1e6);

    cold_ms_total += cold.seconds * 1000;
    warm_ms_total += warm.seconds * 1000;
    cold_bytes_total += cold.bytes_decompressed;
    warm_bytes_total += warm.bytes_decompressed;
    // Acceptance: warm pass decompresses strictly fewer fresh bytes than the
    // cold pass and actually hits the cache.
    if (cold.bytes_decompressed > 0 &&
        (warm.bytes_decompressed >= cold.bytes_decompressed ||
         warm.cache_hits == 0)) {
      std::fprintf(stderr, "FAIL %s: warm pass not cheaper than cold\n",
                   spec.name.c_str());
      ++failures;
    }
  }
  std::printf("total: cold %.1f ms / %.2f MB decompressed -> warm %.1f ms / "
              "%.2f MB decompressed\n\n",
              cold_ms_total, cold_bytes_total / 1e6, warm_ms_total,
              warm_bytes_total / 1e6);

  std::printf("== refining sessions: incremental+memo vs cold re-runs ==\n");
  std::printf("%-10s %12s %12s %10s\n", "dataset", "cold ms", "session ms",
              "speedup");
  double session_speedup_sum = 0;
  int session_rows = 0;
  for (const DatasetSpec& spec : AllDatasets()) {
    const std::vector<std::string> chain = RefinementChain(spec.name);
    if (chain.empty()) {
      continue;
    }
    const std::string text = LogGenerator(spec).Generate(bench::DatasetBytes());

    EngineOptions cold_options;
    cold_options.use_cache = false;
    cold_options.use_box_cache = false;
    LogGrepEngine cold_engine(cold_options);
    const std::string box = cold_engine.CompressBlock(text);
    const double cold_seconds = bench::TimeSeconds([&] {
      for (int round = 0; round < 2; ++round) {
        for (const std::string& command : chain) {
          if (!cold_engine.Query(box, command).ok()) {
            std::exit(1);
          }
        }
      }
    });

    LogGrepEngine warm_engine;
    QuerySession session(&warm_engine, box);
    const double session_seconds = bench::TimeSeconds([&] {
      for (int round = 0; round < 2; ++round) {  // round 2 replays the memo
        for (const std::string& command : chain) {
          if (!session.Query(command).ok()) {
            std::exit(1);
          }
        }
      }
    });
    const double speedup =
        session_seconds > 0 ? cold_seconds / session_seconds : 0;
    std::printf("%-10s %12.2f %12.2f %9.1fx\n", spec.name.c_str(),
                cold_seconds * 1000, session_seconds * 1000, speedup);
    session_speedup_sum += speedup;
    ++session_rows;
  }
  if (session_rows > 0) {
    std::printf("mean session speedup: %.1fx\n\n",
                session_speedup_sum / session_rows);
  }

  std::printf("== archive: cold vs warm over the shared BoxCache ==\n");
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("loggrep_query_cache_bench_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  {
    auto archive = LogArchive::Create(dir.string());
    if (!archive.ok()) {
      std::fprintf(stderr, "%s\n", archive.status().ToString().c_str());
      return 1;
    }
    DatasetSpec spec = *FindDataset("Log A");
    for (int b = 0; b < 4; ++b) {
      spec.seed += 13;
      if (!archive->AppendBlock(LogGenerator(spec).Generate(bench::DatasetBytes()))
               .ok()) {
        return 1;
      }
    }
    const std::string command = QueryForDataset("Log A");
    ArchiveQueryResult cold_result;
    const double cold_seconds = bench::TimeSeconds([&] {
      auto r = archive->Query(command);
      if (!r.ok()) {
        std::exit(1);
      }
      cold_result = std::move(*r);
    });
    // Different command so the command cache cannot answer; only the
    // BoxCache makes it warm.
    const std::string warm_command = command + " and 1";
    ArchiveQueryResult warm_result;
    const double warm_seconds = bench::TimeSeconds([&] {
      auto r = archive->Query(warm_command);
      if (!r.ok()) {
        std::exit(1);
      }
      warm_result = std::move(*r);
    });
    std::printf("cold: %7.2f ms, %8.3f MB decompressed, %llu cache misses\n",
                cold_seconds * 1000,
                cold_result.locator.bytes_decompressed / 1e6,
                static_cast<unsigned long long>(cold_result.locator.cache_misses));
    std::printf("warm: %7.2f ms, %8.3f MB decompressed, %llu cache hits, "
                "%.3f MB saved\n",
                warm_seconds * 1000,
                warm_result.locator.bytes_decompressed / 1e6,
                static_cast<unsigned long long>(warm_result.locator.cache_hits),
                warm_result.locator.bytes_saved / 1e6);
    if (warm_result.locator.cache_hits == 0 ||
        warm_result.locator.bytes_decompressed >=
            cold_result.locator.bytes_decompressed +
                cold_result.locator.bytes_saved + 1) {
      std::fprintf(stderr, "FAIL archive: warm query did not use the cache\n");
      ++failures;
    }
  }
  std::filesystem::remove_all(dir);

  if (failures > 0) {
    std::fprintf(stderr, "%d workload(s) failed the warm<cold invariant\n",
                 failures);
    return 1;
  }
  std::printf("all workloads: warm pass decompressed fewer fresh bytes than cold\n");
  return 0;
}
