// Cold-vs-warm query economics of the shared BoxCache + command QueryCache,
// plus the scan-kernel speedup gate.
//
// Three workloads, per dataset (Log A..U + public logs):
//   1. block: the dataset's query suite against one CapsuleBox, run cold
//      (all caches off), then twice on a cache-enabled engine — the second
//      pass must decompress strictly fewer fresh bytes than the first. The
//      block workload runs LOGGREP_BENCH_ROUNDS times (default 5) and
//      reports cold/warm p50 across rounds.
//   2. session: a refining-mode command chain through QuerySession
//      (incremental refinement + memo) vs re-running every command cold.
//   3. archive: a multi-block LogArchive queried cold then warm; warm
//      queries are served from the archive's shared BoxCache without
//      touching the block files.
//
// A kernel microbench then times SearchPaddedColumn pinned to the scalar
// tier vs the active SIMD tier on the same blob. Results (p50s, per-stage
// nanoseconds, kernel speedup, SIMD tier) are written to BENCH_query.json
// for the CI artifact.
//
// Exit is non-zero if any dataset fails the "warm decompresses fewer bytes
// than cold" invariant, or — on AVX2 hardware, outside sanitizer builds and
// LOGGREP_FORCE_SCALAR runs — if the kernel speedup falls below 1.3x (the
// PR's acceptance criterion; scalar-vs-SIMD on the same machine, so the
// gate is machine-independent).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/simd.h"
#include "src/core/engine.h"
#include "src/core/session.h"
#include "src/query/fixed_matcher.h"
#include "src/store/log_archive.h"
#include "src/workload/datasets.h"
#include "src/workload/loggen.h"
#include "src/workload/queries.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define LOGGREP_SANITIZER_BUILD 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(undefined_behavior_sanitizer)
#define LOGGREP_SANITIZER_BUILD 1
#endif
#endif

namespace {

using namespace loggrep;

// Per-stage wall time accumulated across a pass (nanoseconds).
struct StageNanos {
  uint64_t prune = 0;
  uint64_t open = 0;
  uint64_t stamp_filter = 0;
  uint64_t decompress = 0;
  uint64_t scan = 0;
  uint64_t reconstruct = 0;

  void Accumulate(const LocatorStats& s) {
    prune += s.prune_nanos;
    open += s.open_nanos;
    stamp_filter += s.stamp_filter_nanos;
    decompress += s.decompress_nanos;
    scan += s.scan_nanos;
    reconstruct += s.reconstruct_nanos;
  }
};

struct PassStats {
  double seconds = 0;
  uint64_t bytes_decompressed = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t bytes_saved = 0;
  StageNanos stages;
};

PassStats RunSuite(LogGrepEngine& engine, const std::string& box,
                   const std::vector<std::string>& suite) {
  PassStats stats;
  stats.seconds = bench::TimeSeconds([&] {
    for (const std::string& command : suite) {
      auto result = engine.Query(box, command);
      if (!result.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     result.status().ToString().c_str());
        std::exit(1);
      }
      stats.bytes_decompressed += result->locator.bytes_decompressed;
      stats.cache_hits += result->locator.cache_hits;
      stats.cache_misses += result->locator.cache_misses;
      stats.bytes_saved += result->locator.bytes_saved;
      stats.stages.Accumulate(result->locator);
    }
  });
  return stats;
}

// The §3 refining chain for one dataset: the Table 1 query narrowed twice.
std::vector<std::string> RefinementChain(const std::string& dataset) {
  const std::string base = QueryForDataset(dataset);
  if (base.empty() || base.find(" or ") != std::string::npos ||
      base.find(" not ") != std::string::npos) {
    return {};
  }
  return {base, base + " and 1", base + " and 1 and 2"};
}

int BenchRounds() {
  const char* env = std::getenv("LOGGREP_BENCH_ROUNDS");
  if (env != nullptr && *env != '\0') {
    const int n = std::atoi(env);
    if (n >= 1) {
      return n;
    }
  }
  return 5;
}

double Median(std::vector<double> values) {
  if (values.empty()) {
    return 0;
  }
  std::sort(values.begin(), values.end());
  const size_t mid = values.size() / 2;
  return values.size() % 2 == 1 ? values[mid]
                                : (values[mid - 1] + values[mid]) / 2;
}

// One full pass of the block workload over every dataset. The corpora and
// boxes are compressed once by the caller and reused across rounds so the
// rounds time queries, not compression.
struct BlockCorpus {
  std::string name;
  std::string box;
  std::vector<std::string> suite;
};

struct BlockRoundResult {
  double cold_ms = 0;
  double warm_ms = 0;
  uint64_t cold_bytes = 0;
  uint64_t warm_bytes = 0;
  StageNanos cold_stages;
  int failures = 0;
};

BlockRoundResult RunBlockRound(const std::vector<BlockCorpus>& corpora,
                               bool print) {
  BlockRoundResult round;
  for (const BlockCorpus& corpus : corpora) {
    EngineOptions cold_options;
    cold_options.use_cache = false;
    cold_options.use_box_cache = false;
    LogGrepEngine cold_engine(cold_options);
    const PassStats cold = RunSuite(cold_engine, corpus.box, corpus.suite);

    EngineOptions warm_options;
    warm_options.use_cache = false;  // isolate the BoxCache effect
    LogGrepEngine warm_engine(warm_options);
    const PassStats pass1 = RunSuite(warm_engine, corpus.box, corpus.suite);
    const PassStats warm = RunSuite(warm_engine, corpus.box, corpus.suite);

    if (print) {
      std::printf("%-10s %10.2f %10.2f %10.2f %12.3f %12.3f %8llu %10.3f\n",
                  corpus.name.c_str(), cold.seconds * 1000,
                  pass1.seconds * 1000, warm.seconds * 1000,
                  cold.bytes_decompressed / 1e6, warm.bytes_decompressed / 1e6,
                  static_cast<unsigned long long>(warm.cache_hits),
                  warm.bytes_saved / 1e6);
    }

    round.cold_ms += cold.seconds * 1000;
    round.warm_ms += warm.seconds * 1000;
    round.cold_bytes += cold.bytes_decompressed;
    round.warm_bytes += warm.bytes_decompressed;
    round.cold_stages.Accumulate(LocatorStats{});  // keep zero-safe
    round.cold_stages.prune += cold.stages.prune;
    round.cold_stages.open += cold.stages.open;
    round.cold_stages.stamp_filter += cold.stages.stamp_filter;
    round.cold_stages.decompress += cold.stages.decompress;
    round.cold_stages.scan += cold.stages.scan;
    round.cold_stages.reconstruct += cold.stages.reconstruct;
    // Acceptance: warm pass decompresses strictly fewer fresh bytes than the
    // cold pass and actually hits the cache.
    if (cold.bytes_decompressed > 0 &&
        (warm.bytes_decompressed >= cold.bytes_decompressed ||
         warm.cache_hits == 0)) {
      std::fprintf(stderr, "FAIL %s: warm pass not cheaper than cold\n",
                   corpus.name.c_str());
      ++round.failures;
    }
  }
  return round;
}

// Scalar-vs-active-tier microbench of the padded scan kernel itself.
struct KernelResult {
  double scalar_ms = 0;
  double active_ms = 0;
  double speedup = 0;
  size_t hits = 0;
};

KernelResult RunKernelBench() {
  // A realistic padded column: fixed-width cells, values with shared
  // structure, a fragment that hits a small fraction of rows.
  constexpr uint32_t kWidth = 24;
  constexpr uint32_t kRows = 300000;
  std::string blob;
  blob.reserve(static_cast<size_t>(kWidth) * kRows);
  char cell[kWidth + 1];
  for (uint32_t row = 0; row < kRows; ++row) {
    std::snprintf(cell, sizeof(cell), "blk_%08u_%04u", row * 2654435761u,
                  row % 9973);
    std::string padded(cell);
    padded.resize(kWidth, '\0');
    blob += padded;
  }
  const std::string fragment = "_4973";

  const auto time_tier = [&](SimdTier tier, std::vector<uint32_t>* rows) {
    const ScopedSimdTier pin(tier);
    double best = 1e100;
    for (int rep = 0; rep < 5; ++rep) {
      std::vector<uint32_t> out;
      const double s = bench::TimeSeconds([&] {
        out = SearchPaddedColumn(blob, kWidth, FragmentMode::kSub, fragment);
      });
      best = std::min(best, s);
      *rows = std::move(out);
    }
    return best * 1000;
  };

  KernelResult r;
  std::vector<uint32_t> scalar_rows;
  std::vector<uint32_t> active_rows;
  r.scalar_ms = time_tier(SimdTier::kScalar, &scalar_rows);
  r.active_ms = time_tier(ActiveSimdTier(), &active_rows);
  if (scalar_rows != active_rows) {
    std::fprintf(stderr,
                 "FAIL kernel: scalar and %s tiers disagree (%zu vs %zu hits)\n",
                 SimdTierName(ActiveSimdTier()), scalar_rows.size(),
                 active_rows.size());
    std::exit(1);
  }
  r.hits = scalar_rows.size();
  r.speedup = r.active_ms > 0 ? r.scalar_ms / r.active_ms : 0;
  return r;
}

bool ForcedScalar() {
  const char* env = std::getenv("LOGGREP_FORCE_SCALAR");
  return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
}

bool SanitizerBuild() {
#ifdef LOGGREP_SANITIZER_BUILD
  return true;
#else
  return false;
#endif
}

void WriteBenchJson(const char* path, int rounds, double cold_p50,
                    double warm_p50, const StageNanos& stages,
                    const KernelResult& kernel) {
  std::ofstream out(path);
  char buf[2048];
  std::snprintf(
      buf, sizeof(buf),
      "{\n"
      "  \"bench\": \"query_cache\",\n"
      "  \"simd_tier\": \"%s\",\n"
      "  \"forced_scalar\": %s,\n"
      "  \"sanitizer_build\": %s,\n"
      "  \"rounds\": %d,\n"
      "  \"cold_ms_p50\": %.3f,\n"
      "  \"warm_ms_p50\": %.3f,\n"
      "  \"pr2_baseline_cold_ms\": 233.0,\n"
      "  \"cold_stage_nanos\": {\n"
      "    \"prune\": %llu,\n"
      "    \"open\": %llu,\n"
      "    \"stamp_filter\": %llu,\n"
      "    \"decompress\": %llu,\n"
      "    \"scan\": %llu,\n"
      "    \"reconstruct\": %llu\n"
      "  },\n"
      "  \"kernel\": {\n"
      "    \"scalar_ms\": %.3f,\n"
      "    \"active_ms\": %.3f,\n"
      "    \"speedup\": %.2f,\n"
      "    \"hits\": %zu\n"
      "  }\n"
      "}\n",
      SimdTierName(ActiveSimdTier()), ForcedScalar() ? "true" : "false",
      SanitizerBuild() ? "true" : "false", rounds, cold_p50, warm_p50,
      static_cast<unsigned long long>(stages.prune),
      static_cast<unsigned long long>(stages.open),
      static_cast<unsigned long long>(stages.stamp_filter),
      static_cast<unsigned long long>(stages.decompress),
      static_cast<unsigned long long>(stages.scan),
      static_cast<unsigned long long>(stages.reconstruct), kernel.scalar_ms,
      kernel.active_ms, kernel.speedup, kernel.hits);
  out << buf;
}

}  // namespace

int main() {
  const int rounds = BenchRounds();
  std::printf("== query cache bench: cold vs warm (suite totals per dataset, "
              "%d rounds) ==\n",
              rounds);
  std::printf("%-10s %10s %10s %10s %12s %12s %8s %10s\n", "dataset",
              "cold ms", "pass1 ms", "warm ms", "cold MB dec", "warm MB dec",
              "hits", "saved MB");

  // Compress every corpus once; rounds measure queries only.
  std::vector<BlockCorpus> corpora;
  {
    EngineOptions options;
    options.use_cache = false;
    options.use_box_cache = false;
    LogGrepEngine compressor(options);
    for (const DatasetSpec& spec : AllDatasets()) {
      const std::vector<std::string> suite = QuerySuiteForDataset(spec.name);
      if (suite.empty()) {
        continue;
      }
      const std::string text = LogGenerator(spec).Generate(bench::DatasetBytes());
      corpora.push_back({spec.name, compressor.CompressBlock(text), suite});
    }
  }

  int failures = 0;
  std::vector<double> cold_ms_rounds;
  std::vector<double> warm_ms_rounds;
  StageNanos cold_stages;
  uint64_t cold_bytes_total = 0;
  uint64_t warm_bytes_total = 0;
  for (int round = 0; round < rounds; ++round) {
    const BlockRoundResult r = RunBlockRound(corpora, /*print=*/round == 0);
    cold_ms_rounds.push_back(r.cold_ms);
    warm_ms_rounds.push_back(r.warm_ms);
    cold_bytes_total = r.cold_bytes;
    warm_bytes_total = r.warm_bytes;
    cold_stages.prune += r.cold_stages.prune;
    cold_stages.open += r.cold_stages.open;
    cold_stages.stamp_filter += r.cold_stages.stamp_filter;
    cold_stages.decompress += r.cold_stages.decompress;
    cold_stages.scan += r.cold_stages.scan;
    cold_stages.reconstruct += r.cold_stages.reconstruct;
    failures += r.failures;
  }
  const double cold_p50 = Median(cold_ms_rounds);
  const double warm_p50 = Median(warm_ms_rounds);
  std::printf("p50 over %d rounds: cold %.1f ms / %.2f MB decompressed -> "
              "warm %.1f ms / %.2f MB decompressed\n",
              rounds, cold_p50, cold_bytes_total / 1e6, warm_p50,
              warm_bytes_total / 1e6);
  std::printf("cold stage nanos (all rounds): stamp=%llu decompress=%llu "
              "scan=%llu reconstruct=%llu\n\n",
              static_cast<unsigned long long>(cold_stages.stamp_filter),
              static_cast<unsigned long long>(cold_stages.decompress),
              static_cast<unsigned long long>(cold_stages.scan),
              static_cast<unsigned long long>(cold_stages.reconstruct));

  std::printf("== refining sessions: incremental+memo vs cold re-runs ==\n");
  std::printf("%-10s %12s %12s %10s\n", "dataset", "cold ms", "session ms",
              "speedup");
  double session_speedup_sum = 0;
  int session_rows = 0;
  for (const DatasetSpec& spec : AllDatasets()) {
    const std::vector<std::string> chain = RefinementChain(spec.name);
    if (chain.empty()) {
      continue;
    }
    const std::string text = LogGenerator(spec).Generate(bench::DatasetBytes());

    EngineOptions cold_options;
    cold_options.use_cache = false;
    cold_options.use_box_cache = false;
    LogGrepEngine cold_engine(cold_options);
    const std::string box = cold_engine.CompressBlock(text);
    const double cold_seconds = bench::TimeSeconds([&] {
      for (int round = 0; round < 2; ++round) {
        for (const std::string& command : chain) {
          if (!cold_engine.Query(box, command).ok()) {
            std::exit(1);
          }
        }
      }
    });

    LogGrepEngine warm_engine;
    QuerySession session(&warm_engine, box);
    const double session_seconds = bench::TimeSeconds([&] {
      for (int round = 0; round < 2; ++round) {  // round 2 replays the memo
        for (const std::string& command : chain) {
          if (!session.Query(command).ok()) {
            std::exit(1);
          }
        }
      }
    });
    const double speedup =
        session_seconds > 0 ? cold_seconds / session_seconds : 0;
    std::printf("%-10s %12.2f %12.2f %9.1fx\n", spec.name.c_str(),
                cold_seconds * 1000, session_seconds * 1000, speedup);
    session_speedup_sum += speedup;
    ++session_rows;
  }
  if (session_rows > 0) {
    std::printf("mean session speedup: %.1fx\n\n",
                session_speedup_sum / session_rows);
  }

  std::printf("== archive: cold vs warm over the shared BoxCache ==\n");
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("loggrep_query_cache_bench_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  {
    auto archive = LogArchive::Create(dir.string());
    if (!archive.ok()) {
      std::fprintf(stderr, "%s\n", archive.status().ToString().c_str());
      return 1;
    }
    DatasetSpec spec = *FindDataset("Log A");
    for (int b = 0; b < 4; ++b) {
      spec.seed += 13;
      if (!archive->AppendBlock(LogGenerator(spec).Generate(bench::DatasetBytes()))
               .ok()) {
        return 1;
      }
    }
    const std::string command = QueryForDataset("Log A");
    ArchiveQueryResult cold_result;
    const double cold_seconds = bench::TimeSeconds([&] {
      auto r = archive->Query(command);
      if (!r.ok()) {
        std::exit(1);
      }
      cold_result = std::move(*r);
    });
    // Different command so the command cache cannot answer; only the
    // BoxCache makes it warm.
    const std::string warm_command = command + " and 1";
    ArchiveQueryResult warm_result;
    const double warm_seconds = bench::TimeSeconds([&] {
      auto r = archive->Query(warm_command);
      if (!r.ok()) {
        std::exit(1);
      }
      warm_result = std::move(*r);
    });
    std::printf("cold: %7.2f ms, %8.3f MB decompressed, %llu cache misses\n",
                cold_seconds * 1000,
                cold_result.locator.bytes_decompressed / 1e6,
                static_cast<unsigned long long>(cold_result.locator.cache_misses));
    std::printf("warm: %7.2f ms, %8.3f MB decompressed, %llu cache hits, "
                "%.3f MB saved\n",
                warm_seconds * 1000,
                warm_result.locator.bytes_decompressed / 1e6,
                static_cast<unsigned long long>(warm_result.locator.cache_hits),
                warm_result.locator.bytes_saved / 1e6);
    if (warm_result.locator.cache_hits == 0 ||
        warm_result.locator.bytes_decompressed >=
            cold_result.locator.bytes_decompressed +
                cold_result.locator.bytes_saved + 1) {
      std::fprintf(stderr, "FAIL archive: warm query did not use the cache\n");
      ++failures;
    }
  }
  std::filesystem::remove_all(dir);

  std::printf("\n== scan kernel: scalar vs %s ==\n",
              SimdTierName(ActiveSimdTier()));
  const KernelResult kernel = RunKernelBench();
  std::printf("scalar %.2f ms, %s %.2f ms -> %.2fx (%zu hits, identical)\n",
              kernel.scalar_ms, SimdTierName(ActiveSimdTier()),
              kernel.active_ms, kernel.speedup, kernel.hits);

  const std::string bench_json = bench::BenchOutputPath("BENCH_query.json");
  WriteBenchJson(bench_json.c_str(), rounds, cold_p50, warm_p50, cold_stages,
                 kernel);
  std::printf("wrote %s\n", bench_json.c_str());

  // Kernel-speedup gate: only meaningful when the vector tier is actually
  // active and timings are undistorted (no sanitizer, no forced scalar).
  if (ActiveSimdTier() == SimdTier::kAvx2 && !SanitizerBuild() &&
      !ForcedScalar() && kernel.speedup < 1.3) {
    std::fprintf(stderr,
                 "FAIL kernel: %.2fx speedup below the 1.3x acceptance gate\n",
                 kernel.speedup);
    ++failures;
  }

  if (failures > 0) {
    std::fprintf(stderr, "%d invariant failure(s)\n", failures);
    return 1;
  }
  std::printf("all workloads: warm pass decompressed fewer fresh bytes than "
              "cold; kernel tiers agree\n");
  return 0;
}
