// §8 tradeoff study: the paper names compression speed as LogGrep's main
// remaining cost. This bench swaps the Capsule compressor (the LZMA stand-in
// default vs the gzip-class and LZ4-class codecs) and reports the resulting
// compression speed / ratio / query latency / overall cost, quantifying what
// a faster second-stage compressor buys and costs.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/baselines/loggrep_backend.h"
#include "src/codec/codec.h"
#include "src/common/timer.h"
#include "src/workload/loggen.h"
#include "src/workload/queries.h"

int main() {
  using namespace loggrep;

  struct Choice {
    const char* label;
    const Codec* codec;
  };
  const std::vector<Choice> choices = {
      {"xz-like (default)", &GetXzCodec()},
      {"gzip-like", &GetGzipCodec()},
      {"zstd-like (LZ4-class)", &GetZstdCodec()},
  };

  struct Acc {
    double raw_mb = 0;
    double stored_mb = 0;
    double compress_s = 0;
    double query_s = 0;
    int queries = 0;
  };
  std::vector<Acc> acc(choices.size());

  for (const DatasetSpec& spec : AllDatasets()) {
    const std::string text = LogGenerator(spec).Generate(bench::DatasetBytes());
    const std::vector<std::string> queries = QuerySuiteForDataset(spec.name);
    for (size_t c = 0; c < choices.size(); ++c) {
      EngineOptions opts;
      opts.codec = choices[c].codec;
      opts.use_cache = false;
      LogGrepEngine engine(opts);
      WallTimer timer;
      const std::string box = engine.CompressBlock(text);
      acc[c].compress_s += timer.ElapsedSeconds();
      acc[c].raw_mb += text.size() / 1e6;
      acc[c].stored_mb += box.size() / 1e6;
      for (const std::string& q : queries) {
        timer.Reset();
        auto r = engine.Query(box, q);
        (void)r;
        acc[c].query_s += timer.ElapsedSeconds();
        ++acc[c].queries;
      }
    }
  }

  std::printf("== Capsule codec choice (all 37 datasets) ==\n");
  std::printf("%-24s %8s %12s %14s %12s\n", "codec", "ratio", "comp MB/s",
              "query ms avg", "cost $/TB");
  for (size_t c = 0; c < choices.size(); ++c) {
    SystemMeasurement m;
    m.raw_gb = 1024;
    m.compression_ratio = acc[c].raw_mb / acc[c].stored_mb;
    m.compress_speed_mb_s = acc[c].raw_mb / acc[c].compress_s;
    m.query_latency_s = (acc[c].query_s / acc[c].queries) *
                        (1024.0 * 1024.0 / (acc[c].raw_mb / 37 * 1e6 / (1 << 20)));
    const CostBreakdown cost = ComputeCost(m);
    std::printf("%-24s %8.2f %12.1f %14.3f %12.2f\n", choices[c].label,
                m.compression_ratio, m.compress_speed_mb_s,
                1000.0 * acc[c].query_s / acc[c].queries, cost.total());
  }
  std::printf("\npaper (§8): compression speed is the remaining bottleneck; a\n"
              "faster codec trades storage cost for ingest speed\n");
  return 0;
}
