// Multi-tenant SLO workload drive against a live loggrepd (see
// src/workload/slo_harness.h for the full design): Zipf-skewed open-loop
// tenants, concurrent ingest publishing archives mid-run, seeded storage
// faults underneath, every answer checked against a serial oracle.
//
// Prints the per-window latency table + run-wide rates, writes
// BENCH_workload.json (via LOGGREP_BENCH_OUT_DIR like every bench), and
// exits non-zero when a gate fails: any oracle mismatch, or warm windowed
// p99 not below cold.
//
// Scale knobs (env): LOGGREP_WORKLOAD_TENANTS (4), LOGGREP_WORKLOAD_QPS
// (150), LOGGREP_WORKLOAD_MS (4000), LOGGREP_WORKLOAD_SEED (42),
// LOGGREP_WORKLOAD_FAULTS (1).
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "bench/bench_util.h"
#include "src/workload/slo_harness.h"

namespace loggrep {
namespace bench {
namespace {

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  const long long parsed = std::atoll(value);
  return parsed >= 0 ? static_cast<uint64_t>(parsed) : fallback;
}

int Run() {
  SloHarnessOptions options;
  options.tenants = static_cast<size_t>(EnvU64("LOGGREP_WORKLOAD_TENANTS", 4));
  options.offered_qps =
      static_cast<double>(EnvU64("LOGGREP_WORKLOAD_QPS", 150));
  options.duration_ms = EnvU64("LOGGREP_WORKLOAD_MS", 4000);
  options.seed = EnvU64("LOGGREP_WORKLOAD_SEED", 42);
  options.inject_faults = EnvU64("LOGGREP_WORKLOAD_FAULTS", 1) != 0;

  Result<SloHarnessReport> report = RunSloHarness(options);
  if (!report.ok()) {
    std::fprintf(stderr, "harness setup failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "workload_slo: %zu tenants, %.0f qps offered, %" PRIu64
      " ms, faults %s\n",
      options.tenants, options.offered_qps, options.duration_ms,
      options.inject_faults ? "on" : "off");
  std::printf("%-10s %8s %10s %10s\n", "window_ms", "reqs", "p50_ms",
              "p99_ms");
  for (const SloWindow& w : report->windows) {
    std::printf("%-10" PRIu64 " %8" PRIu64 " %10.3f %10.3f\n", w.start_ms,
                w.requests, w.p50_ms, w.p99_ms);
  }
  std::printf(
      "requests %" PRIu64 " (%.1f qps)  200:%" PRIu64 "  206:%" PRIu64
      "  429:%" PRIu64 "  err:%" PRIu64 "  bad:%" PRIu64 "\n",
      report->requests, report->achieved_qps, report->ok_200,
      report->degraded_206, report->shed_429, report->errors,
      report->mismatches);
  std::printf(
      "cache_hit_rate %.3f  degraded_rate %.4f  shed_rate %.4f  "
      "slow_captured %" PRIu64 "  server_window_p99 %.3f ms\n",
      report->cache_hit_rate, report->degraded_rate, report->shed_rate,
      report->slow_queries_captured, report->server_window_p99_ms);
  std::printf("cold p99 %.3f ms -> warm p99 %.3f ms\n", report->cold_p99_ms,
              report->warm_p99_ms);

  const std::string out_path = BenchOutputPath("BENCH_workload.json");
  {
    std::ofstream out(out_path);
    out << report->ToJson() << "\n";
  }
  std::printf("wrote %s\n", out_path.c_str());

  std::string why;
  if (!report->GatesPass(&why)) {
    std::fprintf(stderr, "FAIL: %s\n", why.c_str());
    std::fprintf(stderr, "run dir kept for post-mortem: %s\n",
                 report->root.c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace loggrep

int main() { return loggrep::bench::Run(); }
