// Fuzz target: bit-level reader + canonical Huffman decoder on arbitrary
// bytes. The first bytes are interpreted as a code-length table (the way a
// hostile compressed stream delivers one), the rest as the bitstream.
// Property: Build rejects invalid tables cleanly; Decode on a valid table
// never reads out of bounds and terminates (-1 on stream end).
#include <cstdint>
#include <string_view>
#include <vector>

#include "fuzz/fuzz_driver.h"
#include "src/codec/bitstream.h"
#include "src/codec/huffman.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);

  // Raw bit reads at every width, including past-end behavior.
  {
    loggrep::BitReader reader(input);
    for (int width = 1; width <= 32; ++width) {
      if (reader.ReadBits(width) < 0) {
        break;
      }
    }
    loggrep::BitReader bits(input);
    int guard = 0;
    while (bits.ReadBit() >= 0 && ++guard < 1 << 16) {
    }
  }

  // Hostile Huffman code-length table + stream decode.
  if (size < 2) {
    return 0;
  }
  const size_t table_len = 1 + data[0] % 64;
  if (size < 1 + table_len) {
    return 0;
  }
  std::vector<uint8_t> lengths(data + 1, data + 1 + table_len);
  auto decoder = loggrep::HuffmanDecoder::Build(lengths);
  if (!decoder.ok()) {
    return 0;  // clean rejection of an oversubscribed / overlong table
  }
  loggrep::BitReader stream(input.substr(1 + table_len));
  for (int i = 0; i < 1 << 14; ++i) {
    if (decoder->Decode(stream) < 0) {
      break;
    }
  }
  return 0;
}
