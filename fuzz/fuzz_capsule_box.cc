// Fuzz target: CapsuleBox::Open + a query over arbitrary bytes. Exercises
// metadata parsing, ValidateMeta referential checks, capsule directory
// bounds, stamp/pattern deserialization, and — when a hostile box slips
// through Open — the locator/reconstructor runtime clamps. Property: never
// a crash or OOB regardless of what Open accepts.
#include <cstdint>
#include <string_view>

#include "fuzz/fuzz_driver.h"
#include "src/capsule/capsule_box.h"
#include "src/core/engine.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);
  auto box = loggrep::CapsuleBox::Open(input);
  if (!box.ok()) {
    return 0;
  }
  // The box opened: drive the full query path over it (keyword chosen to
  // reach real/nominal/whole matchers and the reconstructor).
  loggrep::LogGrepEngine engine;
  auto r1 = engine.Query(input, "error or 10.0.*");
  auto r2 = engine.Query(input, "read and not 503");
  (void)r1;
  (void)r2;
  return 0;
}
