// Fuzz target: loggrepd's HTTP surface on arbitrary bytes. Properties:
//   * HttpRequestParser never crashes, never over-consumes, and always makes
//     progress while it reports kNeedMore (a zero-byte stall would livelock
//     a connection thread);
//   * the terminal outcome is chunking-invariant: feeding the same bytes one
//     shot vs in small chunks reaches the same state, error status, consumed
//     count and parsed request;
//   * kError always carries an answerable 4xx/5xx status, kDone never does;
//   * ParseResponseBytes (the client's half) and ParseJson on the same bytes
//     return cleanly — reject or accept, never crash or over-read.
//
// Limits are shrunk far below production defaults so mutated inputs reach
// the 413/414/431 limit paths within a few hundred bytes.
#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>

#include "fuzz/fuzz_driver.h"
#include "src/common/json.h"
#include "src/server/http.h"

namespace {

loggrep::HttpLimits SmallLimits() {
  loggrep::HttpLimits limits;
  limits.max_request_line_bytes = 256;
  limits.max_header_bytes = 1024;
  limits.max_headers = 16;
  limits.max_body_bytes = 4096;
  return limits;
}

struct ParseOutcome {
  loggrep::HttpRequestParser::State state =
      loggrep::HttpRequestParser::State::kNeedMore;
  int error_status = 0;
  size_t consumed = 0;
  std::string method;
  std::string path;
  std::string body;
  size_t num_params = 0;
  size_t num_headers = 0;
};

ParseOutcome RunParser(std::string_view input, size_t chunk) {
  using State = loggrep::HttpRequestParser::State;
  loggrep::HttpRequestParser parser(SmallLimits());
  ParseOutcome outcome;
  std::string_view rest = input;
  while (!rest.empty() && parser.state() == State::kNeedMore) {
    const size_t n = std::min(chunk, rest.size());
    const size_t used = parser.Feed(rest.substr(0, n));
    if (used > n) {
      __builtin_trap();  // over-consumed: read past what it was given
    }
    if (used == 0 && parser.state() == State::kNeedMore) {
      __builtin_trap();  // zero progress while asking for more: livelock
    }
    outcome.consumed += used;
    rest.remove_prefix(used);
  }
  outcome.state = parser.state();
  outcome.error_status = parser.error_status();
  if (parser.state() == State::kDone) {
    outcome.method = parser.request().method;
    outcome.path = parser.request().path;
    outcome.body = parser.request().body;
    outcome.num_params = parser.request().params.size();
    outcome.num_headers = parser.request().headers.size();
  }
  return outcome;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using State = loggrep::HttpRequestParser::State;
  if (size == 0) {
    return 0;
  }
  // First byte picks the drip-feed chunk size; the rest is the message.
  const size_t chunk = 1 + (data[0] % 17);
  const std::string_view input(reinterpret_cast<const char*>(data) + 1,
                               size - 1);

  const ParseOutcome one_shot = RunParser(input, input.size() + 1);
  const ParseOutcome dripped = RunParser(input, chunk);
  if (one_shot.state != dripped.state ||
      one_shot.error_status != dripped.error_status) {
    __builtin_trap();  // outcome depends on packet boundaries
  }
  // Consumed counts and the parsed request must agree on success. (On error
  // they legitimately differ: a one-shot feed may swallow the whole buffer
  // before tripping a limit that a drip-feed trips at a chunk boundary —
  // irrelevant, since the connection closes without reusing the tail.)
  if (one_shot.state == State::kDone &&
      (one_shot.consumed != dripped.consumed ||
       one_shot.method != dripped.method || one_shot.path != dripped.path ||
       one_shot.body != dripped.body ||
       one_shot.num_params != dripped.num_params ||
       one_shot.num_headers != dripped.num_headers)) {
    __builtin_trap();
  }
  if (one_shot.state == State::kError && (one_shot.error_status < 400 ||
                                          one_shot.error_status > 599)) {
    __builtin_trap();  // rejected without an answerable status
  }
  if (one_shot.state == State::kDone && one_shot.error_status != 0) {
    __builtin_trap();
  }

  // Drain pipelined requests the way a connection thread does: fresh parser
  // per request over the unconsumed tail, stopping at need-more/error.
  std::string_view rest = input;
  for (int i = 0; i < 8 && !rest.empty(); ++i) {
    loggrep::HttpRequestParser parser(SmallLimits());
    const size_t used = parser.Feed(rest);
    if (used > rest.size()) {
      __builtin_trap();
    }
    rest.remove_prefix(used);
    if (parser.state() != State::kDone) {
      break;
    }
  }

  // The client's half on the same bytes: bounded, crash-free, over-read-free.
  loggrep::ParsedResponse response;
  size_t consumed = 0;
  if (loggrep::ParseResponseBytes(input, &response, &consumed,
                                  SmallLimits())) {
    if (consumed > input.size()) {
      __builtin_trap();
    }
  }
  (void)loggrep::ParseJson(input);

  // Url round-trip: encoding is always decodable back to the same bytes.
  const std::string encoded = loggrep::UrlEncode(input);
  if (loggrep::UrlDecode(encoded, /*plus_is_space=*/false) != input) {
    __builtin_trap();
  }
  return 0;
}
