// Fuzz target: archive manifest parsing on arbitrary bytes. Property: any
// input yields blocks or a clean Status — no crash, no unbounded reserve
// from hostile counts, and accepted manifests satisfy the parser's own
// invariants (strictly increasing seq, non-overlapping line ranges).
#include <cstdint>
#include <string_view>

#include "fuzz/fuzz_driver.h"
#include "src/store/log_archive.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);
  auto blocks = loggrep::ParseManifestBytes(input);
  if (!blocks.ok()) {
    return 0;
  }
  uint64_t prev_seq = 0;
  uint64_t prev_end = 0;
  bool first = true;
  for (const loggrep::BlockInfo& block : *blocks) {
    if (!first && (block.seq <= prev_seq || block.first_line < prev_end)) {
      __builtin_trap();  // parser accepted an invariant violation
    }
    prev_seq = block.seq;
    prev_end = block.first_line + block.line_count;
    first = false;
  }
  return 0;
}
