// Standalone fuzzing driver, libFuzzer-compatible.
//
// Every target defines the libFuzzer entry point
//   extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);
// When the toolchain has clang, build with `-fsanitize=fuzzer,address` and
// libFuzzer supplies main(). This header supplies the fallback main() for
// plain gcc builds (the only compiler in the default container):
//
//   fuzz_target <corpus-dir|file>... [-seconds N] [-runs N] [-seed S]
//               [-max_len BYTES]
//
// Phase 1 replays every corpus input (regression mode). Phase 2 — when
// -seconds or -runs is given — runs a seeded mutation loop over the corpus:
// byte flips, truncations, splices, insertions and varint-boundary edits,
// calling the target on each mutant. Any crash (signal / uncaught throw /
// sanitizer abort) terminates the process with the offending input dumped
// to ./crash-<hash> so it can be committed as a reproducer.
//
// Build with -DLOGGREP_FUZZ_LIBFUZZER to suppress this main() and let
// libFuzzer's own driver link instead.
#ifndef FUZZ_FUZZ_DRIVER_H_
#define FUZZ_FUZZ_DRIVER_H_

#include <cstddef>
#include <cstdint>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

#ifndef LOGGREP_FUZZ_LIBFUZZER
int LoggrepFuzzMain(int argc, char** argv);
#endif

#endif  // FUZZ_FUZZ_DRIVER_H_
