// Fuzz target: codec container decode (DecompressAny) on arbitrary bytes.
// Exercises the bomb caps, the per-codec payload decoders (range coder,
// Huffman tables, LZ copy loops) and the XzCodec mode dispatch. Property:
// any input yields ok() or a clean error — no crash, no unbounded
// allocation. Additionally, whatever round-trips must round-trip stably.
#include <cstdint>
#include <string>

#include "fuzz/fuzz_driver.h"
#include "src/codec/codec.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);
  auto out = loggrep::DecompressAny(input);
  if (out.ok()) {
    // Decoded cleanly: re-compressing the decoded bytes with the same codec
    // must round-trip (self-consistency of the accepted subset).
    if (!input.empty()) {
      auto codec = loggrep::CodecById(static_cast<uint8_t>(input[0]));
      if (codec.ok()) {
        const std::string again = (*codec)->Compress(*out);
        auto back = (*codec)->Decompress(again);
        if (!back.ok() || *back != *out) {
          __builtin_trap();  // lossy codec — fuzz finding
        }
      }
    }
  }
  return 0;
}
