#include "fuzz/fuzz_driver.h"

#ifndef LOGGREP_FUZZ_LIBFUZZER

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/hash.h"
#include "src/common/rng.h"

namespace {

namespace fs = std::filesystem;

std::string ReadWhole(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void RunOne(const std::string& input) {
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(input.data()),
                         input.size());
}

// Dumps `input` before running it, removes the dump afterwards: if the
// target crashes the process, the reproducer survives on disk.
void RunOneWithCrashDump(const std::string& input) {
  const uint64_t h = loggrep::Fnv1a64(input);
  char name[64];
  std::snprintf(name, sizeof(name), "crash-%016llx",
                static_cast<unsigned long long>(h));
  {
    std::ofstream out(name, std::ios::binary);
    out.write(input.data(), static_cast<std::streamsize>(input.size()));
  }
  RunOne(input);
  fs::remove(name);
}

// One mutation step. Mirrors the classic libFuzzer mutators that matter for
// length-prefixed binary formats: bit flips, byte sets, truncation, block
// deletion, duplication, splicing with another corpus entry, and small
// varint-ish integer edits.
std::string Mutate(loggrep::Rng& rng, const std::vector<std::string>& corpus,
                   size_t max_len) {
  std::string input = corpus[rng.NextBelow(corpus.size())];
  const int rounds = 1 + static_cast<int>(rng.NextBelow(8));
  for (int i = 0; i < rounds; ++i) {
    switch (rng.NextBelow(8)) {
      case 0:  // flip one bit
        if (!input.empty()) {
          input[rng.NextBelow(input.size())] ^=
              static_cast<char>(1u << rng.NextBelow(8));
        }
        break;
      case 1:  // overwrite one byte
        if (!input.empty()) {
          input[rng.NextBelow(input.size())] =
              static_cast<char>(rng.NextU64());
        }
        break;
      case 2:  // truncate
        if (!input.empty()) {
          input.resize(rng.NextBelow(input.size()));
        }
        break;
      case 3: {  // delete a block
        if (input.size() >= 2) {
          const size_t begin = rng.NextBelow(input.size());
          const size_t len = 1 + rng.NextBelow(input.size() - begin);
          input.erase(begin, len);
        }
        break;
      }
      case 4: {  // duplicate a block
        if (!input.empty()) {
          const size_t begin = rng.NextBelow(input.size());
          const size_t len =
              1 + rng.NextBelow(std::min<size_t>(input.size() - begin, 64));
          input.insert(rng.NextBelow(input.size() + 1),
                       input.substr(begin, len));
        }
        break;
      }
      case 5: {  // splice with another corpus entry
        const std::string& other = corpus[rng.NextBelow(corpus.size())];
        if (!other.empty()) {
          const size_t cut = rng.NextBelow(input.size() + 1);
          input = input.substr(0, cut) +
                  other.substr(rng.NextBelow(other.size()));
        }
        break;
      }
      case 6: {  // insert random bytes
        std::string noise;
        const size_t len = 1 + rng.NextBelow(16);
        for (size_t b = 0; b < len; ++b) {
          noise += static_cast<char>(rng.NextU64());
        }
        input.insert(rng.NextBelow(input.size() + 1), noise);
        break;
      }
      default: {  // write an interesting integer (varint boundary values)
        static const uint64_t kInteresting[] = {
            0, 1, 127, 128, 255, 256, 0x3FFF, 0x4000, 0xFFFF, 0xFFFFFFFFull,
            0x7FFFFFFFFFFFFFFFull, 0xFFFFFFFFFFFFFFFFull};
        const uint64_t v = kInteresting[rng.NextBelow(12)];
        if (input.size() >= 8) {
          std::memcpy(&input[rng.NextBelow(input.size() - 7)], &v, 8);
        }
        break;
      }
    }
  }
  if (input.size() > max_len) {
    input.resize(max_len);
  }
  return input;
}

}  // namespace

int LoggrepFuzzMain(int argc, char** argv) {
  std::vector<std::string> corpus;
  double seconds = 0;
  uint64_t runs = 0;
  uint64_t seed = 1;
  size_t max_len = 1 << 20;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "-seconds") {
      seconds = std::atof(next());
    } else if (arg == "-runs") {
      runs = std::strtoull(next(), nullptr, 10);
    } else if (arg == "-seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "-max_len") {
      max_len = std::strtoull(next(), nullptr, 10);
    } else if (fs::is_directory(arg)) {
      for (const auto& entry : fs::directory_iterator(arg)) {
        if (entry.is_regular_file()) {
          corpus.push_back(ReadWhole(entry.path().string()));
        }
      }
    } else if (fs::is_regular_file(arg)) {
      corpus.push_back(ReadWhole(arg));
    } else {
      std::fprintf(stderr, "fuzz: ignoring missing input %s\n", arg.c_str());
    }
  }
  if (corpus.empty()) {
    corpus.push_back(std::string());  // always have a seed to mutate
  }

  // Phase 1: corpus replay (every committed reproducer re-runs).
  for (const std::string& input : corpus) {
    RunOneWithCrashDump(input);
  }
  std::fprintf(stderr, "fuzz: replayed %zu corpus inputs\n", corpus.size());

  // Phase 2: bounded mutation loop.
  if (seconds <= 0 && runs == 0) {
    return 0;
  }
  loggrep::Rng rng(seed * 0x9E3779B97F4A7C15ull + 1);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(static_cast<int64_t>(seconds * 1000));
  uint64_t executed = 0;
  while ((runs == 0 || executed < runs) &&
         (seconds <= 0 || std::chrono::steady_clock::now() < deadline)) {
    RunOneWithCrashDump(Mutate(rng, corpus, max_len));
    ++executed;
  }
  std::fprintf(stderr, "fuzz: %llu mutated runs, 0 crashes\n",
               static_cast<unsigned long long>(executed));
  return 0;
}

int main(int argc, char** argv) { return LoggrepFuzzMain(argc, argv); }

#endif  // LOGGREP_FUZZ_LIBFUZZER
