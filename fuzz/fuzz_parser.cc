// Fuzz target: the whole compression pipeline on arbitrary text — template
// miner, block parser, runtime-pattern extractors, assembler, packer — then
// the decode side. Property: CompressBlock never crashes on hostile text,
// its output always opens, and reconstruction returns the input lines
// byte-for-byte (a differential check, so this target finds semantic bugs,
// not just memory bugs).
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fuzz/fuzz_driver.h"
#include "src/core/engine.h"
#include "src/parser/template_miner.h"
#include "src/store/verify.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > 1 << 18) {
    return 0;  // keep single executions fast
  }
  const std::string text(reinterpret_cast<const char*>(data), size);

  loggrep::LogGrepEngine engine;
  const std::string box = engine.CompressBlock(text);

  auto lines = loggrep::ReconstructAllLines(box);
  if (!lines.ok()) {
    __builtin_trap();  // our own compressor emitted an unreadable box
  }
  const std::vector<std::string_view> expected = loggrep::SplitLines(text);
  if (lines->size() != expected.size()) {
    __builtin_trap();
  }
  for (size_t i = 0; i < expected.size(); ++i) {
    if ((*lines)[i] != expected[i]) {
      __builtin_trap();  // lossy compression — fuzz finding
    }
  }
  return 0;
}
