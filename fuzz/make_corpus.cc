// Seed-corpus generator: writes real archives, boxes, codec blobs and
// manifests into fuzz/corpus/<target>/ so every fuzz target starts from
// structurally valid inputs (coverage deep inside the decoders) instead of
// spending its budget rediscovering magic bytes.
//
//   make_corpus <corpus-root>
//
// Deterministic: re-running produces identical files (content-hash names),
// so the committed corpus stays stable.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/codec/codec.h"
#include "src/common/bytes.h"
#include "src/common/hash.h"
#include "src/core/engine.h"
#include "src/store/fs_util.h"
#include "src/store/log_archive.h"
#include "src/workload/datasets.h"
#include "src/workload/loggen.h"

namespace {

namespace fs = std::filesystem;
using namespace loggrep;

void WriteSeed(const std::string& dir, const std::string& bytes) {
  fs::create_directories(dir);
  char name[64];
  std::snprintf(name, sizeof(name), "seed-%016llx",
                static_cast<unsigned long long>(Fnv1a64(bytes)));
  std::ofstream out(dir + "/" + name, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string SampleText(uint64_t seed, size_t lines) {
  DatasetSpec spec = AllDatasets()[seed % AllDatasets().size()];
  spec.seed = seed | 1;
  return LogGenerator(spec).GenerateLines(lines);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: make_corpus <corpus-root>\n");
    return 2;
  }
  const std::string root = argv[1];

  // --- codec: container blobs from all three codecs, varied content -------
  {
    const std::string dir = root + "/codec";
    const std::vector<std::string> payloads = {
        "", "x", std::string(512, '\0'), SampleText(1, 20),
        std::string("abababababababab")};
    for (const Codec* codec :
         {&GetXzCodec(), &GetGzipCodec(), &GetZstdCodec()}) {
      for (const std::string& payload : payloads) {
        WriteSeed(dir, codec->Compress(payload));
      }
    }
  }

  // --- bitstream: compressed payloads minus the container header ----------
  {
    const std::string dir = root + "/bitstream";
    for (uint64_t s = 1; s <= 3; ++s) {
      const std::string blob = GetXzCodec().Compress(SampleText(s, 30));
      WriteSeed(dir, blob.substr(std::min<size_t>(blob.size(), 3)));
    }
    WriteSeed(dir, std::string("\x05\x01\x02\x03\x04\x05hello", 11));
  }

  // --- parser: raw log text in several dataset shapes ---------------------
  {
    const std::string dir = root + "/parser";
    for (uint64_t s = 1; s <= 4; ++s) {
      WriteSeed(dir, SampleText(s * 7, 25));
    }
    WriteSeed(dir, "no structure here\nat all\n\n");
    WriteSeed(dir, std::string("\x00\x01\x02 binary-ish line\n", 21));
  }

  // --- capsule_box: serialized boxes from several engine configs ----------
  {
    const std::string dir = root + "/capsule_box";
    const std::string text = SampleText(11, 40);
    {
      LogGrepEngine full;
      WriteSeed(dir, full.CompressBlock(text));
    }
    {
      EngineOptions o;
      o.static_only = true;
      LogGrepEngine sp(o);
      WriteSeed(dir, sp.CompressBlock(text));
    }
    {
      EngineOptions o;
      o.use_fixed = false;
      o.codec = &GetGzipCodec();
      LogGrepEngine unpadded(o);
      WriteSeed(dir, unpadded.CompressBlock(text));
    }
    {
      LogGrepEngine full;
      WriteSeed(dir, full.CompressBlock(""));  // empty block
    }
  }

  // --- manifest: real multi-block archive manifests -----------------------
  {
    const std::string dir = root + "/manifest";
    const std::string scratch =
        (fs::temp_directory_path() / "loggrep-make-corpus").string();
    fs::remove_all(scratch);
    auto archive = LogArchive::Create(scratch);
    if (!archive.ok()) {
      std::fprintf(stderr, "%s\n", archive.status().ToString().c_str());
      return 1;
    }
    for (uint64_t b = 0; b < 3; ++b) {
      if (Status s = archive->AppendBlock(SampleText(b + 21, 30)); !s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
      auto manifest = ReadFileBytes(scratch + "/archive.manifest");
      if (manifest.ok()) {
        WriteSeed(dir, *manifest);  // 1-, 2- and 3-block manifests
      }
    }
    fs::remove_all(scratch);
  }

  // --- http: request/response/json bytes behind the 1-byte chunk selector
  // fuzz_http consumes (first byte picks the drip-feed size). ---------------
  {
    const std::string dir = root + "/http";
    auto with_chunk = [](char chunk, std::string msg) {
      return std::string(1, chunk) + std::move(msg);
    };
    WriteSeed(dir, with_chunk(3, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"));
    WriteSeed(dir,
              with_chunk(1,
                         "POST /query?archive=arch&degrade=0 HTTP/1.1\r\n"
                         "Host: x\r\nContent-Length: 5\r\n\r\nERROR"));
    WriteSeed(dir,
              with_chunk(7,
                         "GET /metrics HTTP/1.1\r\n\r\n"
                         "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n"));
    WriteSeed(dir,
              with_chunk(2,
                         "HTTP/1.1 206 Partial Content\r\n"
                         "content-type: application/json\r\n"
                         "retry-after: 1\r\ncontent-length: 2\r\n\r\n{}"));
    WriteSeed(dir,
              with_chunk(5,
                         "{\"complete\":false,\"hits\":[[1,\"a\"],[9,\"b\"]],"
                         "\"stats\":{\"cache_hits\":2,\"blocks_from_cache\":1},"
                         "\"partial\":{\"lines_missing\":120}}"));
    WriteSeed(dir, with_chunk(4, "BOGUS \x01 HTTP/9.9\r\nX:\r\n\r\n"));
  }

  std::printf("corpus written under %s\n", root.c_str());
  return 0;
}
