#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/common/rng.h"
#include "src/pattern/cluster_extractor.h"
#include "src/pattern/merge_extractor.h"
#include "src/pattern/runtime_pattern.h"
#include "src/pattern/tree_extractor.h"

namespace loggrep {
namespace {

// ---- duplication rate / classification ---------------------------------------

TEST(DuplicationRateTest, Basics) {
  EXPECT_DOUBLE_EQ(DuplicationRate({}), 0.0);
  EXPECT_DOUBLE_EQ(DuplicationRate({"a", "b", "c"}), 0.0);
  EXPECT_DOUBLE_EQ(DuplicationRate({"a", "a", "a", "a"}), 0.75);
  EXPECT_DOUBLE_EQ(DuplicationRate({"a", "a", "b", "b"}), 0.5);
}

TEST(ClassifyVectorTest, ThresholdBoundary) {
  // Exactly at the threshold counts as nominal (>= 0.5, §4.1).
  EXPECT_EQ(ClassifyVector({"a", "a", "b", "b"}), VectorClass::kNominal);
  EXPECT_EQ(ClassifyVector({"a", "b", "c", "c"}), VectorClass::kReal);
  EXPECT_EQ(ClassifyVector({"x"}), VectorClass::kReal);
}

// ---- runtime pattern model ------------------------------------------------------

RuntimePattern MakePattern(std::vector<PatternElement> elems) {
  return RuntimePattern(std::move(elems));
}

PatternElement Const(std::string text) {
  PatternElement e;
  e.constant = std::move(text);
  return e;
}

PatternElement Sub(uint32_t idx) {
  PatternElement e;
  e.is_subvar = true;
  e.subvar = idx;
  return e;
}

TEST(RuntimePatternTest, MatchAndRenderPaperExample) {
  // "block_<sv1>F8<sv2>" from Fig. 4.
  const RuntimePattern p =
      MakePattern({Const("block_"), Sub(0), Const("F8"), Sub(1)});
  auto m = p.MatchValue("block_1F81F");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ((*m)[0], "1");
  EXPECT_EQ((*m)[1], "1F");
  EXPECT_EQ(p.Render({"1", "1F"}), "block_1F81F");

  m = p.MatchValue("block_8F8F8FE");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ((*m)[0], "8");  // leftmost "F8"
  EXPECT_EQ((*m)[1], "F8FE");

  EXPECT_FALSE(p.MatchValue("Failed").has_value());
  EXPECT_FALSE(p.MatchValue("block_123").has_value());  // missing "F8"
}

TEST(RuntimePatternTest, TrailingConstantMustTerminate) {
  const RuntimePattern p = MakePattern({Sub(0), Const(".log")});
  EXPECT_TRUE(p.MatchValue("x.log").has_value());
  EXPECT_FALSE(p.MatchValue("x.logs").has_value());
  EXPECT_FALSE(p.MatchValue("x.lo").has_value());
}

TEST(RuntimePatternTest, EmptySubValueAllowed) {
  const RuntimePattern p = MakePattern({Const("a"), Sub(0), Const("b")});
  auto m = p.MatchValue("ab");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ((*m)[0], "");
}

TEST(RuntimePatternTest, ToStringAndSubVarCount) {
  const RuntimePattern p =
      MakePattern({Const("block_"), Sub(0), Const("F8"), Sub(1)});
  EXPECT_EQ(p.ToString(), "block_<*>F8<*>");
  EXPECT_EQ(p.SubVarCount(), 2u);
  EXPECT_EQ(RuntimePattern::SingleSubVar().ToString(), "<*>");
}

TEST(RuntimePatternTest, SerializationRoundTrip) {
  const RuntimePattern p =
      MakePattern({Const("/tmp/1FF8"), Sub(0), Const(".log")});
  ByteWriter w;
  p.WriteTo(w);
  ByteReader r(w.data());
  auto q = RuntimePattern::ReadFrom(r);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(*q, p);
}

// ---- tree extractor (real vectors) -----------------------------------------------

TEST(TreeExtractorTest, PaperFigure4Example) {
  // Values dominated by "block_<d>F8<hex>"; "Failed" is the 5% outlier.
  std::vector<std::string> values;
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    std::string v = "block_";
    v += std::to_string(rng.NextBelow(10));
    v += "F8";
    for (int k = 0; k < 1 + static_cast<int>(rng.NextBelow(4)); ++k) {
      v += "0123456789ABCDEF"[rng.NextBelow(16)];
    }
    values.push_back(v);
  }
  values.push_back("Failed");  // below the 5% slack
  const TreeExtractor extractor;
  const RuntimePattern p = extractor.Extract(values);
  // The pattern must reproduce all conforming values.
  size_t matched = 0;
  for (const std::string& v : values) {
    auto m = p.MatchValue(v);
    if (m.has_value()) {
      std::vector<std::string_view> views(m->begin(), m->end());
      EXPECT_EQ(p.Render(views), v);
      ++matched;
    }
  }
  EXPECT_GE(matched, values.size() - 1);
  // And it must have found real structure, splitting at least on "_".
  EXPECT_GT(p.elements().size(), 1u) << p.ToString();
}

TEST(TreeExtractorTest, FixedPrefixDiscovered) {
  std::vector<std::string> values;
  Rng rng(4);
  for (int i = 0; i < 300; ++i) {
    values.push_back("blk_" + std::to_string(1000000 + rng.NextBelow(9000000)));
  }
  const RuntimePattern p = TreeExtractor().Extract(values);
  // Every value matches and renders back.
  for (const std::string& v : values) {
    auto m = p.MatchValue(v);
    ASSERT_TRUE(m.has_value()) << p.ToString() << " vs " << v;
    std::vector<std::string_view> views(m->begin(), m->end());
    EXPECT_EQ(p.Render(views), v);
  }
  EXPECT_NE(p.ToString().find("_"), std::string::npos);
}

TEST(TreeExtractorTest, IpLikeValuesSplitOnDots) {
  std::vector<std::string> values;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    values.push_back("11.187." + std::to_string(rng.NextBelow(32)) + "." +
                     std::to_string(rng.NextBelow(256)));
  }
  const RuntimePattern p = TreeExtractor().Extract(values);
  EXPECT_GE(p.elements().size(), 3u) << p.ToString();
  for (const std::string& v : values) {
    EXPECT_TRUE(p.MatchValue(v).has_value()) << p.ToString() << " vs " << v;
  }
}

TEST(TreeExtractorTest, UnstructuredValuesYieldTrivialPattern) {
  // Random alphanumeric values with no common delimiter or substring.
  std::vector<std::string> values;
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    std::string v;
    for (int k = 0; k < 12; ++k) {
      v += static_cast<char>('A' + rng.NextBelow(26));
    }
    values.push_back(v);
  }
  const RuntimePattern p = TreeExtractor().Extract(values);
  // Either trivial or at least matching the bulk of the values.
  size_t matched = 0;
  for (const std::string& v : values) {
    matched += p.MatchValue(v).has_value() ? 1 : 0;
  }
  EXPECT_GE(matched, values.size() / 2) << p.ToString();
}

TEST(TreeExtractorTest, EmptyAndSingletonInputs) {
  EXPECT_EQ(TreeExtractor().Extract({}).ToString(), "<*>");
  const RuntimePattern p = TreeExtractor().Extract({"only_one"});
  // A single value may collapse to constants; it must at least match itself.
  EXPECT_TRUE(p.MatchValue("only_one").has_value());
}

TEST(TreeExtractorTest, NeverProducesAdjacentSubvars) {
  // Invariant required by the §5.1 matcher.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    std::vector<std::string> values;
    for (int i = 0; i < 150; ++i) {
      std::string v = "req-";
      v += std::to_string(rng.NextBelow(100));
      v += ":";
      v += std::to_string(rng.NextBelow(100000));
      values.push_back(v);
    }
    TreeExtractorOptions opts;
    opts.seed = seed;
    const RuntimePattern p = TreeExtractor(opts).Extract(values);
    const auto& elems = p.elements();
    for (size_t i = 1; i < elems.size(); ++i) {
      EXPECT_FALSE(elems[i - 1].is_subvar && elems[i].is_subvar)
          << p.ToString();
    }
  }
}

// ---- merge extractor (nominal vectors) --------------------------------------------

TEST(MergeExtractorTest, PaperFigure5Example) {
  const std::vector<std::string> values = {"ERR#404", "SUCC",    "ERR#501",
                                           "SUCC",    "ERR#404", "SUCC"};
  const NominalExtraction ex = MergeExtractor().Extract(values);
  // Unique values: ERR#404, SUCC, ERR#501 -> dictionary size 3, 2 patterns.
  ASSERT_EQ(ex.dictionary.size(), 3u);
  ASSERT_EQ(ex.patterns.size(), 2u);
  // Index reproduces the original vector.
  ASSERT_EQ(ex.index.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(ex.dictionary[ex.index[i]], values[i]);
  }
  // One pattern is the constant "SUCC", the other "ERR#<*>".
  std::set<std::string> rendered;
  for (const RuntimePattern& p : ex.patterns) {
    rendered.insert(p.ToString());
  }
  EXPECT_TRUE(rendered.count("SUCC") == 1) << *rendered.begin();
  EXPECT_TRUE(rendered.count("ERR#<*>") == 1);
  // Dictionary entries of the same pattern are contiguous.
  for (size_t i = 1; i < ex.pattern_of_dict.size(); ++i) {
    EXPECT_GE(ex.pattern_of_dict[i], ex.pattern_of_dict[i - 1]);
  }
}

TEST(MergeExtractorTest, ConstantSlotCollapses) {
  const std::vector<std::string> values = {"ERR#404", "ERR#501", "ERR#404"};
  const NominalExtraction ex = MergeExtractor().Extract(values);
  ASSERT_EQ(ex.patterns.size(), 1u);
  // "ERR" is constant across the form, so it folds into the constant part.
  EXPECT_EQ(ex.patterns[0].ToString(), "ERR#<*>");
}

TEST(MergeExtractorTest, PatternsMatchTheirSectionValues) {
  const std::vector<std::string> values = {
      "/usr/admin/a.log", "/usr/admin/b.log", "/usr/admin/a.log",
      "up",               "down",             "up",
  };
  const NominalExtraction ex = MergeExtractor().Extract(values);
  for (size_t d = 0; d < ex.dictionary.size(); ++d) {
    const RuntimePattern& p = ex.patterns[ex.pattern_of_dict[d]];
    auto m = p.MatchValue(ex.dictionary[d]);
    ASSERT_TRUE(m.has_value())
        << p.ToString() << " vs " << ex.dictionary[d];
    std::vector<std::string_view> views(m->begin(), m->end());
    EXPECT_EQ(p.Render(views), ex.dictionary[d]);
  }
}

TEST(MergeExtractorTest, EmptyValuesAndEmptyVector) {
  const NominalExtraction none = MergeExtractor().Extract({});
  EXPECT_TRUE(none.dictionary.empty());
  EXPECT_TRUE(none.index.empty());

  const NominalExtraction ex = MergeExtractor().Extract({"", "x", ""});
  ASSERT_EQ(ex.dictionary.size(), 2u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(ex.dictionary[ex.index[i]], (i == 1 ? "x" : ""));
  }
}

TEST(MergeExtractorTest, DifferentSkeletonsStaySeparate) {
  const std::vector<std::string> values = {"a-b", "a_b", "a-b", "a_b"};
  const NominalExtraction ex = MergeExtractor().Extract(values);
  EXPECT_EQ(ex.patterns.size(), 2u);
}

// Property: index/dictionary reconstruction is exact for arbitrary inputs.
class MergeExtractorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MergeExtractorPropertyTest, RoundTrips) {
  Rng rng(GetParam());
  std::vector<std::string> pool;
  for (int i = 0; i < 8; ++i) {
    std::string v;
    const int pieces = 1 + static_cast<int>(rng.NextBelow(3));
    for (int k = 0; k < pieces; ++k) {
      if (k > 0) {
        v += "-#/."[rng.NextBelow(4)];
      }
      const int len = static_cast<int>(rng.NextBelow(6));
      for (int c = 0; c < len; ++c) {
        v += static_cast<char>('a' + rng.NextBelow(26));
      }
    }
    pool.push_back(v);
  }
  std::vector<std::string> values;
  for (int i = 0; i < 100; ++i) {
    values.push_back(pool[rng.NextBelow(pool.size())]);
  }
  const NominalExtraction ex = MergeExtractor().Extract(values);
  ASSERT_EQ(ex.index.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(ex.dictionary[ex.index[i]], values[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeExtractorPropertyTest,
                         ::testing::Range<uint64_t>(1, 17));

// ---- general-purpose clustering extractor (the §4.1 slow baseline) -------------

TEST(ClusterExtractorTest, SeparatesDistinctFamilies) {
  std::vector<std::string> values;
  Rng rng(8);
  for (int i = 0; i < 40; ++i) {
    values.push_back("blk_" + std::to_string(100000 + rng.NextBelow(899999)));
    values.push_back("10.0." + std::to_string(rng.NextBelow(255)) + ".1");
  }
  // Within-family similarity is ~0.4 (shared "blk_" prefix over 10 chars);
  // cross-family is ~0.1.
  ClusterExtractorOptions opts;
  opts.merge_threshold = 0.35;
  const ClusterExtraction ex = ClusterExtractor(opts).Extract(values);
  ASSERT_EQ(ex.assignment.size(), values.size());
  // Block ids and IPs must land in different clusters.
  EXPECT_NE(ex.assignment[0], ex.assignment[1]);
  // All block ids share one pattern; all IPs share another.
  for (size_t i = 2; i < values.size(); i += 2) {
    EXPECT_EQ(ex.assignment[i], ex.assignment[0]) << values[i];
    EXPECT_EQ(ex.assignment[i + 1], ex.assignment[1]) << values[i + 1];
  }
}

TEST(ClusterExtractorTest, AssignmentIndexesValidPatterns) {
  const std::vector<std::string> values = {"a-1", "a-2", "zz", "a-3", "zz"};
  const ClusterExtraction ex = ClusterExtractor().Extract(values);
  ASSERT_EQ(ex.assignment.size(), values.size());
  for (uint32_t p : ex.assignment) {
    ASSERT_LT(p, ex.patterns.size());
  }
}

TEST(ClusterExtractorTest, EmptyAndCapped) {
  EXPECT_TRUE(ClusterExtractor().Extract({}).assignment.empty());
  ClusterExtractorOptions opts;
  opts.max_values = 4;
  std::vector<std::string> values;
  for (int i = 0; i < 20; ++i) {
    values.push_back("val" + std::to_string(i));
  }
  const ClusterExtraction ex = ClusterExtractor(opts).Extract(values);
  ASSERT_EQ(ex.assignment.size(), values.size());
  for (uint32_t p : ex.assignment) {
    ASSERT_LT(p, ex.patterns.size());
  }
}

}  // namespace
}  // namespace loggrep
