// Property suite for the codec layer.
//
// 1. Compress ∘ Decompress == id for every codec over seeded random and
//    adversarial byte strings (empty, 1-byte, all-zero, high-entropy,
//    structured text, and a > 64 MiB all-zero block whose declared length
//    legitimately sits near the expansion-ratio cap). Failures shrink: the
//    harness halves the failing input while the property still fails and
//    reports the minimal (seed, size) reproducer.
// 2. Decompression-bomb defense: a crafted blob declaring an absurd raw
//    size must be rejected *before* any allocation — a clean kCorruptData,
//    never a bad_alloc or a multi-GB reserve.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/codec/codec.h"
#include "src/common/bytes.h"
#include "src/common/rng.h"

namespace loggrep {
namespace {

bool RoundTrips(const Codec& codec, const std::string& raw) {
  const std::string blob = codec.Compress(raw);
  Result<std::string> back = codec.Decompress(blob);
  return back.ok() && *back == raw;
}

// Greedy chunk-removal shrinker: returns the smallest input it can find for
// which the property still fails. Deterministic given the input.
std::string ShrinkFailure(const Codec& codec, std::string failing) {
  for (size_t chunk = failing.size() / 2; chunk >= 1; chunk /= 2) {
    bool removed_any = true;
    while (removed_any && failing.size() > chunk) {
      removed_any = false;
      for (size_t begin = 0; begin + chunk <= failing.size(); begin += chunk) {
        std::string candidate = failing;
        candidate.erase(begin, chunk);
        if (!RoundTrips(codec, candidate)) {
          failing = std::move(candidate);
          removed_any = true;
          break;
        }
      }
    }
  }
  return failing;
}

void CheckRoundTrip(const Codec& codec, const std::string& raw,
                    const std::string& label) {
  if (RoundTrips(codec, raw)) {
    return;
  }
  const std::string minimal = ShrinkFailure(codec, raw);
  std::string hex;
  for (size_t i = 0; i < minimal.size() && i < 64; ++i) {
    char buf[4];
    std::snprintf(buf, sizeof(buf), "%02x", static_cast<uint8_t>(minimal[i]));
    hex += buf;
  }
  FAIL() << codec.name() << " roundtrip failed on " << label << " ("
         << raw.size() << " bytes); shrunk reproducer: " << minimal.size()
         << " bytes, first 64 hex: " << hex;
}

std::vector<const Codec*> AllCodecs() {
  return {&GetXzCodec(), &GetGzipCodec(), &GetZstdCodec()};
}

std::string RandomBytes(Rng& rng, size_t n) {
  std::string out(n, '\0');
  for (char& c : out) {
    c = static_cast<char>(rng.NextU64());
  }
  return out;
}

// Byte strings with repetition structure (exercises the LZ match path far
// more than uniform noise does).
std::string StructuredBytes(Rng& rng, size_t n) {
  static const char* words[] = {"GET /api/v2/chunk", "503", "error",
                                "10.0.3.", "retry", "\x00\x00\x01", " "};
  std::string out;
  while (out.size() < n) {
    out += words[rng.NextBelow(7)];
    if (rng.NextBool(0.2)) {
      out += static_cast<char>(rng.NextU64());
    }
  }
  out.resize(n);
  return out;
}

TEST(CodecPropertyTest, AdversarialEdgeCasesRoundTrip) {
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"empty", std::string()},
      {"one-byte", std::string(1, 'x')},
      {"one-zero-byte", std::string(1, '\0')},
      {"two-identical", std::string(2, 'a')},
      {"all-zero-4k", std::string(4096, '\0')},
      {"all-ff-4k", std::string(4096, '\xff')},
      {"alternating", [] {
         std::string s;
         for (int i = 0; i < 5000; ++i) s += (i % 2) ? 'a' : 'b';
         return s;
       }()},
      {"newlines-only", std::string(1000, '\n')},
  };
  for (const Codec* codec : AllCodecs()) {
    for (const auto& [label, raw] : cases) {
      CheckRoundTrip(*codec, raw, label);
    }
  }
}

TEST(CodecPropertyTest, SeededRandomStringsRoundTrip) {
  for (const Codec* codec : AllCodecs()) {
    Rng rng(0xA11CEull);
    for (int trial = 0; trial < 40; ++trial) {
      const size_t n = rng.NextBelow(20000);
      CheckRoundTrip(*codec, RandomBytes(rng, n),
                     "random seed=0xA11CE trial=" + std::to_string(trial));
    }
  }
}

TEST(CodecPropertyTest, SeededStructuredStringsRoundTrip) {
  for (const Codec* codec : AllCodecs()) {
    Rng rng(0xBEEFull);
    for (int trial = 0; trial < 40; ++trial) {
      const size_t n = 1 + rng.NextBelow(60000);
      CheckRoundTrip(*codec, StructuredBytes(rng, n),
                     "structured seed=0xBEEF trial=" + std::to_string(trial));
    }
  }
}

// The >64 MiB case from the issue: a legitimately huge declared length with
// extreme compressibility. The declared raw size (67 MB) divided by the
// compressed payload genuinely approaches the expansion-ratio cap, so this
// also proves the bomb heuristics admit real data.
TEST(CodecPropertyTest, Above64MiBAllZeroRoundTrips) {
  const std::string raw((64ull << 20) + 12345, '\0');
  for (const Codec* codec : AllCodecs()) {
    const std::string blob = codec->Compress(raw);
    ASSERT_LT(blob.size(), raw.size() / 100) << codec->name();
    Result<std::string> back = codec->Decompress(blob);
    ASSERT_TRUE(back.ok()) << codec->name() << ": "
                           << back.status().ToString();
    EXPECT_TRUE(*back == raw) << codec->name();
  }
}

// --- Decompression-bomb defense -------------------------------------------

std::string CraftBlob(uint8_t codec_id, uint64_t declared_raw,
                      std::string_view payload) {
  ByteWriter w;
  w.PutU8(codec_id);
  w.PutVarint(declared_raw);
  w.PutBytes(payload);
  return w.data();
}

TEST(CodecBombTest, DeclaredExabyteRejectedBeforeAllocation) {
  for (const Codec* codec : AllCodecs()) {
    const std::string bomb =
        CraftBlob(codec->id(), 1ull << 60, "tiny payload");
    Result<std::string> out = codec->Decompress(bomb);
    ASSERT_FALSE(out.ok()) << codec->name();
    EXPECT_EQ(out.status().code(), StatusCode::kCorruptData);
  }
}

TEST(CodecBombTest, DeclaredJustOverAbsoluteCapRejected) {
  for (const Codec* codec : AllCodecs()) {
    const std::string bomb = CraftBlob(
        codec->id(), kMaxDecompressedBytes + 1, std::string(1 << 16, 'x'));
    EXPECT_FALSE(codec->Decompress(bomb).ok()) << codec->name();
  }
}

TEST(CodecBombTest, TinyPayloadHugeRatioRejected) {
  // 16 payload bytes declaring 1 GiB-1: ratio ~6.7e7 x, far beyond the
  // 131072x cap (and beyond the 1 MiB floor), must be rejected even though
  // the absolute cap alone would admit it.
  for (const Codec* codec : AllCodecs()) {
    const std::string bomb = CraftBlob(
        codec->id(), kMaxDecompressedBytes - 1, "0123456789abcdef");
    Result<std::string> out = codec->Decompress(bomb);
    ASSERT_FALSE(out.ok()) << codec->name();
    EXPECT_EQ(out.status().code(), StatusCode::kCorruptData);
  }
}

TEST(CodecBombTest, SmallDeclaredSizesStillWithinFloorAreAttempted) {
  // Under the 1 MiB floor the ratio check must NOT reject; truncated
  // payloads then fail (or succeed) on their own merits, cleanly.
  for (const Codec* codec : AllCodecs()) {
    const std::string real = codec->Compress(std::string(1 << 19, '\0'));
    EXPECT_TRUE(codec->Decompress(real).ok()) << codec->name();
    // Same declared size, garbage payload: clean failure, no crash.
    const std::string garbage = CraftBlob(codec->id(), 1 << 19, "garbage");
    auto out = codec->Decompress(garbage);
    (void)out;
  }
}

}  // namespace
}  // namespace loggrep
