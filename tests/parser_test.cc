#include <gtest/gtest.h>

#include <string>

#include "src/common/rng.h"
#include "src/parser/block_parser.h"
#include "src/parser/static_pattern.h"
#include "src/parser/template_miner.h"
#include "src/parser/tokenizer.h"

namespace loggrep {
namespace {

// ---- tokenizer -------------------------------------------------------------

TEST(TokenizerTest, BasicWhitespaceSplit) {
  const TokenizedLine line = TokenizeLine("write to file");
  ASSERT_EQ(line.tokens.size(), 3u);
  EXPECT_EQ(line.tokens[0], "write");
  EXPECT_EQ(line.tokens[1], "to");
  EXPECT_EQ(line.tokens[2], "file");
  ASSERT_EQ(line.seps.size(), 4u);
  EXPECT_EQ(line.seps[0], "");
  EXPECT_EQ(line.seps[1], " ");
  EXPECT_EQ(line.seps[3], "");
}

TEST(TokenizerTest, SeparatorsPreservedVerbatim) {
  const TokenizedLine line = TokenizeLine("  a\t\tb, [c]");
  ASSERT_EQ(line.tokens.size(), 3u);
  EXPECT_EQ(line.seps[0], "  ");
  EXPECT_EQ(line.seps[1], "\t\t");
  EXPECT_EQ(line.seps[2], ", [");
  EXPECT_EQ(line.seps[3], "]");
}

TEST(TokenizerTest, KeyValueSplitting) {
  const TokenizedLine line = TokenizeLine("time=1622009998 state:SUC#1604");
  ASSERT_EQ(line.tokens.size(), 4u);
  EXPECT_EQ(line.tokens[0], "time=");
  EXPECT_EQ(line.tokens[1], "1622009998");
  EXPECT_EQ(line.tokens[2], "state:");
  EXPECT_EQ(line.tokens[3], "SUC#1604");
  // The split inserts an empty separator.
  EXPECT_EQ(line.seps[1], "");
}

TEST(TokenizerTest, ColonAtTokenStartOrEndDoesNotSplit) {
  const TokenizedLine a = TokenizeLine(":x");
  ASSERT_EQ(a.tokens.size(), 1u);
  EXPECT_EQ(a.tokens[0], ":x");
  const TokenizedLine b = TokenizeLine("state:");
  ASSERT_EQ(b.tokens.size(), 1u);
  EXPECT_EQ(b.tokens[0], "state:");
}

TEST(TokenizerTest, MultiKeyValueChain) {
  const TokenizedLine line = TokenizeLine("a=b=c");
  ASSERT_EQ(line.tokens.size(), 3u);
  EXPECT_EQ(line.tokens[0], "a=");
  EXPECT_EQ(line.tokens[1], "b=");
  EXPECT_EQ(line.tokens[2], "c");
}

TEST(TokenizerTest, ReassemblyIsLossless) {
  const std::string original = " [2021-01-05] x=1, y=(2)\tpath:/a/b ";
  const TokenizedLine line = TokenizeLine(original);
  std::string rebuilt;
  for (size_t i = 0; i < line.tokens.size(); ++i) {
    rebuilt += line.seps[i];
    rebuilt += line.tokens[i];
  }
  rebuilt += line.seps.back();
  EXPECT_EQ(rebuilt, original);
}

TEST(TokenizerTest, EmptyLine) {
  const TokenizedLine line = TokenizeLine("");
  EXPECT_TRUE(line.tokens.empty());
  ASSERT_EQ(line.seps.size(), 1u);
  EXPECT_EQ(line.seps[0], "");
}

TEST(TokenizerTest, ReassemblyFuzz) {
  // Property: seps and tokens always interleave back to the original line,
  // for arbitrary byte content (excluding '\n', which delimits lines).
  Rng rng(4242);
  for (int trial = 0; trial < 300; ++trial) {
    std::string line;
    const size_t len = rng.NextBelow(60);
    for (size_t i = 0; i < len; ++i) {
      char c;
      do {
        c = static_cast<char>(32 + rng.NextBelow(95));  // printable ASCII
      } while (c == '\n');
      line.push_back(c);
    }
    const TokenizedLine t = TokenizeLine(line);
    ASSERT_EQ(t.seps.size(), t.tokens.size() + 1) << line;
    std::string rebuilt;
    for (size_t i = 0; i < t.tokens.size(); ++i) {
      rebuilt += t.seps[i];
      rebuilt += t.tokens[i];
    }
    rebuilt += t.seps.back();
    ASSERT_EQ(rebuilt, line);
  }
}

TEST(TokenizerTest, KeywordsDropSeparators) {
  const auto kws = TokenizeKeywords("error AND dst:11.8.3");
  ASSERT_EQ(kws.size(), 4u);
  EXPECT_EQ(kws[0], "error");
  EXPECT_EQ(kws[1], "AND");
  EXPECT_EQ(kws[2], "dst:");
  EXPECT_EQ(kws[3], "11.8.3");
}

// ---- static pattern ----------------------------------------------------------

TEST(StaticPatternTest, FromLineMarksDigitTokensVariable) {
  const StaticPattern p = StaticPattern::FromLine(TokenizeLine("read blk_42 ok"));
  ASSERT_EQ(p.tokens().size(), 3u);
  EXPECT_FALSE(p.tokens()[0].is_var);
  EXPECT_TRUE(p.tokens()[1].is_var);
  EXPECT_FALSE(p.tokens()[2].is_var);
  EXPECT_EQ(p.VarCount(), 1);
}

TEST(StaticPatternTest, MergeTurnsMismatchesIntoVars) {
  StaticPattern p = StaticPattern::FromLine(TokenizeLine("state: SUC read"));
  p.MergeLine(TokenizeLine("state: ERR read"));
  EXPECT_TRUE(p.tokens()[1].is_var);
  EXPECT_FALSE(p.tokens()[0].is_var);
  EXPECT_FALSE(p.tokens()[2].is_var);
}

TEST(StaticPatternTest, SimilarityRejectsShapeMismatch) {
  const StaticPattern p = StaticPattern::FromLine(TokenizeLine("a b c"));
  EXPECT_LT(p.Similarity(TokenizeLine("a b")), 0);       // token count
  EXPECT_LT(p.Similarity(TokenizeLine("a  b c")), 0);    // separators
  EXPECT_DOUBLE_EQ(p.Similarity(TokenizeLine("a b c")), 1.0);
  EXPECT_NEAR(p.Similarity(TokenizeLine("a x c")), 2.0 / 3, 1e-9);
}

TEST(StaticPatternTest, MatchExtractsVariablesInOrder) {
  StaticPattern p = StaticPattern::FromLine(TokenizeLine("T134 bk.FF.13 read"));
  // "T134" and "bk.FF.13" contain digits -> variables (paper Fig. 1 group 1).
  std::vector<std::string_view> vars;
  ASSERT_TRUE(p.Match(TokenizeLine("T179 bk.C5.15 read"), &vars));
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_EQ(vars[0], "T179");
  EXPECT_EQ(vars[1], "bk.C5.15");
  EXPECT_FALSE(p.Match(TokenizeLine("T179 bk.C5.15 write"), nullptr));
}

TEST(StaticPatternTest, RenderInvertsMatch) {
  StaticPattern p = StaticPattern::FromLine(TokenizeLine("T134 state: SUC#1604"));
  p.MergeLine(TokenizeLine("T181 state: ERR#1623"));
  const std::string line = "T169 state: SUC#1604";
  std::vector<std::string_view> vars;
  ASSERT_TRUE(p.Match(TokenizeLine(line), &vars));
  EXPECT_EQ(p.Render(vars), line);
}

TEST(StaticPatternTest, ToStringShowsSlots) {
  const StaticPattern p = StaticPattern::FromLine(TokenizeLine("read blk_42 ok"));
  EXPECT_EQ(p.ToString(), "read <*> ok");
}

TEST(StaticPatternTest, SerializationRoundTrip) {
  StaticPattern p = StaticPattern::FromLine(TokenizeLine("[x]  y=7 (z)"));
  ByteWriter w;
  p.WriteTo(w);
  ByteReader r(w.data());
  auto q = StaticPattern::ReadFrom(r);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->ToString(), p.ToString());
  EXPECT_EQ(q->seps(), p.seps());
  ASSERT_EQ(q->tokens().size(), p.tokens().size());
  for (size_t i = 0; i < p.tokens().size(); ++i) {
    EXPECT_EQ(q->tokens()[i].is_var, p.tokens()[i].is_var);
    EXPECT_EQ(q->tokens()[i].text, p.tokens()[i].text);
  }
}

TEST(StaticPatternTest, TruncatedSerializationFails) {
  StaticPattern p = StaticPattern::FromLine(TokenizeLine("a b c"));
  ByteWriter w;
  p.WriteTo(w);
  const std::string bytes = w.data();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    ByteReader r(std::string_view(bytes).substr(0, cut));
    EXPECT_FALSE(StaticPattern::ReadFrom(r).ok()) << cut;
  }
}

// ---- template miner -----------------------------------------------------------

TEST(TemplateMinerTest, PaperFigure1Example) {
  // Four entries, two static patterns: "%s %s read" and "%s state: %s".
  std::vector<std::string_view> lines = {
      "T134 bk.FF.13 read",
      "T169 state: SUC#1604",
      "T179 bk.C5.15 read",
      "T181 state: ERR#1623",
  };
  const TemplateMiner miner;
  const auto templates = miner.Mine(lines);
  ASSERT_EQ(templates.size(), 2u);
  std::vector<std::string> rendered = {templates[0].ToString(),
                                       templates[1].ToString()};
  std::sort(rendered.begin(), rendered.end());
  EXPECT_EQ(rendered[0], "<*> <*> read");
  EXPECT_EQ(rendered[1], "<*> state: <*>");
}

TEST(TemplateMinerTest, DistinctConstantsStayDistinct) {
  std::vector<std::string_view> lines;
  for (int i = 0; i < 50; ++i) {
    lines.push_back("open file 7");
    lines.push_back("close conn 9");
  }
  const auto templates = TemplateMiner().Mine(lines);
  EXPECT_EQ(templates.size(), 2u);
}

TEST(TemplateMinerTest, SmallBlocksAreFullySampled) {
  std::vector<std::string_view> lines = {"alpha 1", "alpha 2", "beta x 3"};
  const auto templates = TemplateMiner().Mine(lines);
  // All shapes must be present despite the 5% sample rate.
  EXPECT_EQ(templates.size(), 2u);
}

TEST(TemplateMinerTest, SplitLinesHandlesMissingTrailingNewline) {
  const auto a = SplitLines("x\ny\n");
  ASSERT_EQ(a.size(), 2u);
  const auto b = SplitLines("x\ny");
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[1], "y");
  EXPECT_TRUE(SplitLines("").empty());
}

// ---- block parser ---------------------------------------------------------------

TEST(BlockParserTest, GroupsAndVariableVectors) {
  const std::string text =
      "T134 bk.FF.13 read\n"
      "T169 state: SUC#1604\n"
      "T179 bk.C5.15 read\n"
      "T181 state: ERR#1623\n";
  const ParsedBlock block = BlockParser().Parse(text);
  EXPECT_EQ(block.total_lines, 4u);
  ASSERT_EQ(block.groups.size(), 2u);
  EXPECT_TRUE(block.outlier_lines.empty());

  // Find the "read" group.
  const ParsedGroup* read_group = nullptr;
  for (const ParsedGroup& g : block.groups) {
    if (block.templates[g.template_id].ToString().ends_with("read")) {
      read_group = &g;
    }
  }
  ASSERT_NE(read_group, nullptr);
  EXPECT_EQ(read_group->line_numbers, (std::vector<uint32_t>{0, 2}));
  ASSERT_EQ(read_group->var_vectors.size(), 2u);
  EXPECT_EQ(read_group->var_vectors[0],
            (std::vector<std::string>{"T134", "T179"}));
  EXPECT_EQ(read_group->var_vectors[1],
            (std::vector<std::string>{"bk.FF.13", "bk.C5.15"}));
}

TEST(BlockParserTest, UnmatchedLinesBecomeOutliers) {
  // With sampling of a tiny block everything is mined, so force an outlier by
  // a line whose shape matches nothing: parse uses mined templates only.
  std::string text;
  for (int i = 0; i < 300; ++i) {
    text += "worker " + std::to_string(i) + " done\n";
  }
  // One exotic line; with 5% sampling of 301 lines it is very unlikely to be
  // sampled (deterministic seed makes this test stable).
  text += "###totally unique unparsed line with !!! many ??? tokens ###\n";
  const ParsedBlock block = BlockParser().Parse(text);
  uint32_t parsed_rows = 0;
  for (const ParsedGroup& g : block.groups) {
    parsed_rows += static_cast<uint32_t>(g.line_numbers.size());
  }
  EXPECT_EQ(parsed_rows + block.outlier_lines.size(), 301u);
}

TEST(BlockParserTest, EmptyInput) {
  const ParsedBlock block = BlockParser().Parse("");
  EXPECT_EQ(block.total_lines, 0u);
  EXPECT_TRUE(block.groups.empty());
  EXPECT_TRUE(block.outlier_lines.empty());
}

TEST(BlockParserTest, EmptyLinesHandled) {
  const ParsedBlock block = BlockParser().Parse("\n\nx 1\n\n");
  EXPECT_EQ(block.total_lines, 4u);
  uint32_t total = static_cast<uint32_t>(block.outlier_lines.size());
  for (const ParsedGroup& g : block.groups) {
    total += static_cast<uint32_t>(g.line_numbers.size());
  }
  EXPECT_EQ(total, 4u);
}

}  // namespace
}  // namespace loggrep
