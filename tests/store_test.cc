#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "src/common/bloom.h"
#include "src/core/engine.h"
#include "src/query/query_parser.h"
#include "src/store/log_archive.h"
#include "src/workload/datasets.h"
#include "src/workload/loggen.h"

namespace loggrep {
namespace {

// ---- bloom filter ------------------------------------------------------------

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter bloom(1000, 10);
  std::vector<std::string> items;
  for (int i = 0; i < 1000; ++i) {
    items.push_back("item-" + std::to_string(i * 7919));
    bloom.Add(items.back());
  }
  for (const std::string& item : items) {
    EXPECT_TRUE(bloom.MayContain(item)) << item;
  }
}

TEST(BloomFilterTest, LowFalsePositiveRate) {
  BloomFilter bloom(2000, 10);
  for (int i = 0; i < 2000; ++i) {
    bloom.Add("present-" + std::to_string(i));
  }
  int false_positives = 0;
  for (int i = 0; i < 10000; ++i) {
    if (bloom.MayContain("absent-" + std::to_string(i))) {
      ++false_positives;
    }
  }
  // 10 bits/item gives ~1% theoretical; allow generous slack.
  EXPECT_LT(false_positives, 500);
  EXPECT_LT(bloom.FillRatio(), 0.7);
}

TEST(BloomFilterTest, SerializationRoundTrip) {
  BloomFilter bloom(100, 8);
  bloom.Add("alpha");
  bloom.Add("beta");
  ByteWriter w;
  bloom.WriteTo(w);
  ByteReader r(w.data());
  auto restored = BloomFilter::ReadFrom(r);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->MayContain("alpha"));
  EXPECT_TRUE(restored->MayContain("beta"));
  EXPECT_FALSE(restored->MayContain("gamma"));
}

TEST(BloomFilterTest, EmptyFilterFiltersNothing) {
  const BloomFilter bloom;
  EXPECT_TRUE(bloom.MayContain("anything"));
}

// ---- required keywords ----------------------------------------------------------

std::vector<std::string> Required(std::string_view command) {
  auto expr = ParseQuery(command);
  EXPECT_TRUE(expr.ok()) << command;
  return RequiredKeywords(**expr);
}

TEST(RequiredKeywordsTest, AndUnionsOrIntersectsNotDrops) {
  EXPECT_EQ(Required("alpha and beta"),
            (std::vector<std::string>{"alpha", "beta"}));
  EXPECT_EQ(Required("alpha or beta"), (std::vector<std::string>{}));
  EXPECT_EQ(Required("alpha gamma or beta gamma"),
            (std::vector<std::string>{"gamma"}));
  EXPECT_EQ(Required("alpha not beta"), (std::vector<std::string>{"alpha"}));
  EXPECT_EQ(Required("not beta"), (std::vector<std::string>{}));
}

// ---- archive ----------------------------------------------------------------------

class LogArchiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("loggrep_archive_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(LogArchiveTest, CreateAppendQuery) {
  auto archive = LogArchive::Create(dir_);
  ASSERT_TRUE(archive.ok()) << archive.status().ToString();
  ASSERT_TRUE(archive->AppendBlock("first block alpha 1\nsecond line beta 2\n").ok());
  ASSERT_TRUE(archive->AppendBlock("third line alpha 3\nfourth line gamma 4\n").ok());
  EXPECT_EQ(archive->blocks().size(), 2u);
  EXPECT_EQ(archive->total_lines(), 4u);

  auto result = archive->Query("alpha");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->hits.size(), 2u);
  EXPECT_EQ(result->hits[0].first, 0u);  // global line numbers
  EXPECT_EQ(result->hits[0].second, "first block alpha 1");
  EXPECT_EQ(result->hits[1].first, 2u);
  EXPECT_EQ(result->hits[1].second, "third line alpha 3");
}

TEST_F(LogArchiveTest, ReopenPreservesEverything) {
  {
    auto archive = LogArchive::Create(dir_);
    ASSERT_TRUE(archive.ok());
    ASSERT_TRUE(archive->AppendBlock("persistent entry omega 9\n").ok());
  }
  auto reopened = LogArchive::Open(dir_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->blocks().size(), 1u);
  auto result = reopened->Query("omega");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->hits.size(), 1u);
  EXPECT_EQ(result->hits[0].second, "persistent entry omega 9");
}

TEST_F(LogArchiveTest, BlockPruningIsSoundAndEffective) {
  auto archive = LogArchive::Create(dir_);
  ASSERT_TRUE(archive.ok());
  // Ten blocks; the needle appears only in block 7.
  for (int b = 0; b < 10; ++b) {
    std::string text;
    for (int i = 0; i < 50; ++i) {
      text += "svc request " + std::to_string(b * 100 + i) + " handled ok\n";
    }
    if (b == 7) {
      text += "svc request 999 FAILED uniqueneedletoken here\n";
    }
    ASSERT_TRUE(archive->AppendBlock(text).ok());
  }
  auto result = archive->Query("uniqueneedletoken");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->hits.size(), 1u);
  EXPECT_EQ(result->hits[0].second,
            "svc request 999 FAILED uniqueneedletoken here");
  // Bloom pruning should have skipped (almost) all other blocks.
  EXPECT_GE(result->blocks_pruned, 8u);
  EXPECT_LE(result->blocks_queried, 2u);
}

TEST_F(LogArchiveTest, PruningNeverDropsMatches) {
  auto archive = LogArchive::Create(dir_);
  ASSERT_TRUE(archive.ok());
  const DatasetSpec* spec = FindDataset("Hdfs");
  std::vector<std::string> texts;
  DatasetSpec varied = *spec;
  for (int b = 0; b < 4; ++b) {
    varied.seed = spec->seed + b;
    texts.push_back(LogGenerator(varied).Generate(8 * 1024));
    ASSERT_TRUE(archive->AppendBlock(texts.back()).ok());
  }
  // Compare against querying every block through a fresh engine.
  for (const std::string& query :
       {std::string("error and blk_884"), std::string("Received block"),
        std::string("zzzNOSUCH")}) {
    auto got = archive->Query(query);
    ASSERT_TRUE(got.ok());
    size_t expected = 0;
    LogGrepEngine engine;
    for (const std::string& text : texts) {
      auto r = engine.Query(engine.CompressBlock(text), query);
      ASSERT_TRUE(r.ok());
      expected += r->hits.size();
    }
    EXPECT_EQ(got->hits.size(), expected) << query;
  }
}

TEST_F(LogArchiveTest, WildcardAndShortKeywordsBypassBloom) {
  auto archive = LogArchive::Create(dir_);
  ASSERT_TRUE(archive.ok());
  ASSERT_TRUE(archive->AppendBlock("status az9 fine 1\n").ok());
  // 3-char keyword: below shingle length, must still match via stamp path.
  auto short_kw = archive->Query("az9");
  ASSERT_TRUE(short_kw.ok());
  EXPECT_EQ(short_kw->hits.size(), 1u);
  // Wildcard keyword.
  auto wild = archive->Query("a?9");
  ASSERT_TRUE(wild.ok());
  EXPECT_EQ(wild->hits.size(), 1u);
}

TEST_F(LogArchiveTest, ParallelQueryMatchesSerial) {
  auto archive = LogArchive::Create(dir_);
  ASSERT_TRUE(archive.ok());
  DatasetSpec spec = *FindDataset("Ssh");
  for (int b = 0; b < 6; ++b) {
    spec.seed += 17;
    ASSERT_TRUE(archive->AppendBlock(LogGenerator(spec).Generate(16 * 1024)).ok());
  }
  for (const std::string& query :
       {std::string("Failed password and 183.62.140.253"),
        std::string("sshd not preauth"), std::string("zzzNOSUCH")}) {
    auto serial = archive->Query(query);
    auto parallel = archive->ParallelQuery(query, 4);
    ASSERT_TRUE(serial.ok()) << query;
    ASSERT_TRUE(parallel.ok()) << query;
    ASSERT_EQ(serial->hits.size(), parallel->hits.size()) << query;
    for (size_t i = 0; i < serial->hits.size(); ++i) {
      EXPECT_EQ(serial->hits[i].first, parallel->hits[i].first);
      EXPECT_EQ(serial->hits[i].second, parallel->hits[i].second);
    }
    EXPECT_EQ(serial->blocks_pruned, parallel->blocks_pruned);
  }
}

TEST_F(LogArchiveTest, CreateTwiceFails) {
  auto first = LogArchive::Create(dir_);
  ASSERT_TRUE(first.ok());
  auto second = LogArchive::Create(dir_);
  EXPECT_FALSE(second.ok());
}

TEST_F(LogArchiveTest, OpenMissingFails) {
  auto missing = LogArchive::Open(dir_ + "_nope");
  EXPECT_FALSE(missing.ok());
}

TEST_F(LogArchiveTest, EmptyArchiveQueries) {
  auto archive = LogArchive::Create(dir_);
  ASSERT_TRUE(archive.ok());
  auto result = archive->Query("anything");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->hits.empty());
  EXPECT_EQ(result->blocks_queried, 0u);
}

// ---- crash safety / recovery ------------------------------------------------

TEST_F(LogArchiveTest, OpenDropsTrailingEntriesWithMissingBlocks) {
  {
    auto archive = LogArchive::Create(dir_);
    ASSERT_TRUE(archive.ok());
    for (int b = 0; b < 3; ++b) {
      ASSERT_TRUE(
          archive->AppendBlock("block " + std::to_string(b) + " data\n").ok());
    }
  }
  // Simulate a lost tail: the last block file vanishes, manifest keeps it.
  ASSERT_TRUE(std::filesystem::remove(dir_ + "/block-2.lgc"));
  auto recovered = LogArchive::Open(dir_);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->blocks().size(), 2u);
  auto result = recovered->Query("data");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->hits.size(), 2u);  // no late failure at query time
  // The truncation was persisted: a second Open agrees without repair.
  auto again = LogArchive::Open(dir_);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->blocks().size(), 2u);
}

TEST_F(LogArchiveTest, OpenRejectsInteriorHole) {
  {
    auto archive = LogArchive::Create(dir_);
    ASSERT_TRUE(archive.ok());
    for (int b = 0; b < 3; ++b) {
      ASSERT_TRUE(
          archive->AppendBlock("block " + std::to_string(b) + " data\n").ok());
    }
  }
  ASSERT_TRUE(std::filesystem::remove(dir_ + "/block-1.lgc"));
  auto opened = LogArchive::Open(dir_);
  EXPECT_FALSE(opened.ok());  // a hole is corruption, not a recoverable tail
}

TEST_F(LogArchiveTest, OpenSweepsTempAndOrphanFiles) {
  {
    auto archive = LogArchive::Create(dir_);
    ASSERT_TRUE(archive.ok());
    ASSERT_TRUE(archive->AppendBlock("kept entry sigma 1\n").ok());
  }
  // Droppings of a crashed commit: stray temps + an unreferenced block file.
  for (const char* name :
       {"archive.manifest.tmp", "block-5.lgc.tmp", "block-7.lgc"}) {
    std::ofstream(dir_ + "/" + name) << "garbage";
  }
  auto recovered = LogArchive::Open(dir_);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->blocks().size(), 1u);
  EXPECT_FALSE(std::filesystem::exists(dir_ + "/archive.manifest.tmp"));
  EXPECT_FALSE(std::filesystem::exists(dir_ + "/block-5.lgc.tmp"));
  EXPECT_FALSE(std::filesystem::exists(dir_ + "/block-7.lgc"));
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/block-0.lgc"));
  auto result = recovered->Query("sigma");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->hits.size(), 1u);
}

TEST_F(LogArchiveTest, CommitKillPointsLeaveOldStateVisible) {
  for (const CommitKillPoint point : {CommitKillPoint::kBlockTmpWritten,
                                      CommitKillPoint::kBlockRenamed,
                                      CommitKillPoint::kManifestTmpWritten}) {
    const std::string dir = dir_ + "_" + CommitKillPointName(point);
    std::filesystem::remove_all(dir);
    auto archive = LogArchive::Create(dir);
    ASSERT_TRUE(archive.ok());
    ASSERT_TRUE(archive->AppendBlock("survivor entry tau 1\n").ok());

    // A commit that dies at `point` must not disturb the committed state.
    const std::string text = "victim entry upsilon 2\n";
    BlockInfo info = BuildBlockSummary(text, 10);
    LogGrepEngine engine;
    Status s = archive->CommitCompressedBlock(
        engine.CompressBlock(text), std::move(info),
        [point](CommitKillPoint at) { return at == point; });
    EXPECT_FALSE(s.ok()) << CommitKillPointName(point);
    EXPECT_EQ(archive->blocks().size(), 1u);  // in-memory state rolled back

    auto reopened = LogArchive::Open(dir);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_EQ(reopened->blocks().size(), 1u) << CommitKillPointName(point);
    auto result = reopened->Query("tau");
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->hits.size(), 1u);
    // No commit droppings survive recovery.
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      const std::string name = entry.path().filename().string();
      EXPECT_TRUE(name == "archive.manifest" || name == "block-0.lgc")
          << CommitKillPointName(point) << " left " << name;
    }
    std::filesystem::remove_all(dir);
  }
}

TEST_F(LogArchiveTest, ManifestWriteIsAtomicOnSerialAppend) {
  auto archive = LogArchive::Create(dir_);
  ASSERT_TRUE(archive.ok());
  ASSERT_TRUE(archive->AppendBlock("atomic entry phi 1\n").ok());
  // tmp+rename protocol: after a successful append no temp files remain.
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    EXPECT_EQ(name.find(".tmp"), std::string::npos) << name;
  }
}

// ---- 64-bit global line numbers (regression) -------------------------------

TEST_F(LogArchiveTest, GlobalLineNumbersPastFourBillionDoNotWrap) {
  // Regression: hits used to be narrowed through a uint32_t, so a block
  // starting past ~4 billion lines reported wrapped line numbers. A backfill
  // commit with a pre-set first_line simulates an archive that deep without
  // ingesting four billion entries.
  auto archive = LogArchive::Create(dir_);
  ASSERT_TRUE(archive.ok());
  ASSERT_TRUE(archive->AppendBlock("early entry kappa 0\n").ok());

  constexpr uint64_t kFarStart = (5ull << 32) + 123;  // > UINT32_MAX
  const std::string text = "deep entry kappa 1\nsecond deep entry lambda 2\n";
  BlockInfo info = BuildBlockSummary(text, 10);
  info.first_line = kFarStart;
  LogGrepEngine engine;
  ASSERT_TRUE(
      archive->CommitCompressedBlock(engine.CompressBlock(text), std::move(info))
          .ok());
  ASSERT_EQ(archive->blocks().size(), 2u);
  EXPECT_EQ(archive->blocks()[1].first_line, kFarStart);

  for (const bool parallel : {false, true}) {
    auto result = parallel ? archive->ParallelQuery("kappa", 2)
                           : archive->Query("kappa");
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->hits.size(), 2u);
    EXPECT_EQ(result->hits[0].first, 0u);
    EXPECT_EQ(result->hits[1].first, kFarStart);
    EXPECT_EQ(result->hits[1].second, "deep entry kappa 1");
  }

  // The next contiguous commit continues after the sparse block.
  ASSERT_TRUE(archive->AppendBlock("after the gap lambda 3\n").ok());
  EXPECT_EQ(archive->blocks()[2].first_line, kFarStart + 2);
  auto after = archive->Query("lambda");
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->hits.size(), 2u);
  EXPECT_EQ(after->hits[1].first, kFarStart + 2);

  // And everything survives a manifest round trip.
  auto reopened = LogArchive::Open(dir_);
  ASSERT_TRUE(reopened.ok());
  auto again = reopened->Query("kappa");
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->hits.size(), 2u);
  EXPECT_EQ(again->hits[1].first, kFarStart);
}

TEST_F(LogArchiveTest, PresetFirstLineBelowEndIsClampedContiguous) {
  auto archive = LogArchive::Create(dir_);
  ASSERT_TRUE(archive.ok());
  ASSERT_TRUE(archive->AppendBlock("one alpha\ntwo alpha\nthree alpha\n").ok());
  const std::string text = "four beta\n";
  BlockInfo info = BuildBlockSummary(text, 10);
  info.first_line = 1;  // would overlap the first block; must be clamped
  LogGrepEngine engine;
  ASSERT_TRUE(
      archive->CommitCompressedBlock(engine.CompressBlock(text), std::move(info))
          .ok());
  EXPECT_EQ(archive->blocks()[1].first_line, 3u);
}

// ---- shared box cache across archive queries --------------------------------

TEST_F(LogArchiveTest, WarmQueriesSkipBlockFilesEntirely) {
  auto archive = LogArchive::Create(dir_);
  ASSERT_TRUE(archive.ok());
  ASSERT_TRUE(archive->AppendBlock("warm cache entry rho 1\nother sigma 2\n").ok());
  ASSERT_TRUE(archive->AppendBlock("warm cache entry rho 3\nother sigma 4\n").ok());

  auto cold = archive->Query("rho");
  ASSERT_TRUE(cold.ok());
  ASSERT_EQ(cold->hits.size(), 2u);
  EXPECT_GT(cold->locator.cache_misses, 0u);

  // Remove every block file: only the cache can serve the bytes now. A new
  // command (different command-cache key) must still succeed, warm.
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (entry.path().extension() == ".lgc") {
      std::filesystem::remove(entry.path());
    }
  }
  auto warm = archive->Query("sigma");
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  ASSERT_EQ(warm->hits.size(), 2u);
  EXPECT_GT(warm->locator.cache_hits, 0u);
  EXPECT_GT(warm->locator.bytes_saved, 0u);
  // ParallelQuery workers share the same cache and also never touch disk.
  auto parallel = archive->ParallelQuery("sigma", 2);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  EXPECT_EQ(parallel->hits.size(), 2u);
}

TEST_F(LogArchiveTest, CacheDisabledArchiveStillAnswersCorrectly) {
  ArchiveOptions options;
  options.box_cache_budget_bytes = 0;  // no shared cache at all
  auto archive = LogArchive::Create(dir_, options);
  ASSERT_TRUE(archive.ok());
  EXPECT_EQ(archive->box_cache(), nullptr);
  ASSERT_TRUE(archive->AppendBlock("plain entry chi 1\n").ok());
  for (int round = 0; round < 2; ++round) {
    auto result = archive->Query("chi");
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->hits.size(), 1u);
    EXPECT_EQ(result->hits[0].second, "plain entry chi 1");
  }
  auto parallel = archive->ParallelQuery("chi", 2);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(parallel->hits.size(), 1u);
}

TEST_F(LogArchiveTest, ParallelAndSerialAgreeOnDeterministicStats) {
  // Two identical archives, both cold: the parallel run must report exactly
  // the same hits AND the same deterministic locator counters as the serial
  // one (nanosecond timings are excluded — they are wall-clock).
  DatasetSpec spec = *FindDataset("Ssh");
  auto build = [&](const std::string& dir) {
    auto archive = LogArchive::Create(dir);
    EXPECT_TRUE(archive.ok());
    DatasetSpec s = spec;
    for (int b = 0; b < 5; ++b) {
      s.seed = spec.seed + 31 * b;
      EXPECT_TRUE(archive->AppendBlock(LogGenerator(s).Generate(16 * 1024)).ok());
    }
    return archive;
  };
  auto serial_archive = build(dir_ + "_serial");
  auto parallel_archive = build(dir_ + "_parallel");
  for (const std::string& query :
       {std::string("Failed password"), std::string("sshd and Accepted"),
        std::string("session or preauth")}) {
    auto serial = serial_archive->Query(query);
    auto parallel = parallel_archive->ParallelQuery(query, 4);
    ASSERT_TRUE(serial.ok()) << query;
    ASSERT_TRUE(parallel.ok()) << query;
    ASSERT_EQ(serial->hits, parallel->hits) << query;
    EXPECT_EQ(serial->blocks_pruned, parallel->blocks_pruned) << query;
    EXPECT_EQ(serial->blocks_queried, parallel->blocks_queried) << query;
    const LocatorStats& s = serial->locator;
    const LocatorStats& p = parallel->locator;
    EXPECT_EQ(s.capsules_decompressed, p.capsules_decompressed) << query;
    EXPECT_EQ(s.capsules_stamp_filtered, p.capsules_stamp_filtered) << query;
    EXPECT_EQ(s.bytes_decompressed, p.bytes_decompressed) << query;
    EXPECT_EQ(s.pattern_trivial_hits, p.pattern_trivial_hits) << query;
    EXPECT_EQ(s.possible_matches, p.possible_matches) << query;
    EXPECT_EQ(s.cache_hits, p.cache_hits) << query;
    EXPECT_EQ(s.cache_misses, p.cache_misses) << query;
  }
  std::filesystem::remove_all(dir_ + "_serial");
  std::filesystem::remove_all(dir_ + "_parallel");
}

}  // namespace
}  // namespace loggrep
