// End-to-end integration and cross-system equivalence tests.
//
// The load-bearing property: for every dataset and query, LogGrep (in every
// option configuration) and every baseline return exactly the lines that the
// reference scan (LineMatchesQuery over the raw text) returns.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/baselines/clp_like.h"
#include "src/baselines/es_like.h"
#include "src/baselines/gzip_grep.h"
#include "src/common/rng.h"
#include "src/core/engine.h"
#include "src/parser/template_miner.h"
#include "src/query/line_match.h"
#include "src/query/query_parser.h"
#include "src/workload/datasets.h"
#include "src/workload/loggen.h"
#include "src/workload/queries.h"

namespace loggrep {
namespace {

// Reference result: (line number, text) pairs via a plain scan.
QueryHits ReferenceQuery(std::string_view text, std::string_view command) {
  auto expr = ParseQuery(command);
  EXPECT_TRUE(expr.ok()) << expr.status().ToString() << " for " << command;
  QueryHits hits;
  const std::vector<std::string_view> lines = SplitLines(text);
  for (uint32_t ln = 0; ln < lines.size(); ++ln) {
    if (LineMatchesQuery(lines[ln], **expr)) {
      hits.emplace_back(ln, std::string(lines[ln]));
    }
  }
  return hits;
}

void ExpectSameHits(const QueryHits& expected, const QueryHits& actual,
                    const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].first, actual[i].first) << label << " hit " << i;
    EXPECT_EQ(expected[i].second, actual[i].second) << label << " hit " << i;
  }
}

std::string SampleLog(std::string_view dataset, size_t bytes) {
  const DatasetSpec* spec = FindDataset(dataset);
  EXPECT_NE(spec, nullptr) << dataset;
  return LogGenerator(*spec).Generate(bytes);
}

TEST(IntegrationTest, LogGrepMatchesReferenceOnLogA) {
  const std::string text = SampleLog("Log A", 64 * 1024);
  LogGrepEngine engine;
  const std::string box = engine.CompressBlock(text);
  for (const std::string& query : QuerySuiteForDataset("Log A")) {
    const QueryHits expected = ReferenceQuery(text, query);
    auto result = engine.Query(box, query);
    ASSERT_TRUE(result.ok()) << result.status().ToString() << " for " << query;
    ExpectSameHits(expected, result->hits, "Log A: " + query);
  }
}

// Every dataset, primary query, full-featured engine.
TEST(IntegrationTest, LogGrepMatchesReferenceOnAllDatasets) {
  for (const DatasetSpec& spec : AllDatasets()) {
    const std::string text = LogGenerator(spec).Generate(24 * 1024);
    LogGrepEngine engine;
    const std::string box = engine.CompressBlock(text);
    const std::string query = QueryForDataset(spec.name);
    ASSERT_FALSE(query.empty()) << spec.name;
    const QueryHits expected = ReferenceQuery(text, query);
    auto result = engine.Query(box, query);
    ASSERT_TRUE(result.ok()) << result.status().ToString() << " on " << spec.name;
    ExpectSameHits(expected, result->hits, spec.name + ": " + query);
  }
}

// Ablation configurations must not change results, only performance.
TEST(IntegrationTest, AblationConfigsPreserveResults) {
  const std::string text = SampleLog("Log G", 48 * 1024);
  const std::string query = QueryForDataset("Log G");
  const QueryHits expected = ReferenceQuery(text, query);

  const auto run = [&](EngineOptions opts, const std::string& label) {
    LogGrepEngine engine(opts);
    const std::string box = engine.CompressBlock(text);
    auto result = engine.Query(box, query);
    ASSERT_TRUE(result.ok()) << label << ": " << result.status().ToString();
    ExpectSameHits(expected, result->hits, label);
  };

  EngineOptions opts;
  run(opts, "full");
  opts = {};
  opts.use_real = false;
  run(opts, "w/o real");
  opts = {};
  opts.use_nominal = false;
  run(opts, "w/o nomi");
  opts = {};
  opts.use_stamps = false;
  run(opts, "w/o stamp");
  opts = {};
  opts.use_fixed = false;
  run(opts, "w/o fixed");
  opts = {};
  opts.use_cache = false;
  run(opts, "w/o cache");
  opts = {};
  opts.static_only = true;
  run(opts, "LogGrep-SP");
}

// All baselines agree with the reference scan on selected datasets.
TEST(IntegrationTest, BaselinesMatchReference) {
  const GzipGrepBackend ggrep;
  const ClpLikeBackend clp;
  const EsLikeBackend es;
  const std::vector<const LogStoreBackend*> backends = {&ggrep, &clp, &es};
  for (const DatasetSpec* spec : ProductionDatasets()) {
    if (spec->name != "Log A" && spec->name != "Log J" && spec->name != "Log R") {
      continue;  // the full sweep runs in the benches; keep tests quick
    }
    const std::string text = LogGenerator(*spec).Generate(32 * 1024);
    const std::string query = QueryForDataset(spec->name);
    const QueryHits expected = ReferenceQuery(text, query);
    for (const LogStoreBackend* backend : backends) {
      const std::string stored = backend->Compress(text);
      auto result = backend->Query(stored, query);
      ASSERT_TRUE(result.ok())
          << backend->name() << ": " << result.status().ToString();
      ExpectSameHits(expected, *result, std::string(backend->name()) + " on " +
                                            spec->name);
    }
  }
}

// Reconstruction must be byte-exact for every line: query that matches all.
TEST(IntegrationTest, LosslessReconstruction) {
  for (const std::string name : {"Log A", "Log S", "Hdfs", "Proxifier"}) {
    const std::string text = SampleLog(name, 16 * 1024);
    LogGrepEngine engine;
    const std::string box = engine.CompressBlock(text);
    // "NOT zzz..." matches every line.
    auto result = engine.Query(box, "not zzzNOSUCHTOKEN42");
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const std::vector<std::string_view> lines = SplitLines(text);
    ASSERT_EQ(lines.size(), result->hits.size()) << name;
    for (size_t i = 0; i < lines.size(); ++i) {
      ASSERT_EQ(result->hits[i].first, i) << name;
      ASSERT_EQ(result->hits[i].second, lines[i]) << name << " line " << i;
    }
  }
}

TEST(IntegrationTest, QueryCacheReturnsIdenticalResults) {
  const std::string text = SampleLog("Log B", 32 * 1024);
  LogGrepEngine engine;
  const std::string box = engine.CompressBlock(text);
  const std::string query = QueryForDataset("Log B");
  auto first = engine.Query(box, query);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->from_cache);
  auto second = engine.Query(box, query);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->from_cache);
  ExpectSameHits(first->hits, second->hits, "cache");
}

// Randomized query fuzzing: build random boolean commands from fragments of
// the dataset's own content and require every system to agree with the
// reference scan exactly.
class QueryFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QueryFuzzTest, AllSystemsAgreeOnRandomQueries) {
  Rng rng(GetParam() * 7919 + 13);
  const auto& datasets = AllDatasets();
  const DatasetSpec& spec = datasets[rng.NextBelow(datasets.size())];
  const std::string text = LogGenerator(spec).Generate(24 * 1024);
  const std::vector<std::string_view> lines = SplitLines(text);
  ASSERT_FALSE(lines.empty());

  // Harvest candidate keywords: random token fragments from random lines,
  // plus guaranteed misses and wildcarded variants.
  auto random_keyword = [&]() -> std::string {
    const std::string_view line = lines[rng.NextBelow(lines.size())];
    const auto tokens = TokenizeKeywords(line);
    if (tokens.empty() || rng.NextBool(0.15)) {
      return "zzMISSzz" + std::to_string(rng.NextBelow(100));
    }
    std::string_view token = tokens[rng.NextBelow(tokens.size())];
    if (token.empty()) {
      return "x";
    }
    const size_t start = rng.NextBelow(token.size());
    const size_t len = 1 + rng.NextBelow(token.size() - start);
    std::string kw(token.substr(start, len));
    if (rng.NextBool(0.2) && kw.size() >= 3) {
      kw[kw.size() / 2] = '?';
    }
    return kw;
  };
  std::string command = random_keyword();
  const int clauses = 1 + static_cast<int>(rng.NextBelow(3));
  for (int c = 0; c < clauses; ++c) {
    const char* ops[] = {" and ", " or ", " not "};
    command += ops[rng.NextBelow(3)];
    command += random_keyword();
  }

  const QueryHits expected = ReferenceQuery(text, command);
  LogGrepEngine engine;
  const std::string box = engine.CompressBlock(text);
  auto lg = engine.Query(box, command);
  ASSERT_TRUE(lg.ok()) << command << ": " << lg.status().ToString();
  ExpectSameHits(expected, lg->hits, spec.name + " loggrep: " + command);

  const GzipGrepBackend ggrep;
  const std::string stored = ggrep.Compress(text);
  auto gz = ggrep.Query(stored, command);
  ASSERT_TRUE(gz.ok());
  ExpectSameHits(expected, *gz, spec.name + " ggrep: " + command);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryFuzzTest,
                         ::testing::Range<uint64_t>(1, 41));

TEST(IntegrationTest, CompressionRatioOrdering) {
  // LogGrep's structured compression should beat whole-block gzip, and the
  // ES-like index should be by far the largest representation (§6 shapes).
  const std::string text = SampleLog("Log G", 256 * 1024);
  LogGrepEngine engine;
  const GzipGrepBackend ggrep;
  const EsLikeBackend es;
  const double lg = static_cast<double>(engine.CompressBlock(text).size());
  const double gz = static_cast<double>(ggrep.Compress(text).size());
  const double esz = static_cast<double>(es.Compress(text).size());
  EXPECT_LT(lg, gz) << "LogGrep should out-compress gzip";
  EXPECT_GT(esz, gz) << "ES-like index should dwarf gzip output";
}

}  // namespace
}  // namespace loggrep
