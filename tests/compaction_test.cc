// Crash-safe online compaction: planning, merge correctness (exact global
// line numbers, tombstone carry), the kill-point matrix (crash at every
// protocol step -> reopen -> oracle-exact vs an uncompacted control), chaos
// under fault injection with concurrent queries, and the hardened janitor
// (error accounting, interval clamp, lifecycle races).
#include "src/store/compaction.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/common/metrics.h"
#include "src/store/archive_set.h"
#include "src/store/fs_util.h"
#include "src/store/shard_router.h"
#include "src/store/storage_env.h"

namespace loggrep {
namespace {

std::string TestDir(const std::string& name) {
  std::string dir = std::filesystem::temp_directory_path().string() +
                    "/loggrep-compaction-" + name;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return dir;
}

std::string MakeText(const std::string& tag, int n, int start = 0) {
  std::string text;
  for (int i = 0; i < n; ++i) {
    text += tag + " event-" + std::to_string(start + i) + " shared-token\n";
  }
  return text;
}

constexpr uint64_t kSpan = 1000;  // test window span, ns

ArchiveSetOptions SmallSetOptions() {
  ArchiveSetOptions options;
  options.window_span_ns = kSpan;
  options.max_shard_bytes = 0;
  return options;
}

ShardInfo MakeShard(uint64_t id, const std::string& tenant, bool sealed,
                    uint64_t raw_bytes = 100, uint64_t max_ts = 500) {
  ShardInfo s;
  s.id = id;
  s.tenant = tenant;
  s.dir_name = ShardDirName(id, tenant);
  s.line_base = id * ArchiveSet::kShardLineSpan;
  s.line_span = ArchiveSet::kShardLineSpan;
  s.lines = 10;
  s.raw_bytes = raw_bytes;
  s.sealed = sealed;
  s.max_ts_ns = max_ts;
  return s;
}

// ---- PlanCompaction --------------------------------------------------------

TEST(PlanCompactionTest, MergesAdjacentSealedSameTenantShards) {
  std::vector<ShardInfo> shards = {
      MakeShard(0, "a", true),
      MakeShard(1, "a", true),
      MakeShard(2, "a", true),
      MakeShard(3, "a", false),  // active: never a candidate
  };
  CompactionPolicy policy;
  auto runs = PlanCompaction(shards, policy, /*now_ns=*/1'000'000, {});
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].tenant, "a");
  EXPECT_EQ(runs[0].shard_ids, (std::vector<uint64_t>{0, 1, 2}));
}

TEST(PlanCompactionTest, SingleShardRunsAreNotWorthIt) {
  std::vector<ShardInfo> shards = {MakeShard(0, "a", true),
                                   MakeShard(1, "b", true)};
  auto runs = PlanCompaction(shards, CompactionPolicy{}, 1'000'000, {});
  EXPECT_TRUE(runs.empty());
}

TEST(PlanCompactionTest, ForeignTenantDoesNotBreakARun) {
  std::vector<ShardInfo> shards = {
      MakeShard(0, "a", true), MakeShard(1, "b", true),
      MakeShard(2, "a", true), MakeShard(3, "b", true),
  };
  auto runs = PlanCompaction(shards, CompactionPolicy{}, 1'000'000, {});
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].shard_ids, (std::vector<uint64_t>{0, 2}));
  EXPECT_EQ(runs[1].shard_ids, (std::vector<uint64_t>{1, 3}));
}

TEST(PlanCompactionTest, ExcludedShardBreaksTheRun) {
  std::vector<ShardInfo> shards = {
      MakeShard(0, "a", true), MakeShard(1, "a", true),
      MakeShard(2, "a", true), MakeShard(3, "a", true),
  };
  // Excluding an interior shard splits [0..3] into [0,1] and [3]; the
  // second fragment is below min_run_shards and is dropped.
  auto runs =
      PlanCompaction(shards, CompactionPolicy{}, 1'000'000, {uint64_t{2}});
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].shard_ids, (std::vector<uint64_t>{0, 1}));
}

TEST(PlanCompactionTest, ExpiredAndSupersededAndEmptyAreNeverCandidates) {
  std::vector<ShardInfo> shards = {
      MakeShard(0, "a", true), MakeShard(1, "a", true),
      MakeShard(2, "a", true), MakeShard(3, "a", true),
  };
  shards[0].expired = true;
  shards[1].superseded_by = 9;
  shards[2].lines = 0;
  auto runs = PlanCompaction(shards, CompactionPolicy{}, 1'000'000, {});
  EXPECT_TRUE(runs.empty());
}

TEST(PlanCompactionTest, MaxRunShardsSplitsLongRuns) {
  std::vector<ShardInfo> shards;
  for (uint64_t i = 0; i < 7; ++i) {
    shards.push_back(MakeShard(i, "a", true));
  }
  CompactionPolicy policy;
  policy.max_run_shards = 3;
  auto runs = PlanCompaction(shards, policy, 1'000'000, {});
  ASSERT_EQ(runs.size(), 2u);  // 3 + 3; the trailing single is dropped
  EXPECT_EQ(runs[0].shard_ids.size(), 3u);
  EXPECT_EQ(runs[1].shard_ids.size(), 3u);
}

TEST(PlanCompactionTest, SizeAndAgeGates) {
  std::vector<ShardInfo> shards = {
      MakeShard(0, "a", true, /*raw_bytes=*/100, /*max_ts=*/500),
      MakeShard(1, "a", true, /*raw_bytes=*/5000, /*max_ts=*/500),
      MakeShard(2, "a", true, /*raw_bytes=*/100, /*max_ts=*/999'000),
      MakeShard(3, "a", true, /*raw_bytes=*/100, /*max_ts=*/500),
  };
  CompactionPolicy policy;
  policy.max_source_raw_bytes = 1000;  // shard 1 too large
  policy.min_idle_ns = 10'000;         // shard 2 too fresh at now=1'000'000
  auto runs = PlanCompaction(shards, policy, 1'000'000, {});
  // 1 and 2 are non-candidates of the *same* tenant: they break adjacency,
  // leaving fragments [0] and [3], both below min_run_shards.
  EXPECT_TRUE(runs.empty());

  policy.min_idle_ns = 0;
  policy.max_source_raw_bytes = 0;  // gates off: one run of all four
  runs = PlanCompaction(shards, policy, 1'000'000, {});
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].shard_ids.size(), 4u);
}

// ---- staging dir names -----------------------------------------------------

TEST(CompactionStagingTest, StagingNamesAreDistinctFromShardDirs) {
  const std::string name = CompactionStagingDirName();
  EXPECT_TRUE(LooksLikeCompactionStagingDir(name));
  EXPECT_FALSE(LooksLikeShardDir(name));
  EXPECT_FALSE(LooksLikeCompactionStagingDir("shard-000001-a"));
  EXPECT_FALSE(LooksLikeCompactionStagingDir("set_manifest.json"));
  EXPECT_NE(name, CompactionStagingDirName());  // nonce advances
}

// ---- manifest v2 -----------------------------------------------------------

TEST(SetManifestV2Test, RoundTripPreservesGenerationSupersededAndSpan) {
  ArchiveSet::SetManifestHeader header;
  header.window_span_ns = kSpan;
  header.next_shard_id = 5;
  header.next_line_base = 4 * ArchiveSet::kShardLineSpan;
  header.generation = 17;

  std::vector<ShardInfo> shards = {
      MakeShard(4, "a", true),  // merged shard: sits first, highest id
      MakeShard(0, "a", true),
      MakeShard(1, "a", true),
  };
  shards[0].line_base = 0;
  shards[0].line_span = 2 * ArchiveSet::kShardLineSpan;
  shards[1].superseded_by = 4;
  shards[2].superseded_by = 4;
  shards[2].line_base = ArchiveSet::kShardLineSpan;

  const std::string bytes = ArchiveSet::SerializeSetManifest(header, shards);
  ArchiveSet::SetManifestHeader parsed_header;
  auto parsed = ArchiveSet::ParseSetManifest(bytes, &parsed_header);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed_header.generation, 17u);
  EXPECT_EQ(parsed_header.next_shard_id, 5u);
  ASSERT_EQ(parsed->size(), 3u);
  EXPECT_FALSE((*parsed)[0].superseded());
  EXPECT_EQ((*parsed)[0].line_span, 2 * ArchiveSet::kShardLineSpan);
  EXPECT_TRUE((*parsed)[1].superseded());
  EXPECT_EQ((*parsed)[1].superseded_by, 4u);
  EXPECT_TRUE((*parsed)[1].live() == false);
  EXPECT_EQ((*parsed)[2].line_span, ArchiveSet::kShardLineSpan);
}

TEST(SetManifestV2Test, VersionOneStillParsesWithDefaults) {
  ArchiveSet::SetManifestHeader header;
  header.window_span_ns = kSpan;
  header.next_shard_id = 1;
  header.next_line_base = ArchiveSet::kShardLineSpan;
  header.generation = 9;
  std::vector<ShardInfo> shards = {MakeShard(0, "a", true)};
  std::string bytes = ArchiveSet::SerializeSetManifest(header, shards);

  // A v1 manifest is exactly a v2 manifest without the generation field.
  const std::string v2_tag = "\"version\":2";
  const size_t vpos = bytes.find(v2_tag);
  ASSERT_NE(vpos, std::string::npos);
  bytes.replace(vpos, v2_tag.size(), "\"version\":1");
  const std::string gen_field = ",\"generation\":\"9\"";
  const size_t gpos = bytes.find(gen_field);
  ASSERT_NE(gpos, std::string::npos);
  bytes.erase(gpos, gen_field.size());

  ArchiveSet::SetManifestHeader parsed_header;
  auto parsed = ArchiveSet::ParseSetManifest(bytes, &parsed_header);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed_header.generation, 0u);
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_FALSE((*parsed)[0].superseded());
  EXPECT_EQ((*parsed)[0].line_span, ArchiveSet::kShardLineSpan);
}

TEST(SetManifestV2Test, HostileBytesRejectedCleanly) {
  ArchiveSet::SetManifestHeader header;
  header.window_span_ns = kSpan;
  header.next_shard_id = 5;
  header.next_line_base = 4 * ArchiveSet::kShardLineSpan;

  const auto parse = [](const std::string& bytes) {
    ArchiveSet::SetManifestHeader h;
    return ArchiveSet::ParseSetManifest(bytes, &h);
  };

  {
    // Future version.
    std::vector<ShardInfo> shards = {MakeShard(0, "a", true)};
    std::string bytes = ArchiveSet::SerializeSetManifest(header, shards);
    const size_t pos = bytes.find("\"version\":2");
    bytes.replace(pos, 11, "\"version\":3");
    EXPECT_FALSE(parse(bytes).ok());
  }
  {
    // superseded_by referencing a shard that does not exist.
    std::vector<ShardInfo> shards = {MakeShard(0, "a", true),
                                     MakeShard(1, "a", true)};
    shards[0].superseded_by = 99;
    EXPECT_FALSE(
        parse(ArchiveSet::SerializeSetManifest(header, shards)).ok());
  }
  {
    // superseded_by referencing an expired shard (a dead target cannot
    // hold the sources' lines).
    std::vector<ShardInfo> shards = {MakeShard(0, "a", true),
                                     MakeShard(1, "a", true)};
    shards[0].superseded_by = 1;
    shards[1].expired = true;
    EXPECT_FALSE(
        parse(ArchiveSet::SerializeSetManifest(header, shards)).ok());
  }
  {
    // Zero line span.
    std::vector<ShardInfo> shards = {MakeShard(0, "a", true),
                                     MakeShard(1, "a", true)};
    shards[0].line_span = 7;
    std::string bytes = ArchiveSet::SerializeSetManifest(header, shards);
    const std::string span_field = "\"line_span\":\"7\"";
    const size_t pos = bytes.find(span_field);
    ASSERT_NE(pos, std::string::npos);
    bytes.replace(pos, span_field.size(), "\"line_span\":\"0\"");
    EXPECT_FALSE(parse(bytes).ok());
  }
  {
    // Decreasing line bases (equal bases are legal post-compaction; a
    // decrease never is).
    std::vector<ShardInfo> shards = {MakeShard(1, "a", true),
                                     MakeShard(0, "a", true)};
    EXPECT_FALSE(
        parse(ArchiveSet::SerializeSetManifest(header, shards)).ok());
  }
  {
    // Equal line bases parse fine (merged shard sits before its first
    // source at the same base).
    std::vector<ShardInfo> shards = {MakeShard(4, "a", true),
                                     MakeShard(0, "a", true)};
    shards[0].line_base = 0;
    shards[1].superseded_by = 4;
    auto ok = parse(ArchiveSet::SerializeSetManifest(header, shards));
    EXPECT_TRUE(ok.ok()) << ok.status().ToString();
  }
}

// ---- merge correctness -----------------------------------------------------

struct SetFixture {
  std::string root;
  std::unique_ptr<ArchiveSet> set;
};

// `windows` appends per tenant, 3 lines each, one per time window; the last
// window's shard stays active, the earlier ones are sealed by the rolls.
SetFixture BuildSet(const std::string& name,
                    const std::vector<std::string>& tenants, int windows,
                    ArchiveSetOptions options = SmallSetOptions()) {
  SetFixture fx;
  fx.root = TestDir(name);
  auto set = ArchiveSet::Create(fx.root, options);
  EXPECT_TRUE(set.ok()) << set.status().ToString();
  fx.set = std::move(*set);
  for (int w = 0; w < windows; ++w) {
    for (size_t t = 0; t < tenants.size(); ++t) {
      auto receipt = fx.set->Append(
          tenants[t], MakeText(tenants[t] + "-w" + std::to_string(w), 3, 3 * w),
          static_cast<uint64_t>(w) * kSpan + 100 + t);
      EXPECT_TRUE(receipt.ok()) << receipt.status().ToString();
    }
  }
  return fx;
}

TEST(CompactionTest, MergePreservesHitsAndGlobalLineNumbersExactly) {
  SetFixture fx = BuildSet("merge-exact", {"a"}, 4);
  auto before = fx.set->Query("shared-token", {});
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->hits.size(), 12u);
  ASSERT_EQ(before->shards_total, 4u);

  const SetCompactionReport report = fx.set->Compact();
  ASSERT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.runs_planned, 1u);
  EXPECT_EQ(report.merges_committed, 1u);
  EXPECT_EQ(report.shards_merged, 3u);  // 3 sealed; the active shard stays
  EXPECT_EQ(report.dirs_removed, 3u);

  auto after = fx.set->Query("shared-token", {});
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->complete());
  // Hit-for-hit identical: same lines, same global line numbers, order
  // included.
  EXPECT_EQ(after->hits, before->hits);
  // Scatter width shrank: merged + active instead of 3 sealed + active.
  EXPECT_EQ(after->shards_total, 2u);
  EXPECT_EQ(fx.set->live_shard_count(), 2u);
  EXPECT_EQ(fx.set->total_lines(), 12u);

  // Sources are superseded tombstones pointing at the merged shard; their
  // dirs are gone.
  size_t superseded = 0;
  for (const ShardInfo& s : fx.set->shards()) {
    if (s.superseded()) {
      ++superseded;
      EXPECT_EQ(s.superseded_by, report.merged_ids[0]);
      EXPECT_FALSE(std::filesystem::exists(fx.root + "/" + s.dir_name));
    }
  }
  EXPECT_EQ(superseded, 3u);

  // The answer survives a cold reopen (the manifest, not memory, is truth).
  fx.set.reset();
  auto reopened = ArchiveSet::Open(fx.root, SmallSetOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto cold = (*reopened)->Query("shared-token", {});
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->hits, before->hits);

  // Ingest continues cleanly after compaction: fresh window, fresh shard.
  auto appended = (*reopened)->Append("a", MakeText("a-w9", 2), 9 * kSpan);
  ASSERT_TRUE(appended.ok()) << appended.status().ToString();
  auto grown = (*reopened)->Query("shared-token", {});
  ASSERT_TRUE(grown.ok());
  EXPECT_EQ(grown->hits.size(), 14u);
}

TEST(CompactionTest, MultiTenantInterleavedMergeKeepsGlobalOrder) {
  SetFixture fx = BuildSet("merge-multitenant", {"a", "b"}, 4);
  auto before = fx.set->Query("shared-token", {});
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->hits.size(), 24u);

  const SetCompactionReport report = fx.set->Compact();
  ASSERT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.merges_committed, 2u);  // one merged shard per tenant
  EXPECT_EQ(report.shards_merged, 6u);

  // Each tenant's merged shard spans line bases that interleave with the
  // other tenant's shards; hits must come back in the same globally sorted
  // order regardless.
  auto after = fx.set->Query("shared-token", {});
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->hits, before->hits);

  // Tenant-predicate answers unchanged too.
  for (const char* tenant : {"a", "b"}) {
    SetQueryPredicate pred;
    pred.tenant = tenant;
    auto before_t = before->hits;  // filter by tag prefix
    std::vector<std::pair<uint64_t, std::string>> expected;
    for (const auto& h : before_t) {
      if (h.second.rfind(std::string(tenant) + "-", 0) == 0) {
        expected.push_back(h);
      }
    }
    auto got = fx.set->Query("shared-token", pred);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->hits, expected) << "tenant " << tenant;
  }
}

TEST(CompactionTest, TombstonedHolesAreCarriedVerbatim) {
  SetFixture fx = BuildSet("merge-tombstone", {"a"}, 4);
  // Corrupt the first sealed shard's only block, quarantine it via a
  // query, then tombstone it via repair (the bytes stay corrupt).
  const std::string block_path =
      fx.root + "/" + fx.set->shards()[0].dir_name + "/block-0.lgc";
  fx.set.reset();
  ASSERT_TRUE(WriteFileBytes(block_path, "garbage-bytes", nullptr).ok());
  auto reopened = ArchiveSet::Open(fx.root, SmallSetOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  fx.set = std::move(*reopened);

  auto broken = fx.set->Query("shared-token", {});
  ASSERT_TRUE(broken.ok());
  EXPECT_FALSE(broken->complete());
  const SetRepairReport repaired = fx.set->RepairAll();
  ASSERT_TRUE(repaired.ok()) << repaired.Summary();
  ASSERT_EQ(repaired.tombstoned, 1u);

  auto before = fx.set->Query("shared-token", {});
  ASSERT_TRUE(before.ok());
  EXPECT_FALSE(before->complete());
  const uint64_t missing_before = before->partial.lines_missing();
  ASSERT_EQ(before->hits.size(), 9u);  // 12 - 3 tombstoned

  const SetCompactionReport report = fx.set->Compact();
  ASSERT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.merges_committed, 1u);
  EXPECT_EQ(report.shards_merged, 3u);

  // The accepted hole rides through the merge: same hits, same missing
  // count, still a partial (degraded) answer — never a silently complete
  // one, never a lost healthy line.
  auto after = fx.set->Query("shared-token", {});
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->complete());
  EXPECT_EQ(after->hits, before->hits);
  EXPECT_EQ(after->partial.lines_missing(), missing_before);
}

TEST(CompactionTest, UnrepairedQuarantineExcludesTheShard) {
  SetFixture fx = BuildSet("merge-quarantined", {"a"}, 4);
  const std::string block_path =
      fx.root + "/" + fx.set->shards()[1].dir_name + "/block-0.lgc";
  fx.set.reset();
  ASSERT_TRUE(WriteFileBytes(block_path, "garbage-bytes", nullptr).ok());
  auto reopened = ArchiveSet::Open(fx.root, SmallSetOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  fx.set = std::move(*reopened);
  auto broken = fx.set->Query("shared-token", {});
  ASSERT_TRUE(broken.ok());
  EXPECT_FALSE(broken->complete());  // quarantined, NOT tombstoned

  const SetCompactionReport report = fx.set->Compact();
  ASSERT_TRUE(report.ok()) << report.Summary();
  EXPECT_GE(report.skipped_quarantined, 1u);
  // The quarantined interior shard broke the run: [0] and [2] are both
  // below min_run_shards, so nothing merged.
  EXPECT_EQ(report.merges_committed, 0u);
  for (const ShardInfo& s : fx.set->shards()) {
    EXPECT_FALSE(s.superseded());
  }
}

TEST(CompactionTest, RetentionExpiringASourceMidBuildAbortsTheRun) {
  ArchiveSetOptions options = SmallSetOptions();
  options.retention_ns = 10 * kSpan;
  SetFixture fx = BuildSet("merge-stale-plan", {"a"}, 4, options);
  auto before = fx.set->Query("shared-token", {});
  ASSERT_TRUE(before.ok());

  // The hook fires at kCompactStaged — after the merged shard is built,
  // before the commit takes the set lock. Expiring the first source there
  // moves the generation and invalidates the plan; the commit must detect
  // it and walk away instead of resurrecting expired data.
  ArchiveSet* set = fx.set.get();
  std::atomic<bool> fired{false};
  set->set_commit_hook([set, &fired](SetKillPoint p) {
    if (p == SetKillPoint::kCompactStaged &&
        !fired.exchange(true)) {  // only the first staged run
      auto report = set->RunRetention(/*now_ns=*/11 * kSpan);  // expires w0
      EXPECT_TRUE(report.ok());
      EXPECT_EQ(report->expired_ids.size(), 1u);
    }
    return false;  // observe, don't kill
  });
  const SetCompactionReport report = fx.set->Compact();
  ASSERT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.merges_committed, 0u);
  EXPECT_EQ(report.runs_aborted, 1u);

  // No staging droppings, expired shard still expired, answer = the
  // post-retention truth.
  for (const auto& entry : std::filesystem::directory_iterator(fx.root)) {
    EXPECT_FALSE(
        LooksLikeCompactionStagingDir(entry.path().filename().string()));
  }
  auto after = fx.set->Query("shared-token", {});
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->hits.size(), 9u);  // w0's 3 lines expired
}

// ---- kill-point matrix -----------------------------------------------------

// For every compaction kill point: build an identical control and victim
// set (including an already-expired shard), kill the victim's compaction at
// the point, reopen cold, and require the victim's answers to be
// hit-for-hit identical to the control's — no lost lines, no shifted global
// line numbers, no resurrected expired shard, no leftover staging dirs.
TEST(CompactionKillTest, EveryKillPointRecoversOracleExact) {
  const SetKillPoint points[] = {
      SetKillPoint::kCompactStaged,
      SetKillPoint::kCompactShardRenamed,
      SetKillPoint::kCompactManifestWritten,
      SetKillPoint::kCompactSourcesRemoved,
  };
  ArchiveSetOptions options = SmallSetOptions();
  options.retention_ns = 10 * kSpan;

  // Control: same build, retention, no compaction.
  SetFixture control = BuildSet("kill-control", {"a", "b"}, 4, options);
  {
    auto report = control.set->RunRetention(11 * kSpan);
    ASSERT_TRUE(report.ok());
    ASSERT_EQ(report->expired_ids.size(), 2u);  // both tenants' w0
  }
  auto expected = control.set->Query("shared-token", {});
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(expected->hits.size(), 18u);
  SetQueryPredicate pred_a;
  pred_a.tenant = "a";
  auto expected_a = control.set->Query("shared-token", pred_a);
  ASSERT_TRUE(expected_a.ok());

  for (const SetKillPoint point : points) {
    SCOPED_TRACE(SetKillPointName(point));
    const std::string name =
        std::string("kill-") + SetKillPointName(point);
    SetFixture victim = BuildSet(name, {"a", "b"}, 4, options);
    {
      auto report = victim.set->RunRetention(11 * kSpan);
      ASSERT_TRUE(report.ok());
    }
    victim.set->set_commit_hook(
        [point](SetKillPoint p) { return p == point; });
    const SetCompactionReport report = victim.set->Compact();
    EXPECT_FALSE(report.ok());  // the kill surfaced as a failed pass
    victim.set.reset();         // "crash"

    auto reopened = ArchiveSet::Open(victim.root, options);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();

    // Recovery left no staging dirs and no unreferenced shard dirs.
    std::set<std::string> referenced;
    for (const ShardInfo& s : (*reopened)->shards()) {
      if (s.live()) {
        referenced.insert(s.dir_name);
      }
    }
    for (const auto& entry : std::filesystem::directory_iterator(victim.root)) {
      const std::string fname = entry.path().filename().string();
      EXPECT_FALSE(LooksLikeCompactionStagingDir(fname)) << fname;
      if (LooksLikeShardDir(fname)) {
        EXPECT_TRUE(referenced.count(fname)) << "orphan dir " << fname;
      }
    }
    // Expired shards stay expired.
    size_t expired = 0;
    for (const ShardInfo& s : (*reopened)->shards()) {
      expired += s.expired ? 1 : 0;
    }
    EXPECT_EQ(expired, 2u);

    // Oracle: identical answers, full scatter and tenant-predicated.
    auto got = (*reopened)->Query("shared-token", {});
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_TRUE(got->complete()) << got->RenderPartial();
    EXPECT_EQ(got->hits, expected->hits);
    auto got_a = (*reopened)->Query("shared-token", pred_a);
    ASSERT_TRUE(got_a.ok());
    EXPECT_EQ(got_a->hits, expected_a->hits);

    // Post-crash compaction completes and the answer still matches.
    const SetCompactionReport retried = (*reopened)->Compact();
    ASSERT_TRUE(retried.ok()) << retried.Summary();
    if (point == SetKillPoint::kCompactStaged ||
        point == SetKillPoint::kCompactShardRenamed) {
      // Died before the commit point: the retry performs the merges.
      EXPECT_EQ(retried.merges_committed, 2u);
    }
    auto final_result = (*reopened)->Query("shared-token", {});
    ASSERT_TRUE(final_result.ok());
    EXPECT_EQ(final_result->hits, expected->hits);
  }
}

// ---- chaos: concurrent queries + compaction under fault injection ----------

TEST(CompactionChaosTest, ConcurrentQueriesNeverSeeAWrongAnswer) {
  FaultOptions fault_options;
  fault_options.seed = 20260809;
  fault_options.read_fail_p = 0.02;
  fault_options.sync_fail_p = 0.01;
  // Capped per path below the retry attempt limit: every storm is
  // transient, so correct code converges to complete answers.
  fault_options.max_faults_per_path = 2;
  FaultInjectingStorageEnv env(fault_options);

  ArchiveSetOptions options = SmallSetOptions();
  options.archive.env = &env;
  const std::string root = TestDir("chaos");
  auto created = ArchiveSet::Create(root, options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::unique_ptr<ArchiveSet> set = std::move(*created);
  for (int w = 0; w < 6; ++w) {
    for (const char* tenant : {"a", "b"}) {
      auto receipt = set->Append(
          tenant, MakeText(std::string(tenant) + "-w" + std::to_string(w), 3,
                           3 * w),
          static_cast<uint64_t>(w) * kSpan + 100);
      ASSERT_TRUE(receipt.ok()) << receipt.status().ToString();
    }
  }
  auto expected = set->Query("shared-token", {});
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(expected->complete());
  ASSERT_EQ(expected->hits.size(), 36u);
  SetQueryPredicate pred_b;
  pred_b.tenant = "b";
  auto expected_b = set->Query("shared-token", pred_b);
  ASSERT_TRUE(expected_b.ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> wrong_answers{0};
  std::atomic<uint64_t> queries_run{0};
  std::vector<std::thread> workers;
  for (int i = 0; i < 3; ++i) {
    workers.emplace_back([&, i] {
      while (!stop.load(std::memory_order_acquire)) {
        if (i % 2 == 0) {
          auto got = set->Query("shared-token", {});
          if (!got.ok() || !got->complete() ||
              got->hits != expected->hits) {
            wrong_answers.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          auto got = set->Query("shared-token", pred_b);
          if (!got.ok() || !got->complete() ||
              got->hits != expected_b->hits) {
            wrong_answers.fetch_add(1, std::memory_order_relaxed);
          }
        }
        queries_run.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // The compactor churns against the queriers: aggressive thresholds,
  // repeated passes (later passes see the merged shard — no candidates).
  CompactionPolicy policy;
  policy.min_run_shards = 2;
  size_t merges = 0;
  for (int pass = 0; pass < 8; ++pass) {
    const SetCompactionReport report = set->Compact(policy);
    // Transient build faults abort a pass; that is recoverable by design.
    merges += report.merges_committed;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : workers) {
    t.join();
  }
  EXPECT_EQ(wrong_answers.load(), 0u)
      << "of " << queries_run.load() << " queries";
  EXPECT_GE(queries_run.load(), 10u);
  EXPECT_EQ(merges, 2u);  // one per tenant, eventually

  // Converged state: fewer shards, exact answer, clean cold reopen.
  auto final_result = set->Query("shared-token", {});
  ASSERT_TRUE(final_result.ok());
  EXPECT_EQ(final_result->hits, expected->hits);
  EXPECT_EQ(final_result->shards_total, 4u);  // 2 merged + 2 active
  set.reset();
  auto reopened = ArchiveSet::Open(root, SmallSetOptions());  // real env
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto cold = (*reopened)->Query("shared-token", {});
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->hits, expected->hits);
}

// ---- janitor ---------------------------------------------------------------

TEST(JanitorTest, ErrorsAreCountedKeptAndEmittedNeverSwallowed) {
  FaultOptions fault_options;
  FaultInjectingStorageEnv env(fault_options);
  MetricsRegistry metrics;
  ArchiveSetOptions options = SmallSetOptions();
  options.archive.env = &env;
  options.archive.metrics = &metrics;
  options.retention_ns = 10 * kSpan;
  std::mutex events_mu;
  std::vector<std::string> events;
  options.event_log = [&](const std::string& line) {
    std::lock_guard<std::mutex> lock(events_mu);
    events.push_back(line);
  };
  SetFixture fx = BuildSet("janitor-errors", {"a"}, 2, options);
  // Note: BuildSet used its own options; rebuild with the faulting ones.
  fx.set.reset();
  auto reopened = ArchiveSet::Open(fx.root, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  fx.set = std::move(*reopened);

  // Retention will expire w0 (now >> retention) but the manifest rewrite
  // fails permanently: the janitor's retention step errors every pass.
  env.AddPermanentFault("set_manifest.json", StatusCode::kIOError);

  ArchiveSet::JanitorOptions jopts;
  jopts.interval_ns = 3'600'000'000'000ull;  // effectively: only the first
  jopts.run_immediately = true;
  fx.set->StartJanitor(jopts);
  ArchiveSet::JanitorStatus status;
  for (int i = 0; i < 500; ++i) {
    status = fx.set->janitor_status();
    if (status.passes >= 1) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  fx.set->StopJanitor();
  status = fx.set->janitor_status();
  ASSERT_GE(status.passes, 1u);
  EXPECT_GE(status.errors, 1u);
  EXPECT_NE(status.last_error.find("janitor.retention"), std::string::npos)
      << status.last_error;
  EXPECT_FALSE(status.running);
  EXPECT_GE(metrics.GetOrCreate("set.janitor.errors")->value(), 1u);
  EXPECT_GE(metrics.GetOrCreate("set.janitor.passes")->value(), 1u);

  std::lock_guard<std::mutex> lock(events_mu);
  ASSERT_FALSE(events.empty());
  bool saw_failure = false;
  for (const std::string& line : events) {
    if (line.find("\"event\":\"janitor.retention\"") != std::string::npos &&
        line.find("\"ok\":false") != std::string::npos) {
      saw_failure = true;
    }
  }
  EXPECT_TRUE(saw_failure);
}

TEST(JanitorTest, RunsCompactionAfterRetentionAndRepair) {
  MetricsRegistry metrics;
  ArchiveSetOptions options = SmallSetOptions();
  options.archive.metrics = &metrics;
  SetFixture fx = BuildSet("janitor-compacts", {"a"}, 4, options);

  ArchiveSet::JanitorOptions jopts;
  jopts.interval_ns = 0;  // clamped to the documented minimum
  jopts.run_immediately = true;
  fx.set->StartJanitor(jopts);
  ArchiveSet::CompactionTotals totals;
  for (int i = 0; i < 1000; ++i) {
    totals = fx.set->compaction_totals();
    if (totals.merges >= 1) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  fx.set->StopJanitor();
  EXPECT_GE(totals.merges, 1u);
  EXPECT_GE(totals.shards_merged, 3u);
  EXPECT_EQ(fx.set->live_shard_count(), 2u);
  EXPECT_EQ(metrics.GetOrCreate("set.compaction.merges")->value(),
            totals.merges);
  auto result = fx.set->Query("shared-token", {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->hits.size(), 12u);
}

TEST(JanitorTest, CompactionStepCanBeDisabled) {
  SetFixture fx = BuildSet("janitor-no-compact", {"a"}, 4);
  ArchiveSet::JanitorOptions jopts;
  jopts.interval_ns = 0;
  jopts.run_immediately = true;
  jopts.compaction = false;
  fx.set->StartJanitor(jopts);
  for (int i = 0; i < 50; ++i) {
    if (fx.set->janitor_status().passes >= 3) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  fx.set->StopJanitor();
  EXPECT_EQ(fx.set->compaction_totals().merges, 0u);
  EXPECT_EQ(fx.set->live_shard_count(), 4u);
}

TEST(JanitorTest, ZeroIntervalIsClampedNotABusySpin) {
  SetFixture fx = BuildSet("janitor-clamp", {"a"}, 1);
  fx.set->StartJanitor(/*interval_ns=*/0);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  fx.set->StopJanitor();
  // 100ms at the 10ms documented floor is at most ~10 passes; an unclamped
  // zero interval would have run thousands.
  const ArchiveSet::JanitorStatus status = fx.set->janitor_status();
  EXPECT_LE(status.passes, 40u);
}

TEST(JanitorTest, DoubleStartIsIdempotentAndStopIsSafeToRace) {
  SetFixture fx = BuildSet("janitor-idempotent", {"a"}, 2);
  ArchiveSet::JanitorOptions jopts;
  jopts.interval_ns = 1'000'000;
  jopts.run_immediately = true;
  fx.set->StartJanitor(jopts);
  fx.set->StartJanitor(jopts);  // no second thread, no leak
  fx.set->StartJanitor(123);
  EXPECT_TRUE(fx.set->janitor_status().running);
  std::vector<std::thread> stoppers;
  for (int i = 0; i < 4; ++i) {
    stoppers.emplace_back([&] { fx.set->StopJanitor(); });
  }
  for (std::thread& t : stoppers) {
    t.join();
  }
  EXPECT_FALSE(fx.set->janitor_status().running);
  fx.set->StopJanitor();  // idempotent after stop
}

TEST(JanitorTest, StartStopHammeringAndDestructorMidPass) {
  SetFixture fx = BuildSet("janitor-hammer", {"a"}, 3);
  for (int i = 0; i < 50; ++i) {
    ArchiveSet::JanitorOptions jopts;
    jopts.interval_ns = 0;
    jopts.run_immediately = (i % 2 == 0);
    fx.set->StartJanitor(jopts);
    if (i % 3 == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    fx.set->StopJanitor();
  }
  EXPECT_FALSE(fx.set->janitor_status().running);

  // Destructor while a pass may be mid-flight: must join, not crash.
  {
    SetFixture doomed = BuildSet("janitor-dtor", {"a"}, 4);
    ArchiveSet::JanitorOptions jopts;
    jopts.interval_ns = 0;
    jopts.run_immediately = true;
    doomed.set->StartJanitor(jopts);
    // drop it immediately
  }
  SUCCEED();
}

}  // namespace
}  // namespace loggrep
