#include <gtest/gtest.h>

#include "src/cost/cost_model.h"

namespace loggrep {
namespace {

TEST(CostModelTest, StorageTermMatchesHandComputation) {
  // 1 TB raw at ratio 7.7 for 6 months at $0.017/GB-month:
  // 1024 / 7.7 * 0.017 * 6 = ~$13.56 (the ballpark of the paper's ggrep bar).
  SystemMeasurement m;
  m.raw_gb = 1024;
  m.compression_ratio = 7.7;
  m.compress_speed_mb_s = 1e9;  // make other terms negligible
  m.query_latency_s = 0;
  const CostBreakdown c = ComputeCost(m);
  EXPECT_NEAR(c.storage, 1024.0 / 7.7 * 0.017 * 6, 1e-6);
  EXPECT_NEAR(c.total(), c.storage, 1e-3);
}

TEST(CostModelTest, CompressionTerm) {
  // 1 TB at 2 MB/s -> 1024*1024/2 seconds = ~145.6 h -> *0.016 = ~$2.33.
  SystemMeasurement m;
  m.raw_gb = 1024;
  m.compression_ratio = 1e9;
  m.compress_speed_mb_s = 2.0;
  m.query_latency_s = 0;
  const CostBreakdown c = ComputeCost(m);
  EXPECT_NEAR(c.compress, (1024.0 * 1024.0 / 2.0) / 3600.0 * 0.016, 1e-6);
}

TEST(CostModelTest, QueryTermScalesWithFrequency) {
  SystemMeasurement m;
  m.raw_gb = 1;
  m.compression_ratio = 1e9;
  m.compress_speed_mb_s = 1e9;
  m.query_latency_s = 36.0;  // 0.01 h
  CostParams p;
  p.query_frequency = 100;
  const CostBreakdown c = ComputeCost(m, p);
  EXPECT_NEAR(c.query, 0.016 * 0.01 * 100, 1e-9);
  p.query_frequency = 200;
  EXPECT_NEAR(ComputeCost(m, p).query, 2 * c.query, 1e-9);
}

TEST(CostModelTest, CrossoverFrequency) {
  // "ES" pays 10x storage but queries 10x faster.
  SystemMeasurement es;
  es.raw_gb = 1024;
  es.compression_ratio = 1.0;
  es.compress_speed_mb_s = 1.0;
  es.query_latency_s = 10.0;
  SystemMeasurement lg = es;
  lg.compression_ratio = 20.0;
  lg.compress_speed_mb_s = 2.0;
  lg.query_latency_s = 100.0;

  const double f = CrossoverFrequency(es, lg);
  ASSERT_GT(f, 0.0);
  // At the crossover, total costs agree.
  CostParams p;
  p.query_frequency = f;
  EXPECT_NEAR(ComputeCost(es, p).total(), ComputeCost(lg, p).total(), 1e-6);
  // Below it, the cheap system wins; above, the fast one.
  p.query_frequency = f / 2;
  EXPECT_LT(ComputeCost(lg, p).total(), ComputeCost(es, p).total());
  p.query_frequency = f * 2;
  EXPECT_GT(ComputeCost(lg, p).total(), ComputeCost(es, p).total());
}

TEST(CostModelTest, CrossoverDegenerateCases) {
  SystemMeasurement slow;
  slow.query_latency_s = 100;
  SystemMeasurement fast = slow;
  fast.query_latency_s = 10;
  // "fast" with no fixed-cost penalty always wins.
  EXPECT_EQ(CrossoverFrequency(fast, slow), 0.0);
  // A "fast" system that is not actually faster never wins.
  EXPECT_LT(CrossoverFrequency(slow, fast), 0.0);
}

}  // namespace
}  // namespace loggrep
