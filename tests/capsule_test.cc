#include <gtest/gtest.h>

#include <string>

#include "src/capsule/assembler.h"
#include "src/capsule/capsule.h"
#include "src/capsule/capsule_box.h"
#include "src/capsule/stamp.h"
#include "src/common/rng.h"

namespace loggrep {
namespace {

// ---- stamps -----------------------------------------------------------------

TEST(StampTest, OfComputesMaskAndMaxLen) {
  const CapsuleStamp s = CapsuleStamp::Of({"134", "179"});
  EXPECT_EQ(s.mask, 1);  // digits only: 000001b
  EXPECT_EQ(s.max_len, 3u);
  EXPECT_EQ(s.ToString(), "typ=1,len=3");
}

TEST(StampTest, PaperFigure6FilteringExamples) {
  // "<sv1>" stamp: typ=1,len=1; "<sv2>" stamp: typ=5,len=4.
  const CapsuleStamp sv1 = CapsuleStamp::Of({"1", "8", "2"});
  const CapsuleStamp sv2 = CapsuleStamp::Of({"1F", "F8FE", "E"});
  // Matching case 2 requires "8F8" in sv1: violates max-length -> filtered.
  EXPECT_FALSE(sv1.AdmitsFragment("8F8"));
  // Matching case 5 requires "8F8F" in sv2: passes both checks.
  EXPECT_TRUE(sv2.AdmitsFragment("8F8F"));
  // Type check: lowercase hex is not present in sv2.
  EXPECT_FALSE(sv2.AdmitsFragment("8f"));
}

TEST(StampTest, EmptyFragmentAlwaysAdmitted) {
  const CapsuleStamp s = CapsuleStamp::Of({"abc"});
  EXPECT_TRUE(s.AdmitsFragment(""));
}

TEST(StampTest, PadWidthNeverZero) {
  const CapsuleStamp s = CapsuleStamp::Of({"", ""});
  EXPECT_EQ(s.max_len, 0u);
  EXPECT_EQ(s.PadWidth(), 1u);
}

TEST(StampTest, SerializationRoundTrip) {
  const CapsuleStamp s = CapsuleStamp::Of({"xYz1", "ab"});
  ByteWriter w;
  s.WriteTo(w);
  ByteReader r(w.data());
  auto t = CapsuleStamp::ReadFrom(r);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, s);
}

// ---- blob layouts --------------------------------------------------------------

TEST(CapsuleBlobTest, PaddedBlobRoundTrip) {
  const std::vector<std::string_view> values = {"a", "bbb", "", "cc"};
  const std::string blob = BuildPaddedBlob(values, 3);
  EXPECT_EQ(blob.size(), 12u);
  for (uint32_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(TrimCell(PaddedCell(blob, 3, i)), values[i]);
  }
}

TEST(CapsuleBlobTest, DelimitedBlobRoundTrip) {
  const std::vector<std::string_view> values = {"alpha", "", "gamma delta"};
  const std::string blob = BuildDelimitedBlob(values);
  const auto out = SplitDelimitedBlob(blob);
  ASSERT_EQ(out.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(out[i], values[i]);
  }
}

// ---- capsule box -----------------------------------------------------------------

CapsuleBoxMeta MinimalMeta(uint8_t codec_id) {
  CapsuleBoxMeta meta;
  meta.codec_id = codec_id;
  meta.padded = true;
  meta.total_lines = 0;
  return meta;
}

TEST(CapsuleBoxTest, BuildOpenReadRoundTrip) {
  CapsuleBoxBuilder builder(GetXzCodec());
  const std::string payload_a = "the quick brown fox jumps over the lazy dog";
  const std::string payload_b(5000, 'z');
  const uint32_t a = builder.AddCapsule(payload_a);
  const uint32_t b = builder.AddCapsule(payload_b);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);

  const std::string bytes = std::move(builder).Finish(MinimalMeta(3));
  auto box = CapsuleBox::Open(bytes);
  ASSERT_TRUE(box.ok());
  EXPECT_EQ(box->CapsuleCount(), 2u);
  EXPECT_EQ(*box->ReadCapsule(a), payload_a);
  EXPECT_EQ(*box->ReadCapsule(b), payload_b);
  EXPECT_FALSE(box->ReadCapsule(2).ok());
  EXPECT_LT(*box->CapsuleCompressedSize(b), payload_b.size());
}

TEST(CapsuleBoxTest, MetadataRoundTrip) {
  CapsuleBoxBuilder builder(GetXzCodec());
  const uint32_t cap = builder.AddCapsule("abc");

  CapsuleBoxMeta meta = MinimalMeta(3);
  meta.total_lines = 42;
  meta.padded = false;
  meta.templates.push_back(
      StaticPattern::FromLine(TokenizeLine("read blk_7 done")));

  GroupMeta group;
  group.template_id = 0;
  group.row_count = 3;
  group.line_numbers = {1, 5, 40};
  WholeVarMeta wv;
  wv.stamp = CapsuleStamp::Of({"blk_7", "blk_9"});
  wv.capsule = cap;
  VarMeta var;
  var.repr = wv;
  group.vars.push_back(std::move(var));
  meta.groups.push_back(std::move(group));
  meta.outlier_line_numbers = {2, 3};
  meta.outlier_capsule = cap;

  const std::string bytes = std::move(builder).Finish(meta);
  auto box = CapsuleBox::Open(bytes);
  ASSERT_TRUE(box.ok());
  EXPECT_EQ(box->meta().total_lines, 42u);
  EXPECT_FALSE(box->meta().padded);
  ASSERT_EQ(box->meta().templates.size(), 1u);
  EXPECT_EQ(box->meta().templates[0].ToString(), "read <*> done");
  ASSERT_EQ(box->meta().groups.size(), 1u);
  const GroupMeta& g = box->meta().groups[0];
  EXPECT_EQ(g.row_count, 3u);
  EXPECT_EQ(g.line_numbers, (std::vector<uint32_t>{1, 5, 40}));
  ASSERT_EQ(g.vars.size(), 1u);
  ASSERT_TRUE(g.vars[0].is_whole());
  EXPECT_EQ(g.vars[0].whole().stamp.max_len, 5u);
  EXPECT_EQ(box->meta().outlier_line_numbers, (std::vector<uint32_t>{2, 3}));
}

TEST(CapsuleBoxTest, AllVarMetaKindsRoundTrip) {
  CapsuleBoxBuilder builder(GetZstdCodec());
  const uint32_t c0 = builder.AddCapsule("one");
  const uint32_t c1 = builder.AddCapsule("two");
  const uint32_t c2 = builder.AddCapsule("three");

  CapsuleBoxMeta meta = MinimalMeta(2);
  meta.total_lines = 2;  // Open validates line numbers against total_lines
  meta.templates.push_back(StaticPattern::FromLine(TokenizeLine("a 1 2 3")));
  GroupMeta group;
  group.template_id = 0;
  group.row_count = 2;
  group.line_numbers = {0, 1};

  RealVarMeta rv;
  rv.pattern = RuntimePattern(
      {PatternElement{false, "blk_", 0}, PatternElement{true, "", 0}});
  rv.subvar_stamps.push_back(CapsuleStamp::Of({"12", "9"}));
  rv.subvar_capsules.push_back(c0);
  rv.outlier_rows = {1};
  rv.outlier_capsule = c1;
  VarMeta v1;
  v1.repr = std::move(rv);
  group.vars.push_back(std::move(v1));

  NominalVarMeta nv;
  NominalPatternMeta pm;
  pm.pattern = RuntimePattern({PatternElement{false, "SUCC", 0}});
  pm.stamp = CapsuleStamp::Of({"SUCC"});
  pm.count = 1;
  nv.patterns.push_back(std::move(pm));
  nv.dict_capsule = c1;
  nv.index_capsule = c2;
  nv.index_width = 1;
  VarMeta v2;
  v2.repr = std::move(nv);
  group.vars.push_back(std::move(v2));

  WholeVarMeta wv;
  wv.stamp = CapsuleStamp::Of({"x"});
  wv.capsule = c2;
  VarMeta v3;
  v3.repr = wv;
  group.vars.push_back(std::move(v3));

  meta.groups.push_back(std::move(group));
  const std::string bytes = std::move(builder).Finish(meta);
  auto box = CapsuleBox::Open(bytes);
  ASSERT_TRUE(box.ok());
  const GroupMeta& g = box->meta().groups[0];
  ASSERT_EQ(g.vars.size(), 3u);
  ASSERT_TRUE(g.vars[0].is_real());
  EXPECT_EQ(g.vars[0].real().pattern.ToString(), "blk_<*>");
  EXPECT_EQ(g.vars[0].real().outlier_rows, (std::vector<uint32_t>{1}));
  EXPECT_EQ(g.vars[0].real().outlier_capsule, c1);
  ASSERT_TRUE(g.vars[1].is_nominal());
  EXPECT_EQ(g.vars[1].nominal().patterns[0].pattern.ToString(), "SUCC");
  EXPECT_EQ(g.vars[1].nominal().index_width, 1u);
  ASSERT_TRUE(g.vars[2].is_whole());
  EXPECT_EQ(g.vars[2].whole().capsule, c2);
}

TEST(CapsuleBoxTest, CorruptInputsRejected) {
  CapsuleBoxBuilder builder(GetXzCodec());
  builder.AddCapsule("payload");
  const std::string bytes = std::move(builder).Finish(MinimalMeta(3));

  EXPECT_FALSE(CapsuleBox::Open("").ok());
  EXPECT_FALSE(CapsuleBox::Open("XXXX").ok());
  std::string bad_magic = bytes;
  bad_magic[0] = 'Z';
  EXPECT_FALSE(CapsuleBox::Open(bad_magic).ok());
  std::string bad_version = bytes;
  bad_version[4] = 99;
  EXPECT_FALSE(CapsuleBox::Open(bad_version).ok());
  // Truncations anywhere in the meta region must be rejected cleanly.
  for (size_t cut = 5; cut < std::min<size_t>(bytes.size(), 40); ++cut) {
    auto r = CapsuleBox::Open(std::string_view(bytes).substr(0, cut));
    EXPECT_FALSE(r.ok()) << cut;
  }
}

TEST(CapsuleBoxTest, RandomBytesNeverCrashOpen) {
  // Robustness fuzz: Open must reject arbitrary garbage cleanly.
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::string junk;
    const size_t len = rng.NextBelow(300);
    for (size_t i = 0; i < len; ++i) {
      junk.push_back(static_cast<char>(rng.NextBelow(256)));
    }
    auto r = CapsuleBox::Open(junk);
    if (r.ok()) {
      // Astronomically unlikely (needs the magic + consistent meta); if it
      // ever parses, reads must still be bounds-checked.
      EXPECT_GE(r->CapsuleCount(), 0u);
    }
  }
}

TEST(CapsuleBoxTest, MutatedBoxNeverCrashes) {
  // Flip bytes all over a real box; Open/ReadCapsule must error, not crash.
  CapsuleBoxBuilder builder(GetXzCodec());
  const uint32_t cap = builder.AddCapsule(std::string(500, 'm'));
  CapsuleBoxMeta meta = MinimalMeta(3);
  meta.templates.push_back(StaticPattern::FromLine(TokenizeLine("x 1")));
  const std::string bytes = std::move(builder).Finish(meta);
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    std::string mutated = bytes;
    mutated[rng.NextBelow(mutated.size())] ^=
        static_cast<char>(1 + rng.NextBelow(255));
    auto box = CapsuleBox::Open(mutated);
    if (box.ok()) {
      auto payload = box->ReadCapsule(cap);
      if (payload.ok()) {
        EXPECT_LE(payload->size(), 1u << 20);
      }
    }
  }
}

TEST(CapsuleBoxTest, TruncatedPayloadDetected) {
  CapsuleBoxBuilder builder(GetXzCodec());
  builder.AddCapsule(std::string(1000, 'q'));
  const std::string bytes = std::move(builder).Finish(MinimalMeta(3));
  // Chop payload bytes: directory validation must catch it at Open.
  auto r = CapsuleBox::Open(std::string_view(bytes).substr(0, bytes.size() - 5));
  EXPECT_FALSE(r.ok());
}

// ---- assembler --------------------------------------------------------------------

struct AssembledVar {
  VarMeta meta;
  std::string box_bytes;
};

AssembledVar Assemble(const std::vector<std::string>& values,
                      AssemblerOptions opts = {}) {
  CapsuleBoxBuilder builder(GetXzCodec());
  const Assembler assembler(opts, &builder);
  AssembledVar out;
  out.meta = assembler.AssembleVariable(values);
  out.box_bytes = std::move(builder).Finish(CapsuleBoxMeta{});
  return out;
}

std::vector<std::string> RealValues(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> values;
  for (int i = 0; i < n; ++i) {
    values.push_back("blk_" + std::to_string(10000000 + rng.NextBelow(89999999)));
  }
  return values;
}

TEST(AssemblerTest, RealVectorBecomesSubVarCapsules) {
  const auto out = Assemble(RealValues(300, 17));
  ASSERT_TRUE(out.meta.is_real());
  const RealVarMeta& rv = out.meta.real();
  EXPECT_GE(rv.subvar_capsules.size(), 1u);
  EXPECT_EQ(rv.subvar_capsules.size(), rv.subvar_stamps.size());
  EXPECT_EQ(rv.pattern.SubVarCount(), rv.subvar_capsules.size());
}

TEST(AssemblerTest, NominalVectorBecomesDictionaryAndIndex) {
  std::vector<std::string> values;
  for (int i = 0; i < 200; ++i) {
    values.push_back(i % 3 == 0 ? "ERR#404" : (i % 3 == 1 ? "SUCC" : "ERR#501"));
  }
  const auto out = Assemble(values);
  ASSERT_TRUE(out.meta.is_nominal());
  const NominalVarMeta& nv = out.meta.nominal();
  EXPECT_EQ(nv.index_width, 1u);  // 3 dictionary entries -> one digit
  uint32_t total = 0;
  for (const NominalPatternMeta& pm : nv.patterns) {
    total += pm.count;
  }
  EXPECT_EQ(total, 3u);
}

TEST(AssemblerTest, StaticOnlyForcesWholeCapsules) {
  AssemblerOptions opts;
  opts.static_only = true;
  const auto real_out = Assemble(RealValues(100, 3), opts);
  EXPECT_TRUE(real_out.meta.is_whole());
  const auto nominal_out = Assemble({"a", "a", "a", "b"}, opts);
  EXPECT_TRUE(nominal_out.meta.is_whole());
}

TEST(AssemblerTest, DisabledTechniquesFallBackToWhole) {
  AssemblerOptions no_real;
  no_real.use_real = false;
  EXPECT_TRUE(Assemble(RealValues(100, 5), no_real).meta.is_whole());

  AssemblerOptions no_nominal;
  no_nominal.use_nominal = false;
  EXPECT_TRUE(Assemble({"x", "x", "x", "y"}, no_nominal).meta.is_whole());
}

TEST(AssemblerTest, OutliersRecordedWithRows) {
  std::vector<std::string> values = RealValues(300, 11);
  values[7] = "TOTALLY DIFFERENT";
  values[200] = "another-outlier!";
  const auto out = Assemble(values);
  ASSERT_TRUE(out.meta.is_real());
  const RealVarMeta& rv = out.meta.real();
  EXPECT_EQ(rv.outlier_rows, (std::vector<uint32_t>{7, 200}));
  EXPECT_NE(rv.outlier_capsule, kNoCapsule);
}

TEST(AssemblerTest, HopelessPatternDegradesToWhole) {
  // Half the values conform, half do not: pattern abandoned (> max outliers).
  std::vector<std::string> values;
  for (int i = 0; i < 50; ++i) {
    values.push_back("blk_" + std::to_string(1000 + i * 7919 % 9000));
  }
  for (int i = 0; i < 60; ++i) {
    // Unique unstructured junk so the vector stays "real" (low dup rate).
    values.push_back(std::string(1 + i % 5, static_cast<char>('a' + i % 26)) +
                     std::to_string(i * 131));
  }
  const auto out = Assemble(values);
  // Must be whole OR real with limited outliers; never lose values.
  if (out.meta.is_real()) {
    EXPECT_LE(out.meta.real().outlier_rows.size(), values.size() / 2);
  } else {
    EXPECT_TRUE(out.meta.is_whole());
  }
}

TEST(AssemblerTest, UnpaddedModeBuildsDelimitedCapsules) {
  AssemblerOptions opts;
  opts.padded = false;
  CapsuleBoxBuilder builder(GetXzCodec());
  const Assembler assembler(opts, &builder);
  const VarMeta meta = assembler.AssembleVariable(RealValues(120, 23));
  CapsuleBoxMeta box_meta;
  box_meta.codec_id = GetXzCodec().id();  // Open validates the codec id
  box_meta.padded = false;
  const std::string bytes = std::move(builder).Finish(box_meta);
  auto box = CapsuleBox::Open(bytes);
  ASSERT_TRUE(box.ok());
  if (meta.is_real()) {
    const std::string blob = *box->ReadCapsule(meta.real().subvar_capsules[0]);
    // Delimited layout: must contain '\n' separators.
    EXPECT_NE(blob.find('\n'), std::string::npos);
  }
}

}  // namespace
}  // namespace loggrep
