#include "src/query/box_cache.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/metrics.h"
#include "src/core/engine.h"

namespace loggrep {
namespace {

std::string SampleBoxBytes(int salt = 0) {
  std::string text;
  for (int i = 0; i < 64; ++i) {
    text += "INFO request id:REQ_" + std::to_string(i * 7 + salt) +
            " served bytes:" + std::to_string(i * 100) + "\n";
  }
  LogGrepEngine engine;
  return engine.CompressBlock(text);
}

// ---- BoxKey identity --------------------------------------------------------

TEST(BoxKeyTest, ContentKeysDifferPerContent) {
  const BoxKey a = BoxKey::FromBytes("hello world");
  const BoxKey b = BoxKey::FromBytes("hello worle");
  const BoxKey a2 = BoxKey::FromBytes("hello world");
  EXPECT_TRUE(a == a2);
  EXPECT_FALSE(a == b);
  EXPECT_NE(a.ToString(), b.ToString());
}

TEST(BoxKeyTest, SizeIsPartOfTheIdentity) {
  // Even if both hashes collided, differing sizes keep the keys distinct.
  BoxKey a = BoxKey::FromBytes("aaaa");
  BoxKey forged = a;
  forged.size += 1;
  EXPECT_FALSE(a == forged);
}

TEST(BoxKeyTest, SequenceKeysNeverCollideWithContentKeys) {
  // Sequence keys use a sentinel size no serialized box can reach.
  const BoxKey seq = BoxKey::ForSequence(1, 0);
  EXPECT_EQ(seq.size, UINT64_MAX);
  const BoxKey content = BoxKey::FromBytes(SampleBoxBytes());
  EXPECT_FALSE(seq == content);
}

TEST(BoxKeyTest, SequenceKeysDifferAcrossNamespacesAndSeqs) {
  const uint64_t ns1 = BoxKey::NextNamespaceId();
  const uint64_t ns2 = BoxKey::NextNamespaceId();
  EXPECT_NE(ns1, ns2);
  EXPECT_FALSE(BoxKey::ForSequence(ns1, 0) == BoxKey::ForSequence(ns2, 0));
  EXPECT_FALSE(BoxKey::ForSequence(ns1, 0) == BoxKey::ForSequence(ns1, 1));
  EXPECT_TRUE(BoxKey::ForSequence(ns1, 3) == BoxKey::ForSequence(ns1, 3));
}

// ---- OpenedBox --------------------------------------------------------------

TEST(OpenedBoxTest, ParsesAndPinsBytes) {
  auto opened = OpenedBox::Open(SampleBoxBytes());
  ASSERT_TRUE(opened.ok());
  EXPECT_GT((*opened)->bytes().size(), 0u);
  EXPECT_EQ((*opened)->box().meta().total_lines, 64u);
}

TEST(OpenedBoxTest, RejectsGarbage) {
  EXPECT_FALSE(OpenedBox::Open("definitely not a capsule box").ok());
}

// ---- CachedCapsule ----------------------------------------------------------

TEST(CachedCapsuleTest, LazySplitsViewIntoBlob) {
  const std::string blob = "alpha\nbeta\ngamma\n";
  CachedCapsule capsule{std::string(blob)};
  const auto& splits = capsule.splits();
  ASSERT_EQ(splits.size(), 3u);
  EXPECT_EQ(splits[0], "alpha");
  EXPECT_EQ(splits[2], "gamma");
  // Views must point inside the capsule's own blob.
  EXPECT_GE(splits[0].data(), capsule.blob().data());
  EXPECT_LE(splits[2].data() + splits[2].size(),
            capsule.blob().data() + capsule.blob().size());
}

// ---- BoxCache ---------------------------------------------------------------

TEST(BoxCacheTest, BoxMissThenHitLoadsOnce) {
  BoxCache cache;
  const std::string bytes = SampleBoxBytes();
  const BoxKey key = BoxKey::FromBytes(bytes);
  int loads = 0;
  auto loader = [&]() -> Result<std::string> {
    ++loads;
    return bytes;
  };
  bool was_hit = true;
  auto first = cache.GetOrOpenBox(key, loader, &was_hit);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(was_hit);
  auto second = cache.GetOrOpenBox(key, loader, &was_hit);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(was_hit);
  EXPECT_EQ(loads, 1);
  EXPECT_EQ(first->get(), second->get());  // same resident object

  const BoxCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.box_hits, 1u);
  EXPECT_EQ(stats.box_misses, 1u);
  EXPECT_GT(stats.bytes_saved, 0u);
}

TEST(BoxCacheTest, CapsuleMissThenHitLoadsOnce) {
  BoxCache cache;
  const BoxKey key = BoxKey::ForSequence(BoxKey::NextNamespaceId(), 0);
  int loads = 0;
  auto loader = [&]() -> Result<std::string> {
    ++loads;
    return std::string("decompressed capsule payload");
  };
  bool was_hit = true;
  auto first = cache.GetOrLoadCapsule(key, 7, loader, &was_hit);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(was_hit);
  auto second = cache.GetOrLoadCapsule(key, 7, loader, &was_hit);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(was_hit);
  EXPECT_EQ(loads, 1);
  // A different capsule id is a different entry.
  auto third = cache.GetOrLoadCapsule(key, 8, loader, &was_hit);
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(was_hit);
  EXPECT_EQ(loads, 2);
}

TEST(BoxCacheTest, LoaderErrorIsNotCached) {
  BoxCache cache;
  const BoxKey key = BoxKey::ForSequence(BoxKey::NextNamespaceId(), 0);
  auto failing = []() -> Result<std::string> {
    return Internal("disk on fire");
  };
  EXPECT_FALSE(cache.GetOrLoadCapsule(key, 0, failing).ok());
  // A later good load must succeed and be a miss (nothing poisoned).
  bool was_hit = true;
  auto ok = cache.GetOrLoadCapsule(
      key, 0, []() -> Result<std::string> { return std::string("fine"); },
      &was_hit);
  ASSERT_TRUE(ok.ok());
  EXPECT_FALSE(was_hit);
  EXPECT_EQ((*ok)->blob(), "fine");
}

TEST(BoxCacheTest, EvictsLeastRecentlyUsedUnderByteBudget) {
  BoxCacheOptions options;
  options.byte_budget = 4096;
  options.shards = 1;  // deterministic LRU order
  BoxCache cache(options);
  const BoxKey key = BoxKey::ForSequence(BoxKey::NextNamespaceId(), 0);
  auto blob = []() -> Result<std::string> { return std::string(1500, 'z'); };

  ASSERT_TRUE(cache.GetOrLoadCapsule(key, 0, blob).ok());
  ASSERT_TRUE(cache.GetOrLoadCapsule(key, 1, blob).ok());
  // Touch capsule 0 so capsule 1 is the LRU victim.
  ASSERT_TRUE(cache.GetOrLoadCapsule(key, 0, blob).ok());
  ASSERT_TRUE(cache.GetOrLoadCapsule(key, 2, blob).ok());

  const BoxCacheStats stats = cache.Stats();
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_LE(stats.bytes_in_use, options.byte_budget);

  bool was_hit = false;
  ASSERT_TRUE(cache.GetOrLoadCapsule(key, 0, blob, &was_hit).ok());
  EXPECT_TRUE(was_hit);  // survived: it was promoted
  ASSERT_TRUE(cache.GetOrLoadCapsule(key, 1, blob, &was_hit).ok());
  EXPECT_FALSE(was_hit);  // evicted: reloads
}

TEST(BoxCacheTest, OversizedEntryIsStillAdmitted) {
  BoxCacheOptions options;
  options.byte_budget = 64;  // smaller than any entry
  options.shards = 1;
  BoxCache cache(options);
  const BoxKey key = BoxKey::ForSequence(BoxKey::NextNamespaceId(), 0);
  bool was_hit = true;
  auto huge = cache.GetOrLoadCapsule(
      key, 0, []() -> Result<std::string> { return std::string(1 << 16, 'h'); },
      &was_hit);
  ASSERT_TRUE(huge.ok());
  EXPECT_FALSE(was_hit);
  // Never evict the freshest entry: it is immediately warm.
  ASSERT_TRUE(cache
                  .GetOrLoadCapsule(
                      key, 0,
                      []() -> Result<std::string> { return std::string(); },
                      &was_hit)
                  .ok());
  EXPECT_TRUE(was_hit);
}

TEST(BoxCacheTest, PinnedEntriesSurviveEvictionAndClear) {
  BoxCacheOptions options;
  options.byte_budget = 2048;
  options.shards = 1;
  BoxCache cache(options);
  const BoxKey key = BoxKey::ForSequence(BoxKey::NextNamespaceId(), 0);

  auto pinned = cache.GetOrLoadCapsule(key, 0, []() -> Result<std::string> {
    return std::string(1024, 'p');
  });
  ASSERT_TRUE(pinned.ok());
  const std::string_view view = (*pinned)->blob();

  // Push the pinned entry out...
  for (uint32_t id = 1; id <= 8; ++id) {
    ASSERT_TRUE(cache
                    .GetOrLoadCapsule(key, id,
                                      []() -> Result<std::string> {
                                        return std::string(1024, 'q');
                                      })
                    .ok());
  }
  cache.Clear();
  EXPECT_EQ(cache.Stats().entries, 0u);
  // ...yet the pinned shared_ptr keeps its bytes alive and intact.
  EXPECT_EQ(view.size(), 1024u);
  EXPECT_EQ(view[0], 'p');
  EXPECT_EQ(view[1023], 'p');
}

// Shared across runs of this test binary; Reset() isolates each use without
// throwing away the registered cells (handles stay valid, per metrics.h).
MetricsRegistry& SharedMetrics() {
  static MetricsRegistry registry;
  registry.Reset();
  return registry;
}

TEST(BoxCacheTest, MetricsRegistryMirrorsCounters) {
  MetricsRegistry& metrics = SharedMetrics();
  BoxCacheOptions options;
  options.metrics = &metrics;
  BoxCache cache(options);
  const BoxKey key = BoxKey::ForSequence(BoxKey::NextNamespaceId(), 0);
  auto blob = []() -> Result<std::string> { return std::string(100, 'm'); };
  ASSERT_TRUE(cache.GetOrLoadCapsule(key, 0, blob).ok());
  ASSERT_TRUE(cache.GetOrLoadCapsule(key, 0, blob).ok());
  EXPECT_EQ(metrics.GetOrCreate("query.box_cache.misses")->value(), 1u);
  EXPECT_EQ(metrics.GetOrCreate("query.box_cache.hits")->value(), 1u);
  EXPECT_GE(metrics.GetOrCreate("query.box_cache.bytes_saved")->value(), 100u);
}

TEST(BoxCacheTest, ConcurrentMixedLoadsStayConsistent) {
  BoxCacheOptions options;
  options.byte_budget = 64 << 10;
  options.shards = 4;
  BoxCache cache(options);
  const uint64_t ns = BoxKey::NextNamespaceId();

  constexpr int kThreads = 8;
  constexpr int kIters = 400;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const uint32_t id = static_cast<uint32_t>((t + i) % 16);
        const BoxKey key = BoxKey::ForSequence(ns, id % 4);
        auto got = cache.GetOrLoadCapsule(key, id, [id]() -> Result<std::string> {
          return std::string(64 + id, static_cast<char>('a' + id % 26));
        });
        if (!got.ok() || (*got)->blob().size() != 64 + id ||
            (*got)->blob()[0] != static_cast<char>('a' + id % 26)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0);
  const BoxCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.capsule_hits + stats.capsule_misses,
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_LE(stats.bytes_in_use,
            options.byte_budget + (64 + 16 + 128) * options.shards);
}

}  // namespace
}  // namespace loggrep
