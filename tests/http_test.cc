// Unit tests for the HTTP message layer (src/server/http.h) and the shared
// JSON helpers (src/common/json.h) — the byte-level half of loggrepd,
// exercised here without any sockets. The malformed-input cases mirror the
// fuzz_http target's contract: hostile bytes produce kError with a sane
// HTTP status, never a crash.
#include "src/server/http.h"

#include <gtest/gtest.h>

#include <string>

#include "src/common/json.h"

namespace loggrep {
namespace {

HttpRequestParser::State FeedAll(HttpRequestParser* parser,
                                 std::string_view bytes,
                                 size_t* consumed = nullptr) {
  const size_t used = parser->Feed(bytes);
  if (consumed != nullptr) {
    *consumed = used;
  }
  return parser->state();
}

TEST(HttpParser, ParsesSimpleGet) {
  HttpRequestParser parser;
  ASSERT_EQ(FeedAll(&parser, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"),
            HttpRequestParser::State::kDone);
  const HttpRequest& request = parser.request();
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.path, "/healthz");
  EXPECT_EQ(request.Header("host"), "x");
  EXPECT_TRUE(request.KeepAlive());
  EXPECT_TRUE(request.body.empty());
}

TEST(HttpParser, ParsesPostBodyAndParams) {
  HttpRequestParser parser;
  const std::string bytes =
      "POST /query?archive=a%2Fb&degrade=0&deadline_ms=250 HTTP/1.1\r\n"
      "Content-Length: 11\r\n"
      "\r\n"
      "hello AND x";
  ASSERT_EQ(FeedAll(&parser, bytes), HttpRequestParser::State::kDone);
  const HttpRequest& request = parser.request();
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.path, "/query");
  EXPECT_EQ(request.params.at("archive"), "a/b");
  EXPECT_EQ(request.params.at("degrade"), "0");
  EXPECT_EQ(request.params.at("deadline_ms"), "250");
  EXPECT_EQ(request.body, "hello AND x");
}

TEST(HttpParser, IncrementalOneByteAtATime) {
  const std::string bytes =
      "POST /query HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
  HttpRequestParser parser;
  for (const char c : bytes) {
    ASSERT_NE(parser.state(), HttpRequestParser::State::kError);
    parser.Feed(std::string_view(&c, 1));
  }
  ASSERT_EQ(parser.state(), HttpRequestParser::State::kDone);
  EXPECT_EQ(parser.request().body, "body");
}

TEST(HttpParser, PipelinedKeepAliveRequestsSplitCorrectly) {
  const std::string first = "GET /a HTTP/1.1\r\n\r\n";
  const std::string second = "GET /b HTTP/1.1\r\nConnection: close\r\n\r\n";
  const std::string wire = first + second;

  HttpRequestParser parser;
  size_t consumed = 0;
  ASSERT_EQ(FeedAll(&parser, wire, &consumed),
            HttpRequestParser::State::kDone);
  EXPECT_EQ(consumed, first.size()) << "must stop at the request boundary";
  EXPECT_EQ(parser.request().path, "/a");
  EXPECT_TRUE(parser.request().KeepAlive());

  parser.Reset();
  ASSERT_EQ(FeedAll(&parser, std::string_view(wire).substr(consumed)),
            HttpRequestParser::State::kDone);
  EXPECT_EQ(parser.request().path, "/b");
  EXPECT_FALSE(parser.request().KeepAlive());
}

TEST(HttpParser, TruncatedBodyStaysNeedMore) {
  HttpRequestParser parser;
  EXPECT_EQ(FeedAll(&parser,
                    "POST /query HTTP/1.1\r\nContent-Length: 100\r\n\r\nhal"),
            HttpRequestParser::State::kNeedMore);
  // The rest arrives later; nothing was lost.
  std::string rest(97, 'x');
  EXPECT_EQ(FeedAll(&parser, rest), HttpRequestParser::State::kDone);
  EXPECT_EQ(parser.request().body.size(), 100u);
}

TEST(HttpParser, MalformedRequestLines) {
  for (const char* bad : {
           "GARBAGE\r\n\r\n",                  // no spaces
           "GET /x\r\n\r\n",                   // missing version
           "GET  HTTP/1.1\r\n\r\n",            // empty target
           "GET x HTTP/1.1\r\n\r\n",           // target not origin-form
           "G@T /x HTTP/1.1\r\n\r\n",          // bad method char
           "GET /x HTTP/2.0\r\n\r\n",          // unsupported version
           "GET /x HTTP/9\r\n\r\n",            // nonsense version
       }) {
    HttpRequestParser parser;
    EXPECT_EQ(FeedAll(&parser, bad), HttpRequestParser::State::kError)
        << "input: " << bad;
    EXPECT_GE(parser.error_status(), 400) << "input: " << bad;
  }
}

TEST(HttpParser, MalformedHeaders) {
  struct Case {
    const char* bytes;
    int status;
  };
  for (const Case& c : {
           Case{"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n", 400},
           Case{"GET / HTTP/1.1\r\n: empty-name\r\n\r\n", 400},
           Case{"GET / HTTP/1.1\r\nA: 1\r\n  folded\r\n\r\n", 400},
           Case{"GET / HTTP/1.1\r\nBad Name: x\r\n\r\n", 400},
           Case{"POST / HTTP/1.1\r\nContent-Length: huge\r\n\r\n", 400},
           Case{"POST / HTTP/1.1\r\nContent-Length: 9999999999999\r\n\r\n",
                400},  // >12 digits: rejected before overflow
           Case{"POST / HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n", 413},
           Case{"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501},
       }) {
    HttpRequestParser parser;
    EXPECT_EQ(FeedAll(&parser, c.bytes), HttpRequestParser::State::kError)
        << "input: " << c.bytes;
    EXPECT_EQ(parser.error_status(), c.status) << "input: " << c.bytes;
  }
}

TEST(HttpParser, OversizedRequestLineRejected414) {
  HttpLimits limits;
  limits.max_request_line_bytes = 64;
  HttpRequestParser parser(limits);
  const std::string long_line = "GET /" + std::string(200, 'a') + " HTTP/1.1\r\n\r\n";
  EXPECT_EQ(FeedAll(&parser, long_line), HttpRequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 414);
}

TEST(HttpParser, OversizedHeadersRejected431) {
  HttpLimits limits;
  limits.max_header_bytes = 128;
  HttpRequestParser parser(limits);
  std::string bytes = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 10; ++i) {
    bytes += "X-Filler-" + std::to_string(i) + ": " + std::string(40, 'y') +
             "\r\n";
  }
  bytes += "\r\n";
  EXPECT_EQ(FeedAll(&parser, bytes), HttpRequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParser, TooManyHeadersRejected) {
  HttpLimits limits;
  limits.max_headers = 4;
  HttpRequestParser parser(limits);
  std::string bytes = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 8; ++i) {
    bytes += "H" + std::to_string(i) + ": v\r\n";
  }
  bytes += "\r\n";
  EXPECT_EQ(FeedAll(&parser, bytes), HttpRequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParser, BodyOverLimitRejected413) {
  HttpLimits limits;
  limits.max_body_bytes = 16;
  HttpRequestParser parser(limits);
  EXPECT_EQ(FeedAll(&parser,
                    "POST / HTTP/1.1\r\nContent-Length: 17\r\n\r\n"),
            HttpRequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpParser, BareLfLineEndingsAccepted) {
  HttpRequestParser parser;
  ASSERT_EQ(FeedAll(&parser, "GET /x HTTP/1.1\nHost: y\n\n"),
            HttpRequestParser::State::kDone);
  EXPECT_EQ(parser.request().Header("host"), "y");
}

TEST(HttpParser, LeadingEmptyLinesSkipped) {
  HttpRequestParser parser;
  ASSERT_EQ(FeedAll(&parser, "\r\n\r\nGET /x HTTP/1.1\r\n\r\n"),
            HttpRequestParser::State::kDone);
  EXPECT_EQ(parser.request().path, "/x");
}

TEST(HttpParser, Http10DefaultsToClose) {
  HttpRequestParser parser;
  ASSERT_EQ(FeedAll(&parser, "GET / HTTP/1.0\r\n\r\n"),
            HttpRequestParser::State::kDone);
  EXPECT_FALSE(parser.request().KeepAlive());
  parser.Reset();
  ASSERT_EQ(FeedAll(&parser,
                    "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"),
            HttpRequestParser::State::kDone);
  EXPECT_TRUE(parser.request().KeepAlive());
}

TEST(Url, DecodeAndEncodeRoundTrip) {
  EXPECT_EQ(UrlDecode("a%20b+c"), "a b c");
  EXPECT_EQ(UrlDecode("a+b", /*plus_is_space=*/false), "a+b");
  EXPECT_EQ(UrlDecode("100%"), "100%");      // invalid escape kept verbatim
  EXPECT_EQ(UrlDecode("%zz"), "%zz");
  const std::string nasty = "a b&c=d?e/f\"g\n100%";
  EXPECT_EQ(UrlDecode(UrlEncode(nasty), /*plus_is_space=*/false), nasty);
}

TEST(Http, ResponseSerializeParseRoundTrip) {
  HttpResponse response;
  response.status = 206;
  response.body = "{\"complete\":false}";
  response.headers.emplace_back("Retry-After", "2");
  const std::string wire = SerializeResponse(response, /*keep_alive=*/true);

  ParsedResponse parsed;
  size_t consumed = 0;
  ASSERT_TRUE(ParseResponseBytes(wire, &parsed, &consumed));
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(parsed.status, 206);
  EXPECT_EQ(parsed.body, response.body);
  EXPECT_EQ(parsed.headers.at("retry-after"), "2");
  EXPECT_EQ(parsed.headers.at("connection"), "keep-alive");
}

TEST(Http, ParseResponseNeedsWholeBody) {
  const std::string wire =
      SerializeResponse(HttpResponse{200, {}, "text/plain", "0123456789"},
                        false);
  ParsedResponse parsed;
  size_t consumed = 0;
  EXPECT_FALSE(
      ParseResponseBytes(std::string_view(wire).substr(0, wire.size() - 1),
                         &parsed, &consumed));
  EXPECT_TRUE(ParseResponseBytes(wire, &parsed, &consumed));
  EXPECT_EQ(parsed.body, "0123456789");
}

// --- JSON ------------------------------------------------------------------

TEST(Json, ParsesDocumentShapes) {
  auto doc = ParseJson(
      R"({"a":1,"b":-2.5,"c":"x\ny","d":[true,false,null],"e":{"f":[]}})");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Get("a").AsUint(), 1u);
  EXPECT_DOUBLE_EQ(doc->Get("b").AsDouble(), -2.5);
  EXPECT_EQ(doc->Get("c").AsString(), "x\ny");
  ASSERT_EQ(doc->Get("d").AsArray().size(), 3u);
  EXPECT_TRUE(doc->Get("d").AsArray()[0].AsBool());
  EXPECT_TRUE(doc->Get("e").Get("f").is_array());
  EXPECT_TRUE(doc->Get("missing").is_null());
}

TEST(Json, EscapeRoundTripsThroughParser) {
  const std::string nasty = "line1\nline2\t\"quoted\" \\ \x01 100%";
  std::string doc = "{\"k\":";
  AppendJsonString(&doc, nasty);
  doc += "}";
  auto parsed = ParseJson(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Get("k").AsString(), nasty);
}

TEST(Json, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "{\"a\" 1}", "tru", "[1]x", "\"unterm",
        "{\"a\":\"\\u12\"}", "nan", "1e999"}) {
    EXPECT_FALSE(ParseJson(bad).ok()) << "input: " << bad;
  }
}

TEST(Json, DepthCapStopsHostileNesting) {
  const std::string deep(10000, '[');
  EXPECT_FALSE(ParseJson(deep).ok());
}

}  // namespace
}  // namespace loggrep
