// Service-level observability tests: request-id propagation/minting, the
// lock-free access log (JSON well-formedness under concurrent keep-alive
// load), slow-query capture + /debug/slow, windowed SLO telemetry, and the
// /statusz + /metrics + build-info surfaces.
#include <atomic>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/build_info.h"
#include "src/common/json.h"
#include "src/server/client.h"
#include "src/server/daemon.h"
#include "src/server/request_log.h"
#include "src/server/telemetry.h"
#include "src/store/log_archive.h"
#include "src/workload/datasets.h"
#include "src/workload/loggen.h"
#include "src/workload/queries.h"

namespace loggrep {
namespace {

// ---- request ids -----------------------------------------------------------

TEST(RequestIdTest, GeneratedIdsAreSixteenHexAndUnique) {
  std::string a = GenerateRequestId();
  std::string b = GenerateRequestId();
  EXPECT_EQ(a.size(), 16u);
  EXPECT_EQ(b.size(), 16u);
  EXPECT_NE(a, b);
  for (char c : a) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << a;
  }
}

TEST(RequestIdTest, HashIsStableFnv1a) {
  // FNV-1a 64 of "a": (offset ^ 'a') * prime.
  EXPECT_EQ(RequestIdHash("a"),
            (14695981039346656037ull ^ 'a') * 1099511628211ull);
  EXPECT_EQ(RequestIdHash("abc"), RequestIdHash("abc"));
  EXPECT_NE(RequestIdHash("abc"), RequestIdHash("abd"));
}

// ---- log line ring + access log -------------------------------------------

TEST(LogLineRingTest, PushPopFifoAndFullBehavior) {
  LogLineRing ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.TryPush("line" + std::to_string(i)));
  }
  std::string overflow = "overflow";
  EXPECT_FALSE(ring.TryPush(std::move(overflow)));
  EXPECT_EQ(overflow, "overflow");  // full push leaves the line untouched
  std::string out;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, "line" + std::to_string(i));
  }
  EXPECT_FALSE(ring.TryPop(&out));
}

TEST(AccessLogTest, ConcurrentWritersEveryLineIsWellFormed) {
  std::mutex mu;
  std::vector<std::string> captured;
  AccessLogOptions options;
  options.ring_capacity = 1 << 14;  // big enough that nothing drops
  options.flush_interval_ms = 1;
  options.sink = [&](std::string_view line) {
    std::lock_guard<std::mutex> lock(mu);
    captured.emplace_back(line);
  };
  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 2'000;
  {
    AccessLog log(options);
    std::vector<std::thread> writers;
    for (size_t t = 0; t < kThreads; ++t) {
      writers.emplace_back([&log, t] {
        for (size_t i = 0; i < kPerThread; ++i) {
          log.Write("{\"t\":" + std::to_string(t) +
                    ",\"i\":" + std::to_string(i) + "}");
        }
      });
    }
    for (std::thread& w : writers) {
      w.join();
    }
    log.Flush();
    EXPECT_EQ(log.written(), kThreads * kPerThread);
    EXPECT_EQ(log.dropped(), 0u);
  }
  ASSERT_EQ(captured.size(), kThreads * kPerThread);
  std::vector<size_t> next(kThreads, 0);
  for (const std::string& line : captured) {
    ASSERT_FALSE(line.empty());
    ASSERT_EQ(line.back(), '\n');
    Result<JsonValue> doc = ParseJson(line);
    ASSERT_TRUE(doc.ok()) << line;
    // Per-producer order is preserved even though producers interleave.
    const size_t t = doc->Get("t").AsUint();
    ASSERT_LT(t, kThreads);
    EXPECT_EQ(doc->Get("i").AsUint(), next[t]);
    next[t]++;
  }
}

TEST(AccessLogTest, FullRingDropsAndCounts) {
  AccessLogOptions options;
  options.ring_capacity = 4;
  options.flush_interval_ms = 10'000;  // flusher effectively asleep
  AccessLog log(options);
  for (int i = 0; i < 64; ++i) {
    log.Write("{\"i\":" + std::to_string(i) + "}");
  }
  EXPECT_GT(log.dropped(), 0u);
  EXPECT_EQ(log.written() + log.dropped(), 64u);
}

// ---- slow-query log --------------------------------------------------------

TEST(SlowQueryLogTest, BoundedNewestFirst) {
  SlowQueryLog log(3);
  for (int i = 0; i < 5; ++i) {
    SlowQueryEntry entry;
    entry.request_id = "rid" + std::to_string(i);
    entry.dur_ns = static_cast<uint64_t>(i);
    log.Record(std::move(entry));
  }
  EXPECT_EQ(log.captured(), 5u);
  const std::vector<SlowQueryEntry> snapshot = log.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);  // capacity evicted the two oldest
  EXPECT_EQ(snapshot[0].request_id, "rid4");
  EXPECT_EQ(snapshot[2].request_id, "rid2");

  Result<JsonValue> doc = ParseJson(log.RenderJson(123));
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Get("threshold_ns").AsUint(), 123u);
  EXPECT_EQ(doc->Get("captured").AsUint(), 5u);
  EXPECT_EQ(doc->Get("entries").AsArray().size(), 3u);
}

// ---- windowed telemetry ----------------------------------------------------

TEST(ServerTelemetryTest, WindowedRatesAndBurn) {
  TelemetryOptions options;
  options.window_ns = 1'000;
  options.num_windows = 4;
  options.latency_slo_ns = 100;
  options.latency_slo_quantile = 0.99;
  options.availability_slo = 0.999;
  ServerTelemetry telemetry(options);

  // 8 requests in window 0: one 500, one 429, two 206, one over-SLO.
  uint64_t now = 10;
  for (int i = 0; i < 4; ++i) {
    telemetry.RecordRequest(200, 50, now);
  }
  telemetry.RecordRequest(500, 50, now);
  telemetry.RecordRequest(429, 10, now);
  telemetry.RecordRequest(206, 60, now);
  telemetry.RecordRequest(206, 500, now);  // also over the 100ns SLO

  WindowedStats stats = telemetry.Compute(now);
  EXPECT_EQ(stats.requests, 8u);
  EXPECT_DOUBLE_EQ(stats.error_rate, 1.0 / 8);
  EXPECT_DOUBLE_EQ(stats.shed_rate, 1.0 / 8);
  EXPECT_DOUBLE_EQ(stats.degraded_rate, 2.0 / 8);
  EXPECT_DOUBLE_EQ(stats.over_latency_slo_rate, 1.0 / 8);
  // availability burn = (1/8) / (1 - 0.999) = 125x the budget.
  EXPECT_NEAR(stats.availability_burn_rate, 125.0, 1e-9);
  // latency burn = (1/8) / (1 - 0.99) = 12.5x.
  EXPECT_NEAR(stats.latency_burn_rate, 12.5, 1e-9);

  // After the horizon passes, the window is clean: old badness does not
  // haunt today's gauges.
  now += options.window_ns * options.num_windows;
  stats = telemetry.Compute(now);
  EXPECT_EQ(stats.requests, 0u);
  EXPECT_DOUBLE_EQ(stats.error_rate, 0.0);

  std::string page;
  telemetry.AppendWindowedMetrics(&page, now);
  EXPECT_NE(page.find("loggrep_window_requests"), std::string::npos);
  EXPECT_NE(page.find("loggrep_slo_availability_burn_rate"),
            std::string::npos);
}

TEST(BuildInfoTest, MetricsAndJsonFragments) {
  std::string metrics;
  AppendBuildInfoMetrics(&metrics);
  EXPECT_NE(metrics.find("loggrep_build_info{version=\""), std::string::npos);
  EXPECT_NE(metrics.find("git_sha=\""), std::string::npos);
  EXPECT_NE(metrics.find("loggrep_process_uptime_seconds"),
            std::string::npos);

  std::string json = "{";
  AppendBuildInfoJsonFields(&json);
  json.push_back('}');
  Result<JsonValue> doc = ParseJson(json);
  ASSERT_TRUE(doc.ok()) << json;
  EXPECT_EQ(doc->Get("version").AsString(), BuildVersion());
}

// ---- end-to-end against a live daemon -------------------------------------

class TelemetryServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (std::filesystem::temp_directory_path() /
             ("loggrep_telemetry_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                .string();
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);

    DatasetSpec spec = AllDatasets().front();
    spec.seed = 42 * 1000003 + 1;  // the SLO harness's block-0 stream
    LogGenerator gen(spec);
    Result<LogArchive> archive = LogArchive::Create(root_ + "/arch", {});
    ASSERT_TRUE(archive.ok()) << archive.status().ToString();
    ASSERT_TRUE(archive->AppendBlock(gen.GenerateLines(300)).ok());
    // Pick a suite command that actually touches the block: a command whose
    // keywords the manifest prunes would make every stats field legitimately
    // zero, which is not what these tests are about.
    for (const std::string& cmd : QuerySuiteForDataset(spec.name)) {
      Result<ArchiveQueryResult> probe = archive->Query(cmd);
      if (probe.ok() && probe->blocks_queried > 0) {
        command_ = cmd;
        break;
      }
    }
    ASSERT_FALSE(command_.empty()) << "no suite command survives pruning";
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  DaemonOptions BaseOptions() {
    DaemonOptions options;
    options.service.root = root_;
    options.num_threads = 6;
    return options;
  }

  std::string root_;
  std::string command_;
};

TEST_F(TelemetryServerTest, RequestIdEchoedMintedAndJoinsTheLogs) {
  std::mutex mu;
  std::vector<std::string> lines;
  DaemonOptions options = BaseOptions();
  options.access_log.flush_interval_ms = 1;
  options.access_log.sink = [&](std::string_view line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.emplace_back(line);
  };
  options.slow_query_threshold_ns = 1;  // everything is "slow": capture all
  LoggrepDaemon daemon(std::move(options));
  Result<uint16_t> port = daemon.Start();
  ASSERT_TRUE(port.ok()) << port.status().ToString();

  DaemonClient client("127.0.0.1", *port);
  // Caller-supplied id round-trips.
  RemoteQueryOptions qopts;
  qopts.request_id = "my-request-0001";
  Result<RemoteQueryResult> r = client.Query("arch", command_, qopts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->http_status, 200);
  EXPECT_EQ(r->request_id, "my-request-0001");

  // Daemon-minted id comes back non-empty on every endpoint.
  Result<ParsedResponse> health = client.Get("/healthz");
  ASSERT_TRUE(health.ok());
  ASSERT_NE(health->headers.find("x-request-id"), health->headers.end());
  EXPECT_FALSE(health->headers.at("x-request-id").empty());

  daemon.Shutdown();  // flushes the access log

  // The access log line for the query joins on rid and rid64.
  const uint64_t rid64 = RequestIdHash("my-request-0001");
  bool found = false;
  {
    std::lock_guard<std::mutex> lock(mu);
    for (const std::string& line : lines) {
      Result<JsonValue> doc = ParseJson(line);
      ASSERT_TRUE(doc.ok()) << line;
      if (doc->Get("rid").AsString() == "my-request-0001") {
        found = true;
        EXPECT_EQ(doc->Get("rid64").AsString(), std::to_string(rid64));
        EXPECT_EQ(doc->Get("path").AsString(), "/query");
        EXPECT_EQ(doc->Get("archive").AsString(), "arch");
        EXPECT_EQ(doc->Get("status").AsUint(), 200u);
        EXPECT_GT(doc->Get("dur_ns").AsUint(), 0u);
        EXPECT_GT(doc->Get("blocks_queried").AsUint(), 0u);
      }
    }
  }
  EXPECT_TRUE(found) << "query line missing from the access log";

  // The slow-query log captured it too (threshold 1 ns), same join key.
  const std::vector<SlowQueryEntry> slow = daemon.slow_log().Snapshot();
  ASSERT_FALSE(slow.empty());
  bool slow_found = false;
  for (const SlowQueryEntry& entry : slow) {
    if (entry.request_id == "my-request-0001") {
      slow_found = true;
      EXPECT_EQ(entry.rid64, rid64);
      EXPECT_EQ(entry.archive, "arch");
      EXPECT_EQ(entry.command, command_);
      EXPECT_FALSE(entry.explain_render.empty());
    }
  }
  EXPECT_TRUE(slow_found);
}

TEST_F(TelemetryServerTest, AccessLogWellFormedUnderConcurrentKeepAlive) {
  std::mutex mu;
  std::vector<std::string> lines;
  DaemonOptions options = BaseOptions();
  options.access_log.flush_interval_ms = 1;
  options.access_log.sink = [&](std::string_view line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.emplace_back(line);
  };
  LoggrepDaemon daemon(std::move(options));
  Result<uint16_t> port = daemon.Start();
  ASSERT_TRUE(port.ok()) << port.status().ToString();

  constexpr size_t kClients = 4;
  constexpr size_t kRequests = 30;
  std::atomic<size_t> failures{0};
  std::vector<std::thread> threads;
  for (size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      DaemonClient client("127.0.0.1", *port);  // one keep-alive connection
      for (size_t i = 0; i < kRequests; ++i) {
        RemoteQueryOptions qopts;
        qopts.request_id =
            "c" + std::to_string(c) + "-" + std::to_string(i);
        Result<RemoteQueryResult> r = client.Query("arch", command_, qopts);
        if (!r.ok() || r->http_status != 200) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  daemon.Shutdown();
  EXPECT_EQ(failures.load(), 0u);

  // Every line the concurrent handlers emitted is one complete JSON object
  // with the full field set — no torn, interleaved, or truncated lines.
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_GE(lines.size(), kClients * kRequests);
  size_t query_lines = 0;
  for (const std::string& line : lines) {
    Result<JsonValue> doc = ParseJson(line);
    ASSERT_TRUE(doc.ok()) << line;
    for (const char* field :
         {"ts_ms", "rid", "rid64", "method", "path", "status", "bytes",
          "dur_ns", "stage_ns", "degraded", "shed"}) {
      EXPECT_FALSE(doc->Get(field).is_null()) << field << " in " << line;
    }
    if (doc->Get("path").AsString() == "/query") {
      query_lines++;
    }
  }
  EXPECT_EQ(query_lines, kClients * kRequests);
}

TEST_F(TelemetryServerTest, StatuszSlowEndpointAndWindowedMetrics) {
  DaemonOptions options = BaseOptions();
  options.slow_query_threshold_ns = 1;
  LoggrepDaemon daemon(std::move(options));
  Result<uint16_t> port = daemon.Start();
  ASSERT_TRUE(port.ok()) << port.status().ToString();

  DaemonClient client("127.0.0.1", *port);
  Result<RemoteQueryResult> r = client.Query("arch", command_);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->http_status, 200);

  Result<ParsedResponse> statusz = client.Get("/statusz");
  ASSERT_TRUE(statusz.ok());
  EXPECT_EQ(statusz->status, 200);
  for (const char* needle :
       {"loggrepd statusz", "uptime", "archives_open", "rolling window",
        "latency p99", "slo burn", "slow_queries"}) {
    EXPECT_NE(statusz->body.find(needle), std::string::npos)
        << needle << " missing from:\n"
        << statusz->body;
  }

  Result<ParsedResponse> slow = client.Get("/debug/slow");
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(slow->status, 200);
  Result<JsonValue> slow_doc = ParseJson(slow->body);
  ASSERT_TRUE(slow_doc.ok()) << slow->body;
  EXPECT_GE(slow_doc->Get("captured").AsUint(), 1u);
  const auto& entries = slow_doc->Get("entries").AsArray();
  ASSERT_FALSE(entries.empty());
  EXPECT_FALSE(entries[0].Get("explain").AsString().empty());

  Result<ParsedResponse> metrics = client.Get("/metrics");
  ASSERT_TRUE(metrics.ok());
  for (const char* needle :
       {"loggrep_window_requests", "loggrep_window_request_p99_ns",
        "loggrep_slo_availability_burn_rate", "loggrep_build_info{",
        "loggrep_process_uptime_seconds", "loggrep_access_log_dropped",
        "loggrep_server_request_ns_p99"}) {
    EXPECT_NE(metrics->body.find(needle), std::string::npos)
        << needle << " missing from /metrics";
  }
}

TEST_F(TelemetryServerTest, AccessLogFileIsWritten) {
  DaemonOptions options = BaseOptions();
  options.access_log.path = root_ + "/access.log";
  options.access_log.flush_interval_ms = 1;
  LoggrepDaemon daemon(std::move(options));
  Result<uint16_t> port = daemon.Start();
  ASSERT_TRUE(port.ok()) << port.status().ToString();
  DaemonClient client("127.0.0.1", *port);
  ASSERT_TRUE(client.Query("arch", command_).ok());
  daemon.Shutdown();

  std::ifstream in(root_ + "/access.log");
  ASSERT_TRUE(in.good());
  std::string line;
  size_t parsed = 0;
  while (std::getline(in, line)) {
    ASSERT_TRUE(ParseJson(line).ok()) << line;
    parsed++;
  }
  EXPECT_GE(parsed, 1u);
}

}  // namespace
}  // namespace loggrep
