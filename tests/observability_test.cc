// Tests for the observability layer: log2-bucketed histograms, the span
// tracer (nesting, cross-thread stitching, ring overflow, Chrome JSON
// export), the metrics exporters (golden output), MetricsRegistry::Reset,
// and the query explain accounting invariant
//   pruned + cached + decompressed == visited
// across every production dataset and at the archive level.
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/histogram.h"
#include "src/common/metrics.h"
#include "src/common/metrics_export.h"
#include "src/common/thread_pool.h"
#include "src/common/trace.h"
#include "src/core/engine.h"
#include "src/query/explain.h"
#include "src/store/log_archive.h"
#include "src/workload/datasets.h"
#include "src/workload/loggen.h"
#include "src/workload/queries.h"

namespace loggrep {
namespace {

// ---- histogram bucket math --------------------------------------------------------

TEST(HistogramTest, BucketLayout) {
  EXPECT_EQ(Histogram::BucketFor(0), 0u);
  EXPECT_EQ(Histogram::BucketFor(1), 1u);
  EXPECT_EQ(Histogram::BucketFor(2), 2u);
  EXPECT_EQ(Histogram::BucketFor(3), 2u);
  EXPECT_EQ(Histogram::BucketFor(4), 3u);
  EXPECT_EQ(Histogram::BucketFor((uint64_t{1} << 62) - 1), 62u);
  EXPECT_EQ(Histogram::BucketFor(uint64_t{1} << 62), 63u);
  EXPECT_EQ(Histogram::BucketFor(UINT64_MAX), 63u);

  // Bounds round-trip: every bucket contains both of its own bounds.
  for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
    EXPECT_EQ(Histogram::BucketFor(Histogram::BucketLowerBound(b)), b) << b;
    EXPECT_EQ(Histogram::BucketFor(Histogram::BucketUpperBound(b)), b) << b;
  }
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(63), UINT64_MAX);
}

TEST(HistogramTest, EmptySnapshotIsAllZero) {
  Histogram h;
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0u);
  EXPECT_EQ(snap.max, 0u);
  EXPECT_EQ(snap.Percentile(50), 0u);
  EXPECT_EQ(snap.Percentile(99), 0u);
  EXPECT_EQ(snap.mean(), 0.0);
}

TEST(HistogramTest, ZeroValuesLandInBucketZero) {
  Histogram h;
  h.Record(0);
  h.Record(0);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.max, 0u);
  EXPECT_EQ(snap.p50(), 0u);
  EXPECT_EQ(snap.p99(), 0u);
}

TEST(HistogramTest, PercentilesInterpolateAndClampToMax) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) {
    h.Record(v);
  }
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_EQ(snap.sum, 5050u);
  EXPECT_EQ(snap.max, 100u);
  // p50 rank is 50; values 1..63 fill buckets 1..6 (cumulative 63 at le=63),
  // so the estimate must sit inside bucket 6's range [32, 63].
  const uint64_t p50 = snap.p50();
  EXPECT_GE(p50, 32u);
  EXPECT_LE(p50, 63u);
  // p99 rank is 99, landing in bucket 7 ([64, 127]) but clamped to max=100.
  const uint64_t p99 = snap.p99();
  EXPECT_GE(p99, 64u);
  EXPECT_LE(p99, 100u);
  // Percentiles are monotone in q and never exceed the observed max.
  EXPECT_LE(snap.Percentile(0), snap.p50());
  EXPECT_LE(snap.p50(), snap.p90());
  EXPECT_LE(snap.p90(), snap.p99());
  EXPECT_LE(snap.Percentile(100), snap.max);
}

TEST(HistogramTest, OverflowBucketCannotInventValues) {
  Histogram h;
  h.Record(uint64_t{1} << 62);
  h.Record(UINT64_MAX);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.buckets[63], 2u);
  EXPECT_EQ(snap.max, UINT64_MAX);
  // Both records live in the overflow bucket; estimates stay within
  // [lower bound of the bucket, observed max].
  EXPECT_GE(snap.p50(), uint64_t{1} << 62);
  EXPECT_LE(snap.p50(), UINT64_MAX);
  EXPECT_LE(snap.p99(), snap.max);
}

TEST(HistogramTest, ConcurrentRecordLosesNothing) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 1; i <= kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(i));
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.sum, static_cast<uint64_t>(kThreads) * kPerThread *
                          (kPerThread + 1) / 2);
  EXPECT_EQ(snap.max, static_cast<uint64_t>(kPerThread));
  uint64_t bucket_total = 0;
  for (uint64_t b : snap.buckets) {
    bucket_total += b;
  }
  EXPECT_EQ(bucket_total, snap.count);
}

// ---- registry reset ---------------------------------------------------------------

TEST(MetricsRegistryTest, ResetZeroesCellsButKeepsHandles) {
  MetricsRegistry registry;
  Counter* c = registry.GetOrCreate("test.counter");
  Histogram* h = registry.GetOrCreateHistogram("test.hist_ns");
  c->Add(7);
  h->Record(42);
  ASSERT_EQ(c->value(), 7u);
  ASSERT_EQ(h->Snapshot().count, 1u);

  registry.Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->Snapshot().count, 0u);
  EXPECT_EQ(h->Snapshot().sum, 0u);
  EXPECT_EQ(h->Snapshot().max, 0u);

  // Handles stay live and re-registering returns the same cells.
  c->Increment();
  h->Record(3);
  EXPECT_EQ(registry.GetOrCreate("test.counter"), c);
  EXPECT_EQ(registry.GetOrCreateHistogram("test.hist_ns"), h);
  EXPECT_EQ(registry.Snapshot().at("test.counter"), 1u);
  EXPECT_EQ(registry.HistogramSnapshots().at("test.hist_ns").count, 1u);
}

// ---- exporter goldens -------------------------------------------------------------

TEST(MetricsExportTest, PrometheusGolden) {
  MetricsRegistry registry;
  registry.GetOrCreate("a.count")->Add(1);
  registry.GetOrCreate("b.count")->Add(3);
  Histogram* h = registry.GetOrCreateHistogram("lat_ns");
  h->Record(1);  // bucket 1, le=1
  h->Record(3);  // bucket 2, le=3
  const std::string expected =
      "# TYPE loggrep_a_count counter\n"
      "loggrep_a_count 1\n"
      "# TYPE loggrep_b_count counter\n"
      "loggrep_b_count 3\n"
      "# TYPE loggrep_lat_ns histogram\n"
      "loggrep_lat_ns_bucket{le=\"1\"} 1\n"
      "loggrep_lat_ns_bucket{le=\"3\"} 2\n"
      "loggrep_lat_ns_bucket{le=\"+Inf\"} 2\n"
      "loggrep_lat_ns_sum 4\n"
      "loggrep_lat_ns_count 2\n"
      "# TYPE loggrep_lat_ns_p50 gauge\n"
      "loggrep_lat_ns_p50 1\n"
      "# TYPE loggrep_lat_ns_p99 gauge\n"
      "loggrep_lat_ns_p99 3\n"
      "# TYPE loggrep_lat_ns_p999 gauge\n"
      "loggrep_lat_ns_p999 3\n";
  EXPECT_EQ(ExportPrometheus(registry), expected);
}

TEST(MetricsExportTest, JsonGolden) {
  MetricsRegistry registry;
  registry.GetOrCreate("a.count")->Add(1);
  registry.GetOrCreate("b.count")->Add(3);
  Histogram* h = registry.GetOrCreateHistogram("lat_ns");
  h->Record(1);
  h->Record(3);
  // p50: rank 1 falls in bucket 1 whose range degenerates to [1,1] -> 1.
  // p90/p95/p99: rank 2 falls in bucket 2, interpolated to hi=min(3,max)=3.
  const std::string expected =
      "{\"counters\":{\"a.count\":1,\"b.count\":3},"
      "\"histograms\":{\"lat_ns\":{\"count\":2,\"sum\":4,\"max\":3,"
      "\"p50\":1,\"p90\":3,\"p95\":3,\"p99\":3,\"p999\":3}}}";
  EXPECT_EQ(ExportJson(registry), expected);
}

TEST(MetricsExportTest, EmptyRegistry) {
  MetricsRegistry registry;
  EXPECT_EQ(ExportPrometheus(registry), "");
  EXPECT_EQ(ExportJson(registry), "{\"counters\":{},\"histograms\":{}}");
}

// ---- tracer -----------------------------------------------------------------------

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().Clear();
    Tracer::Global().Enable(true);
  }
  void TearDown() override {
    Tracer::Global().Enable(false);
    Tracer::Global().Clear();
  }

  static const TraceEvent* Find(const std::vector<TraceEvent>& events,
                                const char* name) {
    for (const TraceEvent& e : events) {
      if (e.name != nullptr && std::string_view(e.name) == name) {
        return &e;
      }
    }
    return nullptr;
  }
};

TEST_F(TraceTest, NestedSpansRecordParents) {
  uint64_t outer_id = 0;
  uint64_t inner_id = 0;
  {
    TraceSpan outer("test.outer", "test");
    ASSERT_TRUE(outer.active());
    outer_id = outer.span_id();
    {
      TraceSpan inner("test.inner", "test");
      inner_id = inner.span_id();
      EXPECT_NE(inner_id, outer_id);
    }
  }
  const std::vector<TraceEvent> events = Tracer::Global().Snapshot();
  const TraceEvent* outer = Find(events, "test.outer");
  const TraceEvent* inner = Find(events, "test.inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->parent_id, 0u);
  EXPECT_EQ(inner->parent_id, outer_id);
  EXPECT_EQ(inner->span_id, inner_id);
  EXPECT_EQ(outer->tid, inner->tid);
  // The inner span is fully contained in the outer one.
  EXPECT_GE(inner->start_ns, outer->start_ns);
  EXPECT_LE(inner->start_ns + inner->dur_ns, outer->start_ns + outer->dur_ns);
}

TEST_F(TraceTest, SpansAreInertWhenDisabled) {
  Tracer::Global().Enable(false);
  {
    TraceSpan span("test.disabled", "test");
    EXPECT_FALSE(span.active());
    EXPECT_EQ(span.span_id(), 0u);
  }
  EXPECT_EQ(Tracer::Global().size(), 0u);
}

TEST_F(TraceTest, CrossThreadStitchingThroughThreadPool) {
  const uint32_t main_tid = Tracer::CurrentThreadId();
  uint64_t outer_id = 0;
  {
    TraceSpan outer("test.submit_root", "test");
    outer_id = outer.span_id();
    ThreadPool pool(2);
    for (int i = 0; i < 4; ++i) {
      pool.Submit([] { TraceSpan worker("test.worker_span", "test"); });
    }
    pool.Wait();
  }
  const std::vector<TraceEvent> events = Tracer::Global().Snapshot();
  size_t workers = 0;
  for (const TraceEvent& e : events) {
    if (e.name != nullptr && std::string_view(e.name) == "test.worker_span") {
      ++workers;
      // Stitched: the worker span's parent is the submitting span even
      // though it ran on a pool thread.
      EXPECT_EQ(e.parent_id, outer_id);
      EXPECT_NE(e.tid, main_tid);
    }
  }
  EXPECT_EQ(workers, 4u);
}

TEST_F(TraceTest, RingOverflowDropsOldestAndCounts) {
  Tracer tracer(4);
  tracer.Enable(true);
  static const char* kNames[6] = {"e0", "e1", "e2", "e3", "e4", "e5"};
  for (int i = 0; i < 6; ++i) {
    TraceEvent e;
    e.name = kNames[i];
    e.category = "test";
    e.span_id = static_cast<uint64_t>(i + 1);
    tracer.Record(e);
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 2u);
  const std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest two were overwritten; the rest come back oldest first.
  EXPECT_STREQ(events[0].name, "e2");
  EXPECT_STREQ(events[3].name, "e5");
  tracer.Clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

// Brace/bracket balance outside of string literals — a cheap structural
// validity check for the exported JSON.
void ExpectBalancedJson(const std::string& json) {
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip the escaped char
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++braces; break;
      case '}': --braces; break;
      case '[': ++brackets; break;
      case ']': --brackets; break;
      default: break;
    }
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST_F(TraceTest, ChromeJsonExportIsWellFormed) {
  Tracer::Global().SetCurrentThreadName("observability-test-main");
  {
    TraceSpan outer("test.export_root", "test");
    ThreadPool pool(2);
    pool.Submit([] { TraceSpan worker("test.export_worker", "test", "seq", 7); });
    pool.Wait();
  }
  const std::string json = Tracer::Global().ExportChromeJson();
  ExpectBalancedJson(json);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // thread names
  // The worker span's parent lives on another thread -> flow arrows.
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("test.export_worker"), std::string::npos);
  EXPECT_NE(json.find("\"seq\":7"), std::string::npos);
  EXPECT_NE(json.find("observability-test-main"), std::string::npos);
}

// ---- explain accounting invariant -------------------------------------------------

TEST(ExplainInvariantTest, HoldsOnEveryProductionDataset) {
  for (const DatasetSpec* spec : ProductionDatasets()) {
    SCOPED_TRACE(spec->name);
    const std::string command = QueryForDataset(spec->name);
    ASSERT_FALSE(command.empty());

    const LogGenerator gen(*spec);
    const std::string text = gen.Generate(48 << 10);
    LogGrepEngine engine;
    const std::string box = engine.CompressBlock(text);

    QueryExplain explain;
    explain.command = command;
    BlockExplain& block = explain.blocks.emplace_back();
    auto result = engine.ExplainQuery(box, command, &block);
    ASSERT_TRUE(result.ok()) << result.status().ToString();

    std::string detail;
    EXPECT_TRUE(explain.CheckInvariant(&detail)) << detail;
    const ExplainTotals totals = explain.Totals();
    EXPECT_GT(totals.visited, 0u);
    EXPECT_EQ(totals.pruned + totals.cached + totals.decompressed,
              totals.visited);
    // Cold engine, one execution: the explain record's decompression
    // accounting must agree with the locator's own cost accounting.
    EXPECT_EQ(totals.decompressed, result->locator.capsules_decompressed);
    EXPECT_EQ(totals.bytes_decompressed, result->locator.bytes_decompressed);
    EXPECT_EQ(block.hits, result->hits.size());

    // Explained execution returns the same hits as a plain query.
    LogGrepEngine fresh;
    auto plain = fresh.Query(box, command);
    ASSERT_TRUE(plain.ok()) << plain.status().ToString();
    EXPECT_EQ(result->hits, plain->hits);

    // The render mentions every fate line and the accounting summary.
    const std::string rendered = explain.Render();
    EXPECT_NE(rendered.find(command), std::string::npos);
  }
}

TEST(ExplainInvariantTest, ExplainBypassesQueryCache) {
  const DatasetSpec* spec = ProductionDatasets().front();
  const LogGenerator gen(*spec);
  const std::string text = gen.Generate(16 << 10);
  const std::string command = QueryForDataset(spec->name);
  LogGrepEngine engine;
  const std::string box = engine.CompressBlock(text);

  // Warm the command cache, then explain: the record must describe a real
  // execution, not a cache hit.
  auto warm = engine.Query(box, command);
  ASSERT_TRUE(warm.ok());
  QueryExplain explain;
  BlockExplain& block = explain.blocks.emplace_back();
  auto result = engine.ExplainQuery(box, command, &block);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->from_cache);
  EXPECT_GT(explain.Totals().visited, 0u);
  std::string detail;
  EXPECT_TRUE(explain.CheckInvariant(&detail)) << detail;
}

class ArchiveExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("loggrep_observability_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(ArchiveExplainTest, PrunedBlocksCarryReasonsAndInvariantHolds) {
  auto archive = LogArchive::Create(dir_);
  ASSERT_TRUE(archive.ok()) << archive.status().ToString();
  std::string block_a;
  std::string block_b;
  for (int i = 0; i < 200; ++i) {
    block_a += "alpha service request widget-" + std::to_string(i) + " ok\n";
    block_b += "omega daemon heartbeat node-" + std::to_string(i) + " ok\n";
  }
  ASSERT_TRUE(archive->AppendBlock(block_a).ok());
  ASSERT_TRUE(archive->AppendBlock(block_b).ok());

  QueryExplain explain;
  auto result = archive->Explain("widget", &explain);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(explain.command, "widget");
  ASSERT_EQ(explain.blocks.size(), 2u);
  EXPECT_EQ(result->blocks_pruned, 1u);
  EXPECT_EQ(result->blocks_queried, 1u);

  size_t pruned_blocks = 0;
  for (const BlockExplain& block : explain.blocks) {
    if (block.block_pruned) {
      ++pruned_blocks;
      EXPECT_FALSE(block.prune_reason.empty());
      EXPECT_NE(block.prune_reason.find("widget"), std::string::npos);
      EXPECT_EQ(block.Totals().visited, 0u);  // never opened
    } else {
      EXPECT_GT(block.Totals().visited, 0u);
    }
  }
  EXPECT_EQ(pruned_blocks, 1u);

  std::string detail;
  EXPECT_TRUE(explain.CheckInvariant(&detail)) << detail;

  // Same hits as the regular (cache-served) query path.
  auto plain = archive->Query("widget");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(result->hits, plain->hits);
  EXPECT_EQ(result->hits.size(), 200u);

  // The rendered tree names the pruned block and balances its ledger.
  const std::string rendered = explain.Render();
  EXPECT_NE(rendered.find("widget"), std::string::npos);
}

TEST_F(ArchiveExplainTest, ParallelQueryTraceStitchesWorkerSpans) {
  auto archive = LogArchive::Create(dir_);
  ASSERT_TRUE(archive.ok()) << archive.status().ToString();
  std::string block_a;
  std::string block_b;
  for (int i = 0; i < 100; ++i) {
    block_a += "statusfine alpha request-" + std::to_string(i) + "\n";
    block_b += "statusfine omega request-" + std::to_string(i) + "\n";
  }
  ASSERT_TRUE(archive->AppendBlock(block_a).ok());
  ASSERT_TRUE(archive->AppendBlock(block_b).ok());

  Tracer::Global().Clear();
  Tracer::Global().Enable(true);
  auto result = archive->ParallelQuery("statusfine", 2);
  Tracer::Global().Enable(false);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->hits.size(), 200u);

  const std::vector<TraceEvent> events = Tracer::Global().Snapshot();
  const TraceEvent* parallel = nullptr;
  for (const TraceEvent& e : events) {
    if (e.name != nullptr &&
        std::string_view(e.name) == "archive.parallel_query") {
      parallel = &e;
    }
  }
  ASSERT_NE(parallel, nullptr);

  size_t stitched_blocks = 0;
  for (const TraceEvent& e : events) {
    if (e.name != nullptr && std::string_view(e.name) == "archive.query_block") {
      // Worker spans nest under the parallel-query span across threads.
      EXPECT_EQ(e.parent_id, parallel->span_id);
      EXPECT_NE(e.tid, parallel->tid);
      ++stitched_blocks;
    }
  }
  EXPECT_EQ(stitched_blocks, 2u);

  const std::string json = Tracer::Global().ExportChromeJson();
  ExpectBalancedJson(json);
  EXPECT_NE(json.find("archive.parallel_query"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("pool-worker-"), std::string::npos);
  Tracer::Global().Clear();
}

}  // namespace
}  // namespace loggrep
