// Unit tests for the fault-tolerant storage layer: StorageEnv backends
// (errno fidelity, fault schedules, torn writes, virtual clock), the retry
// policy (convergence, non-retryable codes, exhaustion, deadline budgets),
// crash-safe fs_util (fsync discipline, tagged temps, sweep liveness), and
// the quarantine sidecar serialization.
#include <sys/stat.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/metrics.h"
#include "src/store/fs_util.h"
#include "src/store/quarantine.h"
#include "src/store/retry.h"
#include "src/store/storage_env.h"

namespace loggrep {
namespace {

class StorageEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("loggrep_env_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  void WriteRaw(const std::string& name, const std::string& data) {
    std::ofstream out(Path(name), std::ios::binary);
    out << data;
  }

  std::string dir_;
};

// Wraps the default env and counts sync calls — the "injectable fsync hook".
class SyncCountingEnv : public StorageEnv {
 public:
  Result<std::string> ReadFile(const std::string& path) override {
    return base_->ReadFile(path);
  }
  Status WriteFile(const std::string& path, std::string_view data) override {
    return base_->WriteFile(path, data);
  }
  Status Rename(const std::string& from, const std::string& to) override {
    ++renames;
    return base_->Rename(from, to);
  }
  Status RemoveFile(const std::string& path) override {
    return base_->RemoveFile(path);
  }
  Status SyncFile(const std::string& path) override {
    ++file_syncs;
    last_file_synced = path;
    return base_->SyncFile(path);
  }
  Status SyncDir(const std::string& dir) override {
    ++dir_syncs;
    // The rename must already have happened when the directory is synced.
    renames_at_dir_sync = renames;
    return base_->SyncDir(dir);
  }
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  uint64_t NowNanos() override { return base_->NowNanos(); }
  void SleepNanos(uint64_t nanos) override { base_->SleepNanos(nanos); }
  const char* name() const override { return "sync-counting"; }

  int file_syncs = 0;
  int dir_syncs = 0;
  int renames = 0;
  int renames_at_dir_sync = -1;
  std::string last_file_synced;

 private:
  StorageEnv* base_ = DefaultStorageEnv();
};

// ---------------------------------------------------------------------------
// Errno fidelity
// ---------------------------------------------------------------------------

TEST_F(StorageEnvTest, MissingFileIsNotFoundNotIOError) {
  auto r = ReadFileBytes(Path("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound)
      << r.status().ToString();
  EXPECT_FALSE(RetryableStatus(r.status().code()));
}

TEST_F(StorageEnvTest, UnreadableFileIsPermissionDenied) {
  if (::geteuid() == 0) {
    GTEST_SKIP() << "running as root: permission bits are not enforced";
  }
  WriteRaw("secret", "classified");
  ASSERT_EQ(::chmod(Path("secret").c_str(), 0), 0);
  auto r = ReadFileBytes(Path("secret"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kPermissionDenied)
      << r.status().ToString();
  EXPECT_FALSE(RetryableStatus(r.status().code()));
  ::chmod(Path("secret").c_str(), 0644);
}

TEST_F(StorageEnvTest, RoundTripReadWrite) {
  const std::string payload(100000, 'x');
  ASSERT_TRUE(WriteFileBytes(Path("f"), payload).ok());
  auto r = ReadFileBytes(Path("f"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, payload);
}

// ---------------------------------------------------------------------------
// WriteFileAtomic: fsync discipline + crash hygiene
// ---------------------------------------------------------------------------

TEST_F(StorageEnvTest, WriteFileAtomicSyncsFileBeforeRenameAndDirAfter) {
  SyncCountingEnv env;
  ASSERT_TRUE(WriteFileAtomic(Path("manifest"), "data-v1", &env).ok());
  EXPECT_GE(env.file_syncs, 1);               // temp fsynced...
  EXPECT_EQ(env.renames, 1);                  // ...then renamed...
  EXPECT_GE(env.dir_syncs, 1);                // ...then the directory entry
  EXPECT_EQ(env.renames_at_dir_sync, 1);      // dir sync strictly after rename
  // The temp (not the final name) is what got synced pre-rename.
  EXPECT_NE(env.last_file_synced.find(".tmp"), std::string::npos);
  auto r = ReadFileBytes(Path("manifest"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "data-v1");
}

TEST_F(StorageEnvTest, WriteFileAtomicFailedWriteLeavesOldFileAndNoTemp) {
  ASSERT_TRUE(WriteFileAtomic(Path("manifest"), "old").ok());
  FaultOptions fo;
  fo.virtual_clock = false;
  FaultInjectingStorageEnv env(fo);
  env.FailNext(StorageOp::kWrite, 1, StatusCode::kIOError);
  Status s = WriteFileAtomic(Path("manifest"), "new", &env);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  auto r = ReadFileBytes(Path("manifest"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "old");
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().string().find(".tmp"), std::string::npos)
        << entry.path();
  }
}

TEST_F(StorageEnvTest, TornWriteNeverReachesTheCommittedName) {
  ASSERT_TRUE(WriteFileAtomic(Path("manifest"), "committed-v1").ok());
  FaultOptions fo;
  fo.seed = 7;
  fo.write_fail_p = 1.0;
  fo.torn_write_p = 1.0;
  fo.fault_code = StatusCode::kIOError;
  fo.virtual_clock = false;
  FaultInjectingStorageEnv env(fo);
  const std::string big(4096, 'Z');
  Status s = WriteFileAtomic(Path("manifest"), big, &env);
  ASSERT_FALSE(s.ok());
  EXPECT_GE(env.torn_writes(), 1u);
  // The torn prefix landed (if anywhere) in a temp, never over the committed
  // name; the failed-write cleanup then removed the temp.
  auto r = ReadFileBytes(Path("manifest"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "committed-v1");
}

// ---------------------------------------------------------------------------
// Tagged temps + sweep liveness
// ---------------------------------------------------------------------------

TEST_F(StorageEnvTest, MakeTempPathEmbedsPidAndUniqueNonce) {
  const std::string a = MakeTempPath(Path("file"));
  const std::string b = MakeTempPath(Path("file"));
  EXPECT_NE(a, b);
  const std::string pid = std::to_string(::getpid());
  EXPECT_NE(a.find("." + pid + "-"), std::string::npos) << a;
  EXPECT_EQ(a.compare(a.size() - 4, 4, ".tmp"), 0) << a;
}

TEST_F(StorageEnvTest, SweepSkipsLiveTempsAndReapsDeadOnes) {
  // 1. Legacy bare temp: crash dropping, swept.
  WriteRaw("block-1.lgc.tmp", "legacy");
  // 2. This process, registered live (in-flight write): must survive.
  ScopedTempFile live(Path("block-2.lgc"));
  WriteRaw(std::filesystem::path(live.path()).filename().string(), "live");
  ASSERT_TRUE(TempFileIsLive(live.path()));
  // 3. This process, *not* registered: an abandoned temp from a past
  //    incarnation with a recycled pid — crash dropping, swept.
  WriteRaw("block-3.lgc." + std::to_string(::getpid()) + "-99.tmp", "stale");
  // 4. Another live process (pid 1 always exists): in-flight, must survive.
  WriteRaw("block-4.lgc.1-0.tmp", "other-live");
  // 5. A pid that cannot exist (beyond pid_max): dead owner, swept.
  WriteRaw("block-5.lgc.2147483647-0.tmp", "dead-owner");

  const std::vector<std::string> removed = SweepTempFiles(dir_);
  EXPECT_EQ(removed.size(), 3u);
  EXPECT_FALSE(std::filesystem::exists(Path("block-1.lgc.tmp")));
  EXPECT_TRUE(std::filesystem::exists(live.path()));
  EXPECT_FALSE(std::filesystem::exists(
      Path("block-3.lgc." + std::to_string(::getpid()) + "-99.tmp")));
  EXPECT_TRUE(std::filesystem::exists(Path("block-4.lgc.1-0.tmp")));
  EXPECT_FALSE(std::filesystem::exists(Path("block-5.lgc.2147483647-0.tmp")));
}

TEST_F(StorageEnvTest, TempLivenessEndsWithTheGuard) {
  std::string temp_path;
  {
    ScopedTempFile guard(Path("block.lgc"));
    temp_path = guard.path();
    EXPECT_TRUE(TempFileIsLive(temp_path));
  }
  EXPECT_FALSE(TempFileIsLive(temp_path));
}

// ---------------------------------------------------------------------------
// Fault schedules
// ---------------------------------------------------------------------------

TEST_F(StorageEnvTest, FailNextFailsExactlyNOperations) {
  WriteRaw("f", "payload");
  FaultInjectingStorageEnv env(FaultOptions{});
  env.FailNext(StorageOp::kRead, 2, StatusCode::kUnavailable);
  EXPECT_EQ(env.ReadFile(Path("f")).status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(env.ReadFile(Path("f")).status().code(), StatusCode::kUnavailable);
  auto ok = env.ReadFile(Path("f"));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, "payload");
  EXPECT_EQ(env.faults_injected(), 2u);
}

TEST_F(StorageEnvTest, FailNthFailsTheScheduledCallOnly) {
  WriteRaw("f", "payload");
  FaultInjectingStorageEnv env(FaultOptions{});
  env.FailNth(StorageOp::kRead, 3, StatusCode::kIOError);  // EIO on 3rd read
  EXPECT_TRUE(env.ReadFile(Path("f")).ok());
  EXPECT_TRUE(env.ReadFile(Path("f")).ok());
  EXPECT_EQ(env.ReadFile(Path("f")).status().code(), StatusCode::kIOError);
  EXPECT_TRUE(env.ReadFile(Path("f")).ok());
}

TEST_F(StorageEnvTest, PermanentFaultDominatesUntilCleared) {
  WriteRaw("block-0.lgc", "bytes");
  WriteRaw("other", "bytes");
  FaultInjectingStorageEnv env(FaultOptions{});
  env.AddPermanentFault("block-0", StatusCode::kIOError);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(env.ReadFile(Path("block-0.lgc")).status().code(),
              StatusCode::kIOError);
  }
  EXPECT_TRUE(env.ReadFile(Path("other")).ok());
  env.ClearPermanentFaults();
  EXPECT_TRUE(env.ReadFile(Path("block-0.lgc")).ok());
}

TEST_F(StorageEnvTest, ProbabilisticFaultsAreSeededDeterministic) {
  WriteRaw("f", "payload");
  auto run = [this](uint64_t seed) {
    FaultOptions fo;
    fo.seed = seed;
    fo.read_fail_p = 0.5;
    FaultInjectingStorageEnv env(fo);
    std::string pattern;
    for (int i = 0; i < 32; ++i) {
      pattern += env.ReadFile(Path("f")).ok() ? 'o' : 'x';
    }
    return pattern;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));  // astronomically unlikely to collide
}

TEST_F(StorageEnvTest, MaxFaultsPerPathMakesStormsTransient) {
  WriteRaw("f", "payload");
  FaultOptions fo;
  fo.read_fail_p = 1.0;
  fo.max_faults_per_path = 2;
  FaultInjectingStorageEnv env(fo);
  EXPECT_FALSE(env.ReadFile(Path("f")).ok());
  EXPECT_FALSE(env.ReadFile(Path("f")).ok());
  EXPECT_TRUE(env.ReadFile(Path("f")).ok());  // cap reached: path healed
}

// ---------------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------------

TEST_F(StorageEnvTest, RetryConvergesOnTransientFaultsInZeroWallTime) {
  WriteRaw("f", "payload");
  FaultInjectingStorageEnv env(FaultOptions{});  // virtual clock on
  env.FailNext(StorageOp::kRead, 2, StatusCode::kUnavailable);
  MetricsRegistry metrics;
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_ns = 50'000'000;  // 50ms — virtual, costs nothing
  policy.max_backoff_ns = 2'000'000'000;
  const uint64_t wall_before = DefaultStorageEnv()->NowNanos();
  auto r = RetryReadFile(&env, policy, nullptr, Path("f"), &metrics);
  const uint64_t wall_spent = DefaultStorageEnv()->NowNanos() - wall_before;
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, "payload");
  EXPECT_EQ(metrics.GetOrCreate("storage.retry.attempts")->value(), 3u);
  EXPECT_EQ(metrics.GetOrCreate("storage.retry.retries")->value(), 2u);
  EXPECT_EQ(metrics.GetOrCreate("storage.retry.success_after_retry")->value(),
            1u);
  EXPECT_GT(metrics.GetOrCreate("storage.retry.backoff_ns")->value(), 0u);
  // Backoff happened on the virtual clock: well under a second of real time.
  EXPECT_LT(wall_spent, 1'000'000'000u);
}

TEST_F(StorageEnvTest, RetryStopsImmediatelyOnDeterministicCodes) {
  for (const StatusCode code :
       {StatusCode::kNotFound, StatusCode::kPermissionDenied,
        StatusCode::kCorruptData}) {
    WriteRaw("f", "payload");
    FaultInjectingStorageEnv env(FaultOptions{});
    env.FailNext(StorageOp::kRead, 1, code);
    MetricsRegistry metrics;
    RetryPolicy policy;
    policy.max_attempts = 5;
    auto r = RetryReadFile(&env, policy, nullptr, Path("f"), &metrics);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), code);
    EXPECT_EQ(metrics.GetOrCreate("storage.retry.attempts")->value(), 1u)
        << StatusCodeName(code);
  }
}

TEST_F(StorageEnvTest, RetryExhaustionReportsAttemptsAndLastError) {
  FaultInjectingStorageEnv env(FaultOptions{});
  env.AddPermanentFault("sick", StatusCode::kIOError);
  MetricsRegistry metrics;
  RetryPolicy policy;
  policy.max_attempts = 3;
  auto r = RetryReadFile(&env, policy, nullptr, Path("sick"), &metrics);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  EXPECT_NE(r.status().message().find("3 attempt(s) exhausted"),
            std::string::npos)
      << r.status().ToString();
  EXPECT_EQ(metrics.GetOrCreate("storage.retry.attempts")->value(), 3u);
  EXPECT_EQ(metrics.GetOrCreate("storage.retry.exhausted")->value(), 1u);
}

TEST_F(StorageEnvTest, RetryBudgetDeadlineCutsTheStormShort) {
  FaultInjectingStorageEnv env(FaultOptions{});  // virtual clock
  env.AddPermanentFault("sick", StatusCode::kUnavailable);
  MetricsRegistry metrics;
  RetryPolicy policy;
  policy.max_attempts = 1000;                  // attempts would run forever...
  policy.initial_backoff_ns = 10'000'000;      // ...10ms backoff each...
  policy.max_backoff_ns = 10'000'000;
  RetryBudget budget(&env, 50'000'000);        // ...but only 50ms of budget
  auto r = RetryReadFile(&env, policy, &budget, Path("sick"), &metrics);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("retry budget exhausted"),
            std::string::npos)
      << r.status().ToString();
  EXPECT_EQ(metrics.GetOrCreate("storage.retry.deadline_exceeded")->value(),
            1u);
  // Far fewer than max_attempts tries fit into the budget.
  EXPECT_LT(metrics.GetOrCreate("storage.retry.attempts")->value(), 20u);
}

TEST_F(StorageEnvTest, RetryBudgetUnlimitedWhenZero) {
  FaultInjectingStorageEnv env(FaultOptions{});
  RetryBudget budget(&env, 0);
  EXPECT_TRUE(budget.unlimited());
  EXPECT_FALSE(budget.Expired());
  EXPECT_EQ(budget.RemainingNanos(), UINT64_MAX);
}

TEST_F(StorageEnvTest, BackoffIsBoundedByPolicyCap) {
  FaultInjectingStorageEnv env(FaultOptions{});
  env.AddPermanentFault("sick", StatusCode::kUnavailable);
  MetricsRegistry metrics;
  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.initial_backoff_ns = 1'000'000;
  policy.max_backoff_ns = 4'000'000;  // tight cap
  (void)RetryReadFile(&env, policy, nullptr, Path("sick"), &metrics);
  const uint64_t slept =
      metrics.GetOrCreate("storage.retry.backoff_ns")->value();
  // 7 sleeps, each in [1ms, 4ms].
  EXPECT_GE(slept, 7u * 1'000'000u);
  EXPECT_LE(slept, 7u * 4'000'000u);
}

// ---------------------------------------------------------------------------
// LatencyStorageEnv
// ---------------------------------------------------------------------------

TEST_F(StorageEnvTest, LatencyEnvChargesPerOpAndPerByte) {
  WriteRaw("f", std::string(1000, 'x'));
  FaultInjectingStorageEnv clock(FaultOptions{});  // virtual clock as base
  LatencyOptions lo;
  lo.per_op_nanos = 1'000'000;      // 1ms RTT
  lo.per_byte_picos = 1'000'000;    // 1us per byte => 1ms for 1000 bytes
  LatencyStorageEnv env(lo, &clock);
  const uint64_t before = clock.NowNanos();
  auto r = env.ReadFile(Path("f"));
  ASSERT_TRUE(r.ok());
  const uint64_t charged = clock.NowNanos() - before;
  EXPECT_GE(charged, 2'000'000u);  // RTT + bandwidth, on the virtual clock
}

// ---------------------------------------------------------------------------
// Quarantine sidecar
// ---------------------------------------------------------------------------

TEST_F(StorageEnvTest, QuarantineJsonRoundTripsEntriesExactly) {
  QuarantineSet set;
  set.Add({3, "IO_ERROR", "fs: read \"weird\\path\"\n\tEIO", false, 1754000000});
  set.Add({1, "UNAVAILABLE", "throttled", true, 0});
  set.Add({7, "CORRUPT_DATA", std::string("nul\0byte", 8), false, 42});
  ASSERT_EQ(set.entries.size(), 3u);
  EXPECT_EQ(set.entries[0].seq, 1u);  // kept sorted

  const std::string json = SerializeQuarantineJson(set);
  auto parsed = ParseQuarantineJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << json;
  ASSERT_EQ(parsed->entries.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(parsed->entries[i].seq, set.entries[i].seq);
    EXPECT_EQ(parsed->entries[i].code, set.entries[i].code);
    EXPECT_EQ(parsed->entries[i].error, set.entries[i].error);
    EXPECT_EQ(parsed->entries[i].tombstoned, set.entries[i].tombstoned);
    EXPECT_EQ(parsed->entries[i].quarantined_unix,
              set.entries[i].quarantined_unix);
  }
}

TEST_F(StorageEnvTest, QuarantineParseRejectsGarbageCleanly) {
  for (const char* bad :
       {"", "{", "not json", "{\"version\":1}", "{\"version\":9,\"blocks\":[]}",
        "{\"version\":1,\"blocks\":[{}]}",
        "{\"version\":1,\"blocks\":[{\"seq\":99999999999}]}",
        "{\"version\":1,\"blocks\":[]}trailing"}) {
    auto parsed = ParseQuarantineJson(bad);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << bad;
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kCorruptData) << bad;
    }
  }
  // Unknown fields are skipped (forward compatibility), not rejected.
  auto ok = ParseQuarantineJson(
      "{\"version\":1,\"future\":{\"a\":[1,2,{\"b\":null}]},"
      "\"blocks\":[{\"seq\":2,\"new_field\":true}]}");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  ASSERT_EQ(ok->entries.size(), 1u);
  EXPECT_EQ(ok->entries[0].seq, 2u);
}

TEST_F(StorageEnvTest, LoadQuarantineMissingFileIsEmptySet) {
  auto loaded = LoadQuarantine(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->empty());
}

TEST_F(StorageEnvTest, SaveQuarantinePersistsAndEmptySetRemovesSidecar) {
  QuarantineSet set;
  set.Add({5, "IO_ERROR", "boom", false, 0});
  ASSERT_TRUE(SaveQuarantine(dir_, set).ok());
  EXPECT_TRUE(std::filesystem::exists(QuarantinePath(dir_)));
  auto loaded = LoadQuarantine(dir_);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->entries.size(), 1u);
  EXPECT_EQ(loaded->entries[0].seq, 5u);

  ASSERT_TRUE(SaveQuarantine(dir_, QuarantineSet{}).ok());
  EXPECT_FALSE(std::filesystem::exists(QuarantinePath(dir_)));
  // Removing again (already healthy) is not an error.
  EXPECT_TRUE(SaveQuarantine(dir_, QuarantineSet{}).ok());
}

TEST_F(StorageEnvTest, QuarantineAddKeepsFirstErrorAndTombstoneState) {
  QuarantineSet set;
  EXPECT_TRUE(set.Add({4, "IO_ERROR", "first cause", true, 100}));
  EXPECT_FALSE(set.Add({4, "UNAVAILABLE", "later cause", false, 200}));
  ASSERT_EQ(set.entries.size(), 1u);
  EXPECT_EQ(set.entries[0].code, "IO_ERROR");
  EXPECT_EQ(set.entries[0].error, "first cause");
  EXPECT_TRUE(set.entries[0].tombstoned);  // re-failure never un-tombstones
  EXPECT_EQ(set.entries[0].quarantined_unix, 100u);
  EXPECT_EQ(set.tombstoned_count(), 1u);
  EXPECT_TRUE(set.Remove(4));
  EXPECT_FALSE(set.Remove(4));
  EXPECT_TRUE(set.empty());
}

TEST_F(StorageEnvTest, PartialReportRenderNamesEveryHole) {
  PartialReport report;
  EXPECT_FALSE(report.partial());
  report.failures.push_back({3, 900, 300, "IO_ERROR: boom", true, false});
  report.failures.push_back({5, 1500, 100, "tomb", false, true});
  EXPECT_TRUE(report.partial());
  EXPECT_EQ(report.lines_missing(), 400u);
  const std::string text = report.Render();
  EXPECT_NE(text.find("block 3"), std::string::npos);
  EXPECT_NE(text.find("[900,1200)"), std::string::npos);
  EXPECT_NE(text.find("newly quarantined"), std::string::npos);
  EXPECT_NE(text.find("tombstoned"), std::string::npos);
}

}  // namespace
}  // namespace loggrep
