// SLO workload harness: Zipf sampler properties and a tiny pinned-seed
// end-to-end run (live daemon + ingest + faults) asserting the
// zero-wrong-answers invariant and a fully populated report.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/workload/slo_harness.h"

namespace loggrep {
namespace {

TEST(ZipfPickerTest, HeadRanksDominate) {
  const size_t n = 16;
  ZipfPicker zipf(n, 1.1);
  ASSERT_EQ(zipf.size(), n);
  // Sweep a deterministic grid of uniforms and histogram the picks: mass
  // must be monotonically non-increasing in rank, with rank 0 strictly
  // hottest (that's the whole point of the skew).
  std::vector<size_t> counts(n, 0);
  const size_t kSamples = 100'000;
  for (size_t i = 0; i < kSamples; ++i) {
    const double u = (i + 0.5) / kSamples;
    const size_t rank = zipf.Pick(u, n);
    ASSERT_LT(rank, n);
    ++counts[rank];
  }
  EXPECT_GT(counts[0], counts[1]);
  for (size_t r = 1; r < n; ++r) {
    EXPECT_GE(counts[r - 1], counts[r]) << "rank " << r;
  }
  // Zipf(1.1) over 16 ranks puts roughly a third of the mass on rank 0.
  EXPECT_GT(counts[0], kSamples / 4);
}

TEST(ZipfPickerTest, LimitRenormalizesOverThePrefix) {
  ZipfPicker zipf(32, 1.1);
  // Every pick respects the published prefix, including u right at the top
  // of the range — the CDF is renormalized, not clamped.
  for (size_t limit = 1; limit <= 32; limit *= 2) {
    EXPECT_EQ(zipf.Pick(0.0, limit), 0u);
    EXPECT_LT(zipf.Pick(0.999999, limit), limit);
    EXPECT_EQ(zipf.Pick(0.999999, 1), 0u);
  }
  // Renormalization shifts mass: a u that lands mid-catalog with the full
  // range must land strictly earlier when only a prefix is published.
  EXPECT_LE(zipf.Pick(0.9, 4), zipf.Pick(0.9, 32));
}

TEST(SloHarnessTest, TinyPinnedRunHasZeroMismatches) {
  // Default corpus shape (the pinned-seed catalog is known to produce
  // non-pruned queries), shrunk drive so the test stays around a second.
  SloHarnessOptions options;
  options.seed = 42;
  options.tenants = 2;
  options.live_archives = 1;
  options.offered_qps = 80;
  options.duration_ms = 1200;
  options.window_ms = 300;
  options.inject_faults = true;
  options.permanent_fault = true;

  Result<SloHarnessReport> report = RunSloHarness(options);
  ASSERT_TRUE(report.ok()) << report.status().message();

  // The zero-tolerance gate: every 200 matched its oracle exactly and every
  // 206 was an ordered subset.
  EXPECT_EQ(report->mismatches, 0u);
  EXPECT_GT(report->requests, 0u);
  EXPECT_EQ(report->ok_200 + report->degraded_206 + report->shed_429 +
                report->errors + report->mismatches,
            report->requests);
  // The permanent fault on archive 0 plus Zipf skew toward it means some
  // queries must have come back degraded.
  EXPECT_GT(report->degraded_206, 0u);
  EXPECT_FALSE(report->windows.empty());
  uint64_t windowed = 0;
  for (const SloWindow& w : report->windows) {
    windowed += w.requests;
  }
  EXPECT_EQ(windowed, report->requests);
  EXPECT_GT(report->blocks_queried, 0u);
  EXPECT_FALSE(report->statusz.empty());
  EXPECT_FALSE(report->ToJson().empty());
}

}  // namespace
}  // namespace loggrep
