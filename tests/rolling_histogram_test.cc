// Rolling-window histogram/counter semantics: rotation at window
// boundaries driven by an explicit virtual clock, horizon expiry, and the
// conservation bound under concurrent observe-while-rotate hammering.
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rolling_histogram.h"

namespace loggrep {
namespace {

constexpr uint64_t kWindow = 1'000;  // ns per window; tiny virtual windows

TEST(RollingHistogramTest, SingleWindowAccumulates) {
  RollingHistogram rolling(4, kWindow);
  rolling.Record(10, 100);
  rolling.Record(20, 500);
  rolling.Record(30, 999);
  const HistogramSnapshot snap = rolling.WindowedSnapshot(999);
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum, 60u);
  EXPECT_EQ(snap.max, 30u);
}

TEST(RollingHistogramTest, RotationAtExactBoundary) {
  RollingHistogram rolling(4, kWindow);
  rolling.Record(1, kWindow - 1);  // window 0, last nanosecond
  rolling.Record(2, kWindow);      // window 1, first nanosecond
  EXPECT_EQ(rolling.WindowSnapshot(kWindow, /*back=*/1).count, 1u);
  EXPECT_EQ(rolling.WindowSnapshot(kWindow, /*back=*/0).count, 1u);
  // The merged view still sees both while both are inside the horizon.
  EXPECT_EQ(rolling.WindowedSnapshot(kWindow).count, 2u);
}

TEST(RollingHistogramTest, OldWindowsExpireFromTheMergedView) {
  RollingHistogram rolling(4, kWindow);
  rolling.Record(5, 0);  // window 0
  // Advance to window 4: slot 0 recycles; window 0 is outside the horizon
  // even before any record reuses its slot.
  EXPECT_EQ(rolling.WindowedSnapshot(4 * kWindow).count, 0u);
  // A quiet period truly empties the view (not "latest non-empty window").
  rolling.Record(7, 4 * kWindow);
  EXPECT_EQ(rolling.WindowedSnapshot(4 * kWindow).count, 1u);
  EXPECT_EQ(rolling.WindowedSnapshot(9 * kWindow).count, 0u);
}

TEST(RollingHistogramTest, SlotRecyclingResetsOldData) {
  RollingHistogram rolling(2, kWindow);
  rolling.Record(100, 0);            // window 0 -> slot 0
  rolling.Record(200, kWindow);      // window 1 -> slot 1
  rolling.Record(300, 2 * kWindow);  // window 2 -> slot 0 recycled
  const HistogramSnapshot snap = rolling.WindowedSnapshot(2 * kWindow);
  // Horizon covers windows 1..2; window 0's 100 must be gone even though
  // its slot was just reused.
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.sum, 500u);
}

TEST(RollingHistogramTest, WindowSnapshotIndexesBackwards) {
  RollingHistogram rolling(8, kWindow);
  for (uint64_t w = 0; w < 5; ++w) {
    rolling.Record(w + 1, w * kWindow + 10);
  }
  const uint64_t now = 4 * kWindow + 20;
  for (size_t back = 0; back < 5; ++back) {
    const HistogramSnapshot snap = rolling.WindowSnapshot(now, back);
    EXPECT_EQ(snap.count, 1u) << "back=" << back;
    EXPECT_EQ(snap.sum, 5 - back) << "back=" << back;
  }
  // Beyond the ring: empty, not garbage.
  EXPECT_EQ(rolling.WindowSnapshot(now, 8).count, 0u);
}

TEST(RollingHistogramTest, StaleClockRecordsDoNotResurrectOldWindows) {
  RollingHistogram rolling(4, kWindow);
  rolling.Record(1, 10 * kWindow);  // window 10 claims slot 2
  // A thread with a stale clock reading tries to record into window 6
  // (same slot). The slot must not rotate *backwards*; the stale record
  // lands in the newer window rather than reviving an expired one.
  rolling.Record(2, 6 * kWindow);
  const HistogramSnapshot snap = rolling.WindowedSnapshot(10 * kWindow);
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.sum, 3u);
}

TEST(RollingCounterTest, WindowedSumRollsOff) {
  RollingCounter counter(3, kWindow);
  counter.Add(5, 0);
  counter.Add(7, kWindow);
  counter.Increment(2 * kWindow);
  EXPECT_EQ(counter.WindowedSum(2 * kWindow), 13u);
  // Window 0 exits the 3-window horizon.
  EXPECT_EQ(counter.WindowedSum(3 * kWindow), 8u);
  EXPECT_EQ(counter.WindowedSum(4 * kWindow), 1u);
  EXPECT_EQ(counter.WindowedSum(5 * kWindow), 0u);
}

// Observe-while-rotate hammering: writers race across window boundaries
// while a reader snapshots continuously. The boundary is documented as
// monitoring-grade — each of the R rotations may lose (or misplace) at most
// a few in-flight records per thread — so totals must be conserved within
// threads * rotations, and nothing may crash, hang, or double-count.
TEST(RollingHistogramTest, ConcurrentObserveWhileRotate) {
  constexpr size_t kThreads = 4;
  constexpr uint64_t kRecordsPerThread = 20'000;
  constexpr uint64_t kRotations = 16;
  RollingHistogram rolling(kRotations + 2, kWindow);
  std::atomic<uint64_t> clock{0};

  std::vector<std::thread> writers;
  for (size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (uint64_t i = 0; i < kRecordsPerThread; ++i) {
        rolling.Record(1, clock.load(std::memory_order_relaxed));
      }
    });
  }
  std::thread rotator([&] {
    for (uint64_t w = 1; w <= kRotations; ++w) {
      clock.store(w * kWindow, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });
  std::thread reader([&] {
    for (int i = 0; i < 1'000; ++i) {
      const uint64_t now = clock.load(std::memory_order_relaxed);
      const HistogramSnapshot snap = rolling.WindowedSnapshot(now);
      ASSERT_LE(snap.count, kThreads * kRecordsPerThread);
    }
  });
  for (std::thread& w : writers) {
    w.join();
  }
  rotator.join();
  reader.join();

  // Every window is still within the horizon (ring is deep enough), so the
  // merged count must conserve the total minus bounded boundary loss.
  const HistogramSnapshot final =
      rolling.WindowedSnapshot(kRotations * kWindow);
  const uint64_t total = kThreads * kRecordsPerThread;
  const uint64_t slack = kThreads * (kRotations + 1);
  EXPECT_LE(final.count, total);
  EXPECT_GE(final.count, total - slack);
}

}  // namespace
}  // namespace loggrep
