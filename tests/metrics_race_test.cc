// Scrape-while-write safety for MetricsRegistry: loggrepd's /metrics
// endpoint scrapes the registry while every connection thread is bumping
// counters and recording histograms. This suite hammers both sides from a
// ThreadPool and asserts the snapshots are coherent:
//
//   * registration races (many threads GetOrCreate the same + distinct
//     names) produce exactly one cell per name and lose no increments;
//   * Snapshot()/ExportPrometheus()/ExportJson() taken mid-storm are always
//     well-formed and monotonically non-decreasing per counter;
//   * the final totals equal exactly what was written (nothing torn, nothing
//     dropped).
//
// Run under TSan (the sanitizer CI job) this is also the data-race proof.
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/json.h"
#include "src/common/metrics.h"
#include "src/common/metrics_export.h"
#include "src/common/thread_pool.h"

namespace loggrep {
namespace {

constexpr size_t kWriters = 8;
constexpr size_t kIncrementsPerWriter = 20'000;
constexpr size_t kScrapes = 200;

TEST(MetricsRace, ScrapeWhileWriteStaysCoherent) {
  MetricsRegistry registry;
  std::atomic<bool> writers_done{false};

  ThreadPool pool(kWriters + 2);  // writers + one scraper of each flavor
  std::atomic<size_t> writers_remaining{kWriters};
  for (size_t w = 0; w < kWriters; ++w) {
    pool.Submit([&registry, &writers_remaining, &writers_done, w] {
      // Shared cells (registration race on the same names) plus a
      // per-writer cell (map growth while scrapes iterate).
      Counter* shared = registry.GetOrCreate("race.shared");
      Counter* hwm = registry.GetOrCreate("race.hwm");
      Histogram* latency = registry.GetOrCreateHistogram("race.latency_ns");
      Counter* mine =
          registry.GetOrCreate("race.writer_" + std::to_string(w));
      for (size_t i = 0; i < kIncrementsPerWriter; ++i) {
        shared->Increment();
        mine->Add(2);
        hwm->UpdateMax(i);
        latency->Record(i % 4096);
      }
      if (writers_remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        writers_done.store(true, std::memory_order_release);
      }
    });
  }

  // Scraper 1: counter snapshots must be monotonic per name (counters are
  // add-only here; a torn read or a lost cell would break the order).
  std::atomic<size_t> snapshot_violations{0};
  pool.Submit([&] {
    std::map<std::string, uint64_t> last;
    for (size_t s = 0; s < kScrapes || !writers_done.load(); ++s) {
      const std::map<std::string, uint64_t> snap = registry.Snapshot();
      for (const auto& [name, value] : snap) {
        if (name == "race.hwm") {
          continue;  // UpdateMax is monotonic too, but tested by totals
        }
        const auto it = last.find(name);
        if (it != last.end() && value < it->second) {
          snapshot_violations.fetch_add(1, std::memory_order_relaxed);
        }
      }
      last = snap;
    }
  });

  // Scraper 2: the text exporters, exactly as /metrics runs them. Every
  // mid-storm export must be structurally sound: JSON parses, the
  // Prometheus text has one value token per sample line.
  std::atomic<size_t> export_violations{0};
  pool.Submit([&] {
    for (size_t s = 0; s < kScrapes || !writers_done.load(); ++s) {
      const std::string json = ExportJson(registry);
      Result<JsonValue> doc = ParseJson(json);
      if (!doc.ok() || !doc->Get("counters").is_object()) {
        export_violations.fetch_add(1, std::memory_order_relaxed);
      }
      const std::string prom = ExportPrometheus(registry);
      size_t pos = 0;
      while (pos < prom.size()) {
        size_t nl = prom.find('\n', pos);
        if (nl == std::string::npos) nl = prom.size();
        const std::string_view line(prom.data() + pos, nl - pos);
        if (!line.empty() && line[0] != '#' &&
            line.find(' ') == std::string_view::npos) {
          export_violations.fetch_add(1, std::memory_order_relaxed);
        }
        pos = nl + 1;
      }
    }
  });

  pool.Wait();

  EXPECT_EQ(snapshot_violations.load(), 0u);
  EXPECT_EQ(export_violations.load(), 0u);

  // Final totals: exact, nothing lost in the storm.
  const std::map<std::string, uint64_t> final_snap = registry.Snapshot();
  EXPECT_EQ(final_snap.at("race.shared"), kWriters * kIncrementsPerWriter);
  EXPECT_EQ(final_snap.at("race.hwm"), kIncrementsPerWriter - 1);
  for (size_t w = 0; w < kWriters; ++w) {
    EXPECT_EQ(final_snap.at("race.writer_" + std::to_string(w)),
              2 * kIncrementsPerWriter)
        << "writer " << w;
  }
  const std::map<std::string, HistogramSnapshot> hists =
      registry.HistogramSnapshots();
  const HistogramSnapshot& latency = hists.at("race.latency_ns");
  EXPECT_EQ(latency.count, kWriters * kIncrementsPerWriter);
  EXPECT_EQ(latency.max, 4095u);

  // Handles survive Reset() and the next round records cleanly — the
  // /metrics endpoint may race a Reset() issued by an operator.
  registry.Reset();
  EXPECT_EQ(registry.Snapshot().at("race.shared"), 0u);
  registry.GetOrCreate("race.shared")->Increment();
  EXPECT_EQ(registry.Snapshot().at("race.shared"), 1u);
}

TEST(MetricsRace, RegistrationRaceYieldsOneCellPerName) {
  MetricsRegistry registry;
  constexpr size_t kThreads = 8;
  std::vector<Counter*> cells(kThreads, nullptr);
  std::vector<Histogram*> hcells(kThreads, nullptr);
  {
    ThreadPool pool(kThreads);
    for (size_t t = 0; t < kThreads; ++t) {
      pool.Submit([&registry, &cells, &hcells, t] {
        cells[t] = registry.GetOrCreate("contended.name");
        hcells[t] = registry.GetOrCreateHistogram("contended.hist");
        cells[t]->Increment();
        hcells[t]->Record(t + 1);
      });
    }
    pool.Wait();
  }
  for (size_t t = 1; t < kThreads; ++t) {
    EXPECT_EQ(cells[t], cells[0]) << "two cells for one name";
    EXPECT_EQ(hcells[t], hcells[0]);
  }
  EXPECT_EQ(registry.Snapshot().at("contended.name"), kThreads);
  EXPECT_EQ(registry.HistogramSnapshots().at("contended.hist").count,
            kThreads);
}

}  // namespace
}  // namespace loggrep
