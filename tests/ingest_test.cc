#include "src/ingest/log_ingestor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/common/metrics.h"
#include "src/parser/template_miner.h"  // SplitLines
#include "src/store/log_archive.h"
#include "src/workload/datasets.h"
#include "src/workload/loggen.h"

namespace loggrep {
namespace {

// ---- metrics registry ------------------------------------------------------

// One registry shared by the registry-focused tests below; Reset() between
// tests replaces the old throwaway-registry-per-test pattern and doubles as
// a check that reset cells stay usable through existing handles.
MetricsRegistry& SharedRegistry() {
  static MetricsRegistry registry;
  registry.Reset();
  return registry;
}

TEST(MetricsRegistryTest, CountersAccumulateAndSnapshot) {
  MetricsRegistry& registry = SharedRegistry();
  Counter* a = registry.GetOrCreate("a");
  Counter* also_a = registry.GetOrCreate("a");
  EXPECT_EQ(a, also_a);  // stable handles
  a->Add(40);
  a->Increment();
  a->Increment();
  registry.GetOrCreate("hwm")->UpdateMax(7);
  registry.GetOrCreate("hwm")->UpdateMax(3);  // lower candidate ignored
  const auto snap = registry.Snapshot();
  EXPECT_EQ(snap.at("a"), 42u);
  EXPECT_EQ(snap.at("hwm"), 7u);
}

TEST(MetricsRegistryTest, CountersAreThreadSafe) {
  MetricsRegistry& registry = SharedRegistry();
  Counter* c = registry.GetOrCreate("shared");
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < 10000; ++i) {
        c->Increment();
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(c->value(), 80000u);
}

// ---- ingestor --------------------------------------------------------------

class LogIngestorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("loggrep_ingest_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    std::filesystem::remove_all(dir_);
    std::filesystem::remove_all(dir_ + "_serial");
  }

  // Multi-dataset corpus with enough variety for selective queries.
  static std::string Corpus() {
    std::string corpus;
    for (const char* name : {"Hdfs", "Ssh", "Log G"}) {
      DatasetSpec spec = *FindDataset(name);
      spec.seed += 31;
      corpus += LogGenerator(spec).Generate(48 * 1024);
    }
    return corpus;
  }

  // Names of regular files currently in the archive dir.
  std::set<std::string> DirFiles() const {
    std::set<std::string> names;
    for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
      if (entry.is_regular_file()) {
        names.insert(entry.path().filename().string());
      }
    }
    return names;
  }

  std::string dir_;
};

TEST_F(LogIngestorTest, MatchesSerialAppendBlockHitForHit) {
  const std::string corpus = Corpus();

  // Pipelined: 4 workers, ~12 small blocks, streamed in 7 KiB chunks.
  IngestOptions options;
  options.target_block_bytes = corpus.size() / 12;
  options.num_workers = 4;
  options.max_in_flight_blocks = 4;
  auto ingestor = LogIngestor::Start(dir_, options);
  ASSERT_TRUE(ingestor.ok()) << ingestor.status().ToString();
  for (size_t off = 0; off < corpus.size(); off += 7 * 1024) {
    const size_t len = std::min<size_t>(7 * 1024, corpus.size() - off);
    ASSERT_TRUE((*ingestor)->Append({corpus.data() + off, len}).ok());
  }
  ASSERT_TRUE((*ingestor)->Finish().ok());
  ASSERT_GE((*ingestor)->archive().blocks().size(), 4u);

  // Serial reference: the whole corpus as one AppendBlock.
  auto serial = LogArchive::Create(dir_ + "_serial");
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(serial->AppendBlock(corpus).ok());

  auto pipelined = LogArchive::Open(dir_);  // reopen: exercises the manifest
  ASSERT_TRUE(pipelined.ok()) << pipelined.status().ToString();
  EXPECT_EQ(pipelined->total_lines(), serial->total_lines());
  EXPECT_EQ(pipelined->total_raw_bytes(), corpus.size());

  for (const std::string& query :
       {std::string("error and blk_884"), std::string("Received block"),
        std::string("Failed password"), std::string("Operation:ReadChunk"),
        std::string("zzzNOSUCH")}) {
    auto want = serial->Query(query);
    auto got = pipelined->Query(query);
    auto got_parallel = pipelined->ParallelQuery(query, 4);
    ASSERT_TRUE(want.ok()) << query;
    ASSERT_TRUE(got.ok()) << query;
    ASSERT_TRUE(got_parallel.ok()) << query;
    ASSERT_EQ(got->hits.size(), want->hits.size()) << query;
    for (size_t i = 0; i < want->hits.size(); ++i) {
      EXPECT_EQ(got->hits[i].first, want->hits[i].first) << query;
      EXPECT_EQ(got->hits[i].second, want->hits[i].second) << query;
    }
    // ParallelQuery must agree hit-for-hit with serial Query too.
    ASSERT_EQ(got_parallel->hits.size(), got->hits.size()) << query;
    for (size_t i = 0; i < got->hits.size(); ++i) {
      EXPECT_EQ(got_parallel->hits[i].first, got->hits[i].first) << query;
      EXPECT_EQ(got_parallel->hits[i].second, got->hits[i].second) << query;
    }
  }
}

TEST_F(LogIngestorTest, CutsAreEntryAlignedAndExhaustive) {
  auto id = [](int i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "entry-%04d", i);  // fixed width: no
    return std::string(buf);                           // substring aliasing
  };
  std::string corpus;
  for (int i = 0; i < 2000; ++i) {
    corpus += id(i) + " payload alpha beta gamma\n";
  }
  IngestOptions options;
  options.target_block_bytes = 2048;  // many tiny blocks
  options.num_workers = 3;
  auto ingestor = LogIngestor::Start(dir_, options);
  ASSERT_TRUE(ingestor.ok());
  ASSERT_TRUE((*ingestor)->Append(corpus).ok());
  ASSERT_TRUE((*ingestor)->Finish().ok());

  LogArchive& archive = (*ingestor)->archive();
  EXPECT_GT(archive.blocks().size(), 10u);
  EXPECT_EQ(archive.total_raw_bytes(), corpus.size());
  EXPECT_EQ(archive.total_lines(), SplitLines(corpus).size());
  // No entry was torn across blocks: every entry is findable, intact.
  for (int i = 0; i < 2000; i += 97) {
    auto result = archive.Query(id(i));
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->hits.size(), 1u) << id(i);
    EXPECT_EQ(result->hits[0].first, static_cast<uint32_t>(i));
    EXPECT_EQ(result->hits[0].second, id(i) + " payload alpha beta gamma");
  }
}

TEST_F(LogIngestorTest, OversizedEntryGetsItsOwnBlock) {
  std::string corpus = "short line one\n";
  corpus += std::string(8 * 1024, 'x');  // entry far beyond the block target
  corpus += " end\nshort line two\n";
  IngestOptions options;
  options.target_block_bytes = 1024;
  options.num_workers = 2;
  auto ingestor = LogIngestor::Start(dir_, options);
  ASSERT_TRUE(ingestor.ok());
  // Feed in small chunks so the giant entry arrives incrementally.
  for (size_t off = 0; off < corpus.size(); off += 512) {
    const size_t len = std::min<size_t>(512, corpus.size() - off);
    ASSERT_TRUE((*ingestor)->Append({corpus.data() + off, len}).ok());
  }
  ASSERT_TRUE((*ingestor)->Finish().ok());
  EXPECT_EQ((*ingestor)->archive().total_lines(), 3u);
  EXPECT_EQ((*ingestor)->archive().total_raw_bytes(), corpus.size());
  auto result = (*ingestor)->archive().Query("two");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->hits.size(), 1u);
  EXPECT_EQ(result->hits[0].second, "short line two");
}

TEST_F(LogIngestorTest, BackpressureBoundsTheWindowAndMetricsAddUp) {
  const std::string corpus = Corpus();
  IngestOptions options;
  options.target_block_bytes = corpus.size() / 10;
  options.num_workers = 2;
  options.max_in_flight_blocks = 2;  // tight window: producer must stall
  auto ingestor = LogIngestor::Start(dir_, options);
  ASSERT_TRUE(ingestor.ok());
  ASSERT_TRUE((*ingestor)->Append(corpus).ok());
  ASSERT_TRUE((*ingestor)->Finish().ok());

  const IngestMetrics m = (*ingestor)->metrics();
  EXPECT_EQ(m.blocks_cut, m.blocks_committed);
  EXPECT_GE(m.blocks_committed, 8u);
  EXPECT_LE(m.queue_depth_hwm, 2u);  // the bounded window held
  EXPECT_GE(m.queue_depth_hwm, 1u);
  EXPECT_EQ(m.raw_bytes, corpus.size());
  EXPECT_EQ(m.lines, SplitLines(corpus).size());
  EXPECT_EQ(m.stored_bytes, (*ingestor)->archive().total_stored_bytes());
  EXPECT_GT(m.compress_seconds, 0.0);
  EXPECT_GE(m.wall_seconds, 0.0);
}

TEST_F(LogIngestorTest, EmptyAndFinishOnlyStreams) {
  auto ingestor = LogIngestor::Start(dir_, {});
  ASSERT_TRUE(ingestor.ok());
  ASSERT_TRUE((*ingestor)->Append("").ok());
  ASSERT_TRUE((*ingestor)->Finish().ok());
  EXPECT_EQ((*ingestor)->archive().blocks().size(), 0u);
  EXPECT_EQ((*ingestor)->metrics().blocks_committed, 0u);
  // Append after Finish is an error.
  EXPECT_FALSE((*ingestor)->Append("late\n").ok());
  // Finish is idempotent.
  EXPECT_TRUE((*ingestor)->Finish().ok());
}

TEST_F(LogIngestorTest, ResumesIntoAnExistingArchive) {
  {
    auto first = LogIngestor::Start(dir_, {});
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE((*first)->Append("first stream omega 1\n").ok());
    ASSERT_TRUE((*first)->Finish().ok());
  }
  {
    auto second = LogIngestor::Start(dir_, {});
    ASSERT_TRUE(second.ok());
    ASSERT_TRUE((*second)->Append("second stream omega 2\n").ok());
    ASSERT_TRUE((*second)->Finish().ok());
  }
  auto archive = LogArchive::Open(dir_);
  ASSERT_TRUE(archive.ok());
  EXPECT_EQ(archive->blocks().size(), 2u);
  auto result = archive->Query("omega");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->hits.size(), 2u);
  EXPECT_EQ(result->hits[0].first, 0u);
  EXPECT_EQ(result->hits[1].first, 1u);
}

// ---- fault injection -------------------------------------------------------

class IngestFaultTest : public LogIngestorTest,
                        public ::testing::WithParamInterface<CommitKillPoint> {
};

TEST_P(IngestFaultTest, CrashMidCommitRecoversConsistentPrefix) {
  const CommitKillPoint kill_at = GetParam();
  constexpr uint64_t kKillBlock = 2;  // die committing the third block

  std::string corpus;
  for (int i = 0; i < 400; ++i) {
    corpus += "faultline " + std::to_string(i) + " steady payload\n";
  }
  IngestOptions options;
  options.target_block_bytes = corpus.size() / 6;  // ~6 blocks
  options.num_workers = 4;
  auto commits = std::make_shared<std::atomic<uint64_t>>(0);
  options.kill_hook = [kill_at, commits](CommitKillPoint point) {
    if (point != kill_at) {
      return false;
    }
    return commits->fetch_add(1) == kKillBlock;  // counts commits at `kill_at`
  };
  auto ingestor = LogIngestor::Start(dir_, options);
  ASSERT_TRUE(ingestor.ok());
  Status stream = (*ingestor)->Append(corpus);
  Status finish = (*ingestor)->Finish();
  // The simulated crash must surface through Append or Finish.
  EXPECT_FALSE(stream.ok() && finish.ok()) << CommitKillPointName(kill_at);
  const IngestMetrics m = (*ingestor)->metrics();
  EXPECT_EQ(m.blocks_committed, kKillBlock) << CommitKillPointName(kill_at);

  // Recovery: reopen; the committed prefix survives, garbage is swept.
  auto reopened = LogArchive::Open(dir_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->blocks().size(), kKillBlock);
  const std::set<std::string> files = DirFiles();
  std::set<std::string> expected = {"archive.manifest"};
  for (uint64_t b = 0; b < kKillBlock; ++b) {
    expected.insert("block-" + std::to_string(b) + ".lgc");
  }
  EXPECT_EQ(files, expected) << CommitKillPointName(kill_at);

  // The prefix is fully queryable and line numbers are contiguous from 0.
  auto result = reopened->Query("faultline");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->hits.size(), reopened->total_lines());
  if (!result->hits.empty()) {
    EXPECT_EQ(result->hits.front().first, 0u);
  }

  // And ingestion can resume on the recovered archive.
  auto resumed = LogIngestor::Start(dir_, {});
  ASSERT_TRUE(resumed.ok());
  ASSERT_TRUE((*resumed)->Append("resumed entry after recovery\n").ok());
  ASSERT_TRUE((*resumed)->Finish().ok());
  EXPECT_EQ((*resumed)->archive().blocks().size(), kKillBlock + 1);
}

std::string KillPointLabel(
    const ::testing::TestParamInfo<CommitKillPoint>& info) {
  switch (info.param) {
    case CommitKillPoint::kBlockTmpWritten:
      return "BlockTmpWritten";
    case CommitKillPoint::kBlockRenamed:
      return "BlockRenamed";
    case CommitKillPoint::kManifestTmpWritten:
      return "ManifestTmpWritten";
  }
  return "Unknown";
}

INSTANTIATE_TEST_SUITE_P(
    AllKillPoints, IngestFaultTest,
    ::testing::Values(CommitKillPoint::kBlockTmpWritten,
                      CommitKillPoint::kBlockRenamed,
                      CommitKillPoint::kManifestTmpWritten),
    KillPointLabel);

}  // namespace
}  // namespace loggrep
