#include <gtest/gtest.h>

#include <string>

#include "src/common/bytes.h"
#include "src/common/charclass.h"
#include "src/common/hash.h"
#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/rowset.h"
#include "src/common/string_util.h"

namespace loggrep {
namespace {

// ---- charclass -------------------------------------------------------------

TEST(CharClassTest, SingleCharacterClasses) {
  EXPECT_EQ(CharClassOf('0'), kMaskDigit);
  EXPECT_EQ(CharClassOf('9'), kMaskDigit);
  EXPECT_EQ(CharClassOf('a'), kMaskHexLower);
  EXPECT_EQ(CharClassOf('f'), kMaskHexLower);
  EXPECT_EQ(CharClassOf('g'), kMaskAlphaLower);
  EXPECT_EQ(CharClassOf('z'), kMaskAlphaLower);
  EXPECT_EQ(CharClassOf('A'), kMaskHexUpper);
  EXPECT_EQ(CharClassOf('F'), kMaskHexUpper);
  EXPECT_EQ(CharClassOf('G'), kMaskAlphaUpper);
  EXPECT_EQ(CharClassOf('Z'), kMaskAlphaUpper);
  EXPECT_EQ(CharClassOf('_'), kMaskOther);
  EXPECT_EQ(CharClassOf('/'), kMaskOther);
  EXPECT_EQ(CharClassOf(' '), kMaskOther);
}

TEST(CharClassTest, PaperTypeNumberExamples) {
  // §4.3: "C1 only contains 0-9, its type number is 000001b=1"
  EXPECT_EQ(TypeMaskOf("134179"), 1);
  // "C2 contains 0-9 and A-F, its type number is 000101b=5"
  EXPECT_EQ(TypeMaskOf("1F8FE"), 5);
}

TEST(CharClassTest, EmptyStringHasEmptyMask) { EXPECT_EQ(TypeMaskOf(""), 0); }

TEST(CharClassTest, MaskSubsumption) {
  const TypeMask capsule = TypeMaskOf("1F8FE");
  EXPECT_TRUE(MaskSubsumes(capsule, TypeMaskOf("8F8F")));
  EXPECT_FALSE(MaskSubsumes(capsule, TypeMaskOf("8f8f")));  // lowercase hex
  EXPECT_FALSE(MaskSubsumes(capsule, TypeMaskOf("8_8")));
  EXPECT_TRUE(MaskSubsumes(capsule, 0));  // empty keyword always admitted
}

TEST(CharClassTest, MaskTypeCount) {
  EXPECT_EQ(MaskTypeCount(0), 0);
  EXPECT_EQ(MaskTypeCount(TypeMaskOf("a1")), 2);
  EXPECT_EQ(MaskTypeCount(kMaskAll), 6);
}

TEST(CharClassTest, MaskToString) {
  EXPECT_EQ(MaskToString(TypeMaskOf("1A")), "0-9|A-F");
  EXPECT_EQ(MaskToString(0), "");
}

// ---- string_util -----------------------------------------------------------

TEST(StringUtilTest, SplitNonEmpty) {
  const auto parts = SplitNonEmpty("a,,b c", ", ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, SplitNonEmptyNoDelims) {
  const auto parts = SplitNonEmpty("abc", ",");
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtilTest, SplitKeepEmpty) {
  const auto parts = SplitKeepEmpty("a::b:", ':');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, LongestCommonSubstring) {
  EXPECT_EQ(LongestCommonSubstring("8F8F8FE", "1F81F"), "F8");
  EXPECT_EQ(LongestCommonSubstring("abcdef", "zabcq"), "abc");
  EXPECT_EQ(LongestCommonSubstring("abc", "xyz"), "");
  EXPECT_EQ(LongestCommonSubstring("", "abc"), "");
  EXPECT_EQ(LongestCommonSubstring("same", "same"), "same");
}

TEST(StringUtilTest, DistinctNonAlnumChars) {
  EXPECT_EQ(DistinctNonAlnumChars("block_1F8.log_x"), "_.");
  EXPECT_EQ(DistinctNonAlnumChars("abc123"), "");
}

TEST(StringUtilTest, JoinStrings) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(StringUtilTest, LengthVariance) {
  EXPECT_DOUBLE_EQ(LengthVariance({}), 0.0);
  EXPECT_DOUBLE_EQ(LengthVariance({"aa", "aa"}), 0.0);
  // lengths 1 and 3: mean 2, variance 1.
  EXPECT_DOUBLE_EQ(LengthVariance({"a", "aaa"}), 1.0);
}

// ---- bytes / varint ----------------------------------------------------------

TEST(BytesTest, FixedWidthRoundTrip) {
  ByteWriter w;
  w.PutU8(0xAB);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFull);
  ByteReader r(w.data());
  EXPECT_EQ(*r.ReadU8(), 0xAB);
  EXPECT_EQ(*r.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(*r.ReadU64(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, VarintRoundTripSweep) {
  ByteWriter w;
  std::vector<uint64_t> values;
  for (int shift = 0; shift < 64; ++shift) {
    values.push_back(1ull << shift);
    values.push_back((1ull << shift) - 1);
  }
  values.push_back(UINT64_MAX);
  for (uint64_t v : values) {
    w.PutVarint(v);
  }
  ByteReader r(w.data());
  for (uint64_t v : values) {
    auto got = r.ReadVarint();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, LengthPrefixedRoundTrip) {
  ByteWriter w;
  w.PutLengthPrefixed("hello");
  w.PutLengthPrefixed("");
  w.PutLengthPrefixed(std::string(1000, 'x'));
  ByteReader r(w.data());
  EXPECT_EQ(*r.ReadLengthPrefixed(), "hello");
  EXPECT_EQ(*r.ReadLengthPrefixed(), "");
  EXPECT_EQ(r.ReadLengthPrefixed()->size(), 1000u);
}

TEST(BytesTest, TruncatedReadsFail) {
  ByteReader r1(std::string_view("\x01"));
  EXPECT_FALSE(r1.ReadU32().ok());
  ByteReader r2(std::string_view("\xFF\xFF"));  // unterminated varint
  EXPECT_FALSE(r2.ReadVarint().ok());
  ByteWriter w;
  w.PutVarint(100);
  ByteReader r3(w.data());
  EXPECT_FALSE(r3.ReadLengthPrefixed().ok());  // declares 100, has 0
}

TEST(BytesTest, VarintOverflowRejected) {
  // 10 bytes of 0xFF encode more than 64 bits.
  const std::string bad(10, '\xFF');
  ByteReader r(bad);
  EXPECT_FALSE(r.ReadVarint().ok());
}

// ---- rowset ------------------------------------------------------------------

TEST(RowSetTest, Basics) {
  const RowSet none = RowSet::None(10);
  const RowSet all = RowSet::All(10);
  EXPECT_TRUE(none.IsEmpty());
  EXPECT_TRUE(all.IsAll());
  EXPECT_EQ(all.Count(), 10u);
  EXPECT_EQ(none.Count(), 0u);
  EXPECT_TRUE(all.Contains(9));
  EXPECT_FALSE(all.Contains(10));
  EXPECT_FALSE(none.Contains(0));
}

TEST(RowSetTest, OfNormalizesFullSet) {
  const RowSet s = RowSet::Of(3, {0, 1, 2});
  EXPECT_TRUE(s.IsAll());
}

TEST(RowSetTest, SetOperations) {
  const RowSet a = RowSet::Of(10, {1, 3, 5, 7});
  const RowSet b = RowSet::Of(10, {3, 4, 5, 6});
  EXPECT_EQ(a.IntersectWith(b), RowSet::Of(10, {3, 5}));
  EXPECT_EQ(a.UnionWith(b), RowSet::Of(10, {1, 3, 4, 5, 6, 7}));
  EXPECT_EQ(a.Complement(), RowSet::Of(10, {0, 2, 4, 6, 8, 9}));
}

TEST(RowSetTest, AllAndNoneIdentities) {
  const RowSet a = RowSet::Of(10, {2, 4});
  EXPECT_EQ(a.IntersectWith(RowSet::All(10)), a);
  EXPECT_EQ(a.UnionWith(RowSet::None(10)), a);
  EXPECT_EQ(RowSet::All(10).Complement(), RowSet::None(10));
  EXPECT_EQ(RowSet::None(10).Complement(), RowSet::All(10));
}

TEST(RowSetTest, ToRowsExpandsAll) {
  const std::vector<uint32_t> rows = RowSet::All(4).ToRows();
  EXPECT_EQ(rows, (std::vector<uint32_t>{0, 1, 2, 3}));
}

// Property sweep: ops agree with a bitset model.
class RowSetPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RowSetPropertyTest, MatchesBitsetModel) {
  Rng rng(GetParam());
  const uint32_t universe = 1 + static_cast<uint32_t>(rng.NextBelow(64));
  std::vector<bool> ma(universe), mb(universe);
  std::vector<uint32_t> va, vb;
  for (uint32_t i = 0; i < universe; ++i) {
    if (rng.NextBool(0.4)) {
      ma[i] = true;
      va.push_back(i);
    }
    if (rng.NextBool(0.4)) {
      mb[i] = true;
      vb.push_back(i);
    }
  }
  const RowSet a = RowSet::Of(universe, va);
  const RowSet b = RowSet::Of(universe, vb);
  const RowSet inter = a.IntersectWith(b);
  const RowSet uni = a.UnionWith(b);
  const RowSet comp = a.Complement();
  for (uint32_t i = 0; i < universe; ++i) {
    EXPECT_EQ(inter.Contains(i), ma[i] && mb[i]) << i;
    EXPECT_EQ(uni.Contains(i), ma[i] || mb[i]) << i;
    EXPECT_EQ(comp.Contains(i), !ma[i]) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RowSetPropertyTest,
                         ::testing::Range<uint64_t>(1, 25));

// ---- rng / hash / result ------------------------------------------------------

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, RangesRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(HashTest, StableAndSpread) {
  EXPECT_EQ(Fnv1a64("abc"), Fnv1a64("abc"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abd"));
  EXPECT_NE(Fnv1a64("a"), Fnv1a64("b"));
}

TEST(ResultTest, StatusBasics) {
  EXPECT_TRUE(OkStatus().ok());
  const Status s = CorruptData("bad bytes");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruptData);
  EXPECT_EQ(s.ToString(), "CORRUPT_DATA: bad bytes");
  EXPECT_EQ(OkStatus().ToString(), "OK");
}

TEST(ResultTest, ResultValueAndStatus) {
  Result<int> ok_result(5);
  EXPECT_TRUE(ok_result.ok());
  EXPECT_EQ(*ok_result, 5);
  EXPECT_TRUE(ok_result.status().ok());
  Result<int> err_result(NotFound("nope"));
  EXPECT_FALSE(err_result.ok());
  EXPECT_EQ(err_result.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace loggrep
