#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/parser/block_parser.h"
#include "src/parser/template_miner.h"
#include "src/pattern/tree_extractor.h"
#include "src/workload/datasets.h"
#include "src/workload/loggen.h"
#include "src/workload/queries.h"

namespace loggrep {
namespace {

TEST(DatasetsTest, CatalogIsComplete) {
  EXPECT_EQ(AllDatasets().size(), 37u);
  EXPECT_EQ(ProductionDatasets().size(), 21u);  // Log A .. Log U
  EXPECT_EQ(PublicDatasets().size(), 16u);      // LogHub-style
  std::set<std::string> names;
  for (const DatasetSpec& d : AllDatasets()) {
    EXPECT_TRUE(names.insert(d.name).second) << "duplicate " << d.name;
    EXPECT_FALSE(d.templates.empty()) << d.name;
  }
  EXPECT_NE(FindDataset("Log A"), nullptr);
  EXPECT_NE(FindDataset("Zookeeper"), nullptr);
  EXPECT_EQ(FindDataset("No Such Log"), nullptr);
}

TEST(DatasetsTest, EveryDatasetHasAQuery) {
  for (const DatasetSpec& d : AllDatasets()) {
    EXPECT_FALSE(QueryForDataset(d.name).empty()) << d.name;
    EXPECT_GE(QuerySuiteForDataset(d.name).size(), 3u) << d.name;
  }
  EXPECT_TRUE(QueryForDataset("No Such Log").empty());
}

TEST(LogGeneratorTest, DeterministicAndSized) {
  const DatasetSpec* spec = FindDataset("Log G");
  ASSERT_NE(spec, nullptr);
  const LogGenerator gen(*spec);
  const std::string a = gen.Generate(10000);
  const std::string b = gen.Generate(10000);
  EXPECT_EQ(a, b);
  EXPECT_GE(a.size(), 10000u);
  EXPECT_EQ(a.back(), '\n');
  const std::string c = gen.GenerateLines(17);
  EXPECT_EQ(SplitLines(c).size(), 17u);
}

TEST(LogGeneratorTest, DifferentSeedsDiffer) {
  DatasetSpec spec = *FindDataset("Log G");
  const std::string a = LogGenerator(spec).GenerateLines(50);
  spec.seed += 1;
  const std::string b = LogGenerator(spec).GenerateLines(50);
  EXPECT_NE(a, b);
}

TEST(LogGeneratorTest, LinesParseAgainstTheirTemplates) {
  // The generator's static structure should be minable: most lines of a
  // block parse into groups (few outliers). Blocks must be large enough for
  // the 5% sample to see every template (production blocks are 64 MB; 128 KiB
  // keeps the same property at test scale).
  for (const DatasetSpec& spec : AllDatasets()) {
    const std::string text = LogGenerator(spec).Generate(128 * 1024);
    const ParsedBlock block = BlockParser().Parse(text);
    const size_t outliers = block.outlier_lines.size();
    EXPECT_LE(outliers, SplitLines(text).size() / 10) << spec.name;
  }
}

TEST(LogGeneratorTest, TimestampsAreMonotonic) {
  const DatasetSpec* spec = FindDataset("Log C");
  const std::string text = LogGenerator(*spec).GenerateLines(100);
  std::string prev;
  for (std::string_view line : SplitLines(text)) {
    // Timestamp is the leading "2026-07-06 HH:MM:SS.mmm" chunk.
    const std::string ts(line.substr(0, 23));
    if (!prev.empty()) {
      EXPECT_GE(ts, prev);
    }
    prev = ts;
  }
}

TEST(LogGeneratorTest, RealAndNominalVariablesPresent) {
  // Log A has hex request ids (real, low dup) and state enums (nominal).
  const DatasetSpec* spec = FindDataset("Log A");
  const std::string text = LogGenerator(*spec).Generate(64 * 1024);
  const ParsedBlock block = BlockParser().Parse(text);
  bool saw_real = false;
  bool saw_nominal = false;
  for (const ParsedGroup& g : block.groups) {
    for (const auto& vv : g.var_vectors) {
      if (vv.size() < 20) {
        continue;
      }
      if (ClassifyVector(vv) == VectorClass::kReal) {
        saw_real = true;
      } else {
        saw_nominal = true;
      }
    }
  }
  EXPECT_TRUE(saw_real);
  EXPECT_TRUE(saw_nominal);
}

TEST(LogGeneratorTest, SharedHexPrefixFormsRuntimePattern) {
  // Log A request ids share the "5E9D" prefix -> extractable runtime pattern.
  const DatasetSpec* spec = FindDataset("Log A");
  const std::string text = LogGenerator(*spec).Generate(64 * 1024);
  bool found_prefixed = false;
  for (std::string_view line : SplitLines(text)) {
    if (line.find("reqId:5E9D") != std::string_view::npos) {
      found_prefixed = true;
      break;
    }
  }
  EXPECT_TRUE(found_prefixed);
}

}  // namespace
}  // namespace loggrep
