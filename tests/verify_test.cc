// Tests for the archive fsck (`loggrep_cli verify`): a clean archive passes
// every check; injected corruption — bit flips, truncation, swapped blocks,
// deleted files — is detected and named, never crashes.
#include "src/store/verify.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/hash.h"
#include "src/core/engine.h"
#include "src/parser/template_miner.h"
#include "src/store/fs_util.h"
#include "src/store/log_archive.h"
#include "src/store/quarantine.h"
#include "src/workload/datasets.h"
#include "src/workload/loggen.h"

namespace loggrep {
namespace {

namespace fs = std::filesystem;

std::string ScratchDir(const std::string& tag) {
  const std::string dir =
      (fs::temp_directory_path() / ("loggrep-verify-" + tag)).string();
  fs::remove_all(dir);
  return dir;
}

std::string SampleText(uint64_t seed, size_t lines) {
  DatasetSpec spec = AllDatasets()[seed % AllDatasets().size()];
  spec.seed = seed | 1;
  return LogGenerator(spec).GenerateLines(lines);
}

// Builds a 3-block archive and returns its directory.
std::string BuildArchive(const std::string& tag) {
  const std::string dir = ScratchDir(tag);
  auto archive = LogArchive::Create(dir);
  EXPECT_TRUE(archive.ok()) << archive.status().ToString();
  for (uint64_t b = 0; b < 3; ++b) {
    EXPECT_TRUE(archive->AppendBlock(SampleText(17 * (b + 1), 120)).ok());
  }
  return dir;
}

void FlipByte(const std::string& path, size_t offset) {
  auto bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  ASSERT_LT(offset, bytes->size());
  (*bytes)[offset] = static_cast<char>((*bytes)[offset] ^ 0x40);
  ASSERT_TRUE(WriteFileBytes(path, *bytes).ok());
}

TEST(ReconstructAllLinesTest, RoundTripsCompressedBlock) {
  const std::string text = SampleText(5, 200);
  LogGrepEngine engine;
  const std::string box = engine.CompressBlock(text);

  auto lines = ReconstructAllLines(box);
  ASSERT_TRUE(lines.ok()) << lines.status().ToString();
  const std::vector<std::string_view> expected = SplitLines(text);
  ASSERT_EQ(lines->size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ((*lines)[i], expected[i]) << "line " << i;
  }
  // The verifier's chained hash over reconstructed lines must equal the
  // summary hash over the original text (that equality IS the fsck check).
  EXPECT_EQ(HashReconstructedLines(*lines), HashBlockContent(text));
}

TEST(ReconstructAllLinesTest, GarbageBytesFailCleanly) {
  auto result = ReconstructAllLines("definitely not a capsule box");
  EXPECT_FALSE(result.ok());
}

TEST(VerifyArchiveTest, CleanArchivePasses) {
  const std::string dir = BuildArchive("clean");
  const VerifyReport report = VerifyArchive(dir);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.blocks.size(), 3u);
  EXPECT_EQ(report.blocks_failed, 0u);
  EXPECT_EQ(report.lines_verified, 3u * 120u);
  fs::remove_all(dir);
}

TEST(VerifyArchiveTest, DetectsBitFlipInBlockFile) {
  const std::string dir = BuildArchive("bitflip");
  const std::string block_path = dir + "/block-1.lgc";
  const size_t size = static_cast<size_t>(fs::file_size(block_path));
  FlipByte(block_path, size / 2);

  const VerifyReport report = VerifyArchive(dir);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.blocks_failed, 1u);
  ASSERT_EQ(report.blocks.size(), 3u);
  EXPECT_TRUE(report.blocks[0].ok());
  EXPECT_FALSE(report.blocks[1].ok());
  EXPECT_NE(report.blocks[1].error.find("hash mismatch"), std::string::npos)
      << report.blocks[1].error;
  EXPECT_TRUE(report.blocks[2].ok());
  fs::remove_all(dir);
}

TEST(VerifyArchiveTest, DetectsTruncatedBlockFile) {
  const std::string dir = BuildArchive("truncate");
  const std::string block_path = dir + "/block-2.lgc";
  auto bytes = ReadFileBytes(block_path);
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(
      WriteFileBytes(block_path, std::string_view(*bytes).substr(0, 10)).ok());

  const VerifyReport report = VerifyArchive(dir);
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.blocks[2].ok());
  EXPECT_NE(report.blocks[2].error.find("size mismatch"), std::string::npos)
      << report.blocks[2].error;
  fs::remove_all(dir);
}

TEST(VerifyArchiveTest, DetectsMissingBlockFile) {
  const std::string dir = BuildArchive("missing");
  fs::remove(dir + "/block-0.lgc");
  const VerifyReport report = VerifyArchive(dir);
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.blocks[0].ok());
  EXPECT_NE(report.blocks[0].error.find("unreadable"), std::string::npos);
  fs::remove_all(dir);
}

// A block swapped in from a *different* archive position has valid box
// structure and a self-consistent size only by luck; regardless, its
// content hash cannot match the manifest entry. This is the check plain
// size/magic validation would miss.
TEST(VerifyArchiveTest, DetectsSwappedBlockContent) {
  const std::string dir = BuildArchive("swap");
  // Recompress block 1's slot with different text of the same line count,
  // padding/truncating the file to the manifest's stored size so only the
  // hash checks can notice.
  auto manifest = ReadFileBytes(dir + "/archive.manifest");
  ASSERT_TRUE(manifest.ok());
  auto blocks = ParseManifestBytes(*manifest);
  ASSERT_TRUE(blocks.ok());
  const uint64_t stored = (*blocks)[1].stored_bytes;

  LogGrepEngine engine;
  std::string other = engine.CompressBlock(SampleText(999, 120));
  other.resize(static_cast<size_t>(stored), '\0');
  ASSERT_TRUE(WriteFileBytes(dir + "/block-1.lgc", other).ok());

  const VerifyReport report = VerifyArchive(dir);
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.blocks[1].ok());
  fs::remove_all(dir);
}

TEST(VerifyArchiveTest, CorruptManifestIsFatalNotFatalCrash) {
  const std::string dir = BuildArchive("manifest");
  FlipByte(dir + "/archive.manifest", 0);  // break the magic
  const VerifyReport report = VerifyArchive(dir);
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.fatal.ok());
  EXPECT_TRUE(report.blocks.empty());
  fs::remove_all(dir);
}

TEST(VerifyArchiveTest, MissingDirectoryIsFatal) {
  const VerifyReport report = VerifyArchive("/nonexistent/loggrep-archive");
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.fatal.ok());
}

// ---------------------------------------------------------------------------
// RepairArchive (`loggrep_cli repair`): re-adjudicates quarantined blocks.
// ---------------------------------------------------------------------------

void QuarantineSeq(const std::string& dir, uint32_t seq) {
  QuarantineSet set;
  QuarantineEntry entry;
  entry.seq = seq;
  entry.code = "UNAVAILABLE";
  entry.error = "injected by test";
  set.Add(std::move(entry));
  ASSERT_TRUE(SaveQuarantine(dir, set).ok());
}

TEST(RepairArchiveTest, ReinstatesHealthyQuarantinedBlocks) {
  const std::string dir = BuildArchive("repair-reinstate");
  // A transient outage quarantined block 1, but the bytes on disk are fine.
  QuarantineSeq(dir, 1);

  const RepairReport report = RepairArchive(dir);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.reinstated, 1u);
  EXPECT_EQ(report.tombstoned, 0u);
  ASSERT_EQ(report.actions.size(), 1u);
  EXPECT_TRUE(report.actions[0].reinstated);
  // An empty quarantine removes the sidecar entirely.
  EXPECT_FALSE(fs::exists(QuarantinePath(dir)));
  fs::remove_all(dir);
}

TEST(RepairArchiveTest, TombstonesBlocksThatStillFailVerification) {
  const std::string dir = BuildArchive("repair-tombstone");
  const std::string block_path = dir + "/block-1.lgc";
  const size_t size = static_cast<size_t>(fs::file_size(block_path));
  FlipByte(block_path, size / 2);
  QuarantineSeq(dir, 1);

  const RepairReport report = RepairArchive(dir);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.reinstated, 0u);
  EXPECT_EQ(report.tombstoned, 1u);
  ASSERT_EQ(report.actions.size(), 1u);
  EXPECT_TRUE(report.actions[0].tombstoned);
  EXPECT_NE(report.actions[0].detail.find("hash mismatch"), std::string::npos)
      << report.actions[0].detail;

  // The tombstone persists with the verification detail attached.
  auto persisted = LoadQuarantine(dir);
  ASSERT_TRUE(persisted.ok());
  const QuarantineEntry* entry = persisted->Find(1);
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->tombstoned);
  fs::remove_all(dir);
}

TEST(RepairArchiveTest, DropsStaleEntriesForBlocksTheManifestNoLongerClaims) {
  const std::string dir = BuildArchive("repair-stale");
  QuarantineSeq(dir, 7);  // no such block
  const RepairReport report = RepairArchive(dir);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_TRUE(report.actions.empty());
  EXPECT_FALSE(fs::exists(QuarantinePath(dir)));
  fs::remove_all(dir);
}

TEST(RepairArchiveTest, CorruptSidecarRepairsToEmptyNotFatal) {
  const std::string dir = BuildArchive("repair-corrupt-sidecar");
  ASSERT_TRUE(WriteFileBytes(QuarantinePath(dir), "not json at all").ok());
  const RepairReport report = RepairArchive(dir);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_TRUE(report.actions.empty());
  // The unparseable sidecar was replaced by an empty (removed) one; failing
  // queries will re-quarantine anything genuinely sick.
  EXPECT_FALSE(fs::exists(QuarantinePath(dir)));
  fs::remove_all(dir);
}

TEST(RepairArchiveTest, MissingManifestIsFatal) {
  const RepairReport report = RepairArchive("/nonexistent/loggrep-archive");
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.fatal.ok());
}

}  // namespace
}  // namespace loggrep
