// Concurrency contract for loggrepd: many clients on many threads, every
// answered query checked hit-for-hit against a serial oracle computed before
// the daemon starts. Three storms:
//
//   (a) clean archive, 8 clients x mixed query/explain — all 200s, every
//       response identical to the serial run;
//   (b) fault-injected archive — responses are degraded 206s (or 200s when
//       pruning excused the sick block), always exactly the healthy-block
//       subset: concurrency must never turn a partial answer into a *wrong*
//       answer;
//   (c) admission limit 1 under 8 clients — excess load bounces 429 and a
//       bounded retry loop still gets every client every answer, unchanged.
#include <atomic>
#include <cctype>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/server/client.h"
#include "src/server/daemon.h"
#include "src/store/log_archive.h"
#include "src/store/storage_env.h"
#include "src/workload/datasets.h"
#include "src/workload/loggen.h"
#include "src/workload/queries.h"

namespace loggrep {
namespace {

constexpr size_t kBlocks = 3;
constexpr size_t kLinesPerBlock = 120;
constexpr size_t kClients = 8;
constexpr size_t kRequestsPerClient = 12;
constexpr uint64_t kSeed = 20260809;

std::vector<std::string> SplitIntoLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    lines.emplace_back(text, pos, nl - pos);
    pos = nl + 1;
  }
  return lines;
}

std::string AnchorKeyword(const std::vector<std::string>& block_lines) {
  const std::string& line = block_lines.front();
  std::string best;
  std::string cur;
  for (char c : line) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      cur.push_back(c);
    } else {
      if (cur.size() > best.size()) best = cur;
      cur.clear();
    }
  }
  if (cur.size() > best.size()) best = cur;
  return best;
}

class DaemonConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (std::filesystem::temp_directory_path() /
             ("loggrep_dconc_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                .string();
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);

    DatasetSpec spec = AllDatasets().front();
    for (size_t b = 0; b < kBlocks; ++b) {
      spec.seed = kSeed * 1000003 + b + 1;
      LogGenerator gen(spec);
      block_texts_.push_back(gen.GenerateLines(kLinesPerBlock));
      block_lines_.push_back(SplitIntoLines(block_texts_.back()));
    }
    commands_ = QuerySuiteForDataset(spec.name);
    // The anchor guarantees at least one command must touch block 1 (the
    // sick one in storm (b)).
    commands_.push_back(AnchorKeyword(block_lines_[1]));

    Result<LogArchive> archive = LogArchive::Create(ArchiveDir(), {});
    ASSERT_TRUE(archive.ok()) << archive.status().ToString();
    for (const std::string& text : block_texts_) {
      ASSERT_TRUE(archive->AppendBlock(text).ok());
    }

    // Serial oracle, computed before any daemon exists.
    Result<LogArchive> serial = LogArchive::Open(ArchiveDir());
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    for (const std::string& command : commands_) {
      Result<ArchiveQueryResult> r = serial->Query(command);
      ASSERT_TRUE(r.ok()) << command << ": " << r.status().ToString();
      ASSERT_FALSE(r->partial.partial());
      oracle_[command] = r->hits;
      // The healthy-subset oracle for storm (b): block 1's global line
      // range is [kLinesPerBlock, 2*kLinesPerBlock).
      QueryHits healthy;
      for (const auto& [line, text] : r->hits) {
        if (line < kLinesPerBlock || line >= 2 * kLinesPerBlock) {
          healthy.emplace_back(line, text);
        }
      }
      degraded_oracle_[command] = std::move(healthy);
    }
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  std::string ArchiveDir() const { return root_ + "/arch"; }

  std::string root_;
  std::vector<std::string> block_texts_;
  std::vector<std::vector<std::string>> block_lines_;
  std::vector<std::string> commands_;
  std::map<std::string, QueryHits> oracle_;
  std::map<std::string, QueryHits> degraded_oracle_;
};

TEST_F(DaemonConcurrencyTest, EightClientsMatchTheSerialOracleHitForHit) {
  DaemonOptions options;
  options.service.root = root_;
  options.num_threads = kClients;
  LoggrepDaemon daemon(options);
  Result<uint16_t> port = daemon.Start();
  ASSERT_TRUE(port.ok()) << port.status().ToString();

  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> transport_errors{0};
  std::atomic<size_t> answered{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      DaemonClient client("127.0.0.1", *port);
      for (size_t i = 0; i < kRequestsPerClient; ++i) {
        // Each client walks the suite from its own offset; odd requests go
        // through /explain so both paths race each other.
        const std::string& command = commands_[(c + i) % commands_.size()];
        const bool explain = (c + i) % 2 == 1;
        Result<RemoteQueryResult> r =
            explain ? client.Explain("arch", command)
                    : client.Query("arch", command);
        if (!r.ok()) {
          transport_errors.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        answered.fetch_add(1, std::memory_order_relaxed);
        if (r->http_status != 200 || !r->complete ||
            r->hits != oracle_[command]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  EXPECT_EQ(transport_errors.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(answered.load(), kClients * kRequestsPerClient);
  // One shared handle served everyone; the admission gate is fully released.
  EXPECT_EQ(daemon.service().open_archives(), 1u);
  EXPECT_EQ(daemon.inflight_queries(), 0u);
}

TEST_F(DaemonConcurrencyTest, FaultsDegradeTo206sButNeverWrongAnswers) {
  FaultInjectingStorageEnv fault(FaultOptions{.seed = kSeed});
  fault.AddPermanentFault("block-1.lgc", StatusCode::kIOError);

  DaemonOptions options;
  options.service.root = root_;
  options.num_threads = kClients;
  options.service.archive.env = &fault;
  options.service.archive.retry.max_attempts = 2;
  options.service.archive.box_cache_budget_bytes = 0;
  LoggrepDaemon daemon(options);
  Result<uint16_t> port = daemon.Start();
  ASSERT_TRUE(port.ok()) << port.status().ToString();

  const std::string anchor = commands_.back();  // guaranteed to touch block 1
  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> bad_status{0};
  std::atomic<size_t> anchor_not_degraded{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      DaemonClient client("127.0.0.1", *port);
      for (size_t i = 0; i < kRequestsPerClient; ++i) {
        const std::string& command = commands_[(c + i) % commands_.size()];
        Result<RemoteQueryResult> r = client.Query("arch", command);
        if (!r.ok()) {
          bad_status.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        // 206 when the sick block was needed, 200 when pruning excused it;
        // anything else (500, wrong subset) is a contract violation.
        if (r->http_status != 200 && r->http_status != 206) {
          bad_status.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (r->hits != degraded_oracle_[command]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        if (command == anchor && r->http_status != 206) {
          anchor_not_degraded.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  EXPECT_EQ(bad_status.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(anchor_not_degraded.load(), 0u)
      << "queries that need the sick block must answer 206, never 200";
}

// Wraps the real env and parks block reads on a gate: one query provably
// *holds* the single admission slot for as long as the test wants, so the
// 429 path runs deterministically even on a one-core machine where queries
// otherwise finish faster than clients can collide.
class GatedStorageEnv : public StorageEnv {
 public:
  explicit GatedStorageEnv(StorageEnv* base) : base_(base) {}

  Result<std::string> ReadFile(const std::string& path) override {
    if (path.find(".lgc") != std::string::npos) {
      std::unique_lock<std::mutex> lock(mu_);
      ++blocked_;
      cv_.notify_all();
      cv_.wait(lock, [this] { return !closed_; });
      --blocked_;
    }
    return base_->ReadFile(path);
  }
  Status WriteFile(const std::string& path, std::string_view data) override {
    return base_->WriteFile(path, data);
  }
  Status Rename(const std::string& from, const std::string& to) override {
    return base_->Rename(from, to);
  }
  Status RemoveFile(const std::string& path) override {
    return base_->RemoveFile(path);
  }
  Status SyncFile(const std::string& path) override {
    return base_->SyncFile(path);
  }
  Status SyncDir(const std::string& dir) override {
    return base_->SyncDir(dir);
  }
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  uint64_t NowNanos() override { return base_->NowNanos(); }
  void SleepNanos(uint64_t nanos) override { base_->SleepNanos(nanos); }
  const char* name() const override { return "gated"; }

  void CloseGate() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  void OpenGate() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = false;
    cv_.notify_all();
  }
  void AwaitBlockedReader() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return blocked_ > 0; });
  }

 private:
  StorageEnv* base_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool closed_ = false;
  size_t blocked_ = 0;
};

TEST_F(DaemonConcurrencyTest, OverloadBounces429AndRetriesStillConverge) {
  GatedStorageEnv gated(DefaultStorageEnv());

  DaemonOptions options;
  options.service.root = root_;
  options.num_threads = kClients;
  options.service.archive.env = &gated;
  // Every query must hit storage (no warm shortcuts), so the gate below
  // really pins the slot.
  options.service.archive.box_cache_budget_bytes = 0;
  options.service.archive.engine.use_cache = false;
  options.max_inflight_queries = 1;
  options.retry_after_seconds = 1;
  LoggrepDaemon daemon(options);
  Result<uint16_t> port = daemon.Start();
  ASSERT_TRUE(port.ok()) << port.status().ToString();

  const std::string pinned_command = commands_.back();  // touches block 1

  // Phase 1 — deterministic shed: close the gate, park one query mid-read so
  // it owns the only slot, then prove the next request bounces with 429.
  gated.CloseGate();
  std::thread pinned([&] {
    DaemonClient client("127.0.0.1", *port);
    Result<RemoteQueryResult> r = client.Query("arch", pinned_command);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->http_status, 200);
    EXPECT_EQ(r->hits, oracle_[pinned_command]);
  });
  gated.AwaitBlockedReader();  // the slot is now provably held

  {
    DaemonClient bouncer("127.0.0.1", *port);
    Result<RemoteQueryResult> shed = bouncer.Query("arch", pinned_command);
    ASSERT_TRUE(shed.ok()) << shed.status().ToString();
    EXPECT_EQ(shed->http_status, 429) << "slot held, must shed";
  }
  gated.OpenGate();
  pinned.join();

  // Phase 2 — convergence: 8 clients, limit still 1; clients own the retry
  // loop (shed, not queued) and every answer must still match the oracle.
  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> gave_up{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      DaemonClient client("127.0.0.1", *port);
      for (size_t i = 0; i < kRequestsPerClient; ++i) {
        const std::string& command = commands_[(c + i) % commands_.size()];
        bool done = false;
        for (int attempt = 0; attempt < 500 && !done; ++attempt) {
          Result<RemoteQueryResult> r = client.Query("arch", command);
          if (!r.ok()) {
            break;  // transport failure counts as giving up below
          }
          if (r->http_status == 429) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            continue;  // shed, not queued: the client owns the retry
          }
          if (r->http_status != 200 || r->hits != oracle_[command]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
          done = true;
        }
        if (!done) {
          gave_up.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(gave_up.load(), 0u);
  // The gate drained completely and at least the phase-1 request was shed.
  EXPECT_EQ(daemon.inflight_queries(), 0u);
  EXPECT_GT(daemon.metrics().GetOrCreate("server.admission_rejects")->value(),
            0u);
}

}  // namespace
}  // namespace loggrep
