// Hostile-input suite: CapsuleBox open, codec decode and manifest parsing
// must turn truncated / bit-flipped / crafted archives into clean Status
// errors — never a crash, out-of-bounds access or unbounded allocation.
//
// The "21 production configs" matrix: 7 engine variants (full, the five
// §6.3 ablations, and the no-query-cache variant) x 3 codecs. Every config
// compresses a real block and then survives exhaustive truncation plus a
// deterministic spray of bit flips.
//
// The *Reproducer tests at the bottom pin defects this harness found in the
// pre-hardening decoder (each crashed or over-allocated before the fix).
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/capsule/capsule.h"
#include "src/capsule/capsule_box.h"
#include "src/codec/codec.h"
#include "src/common/bloom.h"
#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/core/engine.h"
#include "src/parser/template_miner.h"
#include "src/pattern/runtime_pattern.h"
#include "src/query/line_match.h"
#include "src/query/query_parser.h"
#include "src/store/fs_util.h"
#include "src/store/log_archive.h"
#include "src/store/verify.h"
#include "src/workload/datasets.h"
#include "src/workload/loggen.h"

namespace loggrep {
namespace {

struct Config {
  std::string label;
  EngineOptions options;
};

// 7 engine variants x 3 codecs = 21 production configurations.
std::vector<Config> ProductionConfigs() {
  struct Variant {
    const char* label;
    void (*apply)(EngineOptions*);
  };
  const std::vector<Variant> variants = {
      {"full", [](EngineOptions*) {}},
      {"wo-real", [](EngineOptions* o) { o->use_real = false; }},
      {"wo-nomi", [](EngineOptions* o) { o->use_nominal = false; }},
      {"wo-stamp", [](EngineOptions* o) { o->use_stamps = false; }},
      {"wo-fixed", [](EngineOptions* o) { o->use_fixed = false; }},
      {"static-only", [](EngineOptions* o) { o->static_only = true; }},
      {"wo-cache", [](EngineOptions* o) { o->use_cache = false; }},
  };
  const std::vector<const Codec*> codecs = {&GetXzCodec(), &GetGzipCodec(),
                                            &GetZstdCodec()};
  std::vector<Config> configs;
  for (const Variant& variant : variants) {
    for (const Codec* codec : codecs) {
      Config config;
      config.label = std::string(variant.label) + "/" + codec->name();
      variant.apply(&config.options);
      config.options.codec = codec;
      configs.push_back(std::move(config));
    }
  }
  EXPECT_EQ(configs.size(), 21u);
  return configs;
}

std::string SampleBlock(uint64_t seed) {
  DatasetSpec spec = AllDatasets()[seed % AllDatasets().size()];
  spec.seed = seed | 1;
  return LogGenerator(spec).GenerateLines(80);
}

// Opening must not crash; if it succeeds despite the damage (possible when
// the flipped byte lands in compressed payload the query never touches),
// querying must still fail cleanly or return without crashing.
void ExpectGracefulOpen(const std::string& bytes, const std::string& label) {
  Result<CapsuleBox> box = CapsuleBox::Open(bytes);
  if (!box.ok()) {
    return;  // clean rejection — the expected outcome
  }
  LogGrepEngine engine;
  auto result = engine.Query(bytes, "error or 503");
  (void)result;  // either outcome is fine; the bar is "no crash / no UB"
  SUCCEED() << label;
}

TEST(CorruptionTest, TruncatedBoxesRejectCleanly_All21Configs) {
  const std::string text = SampleBlock(3);
  for (const Config& config : ProductionConfigs()) {
    LogGrepEngine engine(config.options);
    const std::string box = engine.CompressBlock(text);
    ASSERT_FALSE(box.empty()) << config.label;
    // Exhaustive near the header, sampled through the payload.
    for (size_t cut = 0; cut < box.size();
         cut += (cut < 64 ? 1 : 1 + box.size() / 97)) {
      ExpectGracefulOpen(box.substr(0, cut), config.label + " cut=" +
                                                 std::to_string(cut));
    }
  }
}

TEST(CorruptionTest, BitFlippedBoxesNeverCrash_All21Configs) {
  const std::string text = SampleBlock(4);
  for (const Config& config : ProductionConfigs()) {
    LogGrepEngine engine(config.options);
    const std::string box = engine.CompressBlock(text);
    Rng rng(0xC0FFEEull ^ std::hash<std::string>{}(config.label));
    for (int trial = 0; trial < 200; ++trial) {
      std::string damaged = box;
      const size_t pos = rng.NextBelow(damaged.size());
      damaged[pos] =
          static_cast<char>(damaged[pos] ^ (1u << rng.NextBelow(8)));
      ExpectGracefulOpen(damaged, config.label + " pos=" +
                                      std::to_string(pos));
    }
  }
}

TEST(CorruptionTest, MultiByteCorruptionNeverCrashes) {
  const std::string text = SampleBlock(5);
  LogGrepEngine engine;
  const std::string box = engine.CompressBlock(text);
  Rng rng(77);
  for (int trial = 0; trial < 300; ++trial) {
    std::string damaged = box;
    const int flips = 1 + static_cast<int>(rng.NextBelow(16));
    for (int f = 0; f < flips; ++f) {
      damaged[rng.NextBelow(damaged.size())] =
          static_cast<char>(rng.NextU64());
    }
    ExpectGracefulOpen(damaged, "trial=" + std::to_string(trial));
  }
}

TEST(CorruptionTest, ManifestTruncationAndBitFlipsRejectCleanly) {
  // Build a real manifest through the archive, then damage it directly via
  // the exposed parser (what Open consumes).
  const std::string dir = ::testing::TempDir() + "corruption-manifest";
  std::filesystem::remove_all(dir);
  auto archive = LogArchive::Create(dir);
  ASSERT_TRUE(archive.ok());
  ASSERT_TRUE(archive->AppendBlock(SampleBlock(6)).ok());
  ASSERT_TRUE(archive->AppendBlock(SampleBlock(7)).ok());

  std::string manifest;
  {
    std::ifstream in(dir + "/archive.manifest", std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    manifest = ss.str();
  }
  ASSERT_TRUE(ParseManifestBytes(manifest).ok());

  for (size_t cut = 0; cut < manifest.size(); ++cut) {
    auto parsed = ParseManifestBytes(manifest.substr(0, cut));
    EXPECT_FALSE(parsed.ok()) << "truncation at " << cut << " accepted";
  }
  Rng rng(11);
  for (int trial = 0; trial < 500; ++trial) {
    std::string damaged = manifest;
    damaged[rng.NextBelow(damaged.size())] ^=
        static_cast<char>(1u << rng.NextBelow(8));
    auto parsed = ParseManifestBytes(damaged);
    (void)parsed;  // ok or error, but no crash / no unbounded allocation
  }
  // Trailing garbage is corruption, not silently ignored bytes.
  EXPECT_FALSE(ParseManifestBytes(manifest + "x").ok());
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Reproducers for defects found by this harness in the pre-hardening code.
// Each of these crashed (std::out_of_range / OOB / throw) or attempted a
// multi-GB allocation before the corresponding fix.
// ---------------------------------------------------------------------------

// Defect 1: Capsule::PaddedCell used std::string_view::substr(begin, width)
// with an unchecked begin, throwing std::out_of_range when a corrupt group
// declared more rows than the decompressed blob holds.
TEST(CorruptionReproducerTest, PaddedCellRowBeyondBlobIsEmptyNotThrow) {
  const std::string blob = "aaaabbbb";  // 2 rows of width 4
  EXPECT_EQ(PaddedCell(blob, 4, 1), "bbbb");
  EXPECT_EQ(PaddedCell(blob, 4, 2), std::string_view());    // 1 past end
  EXPECT_EQ(PaddedCell(blob, 4, 1000000), std::string_view());
  EXPECT_EQ(PaddedCell(blob, 0, 0), std::string_view());    // zero width
}

// Defect 2: the capsule directory bounds check computed offset + length in
// uint64, which wraps: offset=2^64-1, length=2 passed `offset + length <=
// payload.size()` and indexed far out of bounds.
TEST(CorruptionReproducerTest, DirectoryOffsetOverflowRejected) {
  // Craft a minimal box by hand: empty meta except for one directory entry
  // whose (offset + length) wraps uint64.
  ByteWriter mw;
  mw.PutU8(GetXzCodec().id());  // codec_id
  mw.PutU8(1);                  // padded
  mw.PutVarint(0);              // total_lines
  mw.PutVarint(0);              // templates
  mw.PutVarint(0);              // groups
  mw.PutU32(kNoCapsule);        // outlier capsule
  mw.PutVarint(0);              // outlier line numbers
  mw.PutVarint(1);              // directory entries
  mw.PutVarint(std::numeric_limits<uint64_t>::max());  // offset (wraps)
  mw.PutVarint(2);              // length

  ByteWriter box;
  box.PutU32(0x4243474Cu);  // "LGCB"
  box.PutU8(1);             // version
  box.PutLengthPrefixed(mw.data());
  box.PutBytes("xx");  // 2-byte payload: offset+length == 1 <= 2 if wrapped
  auto opened = CapsuleBox::Open(box.data());
  EXPECT_FALSE(opened.ok());
}

// Defect 3: a hostile varint element count reached vector::reserve before
// any byte of actual data was read, allocating tens of GB from a 20-byte
// input. Reserves are now clamped so memory stays input-bounded.
TEST(CorruptionReproducerTest, HostileVarintCountDoesNotPreallocate) {
  ByteWriter w;
  w.PutVarint(std::numeric_limits<uint64_t>::max() / 2);  // declared count
  w.PutVarint(1);
  ByteReader r(w.data());
  // Must fail cleanly (truncated elements) without a monster allocation.
  EXPECT_FALSE(RuntimePattern::ReadFrom(r).ok());
}

// Defect 4: BloomFilter::ReadFrom accepted an arbitrary hash-function count
// k; a crafted k in the billions turned every membership query into a DoS.
TEST(CorruptionReproducerTest, BloomImplausibleHashCountRejected) {
  ByteWriter hostile;
  hostile.PutVarint(1u << 30);  // absurd k
  hostile.PutLengthPrefixed("\x01\x02\x03\x04\x05\x06\x07\x08");
  ByteReader r(hostile.data());
  EXPECT_FALSE(BloomFilter::ReadFrom(r).ok());
}

// Defect 5: RuntimePattern subvar ordinals were trusted; MatchValue indexed
// out[element.subvar] on a pattern whose ordinal exceeded its subvar count,
// writing out of bounds. WellFormed() now rejects such patterns (enforced
// at CapsuleBox::Open) and MatchValue guards the index.
TEST(CorruptionReproducerTest, MalformedSubvarOrdinalsRejected) {
  const RuntimePattern oob({{true, "", 7}});  // 1 subvar, ordinal 7
  EXPECT_FALSE(oob.WellFormed());
  EXPECT_FALSE(oob.MatchValue("anything").has_value());
  // Duplicate ordinals are equally malformed.
  const RuntimePattern dup({{true, "", 0}, {false, "-", 0}, {true, "", 0}});
  EXPECT_FALSE(dup.WellFormed());
  // Adjacent subvars violate the matcher's invariant.
  const RuntimePattern adj({{true, "", 0}, {true, "", 1}});
  EXPECT_FALSE(adj.WellFormed());
  // A well-formed pattern stays accepted.
  const RuntimePattern good({{false, "block_", 0}, {true, "", 0}});
  EXPECT_TRUE(good.WellFormed());
}

// Defect 7 (found by the fuzz_parser differential target, minimal shrunk
// reproducer "\x00" "0\n\xff"): the padded Capsule layout pads cells with
// '\0', and TrimCell cuts a reconstructed value at the first pad byte — so
// any line whose *content* contained a NUL round-tripped lossily (the line
// came back truncated or empty). Such lines are now routed to the raw
// outlier list, which stores them '\n'-delimited and byte-exact.
TEST(CorruptionReproducerTest, NulBytesInLinesRoundTripExactly) {
  const std::vector<std::string> cases = {
      std::string("\x00" "0\n\xff", 4),        // the shrunk fuzz input
      std::string("a\x00" "b\nplain line\n", 13),
      std::string("\x00\x00\x00\n", 4),
      std::string("key:val\x00" "ue status:7\n", 20),
  };
  for (const std::string& text : cases) {
    LogGrepEngine engine;
    const std::string box = engine.CompressBlock(text);
    auto lines = ReconstructAllLines(box);
    ASSERT_TRUE(lines.ok()) << lines.status().ToString();
    const std::vector<std::string_view> expected = SplitLines(text);
    ASSERT_EQ(lines->size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ((*lines)[i], expected[i]) << "line " << i;
    }
  }
}

// Defect 6: SweepUnreferencedBlocks parsed block filenames with std::stoul,
// which throws on out-of-range digits — a single hostile filename in the
// archive directory (e.g. block-99999999999999999999.lgc) crashed Open.
TEST(CorruptionReproducerTest, HostileBlockFilenameDoesNotCrashOpen) {
  const std::string dir = ::testing::TempDir() + "corruption-filename";
  std::filesystem::remove_all(dir);
  auto archive = LogArchive::Create(dir);
  ASSERT_TRUE(archive.ok());
  ASSERT_TRUE(archive->AppendBlock(SampleBlock(8)).ok());
  {
    std::ofstream evil(dir + "/block-99999999999999999999.lgc",
                       std::ios::binary);
    evil << "junk";
  }
  auto reopened = LogArchive::Open(dir);
  EXPECT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->blocks().size(), 1u);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Degraded queries under at-rest corruption: every damage shape from the
// suites above, driven through the *query* path instead of raw decode. The
// contract: the query never returns an error status and never crashes — it
// quarantines the sick block, reports the hole, serves exact hits from every
// healthy block, and `repair` tombstones the damage / reinstates a restored
// file.
// ---------------------------------------------------------------------------

std::string LongestAlnumRun(const std::string& line) {
  std::string best, cur;
  for (char c : line) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      cur.push_back(c);
    } else {
      if (cur.size() > best.size()) best = cur;
      cur.clear();
    }
  }
  if (cur.size() > best.size()) best = cur;
  return best;
}

TEST(DegradedQueryTest, EveryCorruptionShapeQuarantinesAndReportsTheHole) {
  struct Shape {
    const char* label;
    void (*damage)(const std::string& path, const std::string& original);
  };
  const Shape shapes[] = {
      {"empty-file",
       [](const std::string& path, const std::string&) {
         std::ofstream(path, std::ios::binary | std::ios::trunc);
       }},
      {"truncated-to-8-bytes",
       [](const std::string& path, const std::string& original) {
         std::ofstream out(path, std::ios::binary | std::ios::trunc);
         out << original.substr(0, 8);
       }},
      {"garbage-bytes",
       [](const std::string& path, const std::string& original) {
         std::ofstream out(path, std::ios::binary | std::ios::trunc);
         out << std::string(original.size(), 'X');
       }},
      {"corrupt-header",
       [](const std::string& path, const std::string& original) {
         std::string bytes = original;
         for (size_t i = 0; i < 8 && i < bytes.size(); ++i) {
           bytes[i] = static_cast<char>(bytes[i] ^ 0xFF);
         }
         std::ofstream out(path, std::ios::binary | std::ios::trunc);
         out << bytes;
       }},
      {"missing-file",
       [](const std::string& path, const std::string&) {
         std::filesystem::remove(path);
       }},
  };

  for (const Shape& shape : shapes) {
    SCOPED_TRACE(shape.label);
    const std::string dir =
        ::testing::TempDir() + "degraded-" + shape.label;
    std::filesystem::remove_all(dir);

    // Three blocks; block 1 will be damaged.
    std::vector<std::string> texts;
    std::vector<std::vector<std::string>> lines(3);
    {
      auto setup = LogArchive::Create(dir);
      ASSERT_TRUE(setup.ok());
      for (uint64_t b = 0; b < 3; ++b) {
        texts.push_back(SampleBlock(31 * (b + 1)));
        for (std::string_view line : SplitLines(texts.back())) {
          lines[b].emplace_back(line);
        }
        ASSERT_TRUE(setup->AppendBlock(texts.back()).ok());
      }
    }
    const std::string sick_path = dir + "/block-1.lgc";
    auto original = ReadFileBytes(sick_path);
    ASSERT_TRUE(original.ok());
    shape.damage(sick_path, *original);

    // A keyword anchored in the sick block: pruning cannot excuse it, so the
    // query must confront the damage.
    const std::string anchor = LongestAlnumRun(lines[1].front());
    ASSERT_GE(anchor.size(), 2u);
    auto parsed = ParseQuery(anchor);
    ASSERT_TRUE(parsed.ok());

    ArchiveOptions opts;
    opts.box_cache_budget_bytes = 0;  // cold reads; nothing masks the damage
    // missing-file kills Open's interior check before any query can run, so
    // that shape opens with the file intact and loses it afterwards.
    const bool deferred = std::string(shape.label) == "missing-file";
    if (deferred) {
      ASSERT_TRUE(WriteFileBytes(sick_path, *original).ok());
    }
    auto archive = LogArchive::Open(dir, opts);
    ASSERT_TRUE(archive.ok()) << archive.status().ToString();
    if (deferred) {
      std::filesystem::remove(sick_path);
    }

    auto result = archive->Query(anchor);
    ASSERT_TRUE(result.ok())
        << "degraded queries must not fail: " << result.status().ToString();
    ASSERT_TRUE(result->partial.partial()) << "damage went unnoticed";
    ASSERT_EQ(result->partial.failures.size(), 1u);
    EXPECT_EQ(result->partial.failures[0].seq, 1u);
    EXPECT_TRUE(result->partial.failures[0].newly_quarantined);
    EXPECT_EQ(result->partial.lines_missing(), lines[1].size());
    EXPECT_TRUE(std::filesystem::exists(dir + "/quarantine.json"));

    // Hits from healthy blocks are exact (reference: LineMatchesQuery over
    // the raw lines of blocks 0 and 2).
    std::vector<std::pair<uint64_t, std::string>> expected;
    uint64_t global = 0;
    for (size_t b = 0; b < 3; ++b) {
      for (const std::string& line : lines[b]) {
        if (b != 1 && LineMatchesQuery(line, **parsed)) {
          expected.emplace_back(global, line);
        }
        ++global;
      }
    }
    auto actual = result->hits;
    std::sort(actual.begin(), actual.end());
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i], expected[i]) << "hit " << i;
    }

    // Repair: the damaged bytes cannot verify -> tombstoned; the restored
    // original does -> reinstated, and the archive serves full results.
    RepairReport tomb = RepairArchive(dir);
    ASSERT_TRUE(tomb.ok()) << tomb.Summary();
    EXPECT_EQ(tomb.tombstoned, 1u) << tomb.Summary();
    ASSERT_TRUE(WriteFileAtomic(sick_path, *original).ok());
    RepairReport heal = RepairArchive(dir);
    ASSERT_TRUE(heal.ok()) << heal.Summary();
    EXPECT_EQ(heal.reinstated, 1u) << heal.Summary();

    ASSERT_TRUE(archive->ReloadQuarantine().ok());
    auto healed = archive->Query(anchor);
    ASSERT_TRUE(healed.ok());
    EXPECT_FALSE(healed->partial.partial()) << healed->partial.Render();
    size_t full_hits = 0;
    for (size_t b = 0; b < 3; ++b) {
      for (const std::string& line : lines[b]) {
        full_hits += LineMatchesQuery(line, **parsed) ? 1 : 0;
      }
    }
    EXPECT_EQ(healed->hits.size(), full_hits);
    std::filesystem::remove_all(dir);
  }
}

}  // namespace
}  // namespace loggrep
