// Seeded chaos suite for the fault-tolerant storage layer: the diff-oracle
// correctness contract extended with injected storage faults.
//
// Three contracts, each checked hit-for-hit against the reference semantics
// (LineMatchesQuery over the raw lines kept in memory):
//
//   (a) zero faults        -> every mode returns exactly the reference hits
//                             and an empty PartialReport;
//   (b) transient faults   -> the retry policy converges: results are still
//                             *exactly* the reference (no degradation), in
//                             zero wall time thanks to the virtual clock;
//   (c) permanent faults   -> queries degrade to exactly the reference minus
//                             the sick blocks' lines, with a PartialReport
//                             naming each hole, and `repair` restores full
//                             results once the fault clears.
//
// Plus the write side: commit failures under a write storm (including torn
// writes) must never corrupt the archive — the old state stays fully
// queryable and no temp droppings survive a reopen.
//
// Seeds: pinned defaults, overridable via LOGGREP_CHAOS_SEEDS (comma list)
// and extendable via LOGGREP_CHAOS_EXTRA_SEED (CI passes a run-id-derived
// seed so every run explores fresh workloads).
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/metrics.h"
#include "src/common/rng.h"
#include "src/query/line_match.h"
#include "src/query/query_parser.h"
#include "src/store/archive_set.h"
#include "src/store/fs_util.h"
#include "src/store/log_archive.h"
#include "src/store/quarantine.h"
#include "src/store/shard_router.h"
#include "src/store/storage_env.h"
#include "src/store/verify.h"
#include "src/workload/datasets.h"
#include "src/workload/loggen.h"
#include "src/workload/queries.h"

namespace loggrep {
namespace {

constexpr size_t kBlocks = 3;
constexpr size_t kLinesPerBlock = 160;

std::vector<uint64_t> ChaosSeeds() {
  std::vector<uint64_t> seeds;
  if (const char* env = std::getenv("LOGGREP_CHAOS_SEEDS")) {
    std::string spec(env);
    size_t pos = 0;
    while (pos < spec.size()) {
      size_t comma = spec.find(',', pos);
      if (comma == std::string::npos) comma = spec.size();
      const std::string token = spec.substr(pos, comma - pos);
      if (!token.empty()) {
        seeds.push_back(std::strtoull(token.c_str(), nullptr, 10));
      }
      pos = comma + 1;
    }
  }
  if (seeds.empty()) {
    seeds = {1, 42, 20260806};  // pinned defaults
  }
  if (const char* extra = std::getenv("LOGGREP_CHAOS_EXTRA_SEED")) {
    seeds.push_back(std::strtoull(extra, nullptr, 10));
  }
  return seeds;
}

std::vector<std::string> SplitIntoLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    lines.emplace_back(text, pos, nl - pos);
    pos = nl + 1;
  }
  return lines;
}

// One seeded workload: a dataset, per-block raw text + split lines, and the
// command suite to run. Fully determined by the seed.
struct ChaosWorkload {
  std::string dataset;
  std::vector<std::string> block_texts;
  std::vector<std::vector<std::string>> block_lines;
  std::vector<std::string> commands;
};

ChaosWorkload BuildWorkload(uint64_t seed) {
  ChaosWorkload w;
  Rng rng(seed);
  const std::vector<DatasetSpec>& catalog = AllDatasets();
  DatasetSpec spec = catalog[rng.NextBelow(catalog.size())];
  w.dataset = spec.name;
  for (size_t b = 0; b < kBlocks; ++b) {
    spec.seed = seed * 1000003 + b + 1;
    LogGenerator gen(spec);
    w.block_texts.push_back(gen.GenerateLines(kLinesPerBlock));
    w.block_lines.push_back(SplitIntoLines(w.block_texts.back()));
    EXPECT_EQ(w.block_lines.back().size(), kLinesPerBlock);
  }
  w.commands = QuerySuiteForDataset(w.dataset);
  EXPECT_FALSE(w.commands.empty()) << w.dataset;
  return w;
}

// A keyword guaranteed to hit at least one line of block `b` (and therefore
// never block-pruned there): the longest alphanumeric run in the block's
// first line. Used to force the degraded path to actually touch sick blocks.
std::string AnchorKeyword(const ChaosWorkload& w, size_t b) {
  const std::string& line = w.block_lines[b].front();
  std::string best;
  std::string cur;
  for (char c : line) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      cur.push_back(c);
    } else {
      if (cur.size() > best.size()) best = cur;
      cur.clear();
    }
  }
  if (cur.size() > best.size()) best = cur;
  EXPECT_GE(best.size(), 2u) << "degenerate first line: " << line;
  return best;
}

// Reference semantics: LineMatchesQuery over the raw lines, skipping the
// blocks in `excluded` (global line numbers are contiguous across blocks).
QueryHits ReferenceHits(const ChaosWorkload& w, const std::string& command,
                        const std::set<uint32_t>& excluded = {}) {
  Result<std::unique_ptr<QueryExpr>> expr = ParseQuery(command);
  EXPECT_TRUE(expr.ok()) << command << ": " << expr.status().ToString();
  QueryHits hits;
  uint64_t global = 0;
  for (uint32_t b = 0; b < w.block_lines.size(); ++b) {
    for (const std::string& line : w.block_lines[b]) {
      if (excluded.count(b) == 0 && LineMatchesQuery(line, **expr)) {
        hits.emplace_back(global, line);
      }
      ++global;
    }
  }
  return hits;
}

QueryHits Sorted(QueryHits hits) {
  std::sort(hits.begin(), hits.end());
  return hits;
}

// Hit-for-hit comparison with a readable first-divergence message.
void ExpectHitsEqual(const QueryHits& expected, const QueryHits& actual,
                     const std::string& label) {
  const QueryHits e = Sorted(expected);
  const QueryHits a = Sorted(actual);
  ASSERT_EQ(e.size(), a.size()) << label << ": hit count diverges";
  for (size_t i = 0; i < e.size(); ++i) {
    ASSERT_EQ(e[i].first, a[i].first)
        << label << ": hit " << i << " line number diverges";
    ASSERT_EQ(e[i].second, a[i].second)
        << label << ": line " << e[i].first << " text diverges";
  }
}

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("loggrep_chaos_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  // Builds the archive on the real filesystem (no faults during setup).
  void BuildArchive(const ChaosWorkload& w, ArchiveOptions options = {}) {
    std::filesystem::remove_all(dir_);
    Result<LogArchive> archive = LogArchive::Create(dir_, options);
    ASSERT_TRUE(archive.ok()) << archive.status().ToString();
    for (const std::string& text : w.block_texts) {
      ASSERT_TRUE(archive->AppendBlock(text).ok());
    }
  }

  std::string BlockFile(uint32_t seq) const {
    return dir_ + "/block-" + std::to_string(seq) + ".lgc";
  }

  bool HasTempDroppings() const {
    for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
      const std::string name = entry.path().filename().string();
      if (name.size() >= 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
        return true;
      }
    }
    return false;
  }

  std::string dir_;
};

// ---------------------------------------------------------------------------
// Contract (a): zero faults — every mode is hit-for-hit with the reference.
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, ZeroFaultRunsMatchTheReferenceHitForHit) {
  for (uint64_t seed : ChaosSeeds()) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const ChaosWorkload w = BuildWorkload(seed);
    BuildArchive(w);

    Result<LogArchive> archive = LogArchive::Open(dir_);
    ASSERT_TRUE(archive.ok()) << archive.status().ToString();
    EXPECT_TRUE(archive->quarantine().empty());

    for (const std::string& command : w.commands) {
      const QueryHits expected = ReferenceHits(w, command);
      // Cold (first run), warm (second run, BoxCache hot), parallel, explain.
      for (int run = 0; run < 2; ++run) {
        Result<ArchiveQueryResult> r = archive->Query(command);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        EXPECT_FALSE(r->partial.partial()) << r->partial.Render();
        ExpectHitsEqual(expected, r->hits,
                        command + (run == 0 ? " [cold]" : " [warm]"));
      }
      Result<ArchiveQueryResult> par = archive->ParallelQuery(command, 3);
      ASSERT_TRUE(par.ok()) << par.status().ToString();
      EXPECT_FALSE(par->partial.partial());
      ExpectHitsEqual(expected, par->hits, command + " [parallel]");

      QueryExplain explain;
      Result<ArchiveQueryResult> ex = archive->Explain(command, &explain);
      ASSERT_TRUE(ex.ok()) << ex.status().ToString();
      EXPECT_FALSE(ex->partial.partial());
      ExpectHitsEqual(expected, ex->hits, command + " [explain]");
      for (const BlockExplain& be : explain.blocks) {
        EXPECT_FALSE(be.block_failed);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Contract (b): transient faults — retries converge to the exact reference.
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, TransientFaultStormsConvergeToTheReferenceViaRetries) {
  for (uint64_t seed : ChaosSeeds()) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const ChaosWorkload w = BuildWorkload(seed);
    BuildArchive(w);

    MetricsRegistry metrics;
    FaultOptions fopts;
    fopts.seed = seed;
    fopts.read_fail_p = 0.6;
    // The cap makes every probabilistic storm transient: strictly fewer
    // faults per path than the retry policy has attempts.
    fopts.max_faults_per_path = 2;
    fopts.metrics = &metrics;
    FaultInjectingStorageEnv fault(fopts);

    ArchiveOptions opts;
    opts.env = &fault;
    opts.metrics = &metrics;
    opts.retry.max_attempts = 5;
    opts.box_cache_budget_bytes = 0;  // force a real read per block per query

    // Open's manifest read is not retried; the per-path cap guarantees the
    // third attempt cannot fault.
    Result<LogArchive> archive = LogArchive::Open(dir_, opts);
    for (int i = 0; i < 2 && !archive.ok(); ++i) {
      archive = LogArchive::Open(dir_, opts);
    }
    ASSERT_TRUE(archive.ok()) << archive.status().ToString();

    // Deterministic warm-up storm: the next two reads fail no matter what
    // the dice say, against a query that provably cannot prune every block
    // (its keyword anchors in block 0), so at least one block read retries.
    fault.FailNext(StorageOp::kRead, 2, StatusCode::kUnavailable);
    const std::string anchor = AnchorKeyword(w, 0);
    Result<ArchiveQueryResult> forced = archive->Query(anchor);
    ASSERT_TRUE(forced.ok()) << forced.status().ToString();
    EXPECT_FALSE(forced->partial.partial())
        << "transient faults must never degrade: " << forced->partial.Render();
    ExpectHitsEqual(ReferenceHits(w, anchor), forced->hits,
                    anchor + " [forced storm]");
    EXPECT_GT(metrics.GetOrCreate("storage.retry.retries")->value(), 0u);

    for (const std::string& command : w.commands) {
      const QueryHits expected = ReferenceHits(w, command);
      Result<ArchiveQueryResult> r = archive->Query(command);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_FALSE(r->partial.partial())
          << "transient faults must never degrade: " << r->partial.Render();
      ExpectHitsEqual(expected, r->hits, command + " [transient storm]");

      Result<ArchiveQueryResult> par = archive->ParallelQuery(command, 3);
      ASSERT_TRUE(par.ok()) << par.status().ToString();
      EXPECT_FALSE(par->partial.partial());
      ExpectHitsEqual(expected, par->hits,
                      command + " [transient storm, parallel]");
    }

    EXPECT_GT(fault.faults_injected(), 0u) << "the storm never fired";
    EXPECT_GT(metrics.GetOrCreate("storage.retry.retries")->value(), 0u);
    EXPECT_GT(
        metrics.GetOrCreate("storage.retry.success_after_retry")->value(), 0u);
    EXPECT_TRUE(archive->quarantine().empty())
        << "transient faults must not quarantine anything";
  }
}

// ---------------------------------------------------------------------------
// Contract (c): permanent faults — degrade to exactly the healthy blocks,
// report the holes, and self-heal via repair once the fault clears.
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, PermanentFaultsDegradeToExactlyTheHealthyBlocksThenRepair) {
  for (uint64_t seed : ChaosSeeds()) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const ChaosWorkload w = BuildWorkload(seed);
    BuildArchive(w);

    constexpr uint32_t kSickSeq = 1;  // interior block
    MetricsRegistry metrics;
    FaultOptions fopts;
    fopts.seed = seed;
    fopts.metrics = &metrics;
    FaultInjectingStorageEnv fault(fopts);
    fault.AddPermanentFault("block-1.lgc", StatusCode::kIOError);

    ArchiveOptions opts;
    opts.env = &fault;
    opts.metrics = &metrics;
    opts.retry.max_attempts = 2;  // permanent: retries cannot help
    opts.box_cache_budget_bytes = 0;  // cold reads, nothing masks the fault

    Result<LogArchive> archive = LogArchive::Open(dir_, opts);
    ASSERT_TRUE(archive.ok()) << archive.status().ToString();

    // An anchor keyword from the sick block guarantees the query actually
    // needs it (block pruning cannot excuse it).
    const std::string anchor = AnchorKeyword(w, kSickSeq);
    const QueryHits anchor_expected =
        ReferenceHits(w, anchor, {kSickSeq});
    Result<ArchiveQueryResult> first = archive->Query(anchor);
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    ASSERT_TRUE(first->partial.partial());
    ASSERT_EQ(first->partial.failures.size(), 1u);
    const BlockQueryFailure& failure = first->partial.failures[0];
    EXPECT_EQ(failure.seq, kSickSeq);
    EXPECT_EQ(failure.first_line, kLinesPerBlock);  // global hole start
    EXPECT_EQ(failure.line_count, kLinesPerBlock);
    EXPECT_TRUE(failure.newly_quarantined);
    EXPECT_FALSE(failure.tombstoned);
    EXPECT_EQ(first->partial.lines_missing(), kLinesPerBlock);
    ExpectHitsEqual(anchor_expected, first->hits, anchor + " [degraded]");

    // The sidecar persisted and the block is now a standing hole: later
    // queries skip it without re-paying the retry storm.
    EXPECT_TRUE(std::filesystem::exists(dir_ + "/quarantine.json"));
    ASSERT_NE(archive->quarantine().Find(kSickSeq), nullptr);

    for (const std::string& command : w.commands) {
      const QueryHits expected = ReferenceHits(w, command, {kSickSeq});
      Result<ArchiveQueryResult> r = archive->Query(command);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      ExpectHitsEqual(expected, r->hits, command + " [standing hole]");
      for (const BlockQueryFailure& f : r->partial.failures) {
        EXPECT_EQ(f.seq, kSickSeq);
        EXPECT_FALSE(f.newly_quarantined) << "hole re-discovered, not skipped";
      }
      Result<ArchiveQueryResult> par = archive->ParallelQuery(command, 3);
      ASSERT_TRUE(par.ok()) << par.status().ToString();
      ExpectHitsEqual(expected, par->hits,
                      command + " [standing hole, parallel]");
    }

    // Explain names the hole.
    QueryExplain explain;
    Result<ArchiveQueryResult> ex = archive->Explain(anchor, &explain);
    ASSERT_TRUE(ex.ok());
    bool saw_failed = false;
    for (const BlockExplain& be : explain.blocks) {
      if (be.seq == kSickSeq) {
        saw_failed = be.block_failed;
        EXPECT_FALSE(be.failure.empty());
      }
    }
    EXPECT_TRUE(saw_failed);

    // Self-healing: the backend recovers, repair re-verifies the block
    // against the manifest hashes and reinstates it.
    fault.ClearPermanentFaults();
    RepairReport repair = RepairArchive(dir_);
    ASSERT_TRUE(repair.ok()) << repair.Summary();
    EXPECT_EQ(repair.reinstated, 1u) << repair.Summary();
    EXPECT_EQ(repair.tombstoned, 0u);

    ASSERT_TRUE(archive->ReloadQuarantine().ok());
    EXPECT_TRUE(archive->quarantine().empty());
    for (const std::string& command : w.commands) {
      Result<ArchiveQueryResult> r = archive->Query(command);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_FALSE(r->partial.partial()) << r->partial.Render();
      ExpectHitsEqual(ReferenceHits(w, command), r->hits,
                      command + " [healed]");
    }
  }
}

TEST_F(ChaosTest, MissingBlockFileIsQuarantinedThenTombstonedThenRestored) {
  const uint64_t seed = ChaosSeeds().front();
  const ChaosWorkload w = BuildWorkload(seed);
  BuildArchive(w);

  constexpr uint32_t kSickSeq = 1;
  const std::string sick_path = BlockFile(kSickSeq);
  Result<std::string> saved = ReadFileBytes(sick_path);
  ASSERT_TRUE(saved.ok());

  ArchiveOptions opts;
  opts.box_cache_budget_bytes = 0;
  Result<LogArchive> archive = LogArchive::Open(dir_, opts);
  ASSERT_TRUE(archive.ok()) << archive.status().ToString();

  // The file vanishes under a live archive (operator error, partial
  // restore). NOT_FOUND is deterministic: no retry storm, straight to
  // quarantine.
  ASSERT_TRUE(std::filesystem::remove(sick_path));
  const std::string anchor = AnchorKeyword(w, kSickSeq);
  Result<ArchiveQueryResult> degraded = archive->Query(anchor);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  ASSERT_TRUE(degraded->partial.partial());
  EXPECT_EQ(degraded->partial.failures[0].seq, kSickSeq);
  ExpectHitsEqual(ReferenceHits(w, anchor, {kSickSeq}), degraded->hits,
                  anchor + " [file gone]");

  // Repair cannot read the file either: the hole is accepted as a tombstone.
  RepairReport repair = RepairArchive(dir_);
  ASSERT_TRUE(repair.ok()) << repair.Summary();
  EXPECT_EQ(repair.tombstoned, 1u) << repair.Summary();
  EXPECT_EQ(repair.reinstated, 0u);

  // Reopening the archive with an interior hole must succeed — the
  // quarantine excuses it — and queries keep reporting the tombstone.
  Result<LogArchive> reopened = LogArchive::Open(dir_, opts);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_NE(reopened->quarantine().Find(kSickSeq), nullptr);
  EXPECT_TRUE(reopened->quarantine().Find(kSickSeq)->tombstoned);
  Result<ArchiveQueryResult> after = reopened->Query(anchor);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ASSERT_TRUE(after->partial.partial());
  EXPECT_TRUE(after->partial.failures[0].tombstoned);
  ExpectHitsEqual(ReferenceHits(w, anchor, {kSickSeq}), after->hits,
                  anchor + " [tombstoned]");

  // The operator restores the file from backup; repair reinstates even a
  // tombstoned block once it verifies again.
  ASSERT_TRUE(WriteFileAtomic(sick_path, *saved).ok());
  RepairReport second = RepairArchive(dir_);
  ASSERT_TRUE(second.ok()) << second.Summary();
  EXPECT_EQ(second.reinstated, 1u) << second.Summary();
  ASSERT_TRUE(reopened->ReloadQuarantine().ok());
  Result<ArchiveQueryResult> healed = reopened->Query(anchor);
  ASSERT_TRUE(healed.ok());
  EXPECT_FALSE(healed->partial.partial());
  ExpectHitsEqual(ReferenceHits(w, anchor), healed->hits,
                  anchor + " [restored]");
}

// ---------------------------------------------------------------------------
// Write-side chaos: commits that fail mid-protocol never corrupt the
// archive, torn writes never reach a committed name.
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, CommitFailuresUnderWriteStormLeaveTheOldStateQueryable) {
  const uint64_t seed = ChaosSeeds().front();
  const ChaosWorkload w = BuildWorkload(seed);

  // Commit only the first two blocks; the third will be attempted under
  // various storms.
  std::filesystem::remove_all(dir_);
  {
    Result<LogArchive> setup = LogArchive::Create(dir_);
    ASSERT_TRUE(setup.ok());
    ASSERT_TRUE(setup->AppendBlock(w.block_texts[0]).ok());
    ASSERT_TRUE(setup->AppendBlock(w.block_texts[1]).ok());
  }
  ChaosWorkload committed = w;
  committed.block_texts.resize(2);
  committed.block_lines.resize(2);

  FaultInjectingStorageEnv fault(FaultOptions{.seed = seed});
  ArchiveOptions opts;
  opts.env = &fault;
  opts.retry.max_attempts = 2;  // commit-path ops get exactly one retry
  Result<LogArchive> archive = LogArchive::Open(dir_, opts);
  ASSERT_TRUE(archive.ok()) << archive.status().ToString();

  // One *exhausting* storm per protocol step (both attempts fail): block
  // write, block fsync, block rename, manifest write. Each must fail cleanly
  // and leave the archive at two blocks.
  const auto exhaust = [&fault](StorageOp op, uint32_t first_future_call) {
    fault.FailNth(op, first_future_call, StatusCode::kIOError);
    fault.FailNth(op, first_future_call + 1, StatusCode::kIOError);
  };
  const std::pair<StorageOp, uint32_t> storms[] = {
      {StorageOp::kWrite, 1},     // block tmp write (attempt + retry) fails
      {StorageOp::kSyncFile, 1},  // block tmp fsync fails
      {StorageOp::kRename, 1},    // block rename fails
      {StorageOp::kWrite, 2},     // manifest tmp write fails (2nd write site)
  };
  for (const auto& [op, nth] : storms) {
    exhaust(op, nth);
    Status s = archive->AppendBlock(w.block_texts[2]);
    EXPECT_FALSE(s.ok()) << "storm on " << StorageOpName(op);
    EXPECT_EQ(archive->blocks().size(), 2u);
  }

  // A *transient* commit fault (one failure, one retry left) converges: the
  // append succeeds and the block is durable.
  fault.FailNext(StorageOp::kWrite, 1, StatusCode::kUnavailable);
  ASSERT_TRUE(archive->AppendBlock(w.block_texts[2]).ok());
  ASSERT_EQ(archive->blocks().size(), 3u);
  // Roll the archive back to two blocks for the torn-write storm below.
  {
    std::filesystem::remove(BlockFile(2));
    Result<LogArchive> rollback = LogArchive::Open(dir_);
    ASSERT_TRUE(rollback.ok());  // trailing missing block dropped + swept
    ASSERT_EQ(rollback->blocks().size(), 2u);
  }

  // Torn write: a seeded prefix of the block lands in the temp before the
  // failure. The torn bytes must never reach a committed name.
  FaultOptions torn_opts;
  torn_opts.seed = seed;
  torn_opts.write_fail_p = 1.0;
  torn_opts.torn_write_p = 1.0;
  FaultInjectingStorageEnv torn(torn_opts);
  ArchiveOptions torn_archive_opts;
  torn_archive_opts.env = &torn;
  {
    Result<LogArchive> under_torn = LogArchive::Open(dir_, torn_archive_opts);
    ASSERT_TRUE(under_torn.ok()) << under_torn.status().ToString();
    Status s = under_torn->AppendBlock(w.block_texts[2]);
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(under_torn->blocks().size(), 2u);
  }
  EXPECT_FALSE(std::filesystem::exists(BlockFile(2)));

  // After all that violence: reopen clean, no temp droppings, hits exactly
  // match the two committed blocks, and a calm append still works.
  Result<LogArchive> clean = LogArchive::Open(dir_);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_EQ(clean->blocks().size(), 2u);
  EXPECT_FALSE(HasTempDroppings());
  for (const std::string& command : w.commands) {
    Result<ArchiveQueryResult> r = clean->Query(command);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_FALSE(r->partial.partial());
    ExpectHitsEqual(ReferenceHits(committed, command), r->hits,
                    command + " [post-storm]");
  }
  ASSERT_TRUE(clean->AppendBlock(w.block_texts[2]).ok());
  Result<ArchiveQueryResult> full = clean->Query(w.commands.front());
  ASSERT_TRUE(full.ok());
  ExpectHitsEqual(ReferenceHits(w, w.commands.front()), full->hits,
                  w.commands.front() + " [after recovery append]");
}

// ---------------------------------------------------------------------------
// Deadline budgets: a query against an all-sick backend degrades within its
// budget instead of hanging, in zero wall time under the virtual clock.
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, QueryDeadlineBoundsRetryStormsAndDegradesInsteadOfHanging) {
  const uint64_t seed = ChaosSeeds().front();
  const ChaosWorkload w = BuildWorkload(seed);
  BuildArchive(w);

  MetricsRegistry metrics;
  FaultInjectingStorageEnv fault(FaultOptions{.seed = seed, .metrics = &metrics});
  // Every block read fails forever with a *retryable* code: without a
  // deadline the retry policy would grind through max_attempts per block.
  fault.AddPermanentFault(".lgc", StatusCode::kUnavailable);

  ArchiveOptions opts;
  opts.env = &fault;
  opts.metrics = &metrics;
  opts.retry.max_attempts = 100;
  opts.query_deadline_ns = 50'000'000;  // 50 ms of (virtual) backoff budget
  opts.box_cache_budget_bytes = 0;

  Result<LogArchive> archive = LogArchive::Open(dir_, opts);
  ASSERT_TRUE(archive.ok()) << archive.status().ToString();

  const std::string anchor = AnchorKeyword(w, 0);
  Result<ArchiveQueryResult> r = archive->Query(anchor);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->partial.partial());
  EXPECT_TRUE(r->hits.empty());  // every block is sick
  // Every non-pruned block is reported as a hole; at least the anchor block.
  EXPECT_GE(r->partial.failures.size(), 1u);
  EXPECT_GT(metrics.GetOrCreate("storage.retry.deadline_exceeded")->value(),
            0u);
  // The virtual clock absorbed the backoff: 100 attempts * blocks at real
  // 1ms+ backoff would take seconds; budget accounting must not leak into
  // wall time (generously bounded for sanitizer runs).
}

// ---------------------------------------------------------------------------
// Federation chaos: the same contracts one layer up. One permanently broken
// shard inside an ArchiveSet must degrade the federated answer to exactly
// the healthy shards' lines (206 semantics), predicate pruning must route
// around the sick shard entirely, and fleet-level repair must converge the
// set back to exact full results.
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, FederationDegradesToHealthyShardsThenRepairsExactly) {
  for (uint64_t seed : ChaosSeeds()) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const ChaosWorkload w = BuildWorkload(seed);

    // One tenant per workload block: three single-block shards whose global
    // line bases stride by kShardLineSpan in append order.
    const std::vector<std::string> tenants = {"alpha", "bravo", "charlie"};
    ASSERT_GE(w.block_texts.size(), tenants.size());

    std::filesystem::remove_all(dir_);
    MetricsRegistry metrics;
    FaultInjectingStorageEnv fault(FaultOptions{.seed = seed,
                                                .metrics = &metrics});
    ArchiveSetOptions set_options;
    set_options.archive.env = &fault;
    set_options.archive.metrics = &metrics;
    set_options.archive.retry.max_attempts = 2;
    set_options.archive.box_cache_budget_bytes = 0;  // nothing masks faults

    Result<std::unique_ptr<ArchiveSet>> created =
        ArchiveSet::Create(dir_, set_options);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    std::unique_ptr<ArchiveSet> set = std::move(*created);
    std::vector<AppendReceipt> receipts;
    for (size_t t = 0; t < tenants.size(); ++t) {
      Result<AppendReceipt> r =
          set->Append(tenants[t], w.block_texts[t], /*ts_ns=*/1000 + t);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      receipts.push_back(*r);
    }

    // Reference hits at the set level: every tenant's lines, rebased by the
    // shard's line base, optionally excluding the sick tenant.
    const auto set_reference = [&](const std::string& command,
                                   int excluded_tenant) {
      Result<std::unique_ptr<QueryExpr>> expr = ParseQuery(command);
      EXPECT_TRUE(expr.ok()) << command;
      QueryHits hits;
      for (size_t t = 0; t < tenants.size(); ++t) {
        if (static_cast<int>(t) == excluded_tenant) continue;
        uint64_t line = receipts[t].first_global_line;
        for (const std::string& text : w.block_lines[t]) {
          if (LineMatchesQuery(text, **expr)) hits.emplace_back(line, text);
          ++line;
        }
      }
      return hits;
    };

    // Break tenant bravo's only block file, permanently.
    constexpr size_t kSick = 1;
    const std::string sick_dir = ShardDirName(receipts[kSick].shard_id,
                                              tenants[kSick]);
    fault.AddPermanentFault(sick_dir + "/block-0.lgc", StatusCode::kIOError);

    // An anchor keyword from the sick tenant's block forces the federated
    // query to actually need the broken bytes.
    const std::string anchor = AnchorKeyword(w, kSick);
    Result<SetQueryResult> degraded = set->Query(anchor, {});
    ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
    EXPECT_FALSE(degraded->complete()) << degraded->RenderPartial();
    ExpectHitsEqual(set_reference(anchor, kSick), degraded->hits,
                    anchor + " [federated degraded]");

    // The whole command suite keeps 206 semantics: exactly the healthy
    // shards' lines, serial and parallel.
    for (const std::string& command : w.commands) {
      const QueryHits expected = set_reference(command, kSick);
      Result<SetQueryResult> r = set->Query(command, {});
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      ExpectHitsEqual(expected, r->hits, command + " [federated hole]");
      Result<SetQueryResult> par = set->ParallelQuery(command, {}, 3);
      ASSERT_TRUE(par.ok()) << par.status().ToString();
      ExpectHitsEqual(expected, par->hits,
                      command + " [federated hole, parallel]");
    }

    // Predicate pruning routes around the fault: a query pinned to a healthy
    // tenant never touches the sick shard and stays complete.
    SetQueryPredicate healthy_only;
    healthy_only.tenant = tenants[0];
    Result<SetQueryResult> routed = set->Query(w.commands.front(),
                                               healthy_only);
    ASSERT_TRUE(routed.ok()) << routed.status().ToString();
    EXPECT_TRUE(routed->complete()) << routed->RenderPartial();
    EXPECT_EQ(routed->shards_visited, 1u);

    // The backend recovers; fleet-level repair reinstates the quarantined
    // block and the federation converges to exact full results.
    fault.ClearPermanentFaults();
    SetRepairReport repaired = set->RepairAll();
    ASSERT_TRUE(repaired.ok()) << repaired.Summary();
    EXPECT_EQ(repaired.reinstated, 1u) << repaired.Summary();
    for (const std::string& command : w.commands) {
      Result<SetQueryResult> r = set->Query(command, {});
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_TRUE(r->complete()) << r->RenderPartial();
      ExpectHitsEqual(set_reference(command, -1), r->hits,
                      command + " [federated healed]");
    }
  }
}

}  // namespace
}  // namespace loggrep
