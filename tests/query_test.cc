#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "src/capsule/capsule.h"
#include "src/common/rng.h"
#include "src/query/fixed_matcher.h"
#include "src/query/line_match.h"
#include "src/query/pattern_match.h"
#include "src/query/query_cache.h"
#include "src/query/query_parser.h"
#include "src/query/wildcard.h"

namespace loggrep {
namespace {

// ---- wildcard ---------------------------------------------------------------

TEST(WildcardTest, ExactAndClasses) {
  EXPECT_TRUE(WildcardMatch("abc", "abc"));
  EXPECT_FALSE(WildcardMatch("abc", "abd"));
  EXPECT_TRUE(WildcardMatch("a?c", "abc"));
  EXPECT_FALSE(WildcardMatch("a?c", "ac"));
  EXPECT_TRUE(WildcardMatch("a*c", "ac"));
  EXPECT_TRUE(WildcardMatch("a*c", "axyzc"));
  EXPECT_FALSE(WildcardMatch("a*c", "axyzd"));
  EXPECT_TRUE(WildcardMatch("*", ""));
  EXPECT_TRUE(WildcardMatch("**", "anything"));
  EXPECT_FALSE(WildcardMatch("", "x"));
  EXPECT_TRUE(WildcardMatch("", ""));
}

TEST(WildcardTest, BacktrackingCases) {
  EXPECT_TRUE(WildcardMatch("a*b*c", "a__b__b__c"));
  EXPECT_TRUE(WildcardMatch("*aab", "aaab"));
  EXPECT_FALSE(WildcardMatch("*aab*", "abab"));
  EXPECT_TRUE(WildcardMatch("11.8.*", "11.8.42"));
}

TEST(WildcardTest, KeywordHitsToken) {
  EXPECT_TRUE(KeywordHitsToken("err", "stderr_log"));
  EXPECT_FALSE(KeywordHitsToken("err", "stdout"));
  EXPECT_TRUE(KeywordHitsToken("", "anything"));
  EXPECT_TRUE(KeywordHitsToken("11.8.*", "dst:11.8.42"));
  EXPECT_TRUE(KeywordHitsToken("b?g", "debug_bug"));
  EXPECT_FALSE(KeywordHitsToken("b?gs", "bug"));
  EXPECT_TRUE(HasWildcards("a*b"));
  EXPECT_FALSE(HasWildcards("plain"));
}

// ---- substring search engines --------------------------------------------------

class SearchPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SearchPropertyTest, BmAndKmpAgreeWithStdSearch) {
  Rng rng(GetParam());
  std::string haystack;
  const int alphabet = 2 + static_cast<int>(rng.NextBelow(4));
  for (int i = 0; i < 2000; ++i) {
    haystack += static_cast<char>('a' + rng.NextBelow(alphabet));
  }
  for (int trial = 0; trial < 20; ++trial) {
    const size_t len = 1 + rng.NextBelow(8);
    std::string needle;
    for (size_t i = 0; i < len; ++i) {
      needle += static_cast<char>('a' + rng.NextBelow(alphabet));
    }
    std::vector<size_t> expected;
    for (auto it = haystack.begin();;) {
      it = std::search(it, haystack.end(), needle.begin(), needle.end());
      if (it == haystack.end()) {
        break;
      }
      expected.push_back(static_cast<size_t>(it - haystack.begin()));
      ++it;
    }
    EXPECT_EQ(BoyerMooreSearch(haystack, needle), expected) << needle;
    EXPECT_EQ(KmpSearch(haystack, needle), expected) << needle;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SearchPropertyTest,
                         ::testing::Range<uint64_t>(1, 13));

TEST(SearchTest, EdgeCases) {
  EXPECT_TRUE(BoyerMooreSearch("abc", "").empty());
  EXPECT_TRUE(BoyerMooreSearch("", "a").empty());
  EXPECT_TRUE(BoyerMooreSearch("ab", "abc").empty());
  EXPECT_EQ(BoyerMooreSearch("aaaa", "aa"), (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(KmpSearch("aaaa", "aa"), (std::vector<size_t>{0, 1, 2}));
}

// ---- fragment matching over columns -----------------------------------------------

TEST(FixedMatcherTest, ValueMatchesFragmentModes) {
  EXPECT_TRUE(ValueMatchesFragment("hello", FragmentMode::kExact, "hello"));
  EXPECT_FALSE(ValueMatchesFragment("hello", FragmentMode::kExact, "hell"));
  EXPECT_TRUE(ValueMatchesFragment("hello", FragmentMode::kPrefix, "hel"));
  EXPECT_FALSE(ValueMatchesFragment("hello", FragmentMode::kPrefix, "ello"));
  EXPECT_TRUE(ValueMatchesFragment("hello", FragmentMode::kSuffix, "llo"));
  EXPECT_FALSE(ValueMatchesFragment("hello", FragmentMode::kSuffix, "hel"));
  EXPECT_TRUE(ValueMatchesFragment("hello", FragmentMode::kSub, "ell"));
  EXPECT_FALSE(ValueMatchesFragment("hello", FragmentMode::kSub, "xyz"));
  // Empty fragments: prefix/suffix/sub always, exact only on empty value.
  EXPECT_TRUE(ValueMatchesFragment("v", FragmentMode::kSub, ""));
  EXPECT_FALSE(ValueMatchesFragment("v", FragmentMode::kExact, ""));
  EXPECT_TRUE(ValueMatchesFragment("", FragmentMode::kExact, ""));
}

TEST(FixedMatcherTest, SearchPaddedColumnAllModes) {
  const std::vector<std::string_view> values = {"8F8F", "1F", "F8FE", "8F8F"};
  const std::string blob = BuildPaddedBlob(values, 4);
  EXPECT_EQ(SearchPaddedColumn(blob, 4, FragmentMode::kExact, "8F8F"),
            (std::vector<uint32_t>{0, 3}));
  EXPECT_EQ(SearchPaddedColumn(blob, 4, FragmentMode::kPrefix, "1"),
            (std::vector<uint32_t>{1}));
  EXPECT_EQ(SearchPaddedColumn(blob, 4, FragmentMode::kSuffix, "FE"),
            (std::vector<uint32_t>{2}));
  EXPECT_EQ(SearchPaddedColumn(blob, 4, FragmentMode::kSub, "F8"),
            (std::vector<uint32_t>{0, 2, 3}));
}

TEST(FixedMatcherTest, SubstringHitsCannotCrossCells) {
  // Adjacent full-width cells: "AB" + "BA" -> the blob contains "ABBA" but
  // "BB" spans two cells and must not match.
  const std::vector<std::string_view> values = {"AB", "BA"};
  const std::string blob = BuildPaddedBlob(values, 2);
  EXPECT_TRUE(SearchPaddedColumn(blob, 2, FragmentMode::kSub, "BB").empty());
  EXPECT_EQ(SearchPaddedColumn(blob, 2, FragmentMode::kSub, "AB"),
            (std::vector<uint32_t>{0}));
}

TEST(FixedMatcherTest, BmAndKmpPathsAgreeOnColumns) {
  Rng rng(77);
  std::vector<std::string> owned;
  for (int i = 0; i < 500; ++i) {
    std::string v;
    for (int k = 0; k < 1 + static_cast<int>(rng.NextBelow(6)); ++k) {
      v += static_cast<char>('A' + rng.NextBelow(3));
    }
    owned.push_back(v);
  }
  std::vector<std::string_view> values(owned.begin(), owned.end());
  const std::string blob = BuildPaddedBlob(values, 6);
  for (const std::string needle : {"AB", "BA", "AAB", "CC"}) {
    EXPECT_EQ(SearchPaddedColumn(blob, 6, FragmentMode::kSub, needle, true),
              SearchPaddedColumn(blob, 6, FragmentMode::kSub, needle, false))
        << needle;
  }
}

TEST(FixedMatcherTest, CheckPaddedRowsFiltersCandidates) {
  const std::vector<std::string_view> values = {"xx", "ab", "ab", "yy", "ab"};
  const std::string blob = BuildPaddedBlob(values, 2);
  EXPECT_EQ(CheckPaddedRows(blob, 2, FragmentMode::kExact, "ab", {0, 1, 3, 4}),
            (std::vector<uint32_t>{1, 4}));
  // Out-of-range candidates are ignored, not UB.
  EXPECT_TRUE(CheckPaddedRows(blob, 2, FragmentMode::kExact, "ab", {99}).empty());
}

TEST(FixedMatcherTest, SearchDelimitedColumnMatchesPaddedSemantics) {
  const std::vector<std::string_view> values = {"8F8F", "1F", "F8FE", ""};
  const std::string padded = BuildPaddedBlob(values, 4);
  const std::string delimited = BuildDelimitedBlob(values);
  for (const auto mode : {FragmentMode::kExact, FragmentMode::kPrefix,
                          FragmentMode::kSuffix, FragmentMode::kSub}) {
    for (const std::string frag : {"8F", "F8FE", "F", "", "zz"}) {
      EXPECT_EQ(SearchDelimitedColumn(delimited, mode, frag),
                SearchPaddedColumn(padded, 4, mode, frag))
          << static_cast<int>(mode) << " " << frag;
    }
  }
}

// ---- keyword-on-pattern matching (§5.1, Fig. 6) ------------------------------------

RuntimePattern Fig6Pattern() {
  // block_<sv1>F8<sv2>
  PatternElement c0{false, "block_", 0};
  PatternElement s1{true, "", 0};
  PatternElement c1{false, "F8", 0};
  PatternElement s2{true, "", 1};
  return RuntimePattern({c0, s1, c1, s2});
}

// True when some possible match consists exactly of `constraints` (order-free).
bool HasMatch(const std::vector<PossibleMatch>& matches,
              std::vector<SubVarConstraint> expected) {
  for (const PossibleMatch& m : matches) {
    if (m.constraints.size() != expected.size()) {
      continue;
    }
    std::vector<SubVarConstraint> got = m.constraints;
    bool all = true;
    for (const SubVarConstraint& e : expected) {
      const auto it = std::find(got.begin(), got.end(), e);
      if (it == got.end()) {
        all = false;
        break;
      }
      got.erase(it);
    }
    if (all) {
      return true;
    }
  }
  return false;
}

TEST(PatternMatchTest, KeywordInsideSubVariable) {
  // Fig. 6 cases 1 and 5: "8F8F" inside <sv1> or <sv2>.
  const auto matches = MatchKeywordOnPattern(Fig6Pattern(), "8F8F");
  EXPECT_TRUE(HasMatch(matches, {{0, FragmentMode::kSub, "8F8F"}}));
  EXPECT_TRUE(HasMatch(matches, {{1, FragmentMode::kSub, "8F8F"}}));
}

TEST(PatternMatchTest, HeadCase) {
  // Fig. 6 case 4: constant suffix "F8" is keyword prefix "F8F" -> remaining
  // "F" must be a prefix of <sv2>.
  const auto matches = MatchKeywordOnPattern(Fig6Pattern(), "F8F");
  EXPECT_TRUE(HasMatch(matches, {{1, FragmentMode::kPrefix, "F"}}));
}

TEST(PatternMatchTest, TailCase) {
  // Fig. 6 case 2: keyword "8F8" has suffix "F8" = constant prefix; the
  // remaining "8" must be a suffix of <sv1>. (Also matched inside either
  // sub-variable, and via the 1-char head overlap.)
  const auto matches = MatchKeywordOnPattern(Fig6Pattern(), "8F8");
  EXPECT_TRUE(HasMatch(matches, {{0, FragmentMode::kSuffix, "8"}}));
}

TEST(PatternMatchTest, BodyCase) {
  // Fig. 6 case 3: keyword "1F82" contains the whole constant "F8": "1" must
  // be a suffix of <sv1> AND "2" a prefix of <sv2> on the same row.
  const auto matches = MatchKeywordOnPattern(Fig6Pattern(), "1F82");
  EXPECT_TRUE(HasMatch(matches, {{0, FragmentMode::kSuffix, "1"},
                                 {1, FragmentMode::kPrefix, "2"}}));
}

TEST(PatternMatchTest, KeywordInsideConstantIsTrivial) {
  const auto matches = MatchKeywordOnPattern(Fig6Pattern(), "lock");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_TRUE(matches[0].trivial());
}

TEST(PatternMatchTest, KeywordSpanningConstantAndSubvars) {
  // "ck_9" = constant tail "ck_" + prefix "9" of <sv1>.
  const auto matches = MatchKeywordOnPattern(Fig6Pattern(), "ck_9");
  EXPECT_TRUE(HasMatch(matches, {{0, FragmentMode::kPrefix, "9"}}));
}

TEST(PatternMatchTest, ImpossibleKeywordHasNoMatches) {
  // 'z' cannot occur: no constant contains it, but sub-variables could hold
  // anything, so containment in a sub-variable is still possible. Check a
  // keyword that spans the full pattern impossibly instead:
  const RuntimePattern p({PatternElement{false, "ERR", 0}});  // constant-only
  EXPECT_TRUE(MatchKeywordOnPattern(p, "SUCC").empty());
  EXPECT_FALSE(MatchKeywordOnPattern(p, "RR").empty());
}

TEST(PatternMatchTest, ExactConstraintFromSpanningKeyword) {
  // Pattern <sv0>-<sv1>; keyword "ab-cd" forces sv0 suffix "ab", sv1 prefix "cd".
  RuntimePattern p({PatternElement{true, "", 0}, PatternElement{false, "-", 0},
                    PatternElement{true, "", 1}});
  const auto matches = MatchKeywordOnPattern(p, "ab-cd");
  EXPECT_TRUE(HasMatch(matches, {{0, FragmentMode::kSuffix, "ab"},
                                 {1, FragmentMode::kPrefix, "cd"}}));
}

TEST(PatternMatchTest, MultiConstantSpan) {
  // Pattern a<sv0>b<sv1>c ; keyword "b" is inside a constant -> trivial.
  RuntimePattern p({PatternElement{false, "a", 0}, PatternElement{true, "", 0},
                    PatternElement{false, "b", 0}, PatternElement{true, "", 1},
                    PatternElement{false, "c", 0}});
  const auto matches = MatchKeywordOnPattern(p, "b");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_TRUE(matches[0].trivial());
  // Keyword spanning everything: "aXbYc" -> sv0 exact "X", sv1 exact "Y"
  // via prefix/suffix recursion.
  const auto spanning = MatchKeywordOnPattern(p, "aXbYc");
  EXPECT_TRUE(HasMatch(spanning, {{0, FragmentMode::kExact, "X"},
                                  {1, FragmentMode::kExact, "Y"}}));
}

// Property: for ANY pattern, value set, and keyword, evaluating the possible
// matches over a value's sub-values must agree exactly with a direct
// substring test on the full value. This brute-forces the §5.1 recursion.
class PatternMatchPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PatternMatchPropertyTest, PossibleMatchesEquivalentToSubstringTest) {
  Rng rng(GetParam() * 131 + 7);
  // Random alternating pattern: constants from a small alphabet, 1-3 subvars.
  std::vector<PatternElement> elems;
  uint32_t next_sv = 0;
  const int segments = 2 + static_cast<int>(rng.NextBelow(4));
  bool want_const = rng.NextBool(0.5);
  for (int s = 0; s < segments; ++s) {
    if (want_const) {
      PatternElement e;
      const int len = 1 + static_cast<int>(rng.NextBelow(3));
      for (int i = 0; i < len; ++i) {
        e.constant += "AB_8F"[rng.NextBelow(5)];
      }
      elems.push_back(std::move(e));
    } else {
      PatternElement e;
      e.is_subvar = true;
      e.subvar = next_sv++;
      elems.push_back(e);
    }
    want_const = !want_const;
  }
  if (next_sv == 0) {
    PatternElement e;
    e.is_subvar = true;
    e.subvar = next_sv++;
    elems.push_back(e);
  }
  const RuntimePattern pattern(std::move(elems));

  // Values that follow the pattern: random sub-values from the same alphabet.
  struct Row {
    std::string value;
    std::vector<std::string> subvalues;
  };
  std::vector<Row> rows;
  for (int r = 0; r < 60; ++r) {
    Row row;
    for (uint32_t sv = 0; sv < next_sv; ++sv) {
      std::string v;
      const int len = static_cast<int>(rng.NextBelow(4));
      for (int i = 0; i < len; ++i) {
        v += "AB8F"[rng.NextBelow(4)];
      }
      row.subvalues.push_back(std::move(v));
    }
    std::vector<std::string_view> views(row.subvalues.begin(),
                                        row.subvalues.end());
    row.value = pattern.Render(views);
    rows.push_back(std::move(row));
  }

  // Keywords: substrings of rendered values plus random strings.
  for (int trial = 0; trial < 40; ++trial) {
    std::string keyword;
    if (rng.NextBool(0.7) && !rows.empty()) {
      const Row& row = rows[rng.NextBelow(rows.size())];
      if (row.value.empty()) {
        continue;
      }
      const size_t start = rng.NextBelow(row.value.size());
      const size_t len = 1 + rng.NextBelow(row.value.size() - start);
      keyword = row.value.substr(start, len);
    } else {
      const int len = 1 + static_cast<int>(rng.NextBelow(5));
      for (int i = 0; i < len; ++i) {
        keyword += "AB_8FZ"[rng.NextBelow(6)];
      }
    }

    const auto matches = MatchKeywordOnPattern(pattern, keyword);
    for (const Row& row : rows) {
      const bool expected = row.value.find(keyword) != std::string::npos;
      bool actual = false;
      for (const PossibleMatch& m : matches) {
        bool all = true;
        for (const SubVarConstraint& c : m.constraints) {
          if (!ValueMatchesFragment(row.subvalues[c.subvar], c.mode,
                                    c.fragment)) {
            all = false;
            break;
          }
        }
        if (all) {
          actual = true;
          break;
        }
      }
      ASSERT_EQ(actual, expected)
          << "pattern=" << pattern.ToString() << " keyword=" << keyword
          << " value=" << row.value;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PatternMatchPropertyTest,
                         ::testing::Range<uint64_t>(1, 31));

// ---- query parser -------------------------------------------------------------------

TEST(QueryParserTest, SingleTerm) {
  auto expr = ParseQuery("ERROR");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->kind, QueryExpr::Kind::kTerm);
  EXPECT_EQ((*expr)->term.text, "ERROR");
  ASSERT_EQ((*expr)->term.keywords.size(), 1u);
}

TEST(QueryParserTest, MultiWordTermsAndOperators) {
  auto expr = ParseQuery("ERROR and part_id:510 and request id REQ_11");
  ASSERT_TRUE(expr.ok());
  // ((ERROR AND part_id:510) AND "request id REQ_11")
  const QueryExpr& root = **expr;
  ASSERT_EQ(root.kind, QueryExpr::Kind::kAnd);
  EXPECT_EQ(root.right->term.text, "request id REQ_11");
  EXPECT_EQ(root.right->term.keywords.size(), 3u);
  ASSERT_EQ(root.left->kind, QueryExpr::Kind::kAnd);
  EXPECT_EQ(root.left->left->term.text, "ERROR");
  // "part_id:510" splits into two keywords at the colon.
  EXPECT_EQ(root.left->right->term.keywords.size(), 2u);
}

TEST(QueryParserTest, NotVariants) {
  auto expr = ParseQuery("ERROR not UserId:-2");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->kind, QueryExpr::Kind::kNot);
  ASSERT_NE((*expr)->left, nullptr);

  auto leading = ParseQuery("NOT debug");
  ASSERT_TRUE(leading.ok());
  EXPECT_EQ((*leading)->kind, QueryExpr::Kind::kNot);
  EXPECT_EQ((*leading)->left, nullptr);
}

TEST(QueryParserTest, CaseInsensitiveOperators) {
  auto expr = ParseQuery("a AND b Or c NOT d");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->kind, QueryExpr::Kind::kNot);
  EXPECT_EQ((*expr)->left->kind, QueryExpr::Kind::kOr);
}

TEST(QueryParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("   ").ok());
  EXPECT_FALSE(ParseQuery("and x").ok());
  EXPECT_FALSE(ParseQuery("x and").ok());
  EXPECT_FALSE(ParseQuery("x and and y").ok());
}

TEST(QueryParserTest, QuotedWordIsNeverAnOperator) {
  // `error "and" retry` searches for the literal token `and`, it does not
  // conjoin: one term with three keywords.
  auto expr = ParseQuery("error \"and\" retry");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->kind, QueryExpr::Kind::kTerm);
  EXPECT_EQ((*expr)->term.text, "error and retry");
  EXPECT_EQ((*expr)->term.keywords.size(), 3u);
}

TEST(QueryParserTest, QuotedRunKeepsEmbeddedBlanks) {
  auto expr = ParseQuery("\"disk error\" AND fatal");
  ASSERT_TRUE(expr.ok());
  const QueryExpr& root = **expr;
  ASSERT_EQ(root.kind, QueryExpr::Kind::kAnd);
  EXPECT_EQ(root.left->term.text, "disk error");
  EXPECT_EQ(root.left->term.keywords.size(), 2u);
  EXPECT_EQ(root.right->term.text, "fatal");
}

TEST(QueryParserTest, QuotingIsTransparentForPlainWords) {
  // Quoting a word that is not an operator yields the same parse.
  auto quoted = ParseQuery("\"ERROR\" and \"code:20012\"");
  auto plain = ParseQuery("ERROR and code:20012");
  ASSERT_TRUE(quoted.ok());
  ASSERT_TRUE(plain.ok());
  ASSERT_EQ((*quoted)->kind, (*plain)->kind);
  EXPECT_EQ((*quoted)->left->term.text, (*plain)->left->term.text);
  EXPECT_EQ((*quoted)->right->term.keywords, (*plain)->right->term.keywords);
}

TEST(QueryParserTest, UnterminatedQuoteExtendsToEnd) {
  auto expr = ParseQuery("\"error and more");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->kind, QueryExpr::Kind::kTerm);
  EXPECT_EQ((*expr)->term.text, "error and more");
}

// ---- line match ----------------------------------------------------------------------

TEST(LineMatchTest, TermSemantics) {
  auto expr = ParseQuery("error blk_42");
  ASSERT_TRUE(expr.ok());
  EXPECT_TRUE(LineMatchesQuery("found error on blk_42 today", **expr));
  // Both keywords must hit, in any token.
  EXPECT_TRUE(LineMatchesQuery("blk_42 error", **expr));
  EXPECT_FALSE(LineMatchesQuery("found error on blk_43", **expr));
}

TEST(LineMatchTest, BooleanOperators) {
  auto expr = ParseQuery("ERROR or WARN not retry");
  ASSERT_TRUE(expr.ok());
  EXPECT_TRUE(LineMatchesQuery("WARN disk low", **expr));
  EXPECT_TRUE(LineMatchesQuery("ERROR disk gone", **expr));
  EXPECT_FALSE(LineMatchesQuery("WARN disk low retry later", **expr));
  EXPECT_FALSE(LineMatchesQuery("INFO all good", **expr));
}

TEST(LineMatchTest, KeywordWithinTokenOnly) {
  auto expr = ParseQuery("lowdisk");
  ASSERT_TRUE(expr.ok());
  // "low disk" are two tokens; the keyword cannot span them.
  EXPECT_FALSE(LineMatchesQuery("warn low disk", **expr));
  EXPECT_TRUE(LineMatchesQuery("warn lowdisk", **expr));
}

// ---- query cache ------------------------------------------------------------------------

TEST(QueryCacheTest, HitMissAndClear) {
  QueryCache cache;
  EXPECT_FALSE(cache.Lookup("q").has_value());
  EXPECT_EQ(cache.misses(), 1u);
  cache.Insert("q", QueryHits{{3, "line three"}});
  auto hit = cache.Lookup("q");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(cache.hits(), 1u);
  ASSERT_EQ(hit->hits.size(), 1u);
  EXPECT_EQ(hit->hits[0].first, 3u);
  cache.Clear();
  EXPECT_FALSE(cache.Lookup("q").has_value());
}

TEST(QueryCacheTest, InsertReplacesExistingEntry) {
  // Re-inserting under the same command must replace the stale value, not
  // keep the first one (the old emplace-based Insert silently dropped the
  // update).
  QueryCache cache;
  cache.Insert("q", QueryHits{{1, "old"}});
  cache.Insert("q", QueryHits{{2, "new"}});
  auto hit = cache.Lookup("q");
  ASSERT_TRUE(hit.has_value());
  ASSERT_EQ(hit->hits.size(), 1u);
  EXPECT_EQ(hit->hits[0].first, 2u);
  EXPECT_EQ(hit->hits[0].second, "new");
}

TEST(QueryCacheTest, ByteBudgetEvictsLeastRecentlyUsed) {
  // Budget sized to hold roughly two entries; inserting a third must evict
  // the least recently used one.
  const std::string big(512, 'x');
  QueryCache cache(/*byte_budget=*/2000);
  cache.Insert("a", QueryHits{{1, big}});
  cache.Insert("b", QueryHits{{2, big}});
  ASSERT_TRUE(cache.Lookup("a").has_value());  // promote "a"; "b" is LRU now
  cache.Insert("c", QueryHits{{3, big}});
  EXPECT_GE(cache.evictions(), 1u);
  EXPECT_FALSE(cache.Lookup("b").has_value());
  EXPECT_TRUE(cache.Lookup("c").has_value());
  EXPECT_LE(cache.bytes_in_use(), cache.byte_budget());
}

TEST(QueryCacheTest, KeepsFreshestEntryEvenWhenOverBudget) {
  // An entry larger than the whole budget is still usable until the next
  // insert (never evict the freshest entry).
  QueryCache cache(/*byte_budget=*/64);
  cache.Insert("huge", QueryHits{{1, std::string(4096, 'y')}});
  EXPECT_TRUE(cache.Lookup("huge").has_value());
  EXPECT_EQ(cache.size(), 1u);
}

TEST(QueryCacheTest, StoresLocatorSnapshot) {
  QueryCache cache;
  CachedQuery entry;
  entry.hits = {{7, "hit"}};
  entry.locator.capsules_decompressed = 5;
  entry.locator.bytes_decompressed = 1234;
  cache.Insert("q", entry);
  auto hit = cache.Lookup("q");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->locator.capsules_decompressed, 5u);
  EXPECT_EQ(hit->locator.bytes_decompressed, 1234u);
}

TEST(QueryCacheTest, SixtyFourBitLineNumbersSurviveRoundTrip) {
  QueryCache cache;
  const uint64_t line = (5ull << 32) + 17;  // > UINT32_MAX
  cache.Insert("q", QueryHits{{line, "far line"}});
  auto hit = cache.Lookup("q");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->hits[0].first, line);
}

}  // namespace
}  // namespace loggrep
