#include <gtest/gtest.h>

#include <string>

#include "src/core/engine.h"
#include "src/parser/template_miner.h"
#include "src/workload/datasets.h"
#include "src/workload/loggen.h"

namespace loggrep {
namespace {

std::string Lines(std::initializer_list<std::string_view> lines) {
  std::string text;
  for (std::string_view l : lines) {
    text += l;
    text += '\n';
  }
  return text;
}

TEST(EngineTest, PaperFigure1WalkThrough) {
  const std::string text = Lines({
      "T134 bk.FF.13 read",
      "T169 state: SUC#1604",
      "T179 bk.C5.15 read",
      "T181 state: ERR#1623",
  });
  LogGrepEngine engine;
  const std::string box = engine.CompressBlock(text);

  // Query "read": hits the static pattern of group 1 -> lines 0 and 2.
  auto read = engine.Query(box, "read");
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->hits.size(), 2u);
  EXPECT_EQ(read->hits[0].first, 0u);
  EXPECT_EQ(read->hits[0].second, "T134 bk.FF.13 read");
  EXPECT_EQ(read->hits[1].first, 2u);
  EXPECT_EQ(read->hits[1].second, "T179 bk.C5.15 read");

  // Query "ERR#1623": nominal/variable content.
  auto err = engine.Query(box, "ERR#1623");
  ASSERT_TRUE(err.ok());
  ASSERT_EQ(err->hits.size(), 1u);
  EXPECT_EQ(err->hits[1 - 1].second, "T181 state: ERR#1623");

  // AND across template and variable.
  auto both = engine.Query(box, "state: and SUC");
  ASSERT_TRUE(both.ok());
  ASSERT_EQ(both->hits.size(), 1u);
  EXPECT_EQ(both->hits[0].first, 1u);
}

TEST(EngineTest, EmptyBlock) {
  LogGrepEngine engine;
  const std::string box = engine.CompressBlock("");
  auto result = engine.Query(box, "anything");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->hits.empty());
}

TEST(EngineTest, SingleLineBlock) {
  LogGrepEngine engine;
  const std::string box = engine.CompressBlock("lonely line 42\n");
  auto hit = engine.Query(box, "lonely");
  ASSERT_TRUE(hit.ok());
  ASSERT_EQ(hit->hits.size(), 1u);
  EXPECT_EQ(hit->hits[0].second, "lonely line 42");
  auto miss = engine.Query(box, "crowded");
  ASSERT_TRUE(miss.ok());
  EXPECT_TRUE(miss->hits.empty());
}

TEST(EngineTest, MalformedQueryRejected) {
  LogGrepEngine engine;
  const std::string box = engine.CompressBlock("x 1\n");
  EXPECT_FALSE(engine.Query(box, "").ok());
  EXPECT_FALSE(engine.Query(box, "and and").ok());
}

TEST(EngineTest, CorruptBoxRejected) {
  LogGrepEngine engine;
  EXPECT_FALSE(engine.Query("not a capsule box", "x").ok());
  const std::string box = engine.CompressBlock("x 1\n");
  EXPECT_FALSE(engine.Query(std::string_view(box).substr(0, 10), "x").ok());
}

TEST(EngineTest, StampFilteringReducesDecompression) {
  // A keyword whose character classes cannot occur in any capsule should
  // decompress (nearly) nothing when stamps are on.
  const std::string text =
      LogGenerator(*FindDataset("Log G")).Generate(128 * 1024);

  EngineOptions with;
  with.use_cache = false;
  LogGrepEngine engine_with(with);
  EngineOptions without;
  without.use_cache = false;
  without.use_stamps = false;
  LogGrepEngine engine_without(without);

  const std::string box_with = engine_with.CompressBlock(text);
  const std::string box_without = engine_without.CompressBlock(text);
  const std::string query = "zzzzqqqq";  // g-z class, absent from hex ids

  auto r_with = engine_with.Query(box_with, query);
  auto r_without = engine_without.Query(box_without, query);
  ASSERT_TRUE(r_with.ok());
  ASSERT_TRUE(r_without.ok());
  EXPECT_TRUE(r_with->hits.empty());
  EXPECT_TRUE(r_without->hits.empty());
  EXPECT_LT(r_with->locator.capsules_decompressed,
            r_without->locator.capsules_decompressed);
  EXPECT_GT(r_with->locator.capsules_stamp_filtered, 0u);
}

TEST(EngineTest, WildcardQueries) {
  const std::string text = Lines({
      "conn from 11.187.3.9 ok",
      "conn from 11.187.4.101 ok",
      "conn from 10.20.3.9 ok",
  });
  LogGrepEngine engine;
  const std::string box = engine.CompressBlock(text);
  auto result = engine.Query(box, "11.187.*");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->hits.size(), 2u);
  EXPECT_EQ(result->hits[0].first, 0u);
  EXPECT_EQ(result->hits[1].first, 1u);

  auto qmark = engine.Query(box, "11.187.?.9");
  ASSERT_TRUE(qmark.ok());
  ASSERT_EQ(qmark->hits.size(), 1u);
  EXPECT_EQ(qmark->hits[0].first, 0u);
}

TEST(EngineTest, OutlierLinesStillQueryable) {
  // Build a block where one weird line will not match any mined template.
  std::string text;
  for (int i = 0; i < 400; ++i) {
    text += "svc req " + std::to_string(i) + " done\n";
  }
  text += "!!! PANIC unique stack frame #42 !!!\n";
  LogGrepEngine engine;
  const std::string box = engine.CompressBlock(text);
  auto result = engine.Query(box, "PANIC");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->hits.size(), 1u);
  EXPECT_EQ(result->hits[0].first, 400u);
  EXPECT_EQ(result->hits[0].second, "!!! PANIC unique stack frame #42 !!!");
}

TEST(EngineTest, ResultsOrderedByLineNumberAcrossGroups) {
  const std::string text = Lines({
      "alpha event 1",
      "beta thing 2",
      "alpha event 3",
      "beta thing 4",
      "alpha event 5",
  });
  LogGrepEngine engine;
  const std::string box = engine.CompressBlock(text);
  auto result = engine.Query(box, "alpha or beta");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->hits.size(), 5u);
  for (uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(result->hits[i].first, i);
  }
}

TEST(EngineTest, CacheDisabledNeverServesFromCache) {
  EngineOptions opts;
  opts.use_cache = false;
  LogGrepEngine engine(opts);
  const std::string box = engine.CompressBlock("a 1\n");
  auto r1 = engine.Query(box, "a");
  auto r2 = engine.Query(box, "a");
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r1->from_cache);
  EXPECT_FALSE(r2->from_cache);
  EXPECT_EQ(engine.cache().size(), 0u);
}

TEST(EngineTest, QueryCacheIsPerBox) {
  // Regression: the same command against a different box must not serve the
  // first box's cached hits.
  LogGrepEngine engine;
  const std::string box_a = engine.CompressBlock("alpha event 1\n");
  const std::string box_b = engine.CompressBlock("alpha other 2\nalpha more 3\n");
  auto a = engine.Query(box_a, "alpha");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->hits.size(), 1u);
  auto b = engine.Query(box_b, "alpha");
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(b->from_cache);
  EXPECT_EQ(b->hits.size(), 2u);
  // Re-querying each box hits its own cache entry.
  auto a2 = engine.Query(box_a, "alpha");
  ASSERT_TRUE(a2.ok());
  EXPECT_TRUE(a2->from_cache);
  EXPECT_EQ(a2->hits.size(), 1u);
}

TEST(EngineTest, CachedResultReportsOriginalCost) {
  // Regression: a command-cache hit used to report an all-zero LocatorStats;
  // it must echo the snapshot of the execution that produced the result.
  LogGrepEngine engine;
  const std::string text =
      LogGenerator(*FindDataset("Log A")).Generate(24 * 1024);
  const std::string box = engine.CompressBlock(text);
  auto cold = engine.Query(box, "ERROR");
  ASSERT_TRUE(cold.ok());
  ASSERT_FALSE(cold->from_cache);
  ASSERT_GT(cold->locator.capsules_decompressed, 0u);
  auto warm = engine.Query(box, "ERROR");
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(warm->from_cache);
  EXPECT_EQ(warm->locator.capsules_decompressed,
            cold->locator.capsules_decompressed);
  EXPECT_EQ(warm->locator.bytes_decompressed, cold->locator.bytes_decompressed);
}

TEST(EngineTest, BoxCacheMakesSecondCommandCheaper) {
  // Two *different* commands over the same box: the second never misses the
  // command cache, but the shared box cache already holds the opened box and
  // the capsules the first command decompressed.
  LogGrepEngine engine;  // box cache on by default
  const std::string text =
      LogGenerator(*FindDataset("Log A")).Generate(24 * 1024);
  const std::string box = engine.CompressBlock(text);
  auto first = engine.Query(box, "ERROR");
  ASSERT_TRUE(first.ok());
  EXPECT_GT(first->locator.cache_misses, 0u);
  auto second = engine.Query(box, "ERROR and aborted");
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->from_cache);
  EXPECT_GT(second->locator.cache_hits, 0u);
  EXPECT_GT(second->locator.bytes_saved, 0u);
  // Strictly fewer fresh bytes decompressed than a cold run of the same
  // command on a cache-less engine.
  EngineOptions cold_options;
  cold_options.use_cache = false;
  cold_options.use_box_cache = false;
  LogGrepEngine cold(cold_options);
  auto cold_run = cold.Query(box, "ERROR and aborted");
  ASSERT_TRUE(cold_run.ok());
  EXPECT_LT(second->locator.bytes_decompressed,
            cold_run->locator.bytes_decompressed);
  // And identical hits with caching on and off.
  ASSERT_EQ(second->hits.size(), cold_run->hits.size());
  for (size_t i = 0; i < cold_run->hits.size(); ++i) {
    EXPECT_EQ(second->hits[i].first, cold_run->hits[i].first);
    EXPECT_EQ(second->hits[i].second, cold_run->hits[i].second);
  }
}

// One registry shared by the metrics-asserting tests in this binary; each
// test Reset()s it at entry instead of constructing a throwaway registry
// (handles registered by earlier tests stay valid across the reset).
MetricsRegistry& SharedMetrics() {
  static MetricsRegistry registry;
  registry.Reset();
  return registry;
}

TEST(EngineTest, SharedBoxCacheAcrossEngines) {
  // Two engines wired to one external BoxCache: what one engine opens and
  // decompresses is warm for the other (the ParallelQuery arrangement).
  BoxCacheOptions cache_options;
  MetricsRegistry& metrics = SharedMetrics();
  cache_options.metrics = &metrics;
  BoxCache shared(cache_options);
  EngineOptions options;
  options.box_cache = &shared;
  options.use_cache = false;
  LogGrepEngine a(options);
  LogGrepEngine b(options);
  ASSERT_EQ(a.box_cache(), &shared);
  ASSERT_EQ(b.box_cache(), &shared);

  const std::string box = a.CompressBlock("shared entry nu 1\nother xi 2\n");
  auto first = a.Query(box, "nu");
  ASSERT_TRUE(first.ok());
  auto second = b.Query(box, "nu");
  ASSERT_TRUE(second.ok());
  EXPECT_GT(second->locator.cache_hits, 0u);
  ASSERT_EQ(second->hits.size(), first->hits.size());
  EXPECT_GT(metrics.GetOrCreate("query.box_cache.hits")->value(), 0u);
}

TEST(EngineTest, MetricsRegistryCollectsQueryCounters) {
  MetricsRegistry& metrics = SharedMetrics();
  EngineOptions options;
  options.metrics = &metrics;
  LogGrepEngine engine(options);
  const std::string box = engine.CompressBlock("metered entry pi 1\n");
  ASSERT_TRUE(engine.Query(box, "pi").ok());
  ASSERT_TRUE(engine.Query(box, "pi").ok());  // command-cache hit
  EXPECT_EQ(metrics.GetOrCreate("query.count")->value(), 1u);
  EXPECT_EQ(metrics.GetOrCreate("query.command_cache_hits")->value(), 1u);
}

TEST(EngineTest, CodecChoiceIsHonored) {
  EngineOptions opts;
  opts.codec = &GetZstdCodec();
  LogGrepEngine engine(opts);
  const std::string text =
      LogGenerator(*FindDataset("Log D")).Generate(32 * 1024);
  const std::string box = engine.CompressBlock(text);
  auto result = engine.Query(box, "project_id:");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->hits.empty());
}

TEST(EngineTest, AdversarialTextIsLossless) {
  // Lines with repeated separators, key=value chains, unicode-ish bytes, and
  // near-identical shapes.
  const std::string text = Lines({
      "a=1 b=2 c=3",
      "a=9 b=8 c=7",
      "  leading spaces  and   runs 5",
      "trailing space 6 ",
      "sep()[]{}\"'chars 7",
      "x:y:z:1",
      "x:y:z:2",
  });
  LogGrepEngine engine;
  const std::string box = engine.CompressBlock(text);
  auto all = engine.Query(box, "not zzzNOSUCH");
  ASSERT_TRUE(all.ok());
  const auto lines = SplitLines(text);
  ASSERT_EQ(all->hits.size(), lines.size());
  for (size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(all->hits[i].second, lines[i]) << i;
  }
}

// Parameterized: every engine configuration is lossless on every dataset's
// sample (compact version of the integration sweep, at unit scale).
class EngineConfigTest : public ::testing::TestWithParam<int> {};

TEST_P(EngineConfigTest, LosslessOnLogA) {
  EngineOptions opts;
  switch (GetParam()) {
    case 0:
      break;
    case 1:
      opts.use_real = false;
      break;
    case 2:
      opts.use_nominal = false;
      break;
    case 3:
      opts.use_stamps = false;
      break;
    case 4:
      opts.use_fixed = false;
      break;
    case 5:
      opts.static_only = true;
      break;
    case 6:
      opts.codec = &GetGzipCodec();
      break;
    case 7:
      opts.codec = &GetZstdCodec();
      break;
  }
  const std::string text =
      LogGenerator(*FindDataset("Log A")).Generate(16 * 1024);
  LogGrepEngine engine(opts);
  const std::string box = engine.CompressBlock(text);
  auto all = engine.Query(box, "not zzzNOSUCH");
  ASSERT_TRUE(all.ok());
  const auto lines = SplitLines(text);
  ASSERT_EQ(all->hits.size(), lines.size());
  for (size_t i = 0; i < lines.size(); ++i) {
    ASSERT_EQ(all->hits[i].second, lines[i]) << "config " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, EngineConfigTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace loggrep
