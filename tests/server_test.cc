// End-to-end tests for loggrepd (src/server/daemon.h): a real daemon on an
// ephemeral loopback port, driven through the blocking DaemonClient and raw
// sockets. Every query answer is checked hit-for-hit against a serial
// LogArchive opened on the same directory — the daemon must be a transport,
// never a different engine.
//
// Covered contracts (single source: src/server/archive_service.h):
//   200 complete / 206 degraded+partial / 400 bad query / 404 missing
//   archive / 500 block failure with degrade=0 / 429 over admission limit,
// plus process-wide cache warmth across connections, keep-alive reuse,
// pipelining, per-request deadlines, and graceful drain under load.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/json.h"
#include "src/server/archive_service.h"
#include "src/server/client.h"
#include "src/server/daemon.h"
#include "src/store/archive_set.h"
#include "src/store/log_archive.h"
#include "src/store/shard_router.h"
#include "src/store/storage_env.h"
#include "src/workload/datasets.h"
#include "src/workload/loggen.h"
#include "src/workload/queries.h"

namespace loggrep {
namespace {

constexpr size_t kBlocks = 3;
constexpr size_t kLinesPerBlock = 120;
constexpr uint64_t kSeed = 42;

std::vector<std::string> SplitIntoLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    lines.emplace_back(text, pos, nl - pos);
    pos = nl + 1;
  }
  return lines;
}

// A keyword guaranteed to hit block `b` (its longest alphanumeric run in the
// block's first line) so block pruning cannot excuse the block.
std::string AnchorKeyword(const std::vector<std::string>& block_lines) {
  const std::string& line = block_lines.front();
  std::string best;
  std::string cur;
  for (char c : line) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      cur.push_back(c);
    } else {
      if (cur.size() > best.size()) best = cur;
      cur.clear();
    }
  }
  if (cur.size() > best.size()) best = cur;
  return best;
}

void ExpectHitsEqual(const QueryHits& expected, const QueryHits& actual,
                     const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label << ": hit count diverges";
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(expected[i].first, actual[i].first)
        << label << ": hit " << i << " line number diverges";
    ASSERT_EQ(expected[i].second, actual[i].second)
        << label << ": line " << expected[i].first << " text diverges";
  }
}

// Minimal raw-socket client for the byte-level cases (pipelining, 405) the
// structured DaemonClient deliberately cannot emit.
class RawConnection {
 public:
  explicit RawConnection(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawConnection() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return fd_ >= 0; }

  bool Send(std::string_view bytes) {
    while (!bytes.empty()) {
      const ssize_t sent = ::send(fd_, bytes.data(), bytes.size(), 0);
      if (sent <= 0) return false;
      bytes.remove_prefix(static_cast<size_t>(sent));
    }
    return true;
  }

  // Reads until `count` complete responses have been parsed.
  bool ReadResponses(size_t count, std::vector<ParsedResponse>* out) {
    std::string data;
    char buf[8192];
    while (out->size() < count) {
      ParsedResponse response;
      size_t consumed = 0;
      if (ParseResponseBytes(data, &response, &consumed)) {
        out->push_back(std::move(response));
        data.erase(0, consumed);
        continue;
      }
      const ssize_t got = ::recv(fd_, buf, sizeof(buf), 0);
      if (got <= 0) return false;
      data.append(buf, static_cast<size_t>(got));
    }
    return true;
  }

 private:
  int fd_ = -1;
};

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (std::filesystem::temp_directory_path() /
             ("loggrep_server_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                .string();
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);

    DatasetSpec spec = AllDatasets().front();
    for (size_t b = 0; b < kBlocks; ++b) {
      spec.seed = kSeed * 1000003 + b + 1;
      LogGenerator gen(spec);
      block_texts_.push_back(gen.GenerateLines(kLinesPerBlock));
      block_lines_.push_back(SplitIntoLines(block_texts_.back()));
    }
    commands_ = QuerySuiteForDataset(spec.name);
    ASSERT_FALSE(commands_.empty());

    Result<LogArchive> archive = LogArchive::Create(ArchiveDir(), {});
    ASSERT_TRUE(archive.ok()) << archive.status().ToString();
    for (const std::string& text : block_texts_) {
      ASSERT_TRUE(archive->AppendBlock(text).ok());
    }
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  std::string ArchiveDir() const { return root_ + "/arch"; }

  DaemonOptions BaseOptions() {
    DaemonOptions options;
    options.service.root = root_;
    options.num_threads = 4;
    return options;
  }

  // Serial oracle: a private LogArchive on the same files.
  QueryHits OracleHits(const std::string& command) {
    Result<LogArchive> archive = LogArchive::Open(ArchiveDir());
    EXPECT_TRUE(archive.ok()) << archive.status().ToString();
    Result<ArchiveQueryResult> r = archive->Query(command);
    EXPECT_TRUE(r.ok()) << command << ": " << r.status().ToString();
    return r->hits;
  }

  std::string root_;
  std::vector<std::string> block_texts_;
  std::vector<std::vector<std::string>> block_lines_;
  std::vector<std::string> commands_;
};

TEST_F(ServerTest, HealthzMetricsAndUnknownEndpoints) {
  LoggrepDaemon daemon(BaseOptions());
  Result<uint16_t> port = daemon.Start();
  ASSERT_TRUE(port.ok()) << port.status().ToString();
  ASSERT_GT(*port, 0);

  DaemonClient client("127.0.0.1", *port);
  Result<ParsedResponse> health = client.Get("/healthz");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->status, 200);
  EXPECT_NE(health->body.find("\"status\":\"ok\""), std::string::npos)
      << health->body;
  EXPECT_NE(health->body.find("\"version\":"), std::string::npos);
  EXPECT_NE(health->body.find("\"uptime_seconds\":"), std::string::npos);
  EXPECT_NE(health->body.find("\"archives_open\":"), std::string::npos);

  Result<ParsedResponse> metrics = client.Get("/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->status, 200);
  EXPECT_NE(metrics->body.find("loggrep_server_requests"), std::string::npos)
      << metrics->body.substr(0, 400);

  Result<ParsedResponse> missing = client.Get("/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);
}

TEST_F(ServerTest, QueryAndExplainMatchTheSerialOracleHitForHit) {
  LoggrepDaemon daemon(BaseOptions());
  Result<uint16_t> port = daemon.Start();
  ASSERT_TRUE(port.ok()) << port.status().ToString();

  DaemonClient client("127.0.0.1", *port);
  for (const std::string& command : commands_) {
    const QueryHits expected = OracleHits(command);

    Result<RemoteQueryResult> post = client.Query("arch", command);
    ASSERT_TRUE(post.ok()) << command << ": " << post.status().ToString();
    EXPECT_EQ(post->http_status, 200) << post->body;
    EXPECT_TRUE(post->complete);
    ExpectHitsEqual(expected, post->hits, command + " [POST]");

    RemoteQueryOptions get_options;
    get_options.use_post = false;
    Result<RemoteQueryResult> get = client.Query("arch", command, get_options);
    ASSERT_TRUE(get.ok()) << command << ": " << get.status().ToString();
    EXPECT_EQ(get->http_status, 200);
    ExpectHitsEqual(expected, get->hits, command + " [GET]");

    Result<RemoteQueryResult> explain = client.Explain("arch", command);
    ASSERT_TRUE(explain.ok()) << explain.status().ToString();
    EXPECT_EQ(explain->http_status, 200);
    ExpectHitsEqual(expected, explain->hits, command + " [explain]");
    Result<JsonValue> doc = ParseJson(explain->body);
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    const JsonValue& ex = doc->Get("explain");
    ASSERT_TRUE(ex.is_object()) << explain->body.substr(0, 200);
    EXPECT_TRUE(ex.Get("invariant_ok").AsBool())
        << ex.Get("invariant_detail").AsString();
    EXPECT_FALSE(ex.Get("render").AsString().empty());
  }
  EXPECT_EQ(daemon.service().open_archives(), 1u);
}

TEST_F(ServerTest, ArchiveStaysWarmAcrossConnections) {
  LoggrepDaemon daemon(BaseOptions());
  Result<uint16_t> port = daemon.Start();
  ASSERT_TRUE(port.ok()) << port.status().ToString();
  const std::string command = AnchorKeyword(block_lines_[0]);

  // Cold: first client pays the decompression (nothing cached yet).
  uint64_t cold_bytes = 0;
  {
    DaemonClient first("127.0.0.1", *port);
    Result<RemoteQueryResult> cold = first.Query("arch", command);
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();
    ASSERT_EQ(cold->http_status, 200);
    cold_bytes = cold->bytes_decompressed;
    EXPECT_GT(cold_bytes, 0u) << "cold query should decompress";
    EXPECT_EQ(cold->blocks_from_cache, 0u);
  }

  // Warm: a *different* connection reuses the process-wide archive handle —
  // every block answers from the command cache (stats echo the cold run's
  // cost snapshot; blocks_from_cache is the honest "no fresh work" signal).
  DaemonClient second("127.0.0.1", *port);
  Result<RemoteQueryResult> warm = second.Query("arch", command);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  ASSERT_EQ(warm->http_status, 200);
  EXPECT_GT(warm->blocks_queried, 0u);
  EXPECT_EQ(warm->blocks_from_cache, warm->blocks_queried)
      << "a repeat of the same command must be fully cache-served";
  EXPECT_LT(warm->bytes_decompressed, cold_bytes + 1);
  ExpectHitsEqual(OracleHits(command), warm->hits, command + " [warm]");
}

TEST_F(ServerTest, DegradedQueryReturns206WithPartialReport) {
  FaultInjectingStorageEnv fault(FaultOptions{.seed = kSeed});
  fault.AddPermanentFault("block-1.lgc", StatusCode::kIOError);

  DaemonOptions options = BaseOptions();
  options.service.archive.env = &fault;
  options.service.archive.retry.max_attempts = 2;
  options.service.archive.box_cache_budget_bytes = 0;
  LoggrepDaemon daemon(options);
  Result<uint16_t> port = daemon.Start();
  ASSERT_TRUE(port.ok()) << port.status().ToString();

  // An anchor from the sick block forces the degraded path.
  const std::string command = AnchorKeyword(block_lines_[1]);
  // Expected: the full oracle minus the sick block's line range.
  QueryHits expected;
  for (const auto& [line, text] : OracleHits(command)) {
    if (line < kLinesPerBlock || line >= 2 * kLinesPerBlock) {
      expected.emplace_back(line, text);
    }
  }

  DaemonClient client("127.0.0.1", *port);
  Result<RemoteQueryResult> degraded = client.Query("arch", command);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_EQ(degraded->http_status, 206) << degraded->body;
  EXPECT_FALSE(degraded->complete);
  EXPECT_EQ(degraded->lines_missing, kLinesPerBlock);
  ExpectHitsEqual(expected, degraded->hits, command + " [degraded]");
  EXPECT_EQ(ExitCodeForHttpStatus(degraded->http_status), 3);

  // The structured failure names the sick block.
  Result<JsonValue> doc = ParseJson(degraded->body);
  ASSERT_TRUE(doc.ok());
  const auto& failures = doc->Get("partial").Get("failures").AsArray();
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].Get("seq").AsUint(), 1u);
  EXPECT_FALSE(failures[0].Get("error").AsString().empty());

  // ?degrade=0 flips the same query to a hard 500.
  RemoteQueryOptions no_degrade;
  no_degrade.degrade = false;
  Result<RemoteQueryResult> strict = client.Query("arch", command, no_degrade);
  ASSERT_TRUE(strict.ok()) << strict.status().ToString();
  EXPECT_EQ(strict->http_status, 500) << strict->body;
  EXPECT_FALSE(strict->error.empty());
  EXPECT_EQ(ExitCodeForHttpStatus(strict->http_status), 1);
}

TEST_F(ServerTest, PerRequestDeadlineBoundsRetryStorms) {
  FaultInjectingStorageEnv fault(FaultOptions{.seed = kSeed});
  // Retryable failures forever: without a deadline the retry policy grinds
  // through max_attempts per block (virtual clock, so no wall time either
  // way — the assertion is on the *outcome*).
  fault.AddPermanentFault(".lgc", StatusCode::kUnavailable);

  DaemonOptions options = BaseOptions();
  options.service.archive.env = &fault;
  options.service.archive.retry.max_attempts = 100;
  options.service.archive.box_cache_budget_bytes = 0;
  LoggrepDaemon daemon(options);
  Result<uint16_t> port = daemon.Start();
  ASSERT_TRUE(port.ok()) << port.status().ToString();

  DaemonClient client("127.0.0.1", *port);
  RemoteQueryOptions with_deadline;
  with_deadline.deadline_ms = 50;
  Result<RemoteQueryResult> r =
      client.Query("arch", AnchorKeyword(block_lines_[0]), with_deadline);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->http_status, 206) << r->body;
  EXPECT_TRUE(r->hits.empty()) << "every block is sick";
  EXPECT_GT(
      daemon.metrics().GetOrCreate("storage.retry.deadline_exceeded")->value(),
      0u);
}

TEST_F(ServerTest, BadRequestsMapOntoTheStatusContract) {
  LoggrepDaemon daemon(BaseOptions());
  Result<uint16_t> port = daemon.Start();
  ASSERT_TRUE(port.ok()) << port.status().ToString();
  DaemonClient client("127.0.0.1", *port);

  // Missing command entirely.
  Result<ParsedResponse> no_query = client.Get("/query?archive=arch");
  ASSERT_TRUE(no_query.ok());
  EXPECT_EQ(no_query->status, 400);

  // Unparseable query command.
  Result<RemoteQueryResult> bad = client.Query("arch", "x and and y");
  ASSERT_TRUE(bad.ok()) << bad.status().ToString();
  EXPECT_EQ(bad->http_status, 400) << bad->body;
  EXPECT_FALSE(bad->error.empty());
  EXPECT_EQ(ExitCodeForHttpStatus(bad->http_status), 1);

  // Archive that does not exist under the root.
  Result<RemoteQueryResult> missing = client.Query("no-such-archive", "x");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->http_status, 404) << missing->body;

  // Escape attempts are rejected before touching the filesystem.
  for (const char* name : {"../etc", "a/../../b", "/abs/path"}) {
    Result<RemoteQueryResult> escape = client.Query(name, "x");
    ASSERT_TRUE(escape.ok()) << name;
    EXPECT_EQ(escape->http_status, 400) << name << ": " << escape->body;
  }
}

TEST_F(ServerTest, ResolveArchivePathAndContractHelpers) {
  EXPECT_EQ(ResolveArchivePath("/root", "a/b"), "/root/a/b");
  EXPECT_EQ(ResolveArchivePath("/root", ""), "/root");
  EXPECT_EQ(ResolveArchivePath("/root", "."), "/root");
  EXPECT_EQ(ResolveArchivePath("/root", "/abs"), "");
  EXPECT_EQ(ResolveArchivePath("/root", ".."), "");
  EXPECT_EQ(ResolveArchivePath("/root", "a/../b"), "");
  EXPECT_EQ(ResolveArchivePath("/root", "a//b"), "");
  EXPECT_EQ(ResolveArchivePath("/root", "a\\b"), "");

  EXPECT_EQ(ExitCodeForHttpStatus(200), 0);
  EXPECT_EQ(ExitCodeForHttpStatus(206), 3);
  for (int status : {400, 404, 429, 500, 503}) {
    EXPECT_EQ(ExitCodeForHttpStatus(status), 1) << status;
  }

  EXPECT_EQ(HttpStatusForQueryError(InvalidArgument("x")), 400);
  EXPECT_EQ(HttpStatusForQueryError(NotFound("x")), 404);
  EXPECT_EQ(HttpStatusForQueryError(IOError("x")), 500);
  EXPECT_EQ(HttpStatusForQueryError(CorruptData("x")), 500);
}

// Builds a 2-tenant x 2-window ArchiveSet under `dir` (window span 1000 ns,
// no size cut) and returns the append receipts + per-row line texts so the
// caller can compute exact global line numbers. Rows land in shard-id order
// 0..3: a@w0, b@w0, a@w1 (seals shard 0), b@w1 (seals shard 1).
struct FedRow {
  const char* tenant;
  const char* tag;
  uint64_t ts;
};
constexpr FedRow kFedRows[] = {{"a", "alphaearly", 100},
                               {"b", "bravoearly", 150},
                               {"a", "alphalate", 1100},
                               {"b", "bravolate", 1150}};
constexpr size_t kFedLinesPerRow = 3;

void BuildFederatedSet(const std::string& dir,
                       std::vector<AppendReceipt>* receipts,
                       std::vector<std::vector<std::string>>* row_lines,
                       StorageEnv* env = nullptr) {
  ArchiveSetOptions set_options;
  set_options.window_span_ns = 1000;
  set_options.max_shard_bytes = 0;
  if (env != nullptr) set_options.archive.env = env;
  Result<std::unique_ptr<ArchiveSet>> set = ArchiveSet::Create(dir, set_options);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  for (const FedRow& row : kFedRows) {
    std::string text;
    for (size_t i = 0; i < kFedLinesPerRow; ++i) {
      text += std::string(row.tag) + " event-" + std::to_string(i) +
              " shared-token\n";
    }
    Result<AppendReceipt> receipt = (*set)->Append(row.tenant, text, row.ts);
    ASSERT_TRUE(receipt.ok()) << receipt.status().ToString();
    receipts->push_back(*receipt);
    row_lines->push_back(SplitIntoLines(text));
  }
}

// Expected global hits for a subset of rows: receipt line_base + local line.
QueryHits FedExpected(const std::vector<AppendReceipt>& receipts,
                      const std::vector<std::vector<std::string>>& row_lines,
                      std::initializer_list<size_t> rows) {
  QueryHits expected;
  for (size_t r : rows) {
    for (size_t i = 0; i < row_lines[r].size(); ++i) {
      expected.emplace_back(receipts[r].first_global_line + i,
                            row_lines[r][i]);
    }
  }
  return expected;
}

TEST_F(ServerTest, FederatedSetServesPredicatedQueriesOverHttp) {
  std::vector<AppendReceipt> receipts;
  std::vector<std::vector<std::string>> row_lines;
  ASSERT_NO_FATAL_FAILURE(
      BuildFederatedSet(root_ + "/fedset", &receipts, &row_lines));

  LoggrepDaemon daemon(BaseOptions());
  Result<uint16_t> port = daemon.Start();
  ASSERT_TRUE(port.ok()) << port.status().ToString();
  DaemonClient client("127.0.0.1", *port);

  // Unpredicated: every shard answers, hits carry global line numbers.
  Result<RemoteQueryResult> full = client.Query("fedset", "shared-token");
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_EQ(full->http_status, 200) << full->body;
  EXPECT_TRUE(full->complete);
  ExpectHitsEqual(FedExpected(receipts, row_lines, {0, 1, 2, 3}), full->hits,
                  "fedset [full]");
  {
    Result<JsonValue> doc = ParseJson(full->body);
    ASSERT_TRUE(doc.ok());
    const JsonValue& shards = doc->Get("shards");
    EXPECT_EQ(shards.Get("total").AsUint(), 4u) << full->body;
    EXPECT_EQ(shards.Get("pruned").AsUint(), 0u);
    EXPECT_EQ(shards.Get("visited").AsUint(), 4u);
    EXPECT_EQ(shards.Get("failed").AsUint(), 0u);
  }

  // Tenant predicate: the other tenant's shards are pruned, not scanned.
  RemoteQueryOptions tenant_a;
  tenant_a.tenant = "a";
  Result<RemoteQueryResult> only_a =
      client.Query("fedset", "shared-token", tenant_a);
  ASSERT_TRUE(only_a.ok()) << only_a.status().ToString();
  EXPECT_EQ(only_a->http_status, 200) << only_a->body;
  ExpectHitsEqual(FedExpected(receipts, row_lines, {0, 2}), only_a->hits,
                  "fedset [tenant=a]");
  {
    Result<JsonValue> doc = ParseJson(only_a->body);
    ASSERT_TRUE(doc.ok());
    EXPECT_EQ(doc->Get("shards").Get("pruned").AsUint(), 2u) << only_a->body;
    EXPECT_EQ(doc->Get("shards").Get("visited").AsUint(), 2u);
  }

  // Time predicate: from= past window 0 prunes the two sealed early shards.
  RemoteQueryOptions late_only;
  late_only.from_ns = 1000;
  Result<RemoteQueryResult> late =
      client.Query("fedset", "shared-token", late_only);
  ASSERT_TRUE(late.ok()) << late.status().ToString();
  EXPECT_EQ(late->http_status, 200) << late->body;
  ExpectHitsEqual(FedExpected(receipts, row_lines, {2, 3}), late->hits,
                  "fedset [from=1000]");
  {
    Result<JsonValue> doc = ParseJson(late->body);
    ASSERT_TRUE(doc.ok());
    EXPECT_EQ(doc->Get("shards").Get("pruned").AsUint(), 2u) << late->body;
  }

  // An empty time range is a client error, not an empty answer.
  RemoteQueryOptions inverted;
  inverted.from_ns = 2000;
  inverted.to_ns = 1000;
  Result<RemoteQueryResult> bad =
      client.Query("fedset", "shared-token", inverted);
  ASSERT_TRUE(bad.ok()) << bad.status().ToString();
  EXPECT_EQ(bad->http_status, 400) << bad->body;
  EXPECT_FALSE(bad->error.empty());

  // Explain over the set: same hits, shard accounting invariant holds.
  Result<RemoteQueryResult> explain =
      client.Explain("fedset", "shared-token", tenant_a);
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  EXPECT_EQ(explain->http_status, 200) << explain->body;
  ExpectHitsEqual(FedExpected(receipts, row_lines, {0, 2}), explain->hits,
                  "fedset [explain tenant=a]");
  {
    Result<JsonValue> doc = ParseJson(explain->body);
    ASSERT_TRUE(doc.ok());
    const JsonValue& ex = doc->Get("explain");
    ASSERT_TRUE(ex.is_object()) << explain->body.substr(0, 200);
    EXPECT_TRUE(ex.Get("invariant_ok").AsBool())
        << ex.Get("invariant_detail").AsString();
    EXPECT_FALSE(ex.Get("render").AsString().empty());
  }

  // The same daemon keeps serving the plain (non-set) archive: one process,
  // both handle kinds.
  const std::string mono_command = commands_.front();
  Result<RemoteQueryResult> mono = client.Query("arch", mono_command);
  ASSERT_TRUE(mono.ok()) << mono.status().ToString();
  EXPECT_EQ(mono->http_status, 200);
  ExpectHitsEqual(OracleHits(mono_command), mono->hits,
                  mono_command + " [mono beside set]");
  EXPECT_EQ(daemon.service().open_archives(), 2u);
}

TEST_F(ServerTest, FederatedBrokenShardMapsTo206WithShardFailures) {
  FaultInjectingStorageEnv fault(FaultOptions{.seed = kSeed});
  std::vector<AppendReceipt> receipts;
  std::vector<std::vector<std::string>> row_lines;
  ASSERT_NO_FATAL_FAILURE(
      BuildFederatedSet(root_ + "/fedset", &receipts, &row_lines, &fault));

  // Every file of shard 1 (tenant b, early window) fails: the daemon's cold
  // open of that shard dies, so the federation degrades to the other three.
  const size_t kSick = 1;
  fault.AddPermanentFault(
      ShardDirName(receipts[kSick].shard_id, kFedRows[kSick].tenant),
      StatusCode::kIOError);

  DaemonOptions options = BaseOptions();
  options.service.archive.env = &fault;
  options.service.archive.retry.max_attempts = 2;
  options.service.archive.box_cache_budget_bytes = 0;
  LoggrepDaemon daemon(options);
  Result<uint16_t> port = daemon.Start();
  ASSERT_TRUE(port.ok()) << port.status().ToString();
  DaemonClient client("127.0.0.1", *port);

  Result<RemoteQueryResult> degraded = client.Query("fedset", "shared-token");
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_EQ(degraded->http_status, 206) << degraded->body;
  EXPECT_FALSE(degraded->complete);
  ExpectHitsEqual(FedExpected(receipts, row_lines, {0, 2, 3}), degraded->hits,
                  "fedset [degraded]");
  EXPECT_EQ(ExitCodeForHttpStatus(degraded->http_status), 3);

  // The body names the sick shard.
  Result<JsonValue> doc = ParseJson(degraded->body);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Get("shards").Get("failed").AsUint(), 1u) << degraded->body;
  const auto& failures = doc->Get("shard_failures").AsArray();
  ASSERT_EQ(failures.size(), 1u) << degraded->body;
  EXPECT_EQ(failures[0].Get("shard").AsUint(), receipts[kSick].shard_id);
  EXPECT_EQ(failures[0].Get("tenant").AsString(), kFedRows[kSick].tenant);
  EXPECT_FALSE(failures[0].Get("error").AsString().empty());

  // Strict mode refuses the partial answer outright.
  RemoteQueryOptions no_degrade;
  no_degrade.degrade = false;
  Result<RemoteQueryResult> strict =
      client.Query("fedset", "shared-token", no_degrade);
  ASSERT_TRUE(strict.ok()) << strict.status().ToString();
  EXPECT_EQ(strict->http_status, 500) << strict->body;
  EXPECT_FALSE(strict->error.empty());
}

TEST_F(ServerTest, AdmissionControlShedsLoadWith429) {
  DaemonOptions options = BaseOptions();
  // 0 is honored literally: every query bounces. This pins the overload
  // path deterministically (no timing games).
  options.max_inflight_queries = 0;
  options.retry_after_seconds = 7;
  LoggrepDaemon daemon(options);
  Result<uint16_t> port = daemon.Start();
  ASSERT_TRUE(port.ok()) << port.status().ToString();

  DaemonClient client("127.0.0.1", *port);
  Result<ParsedResponse> bounced =
      client.Get("/query?archive=arch&q=" + UrlEncode("x"));
  ASSERT_TRUE(bounced.ok()) << bounced.status().ToString();
  EXPECT_EQ(bounced->status, 429);
  EXPECT_EQ(bounced->headers.at("retry-after"), "7");

  // Health and metrics stay reachable under overload — admission control
  // only covers query execution.
  Result<ParsedResponse> health = client.Get("/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->status, 200);
  EXPECT_GT(
      daemon.metrics().GetOrCreate("server.admission_rejects")->value(), 0u);
}

TEST_F(ServerTest, KeepAliveReusesOneConnection) {
  LoggrepDaemon daemon(BaseOptions());
  Result<uint16_t> port = daemon.Start();
  ASSERT_TRUE(port.ok()) << port.status().ToString();

  DaemonClient client("127.0.0.1", *port);
  const std::string command = commands_.front();
  const QueryHits expected = OracleHits(command);
  for (int i = 0; i < 5; ++i) {
    Result<RemoteQueryResult> r = client.Query("arch", command);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->http_status, 200);
    ExpectHitsEqual(expected, r->hits, command + " [reuse]");
  }
  EXPECT_EQ(
      daemon.metrics().GetOrCreate("server.connections_accepted")->value(),
      1u)
      << "five keep-alive queries must ride one connection";
}

TEST_F(ServerTest, PipelinedRequestsAnswerInOrder) {
  LoggrepDaemon daemon(BaseOptions());
  Result<uint16_t> port = daemon.Start();
  ASSERT_TRUE(port.ok()) << port.status().ToString();

  RawConnection raw(*port);
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(raw.Send(
      "GET /healthz HTTP/1.1\r\n\r\n"
      "POST /metrics HTTP/1.1\r\n\r\n"   // wrong method: 405, closes
      ));
  std::vector<ParsedResponse> responses;
  ASSERT_TRUE(raw.ReadResponses(2, &responses));
  EXPECT_EQ(responses[0].status, 200);
  EXPECT_EQ(responses[1].status, 405);
  EXPECT_EQ(responses[1].headers.at("connection"), "close");
}

TEST_F(ServerTest, MalformedBytesGetA4xxNeverACrash) {
  LoggrepDaemon daemon(BaseOptions());
  Result<uint16_t> port = daemon.Start();
  ASSERT_TRUE(port.ok()) << port.status().ToString();

  {
    RawConnection raw(*port);
    ASSERT_TRUE(raw.ok());
    ASSERT_TRUE(raw.Send("THIS IS NOT HTTP\r\n\r\n"));
    std::vector<ParsedResponse> responses;
    ASSERT_TRUE(raw.ReadResponses(1, &responses));
    EXPECT_GE(responses[0].status, 400);
    EXPECT_EQ(responses[0].headers.at("connection"), "close");
  }

  // The daemon survives and keeps serving.
  DaemonClient client("127.0.0.1", *port);
  Result<ParsedResponse> health = client.Get("/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->status, 200);
  EXPECT_GT(daemon.metrics().GetOrCreate("server.parse_errors")->value(), 0u);
}

TEST_F(ServerTest, ShutdownDrainsInflightWorkThenStops) {
  LoggrepDaemon daemon(BaseOptions());
  Result<uint16_t> port = daemon.Start();
  ASSERT_TRUE(port.ok()) << port.status().ToString();
  const std::string command = commands_.front();
  const QueryHits expected = OracleHits(command);

  // Clients hammer the daemon while the main thread shuts it down. Every
  // *answered* query must be a correct answer — a drain finishes work, it
  // never truncates it. Transport errors after the drain are expected.
  std::atomic<bool> stop{false};
  std::atomic<size_t> answered{0};
  std::atomic<size_t> wrong{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < 4; ++i) {
    clients.emplace_back([&] {
      DaemonClient client("127.0.0.1", *port);
      while (!stop.load(std::memory_order_acquire)) {
        Result<RemoteQueryResult> r = client.Query("arch", command);
        if (!r.ok()) {
          break;  // daemon gone
        }
        if (r->http_status != 200 || r->hits != expected) {
          wrong.fetch_add(1, std::memory_order_relaxed);
        }
        answered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Let the clients get some answers, then pull the plug mid-storm.
  while (answered.load(std::memory_order_acquire) < 8) {
    std::this_thread::yield();
  }
  daemon.Shutdown();
  EXPECT_FALSE(daemon.running());
  stop.store(true, std::memory_order_release);
  for (std::thread& t : clients) {
    t.join();
  }
  EXPECT_EQ(wrong.load(), 0u);
  EXPECT_GE(answered.load(), 8u);
  EXPECT_EQ(daemon.inflight_queries(), 0u);
  EXPECT_EQ(daemon.service().open_archives(), 0u) << "Clear() after drain";

  // Idempotent: a second Shutdown (and the destructor's) is a no-op.
  daemon.Shutdown();
}

}  // namespace
}  // namespace loggrep
