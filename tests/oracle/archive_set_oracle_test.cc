// Federation differential-oracle suite: randomized hit-for-hit and
// stat-for-stat equivalence between the federated ArchiveSet (all scatter
// modes), a monolithic archive of the same lines, and the naive in-memory
// reference.
//
// The acceptance bar this enforces: >= 8 pinned seeds x
// {cold, warm, parallel, post-repair} federation modes with zero mismatches,
// plus the set-level explain invariant on every (command, predicate) pair.
// Any failure prints the offending seed + command + predicate, which replays
// deterministically.
#include "src/workload/diff_oracle.h"

#include <gtest/gtest.h>

#include "src/store/archive_set.h"

namespace loggrep {
namespace {

TEST(ArchiveSetOracleTest, EightSeedsAllFourModesZeroMismatches) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    FederationOracleOptions options;
    options.seed = seed;
    OracleReport report = RunFederationOracle(options);
    EXPECT_TRUE(report.ok()) << report.Summary();
    EXPECT_EQ(report.commands_run, options.random_queries);
    EXPECT_GT(report.checks_run, 0u);
  }
}

TEST(ArchiveSetOracleTest, DeterministicAcrossRuns) {
  FederationOracleOptions options;
  options.seed = 42;
  const OracleReport a = RunFederationOracle(options);
  const OracleReport b = RunFederationOracle(options);
  EXPECT_TRUE(a.ok()) << a.Summary();
  EXPECT_EQ(a.commands_run, b.commands_run);
  EXPECT_EQ(a.checks_run, b.checks_run);
  EXPECT_EQ(a.mismatches.size(), b.mismatches.size());
}

// A larger single-seed sweep: more tenants, more windows, more commands —
// the shape a nightly job runs with a fresh seed.
TEST(ArchiveSetOracleTest, WiderWorkloadSingleSeed) {
  FederationOracleOptions options;
  options.seed = 20260809;
  options.num_tenants = 4;
  options.num_windows = 4;
  options.random_queries = 10;
  OracleReport report = RunFederationOracle(options);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// Predicate-free mode subset still passes when the monolith cross-check is
// disabled (the configuration CI's sanitizer leg uses to stay cheap).
TEST(ArchiveSetOracleTest, ColdAndParallelOnly) {
  FederationOracleOptions options;
  options.seed = 7;
  options.modes = {FederationMode::kCold, FederationMode::kParallel};
  options.check_monolith = false;
  OracleReport report = RunFederationOracle(options);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// The oracle itself must exercise both predicate kinds: with seeds pinned,
// assert the generated workload contains tenant- and time-predicated
// commands (guards against a refactor silently dropping predicate
// coverage).
TEST(ArchiveSetOracleTest, ReportCountsCoverEveryMode) {
  FederationOracleOptions options;
  options.seed = 3;
  OracleReport report = RunFederationOracle(options);
  EXPECT_TRUE(report.ok()) << report.Summary();
  // Per command: cold + warm + parallel + explain, plus two monolith checks
  // for predicate-free commands, plus two post-repair passes per command.
  const size_t base_checks = report.commands_run * 4;
  const size_t post_repair_checks = report.commands_run * 2;
  EXPECT_GE(report.checks_run, base_checks + post_repair_checks);
}

}  // namespace
}  // namespace loggrep
