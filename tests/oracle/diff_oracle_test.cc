// Differential-oracle suite: randomized hit-for-hit equivalence between the
// real engine (all execution modes) and the naive in-memory grep reference.
//
// The acceptance bar this enforces: >= 8 seeds x all 5 execution modes
// (cold / warm / session / parallel / post-recovery) with zero mismatches,
// plus the explain invariant on every command. Any failure prints the
// offending seed + command, which replays deterministically.
#include "src/workload/diff_oracle.h"

#include <gtest/gtest.h>

namespace loggrep {
namespace {

TEST(DiffOracleTest, EightSeedsAllFiveModesZeroMismatches) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    OracleOptions options;
    options.seed = seed;
    OracleReport report = RunDifferentialOracle(options);
    EXPECT_TRUE(report.ok()) << report.Summary();
    EXPECT_EQ(report.datasets_run, options.num_datasets);
    EXPECT_GT(report.commands_run, 0u);
    // Every command ran all five modes plus the explain check.
    EXPECT_EQ(report.checks_run,
              report.commands_run * (options.modes.size() + 1));
  }
}

TEST(DiffOracleTest, DeterministicAcrossRuns) {
  OracleOptions options;
  options.seed = 42;
  const OracleReport a = RunDifferentialOracle(options);
  const OracleReport b = RunDifferentialOracle(options);
  EXPECT_TRUE(a.ok()) << a.Summary();
  EXPECT_EQ(a.commands_run, b.commands_run);
  EXPECT_EQ(a.checks_run, b.checks_run);
  EXPECT_EQ(a.mismatches.size(), b.mismatches.size());
}

// The oracle is the regression harness for every ablation configuration as
// well: each §6.3 engine variant must keep exact grep semantics.
TEST(DiffOracleTest, StaticOnlyEngineAgrees) {
  OracleOptions options;
  options.seed = 101;
  options.num_datasets = 1;
  options.archive.engine.static_only = true;
  const OracleReport report = RunDifferentialOracle(options);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(DiffOracleTest, NoStampsEngineAgrees) {
  OracleOptions options;
  options.seed = 102;
  options.num_datasets = 1;
  options.archive.engine.use_stamps = false;
  const OracleReport report = RunDifferentialOracle(options);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(DiffOracleTest, UnpaddedEngineAgrees) {
  OracleOptions options;
  options.seed = 103;
  options.num_datasets = 1;
  options.archive.engine.use_fixed = false;
  const OracleReport report = RunDifferentialOracle(options);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(DiffOracleTest, NoBoxCacheAgrees) {
  OracleOptions options;
  options.seed = 104;
  options.num_datasets = 1;
  options.archive.box_cache_budget_bytes = 0;  // every query is cold I/O
  const OracleReport report = RunDifferentialOracle(options);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(DiffOracleTest, SubsetOfModesRunsOnlyThose) {
  OracleOptions options;
  options.seed = 7;
  options.num_datasets = 1;
  options.random_queries = 2;
  options.modes = {OracleMode::kColdEngine, OracleMode::kParallel};
  options.check_explain = false;
  const OracleReport report = RunDifferentialOracle(options);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.checks_run, report.commands_run * 2);
}

}  // namespace
}  // namespace loggrep
