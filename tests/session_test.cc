#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/session.h"
#include "src/workload/datasets.h"
#include "src/workload/loggen.h"

namespace loggrep {
namespace {

// ---- thread pool ---------------------------------------------------------------

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.Wait();
  SUCCEED();
}

TEST(ThreadPoolTest, TasksSubmittedFromTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&pool, &counter] {
      counter.fetch_add(1);
      pool.Submit([&counter] { counter.fetch_add(1); });
    });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 20);
}

// The ingest pipeline Submits from its producer while workers run; many
// producers racing Submit must never lose a task.
TEST(ThreadPoolTest, ConcurrentSubmitFromManyProducers) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 8; ++p) {
    producers.emplace_back([&pool, &counter] {
      for (int i = 0; i < 500; ++i) {
        pool.Submit([&counter] { counter.fetch_add(1); });
      }
    });
  }
  for (std::thread& t : producers) {
    t.join();
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 8 * 500);
}

// Backpressure reuses one pool across many Append/Wait rounds.
TEST(ThreadPoolTest, ReusableAfterWait) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 40; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 40);
  }
}

// Destruction with tasks still queued: the pool drains the queue before the
// workers exit (documented behavior the ingestor's destructor relies on).
TEST(ThreadPoolTest, DestructionWithQueuedTasksRunsThemAll) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);  // single worker: queue necessarily backs up
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        counter.fetch_add(1);
      });
    }
    // No Wait(): destructor must drain the queue, not drop it.
  }
  EXPECT_EQ(counter.load(), 50);
}

// ---- refining-mode session --------------------------------------------------------

class QuerySessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    text_ = LogGenerator(*FindDataset("Log A")).Generate(48 * 1024);
    box_ = engine_.CompressBlock(text_);
  }

  LogGrepEngine engine_;
  std::string text_;
  std::string box_;
};

TEST_F(QuerySessionTest, IncrementalRefinementMatchesFullQuery) {
  QuerySession session(&engine_, box_);
  auto broad = session.Query("ERROR");
  ASSERT_TRUE(broad.ok());
  EXPECT_FALSE(broad->refined_incrementally);

  auto narrow = session.Query("ERROR and state:REQ_ST_CLOSED");
  ASSERT_TRUE(narrow.ok());
  EXPECT_TRUE(narrow->refined_incrementally);

  // Ground truth: the same command via a fresh engine.
  LogGrepEngine fresh;
  auto full = fresh.Query(fresh.CompressBlock(text_),
                          "ERROR and state:REQ_ST_CLOSED");
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(narrow->hits.size(), full->hits.size());
  for (size_t i = 0; i < full->hits.size(); ++i) {
    EXPECT_EQ(narrow->hits[i].first, full->hits[i].first);
    EXPECT_EQ(narrow->hits[i].second, full->hits[i].second);
  }
}

TEST_F(QuerySessionTest, ChainedRefinements) {
  QuerySession session(&engine_, box_);
  ASSERT_TRUE(session.Query("ERROR").ok());
  auto second = session.Query("ERROR and aborted");
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->refined_incrementally);
  auto third = session.Query("ERROR and aborted and state:REQ_ST_TIMEOUT");
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(third->refined_incrementally);
  for (const auto& [line, hit_text] : third->hits) {
    EXPECT_NE(hit_text.find("REQ_ST_TIMEOUT"), std::string::npos);
  }
}

TEST_F(QuerySessionTest, NonRefinementFallsBackToFullQuery) {
  QuerySession session(&engine_, box_);
  ASSERT_TRUE(session.Query("ERROR").ok());
  // OR-extension is NOT a sound narrowing: must re-run fully.
  auto widened = session.Query("ERROR or WARN");
  ASSERT_TRUE(widened.ok());
  EXPECT_FALSE(widened->refined_incrementally);
  // A completely different command likewise.
  auto other = session.Query("heartbeat");
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(other->refined_incrementally);
}

TEST_F(QuerySessionTest, AppendedNotClauseIsNotIncremental) {
  QuerySession session(&engine_, box_);
  ASSERT_TRUE(session.Query("ERROR").ok());
  auto negated = session.Query("ERROR not aborted");
  ASSERT_TRUE(negated.ok());
  EXPECT_FALSE(negated->refined_incrementally);
  // But it must still be correct.
  for (const auto& [line, hit_text] : negated->hits) {
    EXPECT_EQ(hit_text.find("aborted"), std::string::npos);
  }
}

TEST_F(QuerySessionTest, RevisitingAnyEarlierCommandIsMemoized) {
  QuerySession session(&engine_, box_);
  ASSERT_TRUE(session.Query("ERROR").ok());
  auto refined = session.Query("ERROR and aborted");
  ASSERT_TRUE(refined.ok());
  ASSERT_TRUE(refined->refined_incrementally);
  // Revisit the refined command: served from the session memo even though
  // the engine's own cache never executed it.
  auto revisit = session.Query("ERROR and aborted");
  ASSERT_TRUE(revisit.ok());
  EXPECT_TRUE(revisit->from_cache);
  ASSERT_EQ(revisit->hits.size(), refined->hits.size());
  // And refinement continues from the revisited state.
  auto deeper = session.Query("ERROR and aborted and code:");
  ASSERT_TRUE(deeper.ok());
  EXPECT_TRUE(deeper->refined_incrementally);
}

TEST_F(QuerySessionTest, ResetForgetsRefinementState) {
  QuerySession session(&engine_, box_);
  ASSERT_TRUE(session.Query("ERROR").ok());
  session.Reset();
  auto after = session.Query("ERROR and aborted");
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->refined_incrementally);
}

TEST_F(QuerySessionTest, ResetAlsoFlushesEngineCommandCache) {
  // The session memo fronts the engine's command cache; Reset must flush
  // both, or a post-reset query could be served pre-reset hits.
  QuerySession session(&engine_, box_);
  ASSERT_TRUE(session.Query("ERROR").ok());
  EXPECT_GT(engine_.cache().size(), 0u);
  session.Reset();
  EXPECT_EQ(engine_.cache().size(), 0u);
  auto after = session.Query("ERROR");
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->from_cache);
}

// The serving layer calls Rebind when the archive set rolls the shard a
// session was following: same engine, NEW box. Neither the refinement state
// nor the memo may ever serve hits computed against the old box.
TEST_F(QuerySessionTest, RebindNeverServesOldBoxHits) {
  // A second block whose ERROR population differs from the first.
  const std::string other_text =
      LogGenerator(*FindDataset("Log A")).Generate(16 * 1024);
  const std::string other_box = engine_.CompressBlock(other_text);

  QuerySession session(&engine_, box_);
  auto before = session.Query("ERROR");
  ASSERT_TRUE(before.ok());

  session.Rebind(other_box);
  EXPECT_EQ(session.box(), std::string_view(other_box));

  // Revisiting the same command must re-execute against the new box, not
  // replay the memoized old-box hits.
  auto after = session.Query("ERROR");
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->from_cache);
  LogGrepEngine fresh;
  auto truth = fresh.Query(fresh.CompressBlock(other_text), "ERROR");
  ASSERT_TRUE(truth.ok());
  ASSERT_EQ(after->hits.size(), truth->hits.size());
  for (size_t i = 0; i < truth->hits.size(); ++i) {
    EXPECT_EQ(after->hits[i].first, truth->hits[i].first);
    EXPECT_EQ(after->hits[i].second, truth->hits[i].second);
  }
}

TEST_F(QuerySessionTest, RebindForgetsRefinementState) {
  const std::string other_box = engine_.CompressBlock(
      LogGenerator(*FindDataset("Log A")).Generate(16 * 1024));
  QuerySession session(&engine_, box_);
  ASSERT_TRUE(session.Query("ERROR").ok());
  session.Rebind(other_box);
  // "ERROR and aborted" would be a sound refinement of the pre-rebind
  // "ERROR" — but those hits belong to the old box, so the session must
  // fall back to a full query.
  auto narrowed = session.Query("ERROR and aborted");
  ASSERT_TRUE(narrowed.ok());
  EXPECT_FALSE(narrowed->refined_incrementally);
}

// ---- property test: refinement == cold full query ---------------------------
//
// For every production dataset, grow a command by appending AND clauses —
// including wildcard and quoted-keyword suffixes — and check that the
// incremental path produces hit-for-hit exactly what a cold engine (no query
// cache, no box cache) computes for the full command.
TEST(QuerySessionPropertyTest, RefinementMatchesColdQueryAcrossDatasets) {
  const std::vector<std::vector<std::string>> suffix_chains = {
      {"ERROR", "ERROR and 1", "ERROR and 1 and 2"},
      {"INFO", "INFO and id*", "INFO and id* and 1?"},        // wildcards
      {"0", "0 and \"1\"", "0 and \"1\" and \"id\""},         // quoted
      {"1", "1 and 2*3", "1 and 2*3 and \"4\""},              // mixed
  };
  for (const DatasetSpec* spec_ptr : ProductionDatasets()) {
    const DatasetSpec& spec = *spec_ptr;
    const std::string text = LogGenerator(spec).Generate(12 * 1024);
    LogGrepEngine engine;
    const std::string box = engine.CompressBlock(text);

    EngineOptions cold_options;
    cold_options.use_cache = false;
    cold_options.use_box_cache = false;
    LogGrepEngine cold(cold_options);

    for (const std::vector<std::string>& chain : suffix_chains) {
      QuerySession session(&engine, box);
      for (const std::string& command : chain) {
        auto via_session = session.Query(command);
        ASSERT_TRUE(via_session.ok()) << spec.name << ": " << command;
        auto ground_truth = cold.Query(box, command);
        ASSERT_TRUE(ground_truth.ok()) << spec.name << ": " << command;
        ASSERT_EQ(via_session->hits.size(), ground_truth->hits.size())
            << spec.name << ": " << command;
        for (size_t i = 0; i < ground_truth->hits.size(); ++i) {
          EXPECT_EQ(via_session->hits[i].first, ground_truth->hits[i].first)
              << spec.name << ": " << command;
          EXPECT_EQ(via_session->hits[i].second, ground_truth->hits[i].second)
              << spec.name << ": " << command;
        }
      }
    }
  }
}

}  // namespace
}  // namespace loggrep
