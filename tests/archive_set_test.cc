#include "src/store/archive_set.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "src/store/fs_util.h"
#include "src/store/shard_router.h"
#include "src/store/storage_env.h"

namespace loggrep {
namespace {

std::string TestDir(const std::string& name) {
  std::string dir = std::filesystem::temp_directory_path().string() +
                    "/loggrep-archive-set-" + name;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return dir;
}

// n lines of "<tag> event-<i> shared-token".
std::string MakeText(const std::string& tag, int n, int start = 0) {
  std::string text;
  for (int i = 0; i < n; ++i) {
    text += tag + " event-" + std::to_string(start + i) + " shared-token\n";
  }
  return text;
}

constexpr uint64_t kSpan = 1000;  // test window span, ns

ArchiveSetOptions SmallSetOptions() {
  ArchiveSetOptions options;
  options.window_span_ns = kSpan;
  options.max_shard_bytes = 0;  // roll on window moves only
  return options;
}

// ---- shard router ----------------------------------------------------------

TEST(ShardRouterTest, SanitizeTenant) {
  EXPECT_EQ(SanitizeTenant("acme"), "acme");
  EXPECT_EQ(SanitizeTenant("acme web"), "acme_web");
  EXPECT_EQ(SanitizeTenant("iot/devices"), "iot_devices");
  EXPECT_EQ(SanitizeTenant(""), "default");
  EXPECT_EQ(SanitizeTenant("A-Z_09"), "A-Z_09");
  EXPECT_EQ(SanitizeTenant(std::string(100, 'x')).size(), 48u);
}

TEST(ShardRouterTest, ShardDirNameAndRecognition) {
  EXPECT_EQ(ShardDirName(7, "acme web"), "shard-000007-acme_web");
  EXPECT_TRUE(LooksLikeShardDir("shard-000007-acme_web"));
  EXPECT_TRUE(LooksLikeShardDir("shard-123456-x"));
  EXPECT_FALSE(LooksLikeShardDir("set_manifest.json"));
  EXPECT_FALSE(LooksLikeShardDir("shard-"));
  EXPECT_FALSE(LooksLikeShardDir("shard-abc"));
  EXPECT_FALSE(LooksLikeShardDir("blocks"));
}

TEST(ShardRouterTest, WindowMath) {
  EXPECT_EQ(WindowStartFor(0, 1000), 0u);
  EXPECT_EQ(WindowStartFor(999, 1000), 0u);
  EXPECT_EQ(WindowStartFor(1000, 1000), 1000u);
  EXPECT_EQ(WindowStartFor(1234, 1000), 1000u);
  EXPECT_EQ(WindowStartFor(1234, 0), 0u);  // span 0: one unbounded window
}

TEST(ShardRouterTest, RollDecision) {
  EXPECT_EQ(DecideRoll(nullptr, 0, 1, kSpan, 0, 100),
            RollReason::kNoActive);
  ShardInfo active;
  active.window_start_ns = 1000;
  active.window_end_ns = 2000;
  active.raw_bytes = 10;
  active.lines = 5;
  EXPECT_EQ(DecideRoll(&active, 1500, 1, kSpan, 0, 100), RollReason::kNone);
  EXPECT_EQ(DecideRoll(&active, 2500, 1, kSpan, 0, 100),
            RollReason::kWindowMoved);
  EXPECT_EQ(DecideRoll(&active, 1500, 1, kSpan, 10, 100),
            RollReason::kSizeCut);
  EXPECT_EQ(DecideRoll(&active, 1500, 96, kSpan, 0, 100),
            RollReason::kLineSpanFull);
  active.sealed = true;
  EXPECT_EQ(DecideRoll(&active, 1500, 1, kSpan, 0, 100),
            RollReason::kNoActive);
}

TEST(ShardRouterTest, PruneReasons) {
  ShardInfo shard;
  shard.tenant = "a";
  shard.lines = 10;
  shard.sealed = true;
  shard.min_ts_ns = 1000;
  shard.max_ts_ns = 1900;

  SetQueryPredicate none;
  EXPECT_EQ(ShardPruneReason(shard, none), "");

  SetQueryPredicate tenant;
  tenant.tenant = "b";
  EXPECT_NE(ShardPruneReason(shard, tenant).find("tenant"), std::string::npos);

  SetQueryPredicate after;
  after.from_ns = 2000;
  EXPECT_NE(ShardPruneReason(shard, after).find("ends before"),
            std::string::npos);

  SetQueryPredicate before;
  before.to_ns = 999;
  EXPECT_NE(ShardPruneReason(shard, before).find("starts after"),
            std::string::npos);

  SetQueryPredicate overlap;
  overlap.from_ns = 1900;
  overlap.to_ns = 5000;
  EXPECT_EQ(ShardPruneReason(shard, overlap), "");

  // An unsealed shard is never time-pruned: its recorded range may be stale.
  shard.sealed = false;
  EXPECT_EQ(ShardPruneReason(shard, after), "");
  // A sealed empty shard holds nothing.
  shard.sealed = true;
  shard.lines = 0;
  EXPECT_NE(ShardPruneReason(shard, none).find("empty"), std::string::npos);
}

// ---- set manifest ----------------------------------------------------------

TEST(SetManifestTest, RoundTripPreservesFullU64Precision) {
  std::vector<ShardInfo> shards(2);
  shards[0].id = 0;
  shards[0].tenant = "acme web";
  shards[0].dir_name = "shard-000000-acme_web";
  shards[0].line_base = 0;
  shards[0].lines = 7;
  shards[0].sealed = true;
  // Deliberately past 2^53: a double round-trip would corrupt these.
  shards[0].min_ts_ns = 1'750'000'000'000'000'001ull;
  shards[0].max_ts_ns = 1'750'000'000'000'000'003ull;
  shards[1].id = 5;
  shards[1].tenant = "acme web";
  shards[1].dir_name = "shard-000005-acme_web";
  shards[1].line_base = 5 * ArchiveSet::kShardLineSpan + 1;
  shards[1].min_ts_ns = UINT64_MAX;
  shards[1].max_ts_ns = 0;

  const std::string bytes = ArchiveSet::SerializeSetManifest(
      3'600'000'000'000ull, 6, 6 * ArchiveSet::kShardLineSpan + 1, shards);
  uint64_t span = 0, next_id = 0, next_base = 0;
  Result<std::vector<ShardInfo>> parsed =
      ArchiveSet::ParseSetManifest(bytes, &span, &next_id, &next_base);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(span, 3'600'000'000'000ull);
  EXPECT_EQ(next_id, 6u);
  EXPECT_EQ(next_base, 6 * ArchiveSet::kShardLineSpan + 1);
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].tenant, "acme web");
  EXPECT_EQ((*parsed)[0].min_ts_ns, 1'750'000'000'000'000'001ull);
  EXPECT_EQ((*parsed)[0].max_ts_ns, 1'750'000'000'000'000'003ull);
  EXPECT_TRUE((*parsed)[0].sealed);
  EXPECT_EQ((*parsed)[1].line_base, 5 * ArchiveSet::kShardLineSpan + 1);
  EXPECT_EQ((*parsed)[1].min_ts_ns, UINT64_MAX);
}

TEST(SetManifestTest, HostileBytesRejectedCleanly) {
  uint64_t span, id, base;
  EXPECT_FALSE(ArchiveSet::ParseSetManifest("", &span, &id, &base).ok());
  EXPECT_FALSE(ArchiveSet::ParseSetManifest("not json", &span, &id, &base).ok());
  EXPECT_FALSE(ArchiveSet::ParseSetManifest("[]", &span, &id, &base).ok());
  EXPECT_FALSE(
      ArchiveSet::ParseSetManifest("{\"version\":99,\"shards\":[]}", &span,
                                   &id, &base)
          .ok());
  // Shard without id.
  EXPECT_FALSE(ArchiveSet::ParseSetManifest(
                   "{\"version\":1,\"shards\":[{\"dir\":\"shard-0-x\"}]}",
                   &span, &id, &base)
                   .ok());
  // Unsafe dir name.
  EXPECT_FALSE(ArchiveSet::ParseSetManifest(
                   "{\"version\":1,\"next_shard_id\":\"1\","
                   "\"next_line_base\":\"2\",\"shards\":[{\"id\":\"0\","
                   "\"dir\":\"../../etc\"}]}",
                   &span, &id, &base)
                   .ok());
  // Expired but not sealed.
  EXPECT_FALSE(ArchiveSet::ParseSetManifest(
                   "{\"version\":1,\"next_shard_id\":\"1\","
                   "\"next_line_base\":\"2\",\"shards\":[{\"id\":\"0\","
                   "\"dir\":\"shard-000000-x\",\"expired\":true}]}",
                   &span, &id, &base)
                   .ok());
  // Non-increasing ids.
  EXPECT_FALSE(ArchiveSet::ParseSetManifest(
                   "{\"version\":1,\"next_shard_id\":\"9\","
                   "\"next_line_base\":\"9\",\"shards\":["
                   "{\"id\":\"3\",\"dir\":\"shard-000003-x\",\"line_base\":"
                   "\"1\"},{\"id\":\"3\",\"dir\":\"shard-000003-y\","
                   "\"line_base\":\"2\"}]}",
                   &span, &id, &base)
                   .ok());
}

// ---- ingest + routing ------------------------------------------------------

TEST(ArchiveSetTest, RoutesByTenantAndWindow) {
  const std::string root = TestDir("routing");
  auto set = ArchiveSet::Create(root, SmallSetOptions());
  ASSERT_TRUE(set.ok()) << set.status().ToString();

  // Two tenants, two windows each: four shards.
  auto r1 = (*set)->Append("a", MakeText("alpha", 3), 100);
  auto r2 = (*set)->Append("b", MakeText("bravo", 3), 150);
  auto r3 = (*set)->Append("a", MakeText("alpha", 3, 3), 200);  // same window
  auto r4 = (*set)->Append("a", MakeText("alpha", 3, 6), 1200);  // next window
  auto r5 = (*set)->Append("b", MakeText("bravo", 3, 3), 1300);
  for (const auto* r : {&r1, &r2, &r3, &r4, &r5}) {
    ASSERT_TRUE(r->ok()) << r->status().ToString();
  }
  EXPECT_TRUE(r1->rolled);
  EXPECT_EQ(r1->roll_reason, RollReason::kNoActive);
  EXPECT_FALSE(r3->rolled);
  EXPECT_EQ(r3->shard_id, r1->shard_id);
  EXPECT_TRUE(r4->rolled);
  EXPECT_EQ(r4->roll_reason, RollReason::kWindowMoved);
  EXPECT_NE(r4->shard_id, r1->shard_id);
  EXPECT_NE(r2->shard_id, r1->shard_id);

  EXPECT_EQ((*set)->live_shard_count(), 4u);
  EXPECT_EQ((*set)->tenant_count(), 2u);
  EXPECT_EQ((*set)->total_lines(), 15u);

  // Rolling sealed the previous window's shard.
  for (const ShardInfo& s : (*set)->shards()) {
    if (s.id == r1->shard_id || s.id == r2->shard_id) {
      EXPECT_TRUE(s.sealed) << "shard " << s.id;
    } else {
      EXPECT_FALSE(s.sealed) << "shard " << s.id;
    }
  }
}

TEST(ArchiveSetTest, SizeCutRolls) {
  const std::string root = TestDir("sizecut");
  ArchiveSetOptions options = SmallSetOptions();
  options.window_span_ns = 0;     // no window rolls
  options.max_shard_bytes = 1;    // every non-empty shard is "full"
  auto set = ArchiveSet::Create(root, options);
  ASSERT_TRUE(set.ok());
  auto r1 = (*set)->Append("a", MakeText("x", 2), 10);
  auto r2 = (*set)->Append("a", MakeText("x", 2, 2), 20);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->rolled);
  EXPECT_EQ(r2->roll_reason, RollReason::kSizeCut);
  EXPECT_EQ((*set)->live_shard_count(), 2u);
}

TEST(ArchiveSetTest, GlobalLineNumbersStrideByLineSpan) {
  const std::string root = TestDir("linestride");
  auto set = ArchiveSet::Create(root, SmallSetOptions());
  ASSERT_TRUE(set.ok());
  auto r1 = (*set)->Append("a", MakeText("alpha", 4), 100);
  auto r2 = (*set)->Append("a", MakeText("alpha", 4, 4), 200);
  auto r3 = (*set)->Append("a", MakeText("alpha", 4, 8), 1200);
  ASSERT_TRUE(r1.ok() && r2.ok() && r3.ok());
  EXPECT_EQ(r1->first_global_line, 0u);
  EXPECT_EQ(r2->first_global_line, 4u);  // same shard, contiguous
  EXPECT_EQ(r3->first_global_line, ArchiveSet::kShardLineSpan);
}

TEST(ArchiveSetTest, EmptyAppendRejected) {
  const std::string root = TestDir("emptyappend");
  auto set = ArchiveSet::Create(root, SmallSetOptions());
  ASSERT_TRUE(set.ok());
  EXPECT_FALSE((*set)->Append("a", "", 100).ok());
}

TEST(ArchiveSetTest, CreateRefusesExistingManifest) {
  const std::string root = TestDir("recreate");
  auto set = ArchiveSet::Create(root, SmallSetOptions());
  ASSERT_TRUE(set.ok());
  set->reset();  // release before re-creating
  EXPECT_FALSE(ArchiveSet::Create(root, SmallSetOptions()).ok());
}

TEST(ArchiveSetTest, PersistedWindowSpanWinsOverOption) {
  const std::string root = TestDir("spanwins");
  auto set = ArchiveSet::Create(root, SmallSetOptions());
  ASSERT_TRUE(set.ok());
  ASSERT_TRUE((*set)->Append("a", MakeText("alpha", 2), 100).ok());
  set->reset();
  ArchiveSetOptions other = SmallSetOptions();
  other.window_span_ns = 77;  // ignored: partitioning is fixed at Create
  auto reopened = ArchiveSet::Open(root, other);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->window_span_ns(), kSpan);
}

// ---- query + pruning -------------------------------------------------------

struct FederatedFixture {
  std::string root;
  std::unique_ptr<ArchiveSet> set;
  std::vector<AppendReceipt> receipts;
};

// Two tenants x two windows, three lines per shard.
FederatedFixture BuildTwoByTwo(const std::string& name) {
  FederatedFixture fx;
  fx.root = TestDir(name);
  auto set = ArchiveSet::Create(fx.root, SmallSetOptions());
  EXPECT_TRUE(set.ok()) << set.status().ToString();
  fx.set = std::move(*set);
  struct Row {
    const char* tenant;
    const char* tag;
    int start;
    uint64_t ts;
  };
  const Row rows[] = {
      {"a", "alpha", 0, 100},
      {"b", "bravo", 0, 150},
      {"a", "alpha", 3, 1100},
      {"b", "bravo", 3, 1150},
  };
  for (const Row& row : rows) {
    auto receipt =
        fx.set->Append(row.tenant, MakeText(row.tag, 3, row.start), row.ts);
    EXPECT_TRUE(receipt.ok()) << receipt.status().ToString();
    fx.receipts.push_back(*receipt);
  }
  return fx;
}

TEST(ArchiveSetTest, FederatedQueryMergesGloballyNumberedHits) {
  FederatedFixture fx = BuildTwoByTwo("fedquery");
  auto result = fx.set->Query("shared-token", {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->complete());
  EXPECT_EQ(result->shards_total, 4u);
  EXPECT_EQ(result->shards_visited, 4u);
  EXPECT_EQ(result->shards_pruned, 0u);
  ASSERT_EQ(result->hits.size(), 12u);
  // Ascending global lines, each rebased by its shard's receipt.
  for (size_t i = 1; i < result->hits.size(); ++i) {
    EXPECT_LT(result->hits[i - 1].first, result->hits[i].first);
  }
  EXPECT_EQ(result->hits[0].first, fx.receipts[0].first_global_line);
  // Tenant-only query: the "alpha" keyword appears only in tenant a's lines.
  auto alpha = fx.set->Query("alpha", {});
  ASSERT_TRUE(alpha.ok());
  EXPECT_EQ(alpha->hits.size(), 6u);
}

TEST(ArchiveSetTest, TenantPredicatePrunesOtherTenants) {
  FederatedFixture fx = BuildTwoByTwo("tenantpred");
  SetQueryPredicate pred;
  pred.tenant = "b";
  auto result = fx.set->Query("shared-token", pred);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->shards_total, 4u);
  EXPECT_EQ(result->shards_pruned, 2u);
  EXPECT_EQ(result->shards_visited, 2u);
  EXPECT_EQ(result->hits.size(), 6u);
  for (const auto& hit : result->hits) {
    EXPECT_NE(hit.second.find("bravo"), std::string::npos) << hit.second;
  }
}

TEST(ArchiveSetTest, TimePredicateSkipsSealedOutOfRangeShards) {
  FederatedFixture fx = BuildTwoByTwo("timepred");
  // Window 1 only. Window-0 shards are sealed and provably out of range;
  // window-1 shards are active (never time-pruned) and in range anyway.
  SetQueryPredicate pred;
  pred.from_ns = 1000;
  auto result = fx.set->Query("shared-token", pred);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->shards_pruned, 2u);
  EXPECT_EQ(result->shards_visited, 2u);
  EXPECT_EQ(result->hits.size(), 6u);

  // The reverse range keeps the sealed window-0 shards AND the active
  // shards (active shards are never time-pruned: their range is not final).
  SetQueryPredicate old_only;
  old_only.to_ns = 999;
  auto old_result = fx.set->Query("shared-token", old_only);
  ASSERT_TRUE(old_result.ok());
  EXPECT_EQ(old_result->shards_pruned, 0u);
  EXPECT_EQ(old_result->hits.size(), 12u);
}

TEST(ArchiveSetTest, ParallelQueryMatchesSerial) {
  FederatedFixture fx = BuildTwoByTwo("parallel");
  auto serial = fx.set->Query("shared-token", {});
  auto parallel = fx.set->ParallelQuery("shared-token", {}, 4);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(serial->hits, parallel->hits);
  EXPECT_EQ(serial->shards_visited, parallel->shards_visited);
  EXPECT_EQ(serial->blocks_queried, parallel->blocks_queried);
}

TEST(ArchiveSetTest, InvalidCommandFailsEvenWhenEverythingPruned) {
  FederatedFixture fx = BuildTwoByTwo("badcommand");
  SetQueryPredicate pred;
  pred.tenant = "nonexistent";
  auto result = fx.set->Query("and and", pred);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ArchiveSetTest, SetExplainRecordsShardFates) {
  FederatedFixture fx = BuildTwoByTwo("setexplain");
  SetQueryPredicate pred;
  pred.tenant = "a";
  pred.from_ns = 1000;
  SetExplain explain;
  auto result = fx.set->Explain("shared-token", pred, &explain);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(explain.shards.size(), 4u);

  size_t pruned = 0, visited = 0;
  bool saw_tenant_reason = false, saw_time_reason = false;
  for (const ShardExplain& s : explain.shards) {
    if (s.pruned) {
      ++pruned;
      EXPECT_FALSE(s.prune_reason.empty());
      if (s.prune_reason.find("tenant") != std::string::npos) {
        saw_tenant_reason = true;
      }
      if (s.prune_reason.find("ends before") != std::string::npos) {
        saw_time_reason = true;
      }
    } else {
      ++visited;
      // Per-shard capsule accounting must balance.
      EXPECT_TRUE(s.archive.CheckInvariant());
    }
  }
  EXPECT_EQ(pruned, 3u);   // tenant b (x2) + tenant a window 0
  EXPECT_EQ(visited, 1u);  // tenant a's active shard
  EXPECT_TRUE(saw_tenant_reason);
  EXPECT_TRUE(saw_time_reason);

  std::string detail;
  EXPECT_TRUE(explain.CheckInvariant(&detail)) << detail;
  // Set-level accounting: pruned + visited == total, surfaced in the result.
  EXPECT_EQ(result->shards_pruned + result->shards_visited,
            result->shards_total);
  EXPECT_NE(explain.Render().find("pruned"), std::string::npos);
}

// ---- crash-safety kill points ----------------------------------------------

TEST(ArchiveSetKillTest, RollKilledAfterShardCreateLeavesNoCommittedShard) {
  const std::string root = TestDir("kill-shard-created");
  auto set = ArchiveSet::Create(root, SmallSetOptions());
  ASSERT_TRUE(set.ok());
  (*set)->set_commit_hook(
      [](SetKillPoint p) { return p == SetKillPoint::kShardCreated; });
  auto receipt = (*set)->Append("a", MakeText("alpha", 2), 100);
  EXPECT_FALSE(receipt.ok());
  EXPECT_EQ((*set)->shards().size(), 0u);
  set->reset();

  // The orphan dir exists on disk but holds no committed data; Open sweeps
  // it and recovers an empty set.
  auto reopened = ArchiveSet::Open(root, SmallSetOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->shards().size(), 0u);
  bool any_shard_dir = false;
  for (const auto& entry : std::filesystem::directory_iterator(root)) {
    if (LooksLikeShardDir(entry.path().filename().string())) {
      any_shard_dir = true;
    }
  }
  EXPECT_FALSE(any_shard_dir);

  // Ingest proceeds normally afterwards and reuses the never-committed id.
  auto retried = (*reopened)->Append("a", MakeText("alpha", 2), 100);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(retried->shard_id, 0u);
}

TEST(ArchiveSetKillTest, RollKilledAfterManifestKeepsCommittedShard) {
  const std::string root = TestDir("kill-roll-manifest");
  auto set = ArchiveSet::Create(root, SmallSetOptions());
  ASSERT_TRUE(set.ok());
  (*set)->set_commit_hook(
      [](SetKillPoint p) { return p == SetKillPoint::kRollManifestWritten; });
  auto receipt = (*set)->Append("a", MakeText("alpha", 2), 100);
  EXPECT_FALSE(receipt.ok());  // "died" right after the commit point
  set->reset();

  // Never lose a committed shard: the roll is durable, the append is not.
  auto reopened = ArchiveSet::Open(root, SmallSetOptions());
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ((*reopened)->shards().size(), 1u);
  EXPECT_EQ((*reopened)->shards()[0].lines, 0u);
  auto retried = (*reopened)->Append("a", MakeText("alpha", 2), 100);
  ASSERT_TRUE(retried.ok());
  EXPECT_FALSE(retried->rolled);  // the committed shard is reused
  EXPECT_EQ(retried->shard_id, 0u);
  EXPECT_EQ(retried->first_global_line, 0u);
}

TEST(ArchiveSetKillTest, AppendKilledAfterManifestWidensRangeOnly) {
  const std::string root = TestDir("kill-append-manifest");
  auto set = ArchiveSet::Create(root, SmallSetOptions());
  ASSERT_TRUE(set.ok());
  ASSERT_TRUE((*set)->Append("a", MakeText("alpha", 2), 100).ok());
  (*set)->set_commit_hook([](SetKillPoint p) {
    return p == SetKillPoint::kAppendManifestWritten;
  });
  auto killed = (*set)->Append("a", MakeText("alpha", 2, 2), 900);
  EXPECT_FALSE(killed.ok());
  set->reset();

  auto reopened = ArchiveSet::Open(root, SmallSetOptions());
  ASSERT_TRUE(reopened.ok());
  // The shard kept only the committed block; its recorded event range is
  // wider than its data (conservative => time pruning stays sound).
  auto result = (*reopened)->Query("shared-token", {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->hits.size(), 2u);
  ASSERT_EQ((*reopened)->shards().size(), 1u);
  EXPECT_EQ((*reopened)->shards()[0].max_ts_ns, 900u);

  // The interrupted append retries cleanly with contiguous numbering.
  auto retried = (*reopened)->Append("a", MakeText("alpha", 2, 2), 900);
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(retried->first_global_line, 2u);
}

TEST(ArchiveSetKillTest, RetentionKilledAfterManifestNeverResurrects) {
  const std::string root = TestDir("kill-retention");
  ArchiveSetOptions options = SmallSetOptions();
  options.retention_ns = 500;
  auto set = ArchiveSet::Create(root, options);
  ASSERT_TRUE(set.ok());
  auto r1 = (*set)->Append("a", MakeText("alpha", 2), 100);
  auto r2 = (*set)->Append("a", MakeText("alpha", 2, 2), 1100);  // seals w0
  ASSERT_TRUE(r1.ok() && r2.ok());
  const std::string expired_dir =
      root + "/" + (*set)->shards()[0].dir_name;

  (*set)->set_commit_hook([](SetKillPoint p) {
    return p == SetKillPoint::kRetentionManifestWritten;
  });
  auto report = (*set)->RunRetention(/*now_ns=*/2000);  // cut=1500 > 100
  EXPECT_FALSE(report.ok());
  // Commit point passed: the entry is expired on disk, the dir lingers.
  EXPECT_TRUE(std::filesystem::exists(expired_dir));
  set->reset();

  auto reopened = ArchiveSet::Open(root, options);
  ASSERT_TRUE(reopened.ok());
  // Open finished the interrupted removal and kept the tombstone.
  EXPECT_FALSE(std::filesystem::exists(expired_dir));
  ASSERT_EQ((*reopened)->shards().size(), 2u);
  EXPECT_TRUE((*reopened)->shards()[0].expired);
  EXPECT_EQ((*reopened)->live_shard_count(), 1u);
  // The expired shard is never queried again...
  auto result = (*reopened)->Query("shared-token", {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->complete());
  EXPECT_EQ(result->shards_total, 1u);
  ASSERT_EQ(result->hits.size(), 2u);
  // ...and the surviving shard's global lines did not shift.
  EXPECT_EQ(result->hits[0].first, r2->first_global_line);
}

TEST(ArchiveSetKillTest, ManifestRenameFaultRollsBackCleanly) {
  const std::string root = TestDir("manifest-fault");
  FaultOptions fault_options;
  FaultInjectingStorageEnv env(fault_options);
  ArchiveSetOptions options = SmallSetOptions();
  options.archive.env = &env;
  auto set = ArchiveSet::Create(root, options);
  ASSERT_TRUE(set.ok()) << set.status().ToString();

  env.AddPermanentFault("set_manifest.json", StatusCode::kIOError);
  auto failed = (*set)->Append("a", MakeText("alpha", 2), 100);
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ((*set)->shards().size(), 0u);  // in-memory state rolled back

  env.ClearPermanentFaults();
  auto retried = (*set)->Append("a", MakeText("alpha", 2), 100);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(retried->shard_id, 0u);
  auto result = (*set)->Query("shared-token", {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->hits.size(), 2u);
}

// ---- retention + line-number stability -------------------------------------

TEST(ArchiveSetTest, RetentionExpiresInteriorShardWithoutShiftingLines) {
  const std::string root = TestDir("retention-stability");
  ArchiveSetOptions options = SmallSetOptions();
  options.retention_ns = 600;
  auto set = ArchiveSet::Create(root, options);
  ASSERT_TRUE(set.ok());
  // Three windows for tenant a: shards 0 (ts 100), 1 (ts 1100), 2 (ts 2100).
  auto r0 = (*set)->Append("a", MakeText("w0", 2), 100);
  auto r1 = (*set)->Append("a", MakeText("w1", 2), 1100);
  auto r2 = (*set)->Append("a", MakeText("w2", 2), 2100);
  ASSERT_TRUE(r0.ok() && r1.ok() && r2.ok());

  auto before = (*set)->Query("shared-token", {});
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->hits.size(), 6u);

  // cut = 1700 - 600 = 1100: shard 0 (max 100) expires; shard 1 (max 1100)
  // survives the strict < comparison.
  auto report = (*set)->RunRetention(1700);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->ok()) << report->Summary();
  ASSERT_EQ(report->expired_ids.size(), 1u);
  EXPECT_EQ(report->expired_ids[0], r0->shard_id);
  EXPECT_EQ(report->dirs_removed, 1u);

  auto after = (*set)->Query("shared-token", {});
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->hits.size(), 4u);
  // Global line numbers of the surviving shards are byte-identical to the
  // pre-retention answer (the tombstoned entry keeps later bases pinned).
  EXPECT_EQ(after->hits[0].first, before->hits[2].first);
  EXPECT_EQ(after->hits[0].second, before->hits[2].second);
  EXPECT_EQ(after->hits[2].first, r2->first_global_line);

  // Same answer across a reopen.
  set->reset();
  auto reopened = ArchiveSet::Open(root, options);
  ASSERT_TRUE(reopened.ok());
  auto reopened_result = (*reopened)->Query("shared-token", {});
  ASSERT_TRUE(reopened_result.ok());
  EXPECT_EQ(reopened_result->hits, after->hits);
  // Tombstones persist in the manifest snapshot.
  EXPECT_EQ((*reopened)->shards().size(), 3u);
  EXPECT_TRUE((*reopened)->shards()[0].expired);
}

TEST(ArchiveSetTest, RetentionKeepsActiveShardForever) {
  const std::string root = TestDir("retention-active");
  ArchiveSetOptions options = SmallSetOptions();
  options.retention_ns = 1;
  auto set = ArchiveSet::Create(root, options);
  ASSERT_TRUE(set.ok());
  ASSERT_TRUE((*set)->Append("a", MakeText("w0", 2), 100).ok());
  // Far-future retention pass: the single shard is active, so it survives.
  auto report = (*set)->RunRetention(1'000'000);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->expired_ids.empty());
  EXPECT_EQ((*set)->live_shard_count(), 1u);
}

TEST(ArchiveSetTest, RetentionDisabledIsNoOp) {
  const std::string root = TestDir("retention-off");
  auto set = ArchiveSet::Create(root, SmallSetOptions());  // retention_ns = 0
  ASSERT_TRUE(set.ok());
  ASSERT_TRUE((*set)->Append("a", MakeText("w0", 2), 100).ok());
  ASSERT_TRUE((*set)->Append("a", MakeText("w1", 2), 1100).ok());
  auto report = (*set)->RunRetention(UINT64_MAX);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->expired_ids.empty());
}

// ---- degradation + repair --------------------------------------------------

TEST(ArchiveSetTest, BrokenShardDegradesFederationTo206) {
  const std::string root = TestDir("degrade");
  auto set = ArchiveSet::Create(root, SmallSetOptions());
  ASSERT_TRUE(set.ok());
  auto ra = (*set)->Append("a", MakeText("alpha", 3), 100);
  auto rb = (*set)->Append("b", MakeText("bravo", 3), 150);
  ASSERT_TRUE(ra.ok() && rb.ok());
  set->reset();

  // Reopen against an env where tenant a's shard dir is permanently broken:
  // its archive cannot even open.
  FaultOptions fault_options;
  FaultInjectingStorageEnv env(fault_options);
  env.AddPermanentFault(ShardDirName(ra->shard_id, "a"),
                        StatusCode::kIOError);
  ArchiveSetOptions options = SmallSetOptions();
  options.archive.env = &env;
  auto degraded = ArchiveSet::Open(root, options);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();

  auto result = (*degraded)->Query("shared-token", {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->complete());
  ASSERT_EQ(result->shard_failures.size(), 1u);
  EXPECT_EQ(result->shard_failures[0].shard_id, ra->shard_id);
  EXPECT_EQ(result->shard_failures[0].tenant, "a");
  // Exactly the healthy shard's lines.
  ASSERT_EQ(result->hits.size(), 3u);
  for (const auto& hit : result->hits) {
    EXPECT_NE(hit.second.find("bravo"), std::string::npos);
  }
  EXPECT_NE(result->RenderPartial().find("unavailable"), std::string::npos);

  // Strict mode: the same failure aborts instead of degrading.
  ArchiveSetOptions strict = options;
  strict.archive.degraded_queries = false;
  auto strict_set = ArchiveSet::Open(root, strict);
  ASSERT_TRUE(strict_set.ok());
  EXPECT_FALSE((*strict_set)->Query("shared-token", {}).ok());
}

TEST(ArchiveSetTest, RepairAllReinstatesAcrossShards) {
  const std::string root = TestDir("repairall");
  auto set = ArchiveSet::Create(root, SmallSetOptions());
  ASSERT_TRUE(set.ok());
  auto ra = (*set)->Append("a", MakeText("alpha", 3), 100);
  ASSERT_TRUE(ra.ok());
  const std::string block_path =
      root + "/" + (*set)->shards()[0].dir_name + "/block-0.lgc";
  set->reset();

  // Corrupt the block on disk, let a cold query quarantine it.
  auto original = ReadFileBytes(block_path, nullptr);
  ASSERT_TRUE(original.ok()) << original.status().ToString();
  ASSERT_TRUE(WriteFileBytes(block_path, "garbage-bytes", nullptr).ok());
  auto degraded = ArchiveSet::Open(root, SmallSetOptions());
  ASSERT_TRUE(degraded.ok());
  auto broken = (*degraded)->Query("shared-token", {});
  ASSERT_TRUE(broken.ok());
  EXPECT_FALSE(broken->complete());
  EXPECT_TRUE(broken->hits.empty());

  // Restore the bytes; fleet-level repair reinstates without reopening.
  ASSERT_TRUE(WriteFileBytes(block_path, *original, nullptr).ok());
  SetRepairReport repaired = (*degraded)->RepairAll();
  EXPECT_TRUE(repaired.ok()) << repaired.Summary();
  EXPECT_EQ(repaired.reinstated, 1u);
  auto healed = (*degraded)->Query("shared-token", {});
  ASSERT_TRUE(healed.ok());
  EXPECT_TRUE(healed->complete()) << healed->RenderPartial();
  EXPECT_EQ(healed->hits.size(), 3u);
}

TEST(ArchiveSetTest, JanitorRunsRetentionInBackground) {
  const std::string root = TestDir("janitor");
  ArchiveSetOptions options = SmallSetOptions();
  options.retention_ns = 1;
  auto set = ArchiveSet::Create(root, options);
  ASSERT_TRUE(set.ok());
  ASSERT_TRUE((*set)->Append("a", MakeText("w0", 2), 100).ok());
  ASSERT_TRUE((*set)->Append("a", MakeText("w1", 2), 1100).ok());

  // A fast janitor against the real clock: retention cut is far past both
  // event timestamps, so the sealed window-0 shard expires within a tick.
  (*set)->StartJanitor(/*interval_ns=*/1'000'000);  // 1ms
  for (int i = 0; i < 500 && (*set)->live_shard_count() == 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  (*set)->StopJanitor();
  EXPECT_EQ((*set)->live_shard_count(), 1u);
}

}  // namespace
}  // namespace loggrep
