#include <gtest/gtest.h>

#include <string>

#include "src/codec/bitstream.h"
#include "src/codec/codec.h"
#include "src/codec/huffman.h"
#include "src/codec/lz_huff.h"
#include "src/codec/lz_matcher.h"
#include "src/codec/range_coder.h"
#include "src/common/rng.h"
#include "src/workload/datasets.h"
#include "src/workload/loggen.h"

namespace loggrep {
namespace {

// ---- bitstream ---------------------------------------------------------------

TEST(BitstreamTest, RoundTripMixedWidths) {
  BitWriter w;
  w.PutBits(0b1, 1);
  w.PutBits(0b1010, 4);
  w.PutBits(0x7FFF, 15);
  w.PutBits(0xABCDE, 20);
  w.PutBits(0xFFFFFFFF, 32);
  const std::string bytes = w.Finish();
  BitReader r(bytes);
  EXPECT_EQ(r.ReadBits(1), 0b1);
  EXPECT_EQ(r.ReadBits(4), 0b1010);
  EXPECT_EQ(r.ReadBits(15), 0x7FFF);
  EXPECT_EQ(r.ReadBits(20), 0xABCDE);
  EXPECT_EQ(r.ReadBits(32), 0xFFFFFFFF);
}

TEST(BitstreamTest, ReadPastEndReturnsMinusOne) {
  BitWriter w;
  w.PutBits(0b11, 2);
  const std::string bytes = w.Finish();  // one byte
  BitReader r(bytes);
  EXPECT_EQ(r.ReadBits(8), 0b11);  // padding zeros
  EXPECT_EQ(r.ReadBit(), -1);
  EXPECT_TRUE(r.Overflowed());
}

TEST(BitstreamTest, BitCountTracksWrites) {
  BitWriter w;
  EXPECT_EQ(w.BitCount(), 0u);
  w.PutBits(0, 3);
  EXPECT_EQ(w.BitCount(), 3u);
  w.PutBits(0, 13);
  EXPECT_EQ(w.BitCount(), 16u);
}

// ---- huffman -----------------------------------------------------------------

TEST(HuffmanTest, EmptyAndSingleSymbol) {
  EXPECT_EQ(BuildCodeLengths({0, 0, 0}), (std::vector<uint8_t>{0, 0, 0}));
  EXPECT_EQ(BuildCodeLengths({0, 7, 0}), (std::vector<uint8_t>{0, 1, 0}));
}

TEST(HuffmanTest, TwoSymbolsGetOneBit) {
  const auto lengths = BuildCodeLengths({5, 100});
  EXPECT_EQ(lengths[0], 1);
  EXPECT_EQ(lengths[1], 1);
}

TEST(HuffmanTest, SkewedFrequenciesRespectLimit) {
  // Fibonacci-ish frequencies force deep optimal codes; the length limit must
  // hold anyway (package-merge property).
  std::vector<uint64_t> freqs;
  uint64_t a = 1, b = 1;
  for (int i = 0; i < 40; ++i) {
    freqs.push_back(a);
    const uint64_t next = a + b;
    a = b;
    b = next;
  }
  const auto lengths = BuildCodeLengths(freqs);
  uint64_t kraft = 0;
  for (uint8_t len : lengths) {
    ASSERT_GE(len, 1);
    ASSERT_LE(len, kMaxHuffmanBits);
    kraft += 1ull << (kMaxHuffmanBits - len);
  }
  EXPECT_LE(kraft, 1ull << kMaxHuffmanBits);  // decodable
}

TEST(HuffmanTest, KraftEqualityForCompleteCodes) {
  const auto lengths = BuildCodeLengths({10, 10, 10, 10, 1, 1});
  uint64_t kraft = 0;
  for (uint8_t len : lengths) {
    kraft += 1ull << (kMaxHuffmanBits - len);
  }
  EXPECT_EQ(kraft, 1ull << kMaxHuffmanBits);  // optimal codes are complete
}

TEST(HuffmanTest, EncodeDecodeRoundTrip) {
  Rng rng(3);
  std::vector<uint64_t> freqs(64);
  for (auto& f : freqs) {
    f = rng.NextBelow(1000);
  }
  freqs[0] = 100000;  // strong skew
  const auto lengths = BuildCodeLengths(freqs);
  const HuffmanEncoder enc(lengths);
  auto dec = HuffmanDecoder::Build(lengths);
  ASSERT_TRUE(dec.ok());

  std::vector<int> symbols;
  for (int i = 0; i < 5000; ++i) {
    int s;
    do {
      s = static_cast<int>(rng.NextBelow(64));
    } while (lengths[s] == 0);
    symbols.push_back(s);
  }
  BitWriter w;
  for (int s : symbols) {
    enc.Encode(w, s);
  }
  const std::string bytes = w.Finish();
  BitReader r(bytes);
  for (int s : symbols) {
    ASSERT_EQ(dec->Decode(r), s);
  }
}

TEST(HuffmanTest, OversubscribedTableRejected) {
  // Three symbols of length 1 violate Kraft.
  EXPECT_FALSE(HuffmanDecoder::Build({1, 1, 1}).ok());
}

TEST(HuffmanTest, OverlongLengthRejected) {
  std::vector<uint8_t> lengths{static_cast<uint8_t>(kMaxHuffmanBits + 1)};
  EXPECT_FALSE(HuffmanDecoder::Build(lengths).ok());
}

// ---- value bucketization -------------------------------------------------------

TEST(BucketizeTest, SmallValuesDirect) {
  for (uint32_t v = 0; v < 4; ++v) {
    const Bucket b = BucketizeValue(v);
    EXPECT_EQ(b.code, v);
    EXPECT_EQ(b.extra_bits, 0u);
  }
}

TEST(BucketizeTest, RoundTripSweep) {
  for (uint32_t v = 0; v < 200000; v += (v < 256 ? 1 : 97)) {
    const Bucket b = BucketizeValue(v);
    uint32_t base = 0, eb = 0;
    BucketRange(b.code, &base, &eb);
    EXPECT_EQ(eb, b.extra_bits) << v;
    EXPECT_EQ(base + b.extra_value, v) << v;
    EXPECT_LT(b.extra_value, 1u << eb) << v;
  }
}

TEST(BucketizeTest, CodesAreMonotonic) {
  uint32_t prev_code = 0;
  for (uint32_t v = 1; v < 100000; v += 31) {
    const uint32_t code = BucketizeValue(v).code;
    EXPECT_GE(code, prev_code);
    prev_code = code;
  }
}

// ---- codec round trips ----------------------------------------------------------

std::vector<const Codec*> AllCodecs() {
  return {&GetGzipCodec(), &GetZstdCodec(), &GetXzCodec()};
}

class CodecRoundTripTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

std::string MakeInput(int kind, uint64_t seed) {
  Rng rng(seed);
  switch (kind) {
    case 0:  // empty
      return {};
    case 1:  // single byte
      return "x";
    case 2: {  // random bytes (incompressible)
      std::string s;
      for (int i = 0; i < 5000; ++i) {
        s.push_back(static_cast<char>(rng.NextBelow(256)));
      }
      return s;
    }
    case 3:  // long run (maximally compressible)
      return std::string(100000, 'A');
    case 4: {  // repetitive words
      std::string s;
      while (s.size() < 60000) {
        s += (rng.NextBool(0.5) ? "GET /index.html 200 " : "POST /api/v2 500 ");
      }
      return s;
    }
    case 5: {  // synthetic log text
      return LogGenerator(*FindDataset("Log G")).Generate(80000);
    }
    case 6: {  // short binary with overlapping matches
      std::string s = "abcabcabcabcab";
      s += std::string(3, '\0');
      s += "abcabc";
      return s;
    }
    default: {  // pseudo text with varying alphabet
      std::string s;
      for (int i = 0; i < 30000; ++i) {
        s.push_back(static_cast<char>('a' + rng.NextBelow(4 + seed % 20)));
      }
      return s;
    }
  }
}

TEST_P(CodecRoundTripTest, RoundTrips) {
  const auto [kind, seed] = GetParam();
  const std::string input = MakeInput(kind, seed);
  for (const Codec* codec : AllCodecs()) {
    const std::string blob = codec->Compress(input);
    auto out = codec->Decompress(blob);
    ASSERT_TRUE(out.ok()) << codec->name() << ": " << out.status().ToString();
    ASSERT_EQ(out->size(), input.size()) << codec->name();
    EXPECT_EQ(*out, input) << codec->name() << " kind=" << kind;
    // DecompressAny must agree.
    auto any = DecompressAny(blob);
    ASSERT_TRUE(any.ok());
    EXPECT_EQ(*any, input);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Inputs, CodecRoundTripTest,
    ::testing::Combine(::testing::Range(0, 8), ::testing::Values(1, 2, 3)));

TEST(CodecTest, RatioOrderingOnLogs) {
  // On raw log text the two entropy-coded codecs are close (within a few
  // percent); zstd-like trades ratio for speed.
  const std::string input = LogGenerator(*FindDataset("Log B")).Generate(1 << 20);
  const double raw = static_cast<double>(input.size());
  const double gz = raw / GetGzipCodec().Compress(input).size();
  const double zs = raw / GetZstdCodec().Compress(input).size();
  const double xz = raw / GetXzCodec().Compress(input).size();
  EXPECT_GT(gz, 2.0);
  EXPECT_GT(zs, 2.0);
  EXPECT_GT(xz, 0.95 * gz);
  EXPECT_GT(gz, zs);
}

TEST(CodecTest, XzWinsOnCapsulePayloads) {
  // Capsule columns are what LogGrep actually compresses: a padded
  // sub-variable column with a shared prefix. The LZMA stand-in must beat the
  // gzip stand-in here (adaptive context modeling + rep distances).
  Rng rng(1);
  std::vector<std::string> owned;
  for (int i = 0; i < 40000; ++i) {
    std::string v = "5E9D";
    for (int k = 0; k < 12; ++k) {
      v += "0123456789ABCDEF"[rng.NextBelow(16)];
    }
    owned.push_back(std::move(v));
  }
  std::string col;
  for (const std::string& v : owned) {
    col += v;
  }
  const double gz = static_cast<double>(col.size()) /
                    GetGzipCodec().Compress(col).size();
  const double xz = static_cast<double>(col.size()) /
                    GetXzCodec().Compress(col).size();
  EXPECT_GT(xz, gz);
}

TEST(CodecTest, CorruptBlobsRejectedNotCrash) {
  const std::string input = MakeInput(4, 1);
  for (const Codec* codec : AllCodecs()) {
    std::string blob = codec->Compress(input);
    // Wrong codec id.
    std::string wrong_id = blob;
    wrong_id[0] = static_cast<char>(99);
    EXPECT_FALSE(DecompressAny(wrong_id).ok()) << codec->name();
    // Truncations at many points must fail or yield the exact input, never
    // crash or return garbage of the declared size.
    for (size_t cut : {size_t{1}, size_t{2}, blob.size() / 2, blob.size() - 1}) {
      auto out = codec->Decompress(std::string_view(blob).substr(0, cut));
      if (out.ok()) {
        EXPECT_EQ(*out, input);
      }
    }
    // Flipped payload bytes: either a clean error or (rarely) a same-length
    // decode; must not crash.
    std::string flipped = blob;
    if (flipped.size() > 10) {
      flipped[flipped.size() / 2] ^= 0x5A;
      auto out = codec->Decompress(flipped);
      if (out.ok()) {
        EXPECT_EQ(out->size(), input.size());
      }
    }
  }
  EXPECT_FALSE(DecompressAny("").ok());
}

TEST(CodecTest, CompressedSelfDescribesCodec) {
  const std::string input = "hello log world";
  auto check = [&](const Codec& codec) {
    const std::string blob = codec.Compress(input);
    auto by_id = CodecById(static_cast<uint8_t>(blob[0]));
    ASSERT_TRUE(by_id.ok());
    EXPECT_STREQ((*by_id)->name(), codec.name());
  };
  check(GetGzipCodec());
  check(GetZstdCodec());
  check(GetXzCodec());
}

// ---- range coder -----------------------------------------------------------------

TEST(RangeCoderTest, AdaptiveBitsRoundTrip) {
  Rng rng(21);
  std::vector<int> bits;
  for (int i = 0; i < 20000; ++i) {
    bits.push_back(rng.NextBool(0.8) ? 1 : 0);  // skewed source
  }
  RangeEncoder enc;
  BitProb enc_prob = kProbInit;
  for (int bit : bits) {
    enc.EncodeBit(enc_prob, bit);
  }
  const std::string coded = enc.Finish();
  // Adaptive model must beat 1 bit per symbol on a skewed source.
  EXPECT_LT(coded.size(), bits.size() / 8);

  RangeDecoder dec(coded);
  BitProb dec_prob = kProbInit;
  for (size_t i = 0; i < bits.size(); ++i) {
    ASSERT_EQ(dec.DecodeBit(dec_prob), bits[i]) << i;
  }
  EXPECT_FALSE(dec.Overran());
}

TEST(RangeCoderTest, DirectBitsRoundTrip) {
  Rng rng(5);
  std::vector<std::pair<uint32_t, int>> values;
  for (int i = 0; i < 3000; ++i) {
    const int nbits = 1 + static_cast<int>(rng.NextBelow(24));
    values.emplace_back(
        static_cast<uint32_t>(rng.NextBelow(1ull << nbits)), nbits);
  }
  RangeEncoder enc;
  for (const auto& [v, n] : values) {
    enc.EncodeDirectBits(v, n);
  }
  const std::string coded = enc.Finish();
  RangeDecoder dec(coded);
  for (const auto& [v, n] : values) {
    ASSERT_EQ(dec.DecodeDirectBits(n), v);
  }
}

TEST(RangeCoderTest, MixedModelsAndDirectBits) {
  Rng rng(9);
  RangeEncoder enc;
  BitProb tree_enc[1 << 5];
  std::fill(std::begin(tree_enc), std::end(tree_enc), kProbInit);
  std::vector<uint32_t> symbols;
  for (int i = 0; i < 5000; ++i) {
    symbols.push_back(static_cast<uint32_t>(rng.NextBelow(32)));
  }
  for (uint32_t s : symbols) {
    EncodeBitTree(enc, tree_enc, 5, s);
    enc.EncodeDirectBits(s ^ 0x15, 5);
  }
  const std::string coded = enc.Finish();
  RangeDecoder dec(coded);
  BitProb tree_dec[1 << 5];
  std::fill(std::begin(tree_dec), std::end(tree_dec), kProbInit);
  for (uint32_t s : symbols) {
    ASSERT_EQ(DecodeBitTree(dec, tree_dec, 5), s);
    ASSERT_EQ(dec.DecodeDirectBits(5), s ^ 0x15);
  }
}

TEST(RangeCoderTest, TruncatedStreamSetsOverran) {
  RangeEncoder enc;
  BitProb p = kProbInit;
  for (int i = 0; i < 1000; ++i) {
    enc.EncodeBit(p, i % 2);
  }
  const std::string coded = enc.Finish();
  RangeDecoder dec(std::string_view(coded).substr(0, 4));
  BitProb q = kProbInit;
  for (int i = 0; i < 1000; ++i) {
    dec.DecodeBit(q);  // must not crash; values undefined past the cut
  }
  EXPECT_TRUE(dec.Overran());
}

// ---- match finder ---------------------------------------------------------------

TEST(LzMatcherTest, FindsObviousMatch) {
  const std::string data = "abcdefgh_abcdefgh";
  HashChainMatcher m(data, LzParams{});
  for (size_t i = 0; i < 9; ++i) {
    m.Insert(i);
  }
  const auto best = m.FindBest(9);
  EXPECT_GE(best.len, 8u);
  EXPECT_EQ(best.dist, 9u);
}

TEST(LzMatcherTest, RespectsWindow) {
  std::string data = "needle";
  data += std::string(1000, 'x');
  data += "needle";
  LzParams params;
  params.window_size = 64;  // the first "needle" is out of reach
  HashChainMatcher m(data, params);
  for (size_t i = 0; i + 4 <= data.size() - 6; ++i) {
    m.Insert(i);
  }
  const auto best = m.FindBest(data.size() - 6);
  // Any match found must be within the window.
  if (best.len > 0) {
    EXPECT_LE(best.dist, 64u);
  }
}

TEST(LzMatcherTest, NoMatchOnUniqueData) {
  const std::string data = "abcdefghijklmnopqrstuvwxyz0123456789";
  HashChainMatcher m(data, LzParams{});
  for (size_t i = 0; i < 20; ++i) {
    m.Insert(i);
  }
  EXPECT_EQ(m.FindBest(20).len, 0u);
}

}  // namespace
}  // namespace loggrep
