#include <gtest/gtest.h>

#include <string>

#include "src/baselines/clp_like.h"
#include "src/baselines/es_like.h"
#include "src/baselines/gzip_grep.h"
#include "src/parser/template_miner.h"
#include "src/query/line_match.h"
#include "src/query/query_parser.h"
#include "src/workload/datasets.h"
#include "src/workload/loggen.h"

namespace loggrep {
namespace {

QueryHits Reference(std::string_view text, std::string_view command) {
  auto expr = ParseQuery(command);
  EXPECT_TRUE(expr.ok());
  QueryHits hits;
  const auto lines = SplitLines(text);
  for (uint32_t ln = 0; ln < lines.size(); ++ln) {
    if (LineMatchesQuery(lines[ln], **expr)) {
      hits.emplace_back(ln, std::string(lines[ln]));
    }
  }
  return hits;
}

class BackendTest : public ::testing::TestWithParam<int> {
 protected:
  const LogStoreBackend& backend() const {
    static const GzipGrepBackend ggrep;
    static const ClpLikeBackend clp;
    static const EsLikeBackend es;
    switch (GetParam()) {
      case 0:
        return ggrep;
      case 1:
        return clp;
      default:
        return es;
    }
  }
};

TEST_P(BackendTest, MatchesReferenceOnSyntheticLogs) {
  const std::string text =
      LogGenerator(*FindDataset("Log K")).Generate(48 * 1024);
  for (const std::string& query :
       {std::string("DELETE and /results/0"), std::string("GET or PUT"),
        std::string("status and 404 not DELETE"),
        std::string("zzzNOSUCHTOKEN")}) {
    const QueryHits expected = Reference(text, query);
    const std::string stored = backend().Compress(text);
    auto got = backend().Query(stored, query);
    ASSERT_TRUE(got.ok()) << backend().name() << ": " << got.status().ToString();
    ASSERT_EQ(got->size(), expected.size()) << backend().name() << " " << query;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ((*got)[i].first, expected[i].first);
      EXPECT_EQ((*got)[i].second, expected[i].second);
    }
  }
}

TEST_P(BackendTest, EmptyBlock) {
  const std::string stored = backend().Compress("");
  auto got = backend().Query(stored, "anything");
  ASSERT_TRUE(got.ok()) << backend().name();
  EXPECT_TRUE(got->empty());
}

TEST_P(BackendTest, CorruptStoreRejected) {
  EXPECT_FALSE(backend().Query("garbage bytes", "x").ok());
  const std::string stored = backend().Compress("a line 1\n");
  EXPECT_FALSE(
      backend().Query(std::string_view(stored).substr(0, 3), "x").ok());
}

TEST_P(BackendTest, WildcardQueries) {
  const std::string text =
      "conn 11.187.3.9 up\nconn 11.187.4.12 up\nconn 10.0.0.1 up\n";
  const std::string stored = backend().Compress(text);
  auto got = backend().Query(stored, "11.187.*");
  ASSERT_TRUE(got.ok()) << backend().name();
  EXPECT_EQ(got->size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendTest, ::testing::Range(0, 3));

TEST(GzipGrepTest, StoredRepresentationIsJustGzip) {
  const GzipGrepBackend b;
  const std::string text = "hello hello hello hello\n";
  const std::string stored = b.Compress(text);
  EXPECT_LT(stored.size(), text.size() + 16);
}

TEST(ClpLikeTest, SegmentationCoversAllLines) {
  ClpLikeOptions opts;
  opts.segment_raw_bytes = 2048;  // force many segments
  const ClpLikeBackend b(opts);
  const std::string text =
      LogGenerator(*FindDataset("Log Q")).Generate(64 * 1024);
  const std::string stored = b.Compress(text);
  // A match-all query must return every line in order.
  auto got = b.Query(stored, "not zzzNOSUCH");
  ASSERT_TRUE(got.ok());
  const auto lines = SplitLines(text);
  ASSERT_EQ(got->size(), lines.size());
  for (size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ((*got)[i].first, i);
    EXPECT_EQ((*got)[i].second, lines[i]);
  }
}

TEST(ClpLikeTest, SelectiveQueryTouchesFewerSegments) {
  // Not directly observable, but a selective query must still be correct
  // when segment filtering kicks in.
  ClpLikeOptions opts;
  opts.segment_raw_bytes = 4096;
  const ClpLikeBackend b(opts);
  const std::string text =
      LogGenerator(*FindDataset("Log P")).Generate(64 * 1024);
  const std::string query = "ERROR and CLICK_SAVE_ERROR";
  const QueryHits expected = Reference(text, query);
  auto got = b.Query(b.Compress(text), query);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), expected.size());
}

TEST(EsLikeTest, IndexIsLargerThanCompressedAlternatives) {
  const EsLikeBackend es;
  const GzipGrepBackend ggrep;
  const std::string text =
      LogGenerator(*FindDataset("Log F")).Generate(128 * 1024);
  EXPECT_GT(es.Compress(text).size(), ggrep.Compress(text).size() * 3);
}

TEST(EsLikeTest, SmallDocBlocksRoundTrip) {
  EsLikeOptions opts;
  opts.doc_block_lines = 4;  // many stored blocks
  const EsLikeBackend b(opts);
  std::string text;
  for (int i = 0; i < 41; ++i) {
    text += "row " + std::to_string(i) + " value v" + std::to_string(i % 7) + "\n";
  }
  auto got = b.Query(b.Compress(text), "v3");
  ASSERT_TRUE(got.ok());
  const QueryHits expected = Reference(text, "v3");
  ASSERT_EQ(got->size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ((*got)[i].second, expected[i].second);
  }
}

}  // namespace
}  // namespace loggrep
