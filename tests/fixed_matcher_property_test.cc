// Property suite for the fixed-length scan kernel (§5.2).
//
// The implementation under test runs on three tiers (scalar / SSE2 / AVX2,
// src/common/simd.h) and two scalar substring algorithms (Boyer-Moore and
// KMP). Every combination is differenced against one naive per-cell
// reference — TrimCell each cell, match the fragment with std::string_view
// operations — over seeded random and adversarial blobs: values built by
// BuildPaddedBlob, raw byte soup with interior pad bytes, partial trailing
// cells, fragments that straddle cell boundaries or touch padding.
// Failures shrink: width-aligned chunks of the blob are greedily removed
// while the disagreement persists, and the minimal reproducer is reported
// with its seed.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "src/capsule/capsule.h"
#include "src/common/rng.h"
#include "src/common/simd.h"
#include "src/query/fixed_matcher.h"

namespace loggrep {
namespace {

// Independent re-statement of the matching semantics (deliberately not
// calling ValueMatchesFragment, which is part of the code under test).
bool NaiveMatches(std::string_view value, FragmentMode mode,
                  std::string_view frag) {
  switch (mode) {
    case FragmentMode::kExact:
      return value == frag;
    case FragmentMode::kPrefix:
      return value.size() >= frag.size() &&
             value.substr(0, frag.size()) == frag;
    case FragmentMode::kSuffix:
      return value.size() >= frag.size() &&
             value.substr(value.size() - frag.size()) == frag;
    case FragmentMode::kSub:
      return value.find(frag) != std::string_view::npos;
  }
  return false;
}

std::string_view NaiveTrim(std::string_view cell) {
  const size_t nul = cell.find(kPadChar);
  return nul == std::string_view::npos ? cell : cell.substr(0, nul);
}

std::vector<uint32_t> NaivePaddedSearch(std::string_view blob, uint32_t width,
                                        FragmentMode mode,
                                        std::string_view frag) {
  std::vector<uint32_t> rows;
  const size_t count = blob.size() / width;
  for (size_t row = 0; row < count; ++row) {
    if (NaiveMatches(NaiveTrim(blob.substr(row * width, width)), mode, frag)) {
      rows.push_back(static_cast<uint32_t>(row));
    }
  }
  return rows;
}

std::vector<uint32_t> NaiveDelimitedSearch(std::string_view blob,
                                           FragmentMode mode,
                                           std::string_view frag) {
  std::vector<uint32_t> rows;
  uint32_t row = 0;
  size_t start = 0;
  for (size_t i = 0; i <= blob.size(); ++i) {
    const bool at_end = i == blob.size();
    if (at_end && start == i) {
      break;  // terminated blob: no trailing cell
    }
    if (at_end || blob[i] == '\n') {
      if (NaiveMatches(blob.substr(start, i - start), mode, frag)) {
        rows.push_back(row);
      }
      ++row;
      start = i + 1;
    }
  }
  return rows;
}

const FragmentMode kAllModes[] = {FragmentMode::kExact, FragmentMode::kPrefix,
                                  FragmentMode::kSuffix, FragmentMode::kSub};

const char* ModeName(FragmentMode mode) {
  switch (mode) {
    case FragmentMode::kExact:
      return "exact";
    case FragmentMode::kPrefix:
      return "prefix";
    case FragmentMode::kSuffix:
      return "suffix";
    case FragmentMode::kSub:
      return "sub";
  }
  return "?";
}

std::string HexPrefix(std::string_view bytes, size_t limit = 64) {
  std::string hex;
  for (size_t i = 0; i < bytes.size() && i < limit; ++i) {
    char buf[4];
    std::snprintf(buf, sizeof(buf), "%02x", static_cast<uint8_t>(bytes[i]));
    hex += buf;
  }
  return hex;
}

// One padded-scan configuration disagreeing with the reference?
bool PaddedDisagrees(const std::string& blob, uint32_t width, FragmentMode mode,
                     const std::string& frag, bool use_bm, SimdTier tier) {
  const ScopedSimdTier pin(tier);
  return SearchPaddedColumn(blob, width, mode, frag, use_bm) !=
         NaivePaddedSearch(blob, width, mode, frag);
}

// Greedy width-aligned chunk removal while the disagreement persists.
std::string ShrinkPaddedFailure(std::string blob, uint32_t width,
                                FragmentMode mode, const std::string& frag,
                                bool use_bm, SimdTier tier) {
  for (size_t chunk = (blob.size() / width) / 2; chunk >= 1; chunk /= 2) {
    bool removed = true;
    while (removed && blob.size() > chunk * width) {
      removed = false;
      for (size_t row = 0; (row + chunk) * width <= blob.size(); row += chunk) {
        std::string candidate = blob;
        candidate.erase(row * width, chunk * width);
        if (PaddedDisagrees(candidate, width, mode, frag, use_bm, tier)) {
          blob = std::move(candidate);
          removed = true;
          break;
        }
      }
    }
  }
  return blob;
}

void CheckPaddedAgainstNaive(const std::string& blob, uint32_t width,
                             const std::string& frag, uint64_t seed) {
  for (const SimdTier tier : SupportedSimdTiers()) {
    for (const FragmentMode mode : kAllModes) {
      for (const bool use_bm : {true, false}) {
        if (!PaddedDisagrees(blob, width, mode, frag, use_bm, tier)) {
          continue;
        }
        const std::string minimal =
            ShrinkPaddedFailure(blob, width, mode, frag, use_bm, tier);
        FAIL() << "SearchPaddedColumn(" << SimdTierName(tier)
               << ", bm=" << use_bm << ", mode=" << ModeName(mode)
               << ", width=" << width << ") disagrees with naive reference"
               << " (seed=" << seed << ", frag=" << HexPrefix(frag)
               << "); shrunk blob " << minimal.size()
               << " bytes, hex: " << HexPrefix(minimal);
      }
    }
  }
}

std::string RandomValue(Rng& rng, size_t max_len, bool allow_pad) {
  static const char kAlphabet[] = {'a', 'b', 'c', '0', '1', 'F', ':', '\0'};
  const size_t n = rng.NextBelow(max_len + 1);
  std::string v;
  for (size_t i = 0; i < n; ++i) {
    v += kAlphabet[rng.NextBelow(allow_pad ? 8 : 7)];
  }
  return v;
}

// Fragments biased toward the hard cases: empty, pad bytes, substrings of
// the blob (including ones that straddle a cell boundary), and near-misses.
std::string RandomFragment(Rng& rng, const std::string& blob, uint32_t width) {
  switch (rng.NextBelow(6)) {
    case 0:
      return {};
    case 1:
      return std::string(1, kPadChar);
    case 2: {  // substring of the blob, often straddling a boundary
      if (blob.empty()) {
        return "a";
      }
      const size_t len = 1 + rng.NextBelow(width + 2);
      const size_t pos = rng.NextBelow(blob.size());
      return std::string(blob.substr(pos, len));
    }
    case 3: {  // cell-boundary straddle by construction
      if (blob.size() < width + 2) {
        return "ab";
      }
      const size_t boundary = width * (1 + rng.NextBelow(blob.size() / width));
      const size_t lead = 1 + rng.NextBelow(width);
      const size_t pos = boundary >= lead ? boundary - lead : 0;
      return std::string(blob.substr(pos, lead + 1 + rng.NextBelow(width)));
    }
    case 4:
      return RandomValue(rng, width, /*allow_pad=*/false);
    default:
      return RandomValue(rng, width + 2, /*allow_pad=*/true);
  }
}

TEST(FixedMatcherPropertyTest, PaddedColumnsBuiltFromValues) {
  constexpr uint64_t kSeed = 0xF1EDC0DEull;
  Rng rng(kSeed);
  for (int iter = 0; iter < 200; ++iter) {
    const uint32_t width = 1 + static_cast<uint32_t>(rng.NextBelow(8));
    const size_t rows = rng.NextBelow(50);
    std::vector<std::string> values;
    values.reserve(rows);
    for (size_t i = 0; i < rows; ++i) {
      // BuildPaddedBlob expects values that fit the width; no interior pad.
      std::string v = RandomValue(rng, width, /*allow_pad=*/false);
      v.resize(std::min(v.size(), static_cast<size_t>(width)));
      values.push_back(std::move(v));
    }
    std::vector<std::string_view> views(values.begin(), values.end());
    const std::string blob = BuildPaddedBlob(views, width);
    for (int f = 0; f < 6; ++f) {
      CheckPaddedAgainstNaive(blob, width, RandomFragment(rng, blob, width),
                              kSeed);
    }
  }
}

TEST(FixedMatcherPropertyTest, AdversarialRawBlobs) {
  constexpr uint64_t kSeed = 0xBADB10B5ull;
  Rng rng(kSeed);
  for (int iter = 0; iter < 200; ++iter) {
    const uint32_t width = 1 + static_cast<uint32_t>(rng.NextBelow(8));
    // Raw byte soup: interior pad bytes, garbage after NUL, and (often) a
    // partial trailing cell the scanner must not report as a row.
    std::string blob;
    const size_t n = rng.NextBelow(40 * width) + rng.NextBelow(width + 1);
    blob.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      static const char kBytes[] = {'a', 'b', '0', '\0', '\0', 'F', '\xff'};
      blob += kBytes[rng.NextBelow(7)];
    }
    for (int f = 0; f < 6; ++f) {
      CheckPaddedAgainstNaive(blob, width, RandomFragment(rng, blob, width),
                              kSeed);
    }
  }
}

TEST(FixedMatcherPropertyTest, CheckPaddedRowsAgreesWithReference) {
  constexpr uint64_t kSeed = 0xC4EC4EEDull;
  Rng rng(kSeed);
  for (int iter = 0; iter < 150; ++iter) {
    const uint32_t width = 1 + static_cast<uint32_t>(rng.NextBelow(6));
    std::string blob;
    const size_t n = rng.NextBelow(30 * width);
    for (size_t i = 0; i < n; ++i) {
      static const char kBytes[] = {'a', 'b', '0', '\0'};
      blob += kBytes[rng.NextBelow(4)];
    }
    const uint32_t count = static_cast<uint32_t>(blob.size() / width);
    // Candidate sets: full, random subset, and rows past the end (which do
    // not exist and must be dropped).
    std::vector<uint32_t> candidates;
    for (uint32_t row = 0; row < count + 3; ++row) {
      if (rng.NextBool(0.7)) {
        candidates.push_back(row);
      }
    }
    const std::string frag = RandomFragment(rng, blob, width);
    for (const SimdTier tier : SupportedSimdTiers()) {
      const ScopedSimdTier pin(tier);
      for (const FragmentMode mode : kAllModes) {
        std::vector<uint32_t> expected;
        for (uint32_t row : candidates) {
          if (row < count &&
              NaiveMatches(NaiveTrim(blob.substr(row * width, width)), mode,
                           frag)) {
            expected.push_back(row);
          }
        }
        EXPECT_EQ(CheckPaddedRows(blob, width, mode, frag, candidates),
                  expected)
            << "tier=" << SimdTierName(tier) << " mode=" << ModeName(mode)
            << " width=" << width << " seed=" << kSeed << " iter=" << iter
            << " frag=" << HexPrefix(frag) << " blob=" << HexPrefix(blob);
      }
    }
  }
}

TEST(FixedMatcherPropertyTest, DelimitedColumnsTerminatedAndNot) {
  constexpr uint64_t kSeed = 0xDE1141EDull;
  Rng rng(kSeed);
  for (int iter = 0; iter < 150; ++iter) {
    const size_t rows = rng.NextBelow(40);
    std::string blob;
    for (size_t i = 0; i < rows; ++i) {
      blob += RandomValue(rng, 6, /*allow_pad=*/true);  // '\0' inside values
      blob += '\n';
    }
    if (!blob.empty() && rng.NextBool(0.5)) {
      blob.pop_back();  // truncated: final value loses its terminator
    }
    const std::string frag = RandomFragment(rng, blob, 4);
    if (frag.find('\n') != std::string::npos) {
      continue;  // a fragment spanning the delimiter is not a column value
    }
    for (const FragmentMode mode : kAllModes) {
      EXPECT_EQ(SearchDelimitedColumn(blob, mode, frag),
                NaiveDelimitedSearch(blob, mode, frag))
          << "mode=" << ModeName(mode) << " seed=" << kSeed << " iter=" << iter
          << " frag=" << HexPrefix(frag) << " blob=" << HexPrefix(blob);
    }
  }
}

TEST(FixedMatcherPropertyTest, ZeroWidthColumnContract) {
  // Zero-width columns carry no bytes; the caller supplies the row count.
  // Empty fragment: every row under every mode (the empty value matches).
  const std::vector<uint32_t> all = {0, 1, 2, 3, 4};
  for (const FragmentMode mode : kAllModes) {
    EXPECT_EQ(SearchPaddedColumn("", 0, mode, "", true, 5), all)
        << ModeName(mode);
    // Non-empty fragments can never match an empty value.
    EXPECT_TRUE(SearchPaddedColumn("", 0, mode, "x", true, 5).empty())
        << ModeName(mode);
  }
  // CheckPaddedRows: zero-width rows all exist with empty values.
  const std::vector<uint32_t> candidates = {1, 3};
  EXPECT_EQ(CheckPaddedRows("", 0, FragmentMode::kExact, "", candidates),
            candidates);
  EXPECT_TRUE(
      CheckPaddedRows("", 0, FragmentMode::kSub, "x", candidates).empty());
}

TEST(FixedMatcherPropertyTest, EmptyFragmentContract) {
  // "ab\0c\0\0xy\0z" as three width-3 cells: "ab", "c", "xy".
  const std::string blob("ab\0c\0\0xy\0", 9);
  const std::vector<uint32_t> all = {0, 1, 2};
  EXPECT_EQ(SearchPaddedColumn(blob, 3, FragmentMode::kSub, ""), all);
  EXPECT_EQ(SearchPaddedColumn(blob, 3, FragmentMode::kPrefix, ""), all);
  EXPECT_EQ(SearchPaddedColumn(blob, 3, FragmentMode::kSuffix, ""), all);
  // kExact with empty fragment: only empty values.
  EXPECT_TRUE(SearchPaddedColumn(blob, 3, FragmentMode::kExact, "").empty());
  const std::string with_empty(std::string("a\0\0", 3) + std::string(3, '\0'));
  EXPECT_EQ(SearchPaddedColumn(with_empty, 3, FragmentMode::kExact, ""),
            (std::vector<uint32_t>{1}));
}

TEST(FixedMatcherPropertyTest, PadByteFragmentsNeverMatch) {
  const std::string blob("ab\0c\0\0xy\0", 9);
  for (const SimdTier tier : SupportedSimdTiers()) {
    const ScopedSimdTier pin(tier);
    for (const FragmentMode mode : kAllModes) {
      EXPECT_TRUE(
          SearchPaddedColumn(blob, 3, mode, std::string(1, '\0')).empty())
          << SimdTierName(tier) << "/" << ModeName(mode);
      EXPECT_TRUE(
          SearchPaddedColumn(blob, 3, mode, std::string("b\0", 2)).empty())
          << SimdTierName(tier) << "/" << ModeName(mode);
    }
  }
}

}  // namespace
}  // namespace loggrep
