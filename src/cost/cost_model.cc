#include "src/cost/cost_model.h"

namespace loggrep {

CostBreakdown ComputeCost(const SystemMeasurement& m, const CostParams& p) {
  CostBreakdown c;
  c.storage = p.storage_price_gb_month * p.storage_months * m.raw_gb /
              m.compression_ratio;
  const double compress_hours =
      (m.raw_gb * 1024.0 / m.compress_speed_mb_s) / 3600.0;
  c.compress = p.cpu_price_hour * compress_hours;
  c.query = p.cpu_price_hour * (m.query_latency_s / 3600.0) * p.query_frequency;
  return c;
}

double CrossoverFrequency(const SystemMeasurement& fast,
                          const SystemMeasurement& cheap, const CostParams& p) {
  if (fast.query_latency_s >= cheap.query_latency_s) {
    return -1.0;
  }
  CostParams base = p;
  base.query_frequency = 0.0;
  const double fixed_fast = ComputeCost(fast, base).total();
  const double fixed_cheap = ComputeCost(cheap, base).total();
  if (fixed_fast <= fixed_cheap) {
    return 0.0;
  }
  const double per_query_fast =
      p.cpu_price_hour * fast.query_latency_s / 3600.0;
  const double per_query_cheap =
      p.cpu_price_hour * cheap.query_latency_s / 3600.0;
  return (fixed_fast - fixed_cheap) / (per_query_cheap - per_query_fast);
}

}  // namespace loggrep
