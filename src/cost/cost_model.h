// Overall-cost model: Equation 1 of §6 with the paper's Alibaba constants.
//
//   C_total = C_storage * Duration * Size / CompressionRatio
//           + C_CPU * Size / CompressionSpeed
//           + C_CPU * QueryLatency * QueryFrequency
#ifndef SRC_COST_COST_MODEL_H_
#define SRC_COST_COST_MODEL_H_

#include <string>

namespace loggrep {

struct CostParams {
  double storage_price_gb_month = 0.017;  // $ per GB-month (incl. erasure coding)
  double storage_months = 6.0;            // near-line retention
  double cpu_price_hour = 0.016;          // $ per CPU-hour
  double query_frequency = 100.0;         // queries over the retention period
};

// Measured characteristics of one system on one dataset, normalized to one
// CPU. `query_latency_s` is the latency of one query over `raw_gb` of raw log.
struct SystemMeasurement {
  double raw_gb = 1.0;
  double compression_ratio = 1.0;
  double compress_speed_mb_s = 1.0;
  double query_latency_s = 0.0;
};

struct CostBreakdown {
  double storage = 0.0;   // $ for storing compressed data
  double compress = 0.0;  // $ of CPU to compress
  double query = 0.0;     // $ of CPU to query

  double total() const { return storage + compress + query; }
};

CostBreakdown ComputeCost(const SystemMeasurement& m, const CostParams& p = {});

// Minimum query frequency at which `fast` (lower latency, higher fixed cost)
// becomes cheaper than `cheap`. Returns a negative value when `fast` never
// wins (its latency is not lower) and 0 when it always wins.
double CrossoverFrequency(const SystemMeasurement& fast,
                          const SystemMeasurement& cheap,
                          const CostParams& p = {});

}  // namespace loggrep

#endif  // SRC_COST_COST_MODEL_H_
