// Dataset catalog: 21 Alibaba-like production log types ("Log A".."Log U")
// and 16 LogHub-like public log types, mirroring the paper's evaluation
// corpus (§6). Each dataset is a DatasetSpec for the synthetic generator.
#ifndef SRC_WORKLOAD_DATASETS_H_
#define SRC_WORKLOAD_DATASETS_H_

#include <string_view>
#include <vector>

#include "src/workload/loggen.h"

namespace loggrep {

// All 37 datasets: production first (A..U), then the public ones.
const std::vector<DatasetSpec>& AllDatasets();

// Subsets by family.
std::vector<const DatasetSpec*> ProductionDatasets();
std::vector<const DatasetSpec*> PublicDatasets();

// nullptr when no dataset has that name.
const DatasetSpec* FindDataset(std::string_view name);

}  // namespace loggrep

#endif  // SRC_WORKLOAD_DATASETS_H_
