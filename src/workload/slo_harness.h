// SLO workload harness: many simulated tenants issuing Zipf-skewed queries
// open-loop against a *live* loggrepd, with concurrent ingest publishing new
// archives mid-run and seeded storage faults injected underneath — the
// closest thing in this repo to the paper's shared-cloud-service setting
// (§5: one daemon, many users, caches amortizing across them).
//
// Shape (after the memcached-style load generators: per-tenant arrival
// schedules, a skewed key popularity distribution, windowed tail latency):
//
//   ingest thread ──► publishes live-<k> archives while tenants run
//   tenant threads ─► open-loop: arrivals follow a fixed schedule derived
//                     from the target rate, *not* from response times — a
//                     slow server makes latency pile up instead of silently
//                     throttling the offered load (coordinated omission is
//                     the classic closed-loop lie this avoids)
//   target pick ────► Zipf(s) over the query catalog: a few hot queries
//                     dominate, so the daemon's command/box caches should
//                     absorb the head while the tail stays cold
//   checking ───────► every 200 is compared hit-for-hit against a serial
//                     oracle computed before the daemon saw the archive;
//                     every 206 must be a strict subset of its oracle
//
// Measured per rolling window (client side, by arrival time): p50/p99,
// request count — so the report shows cold-start convergence, not one
// blended number. Plus run-wide cache hit rate, shed rate (429), degraded
// rate (206), error rate, and the daemon's own /metrics, /statusz and
// /debug/slow views at the end of the run.
//
// Gates (RunSloHarness fails them, bench/workload_slo.cc turns them into a
// nonzero exit for CI): zero oracle mismatches, and warm p99 (second half
// of the run) strictly below cold p99 (first window).
#ifndef SRC_WORKLOAD_SLO_HARNESS_H_
#define SRC_WORKLOAD_SLO_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace loggrep {

// Zipf(s) sampler over ranks [0, n): P(rank k) proportional to 1/(k+1)^s.
// Precomputed CDF + binary search; deterministic given the caller's Rng
// stream. Ranks map to catalog entries, so rank 0 is the hottest query.
class ZipfPicker {
 public:
  ZipfPicker(size_t n, double s);

  // Returns a rank in [0, limit) given a uniform u in [0,1). `limit` lets
  // callers sample only the published prefix of a growing catalog (the CDF
  // is renormalized over the prefix).
  size_t Pick(double u, size_t limit) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // unnormalized cumulative weights
};

struct SloHarnessOptions {
  uint64_t seed = 42;

  // Scale.
  size_t tenants = 4;              // client threads, one connection each
  size_t static_archives = 2;      // archives built before the daemon starts
  size_t live_archives = 2;        // archives published mid-run by ingest
  size_t blocks_per_archive = 3;
  size_t lines_per_block = 300;

  // Load shape.
  double zipf_s = 1.1;             // catalog skew exponent
  double offered_qps = 150;        // aggregate open-loop arrival rate
  uint64_t duration_ms = 4000;     // driving time
  uint64_t window_ms = 500;        // client-side latency window width

  // Chaos. Probabilistic faults are capped per path so they stay transient
  // (the retry layer rides them out); the permanent fault makes queries on
  // archive 0 degrade to 206 — the degraded-rate signal under test.
  bool inject_faults = true;
  double read_fail_p = 0.02;
  uint32_t max_faults_per_path = 2;
  bool permanent_fault = true;

  // Daemon sizing. 0 = derived from `tenants`.
  size_t daemon_threads = 0;
  size_t max_inflight = 0;
  uint64_t slow_query_threshold_ns = 1'000'000;  // 1 ms: /debug/slow fills

  // Working directory; "" = fresh temp dir (removed on success).
  std::string root;
};

struct SloWindow {
  uint64_t start_ms = 0;   // window start, relative to run start
  uint64_t requests = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};

struct SloHarnessReport {
  // Run-wide tallies.
  uint64_t requests = 0;
  uint64_t ok_200 = 0;
  uint64_t degraded_206 = 0;
  uint64_t shed_429 = 0;
  uint64_t errors = 0;       // 5xx or transport failures
  uint64_t mismatches = 0;   // oracle disagreements (the zero-tolerance gate)
  double achieved_qps = 0;
  double shed_rate = 0;
  double degraded_rate = 0;
  double error_rate = 0;

  // Cache behavior under skew: blocks answered from the command cache over
  // blocks queried, across every 200/206 response.
  uint64_t blocks_queried = 0;
  uint64_t blocks_from_cache = 0;
  double cache_hit_rate = 0;

  // Windowed client-side latency (by arrival time).
  std::vector<SloWindow> windows;
  double cold_p99_ms = 0;   // first window
  double warm_p99_ms = 0;   // aggregate over the second half of the run

  // Server-side views captured after the drive.
  uint64_t slow_queries_captured = 0;
  double server_window_p99_ms = 0;  // loggrep_window_request_p99_ns / 1e6
  uint64_t access_log_dropped = 0;
  std::string statusz;              // the full /statusz page (for artifacts)

  // Working directory the run used. Removed on a clean (gates-pass) run
  // when the harness created it; kept for post-mortem when gates fail.
  std::string root;

  // Gate evaluation: zero mismatches and warm p99 < cold p99. `why` gets a
  // one-line explanation on failure.
  bool GatesPass(std::string* why) const;

  std::string ToJson() const;
};

// Builds the corpus, computes oracles, starts an in-process daemon (with
// fault injection under it when asked), drives the tenants + live ingest,
// and tears everything down. Non-ok only on harness setup failure — gate
// violations are reported in the returned report, not as a Status.
Result<SloHarnessReport> RunSloHarness(const SloHarnessOptions& options);

}  // namespace loggrep

#endif  // SRC_WORKLOAD_SLO_HARNESS_H_
