// Config-driven synthetic log generator.
//
// Stands in for the paper's 21 Alibaba production log types and 16 LogHub
// public datasets (see DESIGN.md "Substitutions"). Each dataset is a weighted
// mix of templates; each template fills variable slots from generators that
// exhibit the runtime-pattern structure the paper observes: fixed prefixes
// (block ids), narrow numeric ranges (timestamps), common roots (paths, IP
// subnets), and low-cardinality enums (status codes, user names).
#ifndef SRC_WORKLOAD_LOGGEN_H_
#define SRC_WORKLOAD_LOGGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"

namespace loggrep {

enum class VarKind {
  kHexId,      // prefix + fixed-length hex digits (+ optional shared prefix)
  kDecimal,    // integer in [min, max], optionally zero-padded
  kTimestamp,  // monotonically increasing "2026-07-06 HH:MM:SS.mmm"
  kIpAddr,     // fixed /16 prefix + random tail, "11.187.x.y"
  kPath,       // prefix + random word + number + suffix
  kEnum,       // weighted draw from a small value list (nominal)
  kUuid,       // 8-4-4-4-12 lowercase hex
  kSeq,        // monotonically increasing counter
};

struct VarSpec {
  VarKind kind = VarKind::kDecimal;
  std::string prefix;                // constant lead-in inside the token
  std::string suffix;                // constant tail inside the token
  int len = 8;                       // hex digits for kHexId
  int shared = 0;                    // leading generated chars fixed per block
  int64_t min = 0;                   // kDecimal range
  int64_t max = 999999;
  bool zero_pad = false;             // kDecimal fixed width of digits(max)
  std::vector<std::string> values;   // kEnum / kPath word list
  std::vector<double> weights;       // optional kEnum weights
};

struct TemplateSpec {
  // Static text with "{}" placeholders, one per entry of `vars`.
  std::string format;
  std::vector<VarSpec> vars;
  double weight = 1.0;
};

struct DatasetSpec {
  std::string name;
  bool production = false;  // Alibaba-like (Fig. 7/8a) vs public (8b)
  std::vector<TemplateSpec> templates;
  uint64_t seed = 1;
};

class LogGenerator {
 public:
  explicit LogGenerator(const DatasetSpec& spec) : spec_(spec) {}

  // Generates '\n'-terminated lines totalling at least `target_bytes`.
  std::string Generate(size_t target_bytes) const;

  // Generates exactly `lines` lines.
  std::string GenerateLines(size_t lines) const;

 private:
  DatasetSpec spec_;
};

}  // namespace loggrep

#endif  // SRC_WORKLOAD_LOGGEN_H_
