#include "src/workload/diff_oracle.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <optional>
#include <utility>

#include "src/core/engine.h"
#include "src/core/session.h"
#include "src/store/archive_set.h"
#include "src/store/fs_util.h"
#include "src/parser/template_miner.h"  // SplitLines
#include "src/parser/tokenizer.h"
#include "src/query/explain.h"
#include "src/query/line_match.h"
#include "src/query/query_parser.h"
#include "src/workload/datasets.h"
#include "src/workload/loggen.h"
#include "src/workload/queries.h"

namespace loggrep {
namespace {

std::string Lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool IsOperatorWord(std::string_view token) {
  const std::string low = Lower(token);
  return low == "and" || low == "or" || low == "not";
}

// Samples one keyword token from a random reference line; never returns an
// empty, quoted or wildcard-carrying token.
std::string SampleToken(Rng& rng, const std::vector<std::string>& lines) {
  for (int attempt = 0; attempt < 16; ++attempt) {
    const std::string& line = lines[rng.NextBelow(lines.size())];
    std::vector<std::string_view> tokens = TokenizeKeywords(line);
    if (tokens.empty()) {
      continue;
    }
    std::string token(tokens[rng.NextBelow(tokens.size())]);
    token.erase(std::remove_if(token.begin(), token.end(),
                               [](char c) {
                                 return c == '"' || c == '*' || c == '?';
                               }),
                token.end());
    if (token.empty()) {
      continue;
    }
    return token;
  }
  return "ERROR";
}

// Quotes tokens that would otherwise parse as operators.
std::string AsSearchWord(std::string token) {
  if (IsOperatorWord(token)) {
    return "\"" + token + "\"";
  }
  return token;
}

std::string WithWildcard(Rng& rng, std::string token) {
  switch (rng.NextBelow(3)) {
    case 0:  // prefix match
      return token.substr(0, 1 + rng.NextBelow(token.size())) + "*";
    case 1:  // suffix match
      return "*" + token.substr(rng.NextBelow(token.size()));
    default: {  // single-char hole
      token[rng.NextBelow(token.size())] = '?';
      return token;
    }
  }
}

// One seeded random query command over the reference lines. Covers single
// keywords, keyword fragments, wildcards, multi-word search strings, AND /
// OR / NOT combinations, quoted operator words, and guaranteed misses.
std::string RandomCommand(Rng& rng, const std::vector<std::string>& lines) {
  const std::string a = SampleToken(rng, lines);
  const std::string b = SampleToken(rng, lines);
  switch (rng.NextBelow(8)) {
    case 0:
      return AsSearchWord(a);
    case 1: {  // substring fragment of a token
      const size_t begin = rng.NextBelow(a.size());
      const size_t len = 1 + rng.NextBelow(a.size() - begin);
      return AsSearchWord(a.substr(begin, len));
    }
    case 2:
      return WithWildcard(rng, a);
    case 3:
      return AsSearchWord(a) + " and " + AsSearchWord(b);
    case 4:
      return AsSearchWord(a) + " or " + AsSearchWord(b);
    case 5:  // grammar: NOT is the binary "left AND NOT right"
      return AsSearchWord(a) + " not " + AsSearchWord(b);
    case 6:  // multi-word search string (one term, several keywords)
      return AsSearchWord(a) + " " + AsSearchWord(b);
    default: {  // guaranteed miss: random content absent from the corpus
      std::string miss = "zqxv";
      for (int i = 0; i < 8; ++i) {
        miss += static_cast<char>('a' + rng.NextBelow(26));
      }
      return miss;
    }
  }
}

// Reference evaluation: plain grep over the in-memory lines.
QueryHits ReferenceHits(const std::vector<std::string>& lines,
                        const QueryExpr& expr) {
  QueryHits hits;
  LineMatcher matcher;
  for (size_t i = 0; i < lines.size(); ++i) {
    if (matcher.MatchesQuery(lines[i], expr)) {
      hits.emplace_back(static_cast<uint64_t>(i), lines[i]);
    }
  }
  return hits;
}

// Hit-for-hit comparison; nullopt when equal, else a first-divergence
// description. `got` is sorted by line number first (ParallelQuery merges
// per-block slices whose concatenation is already ordered, but the oracle
// must not depend on that).
std::optional<std::string> DiffHits(const QueryHits& expected,
                                    QueryHits got) {
  std::sort(got.begin(), got.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  if (expected.size() != got.size()) {
    std::string detail = "hit count: expected " +
                         std::to_string(expected.size()) + ", got " +
                         std::to_string(got.size());
    for (size_t i = 0; i < std::max(expected.size(), got.size()); ++i) {
      const bool have_e = i < expected.size();
      const bool have_g = i < got.size();
      if (!have_e || !have_g || expected[i] != got[i]) {
        detail += "; first divergence at rank " + std::to_string(i);
        if (have_e) {
          detail += "; expected line " + std::to_string(expected[i].first) +
                    " \"" + expected[i].second + "\"";
        }
        if (have_g) {
          detail += "; got line " + std::to_string(got[i].first) + " \"" +
                    got[i].second + "\"";
        }
        break;
      }
    }
    return detail;
  }
  for (size_t i = 0; i < expected.size(); ++i) {
    if (expected[i] != got[i]) {
      return "rank " + std::to_string(i) + ": expected line " +
             std::to_string(expected[i].first) + " \"" + expected[i].second +
             "\", got line " + std::to_string(got[i].first) + " \"" +
             got[i].second + "\"";
    }
  }
  return std::nullopt;
}

// The largest prefix command that the full command strictly refines by an
// appended "and <term>" clause, or empty when there is none (QuerySession's
// refinement fast path only triggers for that shape).
std::string RefinementPrefix(const std::string& command) {
  if (command.find('"') != std::string::npos) {
    return {};  // quoted operators make textual splitting unsafe
  }
  const std::string low = Lower(command);
  const size_t pos = low.rfind(" and ");
  if (pos == std::string::npos || pos == 0) {
    return {};
  }
  return command.substr(0, pos);
}

struct DatasetFixture {
  std::string name;
  std::string dir;                        // archive directory on disk
  std::vector<std::string> lines;         // reference: all committed lines
  std::vector<std::string> block_texts;   // committed blocks, in order
  std::vector<std::string> commands;
};

}  // namespace

const char* OracleModeName(OracleMode mode) {
  switch (mode) {
    case OracleMode::kColdEngine:
      return "cold";
    case OracleMode::kWarmCache:
      return "warm";
    case OracleMode::kSession:
      return "session";
    case OracleMode::kParallel:
      return "parallel";
    case OracleMode::kPostRecovery:
      return "post-recovery";
  }
  return "unknown";
}

std::vector<OracleMode> AllOracleModes() {
  return {OracleMode::kColdEngine, OracleMode::kWarmCache,
          OracleMode::kSession, OracleMode::kParallel,
          OracleMode::kPostRecovery};
}

std::string OracleReport::Summary() const {
  std::string out = "seed " + std::to_string(seed) + ": " +
                    std::to_string(datasets_run) + " datasets, " +
                    std::to_string(commands_run) + " commands, " +
                    std::to_string(checks_run) + " checks, " +
                    std::to_string(mismatches.size()) + " mismatches";
  if (!fatal.ok()) {
    out += ", FATAL: " + fatal.ToString();
  }
  for (const OracleMismatch& m : mismatches) {
    out += "\n  [" + m.mode + "] " + m.dataset + " :: \"" + m.command +
           "\" :: " + m.detail;
  }
  return out;
}

OracleReport RunDifferentialOracle(const OracleOptions& options) {
  OracleReport report;
  report.seed = options.seed;
  Rng rng(options.seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL);

  const std::string scratch_root =
      options.scratch_dir.empty()
          ? std::filesystem::temp_directory_path().string()
          : options.scratch_dir;

  const std::vector<DatasetSpec>& catalog = AllDatasets();
  const auto wants_mode = [&](OracleMode m) {
    return std::find(options.modes.begin(), options.modes.end(), m) !=
           options.modes.end();
  };
  const bool want_recovery = wants_mode(OracleMode::kPostRecovery);

  for (size_t d = 0; d < options.num_datasets; ++d) {
    // --- Build the workload for one sampled dataset. ---
    DatasetSpec spec = catalog[rng.NextBelow(catalog.size())];
    DatasetFixture fx;
    fx.name = spec.name;
    fx.dir = scratch_root + "/loggrep-oracle-" + std::to_string(options.seed) +
             "-" + std::to_string(d);
    std::error_code ec;
    std::filesystem::remove_all(fx.dir, ec);

    for (size_t b = 0; b < options.blocks_per_archive; ++b) {
      spec.seed = rng.NextU64() | 1;
      const LogGenerator gen(spec);
      fx.block_texts.push_back(gen.GenerateLines(options.lines_per_block));
      for (std::string_view line : SplitLines(fx.block_texts.back())) {
        fx.lines.emplace_back(line);
      }
    }

    Result<LogArchive> archive = LogArchive::Create(fx.dir, options.archive);
    if (!archive.ok()) {
      report.fatal = archive.status();
      return report;
    }
    for (const std::string& text : fx.block_texts) {
      if (Status s = archive->AppendBlock(text); !s.ok()) {
        report.fatal = s;
        return report;
      }
    }

    // Post-recovery fixture: one extra block whose commit dies mid-protocol
    // at a seed-chosen kill point; reopening must recover exactly the
    // committed prefix (and the reference is the committed prefix).
    std::optional<LogArchive> recovered;
    if (want_recovery) {
      spec.seed = rng.NextU64() | 1;
      const std::string doomed =
          LogGenerator(spec).GenerateLines(options.lines_per_block);
      const CommitKillPoint kill_at = static_cast<CommitKillPoint>(
          rng.NextBelow(3));  // rotates across the three protocol steps
      BlockInfo info =
          BuildBlockSummary(doomed, options.archive.bloom_bits_per_shingle);
      const std::string box =
          LogGrepEngine(options.archive.engine).CompressBlock(doomed);
      const Status aborted = archive->CommitCompressedBlock(
          box, std::move(info),
          [kill_at](CommitKillPoint p) { return p == kill_at; });
      if (aborted.ok()) {
        report.fatal = Internal("oracle: injected commit abort did not fire");
        return report;
      }
      Result<LogArchive> reopened = LogArchive::Open(fx.dir, options.archive);
      if (!reopened.ok()) {
        report.fatal = reopened.status();
        return report;
      }
      if (reopened->blocks().size() != options.blocks_per_archive) {
        report.fatal = Internal(
            "oracle: recovery kept " +
            std::to_string(reopened->blocks().size()) + " blocks, expected " +
            std::to_string(options.blocks_per_archive));
        return report;
      }
      recovered.emplace(std::move(*reopened));
    }

    // --- Command list: the dataset's own suite plus seeded random ones. ---
    for (std::string& q : QuerySuiteForDataset(fx.name)) {
      fx.commands.push_back(std::move(q));
    }
    for (size_t i = 0; i < options.random_queries; ++i) {
      fx.commands.push_back(RandomCommand(rng, fx.lines));
    }

    // Session fixture: per-block CapsuleBoxes recompressed deterministically
    // with the same engine options (QuerySession operates on one box).
    LogGrepEngine session_engine(options.archive.engine);
    std::vector<std::string> session_boxes;
    std::vector<uint64_t> block_first_line;
    if (wants_mode(OracleMode::kSession)) {
      uint64_t first = 0;
      for (const std::string& text : fx.block_texts) {
        session_boxes.push_back(session_engine.CompressBlock(text));
        block_first_line.push_back(first);
        first += SplitLines(text).size();
      }
    }

    ++report.datasets_run;

    const auto note = [&](OracleMode mode, const std::string& command,
                          const std::string& detail) {
      report.mismatches.push_back(
          {fx.name, command, OracleModeName(mode), detail});
    };

    for (const std::string& command : fx.commands) {
      Result<std::unique_ptr<QueryExpr>> expr = ParseQuery(command);
      if (!expr.ok()) {
        report.fatal = Status(expr.status().code(),
                              "oracle: generated command \"" + command +
                                  "\" failed to parse: " +
                                  expr.status().ToString());
        return report;
      }
      const QueryHits expected = ReferenceHits(fx.lines, **expr);
      ++report.commands_run;

      for (OracleMode mode : options.modes) {
        Result<ArchiveQueryResult> got = [&]() -> Result<ArchiveQueryResult> {
          switch (mode) {
            case OracleMode::kColdEngine: {
              Result<LogArchive> cold =
                  LogArchive::Open(fx.dir, options.archive);
              if (!cold.ok()) {
                return cold.status();
              }
              return cold->Query(command);
            }
            case OracleMode::kWarmCache: {
              // First pass warms the shared BoxCache + command cache; the
              // compared result is the warm one.
              Result<ArchiveQueryResult> warmup = archive->Query(command);
              if (!warmup.ok()) {
                return warmup.status();
              }
              return archive->Query(command);
            }
            case OracleMode::kParallel:
              return archive->ParallelQuery(command,
                                            options.parallel_threads);
            case OracleMode::kPostRecovery:
              return recovered->Query(command);
            case OracleMode::kSession: {
              ArchiveQueryResult merged;
              for (size_t b = 0; b < session_boxes.size(); ++b) {
                QuerySession session(&session_engine, session_boxes[b]);
                const std::string prefix = RefinementPrefix(command);
                if (!prefix.empty()) {
                  // Prime the refinement fast path with the base command.
                  Result<SessionQueryResult> base = session.Query(prefix);
                  if (!base.ok()) {
                    return base.status();
                  }
                }
                Result<SessionQueryResult> r = session.Query(command);
                if (!r.ok()) {
                  return r.status();
                }
                for (auto& [line, text] : r->hits) {
                  merged.hits.emplace_back(block_first_line[b] + line,
                                           std::move(text));
                }
              }
              return merged;
            }
          }
          return Internal("oracle: unknown mode");
        }();
        ++report.checks_run;
        if (!got.ok()) {
          note(mode, command, "query failed: " + got.status().ToString());
          continue;
        }
        if (auto diff = DiffHits(expected, std::move(got->hits))) {
          note(mode, command, *diff);
        }
      }

      if (options.check_explain) {
        ++report.checks_run;
        QueryExplain explain;
        Result<ArchiveQueryResult> got = archive->Explain(command, &explain);
        if (!got.ok()) {
          report.mismatches.push_back(
              {fx.name, command, "explain",
               "explain failed: " + got.status().ToString()});
        } else {
          if (auto diff = DiffHits(expected, std::move(got->hits))) {
            report.mismatches.push_back(
                {fx.name, command, "explain", *diff});
          }
          std::string detail;
          if (!explain.CheckInvariant(&detail)) {
            report.mismatches.push_back(
                {fx.name, command, "explain",
                 "accounting invariant violated: " + detail});
          }
        }
      }
    }

    std::filesystem::remove_all(fx.dir, ec);
  }
  return report;
}

// ---------------------------------------------------------------------------
// Federation oracle
// ---------------------------------------------------------------------------

namespace {

// One reference line of the federated corpus, tagged with enough context to
// re-derive the shard-granular predicate semantics from first principles.
struct FedRefLine {
  uint64_t global_line = 0;
  uint64_t shard_id = 0;
  size_t tenant = 0;
  std::string text;
};

// Fixture-side shard model, built from append receipts + event timestamps —
// independent of the manifest the system persists.
struct FedShardModel {
  size_t tenant = 0;
  uint64_t min_ts_ns = UINT64_MAX;
  uint64_t max_ts_ns = 0;
  bool sealed = false;  // derived: not the tenant's last-created shard
};

struct FedCommand {
  std::string command;
  SetQueryPredicate pred;
};

// Re-derivation of ArchiveSet's pruning contract: tenant pruning is exact
// (a shard holds one tenant); time pruning may skip a *sealed* shard whose
// event range misses the predicate; the active (unsealed) shard is always
// visited. A visited shard contributes all of its matching lines — the
// predicate is shard-granular, not line-granular.
bool FedShardVisited(const FedShardModel& shard,
                     const std::vector<std::string>& tenants,
                     const SetQueryPredicate& pred) {
  if (pred.tenant.has_value() && *pred.tenant != tenants[shard.tenant]) {
    return false;
  }
  if (pred.constrains_time() && shard.sealed) {
    if (shard.max_ts_ns < pred.from_ns || shard.min_ts_ns > pred.to_ns) {
      return false;
    }
  }
  return true;
}

QueryHits FedExpectedHits(const std::vector<FedRefLine>& lines,
                          const std::map<uint64_t, FedShardModel>& shards,
                          const std::vector<std::string>& tenants,
                          const QueryExpr& expr, const SetQueryPredicate& pred) {
  QueryHits hits;
  LineMatcher matcher;
  for (const FedRefLine& line : lines) {
    if (!FedShardVisited(shards.at(line.shard_id), tenants, pred)) {
      continue;
    }
    if (matcher.MatchesQuery(line.text, expr)) {
      hits.emplace_back(line.global_line, line.text);
    }
  }
  return hits;
}

// Hits with global lines inside [first, first + count) removed — the exact
// hole a lost block leaves.
QueryHits FedWithoutRange(const QueryHits& hits, uint64_t first,
                          uint64_t count) {
  QueryHits out;
  for (const auto& hit : hits) {
    if (hit.first >= first && hit.first < first + count) {
      continue;
    }
    out.push_back(hit);
  }
  return out;
}

// Text-sequence comparison for the monolith cross-check (line numbers are
// intentionally different between the sparse federated space and the
// contiguous monolith).
std::optional<std::string> DiffHitTexts(const QueryHits& expected,
                                        QueryHits got) {
  std::sort(got.begin(), got.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  if (expected.size() != got.size()) {
    return "hit count: federation " + std::to_string(expected.size()) +
           ", monolith " + std::to_string(got.size());
  }
  for (size_t i = 0; i < expected.size(); ++i) {
    if (expected[i].second != got[i].second) {
      return "rank " + std::to_string(i) + ": federation \"" +
             expected[i].second + "\", monolith \"" + got[i].second + "\"";
    }
  }
  return std::nullopt;
}

}  // namespace

const char* FederationModeName(FederationMode mode) {
  switch (mode) {
    case FederationMode::kCold:
      return "fed-cold";
    case FederationMode::kWarm:
      return "fed-warm";
    case FederationMode::kParallel:
      return "fed-parallel";
    case FederationMode::kPostRepair:
      return "fed-post-repair";
  }
  return "fed-unknown";
}

std::vector<FederationMode> AllFederationModes() {
  return {FederationMode::kCold, FederationMode::kWarm,
          FederationMode::kParallel, FederationMode::kPostRepair};
}

OracleReport RunFederationOracle(const FederationOracleOptions& options) {
  OracleReport report;
  report.seed = options.seed;
  Rng rng(options.seed * 0xA24BAED4963EE407ULL + 0x9FB21C651E98DF25ULL);

  const std::string scratch_root =
      options.scratch_dir.empty()
          ? std::filesystem::temp_directory_path().string()
          : options.scratch_dir;
  const std::string root = scratch_root + "/loggrep-fedoracle-" +
                           std::to_string(options.seed);
  const std::string monolith_dir = root + "-mono";
  std::error_code ec;
  std::filesystem::remove_all(root, ec);
  std::filesystem::remove_all(monolith_dir, ec);
  const auto cleanup = [&] {
    std::error_code rm_ec;
    std::filesystem::remove_all(root, rm_ec);
    std::filesystem::remove_all(monolith_dir, rm_ec);
  };

  // One hour windows; a 2025-era epoch base, deliberately past 2^53 so the
  // manifest's string-encoded u64 timestamps are load-bearing. The base must
  // sit on an aligned window boundary (WindowStartFor floors to multiples of
  // the span) or each oracle window would straddle two real shards.
  constexpr uint64_t kSpanNs = 3'600'000'000'000ull;
  constexpr uint64_t kBaseNs = 486'112ull * kSpanNs;  // ~1.75e18 ns

  // Tenant names include directory-unsafe bytes: sanitization is under test.
  static const char* kTenantPool[] = {"edge",     "acme web",  "payments-01",
                                      "iot/devices", "Search&Rescue",
                                      "tenant_06"};
  std::vector<std::string> tenants;
  for (size_t t = 0; t < options.num_tenants && t < 6; ++t) {
    tenants.emplace_back(kTenantPool[t]);
  }

  ArchiveSetOptions set_options;
  set_options.archive = options.archive;
  set_options.window_span_ns = kSpanNs;
  set_options.max_shard_bytes = 0;  // shards == (tenant, window), exactly

  Result<std::unique_ptr<ArchiveSet>> created =
      ArchiveSet::Create(root, set_options);
  if (!created.ok()) {
    report.fatal = created.status();
    return report;
  }
  std::unique_ptr<ArchiveSet> set = std::move(*created);
  Result<LogArchive> monolith =
      LogArchive::Create(monolith_dir, options.archive);
  if (!monolith.ok()) {
    report.fatal = monolith.status();
    return report;
  }

  const std::vector<DatasetSpec>& catalog = AllDatasets();
  std::vector<DatasetSpec> tenant_spec;
  for (size_t t = 0; t < tenants.size(); ++t) {
    tenant_spec.push_back(catalog[rng.NextBelow(catalog.size())]);
  }

  // --- Ingest: windows outer, tenants inner, so shard creation interleaves
  // tenants and global line bases interleave with them. ---
  std::vector<FedRefLine> ref_lines;
  std::map<uint64_t, FedShardModel> shard_model;
  std::map<size_t, uint64_t> last_shard_of_tenant;
  struct AppendRec {
    uint64_t shard_id = 0;
    uint64_t seq_in_shard = 0;
    uint64_t first_global_line = 0;
    uint64_t line_count = 0;
  };
  std::vector<AppendRec> appends;
  std::map<uint64_t, uint64_t> blocks_in_shard;
  std::vector<std::string> all_lines;

  for (size_t w = 0; w < options.num_windows; ++w) {
    for (size_t t = 0; t < tenants.size(); ++t) {
      for (size_t b = 0; b < options.blocks_per_window; ++b) {
        tenant_spec[t].seed = rng.NextU64() | 1;
        const std::string text =
            LogGenerator(tenant_spec[t]).GenerateLines(options.lines_per_block);
        const uint64_t ts = kBaseNs + w * kSpanNs + rng.NextBelow(kSpanNs);
        Result<AppendReceipt> receipt = set->Append(tenants[t], text, ts);
        if (!receipt.ok()) {
          report.fatal = receipt.status();
          cleanup();
          return report;
        }
        if (Status s = monolith->AppendBlock(text); !s.ok()) {
          report.fatal = s;
          cleanup();
          return report;
        }
        const std::vector<std::string_view> lines = SplitLines(text);
        if (receipt->lines != lines.size()) {
          report.fatal = Internal(
              "federation oracle: receipt reported " +
              std::to_string(receipt->lines) + " lines, text has " +
              std::to_string(lines.size()));
          cleanup();
          return report;
        }
        for (size_t i = 0; i < lines.size(); ++i) {
          FedRefLine line;
          line.global_line = receipt->first_global_line + i;
          line.shard_id = receipt->shard_id;
          line.tenant = t;
          line.text = std::string(lines[i]);
          all_lines.push_back(line.text);
          ref_lines.push_back(std::move(line));
        }
        FedShardModel& model = shard_model[receipt->shard_id];
        model.tenant = t;
        model.min_ts_ns = std::min(model.min_ts_ns, ts);
        model.max_ts_ns = std::max(model.max_ts_ns, ts);
        appends.push_back({receipt->shard_id,
                           blocks_in_shard[receipt->shard_id]++,
                           receipt->first_global_line, lines.size()});
        last_shard_of_tenant[t] = receipt->shard_id;
      }
    }
  }
  for (auto& [id, model] : shard_model) {
    model.sealed = (id != last_shard_of_tenant[model.tenant]);
  }
  if (shard_model.size() != tenants.size() * options.num_windows) {
    report.fatal = Internal("federation oracle: expected " +
                            std::to_string(tenants.size() *
                                           options.num_windows) +
                            " shards, routing produced " +
                            std::to_string(shard_model.size()));
    cleanup();
    return report;
  }
  report.datasets_run = 1;

  // --- Seeded (command, predicate) pairs. The first pair is forced
  // predicate-free so monolith coverage never degenerates. ---
  std::vector<FedCommand> commands;
  for (size_t i = 0; i < options.random_queries; ++i) {
    FedCommand cmd;
    cmd.command = RandomCommand(rng, all_lines);
    if (i > 0 && rng.NextDouble() < options.tenant_predicate_p) {
      cmd.pred.tenant = tenants[rng.NextBelow(tenants.size())];
    }
    if (i > 0 && rng.NextDouble() < options.time_predicate_p) {
      const uint64_t w1 = rng.NextBelow(options.num_windows);
      const uint64_t w2 = w1 + rng.NextBelow(options.num_windows - w1);
      cmd.pred.from_ns = kBaseNs + w1 * kSpanNs;
      cmd.pred.to_ns = kBaseNs + (w2 + 1) * kSpanNs - 1;
    }
    commands.push_back(std::move(cmd));
  }

  const auto wants_mode = [&](FederationMode m) {
    return std::find(options.modes.begin(), options.modes.end(), m) !=
           options.modes.end();
  };
  const auto note = [&](const char* mode, const FedCommand& cmd,
                        std::string detail) {
    std::string label = cmd.command;
    if (cmd.pred.tenant.has_value()) {
      label += " [tenant=" + *cmd.pred.tenant + "]";
    }
    if (cmd.pred.constrains_time()) {
      label += " [from=" + std::to_string(cmd.pred.from_ns) +
               " to=" + std::to_string(cmd.pred.to_ns) + "]";
    }
    report.mismatches.push_back(
        {"federation", std::move(label), mode, std::move(detail)});
  };
  // Shared result sanity beyond hits: shard accounting must balance and an
  // uncorrupted set must answer completely.
  const auto check_result = [&](const char* mode, const FedCommand& cmd,
                                const SetQueryResult& r, bool expect_complete) {
    if (r.shards_pruned + r.shards_visited != r.shards_total) {
      note(mode, cmd,
           "shard accounting: " + std::to_string(r.shards_pruned) +
               " pruned + " + std::to_string(r.shards_visited) +
               " visited != " + std::to_string(r.shards_total) + " total");
    }
    if (expect_complete && !r.complete()) {
      note(mode, cmd, "unexpected degraded result: " + r.RenderPartial());
    }
  };

  for (const FedCommand& cmd : commands) {
    Result<std::unique_ptr<QueryExpr>> expr = ParseQuery(cmd.command);
    if (!expr.ok()) {
      report.fatal = Status(expr.status().code(),
                            "federation oracle: generated command \"" +
                                cmd.command + "\" failed to parse: " +
                                expr.status().ToString());
      cleanup();
      return report;
    }
    const QueryHits expected =
        FedExpectedHits(ref_lines, shard_model, tenants, **expr, cmd.pred);
    ++report.commands_run;

    if (wants_mode(FederationMode::kCold)) {
      ++report.checks_run;
      Result<std::unique_ptr<ArchiveSet>> cold =
          ArchiveSet::Open(root, set_options);
      Result<SetQueryResult> got =
          cold.ok() ? (*cold)->Query(cmd.command, cmd.pred) : cold.status();
      if (!got.ok()) {
        note("fed-cold", cmd, "query failed: " + got.status().ToString());
      } else {
        check_result("fed-cold", cmd, *got, /*expect_complete=*/true);
        if (auto diff = DiffHits(expected, std::move(got->hits))) {
          note("fed-cold", cmd, *diff);
        }
      }
    }
    if (wants_mode(FederationMode::kWarm)) {
      ++report.checks_run;
      Result<SetQueryResult> warmup = set->Query(cmd.command, cmd.pred);
      Result<SetQueryResult> got =
          warmup.ok() ? set->Query(cmd.command, cmd.pred) : warmup.status();
      if (!got.ok()) {
        note("fed-warm", cmd, "query failed: " + got.status().ToString());
      } else {
        check_result("fed-warm", cmd, *got, /*expect_complete=*/true);
        if (auto diff = DiffHits(expected, std::move(got->hits))) {
          note("fed-warm", cmd, *diff);
        }
      }
    }
    if (wants_mode(FederationMode::kParallel)) {
      ++report.checks_run;
      Result<SetQueryResult> got =
          set->ParallelQuery(cmd.command, cmd.pred, options.parallel_threads);
      if (!got.ok()) {
        note("fed-parallel", cmd, "query failed: " + got.status().ToString());
      } else {
        check_result("fed-parallel", cmd, *got, /*expect_complete=*/true);
        if (auto diff = DiffHits(expected, std::move(got->hits))) {
          note("fed-parallel", cmd, *diff);
        }
      }
    }
    if (options.check_explain) {
      ++report.checks_run;
      SetExplain explain;
      Result<SetQueryResult> got =
          set->Explain(cmd.command, cmd.pred, &explain);
      if (!got.ok()) {
        note("fed-explain", cmd, "explain failed: " + got.status().ToString());
      } else {
        check_result("fed-explain", cmd, *got, /*expect_complete=*/true);
        if (auto diff = DiffHits(expected, std::move(got->hits))) {
          note("fed-explain", cmd, *diff);
        }
        std::string detail;
        if (!explain.CheckInvariant(&detail)) {
          note("fed-explain", cmd,
               "accounting invariant violated: " + detail);
        }
      }
    }
    if (options.check_monolith && !cmd.pred.tenant.has_value() &&
        !cmd.pred.constrains_time()) {
      ++report.checks_run;
      Result<ArchiveQueryResult> mono = monolith->Query(cmd.command);
      if (!mono.ok()) {
        note("fed-monolith", cmd,
             "monolith query failed: " + mono.status().ToString());
      } else if (auto diff = DiffHitTexts(expected, std::move(mono->hits))) {
        note("fed-monolith", cmd, *diff);
      }
      // Stat-for-stat, cold vs cold: identical blocks, identical pruning
      // filters, identical engines => the deterministic count stats agree.
      ++report.checks_run;
      Result<std::unique_ptr<ArchiveSet>> cold_set =
          ArchiveSet::Open(root, set_options);
      Result<LogArchive> cold_mono =
          LogArchive::Open(monolith_dir, options.archive);
      if (!cold_set.ok() || !cold_mono.ok()) {
        note("fed-monolith-stats", cmd, "cold reopen failed");
      } else {
        Result<SetQueryResult> fed = (*cold_set)->Query(cmd.command, {});
        Result<ArchiveQueryResult> ref = cold_mono->Query(cmd.command);
        if (!fed.ok() || !ref.ok()) {
          note("fed-monolith-stats", cmd, "cold query failed");
        } else {
          const auto stat_diff = [&](const char* name, uint64_t f,
                                     uint64_t m) {
            if (f != m) {
              note("fed-monolith-stats", cmd,
                   std::string(name) + ": federation " + std::to_string(f) +
                       ", monolith " + std::to_string(m));
            }
          };
          stat_diff("blocks_pruned", fed->blocks_pruned, ref->blocks_pruned);
          stat_diff("blocks_queried", fed->blocks_queried,
                    ref->blocks_queried);
          stat_diff("capsules_decompressed",
                    fed->locator.capsules_decompressed,
                    ref->locator.capsules_decompressed);
          stat_diff("capsules_stamp_filtered",
                    fed->locator.capsules_stamp_filtered,
                    ref->locator.capsules_stamp_filtered);
        }
      }
    }
  }

  // --- Post-repair cycle: corrupt one block of one shard on disk, expect
  // exactly the healthy lines (degraded), restore + repair, expect exact
  // convergence. Runs on a freshly opened set so caches cannot mask the
  // corruption. ---
  if (wants_mode(FederationMode::kPostRepair) && !appends.empty()) {
    const AppendRec victim = appends[rng.NextBelow(appends.size())];
    std::string victim_dir;
    for (const ShardInfo& s : set->shards()) {
      if (s.id == victim.shard_id) {
        victim_dir = s.dir_name;
        break;
      }
    }
    const std::string block_path =
        root + "/" + victim_dir + "/block-" +
        std::to_string(victim.seq_in_shard) + ".lgc";
    Result<std::string> original = ReadFileBytes(block_path);
    if (!original.ok()) {
      report.fatal = Status(original.status().code(),
                            "federation oracle: read victim block: " +
                                original.status().message());
      cleanup();
      return report;
    }
    std::string garbage = "FEDERATION-ORACLE-GARBAGE";
    while (garbage.size() < 512) {
      garbage += garbage;
    }
    if (Status s = WriteFileBytes(block_path, garbage); !s.ok()) {
      report.fatal = s;
      cleanup();
      return report;
    }

    Result<std::unique_ptr<ArchiveSet>> degraded_open =
        ArchiveSet::Open(root, set_options);
    if (!degraded_open.ok()) {
      report.fatal = degraded_open.status();
      cleanup();
      return report;
    }
    std::unique_ptr<ArchiveSet> degraded = std::move(*degraded_open);
    bool any_quarantined = false;
    for (const FedCommand& cmd : commands) {
      Result<std::unique_ptr<QueryExpr>> expr = ParseQuery(cmd.command);
      const QueryHits full =
          FedExpectedHits(ref_lines, shard_model, tenants, **expr, cmd.pred);
      const QueryHits healthy = FedWithoutRange(full, victim.first_global_line,
                                                victim.line_count);
      ++report.checks_run;
      Result<SetQueryResult> got = degraded->Query(cmd.command, cmd.pred);
      if (!got.ok()) {
        note("fed-post-repair", cmd,
             "degraded query failed: " + got.status().ToString());
        continue;
      }
      // A complete result means the corrupted block was never read — which
      // is only legitimate when block-level pruning rejected it, i.e. the
      // block holds NO matching lines; the hits must then equal the full
      // expectation (this is exactly pruning soundness under corruption). A
      // degraded result must return the full expectation minus the corrupted
      // block's line range, nothing more and nothing less.
      if (got->complete()) {
        if (auto diff = DiffHits(full, std::move(got->hits))) {
          note("fed-post-repair", cmd,
               "complete-despite-corruption hits: " + *diff);
        }
      } else {
        any_quarantined = true;
        if (auto diff = DiffHits(healthy, std::move(got->hits))) {
          note("fed-post-repair", cmd, "degraded hits: " + *diff);
        }
      }
    }

    if (Status s = WriteFileBytes(block_path, *original); !s.ok()) {
      report.fatal = s;
      cleanup();
      return report;
    }
    SetRepairReport repaired = degraded->RepairAll();
    if (!repaired.ok() ||
        (any_quarantined && repaired.reinstated == 0)) {
      // Reinstatement is only owed when some degraded query actually read
      // the corrupted block and quarantined it.
      note("fed-post-repair", commands.front(),
           "repair did not reinstate the restored block: " +
               repaired.Summary());
    }
    for (const FedCommand& cmd : commands) {
      Result<std::unique_ptr<QueryExpr>> expr = ParseQuery(cmd.command);
      const QueryHits full =
          FedExpectedHits(ref_lines, shard_model, tenants, **expr, cmd.pred);
      ++report.checks_run;
      Result<SetQueryResult> got = degraded->Query(cmd.command, cmd.pred);
      if (!got.ok()) {
        note("fed-post-repair", cmd,
             "post-repair query failed: " + got.status().ToString());
        continue;
      }
      if (!got->complete()) {
        note("fed-post-repair", cmd,
             "post-repair result still degraded: " + got->RenderPartial());
      }
      if (auto diff = DiffHits(full, std::move(got->hits))) {
        note("fed-post-repair", cmd, "post-repair hits: " + *diff);
      }
    }
  }

  cleanup();
  return report;
}

}  // namespace loggrep
