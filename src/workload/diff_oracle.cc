#include "src/workload/diff_oracle.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <optional>
#include <utility>

#include "src/core/engine.h"
#include "src/core/session.h"
#include "src/parser/template_miner.h"  // SplitLines
#include "src/parser/tokenizer.h"
#include "src/query/explain.h"
#include "src/query/line_match.h"
#include "src/query/query_parser.h"
#include "src/workload/datasets.h"
#include "src/workload/loggen.h"
#include "src/workload/queries.h"

namespace loggrep {
namespace {

std::string Lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool IsOperatorWord(std::string_view token) {
  const std::string low = Lower(token);
  return low == "and" || low == "or" || low == "not";
}

// Samples one keyword token from a random reference line; never returns an
// empty, quoted or wildcard-carrying token.
std::string SampleToken(Rng& rng, const std::vector<std::string>& lines) {
  for (int attempt = 0; attempt < 16; ++attempt) {
    const std::string& line = lines[rng.NextBelow(lines.size())];
    std::vector<std::string_view> tokens = TokenizeKeywords(line);
    if (tokens.empty()) {
      continue;
    }
    std::string token(tokens[rng.NextBelow(tokens.size())]);
    token.erase(std::remove_if(token.begin(), token.end(),
                               [](char c) {
                                 return c == '"' || c == '*' || c == '?';
                               }),
                token.end());
    if (token.empty()) {
      continue;
    }
    return token;
  }
  return "ERROR";
}

// Quotes tokens that would otherwise parse as operators.
std::string AsSearchWord(std::string token) {
  if (IsOperatorWord(token)) {
    return "\"" + token + "\"";
  }
  return token;
}

std::string WithWildcard(Rng& rng, std::string token) {
  switch (rng.NextBelow(3)) {
    case 0:  // prefix match
      return token.substr(0, 1 + rng.NextBelow(token.size())) + "*";
    case 1:  // suffix match
      return "*" + token.substr(rng.NextBelow(token.size()));
    default: {  // single-char hole
      token[rng.NextBelow(token.size())] = '?';
      return token;
    }
  }
}

// One seeded random query command over the reference lines. Covers single
// keywords, keyword fragments, wildcards, multi-word search strings, AND /
// OR / NOT combinations, quoted operator words, and guaranteed misses.
std::string RandomCommand(Rng& rng, const std::vector<std::string>& lines) {
  const std::string a = SampleToken(rng, lines);
  const std::string b = SampleToken(rng, lines);
  switch (rng.NextBelow(8)) {
    case 0:
      return AsSearchWord(a);
    case 1: {  // substring fragment of a token
      const size_t begin = rng.NextBelow(a.size());
      const size_t len = 1 + rng.NextBelow(a.size() - begin);
      return AsSearchWord(a.substr(begin, len));
    }
    case 2:
      return WithWildcard(rng, a);
    case 3:
      return AsSearchWord(a) + " and " + AsSearchWord(b);
    case 4:
      return AsSearchWord(a) + " or " + AsSearchWord(b);
    case 5:  // grammar: NOT is the binary "left AND NOT right"
      return AsSearchWord(a) + " not " + AsSearchWord(b);
    case 6:  // multi-word search string (one term, several keywords)
      return AsSearchWord(a) + " " + AsSearchWord(b);
    default: {  // guaranteed miss: random content absent from the corpus
      std::string miss = "zqxv";
      for (int i = 0; i < 8; ++i) {
        miss += static_cast<char>('a' + rng.NextBelow(26));
      }
      return miss;
    }
  }
}

// Reference evaluation: plain grep over the in-memory lines.
QueryHits ReferenceHits(const std::vector<std::string>& lines,
                        const QueryExpr& expr) {
  QueryHits hits;
  LineMatcher matcher;
  for (size_t i = 0; i < lines.size(); ++i) {
    if (matcher.MatchesQuery(lines[i], expr)) {
      hits.emplace_back(static_cast<uint64_t>(i), lines[i]);
    }
  }
  return hits;
}

// Hit-for-hit comparison; nullopt when equal, else a first-divergence
// description. `got` is sorted by line number first (ParallelQuery merges
// per-block slices whose concatenation is already ordered, but the oracle
// must not depend on that).
std::optional<std::string> DiffHits(const QueryHits& expected,
                                    QueryHits got) {
  std::sort(got.begin(), got.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  if (expected.size() != got.size()) {
    std::string detail = "hit count: expected " +
                         std::to_string(expected.size()) + ", got " +
                         std::to_string(got.size());
    for (size_t i = 0; i < std::max(expected.size(), got.size()); ++i) {
      const bool have_e = i < expected.size();
      const bool have_g = i < got.size();
      if (!have_e || !have_g || expected[i] != got[i]) {
        detail += "; first divergence at rank " + std::to_string(i);
        if (have_e) {
          detail += "; expected line " + std::to_string(expected[i].first) +
                    " \"" + expected[i].second + "\"";
        }
        if (have_g) {
          detail += "; got line " + std::to_string(got[i].first) + " \"" +
                    got[i].second + "\"";
        }
        break;
      }
    }
    return detail;
  }
  for (size_t i = 0; i < expected.size(); ++i) {
    if (expected[i] != got[i]) {
      return "rank " + std::to_string(i) + ": expected line " +
             std::to_string(expected[i].first) + " \"" + expected[i].second +
             "\", got line " + std::to_string(got[i].first) + " \"" +
             got[i].second + "\"";
    }
  }
  return std::nullopt;
}

// The largest prefix command that the full command strictly refines by an
// appended "and <term>" clause, or empty when there is none (QuerySession's
// refinement fast path only triggers for that shape).
std::string RefinementPrefix(const std::string& command) {
  if (command.find('"') != std::string::npos) {
    return {};  // quoted operators make textual splitting unsafe
  }
  const std::string low = Lower(command);
  const size_t pos = low.rfind(" and ");
  if (pos == std::string::npos || pos == 0) {
    return {};
  }
  return command.substr(0, pos);
}

struct DatasetFixture {
  std::string name;
  std::string dir;                        // archive directory on disk
  std::vector<std::string> lines;         // reference: all committed lines
  std::vector<std::string> block_texts;   // committed blocks, in order
  std::vector<std::string> commands;
};

}  // namespace

const char* OracleModeName(OracleMode mode) {
  switch (mode) {
    case OracleMode::kColdEngine:
      return "cold";
    case OracleMode::kWarmCache:
      return "warm";
    case OracleMode::kSession:
      return "session";
    case OracleMode::kParallel:
      return "parallel";
    case OracleMode::kPostRecovery:
      return "post-recovery";
  }
  return "unknown";
}

std::vector<OracleMode> AllOracleModes() {
  return {OracleMode::kColdEngine, OracleMode::kWarmCache,
          OracleMode::kSession, OracleMode::kParallel,
          OracleMode::kPostRecovery};
}

std::string OracleReport::Summary() const {
  std::string out = "seed " + std::to_string(seed) + ": " +
                    std::to_string(datasets_run) + " datasets, " +
                    std::to_string(commands_run) + " commands, " +
                    std::to_string(checks_run) + " checks, " +
                    std::to_string(mismatches.size()) + " mismatches";
  if (!fatal.ok()) {
    out += ", FATAL: " + fatal.ToString();
  }
  for (const OracleMismatch& m : mismatches) {
    out += "\n  [" + m.mode + "] " + m.dataset + " :: \"" + m.command +
           "\" :: " + m.detail;
  }
  return out;
}

OracleReport RunDifferentialOracle(const OracleOptions& options) {
  OracleReport report;
  report.seed = options.seed;
  Rng rng(options.seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL);

  const std::string scratch_root =
      options.scratch_dir.empty()
          ? std::filesystem::temp_directory_path().string()
          : options.scratch_dir;

  const std::vector<DatasetSpec>& catalog = AllDatasets();
  const auto wants_mode = [&](OracleMode m) {
    return std::find(options.modes.begin(), options.modes.end(), m) !=
           options.modes.end();
  };
  const bool want_recovery = wants_mode(OracleMode::kPostRecovery);

  for (size_t d = 0; d < options.num_datasets; ++d) {
    // --- Build the workload for one sampled dataset. ---
    DatasetSpec spec = catalog[rng.NextBelow(catalog.size())];
    DatasetFixture fx;
    fx.name = spec.name;
    fx.dir = scratch_root + "/loggrep-oracle-" + std::to_string(options.seed) +
             "-" + std::to_string(d);
    std::error_code ec;
    std::filesystem::remove_all(fx.dir, ec);

    for (size_t b = 0; b < options.blocks_per_archive; ++b) {
      spec.seed = rng.NextU64() | 1;
      const LogGenerator gen(spec);
      fx.block_texts.push_back(gen.GenerateLines(options.lines_per_block));
      for (std::string_view line : SplitLines(fx.block_texts.back())) {
        fx.lines.emplace_back(line);
      }
    }

    Result<LogArchive> archive = LogArchive::Create(fx.dir, options.archive);
    if (!archive.ok()) {
      report.fatal = archive.status();
      return report;
    }
    for (const std::string& text : fx.block_texts) {
      if (Status s = archive->AppendBlock(text); !s.ok()) {
        report.fatal = s;
        return report;
      }
    }

    // Post-recovery fixture: one extra block whose commit dies mid-protocol
    // at a seed-chosen kill point; reopening must recover exactly the
    // committed prefix (and the reference is the committed prefix).
    std::optional<LogArchive> recovered;
    if (want_recovery) {
      spec.seed = rng.NextU64() | 1;
      const std::string doomed =
          LogGenerator(spec).GenerateLines(options.lines_per_block);
      const CommitKillPoint kill_at = static_cast<CommitKillPoint>(
          rng.NextBelow(3));  // rotates across the three protocol steps
      BlockInfo info =
          BuildBlockSummary(doomed, options.archive.bloom_bits_per_shingle);
      const std::string box =
          LogGrepEngine(options.archive.engine).CompressBlock(doomed);
      const Status aborted = archive->CommitCompressedBlock(
          box, std::move(info),
          [kill_at](CommitKillPoint p) { return p == kill_at; });
      if (aborted.ok()) {
        report.fatal = Internal("oracle: injected commit abort did not fire");
        return report;
      }
      Result<LogArchive> reopened = LogArchive::Open(fx.dir, options.archive);
      if (!reopened.ok()) {
        report.fatal = reopened.status();
        return report;
      }
      if (reopened->blocks().size() != options.blocks_per_archive) {
        report.fatal = Internal(
            "oracle: recovery kept " +
            std::to_string(reopened->blocks().size()) + " blocks, expected " +
            std::to_string(options.blocks_per_archive));
        return report;
      }
      recovered.emplace(std::move(*reopened));
    }

    // --- Command list: the dataset's own suite plus seeded random ones. ---
    for (std::string& q : QuerySuiteForDataset(fx.name)) {
      fx.commands.push_back(std::move(q));
    }
    for (size_t i = 0; i < options.random_queries; ++i) {
      fx.commands.push_back(RandomCommand(rng, fx.lines));
    }

    // Session fixture: per-block CapsuleBoxes recompressed deterministically
    // with the same engine options (QuerySession operates on one box).
    LogGrepEngine session_engine(options.archive.engine);
    std::vector<std::string> session_boxes;
    std::vector<uint64_t> block_first_line;
    if (wants_mode(OracleMode::kSession)) {
      uint64_t first = 0;
      for (const std::string& text : fx.block_texts) {
        session_boxes.push_back(session_engine.CompressBlock(text));
        block_first_line.push_back(first);
        first += SplitLines(text).size();
      }
    }

    ++report.datasets_run;

    const auto note = [&](OracleMode mode, const std::string& command,
                          const std::string& detail) {
      report.mismatches.push_back(
          {fx.name, command, OracleModeName(mode), detail});
    };

    for (const std::string& command : fx.commands) {
      Result<std::unique_ptr<QueryExpr>> expr = ParseQuery(command);
      if (!expr.ok()) {
        report.fatal = Status(expr.status().code(),
                              "oracle: generated command \"" + command +
                                  "\" failed to parse: " +
                                  expr.status().ToString());
        return report;
      }
      const QueryHits expected = ReferenceHits(fx.lines, **expr);
      ++report.commands_run;

      for (OracleMode mode : options.modes) {
        Result<ArchiveQueryResult> got = [&]() -> Result<ArchiveQueryResult> {
          switch (mode) {
            case OracleMode::kColdEngine: {
              Result<LogArchive> cold =
                  LogArchive::Open(fx.dir, options.archive);
              if (!cold.ok()) {
                return cold.status();
              }
              return cold->Query(command);
            }
            case OracleMode::kWarmCache: {
              // First pass warms the shared BoxCache + command cache; the
              // compared result is the warm one.
              Result<ArchiveQueryResult> warmup = archive->Query(command);
              if (!warmup.ok()) {
                return warmup.status();
              }
              return archive->Query(command);
            }
            case OracleMode::kParallel:
              return archive->ParallelQuery(command,
                                            options.parallel_threads);
            case OracleMode::kPostRecovery:
              return recovered->Query(command);
            case OracleMode::kSession: {
              ArchiveQueryResult merged;
              for (size_t b = 0; b < session_boxes.size(); ++b) {
                QuerySession session(&session_engine, session_boxes[b]);
                const std::string prefix = RefinementPrefix(command);
                if (!prefix.empty()) {
                  // Prime the refinement fast path with the base command.
                  Result<SessionQueryResult> base = session.Query(prefix);
                  if (!base.ok()) {
                    return base.status();
                  }
                }
                Result<SessionQueryResult> r = session.Query(command);
                if (!r.ok()) {
                  return r.status();
                }
                for (auto& [line, text] : r->hits) {
                  merged.hits.emplace_back(block_first_line[b] + line,
                                           std::move(text));
                }
              }
              return merged;
            }
          }
          return Internal("oracle: unknown mode");
        }();
        ++report.checks_run;
        if (!got.ok()) {
          note(mode, command, "query failed: " + got.status().ToString());
          continue;
        }
        if (auto diff = DiffHits(expected, std::move(got->hits))) {
          note(mode, command, *diff);
        }
      }

      if (options.check_explain) {
        ++report.checks_run;
        QueryExplain explain;
        Result<ArchiveQueryResult> got = archive->Explain(command, &explain);
        if (!got.ok()) {
          report.mismatches.push_back(
              {fx.name, command, "explain",
               "explain failed: " + got.status().ToString()});
        } else {
          if (auto diff = DiffHits(expected, std::move(got->hits))) {
            report.mismatches.push_back(
                {fx.name, command, "explain", *diff});
          }
          std::string detail;
          if (!explain.CheckInvariant(&detail)) {
            report.mismatches.push_back(
                {fx.name, command, "explain",
                 "accounting invariant violated: " + detail});
          }
        }
      }
    }

    std::filesystem::remove_all(fx.dir, ec);
  }
  return report;
}

}  // namespace loggrep
