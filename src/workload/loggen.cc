#include "src/workload/loggen.h"

#include <cassert>

namespace loggrep {
namespace {

constexpr char kHexDigits[] = "0123456789ABCDEF";
constexpr char kHexLower[] = "0123456789abcdef";

// Mutable generation state shared across lines of one block.
struct GenState {
  Rng rng;
  uint64_t clock_ms;   // advances monotonically
  uint64_t seq;        // kSeq counter
  uint64_t block_salt; // fixes kHexId shared prefixes per block
};

void AppendFixedDecimal(std::string& out, uint64_t v, int width) {
  char buf[24];
  int n = 0;
  do {
    buf[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v > 0);
  for (int i = n; i < width; ++i) {
    out.push_back('0');
  }
  while (n > 0) {
    out.push_back(buf[--n]);
  }
}

int DigitsOf(int64_t v) {
  int d = 1;
  while (v >= 10) {
    v /= 10;
    ++d;
  }
  return d;
}

void AppendValue(std::string& out, const VarSpec& spec, GenState& st) {
  out += spec.prefix;
  switch (spec.kind) {
    case VarKind::kHexId: {
      for (int i = 0; i < spec.len; ++i) {
        uint64_t digit;
        if (i < spec.shared) {
          digit = (st.block_salt >> (4 * (i % 16))) & 0xF;
        } else {
          digit = st.rng.NextBelow(16);
        }
        out.push_back(kHexDigits[digit]);
      }
      break;
    }
    case VarKind::kDecimal: {
      const int64_t v = st.rng.NextInRange(spec.min, spec.max);
      if (spec.zero_pad) {
        AppendFixedDecimal(out, static_cast<uint64_t>(v), DigitsOf(spec.max));
      } else {
        out += std::to_string(v);
      }
      break;
    }
    case VarKind::kTimestamp: {
      st.clock_ms += st.rng.NextBelow(1200);
      const uint64_t total_s = st.clock_ms / 1000;
      const uint64_t hh = (5 + total_s / 3600) % 24;  // block starts at 05:00
      const uint64_t mm = (total_s / 60) % 60;
      const uint64_t ss = total_s % 60;
      out += "2026-07-06 ";
      AppendFixedDecimal(out, hh, 2);
      out.push_back(':');
      AppendFixedDecimal(out, mm, 2);
      out.push_back(':');
      AppendFixedDecimal(out, ss, 2);
      out.push_back('.');
      AppendFixedDecimal(out, st.clock_ms % 1000, 3);
      break;
    }
    case VarKind::kIpAddr: {
      out += "11.187.";
      out += std::to_string(st.rng.NextBelow(32));
      out.push_back('.');
      out += std::to_string(st.rng.NextBelow(256));
      break;
    }
    case VarKind::kPath: {
      if (!spec.values.empty()) {
        out += spec.values[st.rng.NextBelow(spec.values.size())];
      }
      out += std::to_string(st.rng.NextInRange(spec.min, spec.max));
      break;
    }
    case VarKind::kEnum: {
      assert(!spec.values.empty());
      size_t pick = 0;
      if (!spec.weights.empty()) {
        double total = 0;
        for (double w : spec.weights) {
          total += w;
        }
        double r = st.rng.NextDouble() * total;
        for (size_t i = 0; i < spec.weights.size(); ++i) {
          r -= spec.weights[i];
          if (r <= 0) {
            pick = i;
            break;
          }
        }
      } else {
        pick = st.rng.NextBelow(spec.values.size());
      }
      out += spec.values[pick];
      break;
    }
    case VarKind::kUuid: {
      static constexpr int kGroups[] = {8, 4, 4, 4, 12};
      for (int g = 0; g < 5; ++g) {
        if (g > 0) {
          out.push_back('-');
        }
        for (int i = 0; i < kGroups[g]; ++i) {
          out.push_back(kHexLower[st.rng.NextBelow(16)]);
        }
      }
      break;
    }
    case VarKind::kSeq: {
      out += std::to_string(static_cast<int64_t>(st.seq++) + spec.min);
      break;
    }
  }
  out += spec.suffix;
}

void AppendLine(std::string& out, const DatasetSpec& spec, GenState& st) {
  // Weighted template pick.
  double total = 0;
  for (const TemplateSpec& t : spec.templates) {
    total += t.weight;
  }
  double r = st.rng.NextDouble() * total;
  const TemplateSpec* tmpl = &spec.templates.back();
  for (const TemplateSpec& t : spec.templates) {
    r -= t.weight;
    if (r <= 0) {
      tmpl = &t;
      break;
    }
  }
  size_t var = 0;
  const std::string& fmt = tmpl->format;
  for (size_t i = 0; i < fmt.size(); ++i) {
    if (i + 1 < fmt.size() && fmt[i] == '{' && fmt[i + 1] == '}') {
      assert(var < tmpl->vars.size());
      AppendValue(out, tmpl->vars[var++], st);
      ++i;
    } else {
      out.push_back(fmt[i]);
    }
  }
  assert(var == tmpl->vars.size());
  out.push_back('\n');
}

GenState MakeState(const DatasetSpec& spec) {
  Rng seeder(spec.seed * 0x9E3779B97F4A7C15ULL + 0x5EED);
  GenState st{Rng(seeder.NextU64()), seeder.NextBelow(3'600'000),
              seeder.NextBelow(1'000'000), seeder.NextU64()};
  return st;
}

}  // namespace

std::string LogGenerator::Generate(size_t target_bytes) const {
  GenState st = MakeState(spec_);
  std::string out;
  out.reserve(target_bytes + 256);
  while (out.size() < target_bytes) {
    AppendLine(out, spec_, st);
  }
  return out;
}

std::string LogGenerator::GenerateLines(size_t lines) const {
  GenState st = MakeState(spec_);
  std::string out;
  for (size_t i = 0; i < lines; ++i) {
    AppendLine(out, spec_, st);
  }
  return out;
}

}  // namespace loggrep
