#include "src/workload/datasets.h"

namespace loggrep {
namespace {

// ---- VarSpec builders ------------------------------------------------------

VarSpec Ts() {
  VarSpec v;
  v.kind = VarKind::kTimestamp;
  return v;
}

VarSpec Hex(int len, std::string prefix = "", int shared = 0) {
  VarSpec v;
  v.kind = VarKind::kHexId;
  v.len = len;
  v.prefix = std::move(prefix);
  v.shared = shared;
  return v;
}

VarSpec Dec(int64_t min, int64_t max, bool zero_pad = false) {
  VarSpec v;
  v.kind = VarKind::kDecimal;
  v.min = min;
  v.max = max;
  v.zero_pad = zero_pad;
  return v;
}

VarSpec Ip() {
  VarSpec v;
  v.kind = VarKind::kIpAddr;
  return v;
}

VarSpec Path(std::string root, std::vector<std::string> words,
             std::string ext) {
  VarSpec v;
  v.kind = VarKind::kPath;
  v.prefix = std::move(root);
  v.values = std::move(words);
  v.min = 0;
  v.max = 9999;
  v.suffix = std::move(ext);
  return v;
}

VarSpec En(std::vector<std::string> values, std::vector<double> weights = {}) {
  VarSpec v;
  v.kind = VarKind::kEnum;
  v.values = std::move(values);
  v.weights = std::move(weights);
  return v;
}

VarSpec Uuid() {
  VarSpec v;
  v.kind = VarKind::kUuid;
  return v;
}

VarSpec Seq(int64_t base = 100000) {
  VarSpec v;
  v.kind = VarKind::kSeq;
  v.min = base;
  return v;
}

TemplateSpec T(std::string format, std::vector<VarSpec> vars, double weight = 1.0) {
  TemplateSpec t;
  t.format = std::move(format);
  t.vars = std::move(vars);
  t.weight = weight;
  return t;
}

VarSpec Level() {
  return En({"INFO", "WARN", "ERROR"}, {0.90, 0.07, 0.03});
}

// ---- Production datasets (Log A .. Log U) ---------------------------------
//
// Modeled on the workload sketches in the paper: storage/RPC/trace services
// with request ids, chunk ids, IPs, project/logstore identifiers, state
// enums, and rare error templates that the Table 1 queries target.
//
// Production logs carry many templates (the paper's services emit hundreds);
// AddServiceChatter mixes in generic INFO/DEBUG traffic so no single group
// dominates a block the way a two-template toy log would.

void AddServiceChatter(DatasetSpec& spec) {
  spec.templates.push_back(
      T("{} DEBUG rpc call {} to {} took {}us",
        {Ts(), En({"Append", "Open", "Seal", "Stat", "List"}), Ip(),
         Dec(20, 90000)},
        0.25));
  spec.templates.push_back(
      T("{} INFO conn accepted from {}:{} session {}",
        {Ts(), Ip(), Dec(10000, 65000), Hex(12)}, 0.2));
  spec.templates.push_back(
      T("{} INFO conn closed session {} bytes_in {} bytes_out {}",
        {Ts(), Hex(12), Dec(0, 1 << 24), Dec(0, 1 << 24)}, 0.2));
  spec.templates.push_back(
      T("{} DEBUG threadpool {} queue {} active {} completed {}",
        {Ts(), En({"io", "rpc", "flush", "bg"}), Dec(0, 512), Dec(0, 64),
         Seq(1000000)},
        0.2));
  spec.templates.push_back(
      T("{} INFO checkpoint {} flushed {} entries in {}ms",
        {Ts(), Seq(88000), Dec(1, 100000), Dec(1, 30000)}, 0.15));
  spec.templates.push_back(
      T("{} DEBUG cache stats hit {} miss {} evict {}",
        {Ts(), Dec(0, 1 << 20), Dec(0, 1 << 16), Dec(0, 1 << 12)}, 0.15));
  spec.templates.push_back(
      T("{} INFO lease renewed holder {} epoch {} ttl {}s",
        {Ts(), Uuid(), Dec(1, 500), Dec(5, 120)}, 0.1));
  spec.templates.push_back(
      T("{} DEBUG gossip peer {} version {} lag {}ms",
        {Ts(), Ip(), Dec(100000, 999999), Dec(0, 2000)}, 0.1));
  // Heterogeneous-form fields: a retry-reason token whose values follow
  // several distinct runtime patterns (the paper's multi-pattern nominal
  // vectors, Fig. 3), and a variable-length path (length variance, §2.2).
  spec.templates.push_back(
      T("{} WARN op retried reason {} attempt {}",
        {Ts(),
         En({"-", "EAGAIN", "err=110", "0x7FFF", "conn_reset",
             "disk/slow", "err=5", "0x00A1", "lease_lost", "EBUSY"}),
         Dec(1, 5)},
        0.15));
  spec.templates.push_back(
      T("{} INFO flushed segment {} bytes {}",
        {Ts(),
         Path("/data/vol0/",
              {"seg", "segment_long_name", "s", "idx", "manifest_part"},
              ".dat"),
         Dec(100, 99999999)},
        0.15));
  // A fat nominal field (long values, tiny cardinality): client identity
  // strings. Dictionary + index encoding pays off most on vectors like this
  // (§4.2); the "w/o nomi" ablation must scan the full column instead.
  spec.templates.push_back(
      T("{} INFO api request client {} status {}",
        {Ts(),
         En({"sdk-java/2.14.1-linux-openjdk-11.0.2-x86_64-prod-cell-a",
             "sdk-java/2.14.1-linux-openjdk-11.0.2-x86_64-prod-cell-b",
             "sdk-go/1.44.9-linux-go1.17.8-amd64-batch-import-pipeline",
             "sdk-python/3.8.2-cpython-3.9.7-manylinux2014-analytics",
             "console-web/react-18.2.0-chrome-102.0.5005.63-dashboard",
             "cli/0.9.31-darwin-arm64-interactive-operator-session"}),
         En({"200", "200", "200", "206", "403", "500"})},
        0.35));
}

std::vector<DatasetSpec> BuildProduction() {
  std::vector<DatasetSpec> out;

  out.push_back(DatasetSpec{
      "Log A", true,
      {
          T("[{}] INFO req accepted state:{} code:{} reqId:{}",
            {Ts(), En({"REQ_ST_OPEN", "REQ_ST_READY"}), Dec(20000, 20020),
             Hex(16, "5E9D", 0)},
            0.93),
          T("[{}] ERROR req aborted state:{} code:{} reqId:{}",
            {Ts(), En({"REQ_ST_CLOSED", "REQ_ST_TIMEOUT"}), Dec(20000, 20020),
             Hex(16, "5E9D", 0)},
            0.05),
          T("[{}] INFO heartbeat from {} seq:{}", {Ts(), Ip(), Seq()}, 0.02),
      },
      11});

  out.push_back(DatasetSpec{
      "Log B", true,
      {
          T("[{}] INFO Project:{} RequestId:{} latency:{}us",
            {Ts(), Dec(1000, 4000), Hex(15, "5EA6", 0), Dec(10, 90000)}, 0.95),
          T("[{}] ERROR Project:{} RequestId:{} quota exceeded",
            {Ts(), Dec(1000, 4000), Hex(15, "5EA6", 0)}, 0.04),
          T("[{}] WARN slow scan Project:{} rows:{}",
            {Ts(), Dec(1000, 4000), Dec(100000, 9000000)}, 0.01),
      },
      12});

  out.push_back(DatasetSpec{
      "Log C", true,
      {
          T("{} {} worker {} finished job {} in {}ms",
            {Ts(), Level(), Dec(0, 63), Uuid(), Dec(1, 60000)}, 0.97),
          T("{} ERROR worker {} job {} failed: disk quota",
            {Ts(), Dec(0, 63), Uuid()}, 0.03),
      },
      13});

  out.push_back(DatasetSpec{
      "Log D", true,
      {
          T("{} meter project_id:{} logstore:{} inflow:{} outflow:{}",
            {Ts(), Dec(30000, 31000), En({"res_p", "res_q", "acc_m", "acc_n"}),
             Dec(0, 80), Dec(0, 80)},
            1.0),
      },
      14});

  out.push_back(DatasetSpec{
      "Log E", true,
      {
          T("{} shard report project:{} logstore:{} shard:{} wcount:{} rcount:{}",
            {Ts(), Dec(100, 200), En({"app_ay87a", "app_ay87b", "sys_ay90c"}),
             Dec(0, 127), Dec(0, 40), Dec(0, 40)},
            1.0),
      },
      15});

  out.push_back(DatasetSpec{
      "Log F", true,
      {
          T("{} {} txn UserId:{} op:{} took {}us",
            {Ts(), Level(), Dec(-2, 99999), En({"PUT", "GET", "DEL", "SCAN"}),
             Dec(5, 20000)},
            1.0),
      },
      16});

  out.push_back(DatasetSpec{
      "Log G", true,
      {
          T("[{}] INFO Operation:{} SATADiskId:{} From:tcp://{}:{} TraceId:{}",
            {Ts(), En({"ReadChunk", "WriteChunk", "SealChunk"}), Dec(0, 11),
             Ip(), Dec(10000, 65000), Hex(32, "", 4)},
            1.0),
      },
      17});

  out.push_back(DatasetSpec{
      "Log H", true,
      {
          T("{} {} gc pause {}ms heap {}MB", {Ts(), Level(), Dec(1, 900), Dec(512, 8192)},
            0.9),
          T("{} ERROR allocation stall tenant {}", {Ts(), Hex(8)}, 0.1),
      },
      18});

  out.push_back(DatasetSpec{
      "Log I", true,
      {
          T("{} WARNING replica lag {}s volume vol-{}",
            {Ts(), Dec(1, 600), Hex(10, "", 2)}, 0.25),
          T("{} INFO replica sync volume vol-{} bytes {}",
            {Ts(), Hex(10, "", 2), Dec(0, 1 << 30)}, 0.75),
      },
      19});

  out.push_back(DatasetSpec{
      "Log J", true,
      {
          T("{} TraceType:{} SectionType:{} CountAll:{} CountFail:{}",
            {Ts(), En({"PanguTraceSummary", "PanguTraceDetail"}),
             En({"RPC_SealAndNew", "RPC_Append", "RPC_Open"}), Dec(1, 5000),
             En({"0", "0", "0", "1", "2", "7"})},
            1.0),
      },
      20});

  out.push_back(DatasetSpec{
      "Log K", true,
      {
          T("{} {} {} /results/{} status {}",
            {Ts(), En({"GET", "PUT", "DELETE"}, {0.7, 0.2, 0.1}), Ip(),
             Dec(0, 30), En({"200", "200", "200", "204", "404", "500"})},
            1.0),
      },
      21});

  out.push_back(DatasetSpec{
      "Log L", true,
      {
          T("{} WARNING drop pkt Errorcode:{} Packet id:{}",
            {Ts(), En({"0", "1", "3"}), Seq(172000000)}, 0.2),
          T("{} INFO fwd pkt Packet id:{} nexthop {}",
            {Ts(), Seq(172000000), Ip()}, 0.8),
      },
      22});

  out.push_back(DatasetSpec{
      "Log M", true,
      {
          T("{} {} exchange-client-{} fetch /results/{} bytes {}",
            {Ts(), Level(), Dec(0, 31), Dec(0, 30), Dec(128, 1 << 22)},
            1.0),
      },
      23});

  out.push_back(DatasetSpec{
      "Log N", true,
      {
          T("{} {} billing project_id:{} cpu {}ms mem {}MB",
            {Ts(), Level(), Dec(51000, 52000), Dec(1, 10000), Dec(16, 4096)},
            1.0),
      },
      24});

  out.push_back(DatasetSpec{
      "Log O", true,
      {
          T("{} error ingest ProjectId:{} shard {} backlog {}",
            {Ts(), Dec(2000, 2500), Dec(0, 255), Dec(0, 100000)}, 0.06),
          T("{} info ingest ProjectId:{} shard {} ok",
            {Ts(), Dec(2000, 2500), Dec(0, 255)}, 0.94),
      },
      25});

  out.push_back(DatasetSpec{
      "Log P", true,
      {
          T("{} ERROR ui action {} failed", {Ts(), En({"CLICK_SAVE_ERROR", "CLICK_LOAD_ERROR"})},
            0.02),
          T("{} INFO ui action {} user {}",
            {Ts(), En({"CLICK_SAVE", "CLICK_LOAD", "CLICK_OPEN"}), Hex(12)},
            0.98),
      },
      26});

  out.push_back(DatasetSpec{
      "Log Q", true,
      {
          T("{} {} PostLogStoreLogsHandler.cpp:{} Time:{} count:{}",
            {Ts(), Level(), Dec(100, 900), Seq(1622000000), Dec(1, 4096)},
            1.0),
      },
      27});

  out.push_back(DatasetSpec{
      "Log R", true,
      {
          T("{} ERROR part_id:{} request id REQ_{} failed retries {}",
            {Ts(), Dec(500, 520), Ip(), Dec(0, 5)}, 0.04),
          T("{} INFO part_id:{} request id REQ_{} ok",
            {Ts(), Dec(500, 520), Ip()}, 0.96),
      },
      28});

  out.push_back(DatasetSpec{
      "Log S", true,
      {
          T("Aug 30 {} host{} sudo: user{} : TTY=unknown ; PWD=/ ; COMMAND={}",
            {En({"10:01:22", "10:03:17", "10:14:55", "11:22:01"}), Dec(1, 40),
             Dec(100, 160),
             En({"/etc/init.d/ilogtaild", "/usr/bin/uptime", "/bin/ls"})},
            1.0),
      },
      29});

  out.push_back(DatasetSpec{
      "Log T", true,
      {
          T("{} {} scan table {} rows {} cost {}us",
            {Ts(), Level(), Hex(8, "tbl_"), Dec(0, 1 << 20), Dec(10, 1 << 20)},
            0.98),
          T("{} ERROR scan {} aborted snapshot {}",
            {Ts(), Hex(8, "tbl_"), Dec(39000, 39999)}, 0.02),
      },
      30});

  out.push_back(DatasetSpec{
      "Log U", true,
      {
          T("{} {} compact level {} file {}_{}_{}_{}",
            {Ts(), Level(), Dec(0, 6), Seq(1618152650857662364), Dec(1, 9),
             Dec(149000000, 149999999), Dec(199000000, 199999999)},
            0.9),
          T("{} ERROR failed to read trie data file {}_{}",
            {Ts(), Seq(1618152650857662364), Dec(1, 9)}, 0.1),
      },
      31});

  for (DatasetSpec& spec : out) {
    AddServiceChatter(spec);
  }
  return out;
}

// ---- Public datasets (LogHub-style) ----------------------------------------

std::vector<DatasetSpec> BuildPublic() {
  std::vector<DatasetSpec> out;

  out.push_back(DatasetSpec{
      "Android", false,
      {
          T("{} {} {} D SensorManager: sensor {} rate {}",
            {Ts(), Dec(1000, 9999), Dec(1000, 9999), En({"accel", "gyro", "light"}),
             Dec(5, 200)},
            0.9),
          T("{} {} {} ERROR Socket: socket read length failure {}",
            {Ts(), Dec(1000, 9999), Dec(1000, 9999), Dec(-110, -100)}, 0.02),
      },
      41});

  out.push_back(DatasetSpec{
      "Apache", false,
      {
          T("[{}] [notice] workerEnv.init() ok /etc/httpd/conf/workers{}.properties",
            {Ts(), Dec(1, 9)}, 0.85),
          T("[{}] [error] mod_jk child workerEnv in error state {}",
            {Ts(), Dec(1, 9)}, 0.03),
          T("[{}] [error] Invalid URI in request GET {} HTTP/1.1",
            {Ts(), Path("/cgi-bin/", {"badapp", "probe", "scan"}, ".cgi")}, 0.01),
      },
      42});

  out.push_back(DatasetSpec{
      "Bgl", false,
      {
          T("- {} R{}-M{}-N{} RAS KERNEL INFO generating core.{}",
            {Seq(1117838570), Dec(0, 77, true), Dec(0, 1), Dec(0, 15), Dec(0, 4096)},
            0.9),
          T("- {} R{}-M{}-ND RAS KERNEL ERROR data TLB error interrupt",
            {Seq(1117838570), Dec(0, 77, true), Dec(0, 1)}, 0.02),
      },
      43});

  out.push_back(DatasetSpec{
      "Hadoop", false,
      {
          T("{} INFO [main] org.apache.hadoop.mapred.MapTask: Processing split {}",
            {Ts(), Dec(0, 4000)}, 0.9),
          T("{} ERROR [main] org.apache.hadoop.yarn.YarnUncaughtExceptionHandler: RECEIVED SIGNAL 15: SIGTERM",
            {Ts()}, 0.01),
      },
      44});

  out.push_back(DatasetSpec{
      "Hdfs", false,
      {
          T("{} INFO dfs.DataNode$PacketResponder: Received block blk_{} of size {} from /{}",
            {Ts(), Dec(8840000000000000000 / 1000000, 8849999999999, false),
             Dec(1024, 67108864), Ip()},
            0.92),
          T("{} error dfs.DataNode: writeBlock blk_{} received exception java.io.IOException",
            {Ts(), Dec(8840000000, 8849999999)}, 0.02),
      },
      45});

  out.push_back(DatasetSpec{
      "Healthapp", false,
      {
          T("{}|Step_ExtSDM|onExtend:{} {} {} totalAltitude={}",
            {Ts(), Dec(1000000, 2000000), Dec(0, 100), Dec(0, 100), Dec(0, 120)},
            0.25),
          T("{}|Step_LSC|onStandStepChanged {}",
            {Ts(), Dec(1000, 90000)}, 0.35),
          T("{}|Step_SPUtils|setTodayTotalDetailSteps={}",
            {Ts(), Dec(1000, 90000)}, 0.25),
          T("{}|Step_StandReportReceiver|onReceive:{}",
            {Ts(), Dec(1000000, 2000000)}, 0.15),
      },
      46});

  out.push_back(DatasetSpec{
      "Hpc", false,
      {
          T("{} node-{} unix.hw state_change.unavailable state HWID={}",
            {Seq(433490), Dec(0, 1023), Dec(3000, 3999)}, 0.3),
          T("{} node-{} unix.hw state_change.available state HWID={}",
            {Seq(433490), Dec(0, 1023), Dec(3000, 3999)}, 0.7),
      },
      47});

  out.push_back(DatasetSpec{
      "Linux", false,
      {
          T("{} combo sshd(pam_unix)[{}]: authentication failure; logname= uid=0 euid=0 tty=NODEVssh ruser= rhost={}",
            {Ts(), Dec(10000, 32000), En({"221.230.128.214", "218.188.2.4", "82.53.10.5"})},
            0.4),
          T("{} combo su(pam_unix)[{}]: session opened for user cyrus by (uid={})",
            {Ts(), Dec(10000, 32000), Dec(0, 0)}, 0.6),
      },
      48});

  out.push_back(DatasetSpec{
      "Mac", false,
      {
          T("{} authorMacBook-Pro kernel[0]: AirPort: Link Down on awdl0. Reason 1 (Unspecified).",
            {Ts()}, 0.5),
          T("{} authorMacBook-Pro corecaptured[{}]: CCFile::captureLogRun capture failed Skipping current file Err:{} Errno:{} No such file",
            {Ts(), Dec(30000, 50000), Dec(-2, -1), Dec(1, 2)}, 0.5),
      },
      49});

  out.push_back(DatasetSpec{
      "Openstack", false,
      {
          T("nova-compute.log {} {} INFO nova.compute.manager [instance: {}] VM Started",
            {Ts(), Dec(2000, 4000), Uuid()}, 0.7),
          T("nova-compute.log {} {} ERROR nova.compute.manager Unexpected error while running command: {}",
            {Ts(), Dec(2000, 4000), En({"qemu-img", "iptables-save", "mount"})},
            0.03),
      },
      50});

  out.push_back(DatasetSpec{
      "Proxifier", false,
      {
          T("[{}] chrome.exe - {}:443 open through proxy proxy.example.org:{} HTTPS",
            {Ts(),
             En({"play.google.com", "mail.example.com", "www.wikipedia.org",
                 "cdn.jsdelivr.net", "api.github.com", "static.example.org",
                 "img.example-cdn.net", "news.site.example"},
                {0.04, 0.16, 0.16, 0.16, 0.16, 0.12, 0.1, 0.1}),
             Dec(1080, 1090)},
            0.35),
          T("[{}] chrome.exe - {}.example.net:80 close, {} bytes sent, {} bytes received",
            {Ts(), En({"cdn1", "cdn2", "api"}), Dec(100, 100000), Dec(100, 4000000)},
            0.45),
          T("[{}] telegram.exe - {}:80 open directly",
            {Ts(), En({"dc1.telegram.org", "dc2.telegram.org"})}, 0.2),
      },
      51});

  out.push_back(DatasetSpec{
      "Spark", false,
      {
          T("{} INFO storage.BlockManager: Found block rdd_{}_{} locally",
            {Ts(), Dec(0, 99), Dec(0, 9999)}, 0.9),
          T("{} ERROR executor.Executor: Error sending result to driver StatusUpdate(taskId={})",
            {Ts(), Dec(0, 99999)}, 0.01),
      },
      52});

  out.push_back(DatasetSpec{
      "Ssh", false,
      {
          T("{} LabSZ sshd[{}]: Failed password for root from {} port {} ssh2",
            {Ts(), Dec(20000, 30000),
             En({"202.100.179.208", "183.62.140.253", "5.36.59.76",
                 "112.95.230.3", "187.141.143.180", "119.137.62.142"}),
             Dec(30000, 60000)},
            0.55),
          T("{} LabSZ sshd[{}]: Received disconnect from {}: 11: Bye Bye [preauth]",
            {Ts(), Dec(20000, 30000),
             En({"202.100.179.208", "103.99.0.122", "139.59.209.18",
                 "212.47.254.145"},
                {0.05, 0.35, 0.3, 0.3})},
            0.25),
          T("{} LabSZ sshd[{}]: pam_unix(sshd:auth): check pass; user unknown",
            {Ts(), Dec(20000, 30000)}, 0.2),
      },
      53});

  out.push_back(DatasetSpec{
      "Thunderbird", false,
      {
          T("- {} {} aadmin1/aadmin1 kernel: ACPI: LAPIC (acpi_id[0x{}] lapic_id[0x{}] enabled)",
            {Seq(1131566461), Ts(), Hex(2), Hex(2)}, 0.9),
          T("- {} {} anvil kernel: Doorbell ACK timeout for qp {}",
            {Seq(1131566461), Ts(), Hex(6)}, 0.01),
      },
      54});

  out.push_back(DatasetSpec{
      "Windows", false,
      {
          T("{}, Info                  CBS    Loaded Servicing Stack v{} with Core: winsxs\\amd64_microsoft-windows-servicingstack_{}",
            {Ts(), En({"6.1.7601.17592", "6.1.7601.23505"}), Hex(16)}, 0.9),
          T("{}, Error                 CSI    Failed to process single phase execution request. Flags: {}",
            {Ts(), Dec(0, 16)}, 0.01),
      },
      55});

  out.push_back(DatasetSpec{
      "Zookeeper", false,
      {
          T("{} - INFO  [NIOServerCxn.Factory:0.0.0.0/0.0.0.0:2181] - Accepted socket connection from /{}:{}",
            {Ts(), Ip(), Dec(30000, 60000)}, 0.9),
          T("{} - ERROR [CommitProcessor:{}] - Unexpected exception causing shutdown",
            {Ts(), Dec(0, 4)}, 0.01),
      },
      56});

  return out;
}

std::vector<DatasetSpec> BuildAll() {
  std::vector<DatasetSpec> all = BuildProduction();
  std::vector<DatasetSpec> pub = BuildPublic();
  all.insert(all.end(), std::make_move_iterator(pub.begin()),
             std::make_move_iterator(pub.end()));
  return all;
}

}  // namespace

const std::vector<DatasetSpec>& AllDatasets() {
  static const std::vector<DatasetSpec>* kAll =
      new std::vector<DatasetSpec>(BuildAll());
  return *kAll;
}

std::vector<const DatasetSpec*> ProductionDatasets() {
  std::vector<const DatasetSpec*> out;
  for (const DatasetSpec& d : AllDatasets()) {
    if (d.production) {
      out.push_back(&d);
    }
  }
  return out;
}

std::vector<const DatasetSpec*> PublicDatasets() {
  std::vector<const DatasetSpec*> out;
  for (const DatasetSpec& d : AllDatasets()) {
    if (!d.production) {
      out.push_back(&d);
    }
  }
  return out;
}

const DatasetSpec* FindDataset(std::string_view name) {
  for (const DatasetSpec& d : AllDatasets()) {
    if (d.name == name) {
      return &d;
    }
  }
  return nullptr;
}

}  // namespace loggrep
