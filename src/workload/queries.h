// Per-dataset query commands: the Table 1 workload adapted to the synthetic
// datasets (same shape: a severity keyword plus highly selective key:value
// conditions, joined with AND / OR / NOT).
#ifndef SRC_WORKLOAD_QUERIES_H_
#define SRC_WORKLOAD_QUERIES_H_

#include <string>
#include <string_view>
#include <vector>

namespace loggrep {

// The dataset's Table 1-style query command; empty when the name is unknown.
std::string QueryForDataset(std::string_view dataset_name);

// A small per-dataset suite (the Table 1 query first, then broader and
// narrower variants) used for averaging in the benches.
std::vector<std::string> QuerySuiteForDataset(std::string_view dataset_name);

}  // namespace loggrep

#endif  // SRC_WORKLOAD_QUERIES_H_
