// Differential oracle: LogGrep's end-to-end correctness contract, checked
// mechanically against a naive reference.
//
// The paper's whole value proposition (§5) is that pruning via static
// patterns, runtime patterns and Capsule stamps returns *exactly* the lines
// a plain grep over the raw log would. The oracle makes that claim testable
// under randomized workloads: for a seeded random choice of datasets, block
// contents and query commands, every query is evaluated two ways —
//   * reference: keep all raw lines in memory and apply LineMatchesQuery
//     (src/query/line_match.h, the single definition of query semantics)
//     line by line;
//   * system under test: the real archive/engine, in each execution mode
//     (cold open, warm cache, QuerySession refinement, ParallelQuery
//     workers, and a post-crash-recovery reopen) —
// and the hit lists must agree hit for hit (line numbers AND text). The
// explain layer is cross-checked too: Explain() must return the same hits
// and satisfy its pruned + cached + decompressed == visited invariant.
//
// One swappable harness: tests/oracle runs it over pinned seeds, CI runs it
// over fresh seeds nightly under ASan/UBSan, and any future perf PR can use
// it as a regression oracle.
#ifndef SRC_WORKLOAD_DIFF_ORACLE_H_
#define SRC_WORKLOAD_DIFF_ORACLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/store/log_archive.h"

namespace loggrep {

// The five execution modes the oracle drives for every command.
enum class OracleMode {
  kColdEngine,    // freshly opened archive, empty caches
  kWarmCache,     // same archive object, second execution (BoxCache +
                  // QueryCache warm)
  kSession,       // QuerySession per block, exercising incremental
                  // refinement for conjunctive commands
  kParallel,      // LogArchive::ParallelQuery on a worker pool
  kPostRecovery,  // archive reopened after a commit aborted mid-protocol
};

const char* OracleModeName(OracleMode mode);
std::vector<OracleMode> AllOracleModes();

struct OracleOptions {
  uint64_t seed = 1;

  // Workload shape. Defaults keep one seed under a few seconds so CI can
  // afford many seeds under sanitizers.
  size_t num_datasets = 2;        // sampled from the 37-dataset catalog
  size_t blocks_per_archive = 3;  // committed blocks per dataset archive
  size_t lines_per_block = 300;
  size_t random_queries = 8;      // seeded random commands per dataset
                                  // (run on top of the dataset's own suite)
  size_t parallel_threads = 3;

  std::vector<OracleMode> modes = AllOracleModes();
  bool check_explain = true;  // also run Explain() + invariant per command

  // Archive/engine configuration under test (ablation configs plug in here).
  ArchiveOptions archive;

  // Root for scratch archive directories; empty = system temp dir. Always
  // cleaned up afterwards.
  std::string scratch_dir;
};

struct OracleMismatch {
  std::string dataset;
  std::string command;
  std::string mode;    // OracleModeName or "explain"
  std::string detail;  // first divergence, human readable
};

struct OracleReport {
  uint64_t seed = 0;
  size_t datasets_run = 0;
  size_t commands_run = 0;  // distinct (dataset, command) pairs
  size_t checks_run = 0;    // individual mode/explain comparisons
  std::vector<OracleMismatch> mismatches;
  // Infrastructure failure (archive creation, I/O, query parse): aborts the
  // run and is reported separately from semantic mismatches.
  Status fatal = OkStatus();

  bool ok() const { return fatal.ok() && mismatches.empty(); }
  std::string Summary() const;
};

// Runs the oracle for one seed. Deterministic: the same options produce the
// same workload, so any mismatch is replayable from (seed, config).
OracleReport RunDifferentialOracle(const OracleOptions& options);

// ---------------------------------------------------------------------------
// Federation oracle
// ---------------------------------------------------------------------------
//
// The same differential methodology, one architectural layer up: a seeded
// multi-tenant multi-window workload is ingested through an ArchiveSet and
// every (command, predicate) pair is evaluated three ways —
//   * reference: in-memory lines tagged (tenant, event ts, shard), with the
//     shard-granular predicate semantics re-derived from first principles
//     (tenant pruning is exact; time pruning skips sealed shards whose
//     event range misses the predicate, and never skips the active shard);
//   * monolith: one LogArchive holding the same blocks in the same global
//     order (full-scatter commands must agree hit text for hit text, and
//     cold-for-cold on the deterministic count stats);
//   * federation: ArchiveSet::Query / ParallelQuery / Explain across modes,
//     including a corrupt-shard -> degraded 206 -> repair -> exact
//     convergence cycle.
// Zero mismatches over pinned seeds is the federation's correctness gate.

enum class FederationMode {
  kCold,       // fresh ArchiveSet::Open per command, empty caches
  kWarm,       // persistent set, second execution compared
  kParallel,   // ArchiveSet::ParallelQuery scatter on a worker pool
  kPostRepair, // corrupt one shard, expect exact degraded hits, repair,
               // expect exact convergence
};

const char* FederationModeName(FederationMode mode);
std::vector<FederationMode> AllFederationModes();

struct FederationOracleOptions {
  uint64_t seed = 1;

  // Workload shape: num_tenants x num_windows shards, each holding
  // blocks_per_window appended blocks. Tenant names include
  // directory-unsafe bytes on purpose (sanitization is under test).
  size_t num_tenants = 3;
  size_t num_windows = 3;
  size_t blocks_per_window = 2;
  size_t lines_per_block = 120;
  size_t random_queries = 6;
  size_t parallel_threads = 4;

  // Per-command probability of attaching a tenant / time-range predicate
  // (independently; both can apply).
  double tenant_predicate_p = 0.4;
  double time_predicate_p = 0.5;

  std::vector<FederationMode> modes = AllFederationModes();
  bool check_explain = true;   // set-level Explain + invariant per command
  bool check_monolith = true;  // also diff vs the monolithic archive

  ArchiveOptions archive;
  std::string scratch_dir;
};

// Runs the federation oracle for one seed; reuses OracleReport (mode names
// are prefixed "fed-").
OracleReport RunFederationOracle(const FederationOracleOptions& options);

}  // namespace loggrep

#endif  // SRC_WORKLOAD_DIFF_ORACLE_H_
