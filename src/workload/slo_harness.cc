#include "src/workload/slo_harness.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <utility>

#include "src/common/json.h"
#include "src/common/rng.h"
#include "src/server/client.h"
#include "src/server/daemon.h"
#include "src/store/log_archive.h"
#include "src/store/storage_env.h"
#include "src/workload/datasets.h"
#include "src/workload/loggen.h"
#include "src/workload/queries.h"

namespace loggrep {

namespace {

void AppendUint(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

void AppendDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  out->append(buf);
}

// One query the tenants can draw: where to aim, what to ask, and the
// serial ground truth computed before the daemon ever saw the archive.
struct CatalogEntry {
  std::string archive;
  std::string command;
  QueryHits oracle;
};

double PercentileMs(std::vector<double>* sorted_in_place, double p) {
  if (sorted_in_place->empty()) {
    return 0;
  }
  std::sort(sorted_in_place->begin(), sorted_in_place->end());
  const size_t idx = std::min(
      sorted_in_place->size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_in_place->size())));
  return (*sorted_in_place)[idx];
}

// A degraded (206) answer must be the oracle minus whole failed blocks —
// i.e. an ordered subset. Anything *not* in the oracle is a wrong answer.
bool IsOrderedSubset(const QueryHits& sub, const QueryHits& full) {
  size_t j = 0;
  for (const auto& hit : sub) {
    while (j < full.size() && full[j] != hit) {
      ++j;
    }
    if (j == full.size()) {
      return false;
    }
    ++j;
  }
  return true;
}

// First value of a bare (label-free) metric line: "name 123.4".
double FindMetricValue(const std::string& body, std::string_view name) {
  size_t pos = 0;
  while (pos < body.size()) {
    size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) {
      eol = body.size();
    }
    const std::string_view line(body.data() + pos, eol - pos);
    if (line.size() > name.size() && line.compare(0, name.size(), name) == 0 &&
        line[name.size()] == ' ') {
      return std::strtod(line.data() + name.size() + 1, nullptr);
    }
    pos = eol + 1;
  }
  return 0;
}

// Builds one archive of `blocks` blocks and computes the serial oracle for
// every command in `commands`, appending the entries to `catalog` starting
// at `first_slot` (the catalog is pre-sized; see RunSloHarness).
Status BuildArchiveAndOracle(const std::string& dir, DatasetSpec spec,
                             uint64_t seed, size_t blocks,
                             size_t lines_per_block,
                             const std::vector<std::string>& commands,
                             const std::string& archive_name,
                             std::vector<CatalogEntry>* catalog,
                             size_t first_slot) {
  {
    Result<LogArchive> archive = LogArchive::Create(dir, {});
    if (!archive.ok()) {
      return archive.status();
    }
    for (size_t b = 0; b < blocks; ++b) {
      spec.seed = seed * 1000003 + b + 1;
      LogGenerator gen(spec);
      if (Status s = archive->AppendBlock(gen.GenerateLines(lines_per_block));
          !s.ok()) {
        return s;
      }
    }
  }
  Result<LogArchive> serial = LogArchive::Open(dir);
  if (!serial.ok()) {
    return serial.status();
  }
  for (size_t c = 0; c < commands.size(); ++c) {
    Result<ArchiveQueryResult> r = serial->Query(commands[c]);
    if (!r.ok()) {
      return r.status();
    }
    CatalogEntry& entry = (*catalog)[first_slot + c];
    entry.archive = archive_name;
    entry.command = commands[c];
    entry.oracle = std::move(r->hits);
  }
  return OkStatus();
}

// Per-tenant tallies, merged after the join.
struct TenantTally {
  uint64_t requests = 0;
  uint64_t ok_200 = 0;
  uint64_t degraded_206 = 0;
  uint64_t shed_429 = 0;
  uint64_t errors = 0;
  uint64_t mismatches = 0;
  uint64_t blocks_queried = 0;
  uint64_t blocks_from_cache = 0;
  std::vector<std::vector<double>> window_lat_ms;
};

}  // namespace

ZipfPicker::ZipfPicker(size_t n, double s) {
  cdf_.reserve(n);
  double total = 0;
  for (size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_.push_back(total);
  }
}

size_t ZipfPicker::Pick(double u, size_t limit) const {
  if (cdf_.empty() || limit == 0) {
    return 0;
  }
  limit = std::min(limit, cdf_.size());
  const double target = u * cdf_[limit - 1];
  const auto it =
      std::lower_bound(cdf_.begin(), cdf_.begin() + limit, target);
  return std::min<size_t>(it - cdf_.begin(), limit - 1);
}

bool SloHarnessReport::GatesPass(std::string* why) const {
  if (mismatches > 0) {
    if (why != nullptr) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "%" PRIu64 " responses disagreed with the oracle",
                    mismatches);
      *why = buf;
    }
    return false;
  }
  if (!(warm_p99_ms < cold_p99_ms)) {
    if (why != nullptr) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "warm p99 %.3f ms not below cold p99 %.3f ms — the warm "
                    "cache pool is not paying off under skew",
                    warm_p99_ms, cold_p99_ms);
      *why = buf;
    }
    return false;
  }
  return true;
}

std::string SloHarnessReport::ToJson() const {
  std::string out;
  out.reserve(1024 + windows.size() * 96);
  out.append("{\"requests\":");
  AppendUint(&out, requests);
  out.append(",\"ok_200\":");
  AppendUint(&out, ok_200);
  out.append(",\"degraded_206\":");
  AppendUint(&out, degraded_206);
  out.append(",\"shed_429\":");
  AppendUint(&out, shed_429);
  out.append(",\"errors\":");
  AppendUint(&out, errors);
  out.append(",\"mismatches\":");
  AppendUint(&out, mismatches);
  out.append(",\"achieved_qps\":");
  AppendDouble(&out, achieved_qps);
  out.append(",\"shed_rate\":");
  AppendDouble(&out, shed_rate);
  out.append(",\"degraded_rate\":");
  AppendDouble(&out, degraded_rate);
  out.append(",\"error_rate\":");
  AppendDouble(&out, error_rate);
  out.append(",\"blocks_queried\":");
  AppendUint(&out, blocks_queried);
  out.append(",\"blocks_from_cache\":");
  AppendUint(&out, blocks_from_cache);
  out.append(",\"cache_hit_rate\":");
  AppendDouble(&out, cache_hit_rate);
  out.append(",\"cold_p99_ms\":");
  AppendDouble(&out, cold_p99_ms);
  out.append(",\"warm_p99_ms\":");
  AppendDouble(&out, warm_p99_ms);
  out.append(",\"slow_queries_captured\":");
  AppendUint(&out, slow_queries_captured);
  out.append(",\"server_window_p99_ms\":");
  AppendDouble(&out, server_window_p99_ms);
  out.append(",\"access_log_dropped\":");
  AppendUint(&out, access_log_dropped);
  out.append(",\"windows\":[");
  bool first = true;
  for (const SloWindow& w : windows) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    out.append("{\"start_ms\":");
    AppendUint(&out, w.start_ms);
    out.append(",\"requests\":");
    AppendUint(&out, w.requests);
    out.append(",\"p50_ms\":");
    AppendDouble(&out, w.p50_ms);
    out.append(",\"p99_ms\":");
    AppendDouble(&out, w.p99_ms);
    out.push_back('}');
  }
  std::string why;
  const bool pass = GatesPass(&why);
  out.append("],\"gates_pass\":");
  out.append(pass ? "true" : "false");
  out.append(",\"gates_why\":");
  AppendJsonString(&out, why);
  out.push_back('}');
  return out;
}

Result<SloHarnessReport> RunSloHarness(const SloHarnessOptions& options) {
  namespace fs = std::filesystem;
  SloHarnessReport report;

  const bool temp_root = options.root.empty();
  const std::string root =
      temp_root ? (fs::temp_directory_path() /
                   ("loggrep_slo_" + std::to_string(::getpid())))
                      .string()
                : options.root;
  report.root = root;
  std::error_code ec;
  fs::remove_all(root, ec);
  fs::create_directories(root);

  // --- Corpus + oracles (serial, fault-free, before the daemon) ----------
  const DatasetSpec base_spec = AllDatasets().front();
  const std::vector<std::string> commands =
      QuerySuiteForDataset(base_spec.name);
  if (commands.empty()) {
    return Internal("empty query suite for dataset " + base_spec.name);
  }
  const size_t total_archives = options.static_archives + options.live_archives;
  // Pre-sized so tenants can index the published prefix lock-free while the
  // ingest thread fills later slots (publication is the release store).
  std::vector<CatalogEntry> catalog(total_archives * commands.size());
  std::atomic<size_t> published{0};

  for (size_t a = 0; a < options.static_archives; ++a) {
    const std::string name = "arch-" + std::to_string(a);
    if (Status s = BuildArchiveAndOracle(
            root + "/" + name, base_spec, options.seed + a,
            options.blocks_per_archive, options.lines_per_block, commands,
            name, &catalog, a * commands.size());
        !s.ok()) {
      return s;
    }
  }
  published.store(options.static_archives * commands.size(),
                  std::memory_order_release);

  // --- Daemon, with seeded chaos underneath ------------------------------
  FaultOptions fault_options;
  fault_options.seed = options.seed * 7919 + 17;
  fault_options.read_fail_p = options.inject_faults ? options.read_fail_p : 0;
  fault_options.max_faults_per_path = options.max_faults_per_path;
  FaultInjectingStorageEnv fault_env(fault_options);
  if (options.inject_faults && options.permanent_fault &&
      options.static_archives > 0) {
    // Kill one block of arch-0 for good: every query touching it degrades
    // to 206 for the whole run — the degraded-rate + subset-check path.
    fault_env.AddPermanentFault("arch-0/block-0.lgc");
  }

  DaemonOptions daemon_options;
  daemon_options.service.root = root;
  if (options.inject_faults) {
    daemon_options.service.archive.env = &fault_env;
  }
  daemon_options.num_threads =
      options.daemon_threads > 0 ? options.daemon_threads : options.tenants + 2;
  daemon_options.max_inflight_queries =
      options.max_inflight > 0 ? options.max_inflight : options.tenants + 2;
  daemon_options.slow_query_threshold_ns = options.slow_query_threshold_ns;
  daemon_options.access_log.path = root + "/access.log";
  LoggrepDaemon daemon(std::move(daemon_options));
  Result<uint16_t> port = daemon.Start();
  if (!port.ok()) {
    return port.status();
  }

  // --- Live ingest: publish archives while tenants are driving -----------
  std::atomic<bool> ingest_failed{false};
  std::string ingest_error;
  std::thread ingest([&] {
    for (size_t k = 0; k < options.live_archives; ++k) {
      const size_t a = options.static_archives + k;
      const std::string name = "live-" + std::to_string(k);
      if (Status s = BuildArchiveAndOracle(
              root + "/" + name, base_spec, options.seed + 1000 + k,
              options.blocks_per_archive, options.lines_per_block, commands,
              name, &catalog, a * commands.size());
          !s.ok()) {
        ingest_error = s.ToString();
        ingest_failed.store(true, std::memory_order_release);
        return;
      }
      // Publish: from here on tenants can draw this archive's queries.
      published.store((a + 1) * commands.size(), std::memory_order_release);
      std::this_thread::sleep_for(std::chrono::milliseconds(
          options.duration_ms / (options.live_archives + 1)));
    }
  });

  // --- Tenants: open-loop Zipf-skewed drive ------------------------------
  const ZipfPicker zipf(catalog.size(), options.zipf_s);
  const size_t num_windows =
      static_cast<size_t>(options.duration_ms / options.window_ms) + 1;
  const double per_tenant_qps =
      options.offered_qps / static_cast<double>(options.tenants);
  const uint64_t interval_ns = per_tenant_qps > 0
                                   ? static_cast<uint64_t>(1e9 / per_tenant_qps)
                                   : 1'000'000'000ull;
  std::vector<TenantTally> tallies(options.tenants);
  std::vector<std::thread> tenants;
  const auto run_start = std::chrono::steady_clock::now();
  const uint64_t duration_ns = options.duration_ms * 1'000'000ull;

  for (size_t t = 0; t < options.tenants; ++t) {
    tallies[t].window_lat_ms.resize(num_windows);
    tenants.emplace_back([&, t] {
      Rng rng(options.seed ^ (0xABCDEF + t * 977));
      DaemonClient client("127.0.0.1", *port);
      TenantTally& tally = tallies[t];
      uint64_t seq = 0;
      // Stagger tenants across the first interval so arrivals interleave.
      uint64_t next_ns = interval_ns * t / options.tenants;
      while (next_ns < duration_ns) {
        const auto arrival = run_start + std::chrono::nanoseconds(next_ns);
        std::this_thread::sleep_until(arrival);  // no-op when behind: open loop
        const size_t limit = published.load(std::memory_order_acquire);
        const CatalogEntry& entry = catalog[zipf.Pick(rng.NextDouble(), limit)];

        RemoteQueryOptions qopts;
        char rid[48];
        std::snprintf(rid, sizeof(rid), "t%zu-%" PRIu64, t, seq++);
        qopts.request_id = rid;
        Result<RemoteQueryResult> r =
            client.Query(entry.archive, entry.command, qopts);
        const auto done = std::chrono::steady_clock::now();
        // Latency from the *scheduled* arrival: queueing delay a slow server
        // causes is part of what the tenant experienced (open-loop rule).
        const double lat_ms =
            std::chrono::duration<double, std::milli>(done - arrival).count();
        const size_t w = std::min<size_t>(num_windows - 1,
                                          next_ns / 1'000'000ull /
                                              options.window_ms);
        tally.window_lat_ms[w].push_back(lat_ms);
        tally.requests++;
        next_ns += interval_ns;

        if (!r.ok()) {
          tally.errors++;
          continue;
        }
        if (r->http_status == 200) {
          if (r->hits == entry.oracle) {
            tally.ok_200++;
          } else {
            tally.mismatches++;
          }
        } else if (r->http_status == 206) {
          if (IsOrderedSubset(r->hits, entry.oracle)) {
            tally.degraded_206++;
          } else {
            tally.mismatches++;
          }
        } else if (r->http_status == 429) {
          tally.shed_429++;
        } else if (r->http_status >= 500) {
          tally.errors++;
        } else {
          tally.mismatches++;  // 400/404 on a known-good query is a bug
        }
        if (r->http_status == 200 || r->http_status == 206) {
          tally.blocks_queried += r->blocks_queried;
          tally.blocks_from_cache += r->blocks_from_cache;
        }
      }
    });
  }
  for (std::thread& t : tenants) {
    t.join();
  }
  ingest.join();
  const double elapsed_s = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - run_start)
                               .count();
  if (ingest_failed.load(std::memory_order_acquire)) {
    daemon.Shutdown();
    return Internal("live ingest failed: " + ingest_error);
  }

  // --- Merge + windowed percentiles --------------------------------------
  std::vector<std::vector<double>> window_lat(num_windows);
  for (TenantTally& tally : tallies) {
    report.requests += tally.requests;
    report.ok_200 += tally.ok_200;
    report.degraded_206 += tally.degraded_206;
    report.shed_429 += tally.shed_429;
    report.errors += tally.errors;
    report.mismatches += tally.mismatches;
    report.blocks_queried += tally.blocks_queried;
    report.blocks_from_cache += tally.blocks_from_cache;
    for (size_t w = 0; w < num_windows; ++w) {
      window_lat[w].insert(window_lat[w].end(),
                           tally.window_lat_ms[w].begin(),
                           tally.window_lat_ms[w].end());
    }
  }
  report.achieved_qps = elapsed_s > 0 ? report.requests / elapsed_s : 0;
  if (report.requests > 0) {
    const double n = static_cast<double>(report.requests);
    report.shed_rate = report.shed_429 / n;
    report.degraded_rate = report.degraded_206 / n;
    report.error_rate = report.errors / n;
  }
  if (report.blocks_queried > 0) {
    report.cache_hit_rate = static_cast<double>(report.blocks_from_cache) /
                            static_cast<double>(report.blocks_queried);
  }
  for (size_t w = 0; w < num_windows; ++w) {
    SloWindow window;
    window.start_ms = w * options.window_ms;
    window.requests = window_lat[w].size();
    window.p50_ms = PercentileMs(&window_lat[w], 0.50);
    window.p99_ms = PercentileMs(&window_lat[w], 0.99);
    report.windows.push_back(window);
  }
  report.cold_p99_ms = report.windows.empty() ? 0 : report.windows[0].p99_ms;
  std::vector<double> warm;
  for (size_t w = num_windows / 2; w < num_windows; ++w) {
    // window_lat[w] is already sorted (PercentileMs); merging keeps values
    warm.insert(warm.end(), window_lat[w].begin(), window_lat[w].end());
  }
  report.warm_p99_ms = PercentileMs(&warm, 0.99);

  // --- Server-side views --------------------------------------------------
  {
    DaemonClient probe("127.0.0.1", *port);
    if (Result<ParsedResponse> m = probe.Get("/metrics"); m.ok()) {
      report.server_window_p99_ms =
          FindMetricValue(m->body, "loggrep_window_request_p99_ns") / 1e6;
      report.access_log_dropped = static_cast<uint64_t>(
          FindMetricValue(m->body, "loggrep_access_log_dropped"));
    }
    if (Result<ParsedResponse> s = probe.Get("/debug/slow"); s.ok()) {
      if (Result<JsonValue> doc = ParseJson(s->body); doc.ok()) {
        report.slow_queries_captured = doc->Get("captured").AsUint();
      }
    }
    if (Result<ParsedResponse> z = probe.Get("/statusz"); z.ok()) {
      report.statusz = std::move(z->body);
    }
  }
  daemon.Shutdown();

  std::string why;
  if (temp_root && report.GatesPass(&why)) {
    fs::remove_all(root, ec);  // keep the dir on failure for post-mortem
  }
  return report;
}

}  // namespace loggrep
