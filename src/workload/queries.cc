#include "src/workload/queries.h"

#include <map>

namespace loggrep {
namespace {

// Table 1 analogs. Keyed by dataset name.
const std::map<std::string, std::string, std::less<>>& QueryTable() {
  static const auto* kTable = new std::map<std::string, std::string, std::less<>>{
      {"Log A", "ERROR and state:REQ_ST_CLOSED and 20012 and reqId:5E9D*"},
      {"Log B", "ERROR and Project:2963 and RequestId:5EA6*"},
      {"Log C", "ERROR"},
      {"Log D", "project_id:30935 and logstore:res_p and inflow:5"},
      {"Log E", "project:161 and logstore:app_ay87a and shard:99 and wcount:10"},
      {"Log F", "ERROR not UserId:-2"},
      {"Log G", "Operation:ReadChunk and SATADiskId:7 and From:tcp://11.187.3.*"},
      {"Log H", "ERROR"},
      {"Log I", "WARNING and 2026-07-06 07"},
      {"Log J", "TraceType:PanguTraceSummary and SectionType:RPC_SealAndNew not CountFail:0"},
      {"Log K", "DELETE and /results/0 and 2026-07-06"},
      {"Log L", "WARNING and Errorcode:0 and Packet id:172397858"},
      {"Log M", "ERROR and exchange-client-24 and /results/10"},
      {"Log N", "ERROR and project_id:51274"},
      {"Log O", "error and ProjectId:2396 and 2026-07-06 05"},
      {"Log P", "ERROR and CLICK_SAVE_ERROR"},
      {"Log Q", "ERROR and PostLogStoreLogsHandler.cpp and Time:1622009998"},
      {"Log R", "ERROR and part_id:510 and request id REQ_11.*"},
      {"Log S", "TTY=unknown and /etc/init.d/ilogtaild and Aug 30 10"},
      {"Log T", "ERROR and 39244 and 2026-07-06 05:5"},
      {"Log U", "failed to read trie data and 161815265*"},
      {"Android", "ERROR and socket read length failure -104"},
      {"Apache", "error and Invalid URI in request"},
      {"Bgl", "ERROR and R00-M1-ND"},
      {"Hadoop", "ERROR and RECEIVED SIGNAL 15: SIGTERM and 2026-07-06"},
      {"Hdfs", "error and blk_8846"},
      {"Healthapp", "Step_ExtSDM and totalAltitude=0"},
      {"Hpc", "unavailable state and HWID=3378"},
      {"Linux", "authentication failure and rhost=221.230.128.214"},
      {"Mac", "failed and Err:-1 Errno:1"},
      {"Openstack", "ERROR or WARNING and Unexpected error while running command"},
      {"Proxifier", "HTTPS and play.google.com:443"},
      {"Spark", "ERROR and Error sending result"},
      {"Ssh", "Received disconnect from and 202.100.179.208"},
      {"Thunderbird", "Doorbell ACK timeout"},
      {"Windows", "Error and Failed to process single phase execution"},
      {"Zookeeper", "ERROR and CommitProcessor"},
  };
  return *kTable;
}

}  // namespace

std::string QueryForDataset(std::string_view dataset_name) {
  const auto& table = QueryTable();
  const auto it = table.find(dataset_name);
  return it == table.end() ? std::string() : it->second;
}

std::vector<std::string> QuerySuiteForDataset(std::string_view dataset_name) {
  std::vector<std::string> suite;
  const std::string primary = QueryForDataset(dataset_name);
  if (primary.empty()) {
    return suite;
  }
  suite.push_back(primary);
  // A medium-selectivity prefix of the Table 1 command (its first two search
  // strings) and a needle-in-haystack miss (pure filtering) complement it.
  const size_t second_and = primary.find(" and ", primary.find(" and ") + 1);
  if (second_and != std::string::npos) {
    suite.push_back(primary.substr(0, second_and));
  } else {
    suite.push_back(primary);
  }
  suite.push_back("zzzNOSUCHTOKEN42");
  return suite;
}

}  // namespace loggrep
