// Streaming ingestion: pipelined block compression with bounded memory.
//
// The paper compresses one 64 MB block at a time and notes compression
// "can easily be parallelized" (§6, §8). LogIngestor is that scale-out
// path: a producer streams raw log text in (any chunking — lines, pipes,
// whole files), the ingestor cuts the stream into entry-aligned blocks of
// ~target_block_bytes, compresses blocks concurrently on a ThreadPool, and
// commits finished blocks to a LogArchive strictly in sequence order using
// the archive's crash-safe commit protocol (tmp + rename for both block
// files and the manifest).
//
// Backpressure: at most `max_in_flight_blocks` blocks may be queued or
// compressing at once; Append() blocks the producer beyond that, so peak
// memory is O(max_in_flight_blocks * target_block_bytes) regardless of input
// size. Producer stall time is surfaced in IngestMetrics.
//
// Concurrency shape:
//   producer thread  -> Append() cuts blocks, waits on the in-flight window
//   pool workers     -> build block summary + compress (embarrassingly
//                       parallel, one engine per block)
//   committer        -> whichever worker completes the next-in-order block
//                       drains the ready set in sequence order; commits are
//                       serialized by a flag so the archive never sees
//                       concurrent mutation
//
// Crash safety: a crash (or injected kill, see CommitHook) at any point
// leaves the archive directory openable; LogArchive::Open recovers the
// longest consistent block prefix and sweeps temp/orphan files.
#ifndef SRC_INGEST_LOG_INGESTOR_H_
#define SRC_INGEST_LOG_INGESTOR_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "src/common/metrics.h"
#include "src/common/thread_pool.h"
#include "src/common/timer.h"
#include "src/store/log_archive.h"

namespace loggrep {

struct IngestOptions {
  // Target raw size of one block; cuts happen at the last entry ('\n')
  // boundary at or before this size. 64 MB mirrors the paper's block size.
  size_t target_block_bytes = 64ull << 20;
  // Bounded in-flight window (queued + compressing blocks). Append() blocks
  // the producer once the window is full.
  size_t max_in_flight_blocks = 4;
  // Compression workers; 0 means std::thread::hardware_concurrency().
  size_t num_workers = 0;
  // Forwarded to the underlying LogArchive (engine + bloom sizing).
  ArchiveOptions archive;
  // Fault injection for tests: forwarded to every block commit.
  CommitHook kill_hook;
  // Optional external registry for the "ingest.*" counters and per-block
  // stage-latency histograms ("ingest.block_*_ns"). Borrowed; must outlive
  // the ingestor. When null the ingestor owns a private registry.
  MetricsRegistry* metrics = nullptr;
};

// Point-in-time ingest statistics (all stages, all threads).
struct IngestMetrics {
  uint64_t raw_bytes = 0;         // raw text handed to workers
  uint64_t stored_bytes = 0;      // compressed bytes committed
  uint64_t lines = 0;             // log entries across cut blocks
  uint64_t blocks_cut = 0;        // blocks submitted to the pool
  uint64_t blocks_committed = 0;  // blocks durably in the manifest
  uint64_t queue_depth_hwm = 0;   // in-flight window high-water mark
  double producer_stall_seconds = 0;  // Append() blocked on backpressure
  double summary_seconds = 0;         // per-stage: block summary building
  double compress_seconds = 0;        // per-stage: engine compression
  double commit_seconds = 0;          // per-stage: crash-safe commit I/O
  double wall_seconds = 0;            // Start() .. Finish()/now
};

class LogIngestor {
 public:
  // Opens (or creates) the archive at `dir` and spins up the worker pool.
  static Result<std::unique_ptr<LogIngestor>> Start(std::string dir,
                                                    IngestOptions options = {});

  // Drains and finalizes (best effort) if Finish() was never called.
  ~LogIngestor();

  LogIngestor(const LogIngestor&) = delete;
  LogIngestor& operator=(const LogIngestor&) = delete;

  // Streams a chunk of raw log text. May cut and enqueue any number of
  // blocks; blocks the caller while the in-flight window is full. Once the
  // pipeline has failed, returns that error (and the stream is dead).
  Status Append(std::string_view chunk);

  // Seals the final partial block, drains all workers and commits, and
  // returns the pipeline status. Idempotent; Append() is invalid afterwards.
  Status Finish();

  // Snapshot of the ingest counters (callable at any time, thread-safe).
  IngestMetrics metrics() const;

  // The registry holding the raw "ingest.*" counters and histograms (the
  // external one when IngestOptions::metrics was set, else the private one).
  const MetricsRegistry& registry() const { return *registry_; }

  // The underlying archive. Only safe to use after Finish() returned.
  LogArchive& archive() { return *archive_; }
  const LogArchive& archive() const { return *archive_; }

 private:
  // One compressed block waiting for its turn to commit.
  struct ReadyBlock {
    BlockInfo info;
    std::string box;
  };

  LogIngestor(IngestOptions options, std::unique_ptr<LogArchive> archive);

  // Cuts as many entry-aligned blocks as `buffer_` holds.
  Status CutReadyBlocks();
  // Admits one block into the in-flight window (waits on backpressure) and
  // submits it to the pool.
  Status EnqueueBlock(std::string text);
  // Worker: summary + compression, then hand off to the committer.
  void WorkerCompress(uint64_t seq, std::shared_ptr<std::string> text);
  // Registers a finished block and, if this thread wins the committer role,
  // drains the ready set in sequence order.
  void OnBlockReady(uint64_t seq, ReadyBlock ready);

  IngestOptions options_;
  std::unique_ptr<LogArchive> archive_;
  std::unique_ptr<ThreadPool> pool_;

  std::string buffer_;       // producer-side, partial block (producer thread only)
  bool finished_ = false;    // producer thread only
  Status final_status_;      // producer thread only, set by Finish()

  mutable std::mutex mu_;
  std::condition_variable window_open_;
  uint64_t next_seq_ = 0;      // next block number to cut
  uint64_t next_commit_ = 0;   // next block number to commit
  size_t in_flight_ = 0;       // cut but not yet committed (or failed)
  bool committing_ = false;    // a thread is inside the commit drain loop
  Status status_;              // first pipeline error
  std::map<uint64_t, ReadyBlock> completed_;

  // All times are integer nanoseconds ("_ns" names; see metrics.h).
  MetricsRegistry own_registry_;
  MetricsRegistry* registry_;  // own_registry_ or IngestOptions::metrics
  Counter* raw_bytes_;
  Counter* stored_bytes_;
  Counter* lines_;
  Counter* blocks_cut_;
  Counter* blocks_committed_;
  Counter* queue_hwm_;
  Counter* stall_ns_;
  Counter* summary_ns_;
  Counter* compress_ns_;
  Counter* commit_ns_;
  Counter* wall_ns_;
  Histogram* block_summary_ns_;   // per-block stage latency distributions
  Histogram* block_compress_ns_;
  Histogram* block_commit_ns_;
  WallTimer started_;
};

}  // namespace loggrep

#endif  // SRC_INGEST_LOG_INGESTOR_H_
