#include "src/ingest/log_ingestor.h"

#include <filesystem>
#include <thread>
#include <utility>

#include "src/common/trace.h"

namespace loggrep {

Result<std::unique_ptr<LogIngestor>> LogIngestor::Start(std::string dir,
                                                        IngestOptions options) {
  if (options.target_block_bytes == 0) {
    return InvalidArgument("ingest: target_block_bytes must be > 0");
  }
  if (options.max_in_flight_blocks == 0) {
    return InvalidArgument("ingest: max_in_flight_blocks must be > 0");
  }
  const bool exists =
      EnvOrDefault(options.archive.env)->FileExists(dir + "/archive.manifest");
  Result<LogArchive> archive = exists
                                   ? LogArchive::Open(dir, options.archive)
                                   : LogArchive::Create(dir, options.archive);
  if (!archive.ok()) {
    return archive.status();
  }
  auto owned = std::make_unique<LogArchive>(std::move(*archive));
  return std::unique_ptr<LogIngestor>(
      new LogIngestor(std::move(options), std::move(owned)));
}

LogIngestor::LogIngestor(IngestOptions options,
                         std::unique_ptr<LogArchive> archive)
    : options_(std::move(options)), archive_(std::move(archive)) {
  size_t workers = options_.num_workers;
  if (workers == 0) {
    workers = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  pool_ = std::make_unique<ThreadPool>(workers);
  registry_ = options_.metrics != nullptr ? options_.metrics : &own_registry_;
  raw_bytes_ = registry_->GetOrCreate("ingest.raw_bytes");
  stored_bytes_ = registry_->GetOrCreate("ingest.stored_bytes");
  lines_ = registry_->GetOrCreate("ingest.lines");
  blocks_cut_ = registry_->GetOrCreate("ingest.blocks_cut");
  blocks_committed_ = registry_->GetOrCreate("ingest.blocks_committed");
  queue_hwm_ = registry_->GetOrCreate("ingest.queue_depth_hwm");
  stall_ns_ = registry_->GetOrCreate("ingest.producer_stall_ns");
  summary_ns_ = registry_->GetOrCreate("ingest.summary_ns");
  compress_ns_ = registry_->GetOrCreate("ingest.compress_ns");
  commit_ns_ = registry_->GetOrCreate("ingest.commit_ns");
  wall_ns_ = registry_->GetOrCreate("ingest.wall_ns");
  block_summary_ns_ = registry_->GetOrCreateHistogram("ingest.block_summary_ns");
  block_compress_ns_ =
      registry_->GetOrCreateHistogram("ingest.block_compress_ns");
  block_commit_ns_ = registry_->GetOrCreateHistogram("ingest.block_commit_ns");
}

LogIngestor::~LogIngestor() {
  if (!finished_) {
    (void)Finish();  // best effort drain; errors were already recorded
  }
}

Status LogIngestor::Append(std::string_view chunk) {
  if (finished_) {
    return InvalidArgument("ingest: Append after Finish");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!status_.ok()) {
      return status_;
    }
  }
  buffer_.append(chunk);
  return CutReadyBlocks();
}

Status LogIngestor::CutReadyBlocks() {
  const size_t target = options_.target_block_bytes;
  while (buffer_.size() >= target) {
    // Entry-aligned cut: last newline at or before the target size...
    size_t cut = buffer_.rfind('\n', target - 1);
    if (cut == std::string::npos) {
      // ...or, for an entry longer than a whole block, the entry's own end
      // (one oversized single-entry block rather than a torn entry).
      cut = buffer_.find('\n', target);
      if (cut == std::string::npos) {
        return OkStatus();  // need more data to close the giant entry
      }
    }
    std::string block = buffer_.substr(0, cut + 1);
    buffer_.erase(0, cut + 1);
    LOGGREP_RETURN_IF_ERROR(EnqueueBlock(std::move(block)));
  }
  return OkStatus();
}

Status LogIngestor::EnqueueBlock(std::string text) {
  uint64_t seq = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (in_flight_ >= options_.max_in_flight_blocks && status_.ok()) {
      const TraceSpan stall_span("ingest.backpressure_stall", "ingest");
      WallTimer stall;
      window_open_.wait(lock, [this] {
        return in_flight_ < options_.max_in_flight_blocks || !status_.ok();
      });
      stall_ns_->Add(stall.ElapsedNanos());
    }
    if (!status_.ok()) {
      return status_;
    }
    seq = next_seq_++;
    ++in_flight_;
    queue_hwm_->UpdateMax(in_flight_);
  }
  blocks_cut_->Increment();
  auto shared = std::make_shared<std::string>(std::move(text));
  // Spans the worker opens for this block stitch to this enqueue span
  // (ThreadPool::Submit captures the current span as the task's parent).
  const TraceSpan span("ingest.enqueue_block", "ingest", "seq", seq);
  pool_->Submit([this, seq, shared] { WorkerCompress(seq, shared); });
  return OkStatus();
}

void LogIngestor::WorkerCompress(uint64_t seq,
                                 std::shared_ptr<std::string> text) {
  WallTimer timer;
  ReadyBlock ready;
  {
    const TraceSpan span("ingest.summary", "ingest", "seq", seq);
    ready.info =
        BuildBlockSummary(*text, options_.archive.bloom_bits_per_shingle);
  }
  uint64_t nanos = timer.ElapsedNanos();
  summary_ns_->Add(nanos);
  block_summary_ns_->Record(nanos);

  timer.Reset();
  // One engine per block: CompressBlock shares nothing across blocks, so
  // workers stay lock-free (mirrors ParallelQuery's per-task engines).
  {
    const TraceSpan span("ingest.compress", "ingest", "seq", seq);
    LogGrepEngine engine(options_.archive.engine);
    ready.box = engine.CompressBlock(*text);
  }
  nanos = timer.ElapsedNanos();
  compress_ns_->Add(nanos);
  block_compress_ns_->Record(nanos);

  raw_bytes_->Add(text->size());
  lines_->Add(ready.info.line_count);
  text.reset();  // release raw text before queueing for commit
  OnBlockReady(seq, std::move(ready));
}

void LogIngestor::OnBlockReady(uint64_t seq, ReadyBlock ready) {
  std::unique_lock<std::mutex> lock(mu_);
  completed_.emplace(seq, std::move(ready));
  if (committing_) {
    return;  // the active committer will drain this block in order
  }
  committing_ = true;
  while (status_.ok()) {
    auto it = completed_.find(next_commit_);
    if (it == completed_.end()) {
      break;
    }
    ReadyBlock block = std::move(it->second);
    completed_.erase(it);
    const uint64_t stored = block.box.size();

    lock.unlock();
    uint64_t commit_nanos = 0;
    Status s;
    {
      const TraceSpan span("ingest.commit", "ingest", "seq", next_commit_);
      WallTimer timer;
      s = archive_->CommitCompressedBlock(block.box, std::move(block.info),
                                          options_.kill_hook);
      commit_nanos = timer.ElapsedNanos();
    }
    lock.lock();

    commit_ns_->Add(commit_nanos);
    block_commit_ns_->Record(commit_nanos);
    if (s.ok()) {
      ++next_commit_;
      stored_bytes_->Add(stored);
      blocks_committed_->Increment();
    } else if (status_.ok()) {
      status_ = s;  // first failure wins; stream is dead from here
    }
    --in_flight_;
    window_open_.notify_all();
  }
  committing_ = false;
}

Status LogIngestor::Finish() {
  if (finished_) {
    return final_status_;
  }
  finished_ = true;
  Status seal = OkStatus();
  if (!buffer_.empty()) {
    seal = EnqueueBlock(std::move(buffer_));
    buffer_.clear();
  }
  pool_->Wait();  // all compressions + in-order commits done after this
  {
    std::lock_guard<std::mutex> lock(mu_);
    final_status_ = status_.ok() ? seal : status_;
  }
  wall_ns_->UpdateMax(started_.ElapsedNanos());
  return final_status_;
}

IngestMetrics LogIngestor::metrics() const {
  IngestMetrics m;
  m.raw_bytes = raw_bytes_->value();
  m.stored_bytes = stored_bytes_->value();
  m.lines = lines_->value();
  m.blocks_cut = blocks_cut_->value();
  m.blocks_committed = blocks_committed_->value();
  m.queue_depth_hwm = queue_hwm_->value();
  m.producer_stall_seconds = NanosToSeconds(stall_ns_->value());
  m.summary_seconds = NanosToSeconds(summary_ns_->value());
  m.compress_seconds = NanosToSeconds(compress_ns_->value());
  m.commit_seconds = NanosToSeconds(commit_ns_->value());
  const uint64_t wall = wall_ns_->value();
  m.wall_seconds = wall > 0 ? NanosToSeconds(wall) : started_.ElapsedSeconds();
  return m;
}

}  // namespace loggrep
