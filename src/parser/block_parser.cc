#include "src/parser/block_parser.h"

#include <string>
#include <unordered_map>

#include "src/common/string_util.h"

namespace loggrep {
namespace {

// Shape key for template lookup: token count only. Separator and constant
// checks inside StaticPattern::Match do the precise filtering; the key just
// keeps the candidate list short.
size_t ShapeKey(const TokenizedLine& line) { return line.tokens.size(); }

}  // namespace

ParsedBlock BlockParser::Parse(std::string_view text) const {
  ParsedBlock block;
  const std::vector<std::string_view> lines = SplitLines(text);
  block.total_lines = static_cast<uint32_t>(lines.size());

  const TemplateMiner miner(miner_options_);
  block.templates = miner.Mine(lines);

  block.groups.resize(block.templates.size());
  std::unordered_map<size_t, std::vector<uint32_t>> by_shape;
  for (uint32_t t = 0; t < block.templates.size(); ++t) {
    block.groups[t].template_id = t;
    block.groups[t].var_vectors.resize(
        static_cast<size_t>(block.templates[t].VarCount()));
    by_shape[block.templates[t].TokenCount()].push_back(t);
  }

  std::vector<std::string_view> vars;
  for (uint32_t ln = 0; ln < lines.size(); ++ln) {
    // Lines containing NUL go to the outlier list (stored raw, delimited by
    // '\n'): the padded Capsule layout uses '\0' as its pad byte, so a NUL
    // inside a variable value would be silently truncated by TrimCell at
    // reconstruction time. Found by the fuzz_parser round-trip target.
    const bool paddable = lines[ln].find('\0') == std::string_view::npos;
    const TokenizedLine tokenized = TokenizeLine(lines[ln]);
    bool matched = false;
    const auto it = by_shape.find(ShapeKey(tokenized));
    if (paddable && it != by_shape.end()) {
      for (uint32_t t : it->second) {
        vars.clear();
        if (block.templates[t].Match(tokenized, &vars)) {
          ParsedGroup& group = block.groups[t];
          group.line_numbers.push_back(ln);
          for (size_t slot = 0; slot < vars.size(); ++slot) {
            group.var_vectors[slot].emplace_back(vars[slot]);
          }
          matched = true;
          break;
        }
      }
    }
    if (!matched) {
      block.outlier_line_numbers.push_back(ln);
      block.outlier_lines.emplace_back(lines[ln]);
    }
  }
  return block;
}

}  // namespace loggrep
