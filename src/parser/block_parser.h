// BlockParser: structurizes a whole log block against mined templates.
//
// Every line is matched against the templates of its shape cluster; matched
// lines contribute their variable tokens to per-slot variable vectors inside
// a group (one group per template, §2.2). Lines matching no template go to
// the outlier list and are stored raw — parsing accuracy therefore affects
// performance only, never correctness (§4.1).
#ifndef SRC_PARSER_BLOCK_PARSER_H_
#define SRC_PARSER_BLOCK_PARSER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/parser/static_pattern.h"
#include "src/parser/template_miner.h"

namespace loggrep {

struct ParsedGroup {
  uint32_t template_id = 0;
  // Global line numbers of this group's rows, in block order (these double as
  // the logical timestamps used to merge results across groups, §3).
  std::vector<uint32_t> line_numbers;
  // var_vectors[slot][row]: value of variable `slot` in the group's row-th entry.
  std::vector<std::vector<std::string>> var_vectors;
};

struct ParsedBlock {
  std::vector<StaticPattern> templates;
  std::vector<ParsedGroup> groups;  // one per template, same index
  std::vector<uint32_t> outlier_line_numbers;
  std::vector<std::string> outlier_lines;
  uint32_t total_lines = 0;
};

class BlockParser {
 public:
  explicit BlockParser(TemplateMinerOptions miner_options = {})
      : miner_options_(miner_options) {}

  // Mines templates on a sample of `text` and parses all of it.
  ParsedBlock Parse(std::string_view text) const;

 private:
  TemplateMinerOptions miner_options_;
};

}  // namespace loggrep

#endif  // SRC_PARSER_BLOCK_PARSER_H_
