#include "src/parser/tokenizer.h"

#include <array>

namespace loggrep {
namespace {

constexpr std::array<bool, 256> BuildSeparatorTable() {
  std::array<bool, 256> t{};
  for (char c : {' ', '\t', ',', '"', '\'', '(', ')', '[', ']', '{', '}'}) {
    t[static_cast<unsigned char>(c)] = true;
  }
  return t;
}

constexpr std::array<bool, 256> kIsSep = BuildSeparatorTable();

}  // namespace

bool IsSeparatorChar(char c) { return kIsSep[static_cast<unsigned char>(c)]; }

TokenizedLine TokenizeLine(std::string_view line) {
  TokenizedLine out;
  TokenizeLineInto(line, &out);
  return out;
}

void TokenizeLineInto(std::string_view line, TokenizedLine* out) {
  out->seps.clear();
  out->tokens.clear();
  size_t i = 0;
  while (true) {
    // Separator run (possibly empty).
    const size_t sep_start = i;
    while (i < line.size() && kIsSep[static_cast<unsigned char>(line[i])]) {
      ++i;
    }
    out->seps.push_back(line.substr(sep_start, i - sep_start));
    if (i >= line.size()) {
      break;
    }
    // Token run, additionally terminated after an interior ':' or '='.
    const size_t tok_start = i;
    while (i < line.size() && !kIsSep[static_cast<unsigned char>(line[i])]) {
      const char c = line[i];
      ++i;
      if ((c == ':' || c == '=') && i > tok_start + 1 && i < line.size() &&
          !kIsSep[static_cast<unsigned char>(line[i])]) {
        break;  // split "key=value": ':'/'=' stays with the key
      }
    }
    out->tokens.push_back(line.substr(tok_start, i - tok_start));
  }
}

std::vector<std::string_view> TokenizeKeywords(std::string_view text) {
  return TokenizeLine(text).tokens;
}

}  // namespace loggrep
