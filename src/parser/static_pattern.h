// StaticPattern: a mined log template ("static pattern" in the paper).
//
// A pattern is a tokenized skeleton: exact separator runs plus a sequence of
// tokens, each either constant text or a variable slot. Variable slots are
// numbered left to right; parsing a line against a pattern yields one value
// per slot, and rendering is the exact inverse (byte-for-byte lossless).
#ifndef SRC_PARSER_STATIC_PATTERN_H_
#define SRC_PARSER_STATIC_PATTERN_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/result.h"
#include "src/parser/tokenizer.h"

namespace loggrep {

class StaticPattern {
 public:
  struct Tok {
    bool is_var = false;
    std::string text;  // constant text; empty for variable slots
  };

  StaticPattern() = default;
  StaticPattern(std::vector<std::string> seps, std::vector<Tok> tokens)
      : seps_(std::move(seps)), tokens_(std::move(tokens)) {}

  // Builds an all-constant pattern from a tokenized line, pre-marking tokens
  // that contain a digit as variables (classic parser preprocessing).
  static StaticPattern FromLine(const TokenizedLine& line);

  const std::vector<std::string>& seps() const { return seps_; }
  const std::vector<Tok>& tokens() const { return tokens_; }
  size_t TokenCount() const { return tokens_.size(); }
  int VarCount() const;

  // Merges another same-shape line into this template, turning mismatching
  // token positions into variables. Caller has verified shape compatibility.
  void MergeLine(const TokenizedLine& line);

  // Fraction of token positions where `line`'s token equals this template's
  // constant token (variables count as matches). Returns -1 when shapes
  // (token count or separators) differ.
  double Similarity(const TokenizedLine& line) const;

  // Exact match: all separators and constant tokens must be equal. On success
  // appends the variable token views (slot order) to `vars`.
  bool Match(const TokenizedLine& line, std::vector<std::string_view>* vars) const;

  // Inverse of Match: substitutes `vars` into the slots.
  std::string Render(const std::vector<std::string_view>& vars) const;

  // Appending form of Render: substitutes into `*out` without allocating a
  // fresh string, so callers can reuse one output buffer across rows.
  void RenderTo(const std::vector<std::string_view>& vars,
                std::string* out) const;

  // Human-readable form, e.g. "write to file:<*>".
  std::string ToString() const;

  void WriteTo(ByteWriter& out) const;
  static Result<StaticPattern> ReadFrom(ByteReader& in);

 private:
  std::vector<std::string> seps_;  // seps_.size() == tokens_.size() + 1
  std::vector<Tok> tokens_;
};

}  // namespace loggrep

#endif  // SRC_PARSER_STATIC_PATTERN_H_
