// TemplateMiner: mines static patterns from a sample of a log block.
//
// Stand-in for the LogReducer parser the paper adopts (§3): LogGrep samples
// 5% of a block's entries and identifies static patterns on the sample. The
// miner clusters sampled lines by shape (token count + leading token class)
// and merges a line into an existing template when at least
// `kMergeSimilarity` of token positions agree; disagreeing positions become
// variable slots.
#ifndef SRC_PARSER_TEMPLATE_MINER_H_
#define SRC_PARSER_TEMPLATE_MINER_H_

#include <string_view>
#include <vector>

#include "src/parser/static_pattern.h"

namespace loggrep {

struct TemplateMinerOptions {
  double sample_rate = 0.05;
  // Below this many lines the whole block is used as the sample.
  size_t min_sample_lines = 200;
  double merge_similarity = 0.7;
  uint64_t seed = 0x106702;
};

class TemplateMiner {
 public:
  explicit TemplateMiner(TemplateMinerOptions options = {}) : options_(options) {}

  // Mines templates from `lines` (views into the caller's block text).
  std::vector<StaticPattern> Mine(const std::vector<std::string_view>& lines) const;

 private:
  TemplateMinerOptions options_;
};

// Splits block text into lines (without trailing '\n'); a final line without
// a newline terminator is included.
std::vector<std::string_view> SplitLines(std::string_view text);

}  // namespace loggrep

#endif  // SRC_PARSER_TEMPLATE_MINER_H_
