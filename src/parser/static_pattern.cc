#include "src/parser/static_pattern.h"

#include <algorithm>
#include <cassert>

#include "src/common/string_util.h"

namespace loggrep {
namespace {

bool ContainsDigit(std::string_view s) {
  return std::any_of(s.begin(), s.end(), [](char c) { return IsAsciiDigit(c); });
}

}  // namespace

StaticPattern StaticPattern::FromLine(const TokenizedLine& line) {
  std::vector<std::string> seps;
  seps.reserve(line.seps.size());
  for (std::string_view s : line.seps) {
    seps.emplace_back(s);
  }
  std::vector<Tok> tokens;
  tokens.reserve(line.tokens.size());
  for (std::string_view t : line.tokens) {
    if (ContainsDigit(t)) {
      tokens.push_back(Tok{true, {}});
    } else {
      tokens.push_back(Tok{false, std::string(t)});
    }
  }
  return StaticPattern(std::move(seps), std::move(tokens));
}

int StaticPattern::VarCount() const {
  int n = 0;
  for (const Tok& t : tokens_) {
    n += t.is_var ? 1 : 0;
  }
  return n;
}

void StaticPattern::MergeLine(const TokenizedLine& line) {
  assert(line.tokens.size() == tokens_.size());
  for (size_t i = 0; i < tokens_.size(); ++i) {
    if (!tokens_[i].is_var && tokens_[i].text != line.tokens[i]) {
      tokens_[i].is_var = true;
      tokens_[i].text.clear();
    }
  }
}

double StaticPattern::Similarity(const TokenizedLine& line) const {
  if (line.tokens.size() != tokens_.size()) {
    return -1.0;
  }
  for (size_t i = 0; i < seps_.size(); ++i) {
    if (seps_[i] != line.seps[i]) {
      return -1.0;
    }
  }
  if (tokens_.empty()) {
    return 1.0;
  }
  size_t same = 0;
  for (size_t i = 0; i < tokens_.size(); ++i) {
    if (tokens_[i].is_var || tokens_[i].text == line.tokens[i]) {
      ++same;
    }
  }
  return static_cast<double>(same) / static_cast<double>(tokens_.size());
}

bool StaticPattern::Match(const TokenizedLine& line,
                          std::vector<std::string_view>* vars) const {
  if (line.tokens.size() != tokens_.size()) {
    return false;
  }
  for (size_t i = 0; i < seps_.size(); ++i) {
    if (seps_[i] != line.seps[i]) {
      return false;
    }
  }
  for (size_t i = 0; i < tokens_.size(); ++i) {
    if (!tokens_[i].is_var && tokens_[i].text != line.tokens[i]) {
      return false;
    }
  }
  if (vars != nullptr) {
    for (size_t i = 0; i < tokens_.size(); ++i) {
      if (tokens_[i].is_var) {
        vars->push_back(line.tokens[i]);
      }
    }
  }
  return true;
}

std::string StaticPattern::Render(const std::vector<std::string_view>& vars) const {
  std::string out;
  RenderTo(vars, &out);
  return out;
}

void StaticPattern::RenderTo(const std::vector<std::string_view>& vars,
                             std::string* out) const {
  size_t slot = 0;
  for (size_t i = 0; i < tokens_.size(); ++i) {
    *out += seps_[i];
    if (tokens_[i].is_var) {
      assert(slot < vars.size());
      if (slot < vars.size()) {  // defensive: never index OOB
        *out += vars[slot];
      }
      ++slot;
    } else {
      *out += tokens_[i].text;
    }
  }
  *out += seps_.back();
}

std::string StaticPattern::ToString() const {
  std::string out;
  for (size_t i = 0; i < tokens_.size(); ++i) {
    out += seps_[i];
    out += tokens_[i].is_var ? "<*>" : tokens_[i].text;
  }
  out += seps_.back();
  return out;
}

void StaticPattern::WriteTo(ByteWriter& out) const {
  out.PutVarint(tokens_.size());
  for (size_t i = 0; i < tokens_.size(); ++i) {
    out.PutLengthPrefixed(seps_[i]);
    out.PutU8(tokens_[i].is_var ? 1 : 0);
    if (!tokens_[i].is_var) {
      out.PutLengthPrefixed(tokens_[i].text);
    }
  }
  out.PutLengthPrefixed(seps_.back());
}

Result<StaticPattern> StaticPattern::ReadFrom(ByteReader& in) {
  Result<uint64_t> n = in.ReadVarint();
  if (!n.ok()) {
    return n.status();
  }
  std::vector<std::string> seps;
  std::vector<Tok> tokens;
  // Cap the up-front reserve: the declared count is attacker-controlled but
  // every real token costs stream bytes, so growth past the cap is bounded
  // by the input size.
  const size_t plausible = static_cast<size_t>(std::min<uint64_t>(*n, 4096));
  seps.reserve(plausible + 1);
  tokens.reserve(plausible);
  for (uint64_t i = 0; i < *n; ++i) {
    Result<std::string_view> sep = in.ReadLengthPrefixed();
    if (!sep.ok()) {
      return sep.status();
    }
    seps.emplace_back(*sep);
    Result<uint8_t> is_var = in.ReadU8();
    if (!is_var.ok()) {
      return is_var.status();
    }
    if (*is_var != 0) {
      tokens.push_back(Tok{true, {}});
    } else {
      Result<std::string_view> text = in.ReadLengthPrefixed();
      if (!text.ok()) {
        return text.status();
      }
      tokens.push_back(Tok{false, std::string(*text)});
    }
  }
  Result<std::string_view> trailing = in.ReadLengthPrefixed();
  if (!trailing.ok()) {
    return trailing.status();
  }
  seps.emplace_back(*trailing);
  return StaticPattern(std::move(seps), std::move(tokens));
}

}  // namespace loggrep
