// Log-line tokenizer shared by the template miner, the block parser, every
// baseline, and query-string tokenization (§2.1: CLP and LogGrep tokenize
// search strings "using the same delimiters" as log entries).
//
// Rules:
//   * Whitespace and a small set of punctuation characters are separators.
//     Separator runs are preserved verbatim so that parsed lines can be
//     reconstructed byte-for-byte.
//   * A ':' or '=' inside a token additionally ends the token (the
//     punctuation stays with the left part), so "time=1622009998" splits into
//     "time=" and "1622009998" — mirroring printf("time=%d", t) where only
//     the value is variable.
#ifndef SRC_PARSER_TOKENIZER_H_
#define SRC_PARSER_TOKENIZER_H_

#include <string_view>
#include <vector>

namespace loggrep {

struct TokenizedLine {
  // seps.size() == tokens.size() + 1; seps[i] precedes tokens[i], and
  // seps.back() is the trailing separator run (often empty). Views borrow
  // from the tokenized line.
  std::vector<std::string_view> seps;
  std::vector<std::string_view> tokens;
};

bool IsSeparatorChar(char c);

TokenizedLine TokenizeLine(std::string_view line);

// Scratch-reusing form: clears and refills `*out` without giving up its
// vectors' capacity, so per-line tokenization in hot loops stops allocating
// after the first few lines.
void TokenizeLineInto(std::string_view line, TokenizedLine* out);

// Tokens only (separators dropped): used for query keywords.
std::vector<std::string_view> TokenizeKeywords(std::string_view text);

}  // namespace loggrep

#endif  // SRC_PARSER_TOKENIZER_H_
