#include "src/parser/template_miner.h"

#include <string>
#include <unordered_map>

#include "src/common/rng.h"
#include "src/common/string_util.h"

namespace loggrep {

std::vector<std::string_view> SplitLines(std::string_view text) {
  std::vector<std::string_view> lines;
  size_t start = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') {
      lines.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  if (start < text.size()) {
    lines.push_back(text.substr(start));
  }
  return lines;
}

namespace {

// Cluster key: token count plus the first token (masked to "#" when it looks
// variable, i.e. contains a digit).
std::string ClusterKey(const TokenizedLine& line) {
  std::string key = std::to_string(line.tokens.size());
  key += '|';
  if (!line.tokens.empty()) {
    std::string_view first = line.tokens[0];
    bool has_digit = false;
    for (char c : first) {
      if (IsAsciiDigit(c)) {
        has_digit = true;
        break;
      }
    }
    if (has_digit) {
      key += '#';
    } else {
      key.append(first.data(), first.size());
    }
  }
  return key;
}

}  // namespace

std::vector<StaticPattern> TemplateMiner::Mine(
    const std::vector<std::string_view>& lines) const {
  Rng rng(options_.seed);
  const bool sample_all = lines.size() < options_.min_sample_lines;

  // Cluster key -> indices into `templates`.
  std::unordered_map<std::string, std::vector<size_t>> clusters;
  std::vector<StaticPattern> templates;

  for (std::string_view raw : lines) {
    if (!sample_all && !rng.NextBool(options_.sample_rate)) {
      continue;
    }
    const TokenizedLine line = TokenizeLine(raw);
    const std::string key = ClusterKey(line);
    std::vector<size_t>& bucket = clusters[key];
    double best_sim = -1.0;
    size_t best_idx = 0;
    for (size_t idx : bucket) {
      const double sim = templates[idx].Similarity(line);
      if (sim > best_sim) {
        best_sim = sim;
        best_idx = idx;
      }
    }
    if (best_sim >= options_.merge_similarity) {
      templates[best_idx].MergeLine(line);
    } else {
      bucket.push_back(templates.size());
      templates.push_back(StaticPattern::FromLine(line));
    }
  }
  return templates;
}

}  // namespace loggrep
