// ArchiveService: the process-wide warm state behind loggrepd.
//
// The whole point of running LogGrep as a daemon (instead of the one-shot
// CLI) is that open archives — manifests, quarantine sets, and above all the
// sharded BoxCache of decompressed capsules (PR 2's 17.8x warm win) — live
// as long as the process and are shared by *every* connection. The service
// keeps one handle per archive directory: first request pays the cold open,
// every later request from any client starts warm.
//
// Concurrency model: LogArchive is not safe for concurrent Query calls (the
// embedded engine's command cache and the quarantine set are unsynchronized
// by design — single-process library users own their threading). The
// service therefore serializes queries *per archive* with one mutex per
// handle, while different archives run fully in parallel and the BoxCache
// inside each archive stays warm across all callers. Admission control
// (how many queries may be in flight process-wide) lives in the daemon, not
// here.
//
// This header is also the single home of the status contract shared by the
// CLI and the HTTP API (see HttpStatusForQuery / ExitCodeForHttpStatus):
//
//   query outcome                      CLI exit     HTTP
//   ------------------------------     --------     -----------------------
//   complete result                    0            200
//   degraded result (healthy-block     3            206 + "partial" JSON
//     hits + PartialReport holes)
//   bad query / bad request            1 (2 usage)  400
//   archive missing                    1            404
//   block failure, degrade disabled    1            500
//   overload (admission control)       n/a          429 + Retry-After
//
// `--no-degrade` on the CLI and `?degrade=0` on POST /query are the same
// switch: the first failing block aborts the query (HTTP 500) instead of
// degrading to a 206.
//
// Federation: a served directory that contains a set_manifest.json is an
// ArchiveSet root (src/store/archive_set.h) — the service opens it as one
// warm federated handle and honors the `tenant=` / `from=` / `to=` request
// predicates, which prune whole shards before the scatter. A quarantined
// block or an unopenable shard degrades the federated answer to the same
// 206 + partial contract as above; shard-level holes are listed under
// "shard_failures" in the body.
#ifndef SRC_SERVER_ARCHIVE_SERVICE_H_
#define SRC_SERVER_ARCHIVE_SERVICE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "src/store/archive_set.h"
#include "src/store/log_archive.h"
#include "src/store/shard_router.h"

namespace loggrep {

struct ServiceOptions {
  // Base options for every archive the service opens (metrics registry,
  // storage env, cache budget, retry policy). Per-request deadline/degrade
  // overrides are applied on top, under the archive lock.
  ArchiveOptions archive;
  // Root directory archive names resolve under. A request's `archive`
  // parameter is a relative path below this root; "" or "." is the root
  // itself. Absolute paths and ".." components are rejected.
  std::string root;

  // Compaction policy applied to every ArchiveSet the service opens (the
  // admin POST /compact endpoint and any janitor the owner starts both use
  // it). Defaults are the store's defaults.
  CompactionPolicy compaction;

  // Structured event sink wired into every opened ArchiveSet (janitor step
  // failures, compaction merges — one JSON object per call). The daemon
  // routes this into its access log so set maintenance shares the request
  // log's transport. Called from janitor/compaction threads; must be
  // thread-safe and must outlive the service's handles.
  std::function<void(const std::string& json_line)> set_event_log;
};

struct ServiceRequest {
  std::string archive;   // relative to ServiceOptions::root
  std::string command;   // query command (§3 syntax)
  bool explain = false;  // run Explain() and include the decision tree
  bool degrade = true;   // false = fail on first block failure (HTTP 500)
  uint64_t deadline_ms = 0;  // per-query retry budget; 0 = server default

  // Federation predicates (HTTP `tenant=` / `from=` / `to=`), honored when
  // the resolved directory is an ArchiveSet root (it has a
  // set_manifest.json). Ignored for plain single-archive directories.
  std::string tenant;         // empty = all tenants
  uint64_t from_ns = 0;       // inclusive event-time lower bound
  uint64_t to_ns = UINT64_MAX;  // inclusive event-time upper bound
};

// Flat stats mirror for the access log: the JSON body already carries all
// of this, but the daemon's per-request telemetry must not pay a JSON
// re-parse per request to log it.
struct ServiceQueryStats {
  uint64_t hits = 0;
  uint64_t blocks_queried = 0;
  uint64_t blocks_from_cache = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t bytes_decompressed = 0;
  uint64_t prune_ns = 0;
  uint64_t open_ns = 0;
  uint64_t stamp_filter_ns = 0;
  uint64_t decompress_ns = 0;
  uint64_t scan_ns = 0;
  uint64_t reconstruct_ns = 0;
};

struct ServiceResponse {
  int http_status = 200;
  std::string body;  // JSON document (see RenderQueryJson)
  bool degraded = false;  // true on 206 (PartialReport in the body)
  ServiceQueryStats stats;  // zeros on error responses
  // Rendered explain fate tree; filled only when the request asked for
  // explain (the slow-query log re-runs with explain=true to capture it).
  std::string explain_render;
};

// Resolves `name` under `root`, rejecting absolute paths and any ".."
// component. Returns the joined path; empty string on rejection.
std::string ResolveArchivePath(const std::string& root, std::string_view name);

// Maps a failed query Status to the HTTP status in the table above.
int HttpStatusForQueryError(const Status& status);
// Maps an HTTP status back to the CLI exit-code contract (0 ok, 3 partial,
// 1 error) — used by `loggrep_cli remote-query` so scripting against the
// daemon and against local archives reads identically.
int ExitCodeForHttpStatus(int http_status);

class ArchiveService {
 public:
  explicit ArchiveService(ServiceOptions options);

  // Executes one query/explain request end-to-end and renders the JSON
  // response. Thread-safe; queries against the same archive serialize on
  // that archive's lock.
  ServiceResponse Run(const ServiceRequest& request);

  // Admin: runs one compaction pass over the named ArchiveSet with the
  // service's policy. 200 + report JSON on success, 400 when the target is
  // a plain (non-federated) archive, 404/500 as usual. The pass itself runs
  // *without* the handle's query lock — ArchiveSet::Compact is internally
  // safe against concurrent queries, and a long merge must not stall reads.
  ServiceResponse Compact(const std::string& archive);

  // Aggregate janitor/compaction state across every open ArchiveSet handle
  // (for /statusz and /metrics gauges).
  struct FederationSummary {
    size_t sets_open = 0;
    uint64_t janitor_passes = 0;
    uint64_t janitor_errors = 0;
    std::string janitor_last_error;  // most recent across sets; "" if none
    uint64_t compaction_merges = 0;
    uint64_t compaction_shards_merged = 0;
    uint64_t compaction_failures = 0;
  };
  FederationSummary federation_summary() const;

  // Number of archives currently held open (for /healthz and tests).
  size_t open_archives() const;

  // Drops every open handle (the daemon calls this on shutdown so archives
  // release their caches before the process exits).
  void Clear();

 private:
  // A handle is either a plain archive or a federated ArchiveSet — the
  // service sniffs set_manifest.json at open time. Exactly one of the two
  // pointers is set.
  struct Handle {
    std::mutex mu;  // serializes queries on this archive / set
    std::unique_ptr<LogArchive> archive;
    std::unique_ptr<ArchiveSet> set;
  };

  // Returns the open handle for `name`, opening (and caching) it on first
  // use. kNotFound when the directory has no manifest.
  Result<std::shared_ptr<Handle>> GetOrOpen(const std::string& name);

  ServiceResponse RunOnSet(const ServiceRequest& request, Handle* handle);

  ServiceOptions options_;
  mutable std::mutex mu_;  // guards handles_ (not the archives themselves)
  std::map<std::string, std::shared_ptr<Handle>> handles_;
};

}  // namespace loggrep

#endif  // SRC_SERVER_ARCHIVE_SERVICE_H_
