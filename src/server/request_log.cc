#include "src/server/request_log.h"

#include <unistd.h>

#include <chrono>
#include <utility>

#include "src/common/json.h"

namespace loggrep {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 2;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

// ---------------------------------------------------------------------------
// LogLineRing
// ---------------------------------------------------------------------------

LogLineRing::LogLineRing(size_t capacity)
    : cells_(RoundUpPow2(capacity < 2 ? 2 : capacity)),
      mask_(cells_.size() - 1) {
  for (size_t i = 0; i < cells_.size(); ++i) {
    cells_[i].seq.store(i, std::memory_order_relaxed);
  }
}

bool LogLineRing::TryPush(std::string&& line) {
  uint64_t pos = head_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells_[pos & mask_];
    const uint64_t seq = cell.seq.load(std::memory_order_acquire);
    const int64_t dif = static_cast<int64_t>(seq) - static_cast<int64_t>(pos);
    if (dif == 0) {
      if (head_.compare_exchange_weak(pos, pos + 1,
                                      std::memory_order_relaxed)) {
        cell.line = std::move(line);
        cell.seq.store(pos + 1, std::memory_order_release);
        return true;
      }
      // CAS refreshed `pos`; retry with the new claim point.
    } else if (dif < 0) {
      return false;  // full: the consumer has not recycled this cell yet
    } else {
      pos = head_.load(std::memory_order_relaxed);
    }
  }
}

bool LogLineRing::TryPop(std::string* out) {
  uint64_t pos = tail_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells_[pos & mask_];
    const uint64_t seq = cell.seq.load(std::memory_order_acquire);
    const int64_t dif =
        static_cast<int64_t>(seq) - static_cast<int64_t>(pos + 1);
    if (dif == 0) {
      if (tail_.compare_exchange_weak(pos, pos + 1,
                                      std::memory_order_relaxed)) {
        *out = std::move(cell.line);
        cell.line.clear();
        cell.seq.store(pos + cells_.size(), std::memory_order_release);
        return true;
      }
    } else if (dif < 0) {
      return false;  // empty
    } else {
      pos = tail_.load(std::memory_order_relaxed);
    }
  }
}

// ---------------------------------------------------------------------------
// AccessLog
// ---------------------------------------------------------------------------

AccessLog::AccessLog(AccessLogOptions options)
    : options_(std::move(options)), ring_(options_.ring_capacity) {
  if (!options_.path.empty()) {
    file_ = std::fopen(options_.path.c_str(), "a");
    // A path that cannot be opened degrades to sink-only (counted lines
    // still flow); the daemon reports the failure at startup.
  }
  flusher_ = std::thread([this] { FlusherLoop(); });
}

AccessLog::~AccessLog() {
  stopping_.store(true, std::memory_order_release);
  if (flusher_.joinable()) {
    flusher_.join();
  }
  DrainOnce();  // final drain after the flusher stopped
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

void AccessLog::Write(std::string&& line) {
  line.push_back('\n');
  if (ring_.TryPush(std::move(line))) {
    written_.fetch_add(1, std::memory_order_relaxed);
  } else {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

size_t AccessLog::DrainOnce() {
  size_t drained = 0;
  std::string line;
  while (ring_.TryPop(&line)) {
    if (file_ != nullptr) {
      std::fwrite(line.data(), 1, line.size(), file_);
    }
    if (options_.sink) {
      options_.sink(line);
    }
    ++drained;
  }
  if (drained > 0 && file_ != nullptr) {
    std::fflush(file_);
  }
  flushed_.fetch_add(drained, std::memory_order_release);
  return drained;
}

void AccessLog::FlusherLoop() {
  const auto interval = std::chrono::milliseconds(
      options_.flush_interval_ms == 0 ? 1 : options_.flush_interval_ms);
  while (!stopping_.load(std::memory_order_acquire)) {
    DrainOnce();
    std::this_thread::sleep_for(interval);
  }
}

void AccessLog::Flush() {
  const uint64_t target = written_.load(std::memory_order_acquire);
  while (flushed_.load(std::memory_order_acquire) < target &&
         !stopping_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// ---------------------------------------------------------------------------
// SlowQueryLog
// ---------------------------------------------------------------------------

std::string SlowQueryEntry::ToJson() const {
  std::string out("{\"ts_ms\":");
  out.append(std::to_string(ts_ms));
  out.append(",\"rid\":");
  AppendJsonString(&out, request_id);
  // As a string: rid64 spans the full uint64 range, and JSON consumers that
  // parse numbers as doubles would silently round ids above 2^53.
  out.append(",\"rid64\":\"");
  out.append(std::to_string(rid64));
  out.push_back('"');
  out.append(",\"archive\":");
  AppendJsonString(&out, archive);
  out.append(",\"command\":");
  AppendJsonString(&out, command);
  out.append(",\"dur_ns\":");
  out.append(std::to_string(dur_ns));
  out.append(",\"status\":");
  out.append(std::to_string(status));
  out.append(",\"explain\":");
  AppendJsonString(&out, explain_render);
  out.push_back('}');
  return out;
}

void SlowQueryLog::Record(SlowQueryEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  ++captured_;
  entries_.push_back(std::move(entry));
  while (entries_.size() > capacity_) {
    entries_.pop_front();
  }
}

std::vector<SlowQueryEntry> SlowQueryLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {entries_.rbegin(), entries_.rend()};
}

std::string SlowQueryLog::RenderJson(uint64_t threshold_ns) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out("{\"threshold_ns\":");
  out.append(std::to_string(threshold_ns));
  out.append(",\"captured\":");
  out.append(std::to_string(captured_));
  out.append(",\"entries\":[");
  bool first = true;
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    out.append(it->ToJson());
  }
  out.append("]}");
  return out;
}

uint64_t SlowQueryLog::captured() const {
  std::lock_guard<std::mutex> lock(mu_);
  return captured_;
}

// ---------------------------------------------------------------------------
// Request ids
// ---------------------------------------------------------------------------

uint64_t RequestIdHash(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string GenerateRequestId() {
  // splitmix64 over (per-process random base + counter): unique in-process,
  // different across runs, no coordination.
  static const uint64_t base = [] {
    const uint64_t t = static_cast<uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    return t ^ (static_cast<uint64_t>(::getpid()) << 32);
  }();
  static std::atomic<uint64_t> counter{0};
  uint64_t z = base + 0x9e3779b97f4a7c15ull *
                          (counter.fetch_add(1, std::memory_order_relaxed) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(z));
  return buf;
}

}  // namespace loggrep
