// Minimal HTTP/1.1 message layer for loggrepd: an *incremental* request
// parser plus a response serializer, over plain byte buffers (no sockets in
// here, so the whole layer is unit- and fuzz-testable without I/O).
//
// Scope is deliberately small — exactly what a query daemon needs:
//   * request line + headers + Content-Length bodies (no chunked encoding,
//     no multipart, no trailers; a chunked request is answered 501 by the
//     daemon, not parsed here),
//   * percent-decoded target split into path + query parameters,
//   * keep-alive semantics (HTTP/1.1 default on, "Connection: close" off),
//   * hard limits on every dimension (request line, header count/bytes,
//     body bytes) so a hostile peer can make the parser fail, never grow.
//
// The parser is a push-style state machine: feed it bytes as they arrive;
// it consumes at most one full request per Feed loop and reports
// kNeedMore / kDone / kError. Pipelined requests are handled by the caller
// re-feeding the unconsumed tail (Feed returns bytes consumed). Malformed
// input of any shape yields kError with an HTTP status code to answer with
// — never a crash — which the fuzz_http target enforces.
#ifndef SRC_SERVER_HTTP_H_
#define SRC_SERVER_HTTP_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace loggrep {

struct HttpLimits {
  size_t max_request_line_bytes = 8 * 1024;
  size_t max_header_bytes = 64 * 1024;  // all header lines together
  size_t max_headers = 100;
  size_t max_body_bytes = 4 * 1024 * 1024;
};

struct HttpRequest {
  std::string method;   // "GET", "POST", ... (verbatim, case-sensitive)
  std::string target;   // raw request target ("/query?archive=a%2Fb")
  std::string path;     // decoded path ("/query")
  std::map<std::string, std::string> params;  // decoded query parameters
  int version_minor = 1;  // HTTP/1.<minor>; only 0 and 1 are accepted
  // Header names lowercased; values trimmed. Duplicate names keep the last
  // value (sufficient for this API; no header here is list-valued).
  std::map<std::string, std::string> headers;
  std::string body;

  // Keep-alive decision per HTTP/1.1 (default on) / 1.0 (default off),
  // honoring an explicit Connection header either way.
  bool KeepAlive() const;
  // Lowercased header lookup; empty string when absent.
  std::string_view Header(std::string_view name) const;
};

// Percent-decodes `in` ('+' becomes space when `plus_is_space`). Invalid
// %-sequences are kept verbatim rather than rejected: a query command like
// "100%" must survive a sloppy client.
std::string UrlDecode(std::string_view in, bool plus_is_space = true);
// Percent-encodes everything outside [A-Za-z0-9-._~].
std::string UrlEncode(std::string_view in);

// Splits "path?k=v&k2=v2" into decoded path + params.
void SplitTarget(std::string_view target, std::string* path,
                 std::map<std::string, std::string>* params);

class HttpRequestParser {
 public:
  enum class State {
    kNeedMore,  // feed more bytes
    kDone,      // one complete request parsed; request() is valid
    kError,     // irrecoverable; error_status()/error() say why
  };

  explicit HttpRequestParser(HttpLimits limits = {}) : limits_(limits) {}

  // Consumes bytes from `data`, returning how many were used. Stops
  // consuming once a full request is parsed (state() == kDone), so the
  // caller can hand the remainder to a fresh parser for the next pipelined
  // request. After kError the parser consumes nothing further.
  size_t Feed(std::string_view data);

  State state() const { return state_; }
  const HttpRequest& request() const { return request_; }
  // HTTP status to answer a malformed request with (400, 413, 431, 501...).
  int error_status() const { return error_status_; }
  const std::string& error() const { return error_; }

  // Resets to parse the next request on the same connection.
  void Reset();

 private:
  enum class Phase { kRequestLine, kHeaders, kBody };

  void Fail(int http_status, std::string message);
  bool FinishRequestLine(std::string_view line);
  bool FinishHeaderLine(std::string_view line);
  // Called once headers are complete; validates framing (Content-Length vs
  // Transfer-Encoding) and transitions to kBody or kDone.
  void BeginBody();

  HttpLimits limits_;
  State state_ = State::kNeedMore;
  Phase phase_ = Phase::kRequestLine;
  std::string line_buffer_;   // current (partial) request/header line
  size_t header_bytes_ = 0;   // running total across header lines
  size_t body_wanted_ = 0;    // Content-Length remaining
  HttpRequest request_;
  int error_status_ = 0;
  std::string error_;
};

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

struct HttpResponse {
  int status = 200;
  // Extra headers beyond the always-emitted Content-Length / Content-Type /
  // Connection (e.g. {"Retry-After", "1"}).
  std::vector<std::pair<std::string, std::string>> headers;
  std::string content_type = "application/json";
  std::string body;
};

const char* HttpStatusReason(int status);

// Serializes status line + headers + body. `keep_alive` controls the
// Connection header (the daemon closes after errors and during drain).
std::string SerializeResponse(const HttpResponse& response, bool keep_alive);

// Parses a complete serialized response (the blocking client's half).
// `data` must contain the full head; returns false on malformed bytes or a
// body longer than `limits.max_body_bytes`.
struct ParsedResponse {
  int status = 0;
  std::map<std::string, std::string> headers;  // lowercased names
  std::string body;
};
bool ParseResponseBytes(std::string_view data, ParsedResponse* out,
                        size_t* consumed, const HttpLimits& limits = {});

}  // namespace loggrep

#endif  // SRC_SERVER_HTTP_H_
