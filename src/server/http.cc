#include "src/server/http.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace loggrep {

namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

bool TokenChar(char c) {
  // RFC 7230 tchar.
  if (std::isalnum(static_cast<unsigned char>(c))) return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

}  // namespace

bool HttpRequest::KeepAlive() const {
  const std::string_view connection = Header("connection");
  const std::string lowered = ToLower(connection);
  if (lowered.find("close") != std::string::npos) {
    return false;
  }
  if (version_minor == 0) {
    return lowered.find("keep-alive") != std::string::npos;
  }
  return true;
}

std::string_view HttpRequest::Header(std::string_view name) const {
  const auto it = headers.find(ToLower(name));
  return it == headers.end() ? std::string_view() : std::string_view(it->second);
}

std::string UrlDecode(std::string_view in, bool plus_is_space) {
  std::string out;
  out.reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    if (c == '+' && plus_is_space) {
      out.push_back(' ');
    } else if (c == '%' && i + 2 < in.size()) {
      const int hi = HexDigit(in[i + 1]);
      const int lo = HexDigit(in[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>((hi << 4) | lo));
        i += 2;
      } else {
        out.push_back(c);
      }
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string UrlEncode(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '.' ||
        c == '_' || c == '~') {
      out.push_back(c);
    } else {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out.append(buf);
    }
  }
  return out;
}

void SplitTarget(std::string_view target, std::string* path,
                 std::map<std::string, std::string>* params) {
  params->clear();
  const size_t q = target.find('?');
  // The path portion decodes '+' literally (a '+' in a path is a plus).
  *path = UrlDecode(target.substr(0, q), /*plus_is_space=*/false);
  if (q == std::string_view::npos) {
    return;
  }
  std::string_view query = target.substr(q + 1);
  while (!query.empty()) {
    const size_t amp = query.find('&');
    const std::string_view pair = query.substr(0, amp);
    if (!pair.empty()) {
      const size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        (*params)[UrlDecode(pair)] = "";
      } else {
        (*params)[UrlDecode(pair.substr(0, eq))] = UrlDecode(pair.substr(eq + 1));
      }
    }
    if (amp == std::string_view::npos) {
      break;
    }
    query.remove_prefix(amp + 1);
  }
}

// ---------------------------------------------------------------------------
// HttpRequestParser
// ---------------------------------------------------------------------------

void HttpRequestParser::Fail(int http_status, std::string message) {
  state_ = State::kError;
  error_status_ = http_status;
  error_ = std::move(message);
}

size_t HttpRequestParser::Feed(std::string_view data) {
  size_t consumed = 0;
  while (consumed < data.size() && state_ == State::kNeedMore) {
    if (phase_ == Phase::kBody) {
      const size_t take = std::min(body_wanted_, data.size() - consumed);
      request_.body.append(data.data() + consumed, take);
      consumed += take;
      body_wanted_ -= take;
      if (body_wanted_ == 0) {
        state_ = State::kDone;
      }
      continue;
    }
    // Line phases: accumulate until '\n' (tolerating bare-LF line ends).
    const size_t nl = data.find('\n', consumed);
    const size_t take =
        (nl == std::string_view::npos ? data.size() : nl + 1) - consumed;
    line_buffer_.append(data.data() + consumed, take);
    consumed += take;

    const size_t limit = phase_ == Phase::kRequestLine
                             ? limits_.max_request_line_bytes
                             : limits_.max_header_bytes;
    if (line_buffer_.size() > limit) {
      Fail(phase_ == Phase::kRequestLine ? 414 : 431,
           phase_ == Phase::kRequestLine ? "request line too long"
                                         : "header line too long");
      break;
    }
    if (line_buffer_.empty() || line_buffer_.back() != '\n') {
      continue;  // partial line; wait for more bytes
    }
    std::string_view line = line_buffer_;
    line.remove_suffix(1);
    if (!line.empty() && line.back() == '\r') {
      line.remove_suffix(1);
    }
    bool ok = true;
    if (phase_ == Phase::kRequestLine) {
      // RFC 7230 allows (and robust servers skip) empty lines before the
      // request line — a client's stray CRLF after a previous body.
      if (!line.empty()) {
        ok = FinishRequestLine(line);
      }
    } else {
      ok = FinishHeaderLine(line);
    }
    line_buffer_.clear();
    if (!ok) {
      break;
    }
  }
  return consumed;
}

bool HttpRequestParser::FinishRequestLine(std::string_view line) {
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string_view::npos
                         ? std::string_view::npos
                         : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    Fail(400, "malformed request line");
    return false;
  }
  const std::string_view method = line.substr(0, sp1);
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = line.substr(sp2 + 1);
  if (method.empty() ||
      !std::all_of(method.begin(), method.end(), TokenChar)) {
    Fail(400, "malformed method");
    return false;
  }
  if (target.empty() || target[0] != '/') {
    Fail(400, "request target must be origin-form");
    return false;
  }
  if (version == "HTTP/1.1") {
    request_.version_minor = 1;
  } else if (version == "HTTP/1.0") {
    request_.version_minor = 0;
  } else {
    Fail(505, "unsupported HTTP version");
    return false;
  }
  request_.method.assign(method);
  request_.target.assign(target);
  SplitTarget(target, &request_.path, &request_.params);
  phase_ = Phase::kHeaders;
  return true;
}

bool HttpRequestParser::FinishHeaderLine(std::string_view line) {
  if (line.empty()) {
    BeginBody();
    return state_ != State::kError;
  }
  header_bytes_ += line.size();
  if (header_bytes_ > limits_.max_header_bytes) {
    Fail(431, "headers too large");
    return false;
  }
  if (request_.headers.size() >= limits_.max_headers) {
    Fail(431, "too many headers");
    return false;
  }
  if (line.front() == ' ' || line.front() == '\t') {
    // Obsolete line folding: deprecated by RFC 7230 and a classic smuggling
    // vector; reject instead of guessing.
    Fail(400, "obsolete header folding");
    return false;
  }
  const size_t colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) {
    Fail(400, "malformed header line");
    return false;
  }
  const std::string_view name = line.substr(0, colon);
  if (!std::all_of(name.begin(), name.end(), TokenChar)) {
    Fail(400, "malformed header name");
    return false;
  }
  request_.headers[ToLower(name)] = std::string(Trim(line.substr(colon + 1)));
  return true;
}

void HttpRequestParser::BeginBody() {
  if (!request_.Header("transfer-encoding").empty()) {
    Fail(501, "transfer-encoding not supported");
    return;
  }
  const std::string_view length = request_.Header("content-length");
  if (length.empty()) {
    state_ = State::kDone;
    return;
  }
  if (length.size() > 12 ||
      !std::all_of(length.begin(), length.end(), [](char c) {
        return std::isdigit(static_cast<unsigned char>(c));
      })) {
    Fail(400, "malformed content-length");
    return;
  }
  const unsigned long long wanted = std::strtoull(
      std::string(length).c_str(), nullptr, 10);
  if (wanted > limits_.max_body_bytes) {
    Fail(413, "body too large");
    return;
  }
  body_wanted_ = static_cast<size_t>(wanted);
  if (body_wanted_ == 0) {
    state_ = State::kDone;
  } else {
    request_.body.reserve(body_wanted_);
    phase_ = Phase::kBody;
  }
}

void HttpRequestParser::Reset() {
  state_ = State::kNeedMore;
  phase_ = Phase::kRequestLine;
  line_buffer_.clear();
  header_bytes_ = 0;
  body_wanted_ = 0;
  request_ = HttpRequest();
  error_status_ = 0;
  error_.clear();
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

const char* HttpStatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 206: return "Partial Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 414: return "URI Too Long";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string SerializeResponse(const HttpResponse& response, bool keep_alive) {
  std::string out;
  out.reserve(response.body.size() + 256);
  char head[64];
  std::snprintf(head, sizeof(head), "HTTP/1.1 %d %s\r\n", response.status,
                HttpStatusReason(response.status));
  out.append(head);
  out.append("Content-Type: ").append(response.content_type).append("\r\n");
  char length[48];
  std::snprintf(length, sizeof(length), "Content-Length: %zu\r\n",
                response.body.size());
  out.append(length);
  out.append(keep_alive ? "Connection: keep-alive\r\n"
                        : "Connection: close\r\n");
  for (const auto& [name, value] : response.headers) {
    out.append(name).append(": ").append(value).append("\r\n");
  }
  out.append("\r\n");
  out.append(response.body);
  return out;
}

bool ParseResponseBytes(std::string_view data, ParsedResponse* out,
                        size_t* consumed, const HttpLimits& limits) {
  *out = ParsedResponse();
  *consumed = 0;
  const size_t head_end = data.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    return false;
  }
  const std::string_view head = data.substr(0, head_end);
  const size_t line_end = head.find("\r\n");
  const std::string_view status_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  if (status_line.size() < 12 || status_line.substr(0, 5) != "HTTP/") {
    return false;
  }
  const size_t sp = status_line.find(' ');
  if (sp == std::string_view::npos || sp + 4 > status_line.size()) {
    return false;
  }
  out->status = std::atoi(std::string(status_line.substr(sp + 1, 3)).c_str());
  if (out->status < 100 || out->status > 599) {
    return false;
  }
  std::string_view rest = line_end == std::string_view::npos
                              ? std::string_view()
                              : head.substr(line_end + 2);
  while (!rest.empty()) {
    const size_t nl = rest.find("\r\n");
    const std::string_view line =
        nl == std::string_view::npos ? rest : rest.substr(0, nl);
    const size_t colon = line.find(':');
    if (colon != std::string_view::npos && colon > 0) {
      out->headers[ToLower(line.substr(0, colon))] =
          std::string(Trim(line.substr(colon + 1)));
    }
    if (nl == std::string_view::npos) {
      break;
    }
    rest.remove_prefix(nl + 2);
  }
  size_t body_len = 0;
  const auto it = out->headers.find("content-length");
  if (it != out->headers.end()) {
    body_len = static_cast<size_t>(std::strtoull(it->second.c_str(), nullptr, 10));
  }
  if (body_len > limits.max_body_bytes) {
    return false;
  }
  const size_t body_start = head_end + 4;
  if (data.size() < body_start + body_len) {
    return false;  // caller reads more and retries
  }
  out->body.assign(data.substr(body_start, body_len));
  *consumed = body_start + body_len;
  return true;
}

}  // namespace loggrep
