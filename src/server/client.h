// Blocking HTTP client for loggrepd — the test/bench/CLI counterpart of the
// daemon. One DaemonClient wraps one keep-alive connection (reconnecting
// transparently when the server closed it) and speaks exactly the daemon's
// API: Query/Explain return parsed hits plus the HTTP status so callers can
// assert the 200/206/4xx contract, and Get() fetches raw endpoints
// (/healthz, /metrics).
//
// Not thread-safe: one client per thread, matching how the bench and the
// concurrency tests drive it (N clients == N threads == N connections).
#ifndef SRC_SERVER_CLIENT_H_
#define SRC_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/result.h"
#include "src/query/query_cache.h"  // QueryHits
#include "src/server/http.h"

namespace loggrep {

struct RemoteQueryOptions {
  bool degrade = true;
  uint64_t deadline_ms = 0;
  bool use_post = true;  // POST body vs GET ?q=
  // Federation predicates, forwarded as tenant= / from= / to= — honored
  // when the served directory is an ArchiveSet root, ignored otherwise.
  std::string tenant;
  uint64_t from_ns = 0;
  uint64_t to_ns = UINT64_MAX;
  // Sent as the X-Request-Id header so the daemon's access log, slow-query
  // log, and trace spans join against this caller's id. "" = let the daemon
  // mint one (echoed back in RemoteQueryResult::request_id either way).
  std::string request_id;
};

struct RemoteQueryResult {
  int http_status = 0;
  std::string request_id;     // X-Request-Id the daemon echoed
  bool complete = true;       // JSON "complete" field
  QueryHits hits;             // parsed from the JSON body
  uint64_t lines_missing = 0; // from "partial" when degraded
  uint64_t cache_hits = 0;    // from "stats" (warm-path assertions)
  uint64_t bytes_decompressed = 0;
  uint64_t blocks_queried = 0;
  uint64_t blocks_from_cache = 0;  // blocks answered from the command cache
  std::string error;          // server "error" field on 4xx/5xx
  std::string body;           // raw JSON (explain render, extra fields)

  bool ok() const { return http_status == 200 || http_status == 206; }
};

class DaemonClient {
 public:
  DaemonClient(std::string host, uint16_t port);
  ~DaemonClient();

  DaemonClient(const DaemonClient&) = delete;
  DaemonClient& operator=(const DaemonClient&) = delete;

  // Runs one query (or explain) and parses the response. A transport
  // failure (connect/send/recv) is a non-ok Result; an HTTP error status is
  // an *ok* Result carrying that status — the contract under test.
  Result<RemoteQueryResult> Query(std::string_view archive,
                                  std::string_view command,
                                  const RemoteQueryOptions& options = {});
  Result<RemoteQueryResult> Explain(std::string_view archive,
                                    std::string_view command,
                                    const RemoteQueryOptions& options = {});

  // Raw GET; returns status + body.
  Result<ParsedResponse> Get(std::string_view path);

  // Closes the connection (next call reconnects).
  void Disconnect();

 private:
  Result<ParsedResponse> RoundTrip(std::string_view request_bytes);
  Status EnsureConnected();
  Result<RemoteQueryResult> RunQueryRequest(std::string_view archive,
                                            std::string_view command,
                                            const RemoteQueryOptions& options,
                                            bool explain);

  std::string host_;
  uint16_t port_;
  int fd_ = -1;
};

// Parses a /query or /explain JSON body into the structured result (exposed
// for tests that craft responses directly).
Status ParseRemoteQueryBody(std::string_view body, RemoteQueryResult* out);

}  // namespace loggrep

#endif  // SRC_SERVER_CLIENT_H_
