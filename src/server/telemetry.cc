#include "src/server/telemetry.h"

#include <cinttypes>
#include <cstdio>

#include "src/common/build_info.h"
#include "src/common/metrics_export.h"
#include "src/common/simd.h"

namespace loggrep {

ServerTelemetry::ServerTelemetry(TelemetryOptions options)
    : options_(options),
      latency_(options_.num_windows, options_.window_ns),
      requests_(options_.num_windows, options_.window_ns),
      errors_5xx_(options_.num_windows, options_.window_ns),
      shed_429_(options_.num_windows, options_.window_ns),
      degraded_206_(options_.num_windows, options_.window_ns),
      over_latency_slo_(options_.num_windows, options_.window_ns) {}

void ServerTelemetry::RecordRequest(int status, uint64_t latency_ns,
                                    uint64_t now_ns) {
  requests_.Increment(now_ns);
  latency_.Record(latency_ns, now_ns);
  if (status >= 500) {
    errors_5xx_.Increment(now_ns);
  }
  if (status == 429) {
    shed_429_.Increment(now_ns);
  }
  if (status == 206) {
    degraded_206_.Increment(now_ns);
  }
  if (latency_ns > options_.latency_slo_ns) {
    over_latency_slo_.Increment(now_ns);
  }
}

WindowedStats ServerTelemetry::Compute(uint64_t now_ns) const {
  WindowedStats stats;
  stats.requests = requests_.WindowedSum(now_ns);
  const HistogramSnapshot lat = latency_.WindowedSnapshot(now_ns);
  stats.p50_ns = lat.p50();
  stats.p99_ns = lat.p99();
  stats.p999_ns = lat.p999();
  if (stats.requests == 0) {
    return stats;
  }
  const double n = static_cast<double>(stats.requests);
  stats.error_rate =
      static_cast<double>(errors_5xx_.WindowedSum(now_ns)) / n;
  stats.shed_rate = static_cast<double>(shed_429_.WindowedSum(now_ns)) / n;
  stats.degraded_rate =
      static_cast<double>(degraded_206_.WindowedSum(now_ns)) / n;
  stats.over_latency_slo_rate =
      static_cast<double>(over_latency_slo_.WindowedSum(now_ns)) / n;
  const double availability_budget = 1.0 - options_.availability_slo;
  if (availability_budget > 0) {
    stats.availability_burn_rate = stats.error_rate / availability_budget;
  }
  const double latency_budget = 1.0 - options_.latency_slo_quantile;
  if (latency_budget > 0) {
    stats.latency_burn_rate = stats.over_latency_slo_rate / latency_budget;
  }
  return stats;
}

void ServerTelemetry::AppendWindowedMetrics(std::string* out,
                                            uint64_t now_ns) const {
  const WindowedStats stats = Compute(now_ns);
  AppendPrometheusGauge(out, "loggrep_window_requests",
                        static_cast<double>(stats.requests));
  AppendPrometheusGauge(out, "loggrep_window_request_p50_ns",
                        static_cast<double>(stats.p50_ns));
  AppendPrometheusGauge(out, "loggrep_window_request_p99_ns",
                        static_cast<double>(stats.p99_ns));
  AppendPrometheusGauge(out, "loggrep_window_request_p999_ns",
                        static_cast<double>(stats.p999_ns));
  AppendPrometheusGauge(out, "loggrep_window_error_rate", stats.error_rate);
  AppendPrometheusGauge(out, "loggrep_window_shed_rate", stats.shed_rate);
  AppendPrometheusGauge(out, "loggrep_window_degraded_rate",
                        stats.degraded_rate);
  AppendPrometheusGauge(out, "loggrep_slo_availability_burn_rate",
                        stats.availability_burn_rate);
  AppendPrometheusGauge(out, "loggrep_slo_latency_burn_rate",
                        stats.latency_burn_rate);
}

std::string RenderStatusz(const ServerTelemetry& telemetry,
                          const StatuszInfo& info, uint64_t now_ns) {
  const WindowedStats stats = telemetry.Compute(now_ns);
  const TelemetryOptions& opts = telemetry.options();
  const double horizon_s =
      static_cast<double>(opts.window_ns) * opts.num_windows / 1e9;
  char buf[1536];
  std::snprintf(
      buf, sizeof(buf),
      "loggrepd statusz\n"
      "================\n"
      "version     %s (git %s, simd %s)\n"
      "uptime      %.1f s\n"
      "\n"
      "archive pool\n"
      "  archives_open      %zu\n"
      "  inflight_queries   %zu / %zu\n"
      "\n"
      "totals since boot\n"
      "  requests           %" PRIu64 "\n"
      "  admission_rejects  %" PRIu64 "\n"
      "  degraded_responses %" PRIu64 "\n"
      "  access_log         %" PRIu64 " written, %" PRIu64 " dropped\n"
      "  slow_queries       %" PRIu64 " captured (threshold %.1f ms)\n"
      "\n"
      "rolling window (last %.0f s)\n"
      "  requests           %" PRIu64 "\n"
      "  latency p50        %.3f ms\n"
      "  latency p99        %.3f ms\n"
      "  latency p999       %.3f ms\n"
      "  error_rate         %.4f\n"
      "  shed_rate          %.4f\n"
      "  degraded_rate      %.4f\n"
      "\n"
      "slo burn (budget-normalized; >1 = violating)\n"
      "  availability (%.3f%%)    %.3f\n"
      "  latency (p%g < %.0f ms)  %.3f\n",
      BuildVersion(), BuildGitSha(), SimdTierName(ActiveSimdTier()),
      static_cast<double>(info.uptime_ns) / 1e9, info.archives_open,
      info.inflight_queries, info.max_inflight_queries, info.requests_total,
      info.admission_rejects_total, info.degraded_total,
      info.access_log_written, info.access_log_dropped,
      info.slow_queries_captured,
      static_cast<double>(info.slow_threshold_ns) / 1e6, horizon_s,
      stats.requests, static_cast<double>(stats.p50_ns) / 1e6,
      static_cast<double>(stats.p99_ns) / 1e6,
      static_cast<double>(stats.p999_ns) / 1e6, stats.error_rate,
      stats.shed_rate, stats.degraded_rate, opts.availability_slo * 100.0,
      stats.availability_burn_rate, opts.latency_slo_quantile * 100.0,
      static_cast<double>(opts.latency_slo_ns) / 1e6,
      stats.latency_burn_rate);
  std::string page(buf);
  if (info.sets_open > 0) {
    char fed[512];
    std::snprintf(fed, sizeof(fed),
                  "\n"
                  "federation maintenance (%zu set(s) open)\n"
                  "  janitor            %" PRIu64 " passes, %" PRIu64
                  " errors\n"
                  "  compaction         %" PRIu64 " merges (%" PRIu64
                  " shards merged), %" PRIu64 " failures\n",
                  info.sets_open, info.janitor_passes, info.janitor_errors,
                  info.compaction_merges, info.compaction_shards_merged,
                  info.compaction_failures);
    page.append(fed);
    if (!info.janitor_last_error.empty()) {
      page.append("  janitor_last_error ");
      page.append(info.janitor_last_error);
      page.push_back('\n');
    }
  }
  return page;
}

}  // namespace loggrep
