// Service-level telemetry for loggrepd: rolling-window latency/error/shed/
// degraded tracking, SLO burn-rate gauges, and the /statusz rendering.
//
// The cumulative registry (PR 3) answers "what happened since boot"; this
// layer answers "is the service healthy *right now*": every request is
// recorded into RollingHistogram/RollingCounter rings (src/common), and the
// merged view over the ring's horizon feeds
//   * windowed p50/p99/p999 + error/shed/degraded-rate gauges on /metrics,
//   * SLO burn rates — the ratio of the observed bad-event rate to the
//     rate the SLO budget allows (burn 1.0 = exactly consuming the budget;
//     >1 = on track to violate; the standard multi-window alerting input):
//       availability burn = (5xx fraction)           / (1 - availability_slo)
//       latency burn      = (fraction over slo_ns)   / (1 - latency_slo_quantile)
//   * the human-readable GET /statusz page.
//
// All clocking is explicit nanoseconds from the caller (the daemon passes
// Tracer::Global().NowNanos(); tests pass a virtual clock).
#ifndef SRC_SERVER_TELEMETRY_H_
#define SRC_SERVER_TELEMETRY_H_

#include <cstdint>
#include <string>

#include "src/common/rolling_histogram.h"

namespace loggrep {

struct TelemetryOptions {
  // Rolling ring geometry: `num_windows` windows of `window_ns` each.
  // Default: 30 windows x 2 s = a one-minute rolling horizon with 2 s
  // rotation granularity.
  uint64_t window_ns = 2'000'000'000ull;
  size_t num_windows = 30;

  // Latency SLO: `latency_slo_quantile` of requests must finish within
  // `latency_slo_ns`.
  uint64_t latency_slo_ns = 250'000'000ull;  // 250 ms
  double latency_slo_quantile = 0.99;

  // Availability SLO: fraction of requests that must not be 5xx.
  double availability_slo = 0.999;
};

// Point-in-time windowed view (all rates in [0,1]).
struct WindowedStats {
  uint64_t requests = 0;
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t p999_ns = 0;
  double error_rate = 0;     // 5xx / requests
  double shed_rate = 0;      // 429 / requests
  double degraded_rate = 0;  // 206 / requests
  double over_latency_slo_rate = 0;
  double availability_burn_rate = 0;
  double latency_burn_rate = 0;
};

class ServerTelemetry {
 public:
  explicit ServerTelemetry(TelemetryOptions options);

  // Records one finished request. `status` is the HTTP status sent;
  // `latency_ns` covers parse-to-serialize. Lock-free.
  void RecordRequest(int status, uint64_t latency_ns, uint64_t now_ns);

  WindowedStats Compute(uint64_t now_ns) const;

  // Appends the windowed gauges in Prometheus exposition format
  // (loggrep_window_* / loggrep_slo_*). Values are computed at `now_ns`.
  void AppendWindowedMetrics(std::string* out, uint64_t now_ns) const;

  const TelemetryOptions& options() const { return options_; }

 private:
  TelemetryOptions options_;
  RollingHistogram latency_;
  RollingCounter requests_;
  RollingCounter errors_5xx_;
  RollingCounter shed_429_;
  RollingCounter degraded_206_;
  RollingCounter over_latency_slo_;
};

// Everything /statusz shows beyond the windowed stats; the daemon fills
// this from its own gauges before rendering.
struct StatuszInfo {
  uint64_t uptime_ns = 0;
  size_t archives_open = 0;
  size_t inflight_queries = 0;
  size_t max_inflight_queries = 0;
  uint64_t requests_total = 0;
  uint64_t admission_rejects_total = 0;
  uint64_t degraded_total = 0;
  uint64_t access_log_written = 0;
  uint64_t access_log_dropped = 0;
  uint64_t slow_queries_captured = 0;
  uint64_t slow_threshold_ns = 0;
  // Federation maintenance (aggregated across open ArchiveSet handles).
  size_t sets_open = 0;
  uint64_t janitor_passes = 0;
  uint64_t janitor_errors = 0;
  std::string janitor_last_error;  // "" when no janitor step has failed
  uint64_t compaction_merges = 0;
  uint64_t compaction_shards_merged = 0;
  uint64_t compaction_failures = 0;
};

// Plain-text /statusz page (uptime, build identity, archive pool state,
// admission/shed counters, window percentiles + SLO burn).
std::string RenderStatusz(const ServerTelemetry& telemetry,
                          const StatuszInfo& info, uint64_t now_ns);

}  // namespace loggrep

#endif  // SRC_SERVER_TELEMETRY_H_
