#include "src/server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/common/json.h"

namespace loggrep {

namespace {

bool SendAll(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t sent = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    data.remove_prefix(static_cast<size_t>(sent));
  }
  return true;
}

}  // namespace

DaemonClient::DaemonClient(std::string host, uint16_t port)
    : host_(std::move(host)), port_(port) {}

DaemonClient::~DaemonClient() { Disconnect(); }

void DaemonClient::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status DaemonClient::EnsureConnected() {
  if (fd_ >= 0) {
    return OkStatus();
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return InvalidArgument("bad daemon address: " + host_);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Unavailable("connect " + host_ + ":" + std::to_string(port_) +
                       ": " + err);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return OkStatus();
}

Result<ParsedResponse> DaemonClient::RoundTrip(std::string_view request_bytes) {
  // One transparent reconnect: the server may have closed an idle
  // keep-alive connection between calls.
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (Status s = EnsureConnected(); !s.ok()) {
      return s;
    }
    if (!SendAll(fd_, request_bytes)) {
      Disconnect();
      continue;
    }
    std::string data;
    char buf[16 * 1024];
    ParsedResponse response;
    size_t consumed = 0;
    while (true) {
      if (ParseResponseBytes(data, &response, &consumed)) {
        const auto connection = response.headers.find("connection");
        if (connection != response.headers.end() &&
            connection->second.find("close") != std::string::npos) {
          Disconnect();
        }
        return response;
      }
      const ssize_t got = ::recv(fd_, buf, sizeof(buf), 0);
      if (got <= 0) {
        Disconnect();
        break;  // retry once from a fresh connection
      }
      data.append(buf, static_cast<size_t>(got));
      if (data.size() > HttpLimits().max_body_bytes + 64 * 1024) {
        Disconnect();
        return IOError("daemon response exceeds client body limit");
      }
    }
  }
  return Unavailable("daemon connection failed twice");
}

Result<ParsedResponse> DaemonClient::Get(std::string_view path) {
  std::string request("GET ");
  request.append(path);
  request.append(" HTTP/1.1\r\nHost: ")
      .append(host_)
      .append("\r\n\r\n");
  return RoundTrip(request);
}

Status ParseRemoteQueryBody(std::string_view body, RemoteQueryResult* out) {
  Result<JsonValue> doc = ParseJson(body);
  if (!doc.ok()) {
    return doc.status();
  }
  out->complete = doc->Get("complete").AsBool(true);
  out->error = doc->Get("error").AsString();
  for (const JsonValue& hit : doc->Get("hits").AsArray()) {
    const auto& pair = hit.AsArray();
    if (pair.size() != 2) {
      return CorruptData("malformed hit entry in daemon response");
    }
    out->hits.emplace_back(pair[0].AsUint(), pair[1].AsString());
  }
  const JsonValue& stats = doc->Get("stats");
  out->cache_hits = stats.Get("cache_hits").AsUint();
  out->bytes_decompressed = stats.Get("bytes_decompressed").AsUint();
  out->blocks_from_cache = stats.Get("blocks_from_cache").AsUint();
  out->blocks_queried = stats.Get("blocks_queried").AsUint();
  out->lines_missing = doc->Get("partial").Get("lines_missing").AsUint();
  return OkStatus();
}

Result<RemoteQueryResult> DaemonClient::RunQueryRequest(
    std::string_view archive, std::string_view command,
    const RemoteQueryOptions& options, bool explain) {
  std::string target(explain ? "/explain" : "/query");
  target.append("?archive=").append(UrlEncode(archive));
  if (!options.degrade) {
    target.append("&degrade=0");
  }
  if (options.deadline_ms > 0) {
    target.append("&deadline_ms=").append(std::to_string(options.deadline_ms));
  }
  if (!options.tenant.empty()) {
    target.append("&tenant=").append(UrlEncode(options.tenant));
  }
  if (options.from_ns > 0) {
    target.append("&from=").append(std::to_string(options.from_ns));
  }
  if (options.to_ns != UINT64_MAX) {
    target.append("&to=").append(std::to_string(options.to_ns));
  }
  const bool post = options.use_post && !explain;
  if (!post) {
    target.append("&q=").append(UrlEncode(command));
  }

  std::string request;
  request.append(post ? "POST " : "GET ").append(target);
  request.append(" HTTP/1.1\r\nHost: ").append(host_).append("\r\n");
  if (!options.request_id.empty()) {
    request.append("X-Request-Id: ").append(options.request_id).append("\r\n");
  }
  if (post) {
    request.append("Content-Length: ")
        .append(std::to_string(command.size()))
        .append("\r\n\r\n")
        .append(command);
  } else {
    request.append("\r\n");
  }

  Result<ParsedResponse> response = RoundTrip(request);
  if (!response.ok()) {
    return response.status();
  }
  RemoteQueryResult result;
  result.http_status = response->status;
  const auto rid = response->headers.find("x-request-id");
  if (rid != response->headers.end()) {
    result.request_id = rid->second;
  }
  result.body = std::move(response->body);
  if (Status s = ParseRemoteQueryBody(result.body, &result); !s.ok()) {
    return s;
  }
  return result;
}

Result<RemoteQueryResult> DaemonClient::Query(std::string_view archive,
                                              std::string_view command,
                                              const RemoteQueryOptions& options) {
  return RunQueryRequest(archive, command, options, /*explain=*/false);
}

Result<RemoteQueryResult> DaemonClient::Explain(std::string_view archive,
                                                std::string_view command,
                                                const RemoteQueryOptions& options) {
  return RunQueryRequest(archive, command, options, /*explain=*/true);
}

}  // namespace loggrep
