#include "src/server/archive_service.h"

#include <cinttypes>
#include <cstdio>
#include <utility>

#include "src/common/json.h"
#include "src/common/trace.h"
#include "src/query/explain.h"

namespace loggrep {

namespace {

void AppendUint(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

void AppendStatsJson(std::string* out, const ArchiveQueryResult& result) {
  const LocatorStats& s = result.locator;
  out->append("{\"blocks_pruned\":");
  AppendUint(out, result.blocks_pruned);
  out->append(",\"blocks_queried\":");
  AppendUint(out, result.blocks_queried);
  // Cached blocks replay the cost snapshot of the run that produced them;
  // this count is how a caller tells replayed cost from fresh work.
  out->append(",\"blocks_from_cache\":");
  AppendUint(out, result.blocks_from_cache);
  out->append(",\"bytes_decompressed\":");
  AppendUint(out, s.bytes_decompressed);
  out->append(",\"bytes_saved\":");
  AppendUint(out, s.bytes_saved);
  out->append(",\"cache_hits\":");
  AppendUint(out, s.cache_hits);
  out->append(",\"cache_misses\":");
  AppendUint(out, s.cache_misses);
  out->append(",\"capsules_decompressed\":");
  AppendUint(out, s.capsules_decompressed);
  out->append(",\"capsules_stamp_filtered\":");
  AppendUint(out, s.capsules_stamp_filtered);
  out->append(",\"decompress_ns\":");
  AppendUint(out, s.decompress_nanos);
  out->append(",\"open_ns\":");
  AppendUint(out, s.open_nanos);
  out->append(",\"prune_ns\":");
  AppendUint(out, s.prune_nanos);
  out->append(",\"reconstruct_ns\":");
  AppendUint(out, s.reconstruct_nanos);
  out->append(",\"scan_ns\":");
  AppendUint(out, s.scan_nanos);
  out->append(",\"stamp_filter_ns\":");
  AppendUint(out, s.stamp_filter_nanos);
  out->append("}");
}

void AppendPartialJson(std::string* out, const PartialReport& partial) {
  out->append("{\"lines_missing\":");
  AppendUint(out, partial.lines_missing());
  out->append(",\"failures\":[");
  bool first = true;
  for (const BlockQueryFailure& f : partial.failures) {
    if (!first) {
      out->push_back(',');
    }
    first = false;
    out->append("{\"seq\":");
    AppendUint(out, f.seq);
    out->append(",\"first_line\":");
    AppendUint(out, f.first_line);
    out->append(",\"line_count\":");
    AppendUint(out, f.line_count);
    out->append(",\"error\":");
    AppendJsonString(out, f.error);
    out->append(",\"newly_quarantined\":");
    out->append(f.newly_quarantined ? "true" : "false");
    out->append(",\"tombstoned\":");
    out->append(f.tombstoned ? "true" : "false");
    out->push_back('}');
  }
  out->append("]}");
}

// The /query (and /explain) success body. Shape:
//   {"complete":bool,"hits":[[line,"text"],...],"stats":{...},
//    "partial":{...},            -- only when degraded
//    "explain":{"render":"...","invariant_ok":bool,"totals":{...}}}  -- /explain
std::string RenderQueryJson(const ArchiveQueryResult& result,
                            const QueryExplain* explain) {
  std::string out;
  out.reserve(4096 + result.hits.size() * 48);
  out.append("{\"complete\":");
  out.append(result.partial.partial() ? "false" : "true");
  out.append(",\"hits\":[");
  bool first = true;
  for (const auto& [line, text] : result.hits) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    out.append("[");
    AppendUint(&out, line);
    out.push_back(',');
    AppendJsonString(&out, text);
    out.push_back(']');
  }
  out.append("],\"stats\":");
  AppendStatsJson(&out, result);
  if (result.partial.partial()) {
    out.append(",\"partial\":");
    AppendPartialJson(&out, result.partial);
  }
  if (explain != nullptr) {
    std::string detail;
    const bool invariant_ok = explain->CheckInvariant(&detail);
    const ExplainTotals totals = explain->Totals();
    out.append(",\"explain\":{\"invariant_ok\":");
    out.append(invariant_ok ? "true" : "false");
    if (!invariant_ok) {
      out.append(",\"invariant_detail\":");
      AppendJsonString(&out, detail);
    }
    out.append(",\"totals\":{\"visited\":");
    AppendUint(&out, totals.visited);
    out.append(",\"pruned\":");
    AppendUint(&out, totals.pruned);
    out.append(",\"cached\":");
    AppendUint(&out, totals.cached);
    out.append(",\"decompressed\":");
    AppendUint(&out, totals.decompressed);
    out.append("},\"render\":");
    AppendJsonString(&out, explain->Render());
    out.append("}");
  }
  out.push_back('}');
  return out;
}

std::string RenderErrorJson(const Status& status) {
  std::string out("{\"error\":");
  AppendJsonString(&out, status.ToString());
  out.append(",\"code\":");
  AppendJsonString(&out, StatusCodeName(status.code()));
  out.push_back('}');
  return out;
}

// The federated success body. Same top-level shape as RenderQueryJson so
// clients parse both, plus a "shards" accounting object and per-shard holes:
//   {"complete":bool,"hits":[[line,"text"],...],"stats":{...},
//    "shards":{"total":n,"pruned":n,"visited":n,"failed":n},
//    "partial":{...},"shard_failures":[...],   -- only when degraded
//    "explain":{...}}                          -- /explain
std::string RenderSetQueryJson(const SetQueryResult& result,
                               const SetExplain* explain) {
  std::string out;
  out.reserve(4096 + result.hits.size() * 48);
  out.append("{\"complete\":");
  out.append(result.complete() ? "true" : "false");
  out.append(",\"hits\":[");
  bool first = true;
  for (const auto& [line, text] : result.hits) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    out.append("[");
    AppendUint(&out, line);
    out.push_back(',');
    AppendJsonString(&out, text);
    out.push_back(']');
  }
  out.append("],\"stats\":");
  // The block/locator counters share the single-archive schema; mirror them
  // into an ArchiveQueryResult so the JSON field set stays identical.
  ArchiveQueryResult stats;
  stats.blocks_pruned = result.blocks_pruned;
  stats.blocks_queried = result.blocks_queried;
  stats.blocks_from_cache = result.blocks_from_cache;
  stats.locator = result.locator;
  AppendStatsJson(&out, stats);
  out.append(",\"shards\":{\"total\":");
  AppendUint(&out, result.shards_total);
  out.append(",\"pruned\":");
  AppendUint(&out, result.shards_pruned);
  out.append(",\"visited\":");
  AppendUint(&out, result.shards_visited);
  out.append(",\"failed\":");
  AppendUint(&out, result.shards_failed);
  out.push_back('}');
  if (result.partial.partial()) {
    out.append(",\"partial\":");
    AppendPartialJson(&out, result.partial);
  }
  if (!result.shard_failures.empty()) {
    out.append(",\"shard_failures\":[");
    first = true;
    for (const SetShardFailure& f : result.shard_failures) {
      if (!first) {
        out.push_back(',');
      }
      first = false;
      out.append("{\"shard\":");
      AppendUint(&out, f.shard_id);
      out.append(",\"tenant\":");
      AppendJsonString(&out, f.tenant);
      out.append(",\"first_line\":");
      AppendUint(&out, f.line_base);
      out.append(",\"line_count\":");
      AppendUint(&out, f.lines);
      out.append(",\"error\":");
      AppendJsonString(&out, f.error);
      out.push_back('}');
    }
    out.push_back(']');
  }
  if (explain != nullptr) {
    std::string detail;
    const bool invariant_ok = explain->CheckInvariant(&detail);
    const ExplainTotals totals = explain->Totals();
    out.append(",\"explain\":{\"invariant_ok\":");
    out.append(invariant_ok ? "true" : "false");
    if (!invariant_ok) {
      out.append(",\"invariant_detail\":");
      AppendJsonString(&out, detail);
    }
    out.append(",\"totals\":{\"visited\":");
    AppendUint(&out, totals.visited);
    out.append(",\"pruned\":");
    AppendUint(&out, totals.pruned);
    out.append(",\"cached\":");
    AppendUint(&out, totals.cached);
    out.append(",\"decompressed\":");
    AppendUint(&out, totals.decompressed);
    out.append("},\"render\":");
    AppendJsonString(&out, explain->Render());
    out.append("}");
  }
  out.push_back('}');
  return out;
}

}  // namespace

std::string ResolveArchivePath(const std::string& root, std::string_view name) {
  if (name.empty() || name == ".") {
    return root;
  }
  if (name.front() == '/') {
    return "";
  }
  // Reject any "." / ".." component (and backslash tricks; names here are
  // plain POSIX relative paths).
  std::string_view rest = name;
  while (!rest.empty()) {
    const size_t slash = rest.find('/');
    const std::string_view part = rest.substr(0, slash);
    if (part.empty() || part == "." || part == ".." ||
        part.find('\\') != std::string_view::npos) {
      return "";
    }
    if (slash == std::string_view::npos) {
      break;
    }
    rest.remove_prefix(slash + 1);
  }
  return root + "/" + std::string(name);
}

int HttpStatusForQueryError(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    default:
      // Block failure with degrade disabled, corruption, I/O storms the
      // retry budget could not ride out: the server failed to answer.
      return 500;
  }
}

int ExitCodeForHttpStatus(int http_status) {
  if (http_status == 200) {
    return 0;
  }
  if (http_status == 206) {
    return 3;
  }
  return 1;
}

ArchiveService::ArchiveService(ServiceOptions options)
    : options_(std::move(options)) {}

Result<std::shared_ptr<ArchiveService::Handle>> ArchiveService::GetOrOpen(
    const std::string& name) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = handles_.find(name);
    if (it != handles_.end()) {
      return it->second;
    }
  }
  const std::string dir = ResolveArchivePath(options_.root, name);
  if (dir.empty()) {
    return InvalidArgument("archive name escapes the serving root: " + name);
  }
  // Open outside the map lock (cold opens read the manifest + quarantine
  // from storage); racing openers adopt whichever handle lands first. A
  // set_manifest.json marks the directory as a federated ArchiveSet root.
  auto handle = std::make_shared<Handle>();
  StorageEnv* env = EnvOrDefault(options_.archive.env);
  if (env->FileExists(ArchiveSet::SetManifestPath(dir))) {
    ArchiveSetOptions set_options;
    set_options.archive = options_.archive;
    set_options.compaction = options_.compaction;
    set_options.event_log = options_.set_event_log;
    Result<std::unique_ptr<ArchiveSet>> set = ArchiveSet::Open(dir, set_options);
    if (!set.ok()) {
      return set.status();
    }
    handle->set = std::move(*set);
  } else {
    Result<LogArchive> archive = LogArchive::Open(dir, options_.archive);
    if (!archive.ok()) {
      return archive.status();
    }
    handle->archive = std::make_unique<LogArchive>(std::move(*archive));
  }
  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = handles_.emplace(name, handle);
  if (!inserted) {
    return it->second;  // another thread won the race; keep its warm handle
  }
  return handle;
}

ServiceResponse ArchiveService::Run(const ServiceRequest& request) {
  const TraceSpan span("server.run_query", "server");
  ServiceResponse response;
  Result<std::shared_ptr<Handle>> handle = GetOrOpen(request.archive);
  if (!handle.ok()) {
    response.http_status = HttpStatusForQueryError(handle.status());
    response.body = RenderErrorJson(handle.status());
    return response;
  }

  std::lock_guard<std::mutex> lock((*handle)->mu);
  if ((*handle)->set != nullptr) {
    return RunOnSet(request, handle->get());
  }
  LogArchive* archive = (*handle)->archive.get();
  // Per-request knobs, applied under the archive lock so they only govern
  // this execution. The deadline feeds the RetryBudget every storage retry
  // in this query checks; restore the server defaults afterwards.
  const uint64_t default_deadline = options_.archive.query_deadline_ns;
  const bool default_degrade = options_.archive.degraded_queries;
  if (request.deadline_ms > 0) {
    archive->set_query_deadline_ns(request.deadline_ms * 1'000'000ull);
  }
  archive->set_degraded_queries(request.degrade);

  QueryExplain explain;
  Result<ArchiveQueryResult> result =
      request.explain ? archive->Explain(request.command, &explain)
                      : archive->Query(request.command);
  archive->set_query_deadline_ns(default_deadline);
  archive->set_degraded_queries(default_degrade);

  if (!result.ok()) {
    response.http_status = HttpStatusForQueryError(result.status());
    response.body = RenderErrorJson(result.status());
    return response;
  }
  response.http_status = result->partial.partial() ? 206 : 200;
  response.degraded = result->partial.partial();
  response.body =
      RenderQueryJson(*result, request.explain ? &explain : nullptr);
  const LocatorStats& s = result->locator;
  response.stats.hits = result->hits.size();
  response.stats.blocks_queried = result->blocks_queried;
  response.stats.blocks_from_cache = result->blocks_from_cache;
  response.stats.cache_hits = s.cache_hits;
  response.stats.cache_misses = s.cache_misses;
  response.stats.bytes_decompressed = s.bytes_decompressed;
  response.stats.prune_ns = s.prune_nanos;
  response.stats.open_ns = s.open_nanos;
  response.stats.stamp_filter_ns = s.stamp_filter_nanos;
  response.stats.decompress_ns = s.decompress_nanos;
  response.stats.scan_ns = s.scan_nanos;
  response.stats.reconstruct_ns = s.reconstruct_nanos;
  if (request.explain) {
    response.explain_render = explain.Render();
  }
  return response;
}

// Federated execution: predicates prune shards, the rest scatters across
// the set's shards under this handle's lock (caller holds it).
ServiceResponse ArchiveService::RunOnSet(const ServiceRequest& request,
                                         Handle* handle) {
  ServiceResponse response;
  ArchiveSet* set = handle->set.get();

  SetQueryPredicate pred;
  if (!request.tenant.empty()) {
    pred.tenant = request.tenant;
  }
  pred.from_ns = request.from_ns;
  pred.to_ns = request.to_ns;
  if (pred.from_ns > pred.to_ns) {
    const Status bad = InvalidArgument("empty time range: from > to");
    response.http_status = HttpStatusForQueryError(bad);
    response.body = RenderErrorJson(bad);
    return response;
  }

  const uint64_t default_deadline = options_.archive.query_deadline_ns;
  const bool default_degrade = options_.archive.degraded_queries;
  if (request.deadline_ms > 0) {
    set->set_query_deadline_ns(request.deadline_ms * 1'000'000ull);
  }
  set->set_degraded_queries(request.degrade);

  SetExplain explain;
  Result<SetQueryResult> result =
      request.explain ? set->Explain(request.command, pred, &explain)
                      : set->Query(request.command, pred);
  set->set_query_deadline_ns(default_deadline);
  set->set_degraded_queries(default_degrade);

  if (!result.ok()) {
    response.http_status = HttpStatusForQueryError(result.status());
    response.body = RenderErrorJson(result.status());
    return response;
  }
  response.http_status = result->complete() ? 200 : 206;
  response.degraded = !result->complete();
  response.body =
      RenderSetQueryJson(*result, request.explain ? &explain : nullptr);
  const LocatorStats& s = result->locator;
  response.stats.hits = result->hits.size();
  response.stats.blocks_queried = result->blocks_queried;
  response.stats.blocks_from_cache = result->blocks_from_cache;
  response.stats.cache_hits = s.cache_hits;
  response.stats.cache_misses = s.cache_misses;
  response.stats.bytes_decompressed = s.bytes_decompressed;
  response.stats.prune_ns = s.prune_nanos;
  response.stats.open_ns = s.open_nanos;
  response.stats.stamp_filter_ns = s.stamp_filter_nanos;
  response.stats.decompress_ns = s.decompress_nanos;
  response.stats.scan_ns = s.scan_nanos;
  response.stats.reconstruct_ns = s.reconstruct_nanos;
  if (request.explain) {
    response.explain_render = explain.Render();
  }
  return response;
}

ServiceResponse ArchiveService::Compact(const std::string& archive) {
  ServiceResponse response;
  Result<std::shared_ptr<Handle>> handle = GetOrOpen(archive);
  if (!handle.ok()) {
    response.http_status = HttpStatusForQueryError(handle.status());
    response.body = RenderErrorJson(handle.status());
    return response;
  }
  if ((*handle)->set == nullptr) {
    const Status bad =
        InvalidArgument("compaction targets an ArchiveSet root; '" + archive +
                        "' is a plain archive");
    response.http_status = HttpStatusForQueryError(bad);
    response.body = RenderErrorJson(bad);
    return response;
  }
  // Deliberately not under handle->mu: Compact serializes against other
  // compactors itself and commits under the set's own lock, so queries keep
  // flowing while blocks are rewritten.
  const SetCompactionReport report = (*handle)->set->Compact();
  response.http_status = report.ok() ? 200 : 500;
  std::string& out = response.body;
  out.append("{\"ok\":");
  out.append(report.ok() ? "true" : "false");
  if (!report.ok()) {
    out.append(",\"error\":");
    AppendJsonString(&out, report.fatal.ToString());
  }
  out.append(",\"summary\":");
  AppendJsonString(&out, report.Summary());
  out.append(",\"report\":{\"runs_planned\":");
  AppendUint(&out, report.runs_planned);
  out.append(",\"merges_committed\":");
  AppendUint(&out, report.merges_committed);
  out.append(",\"shards_merged\":");
  AppendUint(&out, report.shards_merged);
  out.append(",\"dirs_removed\":");
  AppendUint(&out, report.dirs_removed);
  out.append(",\"runs_aborted\":");
  AppendUint(&out, report.runs_aborted);
  out.append(",\"skipped_quarantined\":");
  AppendUint(&out, report.skipped_quarantined);
  out.append(",\"merged_ids\":[");
  bool first = true;
  for (uint64_t id : report.merged_ids) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    AppendUint(&out, id);
  }
  out.append("]}}");
  return response;
}

ArchiveService::FederationSummary ArchiveService::federation_summary() const {
  FederationSummary summary;
  std::vector<std::shared_ptr<Handle>> sets;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, handle] : handles_) {
      if (handle->set != nullptr) {
        sets.push_back(handle);
      }
    }
  }
  for (const auto& handle : sets) {
    // janitor_status / compaction_totals take the set's own locks; no need
    // for the handle query lock (and taking it would stall behind queries).
    ++summary.sets_open;
    const ArchiveSet::JanitorStatus janitor = handle->set->janitor_status();
    summary.janitor_passes += janitor.passes;
    summary.janitor_errors += janitor.errors;
    if (!janitor.last_error.empty()) {
      summary.janitor_last_error = janitor.last_error;
    }
    const ArchiveSet::CompactionTotals totals =
        handle->set->compaction_totals();
    summary.compaction_merges += totals.merges;
    summary.compaction_shards_merged += totals.shards_merged;
    summary.compaction_failures += totals.failures;
  }
  return summary;
}

size_t ArchiveService::open_archives() const {
  std::lock_guard<std::mutex> lock(mu_);
  return handles_.size();
}

void ArchiveService::Clear() {
  std::map<std::string, std::shared_ptr<Handle>> doomed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    doomed.swap(handles_);
  }
  // Destroy outside mu_; a straggling query holding a handle keeps its
  // shared_ptr alive until it finishes.
}

}  // namespace loggrep
