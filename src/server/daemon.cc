#include "src/server/daemon.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <utility>

#include "src/common/build_info.h"
#include "src/common/json.h"
#include "src/common/metrics_export.h"
#include "src/common/trace.h"

namespace loggrep {

namespace {

void AppendUint(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

// Poll granularity for blocking reads: how quickly an idle connection
// notices a drain. Short enough that Shutdown() feels immediate, long
// enough to cost nothing.
constexpr uint64_t kReadPollMs = 100;

// RAII decrement for the gauges tracked with atomics.
class ScopedCount {
 public:
  explicit ScopedCount(std::atomic<size_t>* counter) : counter_(counter) {
    counter_->fetch_add(1, std::memory_order_acq_rel);
  }
  ~ScopedCount() { counter_->fetch_sub(1, std::memory_order_acq_rel); }
  ScopedCount(const ScopedCount&) = delete;
  ScopedCount& operator=(const ScopedCount&) = delete;

 private:
  std::atomic<size_t>* counter_;
};

bool SendAll(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t sent =
        ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    data.remove_prefix(static_cast<size_t>(sent));
  }
  return true;
}

HttpResponse TextResponse(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.content_type = "text/plain; charset=utf-8";
  response.body = std::move(body);
  return response;
}

HttpResponse JsonError(int status, std::string_view message) {
  HttpResponse response;
  response.status = status;
  response.body = "{\"error\":";
  AppendJsonString(&response.body, message);
  response.body.push_back('}');
  return response;
}

bool ParamIsFalse(const HttpRequest& request, const std::string& name) {
  const auto it = request.params.find(name);
  if (it == request.params.end()) {
    return false;
  }
  return it->second == "0" || it->second == "false" || it->second == "no";
}

}  // namespace

LoggrepDaemon::LoggrepDaemon(DaemonOptions options)
    : options_(std::move(options)) {
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  // The service's archives share the daemon registry unless the caller
  // wired a different one in explicitly.
  if (options_.service.archive.metrics == nullptr) {
    options_.service.archive.metrics = metrics_;
    options_.service.archive.engine.metrics = metrics_;
  }
  access_log_ = std::make_unique<AccessLog>(options_.access_log);
  // Set maintenance events (janitor step failures, compaction merges) ride
  // the access log's lock-free ring unless the caller wired its own sink.
  // The handles emitting these die in Shutdown()/Clear(), strictly before
  // this daemon's members — the access log outlives every emitter.
  if (!options_.service.set_event_log) {
    AccessLog* log = access_log_.get();
    options_.service.set_event_log = [log](const std::string& line) {
      log->Write(std::string(line));
    };
  }
  service_ = std::make_unique<ArchiveService>(options_.service);
  telemetry_ = std::make_unique<ServerTelemetry>(options_.telemetry);
  slow_log_ = std::make_unique<SlowQueryLog>(options_.slow_log_capacity);
  start_ns_ = Tracer::Global().NowNanos();
  // Prime the process-uptime epoch now; its first caller wins it, and that
  // should be daemon construction, not the first /healthz scrape.
  ProcessUptimeNanos();
}

uint64_t LoggrepDaemon::uptime_ns() const {
  const uint64_t now = Tracer::Global().NowNanos();
  return now > start_ns_ ? now - start_ns_ : 0;
}

LoggrepDaemon::~LoggrepDaemon() { Shutdown(); }

Result<uint16_t> LoggrepDaemon::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Internal("daemon already running");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return IOError("bind " + options_.host + ": " + err);
  }
  if (::listen(fd, 128) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return IOError("listen: " + err);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return IOError("getsockname: " + err);
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return port_;
}

void LoggrepDaemon::Shutdown() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  stopping_.store(true, std::memory_order_release);
  // Closing the listener unblocks accept(); shutdown() first for the case
  // where accept() is mid-call on another thread.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  // Drain: every connection handler notices stopping_ within one read poll,
  // finishes its in-flight request (responses still go out, tagged
  // "Connection: close"), and exits.
  {
    std::unique_lock<std::mutex> lock(drain_mu_);
    drained_.wait(lock, [this] {
      return active_connections_.load(std::memory_order_acquire) == 0;
    });
  }
  pool_.reset();       // joins the workers
  service_->Clear();   // releases archives + caches deterministically
  access_log_->Flush();  // every served request's line reaches the sinks
}

void LoggrepDaemon::AcceptLoop() {
  Tracer::Global().SetCurrentThreadName("loggrepd-accept");
  Counter* accepted = metrics_->GetOrCreate("server.connections_accepted");
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;  // listener closed (shutdown) or fatal accept error
    }
    accepted->Increment();
    // Count the connection *before* it enters the pool queue, so Shutdown
    // waits for queued-but-unstarted connections too (they still own fds).
    active_connections_.fetch_add(1, std::memory_order_acq_rel);
    pool_->Submit([this, fd] {
      HandleConnection(fd);
      if (active_connections_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(drain_mu_);
        drained_.notify_all();
      }
    });
  }
}

void LoggrepDaemon::HandleConnection(int fd) {
  // Bounded read poll so drains and idle timeouts are noticed promptly.
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(kReadPollMs / 1000);
  tv.tv_usec = static_cast<suseconds_t>((kReadPollMs % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  Counter* requests = metrics_->GetOrCreate("server.requests");
  Counter* parse_errors = metrics_->GetOrCreate("server.parse_errors");
  Histogram* request_ns =
      metrics_->GetOrCreateHistogram("server.request_ns");

  HttpRequestParser parser(options_.limits);
  std::string pending;  // unconsumed bytes (pipelined next request)
  char buf[16 * 1024];
  uint64_t idle_ms = 0;
  bool close_connection = false;

  while (!close_connection) {
    // Drive the parser from the pending buffer first, then the socket.
    if (!pending.empty()) {
      const size_t used = parser.Feed(pending);
      pending.erase(0, used);
    }
    if (parser.state() == HttpRequestParser::State::kNeedMore) {
      if (stopping_.load(std::memory_order_acquire)) {
        break;  // idle or mid-request during drain; drop the connection
      }
      const ssize_t got = ::recv(fd, buf, sizeof(buf), 0);
      if (got == 0) {
        break;  // peer closed
      }
      if (got < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
          idle_ms += kReadPollMs;
          if (idle_ms >= options_.idle_timeout_ms) {
            break;
          }
          continue;
        }
        break;  // hard socket error
      }
      idle_ms = 0;
      pending.append(buf, static_cast<size_t>(got));
      continue;
    }

    if (parser.state() == HttpRequestParser::State::kError) {
      parse_errors->Increment();
      // Even a malformed request gets a request id (generated — the headers
      // may not have parsed), a telemetry sample, and an access-log line.
      RequestRecord rec;
      rec.request_id = GenerateRequestId();
      rec.rid64 = RequestIdHash(rec.request_id);
      HttpResponse response =
          JsonError(parser.error_status(), parser.error());
      response.headers.emplace_back("X-Request-Id", rec.request_id);
      const uint64_t now_ns = Tracer::Global().NowNanos();
      FinishRequest(nullptr, response, &rec, now_ns, now_ns);
      SendAll(fd, SerializeResponse(response, /*keep_alive=*/false));
      break;  // framing is unrecoverable; never try to resync a bad peer
    }

    // One complete request.
    requests->Increment();
    const uint64_t start_ns = Tracer::Global().NowNanos();
    const HttpRequest& request = parser.request();
    bool close_after = !request.KeepAlive();
    // Propagate the client's X-Request-Id; mint one when absent. rid64 is
    // the FNV-1a of the id — the join key across spans and logs.
    RequestRecord rec;
    rec.request_id = std::string(request.Header("x-request-id"));
    if (rec.request_id.empty()) {
      rec.request_id = GenerateRequestId();
    }
    rec.rid64 = RequestIdHash(rec.request_id);
    HttpResponse response;
    {
      const TraceSpan span("server.request", "server", "rid", rec.rid64);
      response = Route(request, &close_after, &rec);
    }
    response.headers.emplace_back("X-Request-Id", rec.request_id);
    if (stopping_.load(std::memory_order_acquire)) {
      close_after = true;  // drain: answer, then hang up
    }
    metrics_
        ->GetOrCreate("server.responses_" +
                      std::to_string(response.status / 100) + "xx")
        ->Increment();
    const uint64_t end_ns = Tracer::Global().NowNanos();
    request_ns->Record(end_ns - start_ns);
    FinishRequest(&request, response, &rec, start_ns, end_ns);
    if (!SendAll(fd, SerializeResponse(response, !close_after))) {
      break;
    }
    if (close_after) {
      break;
    }
    parser.Reset();
  }
  ::close(fd);
}

HttpResponse LoggrepDaemon::Route(const HttpRequest& request,
                                  bool* close_after, RequestRecord* rec) {
  if (request.path == "/healthz") {
    HttpResponse response;
    response.body = RenderHealthz();
    return response;
  }
  if (request.path == "/statusz") {
    return TextResponse(200,
                        RenderStatuszPage(Tracer::Global().NowNanos()));
  }
  if (request.path == "/debug/slow") {
    HttpResponse response;
    response.body = slow_log_->RenderJson(options_.slow_query_threshold_ns);
    return response;
  }
  if (request.path == "/metrics") {
    if (request.method != "GET") {
      *close_after = true;
      return JsonError(405, "use GET");
    }
    // The scrape runs concurrently with live queries by design; the
    // registry's snapshot path is the synchronization (see
    // tests/metrics_race_test.cc).
    std::string body = ExportPrometheus(*metrics_);
    telemetry_->AppendWindowedMetrics(&body, Tracer::Global().NowNanos());
    AppendPrometheusGauge(&body, "loggrep_access_log_dropped",
                          static_cast<double>(access_log_->dropped()));
    // The registry's set.janitor.* / set.compaction.* counters already
    // export the maintenance totals; only the open-set gauge has no
    // counter equivalent (re-emitting the totals as gauges here would
    // duplicate metric names with conflicting types in one exposition).
    const ArchiveService::FederationSummary fed =
        service_->federation_summary();
    AppendPrometheusGauge(&body, "loggrep_sets_open",
                          static_cast<double>(fed.sets_open));
    AppendBuildInfoMetrics(&body);
    return TextResponse(200, std::move(body));
  }
  if (request.path == "/query" || request.path == "/explain") {
    const bool explain = request.path == "/explain";
    if (request.method != "GET" && request.method != "POST") {
      *close_after = true;
      return JsonError(405, "use GET or POST");
    }
    return RunQuery(request, explain, rec);
  }
  if (request.path == "/compact") {
    // Admin surface, deliberately outside the query admission gate: a
    // compaction pass is maintenance, not a query, and must not eat a query
    // slot (nor be shed with the queries under load).
    if (request.method != "POST") {
      *close_after = true;
      return JsonError(405, "use POST");
    }
    std::string archive;
    const auto archive_it = request.params.find("archive");
    if (archive_it != request.params.end()) {
      archive = archive_it->second;
    }
    rec->archive = archive;
    metrics_->GetOrCreate("server.compaction_requests")->Increment();
    ServiceResponse service_response = service_->Compact(archive);
    HttpResponse response;
    response.status = service_response.http_status;
    response.body = std::move(service_response.body);
    return response;
  }
  return JsonError(404, "no such endpoint: " + request.path);
}

HttpResponse LoggrepDaemon::RunQuery(const HttpRequest& request,
                                     bool explain, RequestRecord* rec) {
  // Admission gate, checked before any archive work. fetch_add + rollback
  // keeps the gate exact under races (two latecomers can both bounce, never
  // both enter past the limit).
  if (inflight_queries_.fetch_add(1, std::memory_order_acq_rel) >=
      options_.max_inflight_queries) {
    inflight_queries_.fetch_sub(1, std::memory_order_acq_rel);
    metrics_->GetOrCreate("server.admission_rejects")->Increment();
    rec->shed = true;
    HttpResponse response = JsonError(
        429, "query admission limit reached; retry after backoff");
    response.headers.emplace_back(
        "Retry-After", std::to_string(options_.retry_after_seconds));
    return response;
  }
  struct Release {
    std::atomic<size_t>* gate;
    ~Release() { gate->fetch_sub(1, std::memory_order_acq_rel); }
  } release{&inflight_queries_};
  metrics_->GetOrCreate("server.inflight_hwm")
      ->UpdateMax(inflight_queries_.load(std::memory_order_relaxed));

  ServiceRequest sr;
  const auto archive_it = request.params.find("archive");
  if (archive_it != request.params.end()) {
    sr.archive = archive_it->second;
  }
  // POST carries the command in the body; GET in ?q=. A POST with an empty
  // body falls back to ?q= so curl one-liners stay convenient.
  if (request.method == "POST" && !request.body.empty()) {
    sr.command = request.body;
  } else {
    const auto q = request.params.find("q");
    if (q == request.params.end() || q->second.empty()) {
      return JsonError(400, "missing query: POST a command body or pass ?q=");
    }
    sr.command = q->second;
  }
  sr.explain = explain;
  sr.degrade = !ParamIsFalse(request, "degrade");
  const auto deadline = request.params.find("deadline_ms");
  if (deadline != request.params.end()) {
    sr.deadline_ms = std::strtoull(deadline->second.c_str(), nullptr, 10);
  }
  // Federation predicates (honored when the archive is an ArchiveSet root):
  // tenant name plus an inclusive [from, to] event-time window in ns.
  const auto tenant = request.params.find("tenant");
  if (tenant != request.params.end()) {
    sr.tenant = tenant->second;
  }
  const auto from = request.params.find("from");
  if (from != request.params.end()) {
    sr.from_ns = std::strtoull(from->second.c_str(), nullptr, 10);
  }
  const auto to = request.params.find("to");
  if (to != request.params.end()) {
    sr.to_ns = std::strtoull(to->second.c_str(), nullptr, 10);
  }
  rec->archive = sr.archive;
  rec->command = sr.command;

  ServiceResponse service_response = service_->Run(sr);
  if (service_response.http_status == 206) {
    metrics_->GetOrCreate("server.degraded_responses")->Increment();
  }
  rec->degraded = service_response.degraded;
  rec->stats = service_response.stats;
  rec->explain_render = std::move(service_response.explain_render);
  HttpResponse response;
  response.status = service_response.http_status;
  response.body = std::move(service_response.body);
  return response;
}

void LoggrepDaemon::FinishRequest(const HttpRequest* request,
                                  const HttpResponse& response,
                                  RequestRecord* rec, uint64_t start_ns,
                                  uint64_t end_ns) {
  const uint64_t dur_ns = end_ns > start_ns ? end_ns - start_ns : 0;
  telemetry_->RecordRequest(response.status, dur_ns, end_ns);

  const uint64_t ts_ms =
      (end_ns > start_ns_ ? end_ns - start_ns_ : 0) / 1'000'000ull;
  std::string line;
  line.reserve(512);
  line.append("{\"ts_ms\":");
  AppendUint(&line, ts_ms);
  line.append(",\"rid\":");
  AppendJsonString(&line, rec->request_id);
  // String, not number: rid64 spans the full uint64 range and JSON readers
  // that go through doubles would round ids above 2^53, breaking the join.
  line.append(",\"rid64\":\"");
  AppendUint(&line, rec->rid64);
  line.push_back('"');
  line.append(",\"method\":");
  AppendJsonString(&line, request != nullptr ? request->method : "");
  line.append(",\"path\":");
  AppendJsonString(&line, request != nullptr ? request->path : "");
  line.append(",\"archive\":");
  AppendJsonString(&line, rec->archive);
  line.append(",\"status\":");
  AppendUint(&line, static_cast<uint64_t>(response.status));
  line.append(",\"bytes\":");
  AppendUint(&line, response.body.size());
  line.append(",\"dur_ns\":");
  AppendUint(&line, dur_ns);
  line.append(",\"hits\":");
  AppendUint(&line, rec->stats.hits);
  line.append(",\"blocks_queried\":");
  AppendUint(&line, rec->stats.blocks_queried);
  line.append(",\"blocks_from_cache\":");
  AppendUint(&line, rec->stats.blocks_from_cache);
  line.append(",\"cache_hits\":");
  AppendUint(&line, rec->stats.cache_hits);
  line.append(",\"cache_misses\":");
  AppendUint(&line, rec->stats.cache_misses);
  line.append(",\"bytes_decompressed\":");
  AppendUint(&line, rec->stats.bytes_decompressed);
  line.append(",\"stage_ns\":{\"prune\":");
  AppendUint(&line, rec->stats.prune_ns);
  line.append(",\"open\":");
  AppendUint(&line, rec->stats.open_ns);
  line.append(",\"stamp\":");
  AppendUint(&line, rec->stats.stamp_filter_ns);
  line.append(",\"decompress\":");
  AppendUint(&line, rec->stats.decompress_ns);
  line.append(",\"scan\":");
  AppendUint(&line, rec->stats.scan_ns);
  line.append(",\"reconstruct\":");
  AppendUint(&line, rec->stats.reconstruct_ns);
  line.append("},\"degraded\":");
  line.append(rec->degraded ? "true" : "false");
  line.append(",\"shed\":");
  line.append(rec->shed ? "true" : "false");
  line.push_back('}');
  access_log_->Write(std::move(line));

  // Slow-query capture. Shed requests never qualify (they did no archive
  // work); requests with no command (metrics scrapes, health checks) have
  // no fate tree to capture.
  if (options_.slow_query_threshold_ns == 0 ||
      dur_ns < options_.slow_query_threshold_ns || rec->command.empty() ||
      rec->shed) {
    return;
  }
  SlowQueryEntry entry;
  entry.ts_ms = ts_ms;
  entry.request_id = rec->request_id;
  entry.rid64 = rec->rid64;
  entry.archive = rec->archive;
  entry.command = rec->command;
  entry.dur_ns = dur_ns;
  entry.status = response.status;
  if (!rec->explain_render.empty()) {
    entry.explain_render = std::move(rec->explain_render);
  } else {
    // Re-run with explain to get the fate tree. The slow run just warmed
    // the caches this re-run reads, so capture is cheap; what debugging
    // needs is the tree's *structure* (visited/pruned/cached), which the
    // warm re-run preserves.
    ServiceRequest sr;
    sr.archive = rec->archive;
    sr.command = rec->command;
    sr.explain = true;
    entry.explain_render = service_->Run(sr).explain_render;
  }
  slow_log_->Record(std::move(entry));
  metrics_->GetOrCreate("server.slow_queries")->Increment();
}

std::string LoggrepDaemon::RenderHealthz() const {
  std::string body("{\"status\":\"ok\",");
  AppendBuildInfoJsonFields(&body);
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                ",\"daemon_uptime_seconds\":%.3f,\"archives_open\":%zu,"
                "\"inflight_queries\":%zu}",
                static_cast<double>(uptime_ns()) / 1e9,
                service_->open_archives(),
                inflight_queries_.load(std::memory_order_relaxed));
  body.append(buf);
  return body;
}

std::string LoggrepDaemon::RenderStatuszPage(uint64_t now_ns) const {
  StatuszInfo info;
  info.uptime_ns = uptime_ns();
  info.archives_open = service_->open_archives();
  info.inflight_queries = inflight_queries_.load(std::memory_order_relaxed);
  info.max_inflight_queries = options_.max_inflight_queries;
  info.requests_total = metrics_->GetOrCreate("server.requests")->value();
  info.admission_rejects_total =
      metrics_->GetOrCreate("server.admission_rejects")->value();
  info.degraded_total =
      metrics_->GetOrCreate("server.degraded_responses")->value();
  info.access_log_written = access_log_->written();
  info.access_log_dropped = access_log_->dropped();
  info.slow_queries_captured = slow_log_->captured();
  info.slow_threshold_ns = options_.slow_query_threshold_ns;
  const ArchiveService::FederationSummary fed = service_->federation_summary();
  info.sets_open = fed.sets_open;
  info.janitor_passes = fed.janitor_passes;
  info.janitor_errors = fed.janitor_errors;
  info.janitor_last_error = fed.janitor_last_error;
  info.compaction_merges = fed.compaction_merges;
  info.compaction_shards_merged = fed.compaction_shards_merged;
  info.compaction_failures = fed.compaction_failures;
  return RenderStatusz(*telemetry_, info, now_ns);
}

}  // namespace loggrep
