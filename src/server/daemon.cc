#include "src/server/daemon.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "src/common/json.h"
#include "src/common/metrics_export.h"
#include "src/common/trace.h"

namespace loggrep {

namespace {

// Poll granularity for blocking reads: how quickly an idle connection
// notices a drain. Short enough that Shutdown() feels immediate, long
// enough to cost nothing.
constexpr uint64_t kReadPollMs = 100;

// RAII decrement for the gauges tracked with atomics.
class ScopedCount {
 public:
  explicit ScopedCount(std::atomic<size_t>* counter) : counter_(counter) {
    counter_->fetch_add(1, std::memory_order_acq_rel);
  }
  ~ScopedCount() { counter_->fetch_sub(1, std::memory_order_acq_rel); }
  ScopedCount(const ScopedCount&) = delete;
  ScopedCount& operator=(const ScopedCount&) = delete;

 private:
  std::atomic<size_t>* counter_;
};

bool SendAll(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t sent =
        ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    data.remove_prefix(static_cast<size_t>(sent));
  }
  return true;
}

HttpResponse TextResponse(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.content_type = "text/plain; charset=utf-8";
  response.body = std::move(body);
  return response;
}

HttpResponse JsonError(int status, std::string_view message) {
  HttpResponse response;
  response.status = status;
  response.body = "{\"error\":";
  AppendJsonString(&response.body, message);
  response.body.push_back('}');
  return response;
}

bool ParamIsFalse(const HttpRequest& request, const std::string& name) {
  const auto it = request.params.find(name);
  if (it == request.params.end()) {
    return false;
  }
  return it->second == "0" || it->second == "false" || it->second == "no";
}

}  // namespace

LoggrepDaemon::LoggrepDaemon(DaemonOptions options)
    : options_(std::move(options)) {
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  // The service's archives share the daemon registry unless the caller
  // wired a different one in explicitly.
  if (options_.service.archive.metrics == nullptr) {
    options_.service.archive.metrics = metrics_;
    options_.service.archive.engine.metrics = metrics_;
  }
  service_ = std::make_unique<ArchiveService>(options_.service);
}

LoggrepDaemon::~LoggrepDaemon() { Shutdown(); }

Result<uint16_t> LoggrepDaemon::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Internal("daemon already running");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return IOError("bind " + options_.host + ": " + err);
  }
  if (::listen(fd, 128) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return IOError("listen: " + err);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return IOError("getsockname: " + err);
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return port_;
}

void LoggrepDaemon::Shutdown() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  stopping_.store(true, std::memory_order_release);
  // Closing the listener unblocks accept(); shutdown() first for the case
  // where accept() is mid-call on another thread.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  // Drain: every connection handler notices stopping_ within one read poll,
  // finishes its in-flight request (responses still go out, tagged
  // "Connection: close"), and exits.
  {
    std::unique_lock<std::mutex> lock(drain_mu_);
    drained_.wait(lock, [this] {
      return active_connections_.load(std::memory_order_acquire) == 0;
    });
  }
  pool_.reset();       // joins the workers
  service_->Clear();   // releases archives + caches deterministically
}

void LoggrepDaemon::AcceptLoop() {
  Tracer::Global().SetCurrentThreadName("loggrepd-accept");
  Counter* accepted = metrics_->GetOrCreate("server.connections_accepted");
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;  // listener closed (shutdown) or fatal accept error
    }
    accepted->Increment();
    // Count the connection *before* it enters the pool queue, so Shutdown
    // waits for queued-but-unstarted connections too (they still own fds).
    active_connections_.fetch_add(1, std::memory_order_acq_rel);
    pool_->Submit([this, fd] {
      HandleConnection(fd);
      if (active_connections_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(drain_mu_);
        drained_.notify_all();
      }
    });
  }
}

void LoggrepDaemon::HandleConnection(int fd) {
  // Bounded read poll so drains and idle timeouts are noticed promptly.
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(kReadPollMs / 1000);
  tv.tv_usec = static_cast<suseconds_t>((kReadPollMs % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  Counter* requests = metrics_->GetOrCreate("server.requests");
  Counter* parse_errors = metrics_->GetOrCreate("server.parse_errors");
  Histogram* request_ns =
      metrics_->GetOrCreateHistogram("server.request_ns");

  HttpRequestParser parser(options_.limits);
  std::string pending;  // unconsumed bytes (pipelined next request)
  char buf[16 * 1024];
  uint64_t idle_ms = 0;
  bool close_connection = false;

  while (!close_connection) {
    // Drive the parser from the pending buffer first, then the socket.
    if (!pending.empty()) {
      const size_t used = parser.Feed(pending);
      pending.erase(0, used);
    }
    if (parser.state() == HttpRequestParser::State::kNeedMore) {
      if (stopping_.load(std::memory_order_acquire)) {
        break;  // idle or mid-request during drain; drop the connection
      }
      const ssize_t got = ::recv(fd, buf, sizeof(buf), 0);
      if (got == 0) {
        break;  // peer closed
      }
      if (got < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
          idle_ms += kReadPollMs;
          if (idle_ms >= options_.idle_timeout_ms) {
            break;
          }
          continue;
        }
        break;  // hard socket error
      }
      idle_ms = 0;
      pending.append(buf, static_cast<size_t>(got));
      continue;
    }

    if (parser.state() == HttpRequestParser::State::kError) {
      parse_errors->Increment();
      const HttpResponse response =
          JsonError(parser.error_status(), parser.error());
      SendAll(fd, SerializeResponse(response, /*keep_alive=*/false));
      break;  // framing is unrecoverable; never try to resync a bad peer
    }

    // One complete request.
    requests->Increment();
    const uint64_t start_ns = Tracer::Global().NowNanos();
    const HttpRequest& request = parser.request();
    bool close_after = !request.KeepAlive();
    HttpResponse response;
    {
      const TraceSpan span("server.request", "server");
      response = Route(request, &close_after);
    }
    if (stopping_.load(std::memory_order_acquire)) {
      close_after = true;  // drain: answer, then hang up
    }
    metrics_
        ->GetOrCreate("server.responses_" +
                      std::to_string(response.status / 100) + "xx")
        ->Increment();
    request_ns->Record(Tracer::Global().NowNanos() - start_ns);
    if (!SendAll(fd, SerializeResponse(response, !close_after))) {
      break;
    }
    if (close_after) {
      break;
    }
    parser.Reset();
  }
  ::close(fd);
}

HttpResponse LoggrepDaemon::Route(const HttpRequest& request,
                                  bool* close_after) {
  if (request.path == "/healthz") {
    char body[128];
    std::snprintf(body, sizeof(body),
                  "ok\narchives_open %zu\ninflight_queries %zu\n",
                  service_->open_archives(),
                  inflight_queries_.load(std::memory_order_relaxed));
    return TextResponse(200, body);
  }
  if (request.path == "/metrics") {
    if (request.method != "GET") {
      *close_after = true;
      return JsonError(405, "use GET");
    }
    // The scrape runs concurrently with live queries by design; the
    // registry's snapshot path is the synchronization (see
    // tests/metrics_race_test.cc).
    return TextResponse(200, ExportPrometheus(*metrics_));
  }
  if (request.path == "/query" || request.path == "/explain") {
    const bool explain = request.path == "/explain";
    if (request.method != "GET" && request.method != "POST") {
      *close_after = true;
      return JsonError(405, "use GET or POST");
    }
    return RunQuery(request, explain);
  }
  return JsonError(404, "no such endpoint: " + request.path);
}

HttpResponse LoggrepDaemon::RunQuery(const HttpRequest& request,
                                     bool explain) {
  // Admission gate, checked before any archive work. fetch_add + rollback
  // keeps the gate exact under races (two latecomers can both bounce, never
  // both enter past the limit).
  if (inflight_queries_.fetch_add(1, std::memory_order_acq_rel) >=
      options_.max_inflight_queries) {
    inflight_queries_.fetch_sub(1, std::memory_order_acq_rel);
    metrics_->GetOrCreate("server.admission_rejects")->Increment();
    HttpResponse response = JsonError(
        429, "query admission limit reached; retry after backoff");
    response.headers.emplace_back(
        "Retry-After", std::to_string(options_.retry_after_seconds));
    return response;
  }
  struct Release {
    std::atomic<size_t>* gate;
    ~Release() { gate->fetch_sub(1, std::memory_order_acq_rel); }
  } release{&inflight_queries_};
  metrics_->GetOrCreate("server.inflight_hwm")
      ->UpdateMax(inflight_queries_.load(std::memory_order_relaxed));

  ServiceRequest sr;
  const auto archive_it = request.params.find("archive");
  if (archive_it != request.params.end()) {
    sr.archive = archive_it->second;
  }
  // POST carries the command in the body; GET in ?q=. A POST with an empty
  // body falls back to ?q= so curl one-liners stay convenient.
  if (request.method == "POST" && !request.body.empty()) {
    sr.command = request.body;
  } else {
    const auto q = request.params.find("q");
    if (q == request.params.end() || q->second.empty()) {
      return JsonError(400, "missing query: POST a command body or pass ?q=");
    }
    sr.command = q->second;
  }
  sr.explain = explain;
  sr.degrade = !ParamIsFalse(request, "degrade");
  const auto deadline = request.params.find("deadline_ms");
  if (deadline != request.params.end()) {
    sr.deadline_ms = std::strtoull(deadline->second.c_str(), nullptr, 10);
  }

  const ServiceResponse service_response = service_->Run(sr);
  HttpResponse response;
  response.status = service_response.http_status;
  response.body = service_response.body;
  return response;
}

}  // namespace loggrep
