// Per-request logging for loggrepd: a structured JSON-lines access log
// behind a lock-free writer, and a bounded slow-query log that keeps the
// explain fate tree of the worst offenders.
//
// Access log design: request handlers must never block on log I/O — a slow
// disk under the access log must not become tail latency for every tenant.
// Producers therefore format their line and push it into a bounded
// Vyukov-style MPMC ring (one CAS + one release store per push, no mutex);
// a dedicated flusher thread drains the ring to the sink every few
// milliseconds. When the ring is full the line is *dropped and counted*
// (`dropped()` / the server.access_log_dropped counter), never queued
// unboundedly and never waited for — the same shed-don't-queue stance as
// admission control.
//
// One line per request, one JSON object per line (jq-able), e.g.:
//   {"ts_ms":123,"rid":"5f3a...","rid64":123456,"method":"POST",
//    "path":"/query","archive":"arch","status":200,"bytes":512,
//    "dur_ns":18343210,"blocks_queried":4,"blocks_from_cache":4,
//    "cache_hits":12,"cache_misses":0,"bytes_decompressed":0,
//    "stage_ns":{"prune":..,"open":..,"stamp":..,"decompress":..,
//                "scan":..,"reconstruct":..},
//    "degraded":false,"shed":false}
// `rid64` is the FNV-1a hash of the request id — the exact value attached
// to the request's trace spans, so log lines join against spans (and the
// slow-query log) on one integer.
//
// The slow-query log is a cold-path mutex-protected ring (capturing is rare
// by construction): the daemon records requests over its latency threshold
// together with the re-run explain fate tree, served by GET /debug/slow.
#ifndef SRC_SERVER_REQUEST_LOG_H_
#define SRC_SERVER_REQUEST_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace loggrep {

// Bounded lock-free ring of formatted lines (Vyukov MPMC sequence scheme,
// used MPSC here: many request handlers push, one flusher pops).
class LogLineRing {
 public:
  // `capacity` is rounded up to a power of two, minimum 2.
  explicit LogLineRing(size_t capacity);

  LogLineRing(const LogLineRing&) = delete;
  LogLineRing& operator=(const LogLineRing&) = delete;

  // Lock-free; returns false (and leaves `line` untouched) when full.
  bool TryPush(std::string&& line);
  // Single-consumer pop; returns false when empty.
  bool TryPop(std::string* out);

  size_t capacity() const { return cells_.size(); }

 private:
  struct Cell {
    std::atomic<uint64_t> seq;
    std::string line;
  };

  std::vector<Cell> cells_;
  size_t mask_;
  alignas(64) std::atomic<uint64_t> head_{0};  // producers
  alignas(64) std::atomic<uint64_t> tail_{0};  // consumer
};

struct AccessLogOptions {
  // Ring capacity in lines; pushes beyond it are dropped and counted.
  size_t ring_capacity = 4096;
  // Flusher wake interval.
  uint64_t flush_interval_ms = 20;
  // Destination file ("" = no file; a sink function may still be set).
  std::string path;
  // Optional extra sink (tests, /debug endpoints). Called from the flusher
  // thread only, one '\n'-terminated line per call.
  std::function<void(std::string_view)> sink;
};

class AccessLog {
 public:
  explicit AccessLog(AccessLogOptions options);
  ~AccessLog();  // stops the flusher after a final drain

  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  // Lock-free append of one line (a complete JSON object, no trailing
  // newline — Write adds it). Dropped (and counted) when the ring is full.
  void Write(std::string&& line);

  // Blocks until every line written before the call has reached the sinks
  // (tests; the destructor drains implicitly).
  void Flush();

  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  uint64_t written() const {
    return written_.load(std::memory_order_relaxed);
  }

 private:
  void FlusherLoop();
  // Drains the ring to the sinks; returns lines drained.
  size_t DrainOnce();

  AccessLogOptions options_;
  LogLineRing ring_;
  std::FILE* file_ = nullptr;
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> written_{0};   // pushed successfully
  std::atomic<uint64_t> flushed_{0};   // drained to sinks
  std::atomic<bool> stopping_{false};
  std::thread flusher_;
};

// One captured slow request, with the explain fate tree re-run after the
// slow execution (re-runs are usually warm, so capture is cheap; the tree's
// *structure* — what was visited, pruned, cached — is what debugging needs).
struct SlowQueryEntry {
  uint64_t ts_ms = 0;        // capture time (ms since daemon start)
  std::string request_id;
  uint64_t rid64 = 0;        // FNV-1a of request_id (joins log + spans)
  std::string archive;
  std::string command;
  uint64_t dur_ns = 0;       // the slow execution's latency
  int status = 0;
  std::string explain_render;  // fate tree; "" when re-explain failed

  // Renders this entry as a JSON object.
  std::string ToJson() const;
};

// Bounded ring of the most recent slow queries. Mutex-protected: entries
// arrive at slow-query rate, not request rate.
class SlowQueryLog {
 public:
  explicit SlowQueryLog(size_t capacity) : capacity_(capacity) {}

  void Record(SlowQueryEntry entry);

  // Newest first.
  std::vector<SlowQueryEntry> Snapshot() const;

  // JSON body for GET /debug/slow:
  //   {"threshold_ns":N,"captured":N,"entries":[...newest first...]}
  std::string RenderJson(uint64_t threshold_ns) const;

  uint64_t captured() const;

 private:
  size_t capacity_;
  mutable std::mutex mu_;
  std::deque<SlowQueryEntry> entries_;
  uint64_t captured_ = 0;
};

// FNV-1a 64-bit over `s` — the request-id hash attached to trace spans and
// emitted as `rid64` in the access log.
uint64_t RequestIdHash(std::string_view s);

// Generates a 16-hex-char request id, unique within the process and
// non-guessable across runs. When the daemon generated the id itself,
// RequestIdHash(id) is still the join key — ids are opaque strings either
// way (clients may supply their own via X-Request-Id).
std::string GenerateRequestId();

}  // namespace loggrep

#endif  // SRC_SERVER_REQUEST_LOG_H_
