// loggrepd: a long-lived query-serving daemon over POSIX sockets.
//
// The paper's cost model (§5) assumes LogGrep runs as a shared cloud
// service: many users grepping hot compressed archives through one process
// whose caches amortize across all of them. This daemon is that shape. A
// minimal HTTP/1.1 API (src/server/http.h, no external dependencies) rides
// on one accept thread plus the existing ThreadPool:
//
//   accept thread ──► ThreadPool::Submit(connection)
//                          │ one pool task per connection; the task owns
//                          │ the socket for the connection's whole life
//                          ▼
//                     parse request ─► admission check ─► ArchiveService
//                          ▲                                   │
//                          └────── keep-alive loop ◄───────────┘
//
// Endpoints:
//   POST /query?archive=<rel>[&degrade=0][&deadline_ms=N]   body = command
//   GET  /query?archive=<rel>&q=<command>[&...]             (same, in URL)
//   GET  /explain?archive=<rel>&q=<command>[&...]
//   POST /compact?archive=<rel>   admin: one compaction pass over an
//                      ArchiveSet root (400 for plain archives); returns
//                      the merge report as JSON
//   GET  /metrics      Prometheus exposition: registry counters/histograms,
//                      windowed SLO gauges, build_info + uptime
//   GET  /healthz      liveness JSON: version, uptime, open-archive /
//                      in-flight counts
//   GET  /statusz      human-readable service state (src/server/telemetry.h)
//   GET  /debug/slow   bounded slow-query log with explain fate trees
//
// Per-request telemetry: every response carries an X-Request-Id header —
// the client's own (X-Request-Id request header) or a generated 16-hex id.
// The id's FNV-1a hash is attached to the request's trace spans ("rid" arg)
// and emitted as "rid64" in the JSON-lines access log, so one value joins
// the access log, the slow-query log, and the exported trace. Requests
// slower than `slow_query_threshold_ns` are re-run with explain to capture
// their fate tree into the slow-query log (bounded, served by /debug/slow).
//
// Status contract (single source of truth: src/server/archive_service.h):
// 200 complete, 206 degraded (PartialReport in the body), 400 bad query,
// 404 unknown archive, 429 over admission limit (Retry-After set), 500
// block failure with ?degrade=0.
//
// Admission control: at most `max_inflight_queries` query/explain requests
// execute at once, enforced with an atomic gate *before* any archive work.
// Excess requests are bounced immediately with 429 + Retry-After — the
// daemon sheds load instead of queueing it, so overload degrades service
// latency for no one and can never collapse into an unbounded backlog.
//
// Shutdown: Shutdown() (the CLI wires SIGTERM to it) stops the accept loop,
// nudges idle keep-alive connections closed, lets in-flight requests finish
// and respond with "Connection: close", and joins every worker before
// returning — a drain, not an abort.
#ifndef SRC_SERVER_DAEMON_H_
#define SRC_SERVER_DAEMON_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/common/metrics.h"
#include "src/common/thread_pool.h"
#include "src/server/archive_service.h"
#include "src/server/http.h"
#include "src/server/request_log.h"
#include "src/server/telemetry.h"

namespace loggrep {

struct DaemonOptions {
  // Listening address. Port 0 binds an ephemeral port (tests/bench read the
  // real one from LoggrepDaemon::port()). Loopback by default: loggrepd has
  // no authentication story yet, so it must not listen on the open network.
  std::string host = "127.0.0.1";
  uint16_t port = 0;

  // Connection-handling pool. One pool task per live connection, so this
  // is also the concurrent-connection ceiling; further accepted connections
  // queue inside the pool until a slot frees.
  size_t num_threads = 8;

  // Admission control: maximum concurrently executing query/explain
  // requests. 0 is honored literally (every query bounced 429) — tests use
  // it to pin the overload contract.
  size_t max_inflight_queries = 16;
  // Value of the Retry-After header on 429 responses, in seconds.
  unsigned retry_after_seconds = 1;

  // Idle keep-alive connections are closed after this long without a
  // request byte.
  uint64_t idle_timeout_ms = 30'000;

  // Serving root + per-archive options (metrics/env/cache budget/retry).
  ServiceOptions service;

  HttpLimits limits;

  // Registry for "server.*" counters and the /metrics endpoint. Borrowed;
  // null = daemon-private registry.
  MetricsRegistry* metrics = nullptr;

  // Rolling-window geometry + SLO targets for /metrics gauges + /statusz.
  TelemetryOptions telemetry;

  // Access log destination + ring sizing. Always on (the in-memory ring is
  // cheap); set `access_log.path` to persist JSON lines to a file.
  AccessLogOptions access_log;

  // Queries at least this slow get their explain fate tree captured into
  // the slow-query log (GET /debug/slow). 0 disables capture.
  uint64_t slow_query_threshold_ns = 1'000'000'000ull;  // 1 s
  // Entries the slow-query log retains (oldest evicted first).
  size_t slow_log_capacity = 64;
};

class LoggrepDaemon {
 public:
  explicit LoggrepDaemon(DaemonOptions options);
  ~LoggrepDaemon();  // implies Shutdown()

  LoggrepDaemon(const LoggrepDaemon&) = delete;
  LoggrepDaemon& operator=(const LoggrepDaemon&) = delete;

  // Binds, listens and starts the accept loop. Returns the bound port.
  Result<uint16_t> Start();

  // Graceful drain (see file comment). Idempotent; safe from any thread
  // except a connection handler's own.
  void Shutdown();

  bool running() const { return running_.load(std::memory_order_acquire); }
  uint16_t port() const { return port_; }
  // Currently executing query/explain requests (admission gate reading).
  size_t inflight_queries() const {
    return inflight_queries_.load(std::memory_order_relaxed);
  }
  ArchiveService& service() { return *service_; }
  MetricsRegistry& metrics() { return *metrics_; }
  ServerTelemetry& telemetry() { return *telemetry_; }
  AccessLog& access_log() { return *access_log_; }
  SlowQueryLog& slow_log() { return *slow_log_; }
  // Nanoseconds since this daemon object was constructed.
  uint64_t uptime_ns() const;

 private:
  // Everything one request contributes to the access log beyond what the
  // HttpRequest/HttpResponse pair already carries. Route/RunQuery fill it;
  // HandleConnection emits the line and runs slow-query capture.
  struct RequestRecord {
    std::string request_id;
    uint64_t rid64 = 0;
    std::string archive;
    std::string command;
    bool shed = false;      // bounced by admission control (429)
    bool degraded = false;  // 206 partial
    ServiceQueryStats stats;
    std::string explain_render;  // filled when the request was /explain
  };

  void AcceptLoop();
  void HandleConnection(int fd);
  // Routes one parsed request. Sets `close_after` when the response must be
  // the connection's last (errors, drain).
  HttpResponse Route(const HttpRequest& request, bool* close_after,
                     RequestRecord* rec);
  HttpResponse RunQuery(const HttpRequest& request, bool explain,
                        RequestRecord* rec);
  // Access-log emission + telemetry + slow-query capture for one finished
  // request. `request` may be null (parse errors have no parsed request).
  void FinishRequest(const HttpRequest* request, const HttpResponse& response,
                     RequestRecord* rec, uint64_t start_ns, uint64_t end_ns);
  std::string RenderHealthz() const;
  std::string RenderStatuszPage(uint64_t now_ns) const;

  DaemonOptions options_;
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_ = nullptr;
  // Declared (and constructed) before service_: ArchiveSet handles owned by
  // the service emit maintenance events into this log from janitor and
  // compaction threads, so it must be destroyed after them.
  std::unique_ptr<AccessLog> access_log_;
  std::unique_ptr<ArchiveService> service_;
  std::unique_ptr<ServerTelemetry> telemetry_;
  std::unique_ptr<SlowQueryLog> slow_log_;
  uint64_t start_ns_ = 0;  // construction time (uptime + ts_ms base)
  std::unique_ptr<ThreadPool> pool_;
  std::thread accept_thread_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<size_t> inflight_queries_{0};
  std::atomic<size_t> active_connections_{0};
  std::mutex drain_mu_;
  std::condition_variable drained_;
};

}  // namespace loggrep

#endif  // SRC_SERVER_DAEMON_H_
