#include "src/common/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace loggrep {

size_t Histogram::BucketFor(uint64_t value) {
  if (value == 0) {
    return 0;
  }
  // floor(log2(value)) + 1, capped at the overflow bucket.
  const size_t b = 64 - static_cast<size_t>(std::countl_zero(value));
  return std::min<size_t>(b, kNumBuckets - 1);
}

uint64_t Histogram::BucketLowerBound(size_t b) {
  if (b == 0) {
    return 0;
  }
  if (b == 1) {
    return 1;
  }
  return uint64_t{1} << (b - 1);
}

uint64_t Histogram::BucketUpperBound(size_t b) {
  if (b == 0) {
    return 0;
  }
  if (b >= kNumBuckets - 1) {
    return UINT64_MAX;
  }
  return (uint64_t{1} << b) - 1;
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t current = max_.load(std::memory_order_relaxed);
  while (value > current &&
         !max_.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  for (size_t b = 0; b < kNumBuckets; ++b) {
    snap.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::Reset() {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
  for (size_t b = 0; b < kNumBuckets; ++b) {
    buckets[b] += other.buckets[b];
  }
}

uint64_t HistogramSnapshot::Percentile(double q) const {
  if (count == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 100.0);
  // 1-based rank of the requested quantile.
  uint64_t rank =
      static_cast<uint64_t>(std::ceil(q / 100.0 * static_cast<double>(count)));
  rank = std::clamp<uint64_t>(rank, 1, count);

  uint64_t cumulative = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    if (buckets[b] == 0) {
      continue;
    }
    cumulative += buckets[b];
    if (cumulative < rank) {
      continue;
    }
    if (b == 0) {
      return 0;
    }
    const uint64_t lo = Histogram::BucketLowerBound(b);
    // Interpolation ceiling: the bucket's nominal top, but never beyond the
    // observed max (keeps the overflow bucket honest).
    const uint64_t hi = std::min(Histogram::BucketUpperBound(b), max);
    if (hi <= lo) {
      return std::min(lo, max);
    }
    const uint64_t into_bucket = rank - (cumulative - buckets[b]);  // >= 1
    const double frac =
        static_cast<double>(into_bucket) / static_cast<double>(buckets[b]);
    const uint64_t value =
        lo + static_cast<uint64_t>(frac * static_cast<double>(hi - lo));
    return std::min(value, max);
  }
  return max;
}

}  // namespace loggrep
