#include "src/common/metrics.h"

namespace loggrep {

Counter* MetricsRegistry::GetOrCreate(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

std::map<std::string, uint64_t> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, uint64_t> out;
  for (const auto& [name, counter] : counters_) {
    out.emplace(name, counter->value());
  }
  return out;
}

}  // namespace loggrep
