#include "src/common/metrics.h"

namespace loggrep {

Counter* MetricsRegistry::GetOrCreate(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Histogram* MetricsRegistry::GetOrCreateHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
  }
  return slot.get();
}

std::map<std::string, uint64_t> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, uint64_t> out;
  for (const auto& [name, counter] : counters_) {
    out.emplace(name, counter->value());
  }
  return out;
}

std::map<std::string, HistogramSnapshot> MetricsRegistry::HistogramSnapshots()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, HistogramSnapshot> out;
  for (const auto& [name, histogram] : histograms_) {
    out.emplace(name, histogram->Snapshot());
  }
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->Reset();
  }
}

}  // namespace loggrep
