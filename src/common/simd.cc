#include "src/common/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define LOGGREP_SIMD_X86 1
#include <immintrin.h>
#else
#define LOGGREP_SIMD_X86 0
#endif

namespace loggrep {
namespace {

constexpr size_t kNpos = std::string_view::npos;

SimdTier DetectTier() {
#if LOGGREP_SIMD_X86
  if (__builtin_cpu_supports("avx2")) {
    return SimdTier::kAvx2;
  }
#if defined(__x86_64__)
  return SimdTier::kSse2;  // architectural baseline on x86-64
#else
  return __builtin_cpu_supports("sse2") ? SimdTier::kSse2 : SimdTier::kScalar;
#endif
#else
  return SimdTier::kScalar;
#endif
}

SimdTier HardwareTier() {
  static const SimdTier tier = DetectTier();
  return tier;
}

std::atomic<SimdTier>& TierSlot() {
  static std::atomic<SimdTier> tier = [] {
    const char* force = std::getenv("LOGGREP_FORCE_SCALAR");
    if (force != nullptr && force[0] != '\0' && force[0] != '0') {
      return SimdTier::kScalar;
    }
    return HardwareTier();
  }();
  return tier;
}

// ---- scalar tier -----------------------------------------------------------

size_t FindByteScalar(const char* p, size_t n, size_t from, char byte) {
  for (size_t i = from; i < n; ++i) {
    if (p[i] == byte) {
      return i;
    }
  }
  return kNpos;
}

bool BlocksEqualScalar(const char* a, const char* b, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) {
      return false;
    }
  }
  return true;
}

#if LOGGREP_SIMD_X86

// ---- SSE2 tier -------------------------------------------------------------

size_t FindByteSse2(const char* p, size_t n, size_t from, char byte) {
  const __m128i needle = _mm_set1_epi8(byte);
  size_t i = from;
  for (; i + 16 <= n; i += 16) {
    const __m128i chunk =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    const int mask = _mm_movemask_epi8(_mm_cmpeq_epi8(chunk, needle));
    if (mask != 0) {
      return i + static_cast<size_t>(__builtin_ctz(static_cast<unsigned>(mask)));
    }
  }
  return FindByteScalar(p, n, i, byte);
}

bool BlocksEqualSse2(const char* a, const char* b, size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    if (_mm_movemask_epi8(_mm_cmpeq_epi8(va, vb)) != 0xFFFF) {
      return false;
    }
  }
  if (i < n && n >= 16) {
    // Overlap the final (unaligned) 16 bytes instead of a scalar tail.
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + n - 16));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + n - 16));
    return _mm_movemask_epi8(_mm_cmpeq_epi8(va, vb)) == 0xFFFF;
  }
  return BlocksEqualScalar(a + i, b + i, n - i);
}

// First+last-byte candidate filter (the "generic SIMD memmem" shape): a
// position is a candidate only when needle[0] matches at i and
// needle[k-1] matches at i + k - 1; candidates are then verified bytewise.
void FindAllSse2(std::string_view haystack, std::string_view needle,
                 std::vector<size_t>& hits) {
  const char* p = haystack.data();
  const size_t n = haystack.size();
  const size_t k = needle.size();
  const __m128i first = _mm_set1_epi8(needle.front());
  const __m128i last = _mm_set1_epi8(needle.back());
  size_t i = 0;
  while (i + 16 + k - 1 <= n) {
    const __m128i block_first =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    const __m128i block_last =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i + k - 1));
    unsigned mask = static_cast<unsigned>(
        _mm_movemask_epi8(_mm_and_si128(_mm_cmpeq_epi8(block_first, first),
                                        _mm_cmpeq_epi8(block_last, last))));
    while (mask != 0) {
      const size_t pos = i + static_cast<size_t>(__builtin_ctz(mask));
      mask &= mask - 1;
      if (BlocksEqualSse2(p + pos + 1, needle.data() + 1, k - 2)) {
        hits.push_back(pos);
      }
    }
    i += 16;
  }
  for (; i + k <= n; ++i) {
    if (p[i] == needle.front() && p[i + k - 1] == needle.back() &&
        BlocksEqualScalar(p + i + 1, needle.data() + 1, k - 2)) {
      hits.push_back(i);
    }
  }
}

// ---- AVX2 tier -------------------------------------------------------------

__attribute__((target("avx2"))) size_t FindByteAvx2(const char* p, size_t n,
                                                    size_t from, char byte) {
  const __m256i needle = _mm256_set1_epi8(byte);
  size_t i = from;
  for (; i + 32 <= n; i += 32) {
    const __m256i chunk =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    const unsigned mask = static_cast<unsigned>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(chunk, needle)));
    if (mask != 0) {
      return i + static_cast<size_t>(__builtin_ctz(mask));
    }
  }
  return FindByteSse2(p, n, i, byte);
}

__attribute__((target("avx2"))) bool BlocksEqualAvx2(const char* a,
                                                     const char* b, size_t n) {
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    if (_mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)) != -1) {
      return false;
    }
  }
  if (i < n && n >= 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + n - 32));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + n - 32));
    return _mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)) == -1;
  }
  return BlocksEqualSse2(a + i, b + i, n - i);
}

__attribute__((target("avx2"))) void FindAllAvx2(std::string_view haystack,
                                                 std::string_view needle,
                                                 std::vector<size_t>& hits) {
  const char* p = haystack.data();
  const size_t n = haystack.size();
  const size_t k = needle.size();
  const __m256i first = _mm256_set1_epi8(needle.front());
  const __m256i last = _mm256_set1_epi8(needle.back());
  size_t i = 0;
  while (i + 32 + k - 1 <= n) {
    const __m256i block_first =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    const __m256i block_last =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i + k - 1));
    unsigned mask = static_cast<unsigned>(_mm256_movemask_epi8(
        _mm256_and_si256(_mm256_cmpeq_epi8(block_first, first),
                         _mm256_cmpeq_epi8(block_last, last))));
    while (mask != 0) {
      const size_t pos = i + static_cast<size_t>(__builtin_ctz(mask));
      mask &= mask - 1;
      if (BlocksEqualAvx2(p + pos + 1, needle.data() + 1, k - 2)) {
        hits.push_back(pos);
      }
    }
    i += 32;
  }
  for (; i + k <= n; ++i) {
    if (p[i] == needle.front() && p[i + k - 1] == needle.back() &&
        BlocksEqualScalar(p + i + 1, needle.data() + 1, k - 2)) {
      hits.push_back(i);
    }
  }
}

#endif  // LOGGREP_SIMD_X86

void FindAllScalar(std::string_view haystack, std::string_view needle,
                   std::vector<size_t>& hits) {
  const size_t k = needle.size();
  for (size_t i = 0; i + k <= haystack.size(); ++i) {
    if (haystack[i] == needle.front() && haystack[i + k - 1] == needle.back() &&
        BlocksEqualScalar(haystack.data() + i + 1, needle.data() + 1, k - 2)) {
      hits.push_back(i);
    }
  }
}

void FindAllBytes(std::string_view haystack, char byte,
                  std::vector<size_t>& hits) {
  size_t pos = FindByte(haystack, 0, byte);
  while (pos != kNpos) {
    hits.push_back(pos);
    pos = FindByte(haystack, pos + 1, byte);
  }
}

}  // namespace

SimdTier ActiveSimdTier() {
  return TierSlot().load(std::memory_order_relaxed);
}

std::vector<SimdTier> SupportedSimdTiers() {
  std::vector<SimdTier> tiers = {SimdTier::kScalar};
  if (HardwareTier() >= SimdTier::kSse2) {
    tiers.push_back(SimdTier::kSse2);
  }
  if (HardwareTier() >= SimdTier::kAvx2) {
    tiers.push_back(SimdTier::kAvx2);
  }
  return tiers;
}

const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kSse2:
      return "sse2";
    case SimdTier::kAvx2:
      return "avx2";
  }
  return "unknown";
}

ScopedSimdTier::ScopedSimdTier(SimdTier tier)
    : prev_(TierSlot().exchange(tier, std::memory_order_relaxed)) {}

ScopedSimdTier::~ScopedSimdTier() {
  TierSlot().store(prev_, std::memory_order_relaxed);
}

size_t FindByte(std::string_view haystack, size_t from, char byte) {
  if (from >= haystack.size()) {
    return kNpos;
  }
#if LOGGREP_SIMD_X86
  switch (ActiveSimdTier()) {
    case SimdTier::kAvx2:
      return FindByteAvx2(haystack.data(), haystack.size(), from, byte);
    case SimdTier::kSse2:
      return FindByteSse2(haystack.data(), haystack.size(), from, byte);
    case SimdTier::kScalar:
      break;
  }
#endif
  return FindByteScalar(haystack.data(), haystack.size(), from, byte);
}

bool BlocksEqual(const char* a, const char* b, size_t n) {
  if (n == 0) {
    return true;
  }
#if LOGGREP_SIMD_X86
  switch (ActiveSimdTier()) {
    case SimdTier::kAvx2:
      return BlocksEqualAvx2(a, b, n);
    case SimdTier::kSse2:
      return BlocksEqualSse2(a, b, n);
    case SimdTier::kScalar:
      break;
  }
#endif
  return BlocksEqualScalar(a, b, n);
}

void FindAll(std::string_view haystack, std::string_view needle,
             std::vector<size_t>& hits) {
  if (needle.empty() || needle.size() > haystack.size()) {
    return;
  }
  if (needle.size() == 1) {
    FindAllBytes(haystack, needle.front(), hits);
    return;
  }
#if LOGGREP_SIMD_X86
  switch (ActiveSimdTier()) {
    case SimdTier::kAvx2:
      FindAllAvx2(haystack, needle, hits);
      return;
    case SimdTier::kSse2:
      FindAllSse2(haystack, needle, hits);
      return;
    case SimdTier::kScalar:
      break;
  }
#endif
  FindAllScalar(haystack, needle, hits);
}

}  // namespace loggrep
