// Serializable Bloom filter (double hashing over FNV-1a), used by the
// archive layer to prune whole blocks per keyword before any CapsuleBox is
// opened.
#ifndef SRC_COMMON_BLOOM_H_
#define SRC_COMMON_BLOOM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/result.h"

namespace loggrep {

class BloomFilter {
 public:
  BloomFilter() = default;
  // `expected_items` sized at `bits_per_item` bits each; hash count derived
  // from the classic optimum k = ln2 * bits_per_item.
  BloomFilter(uint64_t expected_items, uint32_t bits_per_item);

  void Add(std::string_view item);
  // False when the item is definitely absent.
  bool MayContain(std::string_view item) const;

  bool empty() const { return bits_.empty(); }
  size_t SizeBytes() const { return bits_.size(); }
  // Fraction of set bits (diagnostic; ~0.5 means saturated).
  double FillRatio() const;

  void WriteTo(ByteWriter& out) const;
  static Result<BloomFilter> ReadFrom(ByteReader& in);

 private:
  uint32_t num_hashes_ = 0;
  std::string bits_;  // bit array, 8 bits per char
};

}  // namespace loggrep

#endif  // SRC_COMMON_BLOOM_H_
