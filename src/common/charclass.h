// Six-bit character-class masks used for Capsule stamps and summary filtering.
//
// The paper (§2.2, §4.3) represents the "type number" of a value set with six
// bits, one per character group: 0-9, a-f, A-F, g-z, G-Z, and "other".
// A keyword (sub)string K can possibly occur inside a Capsule with mask C only
// if (K & C) == K, i.e. every character class present in the keyword is also
// present in the Capsule.
#ifndef SRC_COMMON_CHARCLASS_H_
#define SRC_COMMON_CHARCLASS_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace loggrep {

using TypeMask = uint8_t;

inline constexpr TypeMask kMaskDigit = 1u << 0;     // 0-9
inline constexpr TypeMask kMaskHexLower = 1u << 1;  // a-f
inline constexpr TypeMask kMaskHexUpper = 1u << 2;  // A-F
inline constexpr TypeMask kMaskAlphaLower = 1u << 3;  // g-z
inline constexpr TypeMask kMaskAlphaUpper = 1u << 4;  // G-Z
inline constexpr TypeMask kMaskOther = 1u << 5;     // everything else
inline constexpr TypeMask kMaskAll = 0x3F;

// Class of a single character.
TypeMask CharClassOf(char c);

// Union of classes over all characters of `s`; 0 for the empty string.
TypeMask TypeMaskOf(std::string_view s);

// True iff every character class used by `keyword` is available in `capsule`:
// the stamp check "K & C == K" from §5.1.
inline bool MaskSubsumes(TypeMask capsule, TypeMask keyword) {
  return (keyword & capsule) == keyword;
}

// Number of distinct character classes set in the mask (paper reports e.g.
// "3.1 types of characters on average").
int MaskTypeCount(TypeMask mask);

// Debug rendering, e.g. "0-9|A-F".
std::string MaskToString(TypeMask mask);

}  // namespace loggrep

#endif  // SRC_COMMON_CHARCLASS_H_
