// Wall-clock timer for benchmark harnesses and stage-time accounting.
#ifndef SRC_COMMON_TIMER_H_
#define SRC_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace loggrep {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  // Integer nanoseconds since construction/Reset (clamped at 0). All stage
  // timings in the pipeline are recorded in nanoseconds.
  uint64_t ElapsedNanos() const {
    const auto d = std::chrono::duration_cast<std::chrono::nanoseconds>(
        Clock::now() - start_);
    return d.count() <= 0 ? 0 : static_cast<uint64_t>(d.count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace loggrep

#endif  // SRC_COMMON_TIMER_H_
