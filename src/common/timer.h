// Wall-clock timer for benchmark harnesses.
#ifndef SRC_COMMON_TIMER_H_
#define SRC_COMMON_TIMER_H_

#include <chrono>

namespace loggrep {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace loggrep

#endif  // SRC_COMMON_TIMER_H_
