// Build identity for the serving layer: version, git revision, active SIMD
// tier, and process uptime. /metrics exports these as a Prometheus
// `build_info`-style gauge (value 1, identity in labels — the convention
// scrapers join against), /healthz and /statusz embed them directly.
#ifndef SRC_COMMON_BUILD_INFO_H_
#define SRC_COMMON_BUILD_INFO_H_

#include <cstdint>
#include <string>

namespace loggrep {

// Semantic version of this build (bumped per serving-layer milestone).
const char* BuildVersion();

// Git revision baked in at configure time (LOGGREP_GIT_SHA compile
// definition); "unknown" when built outside a git checkout.
const char* BuildGitSha();

// Nanoseconds since the process first asked (first call wins the epoch, so
// construct-early callers like the daemon see true process age).
uint64_t ProcessUptimeNanos();

// Prometheus exposition lines:
//   # TYPE loggrep_build_info gauge
//   loggrep_build_info{version="...",git_sha="...",simd="..."} 1
//   # TYPE loggrep_process_uptime_seconds gauge
//   loggrep_process_uptime_seconds 12.345
void AppendBuildInfoMetrics(std::string* out);

// JSON fragment (no surrounding braces):
//   "version":"...","git_sha":"...","simd":"...","uptime_seconds":12.345
void AppendBuildInfoJsonFields(std::string* out);

}  // namespace loggrep

#endif  // SRC_COMMON_BUILD_INFO_H_
