#include "src/common/string_util.h"

#include <algorithm>
#include <array>

namespace loggrep {

std::vector<std::string_view> SplitNonEmpty(std::string_view text,
                                            std::string_view delims) {
  std::array<bool, 256> is_delim{};
  for (char d : delims) {
    is_delim[static_cast<unsigned char>(d)] = true;
  }
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || is_delim[static_cast<unsigned char>(text[i])]) {
      if (i > start) {
        out.push_back(text.substr(start, i - start));
      }
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> SplitKeepEmpty(std::string_view text, char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view LongestCommonSubstring(std::string_view a, std::string_view b) {
  if (a.empty() || b.empty()) {
    return {};
  }
  // Rolling single-row DP: row[j] = length of common suffix of a[..i], b[..j].
  std::vector<uint32_t> row(b.size() + 1, 0);
  size_t best_len = 0;
  size_t best_end_in_a = 0;
  for (size_t i = 1; i <= a.size(); ++i) {
    uint32_t prev_diag = 0;  // row[j-1] from the previous iteration of i
    for (size_t j = 1; j <= b.size(); ++j) {
      const uint32_t saved = row[j];
      if (a[i - 1] == b[j - 1]) {
        row[j] = prev_diag + 1;
        if (row[j] > best_len) {
          best_len = row[j];
          best_end_in_a = i;
        }
      } else {
        row[j] = 0;
      }
      prev_diag = saved;
    }
  }
  return a.substr(best_end_in_a - best_len, best_len);
}

std::string DistinctNonAlnumChars(std::string_view s) {
  std::array<bool, 256> seen{};
  std::string out;
  for (char c : s) {
    if (!IsAsciiAlnum(c) && !seen[static_cast<unsigned char>(c)]) {
      seen[static_cast<unsigned char>(c)] = true;
      out += c;
    }
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

double LengthVariance(const std::vector<std::string>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double mean = 0.0;
  for (const std::string& v : values) {
    mean += static_cast<double>(v.size());
  }
  mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (const std::string& v : values) {
    const double d = static_cast<double>(v.size()) - mean;
    var += d * d;
  }
  return var / static_cast<double>(values.size());
}

}  // namespace loggrep
