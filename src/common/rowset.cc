#include "src/common/rowset.h"

#include <algorithm>
#include <cassert>

namespace loggrep {

RowSet RowSet::Of(uint32_t universe, std::vector<uint32_t> rows) {
  RowSet s(universe, false);
  assert(std::is_sorted(rows.begin(), rows.end()));
  assert(rows.empty() || rows.back() < universe);
  if (rows.size() == universe) {
    s.all_ = true;
  } else {
    s.rows_ = std::move(rows);
  }
  return s;
}

std::vector<uint32_t> RowSet::ToRows() const {
  if (!all_) {
    return rows_;
  }
  std::vector<uint32_t> out(universe_);
  for (uint32_t i = 0; i < universe_; ++i) {
    out[i] = i;
  }
  return out;
}

bool RowSet::Contains(uint32_t row) const {
  if (row >= universe_) {
    return false;
  }
  if (all_) {
    return true;
  }
  return std::binary_search(rows_.begin(), rows_.end(), row);
}

RowSet RowSet::IntersectWith(const RowSet& other) const {
  assert(universe_ == other.universe_);
  if (all_) {
    return other;
  }
  if (other.all_) {
    return *this;
  }
  std::vector<uint32_t> out;
  out.reserve(std::min(rows_.size(), other.rows_.size()));
  std::set_intersection(rows_.begin(), rows_.end(), other.rows_.begin(),
                        other.rows_.end(), std::back_inserter(out));
  return Of(universe_, std::move(out));
}

RowSet RowSet::UnionWith(const RowSet& other) const {
  assert(universe_ == other.universe_);
  if (all_ || other.all_) {
    return All(universe_);
  }
  std::vector<uint32_t> out;
  out.reserve(rows_.size() + other.rows_.size());
  std::set_union(rows_.begin(), rows_.end(), other.rows_.begin(),
                 other.rows_.end(), std::back_inserter(out));
  return Of(universe_, std::move(out));
}

RowSet RowSet::Complement() const {
  if (all_) {
    return None(universe_);
  }
  std::vector<uint32_t> out;
  out.reserve(universe_ - rows_.size());
  size_t next = 0;
  for (uint32_t i = 0; i < universe_; ++i) {
    if (next < rows_.size() && rows_[next] == i) {
      ++next;
    } else {
      out.push_back(i);
    }
  }
  return Of(universe_, std::move(out));
}

bool RowSet::operator==(const RowSet& other) const {
  if (universe_ != other.universe_) {
    return false;
  }
  if (all_ != other.all_) {
    return false;
  }
  return all_ || rows_ == other.rows_;
}

}  // namespace loggrep
