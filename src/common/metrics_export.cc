#include "src/common/metrics_export.h"

#include <cctype>
#include <cstdio>
#include <utility>

namespace loggrep {
namespace {

std::string SanitizePrometheusName(const std::string& name) {
  std::string out = "loggrep_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

void AppendJsonKey(std::string& out, const std::string& key) {
  out += '"';
  for (char c : key) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  out += '"';
}

}  // namespace

std::string ExportPrometheus(const MetricsRegistry& registry) {
  std::string out;
  for (const auto& [name, value] : registry.Snapshot()) {
    const std::string prom = SanitizePrometheusName(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, snap] : registry.HistogramSnapshots()) {
    const std::string prom = SanitizePrometheusName(name);
    out += "# TYPE " + prom + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t b = 0; b + 1 < HistogramSnapshot::kNumBuckets; ++b) {
      if (snap.buckets[b] == 0) {
        continue;  // compact exposition: only non-empty boundaries
      }
      cumulative += snap.buckets[b];
      // The overflow bucket is excluded from the loop: its boundary is the
      // trailing "+Inf" line below (emitting it here too would duplicate
      // the le="+Inf" series whenever it is non-empty).
      out += prom + "_bucket{le=\"" +
             std::to_string(Histogram::BucketUpperBound(b)) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += prom + "_bucket{le=\"+Inf\"} " + std::to_string(snap.count) + "\n";
    out += prom + "_sum " + std::to_string(snap.sum) + "\n";
    out += prom + "_count " + std::to_string(snap.count) + "\n";
    // Point-estimate quantile gauges next to the native histogram. The
    // buckets are what external scrapers should aggregate across processes
    // (quantiles of one process do not merge); the gauges serve dashboards
    // and humans reading a single scrape.
    for (const auto& [suffix, value] :
         {std::pair<const char*, uint64_t>{"_p50", snap.p50()},
          {"_p99", snap.p99()},
          {"_p999", snap.p999()}}) {
      out += "# TYPE " + prom + suffix + " gauge\n";
      out += prom + suffix + " " + std::to_string(value) + "\n";
    }
  }
  return out;
}

void AppendPrometheusGauge(std::string* out, const std::string& name,
                           double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  out->append("# TYPE ").append(name).append(" gauge\n");
  out->append(name).append(" ").append(buf).push_back('\n');
}

std::string ExportJson(const MetricsRegistry& registry) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : registry.Snapshot()) {
    if (!first) {
      out += ',';
    }
    first = false;
    AppendJsonKey(out, name);
    out += ':' + std::to_string(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, snap] : registry.HistogramSnapshots()) {
    if (!first) {
      out += ',';
    }
    first = false;
    AppendJsonKey(out, name);
    out += ":{\"count\":" + std::to_string(snap.count) +
           ",\"sum\":" + std::to_string(snap.sum) +
           ",\"max\":" + std::to_string(snap.max) +
           ",\"p50\":" + std::to_string(snap.p50()) +
           ",\"p90\":" + std::to_string(snap.p90()) +
           ",\"p95\":" + std::to_string(snap.p95()) +
           ",\"p99\":" + std::to_string(snap.p99()) +
           ",\"p999\":" + std::to_string(snap.p999()) + "}";
  }
  out += "}}";
  return out;
}

}  // namespace loggrep
