// Fixed log2-bucketed histograms for latency / size distributions.
//
// Record() is lock-free (a handful of relaxed atomic adds), so histograms
// can sit on hot paths shared by many threads, exactly like Counter. Values
// are unitless uint64s; by convention the pipeline records nanoseconds
// (metric names carry a `_ns` suffix) or bytes (`_bytes`).
//
// Buckets: bucket 0 holds the value 0; bucket b (1..62) holds
// [2^(b-1), 2^b); bucket 63 is the overflow bucket [2^62, inf). Percentile
// estimates interpolate linearly inside a bucket and are clamped to the
// observed maximum, so the overflow bucket cannot report a value that was
// never seen.
#ifndef SRC_COMMON_HISTOGRAM_H_
#define SRC_COMMON_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>

namespace loggrep {

struct HistogramSnapshot {
  static constexpr size_t kNumBuckets = 64;

  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  std::array<uint64_t, kNumBuckets> buckets{};

  // Estimated value at quantile `q` in [0, 100]. Returns 0 on an empty
  // snapshot; clamped to `max`.
  uint64_t Percentile(double q) const;

  uint64_t p50() const { return Percentile(50); }
  uint64_t p90() const { return Percentile(90); }
  uint64_t p95() const { return Percentile(95); }
  uint64_t p99() const { return Percentile(99); }
  uint64_t p999() const { return Percentile(99.9); }
  double mean() const { return count == 0 ? 0.0 : static_cast<double>(sum) / count; }

  // Accumulates `other` into this snapshot (bucket-wise sum, max of max).
  // Rolling windows merge their live slots through this.
  void Merge(const HistogramSnapshot& other);
};

class Histogram {
 public:
  static constexpr size_t kNumBuckets = HistogramSnapshot::kNumBuckets;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  // Lock-free; safe from any thread.
  void Record(uint64_t value);

  // Point-in-time copy (relaxed loads; buckets may lag one another by a few
  // in-flight records — acceptable for monitoring).
  HistogramSnapshot Snapshot() const;

  // Zeroes every cell (used by MetricsRegistry::Reset in tests).
  void Reset();

  // Bucket index holding `value` (see the bucket layout above).
  static size_t BucketFor(uint64_t value);
  // Smallest value of bucket `b` (0 for b == 0).
  static uint64_t BucketLowerBound(size_t b);
  // Largest value of bucket `b` (UINT64_MAX for the overflow bucket).
  static uint64_t BucketUpperBound(size_t b);

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

}  // namespace loggrep

#endif  // SRC_COMMON_HISTOGRAM_H_
