#include "src/common/bytes.h"

namespace loggrep {

void ByteWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void ByteWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void ByteWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  buf_.push_back(static_cast<char>(v));
}

void ByteWriter::PutLengthPrefixed(std::string_view s) {
  PutVarint(s.size());
  PutBytes(s);
}

Result<uint8_t> ByteReader::ReadU8() {
  if (remaining() < 1) {
    return CorruptData("ByteReader: truncated u8");
  }
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint32_t> ByteReader::ReadU32() {
  if (remaining() < 4) {
    return CorruptData("ByteReader: truncated u32");
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> ByteReader::ReadU64() {
  if (remaining() < 8) {
    return CorruptData("ByteReader: truncated u64");
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<uint64_t> ByteReader::ReadVarint() {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= data_.size()) {
      return CorruptData("ByteReader: truncated varint");
    }
    const uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
    if (shift >= 63 && byte > 1) {
      return CorruptData("ByteReader: varint overflow");
    }
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      return v;
    }
    shift += 7;
  }
}

Result<std::string_view> ByteReader::ReadBytes(size_t n) {
  if (remaining() < n) {
    return CorruptData("ByteReader: truncated byte run");
  }
  std::string_view out = data_.substr(pos_, n);
  pos_ += n;
  return out;
}

Result<std::string_view> ByteReader::ReadLengthPrefixed() {
  Result<uint64_t> len = ReadVarint();
  if (!len.ok()) {
    return len.status();
  }
  if (*len > remaining()) {
    return CorruptData("ByteReader: length prefix exceeds buffer");
  }
  return ReadBytes(static_cast<size_t>(*len));
}

}  // namespace loggrep
