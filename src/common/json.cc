#include "src/common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace loggrep {

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

// ---------------------------------------------------------------------------
// JsonValue
// ---------------------------------------------------------------------------

namespace {
const std::string kEmptyString;
const std::vector<JsonValue> kEmptyArray;
const std::map<std::string, JsonValue> kEmptyObject;
const JsonValue kNullValue;
}  // namespace

bool JsonValue::AsBool(bool fallback) const {
  return kind_ == Kind::kBool ? bool_ : fallback;
}

int64_t JsonValue::AsInt(int64_t fallback) const {
  return kind_ == Kind::kNumber ? static_cast<int64_t>(number_) : fallback;
}

uint64_t JsonValue::AsUint(uint64_t fallback) const {
  if (kind_ != Kind::kNumber || number_ < 0) {
    return fallback;
  }
  return static_cast<uint64_t>(number_);
}

double JsonValue::AsDouble(double fallback) const {
  return kind_ == Kind::kNumber ? number_ : fallback;
}

const std::string& JsonValue::AsString() const {
  return kind_ == Kind::kString ? string_ : kEmptyString;
}

const std::vector<JsonValue>& JsonValue::AsArray() const {
  return kind_ == Kind::kArray ? array_ : kEmptyArray;
}

const std::map<std::string, JsonValue>& JsonValue::AsObject() const {
  return kind_ == Kind::kObject ? object_ : kEmptyObject;
}

const JsonValue& JsonValue::Get(const std::string& key) const {
  if (kind_ != Kind::kObject) {
    return kNullValue;
  }
  const auto it = object_.find(key);
  return it == object_.end() ? kNullValue : it->second;
}

JsonValue JsonValue::Null() { return JsonValue(); }

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::Str(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::Object(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

// Nesting cap: a hostile 1 MB document of '[' must not exhaust the stack.
constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    if (Status s = ParseValue(&value, 0); !s.ok()) {
      return s;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      return InvalidArgument("json: trailing bytes after document");
    }
    return value;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool EatLiteral(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) {
      return InvalidArgument("json: nesting too deep");
    }
    SkipWs();
    if (pos_ >= text_.size()) {
      return InvalidArgument("json: unexpected end of input");
    }
    const char c = text_[pos_];
    if (c == '{') {
      return ParseObject(out, depth);
    }
    if (c == '[') {
      return ParseArray(out, depth);
    }
    if (c == '"') {
      std::string s;
      if (Status st = ParseString(&s); !st.ok()) {
        return st;
      }
      *out = JsonValue::Str(std::move(s));
      return OkStatus();
    }
    if (EatLiteral("true")) {
      *out = JsonValue::Bool(true);
      return OkStatus();
    }
    if (EatLiteral("false")) {
      *out = JsonValue::Bool(false);
      return OkStatus();
    }
    if (EatLiteral("null")) {
      *out = JsonValue::Null();
      return OkStatus();
    }
    return ParseNumber(out);
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    std::map<std::string, JsonValue> members;
    if (Eat('}')) {
      *out = JsonValue::Object(std::move(members));
      return OkStatus();
    }
    while (true) {
      SkipWs();
      std::string key;
      if (Status s = ParseString(&key); !s.ok()) {
        return s;
      }
      if (!Eat(':')) {
        return InvalidArgument("json: expected ':' after object key");
      }
      JsonValue value;
      if (Status s = ParseValue(&value, depth + 1); !s.ok()) {
        return s;
      }
      members.insert_or_assign(std::move(key), std::move(value));
      if (Eat(',')) {
        continue;
      }
      if (Eat('}')) {
        break;
      }
      return InvalidArgument("json: expected ',' or '}' in object");
    }
    *out = JsonValue::Object(std::move(members));
    return OkStatus();
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    if (Eat(']')) {
      *out = JsonValue::Array(std::move(items));
      return OkStatus();
    }
    while (true) {
      JsonValue value;
      if (Status s = ParseValue(&value, depth + 1); !s.ok()) {
        return s;
      }
      items.push_back(std::move(value));
      if (Eat(',')) {
        continue;
      }
      if (Eat(']')) {
        break;
      }
      return InvalidArgument("json: expected ',' or ']' in array");
    }
    *out = JsonValue::Array(std::move(items));
    return OkStatus();
  }

  Status ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return InvalidArgument("json: expected string");
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return OkStatus();
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return InvalidArgument("json: truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return InvalidArgument("json: bad \\u escape digit");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not used by
          // any producer in this repo; lone surrogates encode as-is).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return InvalidArgument("json: bad escape character");
      }
    }
    return InvalidArgument("json: unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return InvalidArgument("json: expected value");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      return InvalidArgument("json: malformed number");
    }
    *out = JsonValue::Number(value);
    return OkStatus();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace loggrep
