// Text exporters for MetricsRegistry: Prometheus exposition format and a
// stable JSON document. Both emit keys in sorted order so output is
// deterministic (golden-testable) for a given registry state.
#ifndef SRC_COMMON_METRICS_EXPORT_H_
#define SRC_COMMON_METRICS_EXPORT_H_

#include <string>

#include "src/common/metrics.h"

namespace loggrep {

// Prometheus text exposition. Metric names are prefixed with `loggrep_` and
// sanitized ('.'/'-' and any other non [a-zA-Z0-9_] byte become '_').
// Counters export as `counter`; histograms as native Prometheus histograms
// with cumulative power-of-two `le` buckets (only non-empty boundaries plus
// `+Inf`), `_sum` and `_count` series — the form external scrapers can
// aggregate correctly across processes — followed by `_p50`/`_p99`/`_p999`
// point-estimate gauges for single-scrape reading.
std::string ExportPrometheus(const MetricsRegistry& registry);

// Appends one `# TYPE <name> gauge` exposition line carrying a double value
// (fixed 6-decimal formatting). Used by the daemon for windowed SLO gauges
// that have no uint64 registry cell.
void AppendPrometheusGauge(std::string* out, const std::string& name,
                           double value);

// JSON document:
//   {"counters":{"a.b":1,...},
//    "histograms":{"x_ns":{"count":..,"sum":..,"max":..,
//                           "p50":..,"p90":..,"p95":..,"p99":..,"p999":..},...}}
// Keys are sorted; numbers are plain integers.
std::string ExportJson(const MetricsRegistry& registry);

}  // namespace loggrep

#endif  // SRC_COMMON_METRICS_EXPORT_H_
