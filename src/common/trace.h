// Low-overhead span tracer for the query / ingest pipelines.
//
// A TraceSpan is a scoped RAII measurement: construction captures the start
// time and pushes the span onto a thread-local stack (so nested spans record
// their parent), destruction records one finished TraceEvent into the
// tracer's thread-safe ring buffer. The collected events export as Chrome
// `trace_event` JSON ("ph":"X" complete events plus "s"/"f" flow arrows for
// cross-thread parent links), so a whole query or ingest run can be opened
// in chrome://tracing or Perfetto.
//
// Cost model:
//   - disabled (the default): one relaxed atomic load per span — the
//     constructor checks Tracer::enabled() and does nothing else. This keeps
//     instrumentation compile-time cheap and always-on in release builds.
//   - enabled: start/stop timestamps, a thread-local stack push/pop, and one
//     short mutex-protected ring-buffer write per *finished* span.
//
// Cross-thread stitching: work handed to another thread (ThreadPool tasks)
// carries the submitting span's id; the receiving thread installs it with
// ScopedTraceParent so spans opened there nest under the submitter in the
// exported trace even though they run on a different tid. ThreadPool does
// this automatically for every submitted task.
//
// Names and categories must be string literals (or otherwise outlive the
// tracer): the record path stores the pointers, never copies.
//
// Environment integration (picked up once, by Tracer::Global()):
//   LOGGREP_TRACE=1           start with tracing enabled
//   LOGGREP_TRACE_OUT=<path>  write the Chrome JSON trace at process exit
#ifndef SRC_COMMON_TRACE_H_
#define SRC_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace loggrep {

// One finished span. `start_ns` is relative to the tracer's epoch (its
// construction time).
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  // 0 = root span
  uint32_t tid = 0;        // tracer-assigned stable per-thread index
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  const char* arg_name = nullptr;  // optional single integer argument
  uint64_t arg_value = 0;
};

class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;

  explicit Tracer(size_t capacity = kDefaultCapacity);

  // Process-wide tracer used by TraceSpan. Honors LOGGREP_TRACE /
  // LOGGREP_TRACE_OUT on first use.
  static Tracer& Global();

  void Enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Drops all collected events (the ring keeps its capacity).
  void Clear();

  // Number of events currently held / overwritten since the last Clear().
  size_t size() const;
  uint64_t dropped() const;

  // Point-in-time copy of the held events, oldest first.
  std::vector<TraceEvent> Snapshot() const;

  // Chrome trace_event JSON: {"traceEvents":[...]} with thread-name
  // metadata, one "X" event per span, and "s"/"f" flow arrows for parents
  // that live on a different thread. Safe to call while spans are being
  // recorded (it snapshots under the ring lock).
  std::string ExportChromeJson() const;

  // ExportChromeJson() to a file; returns false on I/O failure.
  bool WriteChromeJson(const std::string& path) const;

  // --- span plumbing (used by TraceSpan / ScopedTraceParent) ---------------

  // Innermost live span of the calling thread (0 when none). Capture this
  // before handing work to another thread, then install it there with
  // ScopedTraceParent to stitch the two threads' spans together.
  static uint64_t CurrentSpanId();

  // Stable small index for the calling thread (assigned on first use).
  static uint32_t CurrentThreadId();

  // Label the calling thread in exported traces ("pool-worker-3", ...).
  void SetCurrentThreadName(std::string name);

  // Appends one finished event (called by ~TraceSpan).
  void Record(const TraceEvent& event);

  // Monotonic nanoseconds since the tracer's epoch.
  uint64_t NowNanos() const;

  // Process-unique span ids (never 0).
  static uint64_t NextSpanId();

 private:
  std::atomic<bool> enabled_{false};

  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  size_t head_ = 0;   // next slot to write
  size_t count_ = 0;  // events held (<= ring_.size())
  uint64_t dropped_ = 0;
  std::unordered_map<uint32_t, std::string> thread_names_;

  uint64_t epoch_ns_ = 0;  // steady_clock at construction
};

// RAII span. Must be destroyed on the thread that created it, in LIFO order
// with any other spans opened on that thread (natural for scoped locals).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "loggrep");
  // Span with a single integer argument (e.g. a capsule id or block seq).
  TraceSpan(const char* name, const char* category, const char* arg_name,
            uint64_t arg_value);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool active() const { return active_; }
  uint64_t span_id() const { return span_id_; }

 private:
  void Begin(const char* name, const char* category, const char* arg_name,
             uint64_t arg_value);

  const char* name_ = nullptr;
  const char* category_ = nullptr;
  const char* arg_name_ = nullptr;
  uint64_t arg_value_ = 0;
  uint64_t span_id_ = 0;
  uint64_t parent_id_ = 0;
  uint64_t start_ns_ = 0;
  bool active_ = false;
};

// Installs `parent_span_id` as the calling thread's current span for the
// scope's lifetime, so spans opened in this scope nest under a span that
// lives on another thread. A zero id is a no-op.
class ScopedTraceParent {
 public:
  explicit ScopedTraceParent(uint64_t parent_span_id);
  ~ScopedTraceParent();

  ScopedTraceParent(const ScopedTraceParent&) = delete;
  ScopedTraceParent& operator=(const ScopedTraceParent&) = delete;

 private:
  uint64_t saved_ = 0;
  bool installed_ = false;
};

}  // namespace loggrep

#endif  // SRC_COMMON_TRACE_H_
