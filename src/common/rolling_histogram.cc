#include "src/common/rolling_histogram.h"

namespace loggrep {

RollingHistogram::RollingHistogram(size_t num_windows, uint64_t window_ns)
    : window_ns_(window_ns == 0 ? 1 : window_ns) {
  if (num_windows == 0) {
    num_windows = 1;
  }
  slots_.reserve(num_windows);
  for (size_t i = 0; i < num_windows; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
}

bool RollingHistogram::Rotate(Slot* slot, uint64_t w) const {
  uint64_t e = slot->epoch.load(std::memory_order_acquire);
  for (;;) {
    if (e == w) {
      return true;  // someone already rotated (or never left) this window
    }
    // kNeverUsed compares greater than any real window index, so it takes
    // the claim path below; a slot holding a *newer* window than `w` means
    // the caller's clock is behind a racing recorder — drop the rotation,
    // the value lands in the newer window's slot (bounded skew, documented).
    if (e != kNeverUsed && e > w) {
      return false;
    }
    if (slot->epoch.compare_exchange_weak(e, w, std::memory_order_acq_rel)) {
      // Claimed: wipe the expired window's data. Recorders that raced in
      // after the CAS but before this reset may lose their record — the
      // boundary raciness the header documents.
      slot->hist.Reset();
      return true;
    }
  }
}

void RollingHistogram::Record(uint64_t value, uint64_t now_ns) {
  const uint64_t w = now_ns / window_ns_;
  Slot* slot = slots_[w % slots_.size()].get();
  Rotate(slot, w);
  slot->hist.Record(value);
}

HistogramSnapshot RollingHistogram::WindowedSnapshot(uint64_t now_ns) const {
  const uint64_t current = now_ns / window_ns_;
  const uint64_t oldest =
      current >= slots_.size() - 1 ? current - (slots_.size() - 1) : 0;
  HistogramSnapshot merged;
  for (const auto& slot : slots_) {
    const uint64_t e = slot->epoch.load(std::memory_order_acquire);
    if (e == kNeverUsed || e < oldest || e > current) {
      continue;  // expired, future (racing clock), or never used
    }
    merged.Merge(slot->hist.Snapshot());
  }
  return merged;
}

HistogramSnapshot RollingHistogram::WindowSnapshot(uint64_t now_ns,
                                                   size_t back) const {
  const uint64_t current = now_ns / window_ns_;
  if (back >= slots_.size() || back > current) {
    return {};
  }
  const uint64_t w = current - back;
  const Slot* slot = slots_[w % slots_.size()].get();
  if (slot->epoch.load(std::memory_order_acquire) != w) {
    return {};
  }
  return slot->hist.Snapshot();
}

RollingCounter::RollingCounter(size_t num_windows, uint64_t window_ns)
    : window_ns_(window_ns == 0 ? 1 : window_ns) {
  if (num_windows == 0) {
    num_windows = 1;
  }
  slots_.reserve(num_windows);
  for (size_t i = 0; i < num_windows; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
}

void RollingCounter::Add(uint64_t delta, uint64_t now_ns) {
  const uint64_t w = now_ns / window_ns_;
  Slot* slot = slots_[w % slots_.size()].get();
  uint64_t e = slot->epoch.load(std::memory_order_acquire);
  for (;;) {
    if (e == w) {
      break;
    }
    if (e != UINT64_MAX && e > w) {
      break;  // racing clock skew: count into the newer window's slot
    }
    if (slot->epoch.compare_exchange_weak(e, w, std::memory_order_acq_rel)) {
      slot->sum.store(0, std::memory_order_relaxed);
      break;
    }
  }
  slot->sum.fetch_add(delta, std::memory_order_relaxed);
}

uint64_t RollingCounter::WindowedSum(uint64_t now_ns) const {
  const uint64_t current = now_ns / window_ns_;
  const uint64_t oldest =
      current >= slots_.size() - 1 ? current - (slots_.size() - 1) : 0;
  uint64_t total = 0;
  for (const auto& slot : slots_) {
    const uint64_t e = slot->epoch.load(std::memory_order_acquire);
    if (e == UINT64_MAX || e < oldest || e > current) {
      continue;
    }
    total += slot->sum.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace loggrep
