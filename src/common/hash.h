// FNV-1a hashing for dictionary/dedup maps and the query cache.
#ifndef SRC_COMMON_HASH_H_
#define SRC_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace loggrep {

inline uint64_t Fnv1a64(std::string_view data, uint64_t seed = 0xCBF29CE484222325ULL) {
  uint64_t h = seed;
  for (char c : data) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace loggrep

#endif  // SRC_COMMON_HASH_H_
