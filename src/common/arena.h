// ValueArena: bump storage for short-lived string values whose views must
// stay stable while a row is being assembled.
//
// The reconstructor builds one output line from many per-slot values. Most
// values are zero-copy views into pinned Capsule blobs, but pattern-rendered
// values (runtime patterns splicing sub-variables) have to live somewhere.
// Storing them here instead of per-value std::strings means one amortized
// allocation per 64 KiB of rendered text instead of one per value.
//
// Lifetime rule: a view returned by Store() is valid until the next Reset()
// (or destruction). Chunks are heap-allocated std::strings that are never
// appended past their reserved capacity, so chunk data never reallocates and
// views survive growth of the chunk list.
#ifndef SRC_COMMON_ARENA_H_
#define SRC_COMMON_ARENA_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace loggrep {

class ValueArena {
 public:
  // Copies `s` into the arena; the returned view is stable until Reset().
  std::string_view Store(std::string_view s) {
    if (chunks_.empty() ||
        chunks_.back().size() + s.size() > chunks_.back().capacity()) {
      chunks_.emplace_back();
      chunks_.back().reserve(s.size() > kMinChunk ? s.size() : kMinChunk);
    }
    std::string& chunk = chunks_.back();
    const size_t off = chunk.size();
    chunk.append(s.data(), s.size());
    return std::string_view(chunk.data() + off, s.size());
  }

  // Invalidates every stored view; chunk capacity is kept for reuse.
  void Reset() {
    // Keep only the first chunk: steady-state rows fit in one chunk, and
    // dropping the rest bounds memory after a rare oversized row.
    if (chunks_.size() > 1) {
      chunks_.resize(1);
    }
    if (!chunks_.empty()) {
      chunks_.front().clear();
    }
  }

  size_t BytesUsed() const {
    size_t n = 0;
    for (const std::string& c : chunks_) {
      n += c.size();
    }
    return n;
  }

 private:
  static constexpr size_t kMinChunk = 64 * 1024;
  std::vector<std::string> chunks_;
};

}  // namespace loggrep

#endif  // SRC_COMMON_ARENA_H_
