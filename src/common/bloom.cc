#include "src/common/bloom.h"

#include <algorithm>
#include <bit>

#include "src/common/hash.h"

namespace loggrep {

BloomFilter::BloomFilter(uint64_t expected_items, uint32_t bits_per_item) {
  const uint64_t bits = std::max<uint64_t>(64, expected_items * bits_per_item);
  bits_.assign((bits + 7) / 8, '\0');
  num_hashes_ = std::max<uint32_t>(1, static_cast<uint32_t>(bits_per_item * 0.69));
}

void BloomFilter::Add(std::string_view item) {
  const uint64_t h1 = Fnv1a64(item);
  const uint64_t h2 = Fnv1a64(item, 0x9E3779B97F4A7C15ULL) | 1;
  const uint64_t nbits = bits_.size() * 8;
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    const uint64_t bit = (h1 + i * h2) % nbits;
    bits_[bit / 8] |= static_cast<char>(1u << (bit % 8));
  }
}

bool BloomFilter::MayContain(std::string_view item) const {
  if (bits_.empty()) {
    return true;  // an unsized filter filters nothing
  }
  const uint64_t h1 = Fnv1a64(item);
  const uint64_t h2 = Fnv1a64(item, 0x9E3779B97F4A7C15ULL) | 1;
  const uint64_t nbits = bits_.size() * 8;
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    const uint64_t bit = (h1 + i * h2) % nbits;
    if ((bits_[bit / 8] & static_cast<char>(1u << (bit % 8))) == 0) {
      return false;
    }
  }
  return true;
}

double BloomFilter::FillRatio() const {
  if (bits_.empty()) {
    return 0.0;
  }
  uint64_t set = 0;
  for (char c : bits_) {
    set += std::popcount(static_cast<unsigned>(static_cast<uint8_t>(c)));
  }
  return static_cast<double>(set) / static_cast<double>(bits_.size() * 8);
}

void BloomFilter::WriteTo(ByteWriter& out) const {
  out.PutVarint(num_hashes_);
  out.PutLengthPrefixed(bits_);
}

Result<BloomFilter> BloomFilter::ReadFrom(ByteReader& in) {
  Result<uint64_t> k = in.ReadVarint();
  if (!k.ok()) {
    return k.status();
  }
  Result<std::string_view> bits = in.ReadLengthPrefixed();
  if (!bits.ok()) {
    return bits.status();
  }
  // A hostile manifest could declare billions of hash functions, turning
  // every MayContain() into an unbounded loop. Real filters use
  // bits_per_item * 0.69 hashes (single digits); 64 is far beyond any
  // legitimate configuration.
  if (*k > 64) {
    return CorruptData("bloom: implausible hash-function count");
  }
  BloomFilter f;
  f.num_hashes_ = static_cast<uint32_t>(*k);
  f.bits_ = std::string(*bits);
  return f;
}

}  // namespace loggrep
