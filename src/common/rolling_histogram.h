// Rolling-time-window metrics: a ring of the existing lock-free cells
// (Histogram / plain counters) rotated on a coarse clock, so the serving
// layer can answer "p99 over the last minute" instead of "p99 since boot".
//
// The cumulative-since-boot histograms from PR 3 are the right shape for
// Prometheus scrapes (the scraper differentiates), but the daemon's own
// /statusz, SLO burn-rate gauges, and the workload harness all need *local*
// windows: a latency regression five minutes ago must not haunt today's
// percentiles. A RollingHistogram keeps N window slots of `window_ns` each;
// slot `w % N` belongs to window index `w = now / window_ns` and is lazily
// reset the first time a recorder lands in a new window.
//
// Clocking is explicit: every Record/Snapshot call takes `now_ns` from the
// caller (the daemon passes its tracer clock, tests pass a virtual clock),
// so rotation is deterministic and testable in zero wall time.
//
// Concurrency: Record() is the same handful of relaxed atomic ops as
// Histogram::Record plus one acquire load (and, once per window boundary,
// one CAS + reset by the claiming thread). Like Histogram::Snapshot, the
// boundary itself is monitoring-grade, not transactional: a record racing
// the claimant's reset within the same window rotation can be lost, and a
// straggler holding a pre-rotation view can land a record in the slot that
// just recycled. Both windows of raciness are a few in-flight operations
// wide; totals are conserved to within the thread count at each boundary
// (tests pin this bound under hammering).
#ifndef SRC_COMMON_ROLLING_HISTOGRAM_H_
#define SRC_COMMON_ROLLING_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/histogram.h"

namespace loggrep {

class RollingHistogram {
 public:
  // `num_windows` slots of `window_ns` nanoseconds each. The merged view
  // spans at most num_windows * window_ns of history.
  RollingHistogram(size_t num_windows, uint64_t window_ns);

  RollingHistogram(const RollingHistogram&) = delete;
  RollingHistogram& operator=(const RollingHistogram&) = delete;

  // Records `value` into the window containing `now_ns`. Lock-free.
  void Record(uint64_t value, uint64_t now_ns);

  // Merged snapshot of every slot still inside the rolling horizon
  // [now - num_windows * window_ns, now], including the current partial
  // window. Slots whose window has expired are excluded (not merely stale:
  // a quiet period truly empties the view).
  HistogramSnapshot WindowedSnapshot(uint64_t now_ns) const;

  // Snapshot of the single window `back` windows before the current one
  // (0 = current partial window). Empty snapshot when expired / never used.
  HistogramSnapshot WindowSnapshot(uint64_t now_ns, size_t back) const;

  size_t num_windows() const { return slots_.size(); }
  uint64_t window_ns() const { return window_ns_; }

 private:
  struct Slot {
    // Window index this slot's data belongs to; kNeverUsed until first hit.
    std::atomic<uint64_t> epoch{kNeverUsed};
    Histogram hist;
  };
  static constexpr uint64_t kNeverUsed = UINT64_MAX;

  // Rotates `slot` into window `w` if it still holds an older window.
  // Returns true when the slot now belongs to `w`.
  bool Rotate(Slot* slot, uint64_t w) const;

  std::vector<std::unique_ptr<Slot>> slots_;
  uint64_t window_ns_;
};

// Same rotation scheme for a plain sum, giving windowed rates (requests,
// errors, sheds) without histogram weight.
class RollingCounter {
 public:
  RollingCounter(size_t num_windows, uint64_t window_ns);

  RollingCounter(const RollingCounter&) = delete;
  RollingCounter& operator=(const RollingCounter&) = delete;

  void Add(uint64_t delta, uint64_t now_ns);
  void Increment(uint64_t now_ns) { Add(1, now_ns); }

  // Sum over every window still inside the rolling horizon.
  uint64_t WindowedSum(uint64_t now_ns) const;

  size_t num_windows() const { return slots_.size(); }
  uint64_t window_ns() const { return window_ns_; }

 private:
  struct Slot {
    std::atomic<uint64_t> epoch{UINT64_MAX};
    std::atomic<uint64_t> sum{0};
  };

  std::vector<std::unique_ptr<Slot>> slots_;
  uint64_t window_ns_;
};

}  // namespace loggrep

#endif  // SRC_COMMON_ROLLING_HISTOGRAM_H_
