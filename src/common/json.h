// Minimal JSON support shared by the serving layer: string escaping for
// writers and a small recursive-descent value parser for readers.
//
// The store already hand-rolls JSON in two places (quarantine sidecar,
// metrics exporters); the daemon adds a third producer (query responses)
// and the first in-process *consumer* (the blocking client used by tests
// and the throughput bench). This header centralizes the escape rules and
// gives consumers a proper tree instead of another one-off cursor.
//
// The parser is defensive, not fast: depth-capped, size comes from the
// caller, malformed input yields kInvalidArgument, never a crash or
// unbounded recursion. Numbers are kept as int64/double (JSON has no
// integer type; uint64 values above 2^63 are not needed by any current
// producer).
#ifndef SRC_COMMON_JSON_H_
#define SRC_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"

namespace loggrep {

// Appends `s` as a quoted, escaped JSON string literal.
void AppendJsonString(std::string* out, std::string_view s);
inline std::string JsonQuote(std::string_view s) {
  std::string out;
  AppendJsonString(&out, s);
  return out;
}

// One parsed JSON value. Object keys are sorted (std::map) which matches
// every producer in this repo (all emit sorted keys already).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  // Typed accessors; defaults are returned on kind mismatch (callers in
  // tests assert kinds explicitly where it matters).
  bool AsBool(bool fallback = false) const;
  int64_t AsInt(int64_t fallback = 0) const;
  uint64_t AsUint(uint64_t fallback = 0) const;
  double AsDouble(double fallback = 0) const;
  const std::string& AsString() const;
  const std::vector<JsonValue>& AsArray() const;
  const std::map<std::string, JsonValue>& AsObject() const;

  // Object member lookup; returns a shared null value when absent or when
  // this is not an object. `Get("a.b")` does NOT split on dots.
  const JsonValue& Get(const std::string& key) const;

  static JsonValue Null();
  static JsonValue Bool(bool b);
  static JsonValue Number(double d);
  static JsonValue Str(std::string s);
  static JsonValue Array(std::vector<JsonValue> items);
  static JsonValue Object(std::map<std::string, JsonValue> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

// Parses one complete JSON document (trailing garbage is an error).
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace loggrep

#endif  // SRC_COMMON_JSON_H_
