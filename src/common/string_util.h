// Small string helpers shared across the parser, extractor and query engine.
#ifndef SRC_COMMON_STRING_UTIL_H_
#define SRC_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace loggrep {

inline bool IsAsciiDigit(char c) { return c >= '0' && c <= '9'; }
inline bool IsAsciiAlpha(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}
inline bool IsAsciiAlnum(char c) { return IsAsciiDigit(c) || IsAsciiAlpha(c); }

// Splits on any character of `delims`; empty pieces are dropped.
std::vector<std::string_view> SplitNonEmpty(std::string_view text,
                                            std::string_view delims);

// Splits on a single delimiter character, keeping empty pieces.
std::vector<std::string_view> SplitKeepEmpty(std::string_view text, char delim);

// Longest common substring of `a` and `b` (first leftmost-in-`a` maximum).
// O(|a|*|b|) dynamic programming — only ever run on two sampled values.
std::string_view LongestCommonSubstring(std::string_view a, std::string_view b);

// All distinct non-alphanumeric characters of `s`, in first-occurrence order.
std::string DistinctNonAlnumChars(std::string_view s);

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

// Population variance of the lengths of `values` (paper's "length variance").
double LengthVariance(const std::vector<std::string>& values);

}  // namespace loggrep

#endif  // SRC_COMMON_STRING_UTIL_H_
