#include "src/common/result.h"

namespace loggrep {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kCorruptData:
      return "CORRUPT_DATA";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case StatusCode::kIOError:
      return "IO_ERROR";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace loggrep
